file(REMOVE_RECURSE
  "CMakeFiles/pagerank_offload.dir/pagerank_offload.cpp.o"
  "CMakeFiles/pagerank_offload.dir/pagerank_offload.cpp.o.d"
  "pagerank_offload"
  "pagerank_offload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pagerank_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
