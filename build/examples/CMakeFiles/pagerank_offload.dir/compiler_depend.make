# Empty compiler generated dependencies file for pagerank_offload.
# This may be replaced when dependencies are built.
