# Empty dependencies file for same_file_two_views.
# This may be replaced when dependencies are built.
