# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for same_file_two_views.
