file(REMOVE_RECURSE
  "CMakeFiles/same_file_two_views.dir/same_file_two_views.cpp.o"
  "CMakeFiles/same_file_two_views.dir/same_file_two_views.cpp.o.d"
  "same_file_two_views"
  "same_file_two_views.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/same_file_two_views.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
