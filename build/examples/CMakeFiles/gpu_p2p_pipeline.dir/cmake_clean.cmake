file(REMOVE_RECURSE
  "CMakeFiles/gpu_p2p_pipeline.dir/gpu_p2p_pipeline.cpp.o"
  "CMakeFiles/gpu_p2p_pipeline.dir/gpu_p2p_pipeline.cpp.o.d"
  "gpu_p2p_pipeline"
  "gpu_p2p_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpu_p2p_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
