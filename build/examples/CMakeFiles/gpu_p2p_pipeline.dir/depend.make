# Empty dependencies file for gpu_p2p_pipeline.
# This may be replaced when dependencies are built.
