# Empty compiler generated dependencies file for nic_stream.
# This may be replaced when dependencies are built.
