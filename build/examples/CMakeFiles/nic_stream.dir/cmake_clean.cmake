file(REMOVE_RECURSE
  "CMakeFiles/nic_stream.dir/nic_stream.cpp.o"
  "CMakeFiles/nic_stream.dir/nic_stream.cpp.o.d"
  "nic_stream"
  "nic_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nic_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
