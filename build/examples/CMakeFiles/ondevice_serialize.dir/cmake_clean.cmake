file(REMOVE_RECURSE
  "CMakeFiles/ondevice_serialize.dir/ondevice_serialize.cpp.o"
  "CMakeFiles/ondevice_serialize.dir/ondevice_serialize.cpp.o.d"
  "ondevice_serialize"
  "ondevice_serialize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ondevice_serialize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
