# Empty dependencies file for ondevice_serialize.
# This may be replaced when dependencies are built.
