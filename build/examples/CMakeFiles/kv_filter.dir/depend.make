# Empty dependencies file for kv_filter.
# This may be replaced when dependencies are built.
