file(REMOVE_RECURSE
  "CMakeFiles/kv_filter.dir/kv_filter.cpp.o"
  "CMakeFiles/kv_filter.dir/kv_filter.cpp.o.d"
  "kv_filter"
  "kv_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kv_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
