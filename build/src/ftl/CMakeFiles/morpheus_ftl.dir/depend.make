# Empty dependencies file for morpheus_ftl.
# This may be replaced when dependencies are built.
