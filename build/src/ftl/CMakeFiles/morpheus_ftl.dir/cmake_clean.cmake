file(REMOVE_RECURSE
  "CMakeFiles/morpheus_ftl.dir/ftl.cc.o"
  "CMakeFiles/morpheus_ftl.dir/ftl.cc.o.d"
  "libmorpheus_ftl.a"
  "libmorpheus_ftl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/morpheus_ftl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
