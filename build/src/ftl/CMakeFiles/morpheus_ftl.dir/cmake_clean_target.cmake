file(REMOVE_RECURSE
  "libmorpheus_ftl.a"
)
