file(REMOVE_RECURSE
  "libmorpheus_serde.a"
)
