file(REMOVE_RECURSE
  "CMakeFiles/morpheus_serde.dir/csv.cc.o"
  "CMakeFiles/morpheus_serde.dir/csv.cc.o.d"
  "CMakeFiles/morpheus_serde.dir/formats.cc.o"
  "CMakeFiles/morpheus_serde.dir/formats.cc.o.d"
  "CMakeFiles/morpheus_serde.dir/json.cc.o"
  "CMakeFiles/morpheus_serde.dir/json.cc.o.d"
  "CMakeFiles/morpheus_serde.dir/parse.cc.o"
  "CMakeFiles/morpheus_serde.dir/parse.cc.o.d"
  "CMakeFiles/morpheus_serde.dir/scanner.cc.o"
  "CMakeFiles/morpheus_serde.dir/scanner.cc.o.d"
  "CMakeFiles/morpheus_serde.dir/writer.cc.o"
  "CMakeFiles/morpheus_serde.dir/writer.cc.o.d"
  "libmorpheus_serde.a"
  "libmorpheus_serde.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/morpheus_serde.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
