
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/serde/csv.cc" "src/serde/CMakeFiles/morpheus_serde.dir/csv.cc.o" "gcc" "src/serde/CMakeFiles/morpheus_serde.dir/csv.cc.o.d"
  "/root/repo/src/serde/formats.cc" "src/serde/CMakeFiles/morpheus_serde.dir/formats.cc.o" "gcc" "src/serde/CMakeFiles/morpheus_serde.dir/formats.cc.o.d"
  "/root/repo/src/serde/json.cc" "src/serde/CMakeFiles/morpheus_serde.dir/json.cc.o" "gcc" "src/serde/CMakeFiles/morpheus_serde.dir/json.cc.o.d"
  "/root/repo/src/serde/parse.cc" "src/serde/CMakeFiles/morpheus_serde.dir/parse.cc.o" "gcc" "src/serde/CMakeFiles/morpheus_serde.dir/parse.cc.o.d"
  "/root/repo/src/serde/scanner.cc" "src/serde/CMakeFiles/morpheus_serde.dir/scanner.cc.o" "gcc" "src/serde/CMakeFiles/morpheus_serde.dir/scanner.cc.o.d"
  "/root/repo/src/serde/writer.cc" "src/serde/CMakeFiles/morpheus_serde.dir/writer.cc.o" "gcc" "src/serde/CMakeFiles/morpheus_serde.dir/writer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/morpheus_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
