# Empty dependencies file for morpheus_serde.
# This may be replaced when dependencies are built.
