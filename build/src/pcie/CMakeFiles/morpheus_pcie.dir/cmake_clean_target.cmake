file(REMOVE_RECURSE
  "libmorpheus_pcie.a"
)
