# Empty compiler generated dependencies file for morpheus_pcie.
# This may be replaced when dependencies are built.
