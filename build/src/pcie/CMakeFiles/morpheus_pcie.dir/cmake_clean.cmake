file(REMOVE_RECURSE
  "CMakeFiles/morpheus_pcie.dir/pcie.cc.o"
  "CMakeFiles/morpheus_pcie.dir/pcie.cc.o.d"
  "libmorpheus_pcie.a"
  "libmorpheus_pcie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/morpheus_pcie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
