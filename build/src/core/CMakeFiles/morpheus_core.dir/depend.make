# Empty dependencies file for morpheus_core.
# This may be replaced when dependencies are built.
