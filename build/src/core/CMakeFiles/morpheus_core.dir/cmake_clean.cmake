file(REMOVE_RECURSE
  "CMakeFiles/morpheus_core.dir/compiler.cc.o"
  "CMakeFiles/morpheus_core.dir/compiler.cc.o.d"
  "CMakeFiles/morpheus_core.dir/device_runtime.cc.o"
  "CMakeFiles/morpheus_core.dir/device_runtime.cc.o.d"
  "CMakeFiles/morpheus_core.dir/host_runtime.cc.o"
  "CMakeFiles/morpheus_core.dir/host_runtime.cc.o.d"
  "CMakeFiles/morpheus_core.dir/kv_store.cc.o"
  "CMakeFiles/morpheus_core.dir/kv_store.cc.o.d"
  "CMakeFiles/morpheus_core.dir/nvme_p2p.cc.o"
  "CMakeFiles/morpheus_core.dir/nvme_p2p.cc.o.d"
  "CMakeFiles/morpheus_core.dir/standard_apps.cc.o"
  "CMakeFiles/morpheus_core.dir/standard_apps.cc.o.d"
  "CMakeFiles/morpheus_core.dir/storage_app.cc.o"
  "CMakeFiles/morpheus_core.dir/storage_app.cc.o.d"
  "libmorpheus_core.a"
  "libmorpheus_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/morpheus_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
