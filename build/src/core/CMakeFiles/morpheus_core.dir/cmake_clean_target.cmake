file(REMOVE_RECURSE
  "libmorpheus_core.a"
)
