# Empty dependencies file for morpheus_sim.
# This may be replaced when dependencies are built.
