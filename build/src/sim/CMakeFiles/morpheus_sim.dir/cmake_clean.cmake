file(REMOVE_RECURSE
  "CMakeFiles/morpheus_sim.dir/event_queue.cc.o"
  "CMakeFiles/morpheus_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/morpheus_sim.dir/logging.cc.o"
  "CMakeFiles/morpheus_sim.dir/logging.cc.o.d"
  "CMakeFiles/morpheus_sim.dir/rng.cc.o"
  "CMakeFiles/morpheus_sim.dir/rng.cc.o.d"
  "CMakeFiles/morpheus_sim.dir/stats.cc.o"
  "CMakeFiles/morpheus_sim.dir/stats.cc.o.d"
  "CMakeFiles/morpheus_sim.dir/timeline.cc.o"
  "CMakeFiles/morpheus_sim.dir/timeline.cc.o.d"
  "libmorpheus_sim.a"
  "libmorpheus_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/morpheus_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
