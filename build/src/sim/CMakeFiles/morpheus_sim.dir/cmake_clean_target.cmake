file(REMOVE_RECURSE
  "libmorpheus_sim.a"
)
