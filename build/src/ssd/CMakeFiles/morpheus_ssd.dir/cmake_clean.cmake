file(REMOVE_RECURSE
  "CMakeFiles/morpheus_ssd.dir/embedded_core.cc.o"
  "CMakeFiles/morpheus_ssd.dir/embedded_core.cc.o.d"
  "CMakeFiles/morpheus_ssd.dir/ssd_controller.cc.o"
  "CMakeFiles/morpheus_ssd.dir/ssd_controller.cc.o.d"
  "libmorpheus_ssd.a"
  "libmorpheus_ssd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/morpheus_ssd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
