file(REMOVE_RECURSE
  "libmorpheus_ssd.a"
)
