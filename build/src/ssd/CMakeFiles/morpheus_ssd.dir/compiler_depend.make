# Empty compiler generated dependencies file for morpheus_ssd.
# This may be replaced when dependencies are built.
