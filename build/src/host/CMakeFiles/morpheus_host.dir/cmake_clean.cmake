file(REMOVE_RECURSE
  "CMakeFiles/morpheus_host.dir/host_system.cc.o"
  "CMakeFiles/morpheus_host.dir/host_system.cc.o.d"
  "CMakeFiles/morpheus_host.dir/sparse_memory.cc.o"
  "CMakeFiles/morpheus_host.dir/sparse_memory.cc.o.d"
  "CMakeFiles/morpheus_host.dir/storage_backend.cc.o"
  "CMakeFiles/morpheus_host.dir/storage_backend.cc.o.d"
  "libmorpheus_host.a"
  "libmorpheus_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/morpheus_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
