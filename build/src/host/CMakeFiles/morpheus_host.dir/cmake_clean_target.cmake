file(REMOVE_RECURSE
  "libmorpheus_host.a"
)
