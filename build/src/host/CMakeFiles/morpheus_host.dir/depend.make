# Empty dependencies file for morpheus_host.
# This may be replaced when dependencies are built.
