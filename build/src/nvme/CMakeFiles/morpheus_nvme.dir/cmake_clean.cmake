file(REMOVE_RECURSE
  "CMakeFiles/morpheus_nvme.dir/command.cc.o"
  "CMakeFiles/morpheus_nvme.dir/command.cc.o.d"
  "CMakeFiles/morpheus_nvme.dir/controller.cc.o"
  "CMakeFiles/morpheus_nvme.dir/controller.cc.o.d"
  "CMakeFiles/morpheus_nvme.dir/driver.cc.o"
  "CMakeFiles/morpheus_nvme.dir/driver.cc.o.d"
  "CMakeFiles/morpheus_nvme.dir/queue.cc.o"
  "CMakeFiles/morpheus_nvme.dir/queue.cc.o.d"
  "libmorpheus_nvme.a"
  "libmorpheus_nvme.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/morpheus_nvme.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
