
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nvme/command.cc" "src/nvme/CMakeFiles/morpheus_nvme.dir/command.cc.o" "gcc" "src/nvme/CMakeFiles/morpheus_nvme.dir/command.cc.o.d"
  "/root/repo/src/nvme/controller.cc" "src/nvme/CMakeFiles/morpheus_nvme.dir/controller.cc.o" "gcc" "src/nvme/CMakeFiles/morpheus_nvme.dir/controller.cc.o.d"
  "/root/repo/src/nvme/driver.cc" "src/nvme/CMakeFiles/morpheus_nvme.dir/driver.cc.o" "gcc" "src/nvme/CMakeFiles/morpheus_nvme.dir/driver.cc.o.d"
  "/root/repo/src/nvme/queue.cc" "src/nvme/CMakeFiles/morpheus_nvme.dir/queue.cc.o" "gcc" "src/nvme/CMakeFiles/morpheus_nvme.dir/queue.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pcie/CMakeFiles/morpheus_pcie.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/morpheus_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
