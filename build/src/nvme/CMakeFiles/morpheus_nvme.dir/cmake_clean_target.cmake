file(REMOVE_RECURSE
  "libmorpheus_nvme.a"
)
