# Empty dependencies file for morpheus_nvme.
# This may be replaced when dependencies are built.
