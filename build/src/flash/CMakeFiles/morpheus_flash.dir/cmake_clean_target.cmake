file(REMOVE_RECURSE
  "libmorpheus_flash.a"
)
