# Empty compiler generated dependencies file for morpheus_flash.
# This may be replaced when dependencies are built.
