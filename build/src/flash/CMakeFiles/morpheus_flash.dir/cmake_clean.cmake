file(REMOVE_RECURSE
  "CMakeFiles/morpheus_flash.dir/flash_array.cc.o"
  "CMakeFiles/morpheus_flash.dir/flash_array.cc.o.d"
  "libmorpheus_flash.a"
  "libmorpheus_flash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/morpheus_flash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
