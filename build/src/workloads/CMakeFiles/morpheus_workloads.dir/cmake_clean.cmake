file(REMOVE_RECURSE
  "CMakeFiles/morpheus_workloads.dir/app_spec.cc.o"
  "CMakeFiles/morpheus_workloads.dir/app_spec.cc.o.d"
  "CMakeFiles/morpheus_workloads.dir/generators.cc.o"
  "CMakeFiles/morpheus_workloads.dir/generators.cc.o.d"
  "CMakeFiles/morpheus_workloads.dir/kernels.cc.o"
  "CMakeFiles/morpheus_workloads.dir/kernels.cc.o.d"
  "CMakeFiles/morpheus_workloads.dir/objects.cc.o"
  "CMakeFiles/morpheus_workloads.dir/objects.cc.o.d"
  "CMakeFiles/morpheus_workloads.dir/partition.cc.o"
  "CMakeFiles/morpheus_workloads.dir/partition.cc.o.d"
  "CMakeFiles/morpheus_workloads.dir/runner.cc.o"
  "CMakeFiles/morpheus_workloads.dir/runner.cc.o.d"
  "libmorpheus_workloads.a"
  "libmorpheus_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/morpheus_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
