# Empty dependencies file for morpheus_workloads.
# This may be replaced when dependencies are built.
