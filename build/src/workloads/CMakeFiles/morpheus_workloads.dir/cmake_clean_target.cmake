file(REMOVE_RECURSE
  "libmorpheus_workloads.a"
)
