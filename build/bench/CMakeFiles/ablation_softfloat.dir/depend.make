# Empty dependencies file for ablation_softfloat.
# This may be replaced when dependencies are built.
