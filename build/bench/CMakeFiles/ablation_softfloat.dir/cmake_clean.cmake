file(REMOVE_RECURSE
  "CMakeFiles/ablation_softfloat.dir/ablation_softfloat.cc.o"
  "CMakeFiles/ablation_softfloat.dir/ablation_softfloat.cc.o.d"
  "ablation_softfloat"
  "ablation_softfloat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_softfloat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
