# Empty compiler generated dependencies file for cpu_load.
# This may be replaced when dependencies are built.
