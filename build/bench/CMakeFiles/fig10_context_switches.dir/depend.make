# Empty dependencies file for fig10_context_switches.
# This may be replaced when dependencies are built.
