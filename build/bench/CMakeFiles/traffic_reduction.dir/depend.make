# Empty dependencies file for traffic_reduction.
# This may be replaced when dependencies are built.
