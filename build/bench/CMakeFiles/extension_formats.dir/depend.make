# Empty dependencies file for extension_formats.
# This may be replaced when dependencies are built.
