file(REMOVE_RECURSE
  "CMakeFiles/extension_formats.dir/extension_formats.cc.o"
  "CMakeFiles/extension_formats.dir/extension_formats.cc.o.d"
  "extension_formats"
  "extension_formats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_formats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
