file(REMOVE_RECURSE
  "CMakeFiles/ablation_qdepth.dir/ablation_qdepth.cc.o"
  "CMakeFiles/ablation_qdepth.dir/ablation_qdepth.cc.o.d"
  "ablation_qdepth"
  "ablation_qdepth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_qdepth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
