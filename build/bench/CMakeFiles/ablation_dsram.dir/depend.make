# Empty dependencies file for ablation_dsram.
# This may be replaced when dependencies are built.
