file(REMOVE_RECURSE
  "CMakeFiles/ablation_dsram.dir/ablation_dsram.cc.o"
  "CMakeFiles/ablation_dsram.dir/ablation_dsram.cc.o.d"
  "ablation_dsram"
  "ablation_dsram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dsram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
