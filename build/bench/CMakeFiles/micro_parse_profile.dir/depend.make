# Empty dependencies file for micro_parse_profile.
# This may be replaced when dependencies are built.
