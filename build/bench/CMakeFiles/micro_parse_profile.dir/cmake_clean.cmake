file(REMOVE_RECURSE
  "CMakeFiles/micro_parse_profile.dir/micro_parse_profile.cc.o"
  "CMakeFiles/micro_parse_profile.dir/micro_parse_profile.cc.o.d"
  "micro_parse_profile"
  "micro_parse_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_parse_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
