file(REMOVE_RECURSE
  "CMakeFiles/fig03_effective_bandwidth.dir/fig03_effective_bandwidth.cc.o"
  "CMakeFiles/fig03_effective_bandwidth.dir/fig03_effective_bandwidth.cc.o.d"
  "fig03_effective_bandwidth"
  "fig03_effective_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_effective_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
