file(REMOVE_RECURSE
  "CMakeFiles/fig08_deser_speedup.dir/fig08_deser_speedup.cc.o"
  "CMakeFiles/fig08_deser_speedup.dir/fig08_deser_speedup.cc.o.d"
  "fig08_deser_speedup"
  "fig08_deser_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_deser_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
