# Empty dependencies file for fig08_deser_speedup.
# This may be replaced when dependencies are built.
