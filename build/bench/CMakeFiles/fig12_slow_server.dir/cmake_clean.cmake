file(REMOVE_RECURSE
  "CMakeFiles/fig12_slow_server.dir/fig12_slow_server.cc.o"
  "CMakeFiles/fig12_slow_server.dir/fig12_slow_server.cc.o.d"
  "fig12_slow_server"
  "fig12_slow_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_slow_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
