# Empty dependencies file for fig12_slow_server.
# This may be replaced when dependencies are built.
