file(REMOVE_RECURSE
  "CMakeFiles/fig09_power_energy.dir/fig09_power_energy.cc.o"
  "CMakeFiles/fig09_power_energy.dir/fig09_power_energy.cc.o.d"
  "fig09_power_energy"
  "fig09_power_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_power_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
