# Empty dependencies file for morpheus-run.
# This may be replaced when dependencies are built.
