file(REMOVE_RECURSE
  "CMakeFiles/morpheus-run.dir/run_app.cc.o"
  "CMakeFiles/morpheus-run.dir/run_app.cc.o.d"
  "morpheus-run"
  "morpheus-run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/morpheus-run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
