file(REMOVE_RECURSE
  "CMakeFiles/test_trim_identify.dir/test_trim_identify.cc.o"
  "CMakeFiles/test_trim_identify.dir/test_trim_identify.cc.o.d"
  "test_trim_identify"
  "test_trim_identify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trim_identify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
