# Empty dependencies file for test_trim_identify.
# This may be replaced when dependencies are built.
