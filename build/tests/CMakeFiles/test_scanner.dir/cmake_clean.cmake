file(REMOVE_RECURSE
  "CMakeFiles/test_scanner.dir/test_scanner.cc.o"
  "CMakeFiles/test_scanner.dir/test_scanner.cc.o.d"
  "test_scanner"
  "test_scanner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scanner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
