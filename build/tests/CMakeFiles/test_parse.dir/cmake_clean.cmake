file(REMOVE_RECURSE
  "CMakeFiles/test_parse.dir/test_parse.cc.o"
  "CMakeFiles/test_parse.dir/test_parse.cc.o.d"
  "test_parse"
  "test_parse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
