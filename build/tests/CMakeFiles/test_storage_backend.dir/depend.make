# Empty dependencies file for test_storage_backend.
# This may be replaced when dependencies are built.
