file(REMOVE_RECURSE
  "CMakeFiles/test_storage_backend.dir/test_storage_backend.cc.o"
  "CMakeFiles/test_storage_backend.dir/test_storage_backend.cc.o.d"
  "test_storage_backend"
  "test_storage_backend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_storage_backend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
