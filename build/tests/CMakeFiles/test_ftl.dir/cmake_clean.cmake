file(REMOVE_RECURSE
  "CMakeFiles/test_ftl.dir/test_ftl.cc.o"
  "CMakeFiles/test_ftl.dir/test_ftl.cc.o.d"
  "test_ftl"
  "test_ftl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ftl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
