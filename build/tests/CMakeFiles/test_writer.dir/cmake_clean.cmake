file(REMOVE_RECURSE
  "CMakeFiles/test_writer.dir/test_writer.cc.o"
  "CMakeFiles/test_writer.dir/test_writer.cc.o.d"
  "test_writer"
  "test_writer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_writer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
