# Empty compiler generated dependencies file for test_storage_app.
# This may be replaced when dependencies are built.
