file(REMOVE_RECURSE
  "CMakeFiles/test_storage_app.dir/test_storage_app.cc.o"
  "CMakeFiles/test_storage_app.dir/test_storage_app.cc.o.d"
  "test_storage_app"
  "test_storage_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_storage_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
