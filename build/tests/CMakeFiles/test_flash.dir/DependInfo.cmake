
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_flash.cc" "tests/CMakeFiles/test_flash.dir/test_flash.cc.o" "gcc" "tests/CMakeFiles/test_flash.dir/test_flash.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/morpheus_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/morpheus_core.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/morpheus_host.dir/DependInfo.cmake"
  "/root/repo/build/src/ssd/CMakeFiles/morpheus_ssd.dir/DependInfo.cmake"
  "/root/repo/build/src/ftl/CMakeFiles/morpheus_ftl.dir/DependInfo.cmake"
  "/root/repo/build/src/flash/CMakeFiles/morpheus_flash.dir/DependInfo.cmake"
  "/root/repo/build/src/nvme/CMakeFiles/morpheus_nvme.dir/DependInfo.cmake"
  "/root/repo/build/src/pcie/CMakeFiles/morpheus_pcie.dir/DependInfo.cmake"
  "/root/repo/build/src/serde/CMakeFiles/morpheus_serde.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/morpheus_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
