file(REMOVE_RECURSE
  "CMakeFiles/test_device_runtime.dir/test_device_runtime.cc.o"
  "CMakeFiles/test_device_runtime.dir/test_device_runtime.cc.o.d"
  "test_device_runtime"
  "test_device_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_device_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
