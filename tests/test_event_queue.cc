/**
 * @file
 * Unit tests for the discrete-event core.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"
#include "sim/logging.hh"

namespace ms = morpheus::sim;

TEST(EventQueue, StartsAtTickZero)
{
    ms::EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_EQ(eq.executed(), 0u);
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    ms::EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickIsFifo)
{
    ms::EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 16; ++i)
        eq.schedule(100, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, NestedSchedulingRunsInSameDrain)
{
    ms::EventQueue eq;
    int hits = 0;
    eq.schedule(5, [&] {
        ++hits;
        eq.scheduleIn(5, [&] { ++hits; });
    });
    eq.run();
    EXPECT_EQ(hits, 2);
    EXPECT_EQ(eq.now(), 10u);
}

TEST(EventQueue, RunOneReturnsFalseWhenEmpty)
{
    ms::EventQueue eq;
    EXPECT_FALSE(eq.runOne());
    eq.schedule(1, [] {});
    EXPECT_TRUE(eq.runOne());
    EXPECT_FALSE(eq.runOne());
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    ms::EventQueue eq;
    int hits = 0;
    eq.schedule(10, [&] { ++hits; });
    eq.schedule(20, [&] { ++hits; });
    eq.schedule(30, [&] { ++hits; });
    eq.runUntil(20);
    EXPECT_EQ(hits, 2);
    EXPECT_EQ(eq.now(), 20u);
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(hits, 3);
}

TEST(EventQueue, RunUntilAdvancesClockWithNoEvents)
{
    ms::EventQueue eq;
    eq.runUntil(12345);
    EXPECT_EQ(eq.now(), 12345u);
}

TEST(EventQueue, AdvanceToMovesClock)
{
    ms::EventQueue eq;
    eq.advanceTo(500);
    EXPECT_EQ(eq.now(), 500u);
}

TEST(EventQueueDeath, SchedulingIntoThePastPanics)
{
    ms::EventQueue eq;
    eq.schedule(10, [] {});
    eq.run();
    EXPECT_DEATH(eq.schedule(5, [] {}), "scheduling into the past");
}

TEST(EventQueue, ExecutedCountsEvents)
{
    ms::EventQueue eq;
    for (int i = 0; i < 7; ++i)
        eq.schedule(static_cast<ms::Tick>(i), [] {});
    eq.run();
    EXPECT_EQ(eq.executed(), 7u);
}

TEST(EventQueue, TickConversionHelpers)
{
    EXPECT_EQ(ms::secondsToTicks(1.0), ms::kPsPerSec);
    EXPECT_DOUBLE_EQ(ms::ticksToSeconds(ms::kPsPerSec), 1.0);
    EXPECT_DOUBLE_EQ(ms::ticksToUs(ms::kPsPerUs), 1.0);
    EXPECT_DOUBLE_EQ(ms::ticksToMs(ms::kPsPerMs), 1.0);
    // Transfers round up: a nonzero payload never takes zero time.
    EXPECT_EQ(ms::transferTicks(0, 1e9), 0u);
    EXPECT_GE(ms::transferTicks(1, 1e15), 1u);
    // 1 GB at 1 GB/s = 1 second.
    EXPECT_EQ(ms::transferTicks(1000000000ULL, 1e9), ms::kPsPerSec);
    // Cycles: 1000 cycles at 1 GHz = 1 us.
    EXPECT_EQ(ms::cyclesToTicks(1000.0, 1e9), ms::kPsPerUs);
}

TEST(LoggingDeath, PanicAbortsAndFatalExits)
{
    // gem5 semantics: panic() = simulator bug -> abort (SIGABRT);
    // fatal() = user error -> exit(1).
    EXPECT_DEATH(MORPHEUS_PANIC("boom ", 42), "panic: boom 42");
    EXPECT_EXIT(MORPHEUS_FATAL("bad config ", 7),
                ::testing::ExitedWithCode(1), "fatal: bad config 7");
}

TEST(Logging, AssertPassesOnTrueCondition)
{
    MORPHEUS_ASSERT(1 + 1 == 2, "arithmetic works");
    EXPECT_DEATH(MORPHEUS_ASSERT(false, "ctx ", 99),
                 "assertion failed");
}

TEST(Logging, LogLevelRoundTrips)
{
    using morpheus::sim::LogLevel;
    const auto old = morpheus::sim::logLevel();
    morpheus::sim::setLogLevel(LogLevel::kQuiet);
    EXPECT_EQ(morpheus::sim::logLevel(), LogLevel::kQuiet);
    morpheus::sim::setLogLevel(old);
}
