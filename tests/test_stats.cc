/**
 * @file
 * Unit tests for the statistics package.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "sim/stats.hh"

namespace st = morpheus::sim::stats;

TEST(Counter, AccumulatesAndResets)
{
    st::Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 41;
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Accumulator, TracksMoments)
{
    st::Accumulator a;
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    a.sample(1.0);
    a.sample(3.0);
    a.sample(5.0);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.mean(), 3.0);
    EXPECT_DOUBLE_EQ(a.min(), 1.0);
    EXPECT_DOUBLE_EQ(a.max(), 5.0);
    EXPECT_DOUBLE_EQ(a.sum(), 9.0);
}

TEST(Histogram, BucketsSamplesCorrectly)
{
    st::Histogram h(0.0, 100.0, 10);
    h.sample(5.0);    // bucket 0
    h.sample(15.0);   // bucket 1
    h.sample(95.0);   // bucket 9
    h.sample(-1.0);   // underflow
    h.sample(100.0);  // overflow (range is half-open)
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(9), 1u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.samples(), 5u);
}

TEST(Histogram, QuantileInterpolatesBucketMidpoints)
{
    st::Histogram h(0.0, 100.0, 10);
    for (int i = 0; i < 100; ++i)
        h.sample(static_cast<double>(i));
    const double median = h.quantile(0.5);
    EXPECT_GE(median, 40.0);
    EXPECT_LE(median, 60.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
}

TEST(Histogram, QuantileAllSamplesInUnderflow)
{
    st::Histogram h(100.0, 200.0, 10);
    h.sample(3.0);
    h.sample(7.0);
    h.sample(12.0);
    // Every quantile lives below the range; the exact sample min/max
    // bound the answers, not the bucket edges.
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 3.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 3.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 3.0);
}

TEST(Histogram, QuantileAllSamplesInOverflow)
{
    st::Histogram h(0.0, 10.0, 10);
    h.sample(50.0);
    h.sample(90.0);
    h.sample(70.0);
    // The old accumulation never counted the overflow bucket and fell
    // through to the top edge (10.0); the tail must report the exact
    // max instead.
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 90.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.99), 90.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 90.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 50.0);
}

TEST(Histogram, QuantileTailReachesOverflowRegion)
{
    st::Histogram h(0.0, 100.0, 10);
    for (int i = 0; i < 99; ++i)
        h.sample(50.0);  // bucket 5
    h.sample(1000.0);    // one overflow outlier
    // p50 stays in-range (rank 50 of 99 through bucket [50, 60));
    // p100 is the outlier, not the top edge.
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 50.0 + 10.0 * 50.0 / 99.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 1000.0);
}

TEST(Histogram, QuantileExtremesOnInRangeData)
{
    st::Histogram h(0.0, 100.0, 10);
    h.sample(12.0);
    h.sample(88.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 12.0);   // exact min
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 88.0);   // exact max, not an edge
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 20.0);   // rank 1/1 of bucket 1
}

TEST(Histogram, QuantileInterpolatesWithinLandingBucket)
{
    // Regression pin for the final-bucket fix: ranks spread through
    // the landing bucket instead of collapsing onto its midpoint, and
    // the top quantile is the exact observed max rather than the
    // bucket's upper edge.
    st::Histogram h(0.0, 100.0, 10);
    h.sample(5.0);  // bucket 0, pins the exact min
    for (int i = 0; i < 4; ++i)
        h.sample(45.0);  // four samples landing in bucket [40, 50)
    h.sample(95.0);  // bucket 9, pins the exact max
    // p50: rank 3 of 6; ranks 2..5 live in bucket 4, so rank 3 is 2/4
    // of the way through [40, 50).
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 45.0);
    // p25: rank 2 of 6 = 1/4 through the bucket.
    EXPECT_DOUBLE_EQ(h.quantile(0.25), 42.5);
    // p100 lands in the final bucket; the answer is the exact max
    // (95.0), not the bucket edge (100.0) or its midpoint (95.0 here
    // by coincidence of one sample — the clamp is what guarantees it).
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 95.0);
    // The deep tail (p99.9 of 6 samples) also resolves to the max.
    EXPECT_DOUBLE_EQ(h.quantile(0.999), 95.0);
}

TEST(Histogram, QuantileOfEmptyHistogramIsZero)
{
    st::Histogram h(0.0, 100.0, 10);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 0.0);
}

TEST(Histogram, ResetClearsEverything)
{
    st::Histogram h(0.0, 10.0, 5);
    h.sample(3.0);
    h.reset();
    EXPECT_EQ(h.samples(), 0u);
    EXPECT_EQ(h.bucketCount(1), 0u);
}

TEST(Histogram, BucketEdgesAreHalfOpen)
{
    st::Histogram h(0.0, 100.0, 10);
    // Each bucket is [lo + i*w, lo + (i+1)*w): a sample exactly on an
    // interior edge belongs to the upper bucket, the bottom edge to
    // bucket 0, and the top edge spills into overflow.
    h.sample(0.0);
    h.sample(10.0);
    h.sample(9.9999);
    h.sample(100.0);
    EXPECT_EQ(h.bucketCount(0), 2u);  // 0.0 and 9.9999
    EXPECT_EQ(h.bucketCount(1), 1u);  // 10.0
    EXPECT_EQ(h.underflow(), 0u);
    EXPECT_EQ(h.overflow(), 1u);      // 100.0
}

TEST(Histogram, NegativeRangeEdges)
{
    st::Histogram h(-50.0, 50.0, 10);
    h.sample(-50.0);  // bottom edge: bucket 0
    h.sample(0.0);    // interior edge: bucket 5
    h.sample(-50.1);  // below the range
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(5), 1u);
    EXPECT_EQ(h.underflow(), 1u);
}

TEST(StatSet, ReportIsSortedAndComplete)
{
    st::StatSet set;
    st::Counter b, a;
    ++a;
    b += 2;
    set.registerCounter("zeta", &b);
    set.registerCounter("alpha", &a);
    std::ostringstream os;
    set.report(os);
    EXPECT_EQ(os.str(), "alpha 1\nzeta 2\n");
    EXPECT_EQ(set.counterValue("zeta"), 2u);
    EXPECT_EQ(set.counterValue("missing"), 0u);
}

TEST(StatSet, ReportCoversAllKindsInDeterministicOrder)
{
    st::StatSet set;
    st::Counter reads;
    st::Accumulator lat;
    double watts = 2.5;
    reads += 7;
    lat.sample(10.0);
    lat.sample(20.0);
    set.registerCounter("reads", &reads);
    set.registerAccumulator("lat", &lat);
    set.registerScalar("watts", &watts);

    // Counters, then accumulators (.mean/.count), then scalars; each
    // group alphabetical. Two dumps of the same set are identical.
    std::ostringstream a, b;
    set.report(a);
    set.report(b);
    EXPECT_EQ(a.str(),
              "reads 7\nlat.mean 15\nlat.count 2\nwatts 2.5\n");
    EXPECT_EQ(a.str(), b.str());

    // The set holds live pointers: resets show up in the next report.
    reads.reset();
    lat.reset();
    std::ostringstream c;
    set.report(c);
    EXPECT_EQ(c.str(), "reads 0\nlat.mean 0\nlat.count 0\nwatts 2.5\n");
}

TEST(StatSet, VisitMatchesReportValues)
{
    st::StatSet set;
    st::Counter n;
    st::Accumulator acc;
    double s = 1.25;
    n += 3;
    acc.sample(4.0);
    set.registerCounter("n", &n);
    set.registerAccumulator("acc", &acc);
    set.registerScalar("s", &s);

    std::vector<std::string> names;
    set.visit(
        [&](const std::string &name, std::uint64_t v) {
            names.push_back(name);
            if (name == "n") {
                EXPECT_EQ(v, 3u);
            }
            if (name == "acc.count") {
                EXPECT_EQ(v, 1u);
            }
        },
        [&](const std::string &name, double v) {
            names.push_back(name);
            if (name == "acc.mean") {
                EXPECT_DOUBLE_EQ(v, 4.0);
            }
            if (name == "s") {
                EXPECT_DOUBLE_EQ(v, 1.25);
            }
        });
    EXPECT_EQ(names,
              (std::vector<std::string>{"n", "acc.mean", "acc.count",
                                        "s"}));
}

TEST(StatSetDeath, DuplicateNamePanics)
{
    st::StatSet set;
    st::Counter c;
    set.registerCounter("x", &c);
    EXPECT_DEATH(set.registerCounter("x", &c), "duplicate");
}
