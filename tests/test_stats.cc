/**
 * @file
 * Unit tests for the statistics package.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/stats.hh"

namespace st = morpheus::sim::stats;

TEST(Counter, AccumulatesAndResets)
{
    st::Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 41;
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Accumulator, TracksMoments)
{
    st::Accumulator a;
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    a.sample(1.0);
    a.sample(3.0);
    a.sample(5.0);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.mean(), 3.0);
    EXPECT_DOUBLE_EQ(a.min(), 1.0);
    EXPECT_DOUBLE_EQ(a.max(), 5.0);
    EXPECT_DOUBLE_EQ(a.sum(), 9.0);
}

TEST(Histogram, BucketsSamplesCorrectly)
{
    st::Histogram h(0.0, 100.0, 10);
    h.sample(5.0);    // bucket 0
    h.sample(15.0);   // bucket 1
    h.sample(95.0);   // bucket 9
    h.sample(-1.0);   // underflow
    h.sample(100.0);  // overflow (range is half-open)
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(9), 1u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.samples(), 5u);
}

TEST(Histogram, QuantileInterpolatesBucketMidpoints)
{
    st::Histogram h(0.0, 100.0, 10);
    for (int i = 0; i < 100; ++i)
        h.sample(static_cast<double>(i));
    const double median = h.quantile(0.5);
    EXPECT_GE(median, 40.0);
    EXPECT_LE(median, 60.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
}

TEST(Histogram, ResetClearsEverything)
{
    st::Histogram h(0.0, 10.0, 5);
    h.sample(3.0);
    h.reset();
    EXPECT_EQ(h.samples(), 0u);
    EXPECT_EQ(h.bucketCount(1), 0u);
}

TEST(StatSet, ReportIsSortedAndComplete)
{
    st::StatSet set;
    st::Counter b, a;
    ++a;
    b += 2;
    set.registerCounter("zeta", &b);
    set.registerCounter("alpha", &a);
    std::ostringstream os;
    set.report(os);
    EXPECT_EQ(os.str(), "alpha 1\nzeta 2\n");
    EXPECT_EQ(set.counterValue("zeta"), 2u);
    EXPECT_EQ(set.counterValue("missing"), 0u);
}

TEST(StatSetDeath, DuplicateNamePanics)
{
    st::StatSet set;
    st::Counter c;
    set.registerCounter("x", &c);
    EXPECT_DEATH(set.registerCounter("x", &c), "duplicate");
}
