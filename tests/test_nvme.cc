/**
 * @file
 * NVMe layer tests: wire format, queue rings (phase tags), controller
 * dispatch, driver CID bookkeeping, and MDTS enforcement.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "nvme/driver.hh"
#include "sim/rng.hh"

namespace nv = morpheus::nvme;
namespace pc = morpheus::pcie;
namespace ms = morpheus::sim;

namespace {

struct Rig
{
    pc::PcieSwitch sw;
    pc::PortId host, ssd;
    nv::NvmeController ctrl;
    nv::NvmeDriver driver;

    explicit Rig(const nv::ControllerConfig &cfg = {})
        : host(sw.addPort("host", pc::LinkConfig{3, 16})),
          ssd(sw.addPort("ssd", pc::LinkConfig{3, 4})),
          ctrl(sw, ssd, cfg), driver(ctrl)
    {
        sw.mapWindow(0, 1ULL << 30, host, "host-dram");
    }
};

}  // namespace

TEST(NvmeCommand, EncodeDecodeRoundTrip)
{
    nv::Command c;
    c.opcode = nv::Opcode::kMRead;
    c.cid = 0x1234;
    c.nsid = 7;
    c.prp1 = 0xDEADBEEFCAFE;
    c.prp2 = 42;
    c.slba = 0x123456789AB;
    c.nlb = 255;
    c.instanceId = 99;
    c.cdw13 = 0xAABBCCDD;
    c.cdw14 = 0x11223344;
    const auto raw = c.encode();
    EXPECT_EQ(raw.size(), nv::kCommandBytes);
    EXPECT_EQ(nv::Command::decode(raw), c);
}

TEST(NvmeCommand, BlockArithmetic)
{
    nv::Command c;
    c.nlb = 0;  // 0-based: one block
    EXPECT_EQ(c.numBlocks(), 1u);
    EXPECT_EQ(c.dataBytes(), 512u);
    c.nlb = 255;
    EXPECT_EQ(c.dataBytes(), 128u * 1024u);
}

TEST(NvmeCommand, MorpheusOpcodeClassification)
{
    EXPECT_TRUE(nv::isMorpheusOpcode(nv::Opcode::kMInit));
    EXPECT_TRUE(nv::isMorpheusOpcode(nv::Opcode::kMDeinit));
    EXPECT_FALSE(nv::isMorpheusOpcode(nv::Opcode::kRead));
    EXPECT_FALSE(nv::isMorpheusOpcode(nv::Opcode::kFlush));
}

TEST(SubmissionQueue, WrapsAndTracksOccupancy)
{
    nv::SubmissionQueue sq(4);
    EXPECT_TRUE(sq.empty());
    EXPECT_EQ(sq.freeSlots(), 3u);  // one sacrificial slot
    nv::Command c;
    sq.push(c);
    sq.push(c);
    sq.push(c);
    EXPECT_TRUE(sq.full());
    sq.pop();
    sq.push(c);  // wraps
    EXPECT_TRUE(sq.full());
    sq.pop();
    sq.pop();
    sq.pop();
    EXPECT_TRUE(sq.empty());
}

TEST(SubmissionQueueDeath, OverflowAndUnderflow)
{
    nv::SubmissionQueue sq(2);
    nv::Command c;
    sq.push(c);
    EXPECT_DEATH(sq.push(c), "full");
    sq.pop();
    EXPECT_DEATH(sq.pop(), "empty");
}

TEST(CompletionQueue, PhaseTagFlipsOnWrap)
{
    nv::CompletionQueue cq(3);
    for (int round = 0; round < 4; ++round) {
        nv::Completion e;
        e.cid = static_cast<std::uint16_t>(round);
        cq.post(e);
        ASSERT_TRUE(cq.hasNew());
        const auto got = cq.take();
        EXPECT_EQ(got.cid, round);
        EXPECT_FALSE(cq.hasNew());
    }
}

TEST(NvmeController, DispatchesToHandler)
{
    Rig rig;
    int calls = 0;
    rig.ctrl.setHandler(
        [&](const nv::Command &cmd, ms::Tick start) {
            ++calls;
            EXPECT_EQ(cmd.opcode, nv::Opcode::kRead);
            return nv::CommandResult{start + 100, nv::Status::kSuccess,
                                     7};
        });
    const auto qid = rig.driver.openQueue(8, 0x1000, 0x2000);
    nv::Command c;
    c.opcode = nv::Opcode::kRead;
    const auto cqe = rig.driver.io(qid, c, 0);
    EXPECT_EQ(calls, 1);
    EXPECT_TRUE(cqe.ok());
    EXPECT_EQ(cqe.dw0, 7u);
    EXPECT_GT(cqe.postedAt, 100u);
    EXPECT_EQ(rig.ctrl.commandsProcessed(), 1u);
}

TEST(NvmeController, MdtsRejectsOversizedReads)
{
    nv::ControllerConfig cfg;
    cfg.maxTransferBlocks = 8;
    Rig rig(cfg);
    rig.ctrl.setHandler([](const nv::Command &, ms::Tick start) {
        return nv::CommandResult{start, nv::Status::kSuccess, 0};
    });
    const auto qid = rig.driver.openQueue(8, 0x1000, 0x2000);
    nv::Command c;
    c.opcode = nv::Opcode::kRead;
    c.nlb = 8;  // 9 blocks > MDTS of 8
    const auto cqe = rig.driver.io(qid, c, 0);
    EXPECT_EQ(cqe.status, nv::Status::kInvalidField);
}

TEST(NvmeController, UnknownOpcodeRejected)
{
    Rig rig;
    rig.ctrl.setHandler([](const nv::Command &, ms::Tick start) {
        return nv::CommandResult{start, nv::Status::kSuccess, 0};
    });
    const auto qid = rig.driver.openQueue(8, 0x1000, 0x2000);
    nv::Command c;
    c.opcode = static_cast<nv::Opcode>(0x55);
    const auto cqe = rig.driver.io(qid, c, 0);
    EXPECT_EQ(cqe.status, nv::Status::kInvalidOpcode);
}

TEST(NvmeDriver, BatchedSubmissionsCompleteOutOfOrderSafely)
{
    Rig rig;
    // Handler finishes later commands earlier.
    int n = 0;
    rig.ctrl.setHandler([&](const nv::Command &, ms::Tick start) {
        const ms::Tick dur = (3 - n) * 1000;
        ++n;
        return nv::CommandResult{start + dur, nv::Status::kSuccess,
                                 static_cast<std::uint32_t>(n)};
    });
    const auto qid = rig.driver.openQueue(8, 0x1000, 0x2000);
    nv::Command c;
    c.opcode = nv::Opcode::kFlush;
    const auto t1 = rig.driver.submit(qid, c);
    const auto t2 = rig.driver.submit(qid, c);
    const auto t3 = rig.driver.submit(qid, c);
    rig.driver.ring(qid, 0);
    // Wait in reverse order; the driver caches mismatched CQEs.
    EXPECT_EQ(rig.driver.wait(t3).dw0, 3u);
    EXPECT_EQ(rig.driver.wait(t1).dw0, 1u);
    EXPECT_EQ(rig.driver.wait(t2).dw0, 2u);
}

TEST(NvmeDriver, CommandsCarryDistinctCids)
{
    Rig rig;
    rig.ctrl.setHandler([](const nv::Command &, ms::Tick start) {
        return nv::CommandResult{start, nv::Status::kSuccess, 0};
    });
    const auto qid = rig.driver.openQueue(16, 0x1000, 0x2000);
    nv::Command c;
    c.opcode = nv::Opcode::kFlush;
    const auto a = rig.driver.submit(qid, c);
    const auto b = rig.driver.submit(qid, c);
    EXPECT_NE(a.cid, b.cid);
    rig.driver.ring(qid, 0);
    rig.driver.wait(a);
    rig.driver.wait(b);
}

TEST(NvmeController, DoorbellCostsAndInterruptsAccrue)
{
    Rig rig;
    rig.ctrl.setHandler([](const nv::Command &, ms::Tick start) {
        return nv::CommandResult{start, nv::Status::kSuccess, 0};
    });
    const auto qid = rig.driver.openQueue(8, 0x1000, 0x2000);
    nv::Command c;
    c.opcode = nv::Opcode::kFlush;
    const auto cqe = rig.driver.io(qid, c, 1000);
    // Completion strictly after submission: doorbell + fetch +
    // dispatch + CQE write + interrupt.
    EXPECT_GT(cqe.postedAt, 1000u);
}

TEST(NvmeCommand, WireFormatRoundTripsRandomCommands)
{
    // Property: every field survives the 64-byte encode/decode for
    // arbitrary values (including the vendor opcodes).
    morpheus::sim::Rng rng(2024);
    const nv::Opcode opcodes[] = {
        nv::Opcode::kFlush,  nv::Opcode::kWrite,  nv::Opcode::kRead,
        nv::Opcode::kDsm,    nv::Opcode::kMInit,  nv::Opcode::kMRead,
        nv::Opcode::kMWrite, nv::Opcode::kMDeinit};
    for (int i = 0; i < 500; ++i) {
        nv::Command c;
        c.opcode = opcodes[rng.nextBelow(std::size(opcodes))];
        c.cid = static_cast<std::uint16_t>(rng.next());
        c.nsid = static_cast<std::uint32_t>(rng.next());
        c.prp1 = rng.next();
        c.prp2 = rng.next();
        c.slba = rng.next() >> 16;
        c.nlb = static_cast<std::uint16_t>(rng.next());
        c.instanceId = static_cast<std::uint32_t>(rng.next());
        c.cdw13 = static_cast<std::uint32_t>(rng.next());
        c.cdw14 = static_cast<std::uint32_t>(rng.next());
        ASSERT_EQ(nv::Command::decode(c.encode()), c);
    }
}

TEST(NvmeDriver, IndependentQueuePairsDoNotInterfere)
{
    Rig rig;
    int handled = 0;
    rig.ctrl.setHandler([&](const nv::Command &, ms::Tick start) {
        ++handled;
        return nv::CommandResult{start + 100, nv::Status::kSuccess,
                                 static_cast<std::uint32_t>(handled)};
    });
    const auto q1 = rig.driver.openQueue(8, 0x1000, 0x2000);
    const auto q2 = rig.driver.openQueue(8, 0x3000, 0x4000);
    nv::Command c;
    c.opcode = nv::Opcode::kFlush;
    const auto t1 = rig.driver.submit(q1, c);
    const auto t2 = rig.driver.submit(q2, c);
    // Ring q2 first: q1's command must stay pending until its own
    // doorbell.
    rig.driver.ring(q2, 0);
    EXPECT_EQ(rig.driver.wait(t2).dw0, 1u);
    rig.driver.ring(q1, 0);
    EXPECT_EQ(rig.driver.wait(t1).dw0, 2u);
}

TEST(NvmeDriver, QueueWrapStress)
{
    Rig rig;
    rig.ctrl.setHandler([](const nv::Command &cmd, ms::Tick start) {
        return nv::CommandResult{start + 10, nv::Status::kSuccess,
                                 cmd.cdw14};
    });
    const auto qid = rig.driver.openQueue(4, 0x1000, 0x2000);
    // Far more commands than ring slots: wraps both rings many times.
    ms::Tick t = 0;
    for (std::uint32_t i = 0; i < 100; ++i) {
        nv::Command c;
        c.opcode = nv::Opcode::kFlush;
        c.cdw14 = i;
        const auto cqe = rig.driver.io(qid, c, t);
        ASSERT_TRUE(cqe.ok());
        ASSERT_EQ(cqe.dw0, i);
        t = cqe.postedAt;
    }
    EXPECT_EQ(rig.ctrl.commandsProcessed(), 100u);
}

TEST(NvmeStatus, EveryStatusHasAUniqueName)
{
    const nv::Status all[] = {
        nv::Status::kSuccess,         nv::Status::kInvalidOpcode,
        nv::Status::kInvalidField,    nv::Status::kTransientTransferError,
        nv::Status::kLbaOutOfRange,   nv::Status::kNoSuchInstance,
        nv::Status::kAppLoadFailed,   nv::Status::kInstanceBusy,
        nv::Status::kAdmissionDenied, nv::Status::kDsramExhausted,
        nv::Status::kAppFault,        nv::Status::kSequenceError,
        nv::Status::kMediaError,      nv::Status::kCommandTimeout};
    std::set<std::string> names;
    for (const nv::Status s : all) {
        const char *name = nv::statusName(s);
        ASSERT_NE(name, nullptr);
        EXPECT_STRNE(name, "Unknown");
        names.insert(name);
    }
    EXPECT_EQ(names.size(), std::size(all));
}

TEST(NvmeStatus, RetryabilityClassification)
{
    // Transient conditions a resubmission can clear...
    EXPECT_TRUE(nv::isRetryable(nv::Status::kTransientTransferError));
    EXPECT_TRUE(nv::isRetryable(nv::Status::kInstanceBusy));
    EXPECT_TRUE(nv::isRetryable(nv::Status::kDsramExhausted));
    EXPECT_TRUE(nv::isRetryable(nv::Status::kMediaError));
    EXPECT_TRUE(nv::isRetryable(nv::Status::kSequenceError));
    // ...vs. deterministic failures and unknown device-side state.
    EXPECT_FALSE(nv::isRetryable(nv::Status::kSuccess));
    EXPECT_FALSE(nv::isRetryable(nv::Status::kInvalidOpcode));
    EXPECT_FALSE(nv::isRetryable(nv::Status::kInvalidField));
    EXPECT_FALSE(nv::isRetryable(nv::Status::kLbaOutOfRange));
    EXPECT_FALSE(nv::isRetryable(nv::Status::kNoSuchInstance));
    EXPECT_FALSE(nv::isRetryable(nv::Status::kAppLoadFailed));
    EXPECT_FALSE(nv::isRetryable(nv::Status::kAdmissionDenied));
    EXPECT_FALSE(nv::isRetryable(nv::Status::kAppFault));
    EXPECT_FALSE(nv::isRetryable(nv::Status::kCommandTimeout));
}

TEST(NvmeCompletion, WireFormatRoundTripsEveryStatus)
{
    const nv::Status all[] = {
        nv::Status::kSuccess,         nv::Status::kInvalidOpcode,
        nv::Status::kInvalidField,    nv::Status::kTransientTransferError,
        nv::Status::kLbaOutOfRange,   nv::Status::kNoSuchInstance,
        nv::Status::kAppLoadFailed,   nv::Status::kInstanceBusy,
        nv::Status::kAdmissionDenied, nv::Status::kDsramExhausted,
        nv::Status::kAppFault,        nv::Status::kSequenceError,
        nv::Status::kMediaError,      nv::Status::kCommandTimeout};
    std::uint32_t dw0 = 0x1000;
    for (const nv::Status s : all) {
        nv::Completion e;
        e.dw0 = dw0++;  // e.g. a retry-after hint riding DW0
        e.sqHead = 0x55;
        e.sqId = 3;
        e.cid = 0xBEEF;
        e.status = s;
        e.phase = (dw0 & 1) != 0;
        const auto raw = e.encode();
        const nv::Completion back = nv::Completion::decode(raw);
        EXPECT_EQ(back.dw0, e.dw0);
        EXPECT_EQ(back.sqHead, e.sqHead);
        EXPECT_EQ(back.sqId, e.sqId);
        EXPECT_EQ(back.cid, e.cid);
        EXPECT_EQ(back.status, s) << nv::statusName(s);
        EXPECT_EQ(back.phase, e.phase);
    }
}

TEST(NvmeDriver, SynthesizesTimeoutForDroppedCqe)
{
    Rig rig;
    rig.ctrl.setHandler([](const nv::Command &, ms::Tick start) {
        // Executed, but the firmware never posts the CQE.
        return nv::CommandResult{start + 100, nv::Status::kSuccess, 0,
                                 /*dropped=*/true};
    });
    nv::DriverRecoveryConfig rec;
    rec.enabled = true;
    rig.driver.setRecovery(rec);
    const auto qid = rig.driver.openQueue(8, 0x1000, 0x2000);
    nv::Command c;
    c.opcode = nv::Opcode::kFlush;
    const auto cqe = rig.driver.io(qid, c, 5000);
    EXPECT_EQ(cqe.status, nv::Status::kCommandTimeout);
    // Aborted at the deadline: doorbell tick + the command timeout.
    EXPECT_EQ(cqe.postedAt, 5000 + rec.commandTimeout);
    EXPECT_EQ(rig.driver.timeoutsSynthesized(), 1u);
    // The synthesized abort is fatal by classification: the command's
    // device-side effects may have happened, resubmitting is not safe.
    EXPECT_FALSE(nv::isRetryable(cqe.status));
}

TEST(NvmeDriverDeath, DroppedCqeWithoutRecoveryPanics)
{
    Rig rig;
    rig.ctrl.setHandler([](const nv::Command &, ms::Tick start) {
        return nv::CommandResult{start + 100, nv::Status::kSuccess, 0,
                                 /*dropped=*/true};
    });
    const auto qid = rig.driver.openQueue(8, 0x1000, 0x2000);
    nv::Command c;
    c.opcode = nv::Opcode::kFlush;
    EXPECT_DEATH(rig.driver.io(qid, c, 0), "no completion");
}

TEST(NvmeDriver, IoRetryHonorsRetryAfterHint)
{
    Rig rig;
    std::vector<ms::Tick> starts;
    rig.ctrl.setHandler([&](const nv::Command &, ms::Tick start) {
        starts.push_back(start);
        if (starts.size() < 3) {
            // Busy bounce carrying a 40 us retry-after hint in DW0.
            return nv::CommandResult{start + 10,
                                     nv::Status::kInstanceBusy, 40};
        }
        return nv::CommandResult{start + 10, nv::Status::kSuccess, 0};
    });
    nv::DriverRecoveryConfig rec;
    rec.enabled = true;
    rig.driver.setRecovery(rec);
    const auto qid = rig.driver.openQueue(8, 0x1000, 0x2000);
    nv::Command c;
    c.opcode = nv::Opcode::kFlush;
    const auto cqe = rig.driver.ioRetry(qid, c, 0);
    EXPECT_TRUE(cqe.ok());
    ASSERT_EQ(starts.size(), 3u);
    EXPECT_EQ(rig.driver.retriesIssued(), 2u);
    // Each resubmission waited at least the hinted 40 us beyond the
    // previous attempt's completion.
    EXPECT_GE(starts[1], starts[0] + 40 * ms::kPsPerUs);
    EXPECT_GE(starts[2], starts[1] + 40 * ms::kPsPerUs);
}

TEST(NvmeDriver, IoRetryBacksOffExponentiallyWithoutHint)
{
    Rig rig;
    std::vector<ms::Tick> starts;
    rig.ctrl.setHandler([&](const nv::Command &, ms::Tick start) {
        starts.push_back(start);
        if (starts.size() < 3) {
            // Media errors carry no retry-after hint (dw0 == 0).
            return nv::CommandResult{start + 10,
                                     nv::Status::kMediaError, 0};
        }
        return nv::CommandResult{start + 10, nv::Status::kSuccess, 0};
    });
    nv::DriverRecoveryConfig rec;
    rec.enabled = true;
    rig.driver.setRecovery(rec);
    const auto qid = rig.driver.openQueue(8, 0x1000, 0x2000);
    nv::Command c;
    c.opcode = nv::Opcode::kFlush;
    const auto cqe = rig.driver.ioRetry(qid, c, 0);
    EXPECT_TRUE(cqe.ok());
    ASSERT_EQ(starts.size(), 3u);
    // The base delay doubles per attempt; +/-25% jitter cannot close a
    // 2x gap, so inter-attempt spacing must strictly grow.
    const ms::Tick gap1 = starts[1] - starts[0];
    const ms::Tick gap2 = starts[2] - starts[1];
    EXPECT_GT(gap2, gap1);
}

TEST(NvmeDriver, IoRetryStopsAtBudgetAndOnFatalStatus)
{
    Rig rig;
    int calls = 0;
    rig.ctrl.setHandler([&](const nv::Command &, ms::Tick start) {
        ++calls;
        return nv::CommandResult{start + 10, nv::Status::kMediaError,
                                 0};
    });
    nv::DriverRecoveryConfig rec;
    rec.enabled = true;
    rec.maxRetries = 2;
    rig.driver.setRecovery(rec);
    const auto qid = rig.driver.openQueue(8, 0x1000, 0x2000);
    nv::Command c;
    c.opcode = nv::Opcode::kFlush;
    const auto cqe = rig.driver.ioRetry(qid, c, 0);
    EXPECT_EQ(cqe.status, nv::Status::kMediaError);
    EXPECT_EQ(calls, 3);  // initial + 2 retries
    EXPECT_EQ(rig.driver.retriesIssued(), 2u);

    // A fatal status is returned immediately, no retry at all.
    calls = 0;
    rig.ctrl.setHandler([&](const nv::Command &, ms::Tick start) {
        ++calls;
        return nv::CommandResult{start + 10, nv::Status::kAppFault, 0};
    });
    const auto fatal = rig.driver.ioRetry(qid, c, 0);
    EXPECT_EQ(fatal.status, nv::Status::kAppFault);
    EXPECT_EQ(calls, 1);
}

TEST(NvmeDriver, IoRetryIsPlainIoWithRecoveryDisabled)
{
    Rig rig;
    int calls = 0;
    rig.ctrl.setHandler([&](const nv::Command &, ms::Tick start) {
        ++calls;
        return nv::CommandResult{start + 10, nv::Status::kMediaError,
                                 0};
    });
    const auto qid = rig.driver.openQueue(8, 0x1000, 0x2000);
    nv::Command c;
    c.opcode = nv::Opcode::kFlush;
    const auto cqe = rig.driver.ioRetry(qid, c, 0);
    EXPECT_EQ(cqe.status, nv::Status::kMediaError);
    EXPECT_EQ(calls, 1);
    EXPECT_EQ(rig.driver.retriesIssued(), 0u);
}
