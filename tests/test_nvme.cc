/**
 * @file
 * NVMe layer tests: wire format, queue rings (phase tags), controller
 * dispatch, driver CID bookkeeping, and MDTS enforcement.
 */

#include <gtest/gtest.h>

#include "nvme/driver.hh"
#include "sim/rng.hh"

namespace nv = morpheus::nvme;
namespace pc = morpheus::pcie;
namespace ms = morpheus::sim;

namespace {

struct Rig
{
    pc::PcieSwitch sw;
    pc::PortId host, ssd;
    nv::NvmeController ctrl;
    nv::NvmeDriver driver;

    explicit Rig(const nv::ControllerConfig &cfg = {})
        : host(sw.addPort("host", pc::LinkConfig{3, 16})),
          ssd(sw.addPort("ssd", pc::LinkConfig{3, 4})),
          ctrl(sw, ssd, cfg), driver(ctrl)
    {
        sw.mapWindow(0, 1ULL << 30, host, "host-dram");
    }
};

}  // namespace

TEST(NvmeCommand, EncodeDecodeRoundTrip)
{
    nv::Command c;
    c.opcode = nv::Opcode::kMRead;
    c.cid = 0x1234;
    c.nsid = 7;
    c.prp1 = 0xDEADBEEFCAFE;
    c.prp2 = 42;
    c.slba = 0x123456789AB;
    c.nlb = 255;
    c.instanceId = 99;
    c.cdw13 = 0xAABBCCDD;
    c.cdw14 = 0x11223344;
    const auto raw = c.encode();
    EXPECT_EQ(raw.size(), nv::kCommandBytes);
    EXPECT_EQ(nv::Command::decode(raw), c);
}

TEST(NvmeCommand, BlockArithmetic)
{
    nv::Command c;
    c.nlb = 0;  // 0-based: one block
    EXPECT_EQ(c.numBlocks(), 1u);
    EXPECT_EQ(c.dataBytes(), 512u);
    c.nlb = 255;
    EXPECT_EQ(c.dataBytes(), 128u * 1024u);
}

TEST(NvmeCommand, MorpheusOpcodeClassification)
{
    EXPECT_TRUE(nv::isMorpheusOpcode(nv::Opcode::kMInit));
    EXPECT_TRUE(nv::isMorpheusOpcode(nv::Opcode::kMDeinit));
    EXPECT_FALSE(nv::isMorpheusOpcode(nv::Opcode::kRead));
    EXPECT_FALSE(nv::isMorpheusOpcode(nv::Opcode::kFlush));
}

TEST(SubmissionQueue, WrapsAndTracksOccupancy)
{
    nv::SubmissionQueue sq(4);
    EXPECT_TRUE(sq.empty());
    EXPECT_EQ(sq.freeSlots(), 3u);  // one sacrificial slot
    nv::Command c;
    sq.push(c);
    sq.push(c);
    sq.push(c);
    EXPECT_TRUE(sq.full());
    sq.pop();
    sq.push(c);  // wraps
    EXPECT_TRUE(sq.full());
    sq.pop();
    sq.pop();
    sq.pop();
    EXPECT_TRUE(sq.empty());
}

TEST(SubmissionQueueDeath, OverflowAndUnderflow)
{
    nv::SubmissionQueue sq(2);
    nv::Command c;
    sq.push(c);
    EXPECT_DEATH(sq.push(c), "full");
    sq.pop();
    EXPECT_DEATH(sq.pop(), "empty");
}

TEST(CompletionQueue, PhaseTagFlipsOnWrap)
{
    nv::CompletionQueue cq(3);
    for (int round = 0; round < 4; ++round) {
        nv::Completion e;
        e.cid = static_cast<std::uint16_t>(round);
        cq.post(e);
        ASSERT_TRUE(cq.hasNew());
        const auto got = cq.take();
        EXPECT_EQ(got.cid, round);
        EXPECT_FALSE(cq.hasNew());
    }
}

TEST(NvmeController, DispatchesToHandler)
{
    Rig rig;
    int calls = 0;
    rig.ctrl.setHandler(
        [&](const nv::Command &cmd, ms::Tick start) {
            ++calls;
            EXPECT_EQ(cmd.opcode, nv::Opcode::kRead);
            return nv::CommandResult{start + 100, nv::Status::kSuccess,
                                     7};
        });
    const auto qid = rig.driver.openQueue(8, 0x1000, 0x2000);
    nv::Command c;
    c.opcode = nv::Opcode::kRead;
    const auto cqe = rig.driver.io(qid, c, 0);
    EXPECT_EQ(calls, 1);
    EXPECT_TRUE(cqe.ok());
    EXPECT_EQ(cqe.dw0, 7u);
    EXPECT_GT(cqe.postedAt, 100u);
    EXPECT_EQ(rig.ctrl.commandsProcessed(), 1u);
}

TEST(NvmeController, MdtsRejectsOversizedReads)
{
    nv::ControllerConfig cfg;
    cfg.maxTransferBlocks = 8;
    Rig rig(cfg);
    rig.ctrl.setHandler([](const nv::Command &, ms::Tick start) {
        return nv::CommandResult{start, nv::Status::kSuccess, 0};
    });
    const auto qid = rig.driver.openQueue(8, 0x1000, 0x2000);
    nv::Command c;
    c.opcode = nv::Opcode::kRead;
    c.nlb = 8;  // 9 blocks > MDTS of 8
    const auto cqe = rig.driver.io(qid, c, 0);
    EXPECT_EQ(cqe.status, nv::Status::kInvalidField);
}

TEST(NvmeController, UnknownOpcodeRejected)
{
    Rig rig;
    rig.ctrl.setHandler([](const nv::Command &, ms::Tick start) {
        return nv::CommandResult{start, nv::Status::kSuccess, 0};
    });
    const auto qid = rig.driver.openQueue(8, 0x1000, 0x2000);
    nv::Command c;
    c.opcode = static_cast<nv::Opcode>(0x55);
    const auto cqe = rig.driver.io(qid, c, 0);
    EXPECT_EQ(cqe.status, nv::Status::kInvalidOpcode);
}

TEST(NvmeDriver, BatchedSubmissionsCompleteOutOfOrderSafely)
{
    Rig rig;
    // Handler finishes later commands earlier.
    int n = 0;
    rig.ctrl.setHandler([&](const nv::Command &, ms::Tick start) {
        const ms::Tick dur = (3 - n) * 1000;
        ++n;
        return nv::CommandResult{start + dur, nv::Status::kSuccess,
                                 static_cast<std::uint32_t>(n)};
    });
    const auto qid = rig.driver.openQueue(8, 0x1000, 0x2000);
    nv::Command c;
    c.opcode = nv::Opcode::kFlush;
    const auto t1 = rig.driver.submit(qid, c);
    const auto t2 = rig.driver.submit(qid, c);
    const auto t3 = rig.driver.submit(qid, c);
    rig.driver.ring(qid, 0);
    // Wait in reverse order; the driver caches mismatched CQEs.
    EXPECT_EQ(rig.driver.wait(t3).dw0, 3u);
    EXPECT_EQ(rig.driver.wait(t1).dw0, 1u);
    EXPECT_EQ(rig.driver.wait(t2).dw0, 2u);
}

TEST(NvmeDriver, CommandsCarryDistinctCids)
{
    Rig rig;
    rig.ctrl.setHandler([](const nv::Command &, ms::Tick start) {
        return nv::CommandResult{start, nv::Status::kSuccess, 0};
    });
    const auto qid = rig.driver.openQueue(16, 0x1000, 0x2000);
    nv::Command c;
    c.opcode = nv::Opcode::kFlush;
    const auto a = rig.driver.submit(qid, c);
    const auto b = rig.driver.submit(qid, c);
    EXPECT_NE(a.cid, b.cid);
    rig.driver.ring(qid, 0);
    rig.driver.wait(a);
    rig.driver.wait(b);
}

TEST(NvmeController, DoorbellCostsAndInterruptsAccrue)
{
    Rig rig;
    rig.ctrl.setHandler([](const nv::Command &, ms::Tick start) {
        return nv::CommandResult{start, nv::Status::kSuccess, 0};
    });
    const auto qid = rig.driver.openQueue(8, 0x1000, 0x2000);
    nv::Command c;
    c.opcode = nv::Opcode::kFlush;
    const auto cqe = rig.driver.io(qid, c, 1000);
    // Completion strictly after submission: doorbell + fetch +
    // dispatch + CQE write + interrupt.
    EXPECT_GT(cqe.postedAt, 1000u);
}

TEST(NvmeCommand, WireFormatRoundTripsRandomCommands)
{
    // Property: every field survives the 64-byte encode/decode for
    // arbitrary values (including the vendor opcodes).
    morpheus::sim::Rng rng(2024);
    const nv::Opcode opcodes[] = {
        nv::Opcode::kFlush,  nv::Opcode::kWrite,  nv::Opcode::kRead,
        nv::Opcode::kDsm,    nv::Opcode::kMInit,  nv::Opcode::kMRead,
        nv::Opcode::kMWrite, nv::Opcode::kMDeinit};
    for (int i = 0; i < 500; ++i) {
        nv::Command c;
        c.opcode = opcodes[rng.nextBelow(std::size(opcodes))];
        c.cid = static_cast<std::uint16_t>(rng.next());
        c.nsid = static_cast<std::uint32_t>(rng.next());
        c.prp1 = rng.next();
        c.prp2 = rng.next();
        c.slba = rng.next() >> 16;
        c.nlb = static_cast<std::uint16_t>(rng.next());
        c.instanceId = static_cast<std::uint32_t>(rng.next());
        c.cdw13 = static_cast<std::uint32_t>(rng.next());
        c.cdw14 = static_cast<std::uint32_t>(rng.next());
        ASSERT_EQ(nv::Command::decode(c.encode()), c);
    }
}

TEST(NvmeDriver, IndependentQueuePairsDoNotInterfere)
{
    Rig rig;
    int handled = 0;
    rig.ctrl.setHandler([&](const nv::Command &, ms::Tick start) {
        ++handled;
        return nv::CommandResult{start + 100, nv::Status::kSuccess,
                                 static_cast<std::uint32_t>(handled)};
    });
    const auto q1 = rig.driver.openQueue(8, 0x1000, 0x2000);
    const auto q2 = rig.driver.openQueue(8, 0x3000, 0x4000);
    nv::Command c;
    c.opcode = nv::Opcode::kFlush;
    const auto t1 = rig.driver.submit(q1, c);
    const auto t2 = rig.driver.submit(q2, c);
    // Ring q2 first: q1's command must stay pending until its own
    // doorbell.
    rig.driver.ring(q2, 0);
    EXPECT_EQ(rig.driver.wait(t2).dw0, 1u);
    rig.driver.ring(q1, 0);
    EXPECT_EQ(rig.driver.wait(t1).dw0, 2u);
}

TEST(NvmeDriver, QueueWrapStress)
{
    Rig rig;
    rig.ctrl.setHandler([](const nv::Command &cmd, ms::Tick start) {
        return nv::CommandResult{start + 10, nv::Status::kSuccess,
                                 cmd.cdw14};
    });
    const auto qid = rig.driver.openQueue(4, 0x1000, 0x2000);
    // Far more commands than ring slots: wraps both rings many times.
    ms::Tick t = 0;
    for (std::uint32_t i = 0; i < 100; ++i) {
        nv::Command c;
        c.opcode = nv::Opcode::kFlush;
        c.cdw14 = i;
        const auto cqe = rig.driver.io(qid, c, t);
        ASSERT_TRUE(cqe.ok());
        ASSERT_EQ(cqe.dw0, i);
        t = cqe.postedAt;
    }
    EXPECT_EQ(rig.ctrl.commandsProcessed(), 100u);
}
