/**
 * @file
 * JSON record-array tests: the incremental parser's event stream, its
 * chunk-size invariance, binary/text round trips, error handling, and
 * the end-to-end device path (JsonRecordsApp == host parse).
 */

#include <gtest/gtest.h>

#include <string>

#include "core/host_runtime.hh"
#include "core/standard_apps.hh"
#include "serde/json.hh"
#include "sim/rng.hh"

namespace co = morpheus::core;
namespace ho = morpheus::host;
namespace sd = morpheus::serde;

namespace {

/** Build a deterministic random record array. */
sd::JsonRecordsObject
genRecords(std::uint64_t seed, std::uint32_t records)
{
    morpheus::sim::Rng rng(seed);
    sd::JsonRecordsObject o;
    for (std::uint32_t r = 0; r < records; ++r) {
        const auto n = 1 + rng.nextBelow(12);
        for (std::uint64_t i = 0; i < n; ++i) {
            if (rng.nextBool(0.3)) {
                o.values.push_back(
                    static_cast<double>(rng.nextInRange(-9999, 9999)) /
                    100.0);
            } else {
                o.values.push_back(static_cast<double>(
                    rng.nextInRange(-100000, 100000)));
            }
        }
        o.recordOffsets.push_back(
            static_cast<std::uint32_t>(o.values.size()));
    }
    return o;
}

std::vector<std::uint8_t>
jsonText(const sd::JsonRecordsObject &o)
{
    sd::TextWriter w;
    o.serialize(w);
    return w.take();
}

}  // namespace

TEST(JsonParser, SimpleDocumentEventStream)
{
    const std::string doc = "[[1, 2.5], [3]]";
    sd::JsonRowParser p;
    p.feed(reinterpret_cast<const std::uint8_t *>(doc.data()),
           doc.size());
    p.finish();
    using E = sd::JsonRowParser::Event;
    EXPECT_EQ(p.next(), E::kBeginRecord);
    ASSERT_EQ(p.next(), E::kNumber);
    EXPECT_DOUBLE_EQ(p.value(), 1.0);
    ASSERT_EQ(p.next(), E::kNumber);
    EXPECT_DOUBLE_EQ(p.value(), 2.5);
    EXPECT_EQ(p.next(), E::kEndRecord);
    EXPECT_EQ(p.next(), E::kBeginRecord);
    ASSERT_EQ(p.next(), E::kNumber);
    EXPECT_DOUBLE_EQ(p.value(), 3.0);
    EXPECT_EQ(p.next(), E::kEndRecord);
    EXPECT_EQ(p.next(), E::kEndDocument);
    EXPECT_EQ(p.next(), E::kEndDocument);  // idempotent
}

TEST(JsonParser, EmptyDocumentAndEmptyRecords)
{
    const std::string doc = " [ ] ";
    sd::JsonRecordsObject o;
    ASSERT_TRUE(sd::parseJsonRecords(
        reinterpret_cast<const std::uint8_t *>(doc.data()), doc.size(),
        &o, nullptr));
    EXPECT_EQ(o.numRecords(), 0u);

    const std::string doc2 = "[[],[1],[]]";
    ASSERT_TRUE(sd::parseJsonRecords(
        reinterpret_cast<const std::uint8_t *>(doc2.data()),
        doc2.size(), &o, nullptr));
    EXPECT_EQ(o.numRecords(), 3u);
    EXPECT_EQ(o.values.size(), 1u);
}

TEST(JsonParser, MalformedDocumentsReportErrors)
{
    const char *bad[] = {"", "[", "[[1,]]", "[1]", "[[1] [2]]",
                         "{\"a\":1}", "[[1,2],"};
    for (const auto *doc : bad) {
        sd::JsonRecordsObject o;
        EXPECT_FALSE(sd::parseJsonRecords(
            reinterpret_cast<const std::uint8_t *>(doc),
            std::strlen(doc), &o, nullptr))
            << doc;
    }
}

TEST(JsonParser, NeedMoreDataUntilFinished)
{
    sd::JsonRowParser p;
    const std::string part1 = "[[12";
    p.feed(reinterpret_cast<const std::uint8_t *>(part1.data()),
           part1.size());
    using E = sd::JsonRowParser::Event;
    EXPECT_EQ(p.next(), E::kBeginRecord);
    EXPECT_EQ(p.next(), E::kNeedMoreData);  // "12" may continue
    const std::string part2 = "34]]";
    p.feed(reinterpret_cast<const std::uint8_t *>(part2.data()),
           part2.size());
    p.finish();
    ASSERT_EQ(p.next(), E::kNumber);
    EXPECT_DOUBLE_EQ(p.value(), 1234.0);  // number reassembled
    EXPECT_EQ(p.next(), E::kEndRecord);
    EXPECT_EQ(p.next(), E::kEndDocument);
}

TEST(JsonRecords, TextRoundTrip)
{
    const auto o = genRecords(1, 200);
    const auto text = jsonText(o);
    sd::JsonRecordsObject back;
    ASSERT_TRUE(sd::parseJsonRecords(text.data(), text.size(), &back,
                                     nullptr));
    ASSERT_EQ(back.recordOffsets, o.recordOffsets);
    ASSERT_EQ(back.values.size(), o.values.size());
    for (std::size_t i = 0; i < o.values.size(); ++i)
        EXPECT_NEAR(back.values[i], o.values[i], 1e-9);
}

TEST(JsonRecords, BinaryRoundTrip)
{
    const auto o = genRecords(2, 100);
    const auto bin = o.toBinary();
    EXPECT_EQ(bin.size(), o.objectBytes());
    EXPECT_EQ(sd::JsonRecordsObject::fromBinary(bin), o);
}

class JsonChunkProperty : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(JsonChunkProperty, EventStreamInvariantUnderChunking)
{
    const auto o = genRecords(3, 150);
    const auto text = jsonText(o);

    // Reference: whole-buffer parse.
    sd::JsonRecordsObject ref;
    ASSERT_TRUE(sd::parseJsonRecords(text.data(), text.size(), &ref,
                                     nullptr));

    // Chunked parse.
    sd::JsonRowParser p;
    sd::JsonRecordsObject got;
    std::size_t pos = 0;
    bool done = false;
    while (!done) {
        using E = sd::JsonRowParser::Event;
        switch (p.next()) {
          case E::kBeginRecord:
            break;
          case E::kNumber:
            got.values.push_back(p.value());
            break;
          case E::kEndRecord:
            got.recordOffsets.push_back(
                static_cast<std::uint32_t>(got.values.size()));
            break;
          case E::kEndDocument:
            done = true;
            break;
          case E::kNeedMoreData: {
            ASSERT_LE(pos, text.size());
            const std::size_t take =
                std::min(GetParam(), text.size() - pos);
            if (take == 0) {
                p.finish();
            } else {
                p.feed(text.data() + pos, take);
                pos += take;
            }
            break;
          }
          case E::kError:
            FAIL() << p.message();
        }
    }
    EXPECT_EQ(got, ref);
}

INSTANTIATE_TEST_SUITE_P(Chunks, JsonChunkProperty,
                         ::testing::Values(1, 2, 7, 64, 1000, 65536));

TEST(JsonRecords, CostAccountsEveryByteOnce)
{
    const auto o = genRecords(4, 50);
    const auto text = jsonText(o);
    sd::ParseCost cost;
    sd::JsonRecordsObject back;
    ASSERT_TRUE(sd::parseJsonRecords(text.data(), text.size(), &back,
                                     &cost));
    EXPECT_LE(cost.bytes, text.size());
    EXPECT_GE(cost.bytes, text.size() / 2);
    EXPECT_EQ(cost.floatValues, o.values.size());
}

TEST(JsonEndToEnd, DeviceAppMatchesHostParse)
{
    // Full Morpheus path: the JSON document lives on flash, the
    // JsonRecordsApp deserializes it on the embedded cores, and the
    // DMA buffer decodes to exactly the host-parsed object.
    ho::HostSystem sys;
    co::MorpheusDeviceRuntime device(sys.ssd());
    co::NvmeP2p p2p(sys);
    co::MorpheusRuntime runtime(sys, device, p2p);
    const auto images = co::StandardImages::make();

    const auto o = genRecords(5, 4000);
    const auto text = jsonText(o);
    const auto file = sys.createFile("data.json", text);

    sd::JsonRecordsObject host_parsed;
    ASSERT_TRUE(sd::parseJsonRecords(text.data(), text.size(),
                                     &host_parsed, nullptr));

    const auto stream = runtime.streamCreate(file, file.readyAt);
    const auto target =
        runtime.hostTarget(host_parsed.objectBytes());
    const auto res = runtime.invoke(images.jsonRecords, stream, target,
                                    file.readyAt);
    EXPECT_EQ(res.returnValue, host_parsed.numRecords());
    EXPECT_GT(res.elapsed(), 0u);

    const auto bin = sys.mem().store().readVec(
        target.addr,
        static_cast<std::size_t>(host_parsed.objectBytes()));
    EXPECT_EQ(sd::JsonRecordsObject::fromBinary(bin), host_parsed);
}

TEST(JsonEndToEnd, DeviceChargesParseWorkToTheCore)
{
    ho::HostSystem sys;
    co::MorpheusDeviceRuntime device(sys.ssd());
    co::NvmeP2p p2p(sys);
    co::MorpheusRuntime runtime(sys, device, p2p);
    const auto images = co::StandardImages::make();

    const auto o = genRecords(6, 3000);
    const auto text = jsonText(o);
    const auto file = sys.createFile("big.json", text);
    const auto stream = runtime.streamCreate(file, file.readyAt);
    const auto target = runtime.hostTarget(o.objectBytes() + 4096);
    runtime.invoke(images.jsonRecords, stream, target, file.readyAt);

    // The instance mapped to core 1 (first instance id); it must have
    // executed at least a cycle per input byte.
    EXPECT_GT(sys.ssd().core(1).cyclesExecuted(),
              text.size() / 2);
}

#include "workloads/runner.hh"

TEST(JsonWorkload, AllModesValidate)
{
    const auto &app = morpheus::workloads::findApp("jsonreduce");
    for (const auto mode :
         {morpheus::workloads::ExecutionMode::kBaseline,
          morpheus::workloads::ExecutionMode::kMorpheus}) {
        morpheus::workloads::RunOptions o;
        o.mode = mode;
        o.scale = 0.05;
        const auto m = morpheus::workloads::runWorkload(app, o);
        EXPECT_TRUE(m.validated) << static_cast<int>(mode);
    }
}

TEST(JsonWorkload, FpuDecidesWhetherJsonOffloadPays)
{
    // Every JSON cell converts through the floating-point path, so
    // the FPU-less cores lose (the SpMV effect writ large) while the
    // paper's predicted FPU-equipped next generation wins.
    const auto &app = morpheus::workloads::findApp("jsonreduce");
    morpheus::workloads::RunOptions b;
    b.mode = morpheus::workloads::ExecutionMode::kBaseline;
    b.scale = 0.1;
    auto m = b;
    m.mode = morpheus::workloads::ExecutionMode::kMorpheus;
    const auto rb = morpheus::workloads::runWorkload(app, b);
    const auto r_soft = morpheus::workloads::runWorkload(app, m);
    m.sys.ssd.core.hasFpu = true;
    const auto r_fpu = morpheus::workloads::runWorkload(app, m);
    EXPECT_GT(r_soft.deserTime, rb.deserTime);  // soft float loses
    EXPECT_LT(r_fpu.deserTime, rb.deserTime);   // hardware FP wins
}
