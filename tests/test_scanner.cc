/**
 * @file
 * Scanner tests, including the chunk-boundary property that makes
 * StorageApps correct: a StreamingScanner fed arbitrary chunk sizes
 * must produce exactly the same token stream as one contiguous scan.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "serde/scanner.hh"
#include "sim/rng.hh"

namespace sd = morpheus::serde;

namespace {

std::vector<std::uint8_t>
bytes(const std::string &s)
{
    return std::vector<std::uint8_t>(s.begin(), s.end());
}

/** Collect all ints via TextScanner. */
std::vector<std::int64_t>
scanAll(const std::vector<std::uint8_t> &data)
{
    sd::TextScanner s(data.data(), data.size());
    std::vector<std::int64_t> out;
    std::int64_t v = 0;
    while (s.nextInt64(&v))
        out.push_back(v);
    return out;
}

}  // namespace

TEST(TextScanner, ReadsSequence)
{
    const auto data = bytes("1 2 3\n-4,5");
    EXPECT_EQ(scanAll(data),
              (std::vector<std::int64_t>{1, 2, 3, -4, 5}));
}

TEST(TextScanner, SkipsMalformedTokens)
{
    const auto data = bytes("1 abc 2 x9x 3");
    // "abc" skipped; "x9x" starts with non-digit so it is skipped too.
    EXPECT_EQ(scanAll(data), (std::vector<std::int64_t>{1, 2, 3}));
}

TEST(TextScanner, AtEndConsumesTrailingSeparators)
{
    const auto data = bytes("7   \n\n ");
    sd::TextScanner s(data.data(), data.size());
    std::int64_t v = 0;
    EXPECT_TRUE(s.nextInt64(&v));
    EXPECT_TRUE(s.atEnd());
}

TEST(TextScanner, MixedNumbers)
{
    const auto data = bytes("1 2.5 -3 4e1");
    sd::TextScanner s(data.data(), data.size());
    double v = 0.0;
    bool is_float = false;
    ASSERT_TRUE(s.nextNumber(&v, &is_float));
    EXPECT_FALSE(is_float);
    EXPECT_DOUBLE_EQ(v, 1.0);
    ASSERT_TRUE(s.nextNumber(&v, &is_float));
    EXPECT_TRUE(is_float);
    EXPECT_DOUBLE_EQ(v, 2.5);
    ASSERT_TRUE(s.nextNumber(&v, &is_float));
    EXPECT_FALSE(is_float);
    EXPECT_DOUBLE_EQ(v, -3.0);
    ASSERT_TRUE(s.nextNumber(&v, &is_float));
    EXPECT_TRUE(is_float);
    EXPECT_DOUBLE_EQ(v, 40.0);
    EXPECT_FALSE(s.nextNumber(&v, &is_float));
}

TEST(StreamingScanner, MatchesContiguousScan)
{
    const auto data = bytes("10 20 30 40 50 60 70 80 90 100");
    std::size_t pos = 0;
    sd::StreamingScanner s(
        [&](std::uint8_t *dst, std::size_t cap) {
            const std::size_t take =
                std::min(cap, data.size() - pos);
            std::copy(data.begin() + pos, data.begin() + pos + take,
                      dst);
            pos += take;
            return take;
        },
        7);  // tiny chunks to force token splits
    std::vector<std::int64_t> out;
    std::int64_t v = 0;
    while (s.nextInt64(&v))
        out.push_back(v);
    EXPECT_EQ(out, scanAll(data));
}

/** Property: every chunk size yields the identical token stream. */
class ChunkSizeProperty : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(ChunkSizeProperty, TokenStreamInvariantUnderChunking)
{
    // Deterministic pseudo-random mix of separators and signed ints.
    morpheus::sim::Rng rng(99);
    std::string text;
    std::vector<std::int64_t> expected;
    for (int i = 0; i < 500; ++i) {
        const std::int64_t v = rng.nextInRange(-1000000, 1000000);
        expected.push_back(v);
        text += std::to_string(v);
        switch (rng.nextBelow(4)) {
          case 0: text += ' '; break;
          case 1: text += '\n'; break;
          case 2: text += ", "; break;
          default: text += "\t"; break;
        }
    }
    const auto data = bytes(text);

    std::size_t pos = 0;
    sd::StreamingScanner s(
        [&](std::uint8_t *dst, std::size_t cap) {
            const std::size_t take =
                std::min({cap, GetParam(), data.size() - pos});
            std::copy(data.begin() + pos, data.begin() + pos + take,
                      dst);
            pos += take;
            return take;
        },
        GetParam());
    std::vector<std::int64_t> out;
    std::int64_t v = 0;
    while (s.nextInt64(&v))
        out.push_back(v);
    EXPECT_EQ(out, expected);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ChunkSizeProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 64, 511,
                                           4096));

TEST(StreamingScanner, IncrementalCarriesSplitTokens)
{
    // Feed "123" then "45 6": the first token is 12345, not 123.
    std::vector<std::vector<std::uint8_t>> chunks = {bytes("123"),
                                                     bytes("45 6")};
    std::size_t which = 0;
    sd::StreamingScanner s(
        [&](std::uint8_t *dst, std::size_t cap) -> std::size_t {
            if (which >= chunks.size())
                return 0;
            const auto &c = chunks[which];
            EXPECT_LE(c.size(), cap);
            std::copy(c.begin(), c.end(), dst);
            ++which;
            return c.size();
        },
        16, /*incremental=*/true);

    std::int64_t v = 0;
    // First call: chunk "123" arrives; the token may continue, so no
    // token is reported yet...
    // (both chunks get pulled by the scanner's internal loop, so the
    // value is complete.)
    ASSERT_TRUE(s.nextInt64(&v));
    EXPECT_EQ(v, 12345);
    // "6" is the trailing token; the stream is still open so it is not
    // parseable yet.
    EXPECT_FALSE(s.nextInt64(&v));
    s.setEndOfStream();
    ASSERT_TRUE(s.nextInt64(&v));
    EXPECT_EQ(v, 6);
    EXPECT_TRUE(s.atEnd());
}

TEST(StreamingScanner, IncrementalResumesAfterDryRefill)
{
    std::vector<std::uint8_t> pending;
    sd::StreamingScanner s(
        [&](std::uint8_t *dst, std::size_t cap) {
            const std::size_t take = std::min(cap, pending.size());
            std::copy(pending.begin(), pending.begin() + take, dst);
            pending.erase(pending.begin(), pending.begin() + take);
            return take;
        },
        16, /*incremental=*/true);

    std::int64_t v = 0;
    EXPECT_FALSE(s.nextInt64(&v));  // nothing yet
    pending = bytes("42 ");
    ASSERT_TRUE(s.nextInt64(&v));   // resumes after data arrives
    EXPECT_EQ(v, 42);
}

TEST(StreamingScanner, CostMatchesContiguous)
{
    const auto data = bytes("11 22 33 44");
    sd::TextScanner ref(data.data(), data.size());
    std::int64_t v = 0;
    while (ref.nextInt64(&v)) {
    }
    ref.atEnd();

    std::size_t pos = 0;
    sd::StreamingScanner s(
        [&](std::uint8_t *dst, std::size_t cap) {
            const std::size_t take = std::min(cap, data.size() - pos);
            std::copy(data.begin() + pos, data.begin() + pos + take,
                      dst);
            pos += take;
            return take;
        },
        3);
    while (s.nextInt64(&v)) {
    }
    EXPECT_EQ(s.cost().bytes, ref.cost().bytes);
    EXPECT_EQ(s.cost().intValues, ref.cost().intValues);
}

TEST(ScannerFuzz, RandomBytesNeverCrashAndCostIsBounded)
{
    // Arbitrary byte soup: the scanner must terminate, never read out
    // of bounds, and account every byte at most once.
    morpheus::sim::Rng rng(12345);
    for (int round = 0; round < 50; ++round) {
        std::vector<std::uint8_t> junk(rng.nextBelow(2000) + 1);
        for (auto &b : junk)
            b = static_cast<std::uint8_t>(rng.nextBelow(256));
        sd::TextScanner s(junk.data(), junk.size());
        std::int64_t v = 0;
        std::size_t parsed = 0;
        while (s.nextInt64(&v))
            ++parsed;
        EXPECT_LE(s.cost().bytes, junk.size());
        EXPECT_LE(parsed, junk.size());
    }
}

TEST(ScannerFuzz, StreamingMatchesContiguousOnRandomBytes)
{
    morpheus::sim::Rng rng(777);
    for (int round = 0; round < 20; ++round) {
        std::vector<std::uint8_t> junk(rng.nextBelow(3000) + 10);
        for (auto &b : junk)
            b = static_cast<std::uint8_t>(rng.nextBelow(96) + 32);
        std::vector<std::int64_t> ref;
        {
            sd::TextScanner s(junk.data(), junk.size());
            std::int64_t v = 0;
            while (s.nextInt64(&v))
                ref.push_back(v);
        }
        std::size_t pos = 0;
        const std::size_t chunk = rng.nextBelow(64) + 1;
        sd::StreamingScanner s(
            [&](std::uint8_t *dst, std::size_t cap) {
                const std::size_t take =
                    std::min({cap, chunk, junk.size() - pos});
                std::copy(junk.begin() + pos,
                          junk.begin() + pos + take, dst);
                pos += take;
                return take;
            },
            128);
        std::vector<std::int64_t> got;
        std::int64_t v = 0;
        while (s.nextInt64(&v))
            got.push_back(v);
        EXPECT_EQ(got, ref) << "round " << round;
    }
}
