/**
 * @file
 * Columnar format + pushdown tests: flash codec round-trip, the scan
 * kernel against a naive reference, device/host bit-identity across
 * chunk sizes and pipeline settings, edge cases (empty projection,
 * all-rows-filtered, row groups straddling chunk boundaries,
 * dictionary miss, mid-scan media error), descriptor integrity, and
 * the pushdown-aware object-cache key.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "core/device_runtime.hh"
#include "core/host_runtime.hh"
#include "core/nvme_p2p.hh"
#include "core/standard_apps.hh"
#include "host/host_exec.hh"
#include "host/host_system.hh"
#include "serde/columnar.hh"
#include "sim/fault.hh"

namespace co = morpheus::core;
namespace ho = morpheus::host;
namespace nv = morpheus::nvme;
namespace sd = morpheus::serde;

namespace {

/** Full host-side rig: driver, device runtime, high-level runtime. */
struct Rig
{
    ho::HostSystem sys;
    co::MorpheusDeviceRuntime device;
    co::NvmeP2p p2p;
    co::MorpheusRuntime runtime;
    co::StandardImages images = co::StandardImages::make();

    Rig() : device(sys.ssd()), p2p(sys), runtime(sys, device, p2p) {}
    explicit Rig(const ho::SystemConfig &cfg)
        : sys(cfg), device(sys.ssd()), p2p(sys), runtime(sys, device, p2p)
    {
    }

    nv::Completion
    io(nv::Command cmd, morpheus::sim::Tick now = 0)
    {
        return sys.nvmeDriver().io(sys.ioQueue(), cmd, now);
    }

    /** Stage + MINIT a columnar scan instance carrying @p desc. */
    nv::Completion
    minitScan(std::uint32_t instance, co::DmaTarget target,
              const std::vector<std::uint32_t> &desc,
              std::uint64_t stream_bytes = 0,
              std::uint32_t digest_override = 0)
    {
        co::InstanceSetup setup;
        setup.image = &images.columnarScan;
        setup.target = target;
        setup.pushdown = desc;
        device.stageInstance(instance, setup);
        nv::Command c;
        c.opcode = nv::Opcode::kMInit;
        c.instanceId = instance;
        c.prp1 = sys.allocHost(images.columnarScan.textBytes +
                               4 * desc.size());
        c.cdw13 = images.columnarScan.textBytes;
        c.slba = stream_bytes;
        if (!desc.empty()) {
            c.nlb = static_cast<std::uint16_t>(desc.size());
            const std::uint32_t digest =
                digest_override ? digest_override
                                : sd::pushdownDigest(desc);
            c.prp2 = std::uint64_t(digest) << 32;
        }
        return io(c);
    }

    /** One MREAD chunk of [@p off, @p off + @p len) of @p extent. */
    nv::Completion
    mread(std::uint32_t instance, const ho::FileExtent &extent,
          std::uint64_t off, std::uint64_t len,
          morpheus::sim::Tick now = 0)
    {
        nv::Command c;
        c.opcode = nv::Opcode::kMRead;
        c.instanceId = instance;
        c.slba = (extent.startByte + off) / nv::kBlockBytes;
        c.nlb = static_cast<std::uint16_t>(
            (len + nv::kBlockBytes - 1) / nv::kBlockBytes - 1);
        c.cdw13 = static_cast<std::uint32_t>(len);
        return io(c, now);
    }

    nv::Completion
    mdeinit(std::uint32_t instance, morpheus::sim::Tick now = 0)
    {
        nv::Command fin;
        fin.opcode = nv::Opcode::kMDeinit;
        fin.instanceId = instance;
        return io(fin, now);
    }
};

/** High-level invoke of the scan applet; returns the DMAed payload. */
std::vector<std::uint8_t>
invokeScan(Rig &rig, const ho::FileExtent &extent,
           const std::vector<std::uint32_t> &desc,
           std::uint64_t out_bytes, std::uint64_t *surviving = nullptr,
           std::uint32_t chunk_blocks = 0)
{
    co::InvokeOptions opts;
    opts.pushdown = desc;
    opts.chunkBlocks = chunk_blocks;
    const co::DmaTarget target = rig.runtime.hostTarget(out_bytes + 64);
    const co::MsStream stream =
        rig.runtime.streamCreate(extent, extent.readyAt);
    const co::InvokeResult res = rig.runtime.invoke(
        rig.images.columnarScan, stream, target, extent.readyAt, opts);
    if (surviving != nullptr)
        *surviving = res.returnValue;
    return rig.sys.mem().store().readVec(
        target.addr, static_cast<std::size_t>(res.objectBytes));
}

/** Rows of @p t whose key column passes @p spec's predicates. */
std::uint64_t
naiveSurvivors(const sd::ColumnarTableObject &t, const sd::ScanSpec &spec)
{
    std::uint64_t n = 0;
    for (std::uint64_t r = 0; r < t.rows(); ++r) {
        bool keep = true;
        for (const auto &p : spec.preds) {
            const std::uint64_t bits = t.cells[p.column][r];
            const auto type = t.schema[p.column].type;
            bool hold = false;
            if (type == sd::ColumnType::kFloat64) {
                double v, lit;
                std::memcpy(&v, &bits, 8);
                std::memcpy(&lit, &p.literalBits, 8);
                hold = (p.op == sd::PredOp::kEq && v == lit) ||
                       (p.op == sd::PredOp::kNe && v != lit) ||
                       (p.op == sd::PredOp::kLt && v < lit) ||
                       (p.op == sd::PredOp::kLe && v <= lit) ||
                       (p.op == sd::PredOp::kGt && v > lit) ||
                       (p.op == sd::PredOp::kGe && v >= lit);
            } else {
                const auto v = static_cast<std::int64_t>(bits);
                const auto lit =
                    static_cast<std::int64_t>(p.literalBits);
                hold = (p.op == sd::PredOp::kEq && v == lit) ||
                       (p.op == sd::PredOp::kNe && v != lit) ||
                       (p.op == sd::PredOp::kLt && v < lit) ||
                       (p.op == sd::PredOp::kLe && v <= lit) ||
                       (p.op == sd::PredOp::kGt && v > lit) ||
                       (p.op == sd::PredOp::kGe && v >= lit);
            }
            if (!hold) {
                keep = false;
                break;
            }
        }
        if (keep)
            ++n;
    }
    return n;
}

}  // namespace

TEST(Columnar, FlashRoundTrip)
{
    const auto t = sd::genColumnarTable(11, 1000, 5);
    const auto flash = t.toFlash();
    sd::ColumnarTableObject back;
    ASSERT_TRUE(sd::ColumnarTableObject::fromFlash(flash, &back));
    EXPECT_EQ(back, t);

    // Corruption is detected, not silently accepted.
    auto bad = flash;
    bad[0] ^= 0xFF;  // magic
    EXPECT_FALSE(sd::ColumnarTableObject::fromFlash(bad, &back));
    auto trunc = flash;
    trunc.resize(trunc.size() - 1);
    EXPECT_FALSE(sd::ColumnarTableObject::fromFlash(trunc, &back));
}

TEST(Columnar, ScanMatchesNaiveReference)
{
    const auto t = sd::genColumnarTable(12, 3000, 6);
    const auto flash = t.toFlash();
    const auto spec = sd::makeSelectivitySpec(0.25, 3, 6);

    const auto res = sd::scanTable(flash.data(), flash.size(), spec);
    ASSERT_TRUE(res.ok);
    EXPECT_EQ(res.survivingRows, naiveSurvivors(t, spec));

    // The emitted stream decodes to the projected view of exactly the
    // surviving rows, in file order.
    sd::ColumnarTableObject view;
    ASSERT_TRUE(sd::columnarFromScanBytes(res.out, &view));
    ASSERT_EQ(view.schema.size(), 3u);
    EXPECT_EQ(view.rows(), res.survivingRows);
    std::uint64_t vr = 0;
    for (std::uint64_t r = 0; r < t.rows(); ++r) {
        if (static_cast<std::int64_t>(t.cells[0][r]) >=
            static_cast<std::int64_t>(0.25 * 1e6))
            continue;
        for (std::uint32_t c = 0; c < 3; ++c)
            ASSERT_EQ(view.cells[c][vr], t.cells[c][r]) << r;
        ++vr;
    }
    EXPECT_EQ(vr, view.rows());
}

TEST(Columnar, DeviceMatchesHostBitIdentical)
{
    const auto t = sd::genColumnarTable(13, 2500, 5);
    const auto flash = t.toFlash();
    const auto spec = sd::makeSelectivitySpec(0.10, 2, 5);
    const auto desc = spec.encode();
    const auto ref = ho::HostExecEngine::scanColumnar(
        flash.data(), flash.size(), spec);
    ASSERT_TRUE(ref.ok);

    // Chunk sizes that divide, straddle, and exceed a row group, with
    // the streaming chunk pipeline both off and on: every combination
    // must reproduce the host scan byte for byte.
    for (const bool pipeline : {false, true}) {
        ho::SystemConfig cfg;
        cfg.ssd.pipeline.enabled = pipeline;
        for (const std::uint32_t chunk_blocks : {0u, 3u, 16u, 128u}) {
            Rig rig(cfg);
            const auto extent = rig.sys.createFile("t", flash);
            std::uint64_t surviving = 0;
            const auto payload = invokeScan(
                rig, extent, desc, ref.out.size(), &surviving,
                chunk_blocks);
            EXPECT_EQ(payload, ref.out)
                << "pipeline=" << pipeline
                << " chunkBlocks=" << chunk_blocks;
            EXPECT_EQ(surviving, ref.survivingRows);
        }
    }
}

TEST(Columnar, EmptyProjectionCountsRowsWithoutRowBytes)
{
    const auto t = sd::genColumnarTable(14, 2000, 4);
    const auto flash = t.toFlash();
    sd::ScanSpec spec = sd::makeSelectivitySpec(0.50, 1, 4);
    spec.projectionMask = 0;  // count(*) pushdown: no columns emitted
    const auto ref =
        sd::scanTable(flash.data(), flash.size(), spec);
    ASSERT_TRUE(ref.ok);
    EXPECT_EQ(ref.survivingRows, naiveSurvivors(t, spec));

    Rig rig;
    const auto extent = rig.sys.createFile("t", flash);
    std::uint64_t surviving = 0;
    const auto payload = invokeScan(rig, extent, spec.encode(),
                                    ref.out.size(), &surviving);
    EXPECT_EQ(payload, ref.out);
    EXPECT_EQ(surviving, ref.survivingRows);
    EXPECT_GT(surviving, 0u);
}

TEST(Columnar, AllRowsFilteredCompletesWithZeroRowEmit)
{
    const auto t = sd::genColumnarTable(15, 2000, 4);
    const auto flash = t.toFlash();
    sd::ScanSpec spec;
    spec.projectionMask = 0x3;
    sd::Predicate none;
    none.column = 0;
    none.op = sd::PredOp::kLt;
    none.literalBits = 0;  // keys are >= 0: nothing survives
    spec.preds.push_back(none);
    const auto ref = sd::scanTable(flash.data(), flash.size(), spec);
    ASSERT_TRUE(ref.ok);
    ASSERT_EQ(ref.survivingRows, 0u);

    // The device still runs MDEINIT to completion: the result is the
    // header + trailer framing with zero row bytes.
    Rig rig;
    const auto extent = rig.sys.createFile("t", flash);
    std::uint64_t surviving = 1;
    const auto payload = invokeScan(rig, extent, spec.encode(),
                                    ref.out.size(), &surviving);
    EXPECT_EQ(payload, ref.out);
    EXPECT_EQ(surviving, 0u);
}

TEST(Columnar, RowGroupStraddlingFeedBoundaries)
{
    // 256-row groups fed to the streaming scanner in sizes that never
    // align with a group: the carry buffer must reassemble groups
    // exactly as a one-shot scan sees them.
    const auto t = sd::genColumnarTable(16, 2100, 5);
    const auto flash = t.toFlash();
    const auto spec = sd::makeSelectivitySpec(0.30, 4, 5);
    const auto ref = sd::scanTable(flash.data(), flash.size(), spec);
    ASSERT_TRUE(ref.ok);

    for (const std::size_t piece : {1u, 7u, 1536u, 10000u}) {
        sd::ColumnarScanner scanner(spec);
        std::vector<std::uint8_t> out;
        std::size_t off = 0;
        while (off < flash.size()) {
            const std::size_t n = std::min(piece, flash.size() - off);
            scanner.feed(flash.data() + off, n);
            const auto part = scanner.takeEmitted();
            out.insert(out.end(), part.begin(), part.end());
            off += n;
        }
        scanner.finish();
        const auto tail = scanner.takeEmitted();
        out.insert(out.end(), tail.begin(), tail.end());
        ASSERT_FALSE(scanner.error()) << piece;
        EXPECT_EQ(out, ref.out) << piece;
        EXPECT_EQ(scanner.survivingRows(), ref.survivingRows);
    }
}

TEST(Columnar, DictionaryMissPoisonsTheScan)
{
    auto t = sd::genColumnarTable(17, 1000, 4);
    const std::uint32_t dict_col =
        static_cast<std::uint32_t>(t.schema.size()) - 1;
    ASSERT_EQ(t.schema[dict_col].type, sd::ColumnType::kDictString);
    t.cells[dict_col][500] = 9999;  // no such dictionary entry
    const auto flash = t.toFlash();

    sd::ScanSpec spec;
    spec.projectionMask = 1u << dict_col;
    const auto res = sd::scanTable(flash.data(), flash.size(), spec);
    EXPECT_FALSE(res.ok);

    // Device side: the applet stops emitting and reports kScanError
    // in MDEINIT DW0 instead of returning a half-lying row count.
    Rig rig;
    const auto extent = rig.sys.createFile("t", flash);
    const co::DmaTarget target = rig.runtime.hostTarget(flash.size());
    ASSERT_TRUE(rig.minitScan(1, target, spec.encode()).ok());
    morpheus::sim::Tick now = 0;
    std::uint64_t off = 0;
    while (off < flash.size()) {
        const std::uint64_t n =
            std::min<std::uint64_t>(16 * 1024, flash.size() - off);
        const auto cqe = rig.mread(1, extent, off, n, now);
        ASSERT_TRUE(cqe.ok());
        now = cqe.postedAt;
        off += n;
    }
    const auto fin = rig.mdeinit(1, now);
    ASSERT_TRUE(fin.ok());
    EXPECT_EQ(fin.dw0, co::ColumnarScanApp::kScanError);
}

TEST(Columnar, MediaErrorMidScanRestreamsWithoutDuplicateRows)
{
    const auto t = sd::genColumnarTable(18, 2048, 5);
    const auto flash = t.toFlash();
    const auto spec = sd::makeSelectivitySpec(0.40, 3, 5);
    const auto ref = sd::scanTable(flash.data(), flash.size(), spec);
    ASSERT_TRUE(ref.ok);

    Rig rig;
    const auto extent = rig.sys.createFile("t", flash);
    const co::DmaTarget target =
        rig.runtime.hostTarget(ref.out.size() + 64);
    ASSERT_TRUE(rig.minitScan(3, target, spec.encode()).ok());

    const std::uint64_t chunk = 16 * 1024;
    morpheus::sim::Tick now = 0;
    std::uint64_t off = 0;
    bool injected = false;
    while (off < flash.size()) {
        const std::uint64_t n =
            std::min<std::uint64_t>(chunk, flash.size() - off);
        if (!injected && off >= chunk) {
            // Second chunk: every flash page read is uncorrectable.
            morpheus::sim::FaultPlan plan;
            plan.mediaRate = 1.0;
            morpheus::sim::FaultInjector fi(plan);
            morpheus::sim::ScopedFaultInjector scope(&fi);
            const auto bad = rig.mread(3, extent, off, n, now);
            EXPECT_EQ(bad.status, nv::Status::kMediaError);
            now = bad.postedAt;
            injected = true;
            continue;  // resubmit the same chunk, fault cleared
        }
        const auto cqe = rig.mread(3, extent, off, n, now);
        ASSERT_TRUE(cqe.ok());
        now = cqe.postedAt;
        off += n;
    }
    ASSERT_TRUE(injected);
    const auto fin = rig.mdeinit(3, now);
    ASSERT_TRUE(fin.ok());
    EXPECT_EQ(fin.dw0, ref.survivingRows);
    const auto payload = rig.sys.mem().store().readVec(
        target.addr, ref.out.size());
    EXPECT_EQ(payload, ref.out);
}

TEST(Columnar, DescriptorIntegrityIsValidated)
{
    const auto t = sd::genColumnarTable(19, 512, 4);
    const auto flash = t.toFlash();
    const auto desc = sd::makeSelectivitySpec(0.10, 2, 4).encode();

    // Digest mismatch: staged program != what MINIT claims.
    Rig rig;
    const co::DmaTarget target = rig.runtime.hostTarget(flash.size());
    const std::uint32_t wrong = sd::pushdownDigest(desc) ^ 1u;
    EXPECT_EQ(rig.minitScan(1, target, desc, 0, wrong).status,
              nv::Status::kInvalidField);

    // Count mismatch: NLB disagrees with the staged dwords.
    co::InstanceSetup setup;
    setup.image = &rig.images.columnarScan;
    setup.target = target;
    setup.pushdown = desc;
    rig.device.stageInstance(2, setup);
    nv::Command c;
    c.opcode = nv::Opcode::kMInit;
    c.instanceId = 2;
    c.prp1 = rig.sys.allocHost(rig.images.columnarScan.textBytes);
    c.cdw13 = rig.images.columnarScan.textBytes;
    c.nlb = static_cast<std::uint16_t>(desc.size() - 1);
    c.prp2 = std::uint64_t(sd::pushdownDigest(desc)) << 32;
    EXPECT_EQ(rig.io(c).status, nv::Status::kInvalidField);
}

TEST(Columnar, ObjectCacheKeysPredicatePrograms)
{
    // Two pushdown invocations over the same raw range with different
    // predicate programs must occupy distinct cache entries; a write
    // into the range invalidates both.
    ho::SystemConfig cfg;
    cfg.ssd.cache.enabled = true;
    Rig rig(cfg);
    auto &cache = rig.sys.ssd().objectCache();

    const auto t = sd::genColumnarTable(20, 2048, 4);
    const auto flash = t.toFlash();
    const auto extent = rig.sys.createFile("t", flash);
    const auto spec_a = sd::makeSelectivitySpec(0.10, 2, 4);
    const auto spec_b = sd::makeSelectivitySpec(0.50, 2, 4);
    const auto ref_a =
        sd::scanTable(flash.data(), flash.size(), spec_a);
    const auto ref_b =
        sd::scanTable(flash.data(), flash.size(), spec_b);

    invokeScan(rig, extent, spec_a.encode(), ref_a.out.size());
    EXPECT_EQ(cache.insertions(), 1u);
    EXPECT_EQ(cache.hits(), 0u);

    // Same bytes, different program: a distinct key, not a false hit.
    invokeScan(rig, extent, spec_b.encode(), ref_b.out.size());
    EXPECT_EQ(cache.insertions(), 2u);
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(cache.entries(), 2u);

    // Re-running program A is a hit with identical payload bytes.
    const auto hit =
        invokeScan(rig, extent, spec_a.encode(), ref_a.out.size());
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(hit, ref_a.out);

    // An MWRITE landing inside the raw range drops both entries.
    const std::vector<std::uint8_t> wtext(1024, 'x');
    const morpheus::pcie::Addr src =
        rig.sys.allocHost(wtext.size());
    rig.sys.mem().store().writeVec(src, wtext);
    co::InvokeOptions wopts;
    wopts.serialize = true;
    wopts.writeSrc = src;
    wopts.writeDstByte = extent.startByte;
    ho::FileExtent wext = extent;
    wext.sizeBytes = wtext.size();
    const co::MsStream ws =
        rig.runtime.streamCreate(wext, extent.readyAt);
    rig.runtime.invoke(rig.images.int64Serializer, ws,
                       co::DmaTarget{src, false}, extent.readyAt,
                       wopts);
    EXPECT_EQ(cache.entries(), 0u);
    EXPECT_EQ(cache.invalidations(), 2u);
}
