/**
 * @file
 * Unit tests for the observability primitives behind the serving
 * report's stage breakdown: span classification, the exact-sum
 * attribution sweep, the tail-based flight recorder, and the
 * time-series timeline.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "obs/critical_path.hh"
#include "obs/flight_recorder.hh"
#include "obs/timeline.hh"
#include "obs/trace.hh"

namespace ob = morpheus::obs;
using morpheus::sim::Tick;

namespace {

ob::Span
span(const char *track, const char *name, Tick begin, Tick end,
     ob::TraceId trace = 0)
{
    ob::Span s;
    s.track = track;
    s.name = name;
    s.begin = begin;
    s.end = end;
    s.trace = trace;
    return s;
}

}  // namespace

// -------------------------------------------------- span classification

TEST(ClassifySpan, MapsPipelineNamesToStagesWithPriorities)
{
    struct Case
    {
        const char *track;
        const char *name;
        ob::Stage stage;
    };
    const Case cases[] = {
        {"ssd.core[2]", "parse", ob::Stage::kParse},
        {"ssd.core[0]", "install", ob::Stage::kParse},
        {"ssd.core[1]", "isram_reload", ob::Stage::kParse},
        {"ssd.dma", "cache_hit", ob::Stage::kCacheHit},
        {"ssd.dma", "flush_dma", ob::Stage::kFlush},
        {"ssd.dma", "dsram_move", ob::Stage::kFlush},
        {"ssd.dram", "fetch", ob::Stage::kFetch},
        {"ssd.dram", "fetch_readahead", ob::Stage::kFetch},
        {"nvme.frontend", "dispatch", ob::Stage::kDispatch},
        {"sched.tenant[1]", "admission_wait", ob::Stage::kAdmission},
        {"sched.tenant[0]", "drr_wait", ob::Stage::kAdmission},
        {"host.serving", "retry_wait", ob::Stage::kRetry},
    };
    for (const Case &c : cases) {
        ob::Stage stage;
        int priority = 0;
        ASSERT_TRUE(
            ob::classifySpan(span(c.track, c.name, 0, 1), &stage,
                             &priority))
            << c.name;
        EXPECT_EQ(stage, c.stage) << c.name;
        EXPECT_GT(priority, 0) << c.name;
    }
}

TEST(ClassifySpan, OpcodeUmbrellasClassifyByTrack)
{
    ob::Stage stage;
    int prio_exec = 0, prio_queue = 0, prio_parse = 0, prio_adm = 0;

    ASSERT_TRUE(ob::classifySpan(span("nvme.exec[1]", "MREAD", 0, 1),
                                 &stage, &prio_exec));
    EXPECT_EQ(stage, ob::Stage::kDispatch);
    ASSERT_TRUE(ob::classifySpan(span("host.queue[1]", "MREAD", 0, 1),
                                 &stage, &prio_queue));
    EXPECT_EQ(stage, ob::Stage::kQueue);
    // Fleet track prefixes classify the same way.
    ASSERT_TRUE(ob::classifySpan(
        span("dev2.host.queue[1]", "MINIT", 0, 1), &stage, &prio_queue));
    EXPECT_EQ(stage, ob::Stage::kQueue);

    // Priority ladder: parse > admission > exec umbrella > queue
    // umbrella — so nested spans claim time from their umbrellas and
    // scheduler wait is never misread as controller execution.
    ASSERT_TRUE(ob::classifySpan(span("ssd.core[0]", "parse", 0, 1),
                                 &stage, &prio_parse));
    ASSERT_TRUE(ob::classifySpan(
        span("sched.tenant[0]", "admission_wait", 0, 1), &stage,
        &prio_adm));
    EXPECT_GT(prio_parse, prio_adm);
    EXPECT_GT(prio_adm, prio_exec);
    EXPECT_GT(prio_exec, prio_queue);
}

TEST(ClassifySpan, IgnoresInstantsAndUnknownNames)
{
    ob::Stage stage;
    int priority;
    ob::Span i = span("sched.tenant[0]", "admission_reject", 5, 5);
    i.instant = true;
    EXPECT_FALSE(ob::classifySpan(i, &stage, &priority));
    EXPECT_FALSE(ob::classifySpan(
        span("ssd.core[0]", "mystery_work", 0, 1), &stage, &priority));
}

// ------------------------------------------------------- attribution

TEST(AttributeSpans, EmptyWindowIsAllHostResidual)
{
    const ob::Attribution attr = ob::attributeSpans({}, 100, 600);
    EXPECT_EQ(attr.total(), 500u);
    EXPECT_EQ(attr[ob::Stage::kHost], 500u);
}

TEST(AttributeSpans, ClipsSpansToTheWindow)
{
    // A parse span half outside the window only claims the inside part.
    const std::vector<ob::Span> spans = {
        span("ssd.core[0]", "parse", 0, 150),
        span("ssd.core[0]", "parse", 550, 900),
    };
    const ob::Attribution attr = ob::attributeSpans(spans, 100, 600);
    EXPECT_EQ(attr.total(), 500u);
    EXPECT_EQ(attr[ob::Stage::kParse], 100u);  // [100,150) + [550,600)
    EXPECT_EQ(attr[ob::Stage::kHost], 400u);
}

TEST(AttributeSpans, HighestPriorityCoverOwnsEachSegment)
{
    // queue umbrella [0,1000), exec umbrella [100,900),
    // parse [200,400), flush [400,500): every tick goes to the deepest
    // covering stage, and the total is exact.
    const std::vector<ob::Span> spans = {
        span("host.queue[1]", "MREAD", 0, 1000),
        span("nvme.exec[1]", "MREAD", 100, 900),
        span("ssd.core[3]", "parse", 200, 400),
        span("ssd.dma", "flush_dma", 400, 500),
    };
    const ob::Attribution attr = ob::attributeSpans(spans, 0, 1000);
    EXPECT_EQ(attr.total(), 1000u);
    EXPECT_EQ(attr[ob::Stage::kParse], 200u);
    EXPECT_EQ(attr[ob::Stage::kFlush], 100u);
    EXPECT_EQ(attr[ob::Stage::kDispatch], 500u);  // exec minus nested
    EXPECT_EQ(attr[ob::Stage::kQueue], 200u);     // [0,100) + [900,1000)
    EXPECT_EQ(attr[ob::Stage::kHost], 0u);
}

TEST(AttributeSpans, OverlappingSameStageSpansCountOnce)
{
    // Two overlapping parse spans (e.g. two cores of one fan-out):
    // wall-clock attribution counts the union, not the sum.
    const std::vector<ob::Span> spans = {
        span("ssd.core[0]", "parse", 100, 400),
        span("ssd.core[1]", "parse", 300, 600),
    };
    const ob::Attribution attr = ob::attributeSpans(spans, 0, 1000);
    EXPECT_EQ(attr.total(), 1000u);
    EXPECT_EQ(attr[ob::Stage::kParse], 500u);  // union [100,600)
    EXPECT_EQ(attr[ob::Stage::kHost], 500u);
}

TEST(AttributeSpans, InstantsClaimNoTime)
{
    std::vector<ob::Span> spans = {
        span("sched.tenant[0]", "admission_reject", 50, 50)};
    spans[0].instant = true;
    const ob::Attribution attr = ob::attributeSpans(spans, 0, 100);
    EXPECT_EQ(attr[ob::Stage::kHost], 100u);
}

TEST(ClassifySpan, HostExecSitsBetweenRetryAndExecUmbrella)
{
    ob::Stage stage;
    int prio_host = 0, prio_exec = 0, prio_retry = 0;
    ASSERT_TRUE(ob::classifySpan(span("host.exec", "host_exec", 0, 1),
                                 &stage, &prio_host));
    EXPECT_EQ(stage, ob::Stage::kHostExec);
    ASSERT_TRUE(ob::classifySpan(span("nvme.exec[0]", "MREAD", 0, 1),
                                 &stage, &prio_exec));
    ASSERT_TRUE(ob::classifySpan(
        span("host.serving", "retry_wait", 0, 1), &stage,
        &prio_retry));
    // Below retry_wait (a backoff that overlaps the rescue start is
    // still backoff) and above the exec umbrella (a split's host half
    // must not swallow the device prefix's attribution).
    EXPECT_GT(prio_retry, prio_host);
    EXPECT_GT(prio_host, prio_exec);
}

TEST(AttributeSpans, BreakerRescuedRequestSumsExactlyToItsWindow)
{
    // A breaker-rescued request's life: a device attempt (exec
    // umbrella), the backoff wait, then the host-path rescue — with
    // uncovered gaps at both ends and an overlap between the wait and
    // the rescue.
    const std::vector<ob::Span> spans{
        span("nvme.exec[0]", "MREAD", 100, 300),
        span("host.serving", "retry_wait", 300, 500),
        span("host.exec", "host_exec", 450, 900),
    };
    const ob::Attribution a = ob::attributeSpans(spans, 0, 1000);
    EXPECT_EQ(a.total(), 1000u);  // exact: no double count, no gap
    EXPECT_EQ(a[ob::Stage::kDispatch], 200u);
    EXPECT_EQ(a[ob::Stage::kRetry], 200u);  // owns the 450-500 overlap
    EXPECT_EQ(a[ob::Stage::kHostExec], 400u);
    EXPECT_EQ(a[ob::Stage::kHost], 200u);   // 0-100 and 900-1000
}

// ------------------------------------------------------ fan-out legs

TEST(FanoutLegs, GroupsHostQueueHullsByDeviceAndFindsStraggler)
{
    const ob::TraceId dev1 = 1u << 24;
    const std::vector<ob::Span> spans = {
        span("host.queue[1]", "MINIT", 0, 100, 1),
        span("host.queue[1]", "MREAD", 100, 400, 2),
        span("dev1.host.queue[1]", "MINIT", 0, 120, dev1 | 1),
        span("dev1.host.queue[1]", "MREAD", 120, 700, dev1 | 2),
        // Non-umbrella spans never contribute to legs.
        span("ssd.core[0]", "parse", 0, 5000, 1),
    };
    const auto legs = ob::fanoutLegs(spans);
    ASSERT_EQ(legs.size(), 2u);
    EXPECT_EQ(legs[0].device, 0u);
    EXPECT_EQ(legs[0].begin, 0u);
    EXPECT_EQ(legs[0].end, 400u);
    EXPECT_EQ(legs[1].device, 1u);
    EXPECT_EQ(legs[1].end, 700u);
    EXPECT_EQ(ob::stragglerDevice(legs), 1u);
    EXPECT_EQ(ob::stragglerDevice({}), 0u);
}

// --------------------------------------------------- flight recorder

namespace {

ob::RequestMeta
meta(std::uint64_t id, Tick begin, Tick end, bool failed = false)
{
    ob::RequestMeta m;
    m.requestId = id;
    m.tenant = 1;
    m.begin = begin;
    m.end = end;
    m.failed = failed;
    return m;
}

}  // namespace

TEST(FlightRecorder, RingWrapsAndUnindexesOverwrittenSpans)
{
    ob::FlightRecorderConfig cfg;
    cfg.ringCapacity = 4;
    ob::FlightRecorder rec(cfg);
    for (Tick t = 0; t < 6; ++t)
        rec.record(span("ssd.core[0]", "parse", t * 10, t * 10 + 5,
                        static_cast<ob::TraceId>(t + 1)));

    EXPECT_EQ(rec.ringSize(), 4u);
    EXPECT_EQ(rec.spansRecorded(), 6u);
    EXPECT_EQ(rec.spansOverwritten(), 2u);

    // Traces 1 and 2 were overwritten; 3..6 are collectable.
    EXPECT_TRUE(rec.collect({1, 2}).empty());
    const auto got = rec.collect({3, 4, 5, 6});
    ASSERT_EQ(got.size(), 4u);
    // Deterministic order: sorted by begin.
    for (std::size_t i = 1; i < got.size(); ++i)
        EXPECT_LT(got[i - 1].begin, got[i].begin);
}

TEST(FlightRecorder, CollectGathersOnlyRequestedTraces)
{
    ob::FlightRecorder rec;
    rec.record(span("ssd.core[0]", "parse", 0, 10, 7));
    rec.record(span("ssd.core[1]", "parse", 5, 15, 8));
    rec.record(span("ssd.dma", "flush_dma", 10, 20, 7));
    ob::Span untraced = span("ssd.dram", "fetch", 0, 3, 0);
    rec.record(untraced);  // trace 0 is never indexed

    const auto got = rec.collect({7});
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0].name, "parse");
    EXPECT_EQ(got[1].name, "flush_dma");
    EXPECT_TRUE(rec.collect({0}).empty());
}

TEST(FlightRecorder, SlowestKEvictsTheFastestRetained)
{
    ob::FlightRecorderConfig cfg;
    cfg.slowestK = 2;
    ob::FlightRecorder rec(cfg);
    rec.offer(meta(1, 0, 100), {span("a", "parse", 0, 100, 1)});
    rec.offer(meta(2, 0, 300), {span("a", "parse", 0, 300, 2)});
    // Latency 200 evicts the 100; a later 50 is refused.
    rec.offer(meta(3, 0, 200), {span("a", "parse", 0, 200, 3)});
    rec.offer(meta(4, 0, 50), {span("a", "parse", 0, 50, 4)});

    const auto kept = rec.retained();
    ASSERT_EQ(kept.size(), 2u);
    // Sorted by descending latency.
    EXPECT_EQ(kept[0].meta.requestId, 2u);
    EXPECT_EQ(kept[1].meta.requestId, 3u);
}

TEST(FlightRecorder, FailedRequestsRetainUnconditionallyUpToCap)
{
    ob::FlightRecorderConfig cfg;
    cfg.slowestK = 1;
    cfg.maxFailed = 2;
    ob::FlightRecorder rec(cfg);
    rec.offer(meta(1, 0, 9000), {});                     // slow, ok
    rec.offer(meta(2, 0, 1, true), {});                  // failed, fast
    rec.offer(meta(3, 0, 2, true), {});
    rec.offer(meta(4, 0, 3, true), {});                  // over cap

    const auto kept = rec.retained();
    ASSERT_EQ(kept.size(), 3u);
    // Failed first, in offer order; then the slowest-K set.
    EXPECT_TRUE(kept[0].meta.failed);
    EXPECT_EQ(kept[0].meta.requestId, 2u);
    EXPECT_EQ(kept[1].meta.requestId, 3u);
    EXPECT_EQ(kept[2].meta.requestId, 1u);
}

TEST(FlightRecorder, TeesToDownstreamSink)
{
    ob::InMemoryTraceSink downstream;
    ob::FlightRecorderConfig cfg;
    cfg.downstream = &downstream;
    ob::FlightRecorder rec(cfg);
    rec.record(span("ssd.core[0]", "parse", 0, 10, 1));
    EXPECT_EQ(downstream.size(), 1u);
    EXPECT_EQ(rec.ringSize(), 1u);
}

TEST(FlightRecorder, WriteChromeJsonAddsRequestNavigationSpans)
{
    ob::FlightRecorder rec;
    rec.offer(meta(7, 100'000'000, 300'000'000),
              {span("ssd.core[0]", "parse", 150'000'000, 250'000'000,
                    9)});
    rec.offer(meta(8, 0, 50'000'000, true), {});

    std::ostringstream os;
    rec.writeChromeJson(os);
    const std::string out = os.str();
    EXPECT_EQ(out.rfind("{\"traceEvents\":[", 0), 0u);
    EXPECT_NE(out.find("req 7 tenant1"), std::string::npos);
    EXPECT_NE(out.find("req 8 tenant1 FAILED"), std::string::npos);
    EXPECT_NE(out.find("recorder.requests"), std::string::npos);
    EXPECT_NE(out.find("\"parse\""), std::string::npos);

    // Nothing retained -> still a valid (empty) document.
    ob::FlightRecorder empty;
    std::ostringstream os2;
    empty.writeChromeJson(os2);
    EXPECT_EQ(os2.str(), "{\"traceEvents\":[]}\n");
}

// ----------------------------------------------------------- timeline

TEST(Timeline, SamplesAtExactIntervalBoundaries)
{
    ob::Timeline tl(1000);
    tl.setColumns({"a", "b"});
    EXPECT_FALSE(tl.due(5000));  // not started yet

    tl.start(2000);
    EXPECT_FALSE(tl.due(1999));
    EXPECT_TRUE(tl.due(2000));
    tl.record({1.0, 2.0});
    EXPECT_EQ(tl.nextSampleAt(), 3000u);
    EXPECT_FALSE(tl.due(2999));

    // An event far past several boundaries: the caller's due() loop
    // catches up one row per boundary, each stamped at its boundary.
    while (tl.due(5500))
        tl.record({3.0, 4.0});
    ASSERT_EQ(tl.rows().size(), 4u);
    EXPECT_EQ(tl.rows()[0].at, 2000u);
    EXPECT_EQ(tl.rows()[3].at, 5000u);
    EXPECT_EQ(tl.nextSampleAt(), 6000u);
}

TEST(Timeline, WritesJsonAndCsvConsistently)
{
    ob::Timeline tl(morpheus::sim::kPsPerUs);  // 1 us cadence
    tl.setColumns({"inflight", "bytes"});
    tl.start(0);
    tl.record({2.0, 4096.0});
    tl.record({3.5, 8192.0});

    std::ostringstream js;
    tl.writeJson(js);
    const std::string json = js.str();
    EXPECT_NE(json.find("\"intervalUs\":1"), std::string::npos);
    EXPECT_NE(json.find("\"columns\":[\"inflight\",\"bytes\"]"),
              std::string::npos);
    EXPECT_NE(json.find("{\"t_us\":0.000000,\"values\":[2,4096]}"),
              std::string::npos);
    EXPECT_NE(json.find("{\"t_us\":1.000000,\"values\":[3.5,8192]}"),
              std::string::npos);

    std::ostringstream cs;
    tl.writeCsv(cs);
    EXPECT_EQ(cs.str(),
              "t_us,inflight,bytes\n"
              "0.000000,2,4096\n"
              "1.000000,3.5,8192\n");
}

TEST(Timeline, EmptyTimelineWritesValidJson)
{
    ob::Timeline tl(1000);
    tl.setColumns({"x"});
    std::ostringstream os;
    tl.writeJson(os);
    EXPECT_NE(os.str().find("\"rows\":[]"), std::string::npos);
}
