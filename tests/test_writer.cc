/**
 * @file
 * TextWriter unit tests (serialization half of serde).
 */

#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "serde/writer.hh"

namespace sd = morpheus::serde;

namespace {

std::string
asString(const sd::TextWriter &w)
{
    return std::string(w.bytes().begin(), w.bytes().end());
}

}  // namespace

TEST(TextWriter, Integers)
{
    sd::TextWriter w;
    w.appendInt64(0);
    w.space();
    w.appendInt64(-1);
    w.space();
    w.appendInt64(123456789);
    EXPECT_EQ(asString(w), "0 -1 123456789");
}

TEST(TextWriter, Int64Extremes)
{
    sd::TextWriter w;
    w.appendInt64(std::numeric_limits<std::int64_t>::max());
    w.space();
    w.appendInt64(std::numeric_limits<std::int64_t>::min());
    EXPECT_EQ(asString(w),
              "9223372036854775807 -9223372036854775808");
}

TEST(TextWriter, Doubles)
{
    sd::TextWriter w;
    w.appendDouble(3.25, 2);
    w.space();
    w.appendDouble(-0.5, 1);
    EXPECT_EQ(asString(w), "3.25 -0.5");
}

TEST(TextWriter, LiteralAndLayoutHelpers)
{
    sd::TextWriter w;
    w.appendLiteral("x=");
    w.appendInt64(7);
    w.newline();
    EXPECT_EQ(asString(w), "x=7\n");
    EXPECT_EQ(w.size(), 4u);
}

TEST(TextWriter, TakeMovesBufferOut)
{
    sd::TextWriter w;
    w.appendInt64(42);
    const auto taken = w.take();
    EXPECT_EQ(taken.size(), 2u);
    EXPECT_EQ(w.size(), 0u);
}
