/**
 * @file
 * CSV substrate tests: header handling (quoted names), numeric rows,
 * chunk invariance, binary round trip, error handling, and the
 * end-to-end device path (CsvTableApp == host parse).
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "core/host_runtime.hh"
#include "core/standard_apps.hh"
#include "serde/csv.hh"
#include "sim/rng.hh"

namespace co = morpheus::core;
namespace ho = morpheus::host;
namespace sd = morpheus::serde;

namespace {

sd::CsvTableObject
genTable(std::uint64_t seed, std::uint32_t rows, std::uint32_t cols)
{
    morpheus::sim::Rng rng(seed);
    sd::CsvTableObject t;
    for (std::uint32_t c = 0; c < cols; ++c)
        t.columns.push_back("col_" + std::to_string(c));
    for (std::uint32_t r = 0; r < rows; ++r) {
        for (std::uint32_t c = 0; c < cols; ++c) {
            if (rng.nextBool(0.25)) {
                t.values.push_back(
                    static_cast<double>(rng.nextInRange(-9999, 9999)) /
                    100.0);
            } else {
                t.values.push_back(static_cast<double>(
                    rng.nextInRange(-100000, 100000)));
            }
        }
    }
    return t;
}

std::vector<std::uint8_t>
csvText(const sd::CsvTableObject &t)
{
    sd::TextWriter w;
    t.serialize(w);
    return w.take();
}

bool
parseStr(const std::string &doc, sd::CsvTableObject *out)
{
    return sd::parseCsvTable(
        reinterpret_cast<const std::uint8_t *>(doc.data()), doc.size(),
        out, nullptr);
}

}  // namespace

TEST(Csv, BasicDocument)
{
    sd::CsvTableObject t;
    ASSERT_TRUE(parseStr("a,b,c\n1,2,3\n4,5.5,-6\n", &t));
    EXPECT_EQ(t.columns,
              (std::vector<std::string>{"a", "b", "c"}));
    ASSERT_EQ(t.numRows(), 2u);
    EXPECT_DOUBLE_EQ(t.cell(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(t.cell(1, 1), 5.5);
    EXPECT_DOUBLE_EQ(t.cell(1, 2), -6.0);
}

TEST(Csv, QuotedHeadersAndCrLf)
{
    sd::CsvTableObject t;
    ASSERT_TRUE(parseStr("\"lat, deg\",\"lon\"\r\n1,2\r\n", &t));
    EXPECT_EQ(t.columns[0], "lat, deg");  // comma inside quotes
    EXPECT_EQ(t.columns[1], "lon");
    EXPECT_EQ(t.numRows(), 1u);
}

TEST(Csv, HeaderOnlyAndBlankLines)
{
    sd::CsvTableObject t;
    ASSERT_TRUE(parseStr("x,y\n", &t));
    EXPECT_EQ(t.numRows(), 0u);
    ASSERT_TRUE(parseStr("x,y\n\n1,2\n\n", &t));
    EXPECT_EQ(t.numRows(), 1u);
}

TEST(Csv, MissingNewlineAtEof)
{
    sd::CsvTableObject t;
    ASSERT_TRUE(parseStr("x,y\n1,2", &t));
    EXPECT_EQ(t.numRows(), 1u);
    EXPECT_DOUBLE_EQ(t.cell(0, 1), 2.0);
}

TEST(Csv, MalformedDocumentsRejected)
{
    sd::CsvTableObject t;
    EXPECT_FALSE(parseStr("", &t));            // no header
    EXPECT_FALSE(parseStr("a,b\n1\n", &t));    // ragged row
    EXPECT_FALSE(parseStr("a,b\n1,2,3\n", &t));
    EXPECT_FALSE(parseStr("a,b\n1,zz\n", &t)); // non-numeric cell
    EXPECT_FALSE(parseStr("a,b\n1,,3\n", &t)); // empty cell
}

TEST(Csv, TextRoundTrip)
{
    const auto t = genTable(1, 300, 5);
    const auto text = csvText(t);
    sd::CsvTableObject back;
    ASSERT_TRUE(sd::parseCsvTable(text.data(), text.size(), &back,
                                  nullptr));
    EXPECT_EQ(back.columns, t.columns);
    ASSERT_EQ(back.values.size(), t.values.size());
    for (std::size_t i = 0; i < t.values.size(); ++i)
        EXPECT_NEAR(back.values[i], t.values[i], 1e-9);
}

TEST(Csv, BinaryRoundTrip)
{
    const auto t = genTable(2, 100, 7);
    const auto bin = t.toBinary();
    EXPECT_EQ(bin.size(), t.objectBytes());
    EXPECT_EQ(sd::CsvTableObject::fromBinary(bin), t);
}

class CsvChunkProperty : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(CsvChunkProperty, EventStreamInvariantUnderChunking)
{
    const auto t = genTable(3, 200, 4);
    const auto text = csvText(t);
    sd::CsvTableObject ref;
    ASSERT_TRUE(sd::parseCsvTable(text.data(), text.size(), &ref,
                                  nullptr));

    sd::CsvRowParser p;
    sd::CsvTableObject got;
    std::size_t pos = 0;
    bool done = false;
    while (!done) {
        using E = sd::CsvRowParser::Event;
        switch (p.next()) {
          case E::kColumnName:
            got.columns.push_back(p.name());
            break;
          case E::kHeaderDone:
          case E::kEndRow:
            break;
          case E::kNumber:
            got.values.push_back(p.value());
            break;
          case E::kEndDocument:
            done = true;
            break;
          case E::kNeedMoreData: {
            const std::size_t take =
                std::min(GetParam(), text.size() - pos);
            if (take == 0) {
                p.finish();
            } else {
                p.feed(text.data() + pos, take);
                pos += take;
            }
            break;
          }
          case E::kError:
            FAIL() << p.message();
        }
    }
    EXPECT_EQ(got, ref);
}

INSTANTIATE_TEST_SUITE_P(Chunks, CsvChunkProperty,
                         ::testing::Values(1, 3, 17, 256, 8192));

TEST(CsvEndToEnd, DeviceAppMatchesHostParse)
{
    ho::HostSystem sys;
    co::MorpheusDeviceRuntime device(sys.ssd());
    co::NvmeP2p p2p(sys);
    co::MorpheusRuntime runtime(sys, device, p2p);
    const auto images = co::StandardImages::make();

    const auto t = genTable(4, 20000, 6);
    const auto text = csvText(t);
    const auto file = sys.createFile("table.csv", text);

    sd::CsvTableObject host_parsed;
    ASSERT_TRUE(sd::parseCsvTable(text.data(), text.size(),
                                  &host_parsed, nullptr));

    const auto stream = runtime.streamCreate(file, file.readyAt);
    const auto target =
        runtime.hostTarget(host_parsed.objectBytes());
    const auto res = runtime.invoke(images.csvTable, stream, target,
                                    file.readyAt);
    EXPECT_EQ(res.returnValue, host_parsed.numRows());

    const auto bin = sys.mem().store().readVec(
        target.addr,
        static_cast<std::size_t>(host_parsed.objectBytes()));
    EXPECT_EQ(sd::CsvTableObject::fromBinary(bin), host_parsed);
}

#include "workloads/runner.hh"

TEST(CsvWorkload, AllModesValidate)
{
    const auto &app = morpheus::workloads::findApp("csvstats");
    for (const auto mode :
         {morpheus::workloads::ExecutionMode::kBaseline,
          morpheus::workloads::ExecutionMode::kMorpheus}) {
        morpheus::workloads::RunOptions o;
        o.mode = mode;
        o.scale = 0.05;
        const auto m = morpheus::workloads::runWorkload(app, o);
        EXPECT_TRUE(m.validated) << static_cast<int>(mode);
        EXPECT_GT(m.deserTime, 0u);
    }
}
