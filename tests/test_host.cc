/**
 * @file
 * Host-side model tests: sparse memory, DRAM accounting, CPU DVFS and
 * parse cost, OS overhead accounting, GPU roofline, and the assembled
 * HostSystem (file creation and read-back).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "host/host_system.hh"

namespace ho = morpheus::host;
namespace ms = morpheus::sim;

TEST(SparseMemory, ZeroFillAndRoundTrip)
{
    ho::SparseMemory mem(1 << 20);
    const auto zeros = mem.readVec(1234, 16);
    for (const auto b : zeros)
        EXPECT_EQ(b, 0);
    const std::vector<std::uint8_t> data = {9, 8, 7, 6};
    mem.writeVec(70000, data);  // spans a chunk boundary region
    EXPECT_EQ(mem.readVec(70000, 4), data);
    EXPECT_GT(mem.residentBytes(), 0u);
}

TEST(SparseMemory, CrossChunkWrite)
{
    ho::SparseMemory mem(1 << 20);
    std::vector<std::uint8_t> data(200000, 0x3C);
    mem.writeVec(1000, data);
    const auto back = mem.readVec(1000, 200000);
    EXPECT_EQ(back, data);
}

TEST(SparseMemoryDeath, OutOfBoundsPanics)
{
    ho::SparseMemory mem(1024);
    std::uint8_t b = 0;
    EXPECT_DEATH(mem.write(1024, &b, 1), "past end");
    EXPECT_DEATH(mem.read(1020, &b, 8), "past end");
}

TEST(HostMemory, BusCountersTrackDmaAndCpu)
{
    ho::HostMemory mem(ho::HostMemoryConfig{});
    const std::vector<std::uint8_t> data(1000, 1);
    mem.busWrite(0, data.data(), data.size());
    EXPECT_EQ(mem.busBytesWritten(), 1000u);
    std::uint8_t out[10];
    mem.busRead(0, out, 10);
    EXPECT_EQ(mem.busBytesRead(), 10u);
    mem.cpuAccess(100, 200, 0);
    EXPECT_EQ(mem.busBytesTotal(), 1000u + 10u + 300u);
}

TEST(HostCpu, DvfsClampsToRange)
{
    ho::HostCpu cpu(ho::CpuConfig{});
    cpu.setFreqHz(5e9);
    EXPECT_DOUBLE_EQ(cpu.freqHz(), 2.5e9);
    cpu.setFreqHz(0.5e9);
    EXPECT_DOUBLE_EQ(cpu.freqHz(), 1.2e9);
    cpu.setFreqHz(2.0e9);
    EXPECT_DOUBLE_EQ(cpu.freqHz(), 2.0e9);
}

TEST(HostCpu, WorkTakesLongerWhenUnderclocked)
{
    ho::HostCpu cpu(ho::CpuConfig{});
    cpu.setFreqHz(2.5e9);
    const ms::Tick fast = cpu.execute(0, 1e6, 0);
    ho::HostCpu slow_cpu(ho::CpuConfig{});
    slow_cpu.setFreqHz(1.2e9);
    const ms::Tick slow = slow_cpu.execute(0, 1e6, 0);
    EXPECT_NEAR(static_cast<double>(slow) / fast, 2.5 / 1.2, 0.01);
}

TEST(HostCpu, CoresAreIndependent)
{
    ho::HostCpu cpu(ho::CpuConfig{});
    const ms::Tick a = cpu.execute(0, 1e6, 0);
    const ms::Tick b = cpu.execute(1, 1e6, 0);
    EXPECT_EQ(a, b);  // parallel
    const ms::Tick c = cpu.execute(0, 1e6, 0);
    EXPECT_GT(c, a);  // serialized on core 0
}

TEST(HostCpu, ConvertCostSeparatesIntAndFloat)
{
    ho::HostCpu cpu(ho::CpuConfig{});
    morpheus::serde::ParseCost ints;
    ints.bytes = 700;
    ints.intValues = 100;
    morpheus::serde::ParseCost floats;
    floats.bytes = 700;
    floats.floatValues = 100;
    floats.floatOps = 1400;
    EXPECT_GT(cpu.convertCycles(floats), cpu.convertCycles(ints));
}

TEST(OsModel, ChargesAndCounts)
{
    ho::HostCpu cpu(ho::CpuConfig{});
    ho::OsModel os(ho::OsConfig{}, cpu);
    const ms::Tick t1 = os.syscall(0, 0);
    EXPECT_GT(t1, 0u);
    EXPECT_EQ(os.syscalls(), 1u);
    os.blockingReadOverhead(0, 65536, t1);
    EXPECT_EQ(os.syscalls(), 2u);
    EXPECT_EQ(os.contextSwitches(), 2u);
    os.blockingWait(0, 0);
    EXPECT_EQ(os.contextSwitches(), 4u);
    os.pageFaults(0, 10, 0);
    EXPECT_EQ(os.pageFaultCount(), 10u);
}

TEST(OsModel, FsOverheadDominatesConversionForIntParsing)
{
    // The paper's §II profile: conversion is ~15% of deser time; the
    // rest is OS/file-system work. Check the model reproduces that
    // split within a reasonable band.
    ho::HostCpu cpu(ho::CpuConfig{});
    ho::OsModel os(ho::OsConfig{}, cpu);
    // 64 KiB of "123456 " style tokens: ~9362 ints.
    morpheus::serde::ParseCost cost;
    cost.bytes = 65536;
    cost.intValues = 9362;
    const double convert = cpu.convertCycles(cost);
    const double fs =
        os.config().syscallCycles +
        os.config().fsCyclesPerByte * 65536 +
        2 * os.config().contextSwitchCycles;
    const double frac = convert / (convert + fs);
    EXPECT_GT(frac, 0.08);
    EXPECT_LT(frac, 0.30);
}

TEST(Gpu, RooflinePicksTheBindingResource)
{
    morpheus::pcie::PcieSwitch sw;
    const auto host = sw.addPort("host", morpheus::pcie::LinkConfig{3, 16});
    (void)host;
    const auto port = sw.addPort("gpu", morpheus::pcie::LinkConfig{3, 16});
    ho::Gpu gpu(sw, port, ho::GpuConfig{});

    // Compute bound: lots of FLOPs, tiny memory traffic.
    const ms::Tick compute =
        gpu.kernel(1e12, 1000, 0) - 0;
    // Memory bound: few FLOPs, huge traffic.
    ho::Gpu gpu2(sw, port, ho::GpuConfig{});
    const ms::Tick memory = gpu2.kernel(1.0, 100ULL << 30, 0);
    EXPECT_GT(compute, ms::kPsPerMs);
    EXPECT_GT(memory, ms::kPsPerMs);
    EXPECT_EQ(gpu.kernelsLaunched(), 1u);
}

TEST(Gpu, AllocatorAlignsAndAdvances)
{
    morpheus::pcie::PcieSwitch sw;
    sw.addPort("host", morpheus::pcie::LinkConfig{3, 16});
    const auto port = sw.addPort("gpu", morpheus::pcie::LinkConfig{3, 16});
    ho::Gpu gpu(sw, port, ho::GpuConfig{});
    const auto a = gpu.alloc(100);
    const auto b = gpu.alloc(100);
    EXPECT_EQ(a % 256, 0u);
    EXPECT_EQ(b % 256, 0u);
    EXPECT_GE(b, a + 100);
    gpu.resetAllocator();
    EXPECT_EQ(gpu.alloc(1), 0u);
}

TEST(HostSystem, BuildsWithDefaultsAndCreatesFiles)
{
    ho::HostSystem sys;
    const std::vector<std::uint8_t> content = {'h', 'i', ' ', '4', '2'};
    const auto extent = sys.createFile("greeting", content);
    EXPECT_EQ(extent.sizeBytes, content.size());
    EXPECT_GT(extent.readyAt, 0u);
    EXPECT_EQ(sys.fileBytes(extent), content);
    EXPECT_EQ(sys.file("greeting").startByte, extent.startByte);
}

TEST(HostSystemDeath, DuplicateFileNamePanics)
{
    ho::HostSystem sys;
    sys.createFile("f", {1});
    EXPECT_DEATH(sys.createFile("f", {2}), "already exists");
}

TEST(HostSystem, FilesArePageAlignedAndDisjoint)
{
    ho::HostSystem sys;
    const auto a = sys.createFile("a", std::vector<std::uint8_t>(100, 1));
    const auto b = sys.createFile("b", std::vector<std::uint8_t>(100, 2));
    const auto page = sys.ssd().ftl().pageBytes();
    EXPECT_EQ(a.startByte % page, 0u);
    EXPECT_EQ(b.startByte % page, 0u);
    EXPECT_GE(b.startByte, a.startByte + page);
    EXPECT_EQ(sys.fileBytes(a), std::vector<std::uint8_t>(100, 1));
    EXPECT_EQ(sys.fileBytes(b), std::vector<std::uint8_t>(100, 2));
}

TEST(HostSystem, HostAllocatorAdvancesAndResets)
{
    ho::HostSystem sys;
    const auto a = sys.allocHost(100);
    const auto b = sys.allocHost(100);
    EXPECT_GE(b, a + 100);
    sys.resetHostAllocator();
    EXPECT_EQ(sys.allocHost(1), a);
}

TEST(HostSystem, RegisterStatsDumpsTheWholeMachine)
{
    ho::HostSystem sys;
    sys.createFile("f", std::vector<std::uint8_t>(100000, '7'));
    morpheus::sim::stats::StatSet set;
    sys.registerStats(set);
    std::ostringstream os;
    set.report(os);
    const std::string report = os.str();
    // A few load-bearing counters must be present and non-zero after
    // the ingest write.
    EXPECT_NE(report.find("ssd.flash.programs"), std::string::npos);
    EXPECT_NE(report.find("ssd.ftl.hostWrites"), std::string::npos);
    EXPECT_NE(report.find("pcie.fabricBytes"), std::string::npos);
    EXPECT_GT(set.counterValue("ssd.flash.programs"), 0u);
    EXPECT_GT(set.counterValue("ssd.nvme.commands"), 0u);
    EXPECT_GT(set.counterValue("pcie.fabricBytes"), 0u);
}
