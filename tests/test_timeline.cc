/**
 * @file
 * Unit tests for serialized-resource timelines.
 */

#include <gtest/gtest.h>

#include "sim/timeline.hh"

namespace ms = morpheus::sim;

TEST(Timeline, FirstAcquireStartsAtRequest)
{
    ms::Timeline t("t");
    EXPECT_EQ(t.acquire(100, 50), 100u);
    EXPECT_EQ(t.freeAt(), 150u);
}

TEST(Timeline, BackToBackRequestsQueue)
{
    ms::Timeline t("t");
    t.acquire(0, 100);
    // Second op asks for tick 10 but the resource is busy until 100.
    EXPECT_EQ(t.acquire(10, 30), 100u);
    EXPECT_EQ(t.freeAt(), 130u);
}

TEST(Timeline, GapsLeaveIdleTime)
{
    ms::Timeline t("t");
    t.acquire(0, 10);
    EXPECT_EQ(t.acquire(100, 10), 100u);
    EXPECT_EQ(t.busyTicks(), 20u);
    EXPECT_DOUBLE_EQ(t.utilization(200), 0.1);
}

TEST(Timeline, AcquireUntilReturnsCompletion)
{
    ms::Timeline t("t");
    EXPECT_EQ(t.acquireUntil(5, 20), 25u);
}

TEST(Timeline, UtilizationClampsToOne)
{
    ms::Timeline t("t");
    t.acquire(0, 1000);
    EXPECT_DOUBLE_EQ(t.utilization(10), 1.0);
    EXPECT_DOUBLE_EQ(t.utilization(0), 0.0);
}

TEST(Timeline, ResetClearsState)
{
    ms::Timeline t("t");
    t.acquire(0, 100);
    t.reset();
    EXPECT_EQ(t.freeAt(), 0u);
    EXPECT_EQ(t.busyTicks(), 0u);
    EXPECT_EQ(t.ops(), 0u);
}

TEST(TimelineBank, DispatchesToEarliestFreeUnit)
{
    ms::TimelineBank bank("b", 2);
    unsigned unit = 99;
    EXPECT_EQ(bank.acquire(0, 100, &unit), 0u);
    EXPECT_EQ(unit, 0u);
    // Unit 0 busy until 100; unit 1 free: second op runs immediately.
    EXPECT_EQ(bank.acquire(0, 100, &unit), 0u);
    EXPECT_EQ(unit, 1u);
    // Both busy until 100: third op waits.
    EXPECT_EQ(bank.acquire(0, 50, &unit), 100u);
}

TEST(TimelineBank, AcquireUnitTargetsSpecificUnit)
{
    ms::TimelineBank bank("b", 3);
    bank.acquireUnit(2, 0, 40);
    EXPECT_EQ(bank.unit(2).busyTicks(), 40u);
    EXPECT_EQ(bank.unit(0).busyTicks(), 0u);
    EXPECT_EQ(bank.totalBusyTicks(), 40u);
}

TEST(TimelineBankDeath, ZeroUnitsPanics)
{
    EXPECT_DEATH(ms::TimelineBank("b", 0), "at least one unit");
}

TEST(Timeline, GapFillingPlacesLateArrivalsEarly)
{
    // A reservation far in the future must not block a later-issued
    // request for an earlier slot (logically concurrent activities are
    // walked sequentially by the simulator).
    ms::Timeline t("t");
    t.acquire(1000000, 500);
    EXPECT_EQ(t.acquire(0, 200), 0u);          // fills the early gap
    EXPECT_EQ(t.acquire(100, 800000), 200u);   // fits before the island
    EXPECT_EQ(t.freeAt(), 1000500u);
}

TEST(Timeline, GapTooSmallSkipsToNextGap)
{
    ms::Timeline t("t");
    t.acquire(100, 50);   // busy [100,150)
    t.acquire(200, 50);   // busy [200,250)
    // A 80-tick request at 90 does not fit in [150,200); lands at 250.
    EXPECT_EQ(t.acquire(90, 80), 250u);
}

TEST(Timeline, AdjacentReservationsMerge)
{
    ms::Timeline t("t");
    t.acquire(0, 100);
    t.acquire(100, 100);
    t.acquire(200, 100);
    EXPECT_EQ(t.intervals(), 1u);
    EXPECT_EQ(t.freeAt(), 300u);
}

TEST(Timeline, ZeroDurationIsFree)
{
    ms::Timeline t("t");
    t.acquire(0, 100);
    EXPECT_EQ(t.acquire(50, 0), 50u);  // no occupancy, no queueing
    EXPECT_EQ(t.busyTicks(), 100u);
}

TEST(Timeline, BusyTicksAccumulateAcrossGapFills)
{
    ms::Timeline t("t");
    t.acquire(1000, 10);
    t.acquire(0, 10);
    t.acquire(500, 10);
    EXPECT_EQ(t.busyTicks(), 30u);
    EXPECT_EQ(t.ops(), 3u);
    EXPECT_EQ(t.intervals(), 3u);
}
