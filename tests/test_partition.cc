/**
 * @file
 * Partition/merge round-trip tests (the MPI file-per-rank layout).
 */

#include <gtest/gtest.h>

#include "workloads/generators.hh"
#include "workloads/partition.hh"

namespace wk = morpheus::workloads;

namespace {

void
roundTrip(const wk::AnyObject &obj, wk::ObjectKind kind, unsigned parts)
{
    const auto shards = wk::partitionObject(obj, parts);
    ASSERT_EQ(shards.size(), parts);
    const auto merged = wk::mergeObjects(kind, shards);
    EXPECT_TRUE(wk::objectsEqual(obj, merged));
}

}  // namespace

class PartitionParts : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(PartitionParts, EdgeListRoundTrips)
{
    roundTrip(wk::AnyObject(wk::genEdgeList(1, 100, 997, false)),
              wk::ObjectKind::kEdgeList, GetParam());
}

TEST_P(PartitionParts, WeightedEdgeListRoundTrips)
{
    roundTrip(wk::AnyObject(wk::genEdgeList(2, 100, 1003, true)),
              wk::ObjectKind::kEdgeListWeighted, GetParam());
}

TEST_P(PartitionParts, MatrixRoundTrips)
{
    roundTrip(wk::AnyObject(wk::genMatrix(3, 37, 0.2)),
              wk::ObjectKind::kMatrix, GetParam());
}

TEST_P(PartitionParts, IntArrayRoundTrips)
{
    roundTrip(wk::AnyObject(wk::genIntArray(4, 1009)),
              wk::ObjectKind::kIntArray, GetParam());
}

TEST_P(PartitionParts, PointSetRoundTrips)
{
    roundTrip(wk::AnyObject(wk::genPointSet(5, 503, 5, 0.0)),
              wk::ObjectKind::kPointSet, GetParam());
}

TEST_P(PartitionParts, CooRoundTrips)
{
    roundTrip(wk::AnyObject(wk::genCooMatrix(6, 64, 64, 999, 0.3)),
              wk::ObjectKind::kCooMatrix, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Parts, PartitionParts,
                         ::testing::Values(1, 2, 3, 4, 7, 16));

TEST(Partition, ShardsAreBalanced)
{
    const auto obj = wk::AnyObject(wk::genIntArray(7, 103));
    const auto shards = wk::partitionObject(obj, 4);
    std::size_t lo = SIZE_MAX, hi = 0;
    for (const auto &s : shards) {
        const auto n =
            std::get<morpheus::serde::IntArrayObject>(s).values.size();
        lo = std::min(lo, n);
        hi = std::max(hi, n);
    }
    EXPECT_LE(hi - lo, 1u);
}

TEST(Partition, MatrixShardsKeepColumnCount)
{
    const auto obj = wk::AnyObject(wk::genMatrix(8, 10, 0.0));
    const auto shards = wk::partitionObject(obj, 3);
    for (const auto &s : shards) {
        const auto &m = std::get<morpheus::serde::MatrixObject>(s);
        EXPECT_EQ(m.cols, 10u);
        EXPECT_EQ(m.values.size(),
                  static_cast<std::size_t>(m.rows) * 10u);
    }
}

TEST_P(PartitionParts, CsvTableRoundTrips)
{
    roundTrip(wk::AnyObject(wk::genCsvTable(9, 211, 6, 0.3)),
              wk::ObjectKind::kCsvTable, GetParam());
}

TEST_P(PartitionParts, JsonRecordsRoundTrips)
{
    roundTrip(wk::AnyObject(wk::genJsonRecords(10, 307, 0.3)),
              wk::ObjectKind::kJsonRecords, GetParam());
}
