/**
 * @file
 * SSD controller tests: NVMe read/write firmware paths end to end
 * through flash + FTL + DMA, embedded core model, and the Morpheus
 * engine hook.
 */

#include <gtest/gtest.h>

#include <vector>

#include "nvme/driver.hh"
#include "ssd/ssd_controller.hh"

namespace nv = morpheus::nvme;
namespace pc = morpheus::pcie;
namespace ms = morpheus::sim;
namespace sd = morpheus::ssd;

namespace {

sd::SsdConfig
smallSsd()
{
    sd::SsdConfig cfg;
    cfg.flash.channels = 2;
    cfg.flash.diesPerChannel = 2;
    cfg.flash.planesPerDie = 1;
    cfg.flash.blocksPerPlane = 32;
    cfg.flash.pagesPerBlock = 16;
    cfg.flash.pageBytes = 4096;
    return cfg;
}

/** Host-memory stand-in. */
class VecTarget : public pc::BusTarget
{
  public:
    explicit VecTarget(std::size_t n) : mem(n, 0) {}

    void
    busWrite(pc::Addr off, const std::uint8_t *data,
             std::size_t n) override
    {
        std::copy(data, data + n, mem.begin() + off);
    }

    void
    busRead(pc::Addr off, std::uint8_t *out,
            std::size_t n) const override
    {
        std::copy(mem.begin() + off, mem.begin() + off + n, out);
    }

    std::vector<std::uint8_t> mem;
};

struct Rig
{
    ms::EventQueue eq;
    pc::PcieSwitch sw;
    pc::PortId host, ssd_port;
    VecTarget host_mem{4 << 20};
    sd::SsdController ssd;
    nv::NvmeDriver driver;
    std::uint16_t qid;

    explicit Rig(const sd::SsdConfig &cfg = smallSsd())
        : host(sw.addPort("host", pc::LinkConfig{3, 16})),
          ssd_port(sw.addPort("ssd", pc::LinkConfig{3, 4})),
          ssd(eq, sw, ssd_port, cfg), driver(ssd.nvme())
    {
        sw.mapWindow(0, 4 << 20, host, "host-dram", &host_mem);
        qid = driver.openQueue(64, 0x1000, 0x2000);
    }
};

std::vector<std::uint8_t>
pattern(std::size_t n)
{
    std::vector<std::uint8_t> v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i] = static_cast<std::uint8_t>(i * 7 + 3);
    return v;
}

}  // namespace

TEST(SsdController, WriteThenReadRoundTripsThroughFlash)
{
    Rig rig;
    const auto data = pattern(8192);

    // Stage write payload in host memory at 0x10000.
    std::copy(data.begin(), data.end(),
              rig.host_mem.mem.begin() + 0x10000);
    nv::Command wr;
    wr.opcode = nv::Opcode::kWrite;
    wr.prp1 = 0x10000;
    wr.slba = 8;
    wr.nlb = 15;  // 16 blocks = 8 KiB
    const auto wr_cqe = rig.driver.io(rig.qid, wr, 0);
    ASSERT_TRUE(wr_cqe.ok());

    nv::Command rd;
    rd.opcode = nv::Opcode::kRead;
    rd.prp1 = 0x40000;
    rd.slba = 8;
    rd.nlb = 15;
    const auto rd_cqe = rig.driver.io(rig.qid, rd, wr_cqe.postedAt);
    ASSERT_TRUE(rd_cqe.ok());
    EXPECT_GT(rd_cqe.postedAt, wr_cqe.postedAt);

    for (std::size_t i = 0; i < data.size(); ++i)
        ASSERT_EQ(rig.host_mem.mem[0x40000 + i], data[i]) << i;
}

TEST(SsdController, SubPageWritePreservesNeighbours)
{
    Rig rig;
    const auto a = pattern(512);
    std::copy(a.begin(), a.end(), rig.host_mem.mem.begin() + 0x10000);

    nv::Command wr;
    wr.opcode = nv::Opcode::kWrite;
    wr.prp1 = 0x10000;
    wr.slba = 0;
    wr.nlb = 0;  // one block
    ASSERT_TRUE(rig.driver.io(rig.qid, wr, 0).ok());

    // Write the adjacent block; the first must survive (RMW).
    std::vector<std::uint8_t> b(512, 0xEE);
    std::copy(b.begin(), b.end(), rig.host_mem.mem.begin() + 0x20000);
    nv::Command wr2;
    wr2.opcode = nv::Opcode::kWrite;
    wr2.prp1 = 0x20000;
    wr2.slba = 1;
    wr2.nlb = 0;
    ASSERT_TRUE(rig.driver.io(rig.qid, wr2, 0).ok());

    const auto bytes = rig.ssd.peekBytes(0, 1024);
    for (std::size_t i = 0; i < 512; ++i)
        ASSERT_EQ(bytes[i], a[i]);
    for (std::size_t i = 512; i < 1024; ++i)
        ASSERT_EQ(bytes[i], 0xEE);
}

TEST(SsdController, ReadBeyondCapacityFails)
{
    Rig rig;
    nv::Command rd;
    rd.opcode = nv::Opcode::kRead;
    rd.prp1 = 0x1000;
    rd.slba = rig.ssd.capacityBlocks() + 100;
    rd.nlb = 0;
    const auto cqe = rig.driver.io(rig.qid, rd, 0);
    EXPECT_EQ(cqe.status, nv::Status::kLbaOutOfRange);
}

TEST(SsdController, MorpheusCommandWithoutEngineIsRejected)
{
    Rig rig;
    nv::Command mi;
    mi.opcode = nv::Opcode::kMInit;
    const auto cqe = rig.driver.io(rig.qid, mi, 0);
    EXPECT_EQ(cqe.status, nv::Status::kInvalidOpcode);
}

TEST(SsdController, MorpheusEngineHookReceivesCommands)
{
    struct Probe : sd::MorpheusEngine
    {
        int calls = 0;
        nv::CommandResult
        execute(const nv::Command &, ms::Tick start) override
        {
            ++calls;
            return {start + 5, nv::Status::kSuccess, 123};
        }
    };
    Rig rig;
    Probe probe;
    rig.ssd.setMorpheusEngine(&probe);
    nv::Command mi;
    mi.opcode = nv::Opcode::kMInit;
    const auto cqe = rig.driver.io(rig.qid, mi, 0);
    EXPECT_TRUE(cqe.ok());
    EXPECT_EQ(cqe.dw0, 123u);
    EXPECT_EQ(probe.calls, 1);
}

TEST(SsdController, InstanceToCoreMappingIsStatic)
{
    Rig rig;
    const unsigned n = rig.ssd.numCores();
    ASSERT_GT(n, 1u);
    EXPECT_EQ(&rig.ssd.coreFor(0), &rig.ssd.coreFor(0));
    EXPECT_EQ(&rig.ssd.coreFor(1), &rig.ssd.coreFor(1 + n));
    EXPECT_NE(&rig.ssd.coreFor(0), &rig.ssd.coreFor(1));
}

TEST(EmbeddedCore, ParseCostModelChargesSoftFloat)
{
    sd::EmbeddedCoreConfig cfg;
    cfg.hasFpu = false;
    morpheus::serde::ParseCost ints;
    ints.bytes = 1000;
    ints.intValues = 100;
    morpheus::serde::ParseCost floats = ints;
    floats.floatValues = 100;
    floats.floatOps = 1500;
    const double c_int = cfg.parseCycles(ints);
    const double c_float = cfg.parseCycles(floats);
    EXPECT_GT(c_float, 3.0 * c_int);

    cfg.hasFpu = true;
    EXPECT_LT(cfg.parseCycles(floats), c_float);
}

TEST(EmbeddedCore, IsramLoadRespectsCapacity)
{
    sd::EmbeddedCoreConfig cfg;
    cfg.isramBytes = 10000;
    sd::EmbeddedCore core(0, cfg);
    EXPECT_TRUE(core.loadImage(6000));
    EXPECT_FALSE(core.loadImage(6000));  // would exceed
    core.unloadImage(6000);
    EXPECT_TRUE(core.loadImage(9999));
}

TEST(EmbeddedCore, ExecutionOccupiesTimeline)
{
    sd::EmbeddedCoreConfig cfg;  // 500 MHz
    sd::EmbeddedCore core(0, cfg);
    const ms::Tick done = core.execute(500e6, 0);  // one second of work
    EXPECT_EQ(done, ms::kPsPerSec);
    EXPECT_EQ(core.timeline().busyTicks(), ms::kPsPerSec);
}
