/**
 * @file
 * NVMe Dataset Management (TRIM) and Identify tests, plus the FTL-side
 * trim semantics (trimmed pages read as zeros and are GC-reclaimable).
 */

#include <gtest/gtest.h>

#include "host/host_system.hh"

namespace ho = morpheus::host;
namespace nv = morpheus::nvme;
namespace ms = morpheus::sim;

namespace {

std::vector<std::uint8_t>
pattern(std::size_t n)
{
    std::vector<std::uint8_t> v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i] = static_cast<std::uint8_t>(i % 199 + 1);
    return v;
}

}  // namespace

TEST(Identify, ReportsCapacityAndMdts)
{
    ho::HostSystem sys;
    const nv::IdentifyData id = sys.ssd().identify();
    EXPECT_EQ(id.capacityBlocks, sys.ssd().capacityBlocks());
    EXPECT_EQ(id.maxTransferBlocks,
              sys.config().ssd.nvme.maxTransferBlocks);
    EXPECT_GT(id.numQueues, 0);
    EXPECT_STREQ(id.model, "Morpheus-SSD 512GB");
    // No engine installed in a bare system.
    EXPECT_FALSE(id.morpheusCapable);
}

TEST(Identify, MorpheusCapableOnceEngineInstalled)
{
    ho::HostSystem sys;
    struct Engine : morpheus::ssd::MorpheusEngine
    {
        nv::CommandResult
        execute(const nv::Command &, ms::Tick start) override
        {
            return {start, nv::Status::kSuccess, 0};
        }
    } engine;
    sys.ssd().setMorpheusEngine(&engine);
    EXPECT_TRUE(sys.ssd().identify().morpheusCapable);
}

TEST(FtlTrim, TrimmedPagesReadZeroAndUnmap)
{
    ho::HostSystem sys;
    auto &ftl = sys.ssd().ftl();
    const auto data = pattern(ftl.pageBytes());
    ftl.writePages(3, data, 0);
    ftl.writePages(4, data, 0);
    ASSERT_TRUE(ftl.isMapped(3));

    const ms::Tick t = ftl.trimPages(3, 1, 1000);
    EXPECT_GT(t, 1000u);
    EXPECT_FALSE(ftl.isMapped(3));
    EXPECT_TRUE(ftl.isMapped(4));  // neighbour untouched
    for (const auto b : ftl.peekPage(3))
        EXPECT_EQ(b, 0);
    EXPECT_EQ(ftl.peekPage(4), data);
}

TEST(Dsm, DeallocatesWholePagesOnly)
{
    ho::HostSystem sys;
    const auto page = sys.ssd().ftl().pageBytes();
    const auto data = pattern(3 * page);
    const auto extent = sys.createFile("victim", data);
    const std::uint64_t first_block =
        extent.startByte / nv::kBlockBytes;
    const std::uint32_t blocks_per_page = page / nv::kBlockBytes;

    // Deallocate the middle page plus a partial tail into page 3.
    nv::Command dsm;
    dsm.opcode = nv::Opcode::kDsm;
    dsm.slba = first_block + blocks_per_page;  // start of page 2
    dsm.nlb = static_cast<std::uint16_t>(blocks_per_page + 3);
    const auto cqe =
        sys.nvmeDriver().io(sys.ioQueue(), dsm, extent.readyAt);
    ASSERT_TRUE(cqe.ok());

    const auto bytes = sys.ssd().peekBytes(extent.startByte, 3 * page);
    // Page 1 intact.
    for (std::size_t i = 0; i < page; ++i)
        ASSERT_EQ(bytes[i], data[i]);
    // Page 2 zeroed.
    for (std::size_t i = page; i < 2 * page; ++i)
        ASSERT_EQ(bytes[i], 0);
    // Page 3 intact (partial coverage does not deallocate).
    for (std::size_t i = 2 * page; i < 3 * page; ++i)
        ASSERT_EQ(bytes[i], data[i]);
}

TEST(Dsm, OutOfRangeRejected)
{
    ho::HostSystem sys;
    nv::Command dsm;
    dsm.opcode = nv::Opcode::kDsm;
    dsm.slba = sys.ssd().capacityBlocks() + 1000;
    dsm.nlb = 7;
    const auto cqe = sys.nvmeDriver().io(sys.ioQueue(), dsm, 0);
    EXPECT_EQ(cqe.status, nv::Status::kLbaOutOfRange);
}

TEST(Dsm, TrimmedSpaceIsRewritable)
{
    ho::HostSystem sys;
    const auto page = sys.ssd().ftl().pageBytes();
    const auto a = pattern(page);
    const auto extent = sys.createFile("f", a);

    nv::Command dsm;
    dsm.opcode = nv::Opcode::kDsm;
    dsm.slba = extent.startByte / nv::kBlockBytes;
    dsm.nlb = static_cast<std::uint16_t>(page / nv::kBlockBytes - 1);
    ASSERT_TRUE(
        sys.nvmeDriver().io(sys.ioQueue(), dsm, extent.readyAt).ok());

    // Write fresh data over the trimmed range via the normal path.
    std::vector<std::uint8_t> b(page, 0x5C);
    const morpheus::pcie::Addr stage = sys.allocHost(page);
    sys.mem().store().writeVec(stage, b);
    nv::Command wr;
    wr.opcode = nv::Opcode::kWrite;
    wr.prp1 = stage;
    wr.slba = dsm.slba;
    wr.nlb = dsm.nlb;
    ASSERT_TRUE(sys.nvmeDriver().io(sys.ioQueue(), wr, 0).ok());
    EXPECT_EQ(sys.ssd().peekBytes(extent.startByte, page), b);
}

TEST(FtlTrimDeath, BeyondCapacityPanics)
{
    ho::HostSystem sys;
    EXPECT_DEATH(sys.ssd().ftl().trimPages(
                     sys.ssd().ftl().logicalPages(), 1, 0),
                 "beyond logical capacity");
}
