/**
 * @file
 * Observability tests: the in-memory trace sink against real device
 * runs (span nesting and attribution for MREAD, a D-SRAM bounce, a
 * live migration), the Chrome trace-event serialization, and the
 * metrics registry federation.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "core/device_runtime.hh"
#include "core/host_runtime.hh"
#include "core/nvme_p2p.hh"
#include "core/standard_apps.hh"
#include "host/host_system.hh"
#include "obs/critical_path.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "serde/writer.hh"
#include "shard/shard_fabric.hh"
#include "workloads/generators.hh"

namespace co = morpheus::core;
namespace ho = morpheus::host;
namespace nv = morpheus::nvme;
namespace ob = morpheus::obs;
namespace sd = morpheus::serde;
namespace st = morpheus::sim::stats;
namespace wk = morpheus::workloads;
using morpheus::sim::Tick;

namespace {

/** Minimal host+device rig, mirroring test_device_runtime. */
struct Rig
{
    ho::HostSystem sys;
    co::MorpheusDeviceRuntime device;
    co::StandardImages images = co::StandardImages::make();

    Rig() : device(sys.ssd()) {}
    explicit Rig(const ho::SystemConfig &cfg)
        : sys(cfg), device(sys.ssd())
    {
    }

    nv::Completion
    io(nv::Command cmd, Tick now = 0)
    {
        return sys.nvmeDriver().io(sys.ioQueue(), cmd, now);
    }

    nv::Completion
    minit(std::uint32_t instance, const co::StorageAppImage &image,
          std::uint32_t dsram = 0)
    {
        co::InstanceSetup setup;
        setup.image = &image;
        setup.target = co::DmaTarget{sys.allocHost(1 << 20), false};
        setup.dsramBytes = dsram;
        device.stageInstance(instance, setup);
        nv::Command c;
        c.opcode = nv::Opcode::kMInit;
        c.instanceId = instance;
        c.prp1 = sys.allocHost(image.textBytes);
        c.prp2 = dsram;
        c.cdw13 = image.textBytes;
        return io(c);
    }

    nv::Completion
    mread(std::uint32_t instance, const ho::FileExtent &extent,
          std::uint64_t off, std::uint64_t valid, Tick now)
    {
        nv::Command c;
        c.opcode = nv::Opcode::kMRead;
        c.instanceId = instance;
        c.slba = (extent.startByte + off) / nv::kBlockBytes;
        c.nlb = static_cast<std::uint16_t>(
            (valid + nv::kBlockBytes - 1) / nv::kBlockBytes - 1);
        c.cdw13 = static_cast<std::uint32_t>(valid);
        return io(c, now);
    }

    ho::FileExtent
    intFile(std::uint64_t seed, std::uint64_t count)
    {
        const auto a = wk::genIntArray(seed, count);
        sd::TextWriter w;
        a.serialize(w);
        return sys.createFile("ints", w.bytes());
    }
};

}  // namespace

// ---------------------------------------------------- sink primitives

TEST(InMemoryTraceSink, QueriesFilterByNameTrackAndTrace)
{
    ob::InMemoryTraceSink sink;
    ob::Span a;
    a.track = "t0";
    a.name = "work";
    a.begin = 10;
    a.end = 20;
    a.trace = 1;
    sink.record(a);
    ob::Span b = a;
    b.track = "t1";
    b.trace = 2;
    sink.record(b);
    ob::Span mark = a;
    mark.name = "mark";
    mark.instant = true;
    sink.record(mark);

    EXPECT_EQ(sink.size(), 3u);
    EXPECT_EQ(sink.count("work"), 2u);
    EXPECT_EQ(sink.named("mark").size(), 1u);
    EXPECT_EQ(sink.onTrack("t0").size(), 2u);
    EXPECT_EQ(sink.forTrace(2).size(), 1u);
    sink.clear();
    EXPECT_EQ(sink.size(), 0u);
}

TEST(InMemoryTraceSink, OverlapsOtherIgnoresSelfInstantsAndOtherTracks)
{
    ob::InMemoryTraceSink sink;
    ob::Span s;
    s.track = "core";
    s.name = "busy";
    s.begin = 100;
    s.end = 200;
    s.trace = 7;
    sink.record(s);

    // The span itself never counts as its own preemption.
    EXPECT_FALSE(sink.overlapsOther("core", 100, 200, 7));
    // A different trace id on the same track does.
    EXPECT_TRUE(sink.overlapsOther("core", 150, 250, 8));
    // Half-open intervals: touching at the edge is not an overlap.
    EXPECT_FALSE(sink.overlapsOther("core", 200, 300, 8));
    // Other tracks never conflict.
    EXPECT_FALSE(sink.overlapsOther("dram", 100, 200, 8));

    ob::Span i = s;
    i.instant = true;
    i.trace = 9;
    sink.record(i);
    // Instants are markers, not occupancy.
    EXPECT_FALSE(sink.overlapsOther("core", 100, 200, 7));
}

// ------------------------------------------------- end-to-end tracing

TEST(Tracing, MReadSpansNestUnderHostSpanWithAttribution)
{
    Rig rig;
    const auto extent = rig.intFile(31, 5000);
    ASSERT_TRUE(rig.minit(1, rig.images.intArray).ok());

    ob::InMemoryTraceSink sink;
    const std::uint64_t valid = 16 * 1024;
    {
        const ob::ScopedTraceSink attach(sink);
        ASSERT_TRUE(rig.mread(1, extent, 0, valid, 0).ok());
    }

    // The host-side umbrella span: doorbell ring -> CQE posted. (The
    // controller's firmware-exec span shares the opcode name but lives
    // on the nvme.exec track.)
    std::vector<ob::Span> hosts;
    for (const ob::Span &s : sink.named("MREAD")) {
        if (s.track.rfind("host.queue[", 0) == 0)
            hosts.push_back(s);
    }
    ASSERT_EQ(hosts.size(), 1u);
    const ob::Span &host = hosts.front();
    EXPECT_GT(host.trace, 0u);
    EXPECT_EQ(host.status, 0u);
    EXPECT_EQ(host.bytes, valid);
    EXPECT_LT(host.begin, host.end);

    // The device-side parse span: same trace id, attributed to the
    // instance and its core (static placement: 1 % 4 = core 1), fully
    // nested inside the host span.
    const auto parses = sink.named("parse");
    ASSERT_EQ(parses.size(), 1u);
    const ob::Span &parse = parses.front();
    EXPECT_EQ(parse.trace, host.trace);
    EXPECT_EQ(parse.instance, 1u);
    EXPECT_EQ(parse.core, 1u);
    EXPECT_EQ(parse.track, "ssd.core[1]");
    EXPECT_EQ(parse.bytes, valid);
    EXPECT_GE(parse.begin, host.begin);
    EXPECT_LE(parse.end, host.end);

    // Single tenant, single command: the chunk was never preempted on
    // its core.
    EXPECT_FALSE(sink.overlapsOther(parse.track, parse.begin, parse.end,
                                    parse.trace));

    // Every span of this command carries its trace id: host umbrella,
    // controller dispatch, exec window, and the parse itself.
    EXPECT_GE(sink.forTrace(host.trace).size(), 4u);
    EXPECT_EQ(sink.count("dispatch"), 1u);
}

TEST(Tracing, DsramBounceEmitsInstantAndFailedHostSpan)
{
    ho::SystemConfig cfg;
    cfg.ssd.sched.dsramPartitioning = true;
    Rig rig(cfg);
    const std::uint32_t dsram = cfg.ssd.core.dsramBytes;

    ob::InMemoryTraceSink sink;
    const ob::ScopedTraceSink attach(sink);

    // Instance 1 takes the whole scratchpad of core 1; instance 5 maps
    // to the same core (static placement) and must bounce.
    ASSERT_TRUE(rig.minit(1, rig.images.intArray, dsram).ok());
    EXPECT_EQ(rig.minit(5, rig.images.intArray, 1024).status,
              nv::Status::kDsramExhausted);

    const auto bounces = sink.named("dsram_bounce");
    ASSERT_EQ(bounces.size(), 1u);
    const ob::Span &bounce = bounces.front();
    EXPECT_TRUE(bounce.instant);
    EXPECT_EQ(bounce.instance, 5u);
    EXPECT_EQ(bounce.track, "sched.tenant[0]");

    // The host saw the same command fail with the same status, under
    // the same trace id as the scheduler's bounce marker.
    bool found = false;
    for (const ob::Span &s : sink.named("MINIT")) {
        if (s.trace != bounce.trace)
            continue;
        found = true;
        EXPECT_EQ(s.status,
                  static_cast<std::uint32_t>(
                      nv::Status::kDsramExhausted));
    }
    EXPECT_TRUE(found);
}

TEST(Tracing, MigrationEmitsMoveAndReloadSpans)
{
    ho::SystemConfig cfg;
    cfg.ssd.sched.placement = morpheus::sched::PlacementPolicy::kLoadAware;
    cfg.ssd.sched.migration = true;
    // Default migrationMinGain (50 us): the MINIT install backlog is
    // too small to justify a move, the 64 KiB parse backlog is not —
    // so exactly the second chunk migrates.
    Rig rig(cfg);
    const auto extent = rig.intFile(33, 20000);
    const auto init = rig.minit(1, rig.images.intArray);
    ASSERT_TRUE(init.ok());

    ob::InMemoryTraceSink sink;
    const ob::ScopedTraceSink attach(sink);

    // First chunk arrives on an idle core (no backlog, no migration)
    // and leaves its timeline busy parsing 64 KiB; the second chunk,
    // submitted at the same instant, sees that backlog and migrates to
    // an idle core.
    const Tick t0 = init.postedAt;
    ASSERT_TRUE(rig.mread(1, extent, 0, 64 * 1024, t0).ok());
    ASSERT_TRUE(rig.mread(1, extent, 64 * 1024, 16 * 1024, t0).ok());

    EXPECT_EQ(sink.count("dsram_move"), 1u);
    const auto reloads = sink.named("isram_reload");
    ASSERT_EQ(reloads.size(), 1u);
    EXPECT_EQ(reloads.front().instance, 1u);
    EXPECT_GT(reloads.front().trace, 0u);

    const auto migrates = sink.named("migrate");
    ASSERT_EQ(migrates.size(), 1u);
    EXPECT_EQ(migrates.front().core, reloads.front().core);

    // The two parse spans ran on different cores, and the reload landed
    // on the second chunk's core.
    const auto parses = sink.named("parse");
    ASSERT_EQ(parses.size(), 2u);
    EXPECT_NE(parses[0].core, parses[1].core);
    EXPECT_EQ(reloads.front().core, parses[1].core);
}

TEST(Tracing, NoSinkLeavesResultsIdentical)
{
    // The trace id is stamped either way (it is part of the wire
    // format); everything else about the run must match.
    auto run = [](ob::TraceSink *sink) {
        Rig rig;
        const auto extent = rig.intFile(44, 4000);
        ob::ScopedTraceSink *attach =
            sink ? new ob::ScopedTraceSink(*sink) : nullptr;
        EXPECT_TRUE(rig.minit(1, rig.images.intArray).ok());
        const auto cqe = rig.mread(
            1, extent, 0, std::min<std::uint64_t>(extent.sizeBytes,
                                                  16 * 1024),
            0);
        delete attach;
        EXPECT_TRUE(cqe.ok());
        return cqe.postedAt;
    };
    ob::InMemoryTraceSink sink;
    EXPECT_EQ(run(nullptr), run(&sink));
    EXPECT_GT(sink.size(), 0u);
    EXPECT_EQ(ob::traceSink(), nullptr);
}

// ------------------------------------------------ Chrome serialization

TEST(ChromeTraceSink, EmitsWellFormedTraceEvents)
{
    ob::ChromeTraceSink sink;
    ob::Span s;
    s.track = "ssd.core[0]";
    s.name = "parse";
    s.category = "ssd";
    s.begin = 1;  // 1 ps: exercises the full %.6f resolution
    s.end = 2'000'000;
    s.trace = 7;
    s.bytes = 4096;
    sink.record(s);
    ob::Span i;
    i.track = "sched.tenant[1]";
    i.name = "dsram_bounce";
    i.category = "sched";
    i.begin = i.end = 5'000'000;
    i.instant = true;
    i.tenant = 1;
    sink.record(i);

    std::ostringstream os;
    sink.write(os);
    const std::string out = os.str();

    // Document shell and the process/track metadata.
    EXPECT_EQ(out.rfind("{\"traceEvents\":[", 0), 0u);
    EXPECT_NE(out.find("\"name\":\"process_name\""), std::string::npos);
    EXPECT_NE(out.find("{\"ph\":\"M\",\"pid\":1,\"tid\":1,"
                       "\"name\":\"thread_name\","
                       "\"args\":{\"name\":\"ssd.core[0]\"}}"),
              std::string::npos);

    // The complete event: ts in microseconds at picosecond resolution.
    EXPECT_NE(out.find("\"ts\":0.000001,\"dur\":1.999999"),
              std::string::npos);
    EXPECT_NE(out.find("\"args\":{\"trace\":7,\"bytes\":4096}"),
              std::string::npos);

    // The instant event carries the mandatory scope field.
    EXPECT_NE(out.find("{\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(out.find("\"s\":\"t\""), std::string::npos);
    EXPECT_NE(out.find("\"args\":{\"tenant\":1}"), std::string::npos);

    // Balanced document, closed list.
    EXPECT_EQ(out.substr(out.size() - 4), "\n]}\n");
}

TEST(ChromeTraceSink, EmptySinkEmitsValidEmptyDocument)
{
    ob::ChromeTraceSink sink;
    std::ostringstream os;
    sink.write(os);
    EXPECT_EQ(os.str(), "{\"traceEvents\":[]}\n");

    // The free function agrees on the degenerate case.
    std::ostringstream os2;
    ob::writeChromeTrace(os2, {});
    EXPECT_EQ(os2.str(), "{\"traceEvents\":[]}\n");
}

TEST(ChromeTraceSink, SubMicrosecondSpanKeepsExactDecimals)
{
    // A span entirely inside the first microsecond: ts and dur must
    // render the picosecond digits exactly, never rounding to 0 or
    // collapsing to scientific notation.
    ob::ChromeTraceSink sink;
    ob::Span s;
    s.track = "ssd.dma";
    s.name = "flush_dma";
    s.category = "ssd";
    s.begin = 250;      // 0.000250 us
    s.end = 999'750;    // 0.999750 us
    sink.record(s);

    std::ostringstream os;
    sink.write(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("\"ts\":0.000250,\"dur\":0.999500"),
              std::string::npos);
    EXPECT_EQ(out.find("e-"), std::string::npos);
}

TEST(ChromeTraceSink, DuplicateTraceIdsAcrossDevicesKeepTheirTracks)
{
    // Fleet runs partition trace ids by device, but an untrusted or
    // legacy trace can repeat an id on two devices' tracks. The
    // serialization must keep both spans under their own thread_name
    // metadata rather than merging them.
    ob::ChromeTraceSink sink;
    ob::Span a;
    a.track = "host.queue[1]";
    a.name = "MREAD";
    a.category = "nvme";
    a.begin = 1'000'000;
    a.end = 3'000'000;
    a.trace = 42;
    sink.record(a);
    ob::Span b = a;
    b.track = "dev1.host.queue[1]";
    sink.record(b);

    std::ostringstream os;
    sink.write(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("\"args\":{\"name\":\"host.queue[1]\"}"),
              std::string::npos);
    EXPECT_NE(out.find("\"args\":{\"name\":\"dev1.host.queue[1]\"}"),
              std::string::npos);
    // Two X events survived, on distinct tids.
    std::size_t xs = 0;
    for (std::size_t pos = out.find("\"ph\":\"X\"");
         pos != std::string::npos;
         pos = out.find("\"ph\":\"X\"", pos + 1))
        ++xs;
    EXPECT_EQ(xs, 2u);
}

// ------------------------------------- critical-path attribution shapes
//
// The invariant under test: for ANY request shape, attributeSpans over
// the request's end-to-end window accounts every tick to exactly one
// stage — the stage ticks sum to the window, no gaps, no double
// counting.

namespace {

/** Full host-runtime rig (sessions, DMA targets, fleet-capable). */
struct RuntimeRig
{
    ho::HostSystem sys;
    co::MorpheusDeviceRuntime device;
    co::NvmeP2p p2p;
    co::MorpheusRuntime runtime;
    co::StandardImages images = co::StandardImages::make();

    explicit RuntimeRig(const ho::SystemConfig &cfg = {})
        : sys(cfg), device(sys.ssd()), p2p(sys),
          runtime(sys, device, p2p)
    {
    }

    ho::FileExtent
    intFile(std::uint64_t seed, std::uint64_t count)
    {
        const auto a = wk::genIntArray(seed, count);
        sd::TextWriter w;
        a.serialize(w);
        return sys.createFile("ints", w.bytes());
    }
};

/** Spans belonging to any of the given trace ids. */
std::vector<ob::Span>
spansOf(const ob::InMemoryTraceSink &sink,
        const std::vector<ob::TraceId> &ids)
{
    const std::unordered_set<ob::TraceId> set(ids.begin(), ids.end());
    std::vector<ob::Span> out;
    for (const ob::Span &s : sink.spans()) {
        if (set.count(s.trace))
            out.push_back(s);
    }
    return out;
}

}  // namespace

TEST(CriticalPath, PlainInvokeAttributionCoversWindowExactly)
{
    RuntimeRig rig;
    const auto file = rig.intFile(91, 8000);
    ob::InMemoryTraceSink sink;
    const ob::ScopedTraceSink attach(sink);

    const auto stream = rig.runtime.streamCreate(file, file.readyAt);
    const auto target = rig.runtime.hostTarget(1 << 20);
    const auto res = rig.runtime.invoke(rig.images.intArray, stream,
                                        target, stream.readyAt);

    const ob::Attribution attr =
        ob::attributeSpans(sink.spans(), res.start, res.done);
    EXPECT_EQ(attr.total(), res.done - res.start);
    EXPECT_GT(attr[ob::Stage::kParse], 0u);
    EXPECT_EQ(attr[ob::Stage::kCacheHit], 0u);
    EXPECT_EQ(attr[ob::Stage::kRetry], 0u);
}

TEST(CriticalPath, CacheHitShapeSwapsParseForCacheHit)
{
    ho::SystemConfig cfg;
    cfg.ssd.cache.enabled = true;
    RuntimeRig rig(cfg);
    const auto file = rig.intFile(92, 8000);
    ob::InMemoryTraceSink sink;
    const ob::ScopedTraceSink attach(sink);

    const auto stream = rig.runtime.streamCreate(file, file.readyAt);
    const auto t1 = rig.runtime.hostTarget(1 << 20);
    const auto r1 = rig.runtime.invoke(rig.images.intArray, stream, t1,
                                       stream.readyAt);
    ASSERT_FALSE(r1.servedFromCache);
    const auto t2 = rig.runtime.hostTarget(1 << 20);
    const auto r2 = rig.runtime.invoke(rig.images.intArray, stream, t2,
                                       r1.done);
    ASSERT_TRUE(r2.servedFromCache);

    const ob::Attribution a1 =
        ob::attributeSpans(sink.spans(), r1.start, r1.done);
    const ob::Attribution a2 =
        ob::attributeSpans(sink.spans(), r2.start, r2.done);
    EXPECT_EQ(a1.total(), r1.done - r1.start);
    EXPECT_EQ(a2.total(), r2.done - r2.start);

    // The replay shows up as cache-hit time and no deserialization
    // ever ran in its window (the only parse-family span is the MINIT
    // image install).
    EXPECT_EQ(a1[ob::Stage::kCacheHit], 0u);
    EXPECT_GT(a2[ob::Stage::kCacheHit], 0u);
    for (const ob::Span &s : sink.spans()) {
        if (s.name == "parse") {
            EXPECT_LE(s.end, r1.done);
        }
    }
}

TEST(CriticalPath, RetryBackoffShapeChargesRetryWait)
{
    ho::SystemConfig cfg;
    cfg.ssd.sched.maxInflightTotal = 1;  // second MINIT must bounce
    RuntimeRig rig(cfg);
    const auto file = rig.intFile(93, 6000);
    ob::InMemoryTraceSink sink;
    const ob::ScopedTraceSink attach(sink);

    const auto stream = rig.runtime.streamCreate(file, file.readyAt);
    const auto t1 = rig.runtime.hostTarget(1 << 20);
    const auto t2 = rig.runtime.hostTarget(1 << 20);

    auto s1 = rig.runtime.beginInvoke(rig.images.intArray, stream, t1,
                                      stream.readyAt);
    ASSERT_TRUE(s1.accepted);
    auto s2 = rig.runtime.beginInvoke(rig.images.intArray, stream, t2,
                                      stream.readyAt);
    ASSERT_FALSE(s2.accepted);
    ASSERT_TRUE(s2.retry);
    ASSERT_FALSE(s2.traceIds.empty());
    const Tick window_begin = s2.result.start;
    const Tick bounced = s2.result.done;
    std::vector<ob::TraceId> ids = s2.traceIds;

    // Drain the winner; its completion is the loser's resume point.
    while (!s1.streamDone())
        rig.runtime.stepInvoke(s1);
    const auto r1 = rig.runtime.finishInvoke(s1);

    // What the serving driver records for the backoff window.
    ob::Span wait;
    wait.track = "host.serving";
    wait.name = "retry_wait";
    wait.category = "host";
    wait.begin = bounced;
    wait.end = r1.done;
    wait.trace = ids.back();
    sink.record(wait);

    auto s2b = rig.runtime.beginInvoke(rig.images.intArray, stream, t2,
                                       r1.done);
    ASSERT_TRUE(s2b.accepted);
    while (!s2b.streamDone())
        rig.runtime.stepInvoke(s2b);
    const auto r2 = rig.runtime.finishInvoke(s2b);
    ids.insert(ids.end(), s2b.traceIds.begin(), s2b.traceIds.end());

    const ob::Attribution attr = ob::attributeSpans(
        spansOf(sink, ids), window_begin, r2.done);
    EXPECT_EQ(attr.total(), r2.done - window_begin);
    EXPECT_EQ(attr[ob::Stage::kRetry], r1.done - bounced);
    EXPECT_GT(attr[ob::Stage::kParse], 0u);
}

TEST(CriticalPath, MigrationShapeStaysFullyAttributed)
{
    ho::SystemConfig cfg;
    cfg.ssd.sched.placement =
        morpheus::sched::PlacementPolicy::kLoadAware;
    cfg.ssd.sched.migration = true;
    RuntimeRig rig(cfg);
    const auto file = rig.intFile(94, 20000);
    ob::InMemoryTraceSink sink;
    const ob::ScopedTraceSink attach(sink);

    const auto stream = rig.runtime.streamCreate(file, file.readyAt);
    const auto target = rig.runtime.hostTarget(1 << 20);
    co::InvokeOptions opts;
    opts.chunkBlocks = 128;  // 64 KiB chunks, batched: backlog builds
    const auto res = rig.runtime.invoke(rig.images.intArray, stream,
                                        target, stream.readyAt, opts);

    // The shape really contains a migration.
    EXPECT_GE(sink.count("dsram_move"), 1u);
    EXPECT_GE(sink.count("isram_reload"), 1u);

    const ob::Attribution attr =
        ob::attributeSpans(sink.spans(), res.start, res.done);
    EXPECT_EQ(attr.total(), res.done - res.start);
    EXPECT_GT(attr[ob::Stage::kParse], 0u);
}

TEST(CriticalPath, FanOutShapeNamesTheStragglerShard)
{
    ho::SystemConfig cfg;
    cfg.numSsds = 2;
    ho::HostSystem sys(cfg);
    morpheus::shard::ShardFabric fabric(
        sys, morpheus::shard::ShardPolicy::kRange, 64 * 1024);
    const auto images = co::StandardImages::make();

    const auto a = wk::genIntArray(95, 60000);
    sd::TextWriter w;
    a.serialize(w);
    const auto f = fabric.ingestSharded("ints", w.bytes());
    Tick ready = 0;
    for (const auto &ext : f.extents)
        ready = std::max(ready, ext.readyAt);

    ob::InMemoryTraceSink sink;
    const ob::ScopedTraceSink attach(sink);
    const auto r = fabric.fleetInvoke(images.intArray, f, ready);
    ASSERT_TRUE(r.accepted);
    ASSERT_FALSE(r.failed);

    // Per-device convex hulls from the trace-id partitioning; the
    // merged completion is the slowest leg's end.
    const auto legs = ob::fanoutLegs(sink.spans());
    ASSERT_EQ(legs.size(), 2u);
    EXPECT_EQ(legs[0].device, 0u);
    EXPECT_EQ(legs[1].device, 1u);
    Tick worst_end = 0;
    unsigned worst_dev = 0;
    for (const auto &leg : legs) {
        EXPECT_LT(leg.begin, leg.end);
        if (leg.end > worst_end) {
            worst_end = leg.end;
            worst_dev = leg.device;
        }
    }
    EXPECT_EQ(ob::stragglerDevice(legs), worst_dev);
    // The merged completion trails the slowest leg only by host-side
    // completion plumbing (buffer handoff), never precedes it.
    EXPECT_LE(worst_end, r.merged.done);

    // The fan-out window is fully attributed even with two devices'
    // spans overlapping in time.
    const ob::Attribution attr =
        ob::attributeSpans(sink.spans(), ready, r.merged.done);
    EXPECT_EQ(attr.total(), r.merged.done - ready);
    EXPECT_GT(attr[ob::Stage::kParse], 0u);
}

// ------------------------------------------------------------ metrics

TEST(MetricsRegistry, AbsorbSnapshotsStatSetValues)
{
    st::Counter reads;
    st::Accumulator lat;
    double watts = 3.5;
    reads += 42;
    lat.sample(2.0);
    lat.sample(4.0);

    ob::MetricsRegistry reg;
    {
        st::StatSet set;
        set.registerCounter("reads", &reads);
        set.registerAccumulator("lat", &lat);
        set.registerScalar("watts", &watts);
        reg.absorb(set, "ssd.");
    }
    // The StatSet (and in real use the whole system) is gone; the
    // snapshot survives.
    EXPECT_EQ(reg.counter("ssd.reads"), 42u);
    EXPECT_EQ(reg.counter("ssd.lat.count"), 2u);
    EXPECT_DOUBLE_EQ(reg.scalar("ssd.lat.mean"), 3.0);
    EXPECT_DOUBLE_EQ(reg.scalar("ssd.watts"), 3.5);
    EXPECT_EQ(reg.counter("ssd.missing"), 0u);
    EXPECT_DOUBLE_EQ(reg.scalar("ssd.missing"), 0.0);
    EXPECT_EQ(reg.size(), 4u);

    // Later values overwrite (a second collection refreshes, not
    // duplicates).
    reg.setCounter("ssd.reads", 50);
    EXPECT_EQ(reg.counter("ssd.reads"), 50u);
    reg.clear();
    EXPECT_TRUE(reg.empty());
}

TEST(MetricsRegistry, ReportInterleavesKindsSorted)
{
    ob::MetricsRegistry reg;
    reg.setScalar("b.mean", 1.5);
    reg.setCounter("c", 3);
    reg.setCounter("a", 1);
    std::ostringstream os;
    reg.report(os);
    EXPECT_EQ(os.str(), "a 1\nb.mean 1.5\nc 3\n");
}

TEST(MetricsRegistry, WriteJsonNestsPathsWithSelfForInteriorLeaves)
{
    ob::MetricsRegistry reg;
    reg.setCounter("a", 1);
    reg.setCounter("a.b", 2);  // both a leaf and an interior node
    reg.setCounter("a.b.c", 3);
    reg.setScalar("d", 2.5);
    std::ostringstream os;
    reg.writeJson(os);
    EXPECT_EQ(os.str(),
              "{\n"
              "  \"a\": {\n"
              "    \"self\": 1,\n"
              "    \"b\": {\n"
              "      \"self\": 2,\n"
              "      \"c\": 3\n"
              "    }\n"
              "  },\n"
              "  \"d\": 2.5\n"
              "}\n");
}
