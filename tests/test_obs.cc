/**
 * @file
 * Observability tests: the in-memory trace sink against real device
 * runs (span nesting and attribution for MREAD, a D-SRAM bounce, a
 * live migration), the Chrome trace-event serialization, and the
 * metrics registry federation.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/device_runtime.hh"
#include "core/standard_apps.hh"
#include "host/host_system.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "serde/writer.hh"
#include "workloads/generators.hh"

namespace co = morpheus::core;
namespace ho = morpheus::host;
namespace nv = morpheus::nvme;
namespace ob = morpheus::obs;
namespace sd = morpheus::serde;
namespace st = morpheus::sim::stats;
namespace wk = morpheus::workloads;
using morpheus::sim::Tick;

namespace {

/** Minimal host+device rig, mirroring test_device_runtime. */
struct Rig
{
    ho::HostSystem sys;
    co::MorpheusDeviceRuntime device;
    co::StandardImages images = co::StandardImages::make();

    Rig() : device(sys.ssd()) {}
    explicit Rig(const ho::SystemConfig &cfg)
        : sys(cfg), device(sys.ssd())
    {
    }

    nv::Completion
    io(nv::Command cmd, Tick now = 0)
    {
        return sys.nvmeDriver().io(sys.ioQueue(), cmd, now);
    }

    nv::Completion
    minit(std::uint32_t instance, const co::StorageAppImage &image,
          std::uint32_t dsram = 0)
    {
        co::InstanceSetup setup;
        setup.image = &image;
        setup.target = co::DmaTarget{sys.allocHost(1 << 20), false};
        setup.dsramBytes = dsram;
        device.stageInstance(instance, setup);
        nv::Command c;
        c.opcode = nv::Opcode::kMInit;
        c.instanceId = instance;
        c.prp1 = sys.allocHost(image.textBytes);
        c.prp2 = dsram;
        c.cdw13 = image.textBytes;
        return io(c);
    }

    nv::Completion
    mread(std::uint32_t instance, const ho::FileExtent &extent,
          std::uint64_t off, std::uint64_t valid, Tick now)
    {
        nv::Command c;
        c.opcode = nv::Opcode::kMRead;
        c.instanceId = instance;
        c.slba = (extent.startByte + off) / nv::kBlockBytes;
        c.nlb = static_cast<std::uint16_t>(
            (valid + nv::kBlockBytes - 1) / nv::kBlockBytes - 1);
        c.cdw13 = static_cast<std::uint32_t>(valid);
        return io(c, now);
    }

    ho::FileExtent
    intFile(std::uint64_t seed, std::uint64_t count)
    {
        const auto a = wk::genIntArray(seed, count);
        sd::TextWriter w;
        a.serialize(w);
        return sys.createFile("ints", w.bytes());
    }
};

}  // namespace

// ---------------------------------------------------- sink primitives

TEST(InMemoryTraceSink, QueriesFilterByNameTrackAndTrace)
{
    ob::InMemoryTraceSink sink;
    ob::Span a;
    a.track = "t0";
    a.name = "work";
    a.begin = 10;
    a.end = 20;
    a.trace = 1;
    sink.record(a);
    ob::Span b = a;
    b.track = "t1";
    b.trace = 2;
    sink.record(b);
    ob::Span mark = a;
    mark.name = "mark";
    mark.instant = true;
    sink.record(mark);

    EXPECT_EQ(sink.size(), 3u);
    EXPECT_EQ(sink.count("work"), 2u);
    EXPECT_EQ(sink.named("mark").size(), 1u);
    EXPECT_EQ(sink.onTrack("t0").size(), 2u);
    EXPECT_EQ(sink.forTrace(2).size(), 1u);
    sink.clear();
    EXPECT_EQ(sink.size(), 0u);
}

TEST(InMemoryTraceSink, OverlapsOtherIgnoresSelfInstantsAndOtherTracks)
{
    ob::InMemoryTraceSink sink;
    ob::Span s;
    s.track = "core";
    s.name = "busy";
    s.begin = 100;
    s.end = 200;
    s.trace = 7;
    sink.record(s);

    // The span itself never counts as its own preemption.
    EXPECT_FALSE(sink.overlapsOther("core", 100, 200, 7));
    // A different trace id on the same track does.
    EXPECT_TRUE(sink.overlapsOther("core", 150, 250, 8));
    // Half-open intervals: touching at the edge is not an overlap.
    EXPECT_FALSE(sink.overlapsOther("core", 200, 300, 8));
    // Other tracks never conflict.
    EXPECT_FALSE(sink.overlapsOther("dram", 100, 200, 8));

    ob::Span i = s;
    i.instant = true;
    i.trace = 9;
    sink.record(i);
    // Instants are markers, not occupancy.
    EXPECT_FALSE(sink.overlapsOther("core", 100, 200, 7));
}

// ------------------------------------------------- end-to-end tracing

TEST(Tracing, MReadSpansNestUnderHostSpanWithAttribution)
{
    Rig rig;
    const auto extent = rig.intFile(31, 5000);
    ASSERT_TRUE(rig.minit(1, rig.images.intArray).ok());

    ob::InMemoryTraceSink sink;
    const std::uint64_t valid = 16 * 1024;
    {
        const ob::ScopedTraceSink attach(sink);
        ASSERT_TRUE(rig.mread(1, extent, 0, valid, 0).ok());
    }

    // The host-side umbrella span: doorbell ring -> CQE posted. (The
    // controller's firmware-exec span shares the opcode name but lives
    // on the nvme.exec track.)
    std::vector<ob::Span> hosts;
    for (const ob::Span &s : sink.named("MREAD")) {
        if (s.track.rfind("host.queue[", 0) == 0)
            hosts.push_back(s);
    }
    ASSERT_EQ(hosts.size(), 1u);
    const ob::Span &host = hosts.front();
    EXPECT_GT(host.trace, 0u);
    EXPECT_EQ(host.status, 0u);
    EXPECT_EQ(host.bytes, valid);
    EXPECT_LT(host.begin, host.end);

    // The device-side parse span: same trace id, attributed to the
    // instance and its core (static placement: 1 % 4 = core 1), fully
    // nested inside the host span.
    const auto parses = sink.named("parse");
    ASSERT_EQ(parses.size(), 1u);
    const ob::Span &parse = parses.front();
    EXPECT_EQ(parse.trace, host.trace);
    EXPECT_EQ(parse.instance, 1u);
    EXPECT_EQ(parse.core, 1u);
    EXPECT_EQ(parse.track, "ssd.core[1]");
    EXPECT_EQ(parse.bytes, valid);
    EXPECT_GE(parse.begin, host.begin);
    EXPECT_LE(parse.end, host.end);

    // Single tenant, single command: the chunk was never preempted on
    // its core.
    EXPECT_FALSE(sink.overlapsOther(parse.track, parse.begin, parse.end,
                                    parse.trace));

    // Every span of this command carries its trace id: host umbrella,
    // controller dispatch, exec window, and the parse itself.
    EXPECT_GE(sink.forTrace(host.trace).size(), 4u);
    EXPECT_EQ(sink.count("dispatch"), 1u);
}

TEST(Tracing, DsramBounceEmitsInstantAndFailedHostSpan)
{
    ho::SystemConfig cfg;
    cfg.ssd.sched.dsramPartitioning = true;
    Rig rig(cfg);
    const std::uint32_t dsram = cfg.ssd.core.dsramBytes;

    ob::InMemoryTraceSink sink;
    const ob::ScopedTraceSink attach(sink);

    // Instance 1 takes the whole scratchpad of core 1; instance 5 maps
    // to the same core (static placement) and must bounce.
    ASSERT_TRUE(rig.minit(1, rig.images.intArray, dsram).ok());
    EXPECT_EQ(rig.minit(5, rig.images.intArray, 1024).status,
              nv::Status::kDsramExhausted);

    const auto bounces = sink.named("dsram_bounce");
    ASSERT_EQ(bounces.size(), 1u);
    const ob::Span &bounce = bounces.front();
    EXPECT_TRUE(bounce.instant);
    EXPECT_EQ(bounce.instance, 5u);
    EXPECT_EQ(bounce.track, "sched.tenant[0]");

    // The host saw the same command fail with the same status, under
    // the same trace id as the scheduler's bounce marker.
    bool found = false;
    for (const ob::Span &s : sink.named("MINIT")) {
        if (s.trace != bounce.trace)
            continue;
        found = true;
        EXPECT_EQ(s.status,
                  static_cast<std::uint32_t>(
                      nv::Status::kDsramExhausted));
    }
    EXPECT_TRUE(found);
}

TEST(Tracing, MigrationEmitsMoveAndReloadSpans)
{
    ho::SystemConfig cfg;
    cfg.ssd.sched.placement = morpheus::sched::PlacementPolicy::kLoadAware;
    cfg.ssd.sched.migration = true;
    // Default migrationMinGain (50 us): the MINIT install backlog is
    // too small to justify a move, the 64 KiB parse backlog is not —
    // so exactly the second chunk migrates.
    Rig rig(cfg);
    const auto extent = rig.intFile(33, 20000);
    const auto init = rig.minit(1, rig.images.intArray);
    ASSERT_TRUE(init.ok());

    ob::InMemoryTraceSink sink;
    const ob::ScopedTraceSink attach(sink);

    // First chunk arrives on an idle core (no backlog, no migration)
    // and leaves its timeline busy parsing 64 KiB; the second chunk,
    // submitted at the same instant, sees that backlog and migrates to
    // an idle core.
    const Tick t0 = init.postedAt;
    ASSERT_TRUE(rig.mread(1, extent, 0, 64 * 1024, t0).ok());
    ASSERT_TRUE(rig.mread(1, extent, 64 * 1024, 16 * 1024, t0).ok());

    EXPECT_EQ(sink.count("dsram_move"), 1u);
    const auto reloads = sink.named("isram_reload");
    ASSERT_EQ(reloads.size(), 1u);
    EXPECT_EQ(reloads.front().instance, 1u);
    EXPECT_GT(reloads.front().trace, 0u);

    const auto migrates = sink.named("migrate");
    ASSERT_EQ(migrates.size(), 1u);
    EXPECT_EQ(migrates.front().core, reloads.front().core);

    // The two parse spans ran on different cores, and the reload landed
    // on the second chunk's core.
    const auto parses = sink.named("parse");
    ASSERT_EQ(parses.size(), 2u);
    EXPECT_NE(parses[0].core, parses[1].core);
    EXPECT_EQ(reloads.front().core, parses[1].core);
}

TEST(Tracing, NoSinkLeavesResultsIdentical)
{
    // The trace id is stamped either way (it is part of the wire
    // format); everything else about the run must match.
    auto run = [](ob::TraceSink *sink) {
        Rig rig;
        const auto extent = rig.intFile(44, 4000);
        ob::ScopedTraceSink *attach =
            sink ? new ob::ScopedTraceSink(*sink) : nullptr;
        EXPECT_TRUE(rig.minit(1, rig.images.intArray).ok());
        const auto cqe = rig.mread(
            1, extent, 0, std::min<std::uint64_t>(extent.sizeBytes,
                                                  16 * 1024),
            0);
        delete attach;
        EXPECT_TRUE(cqe.ok());
        return cqe.postedAt;
    };
    ob::InMemoryTraceSink sink;
    EXPECT_EQ(run(nullptr), run(&sink));
    EXPECT_GT(sink.size(), 0u);
    EXPECT_EQ(ob::traceSink(), nullptr);
}

// ------------------------------------------------ Chrome serialization

TEST(ChromeTraceSink, EmitsWellFormedTraceEvents)
{
    ob::ChromeTraceSink sink;
    ob::Span s;
    s.track = "ssd.core[0]";
    s.name = "parse";
    s.category = "ssd";
    s.begin = 1;  // 1 ps: exercises the full %.6f resolution
    s.end = 2'000'000;
    s.trace = 7;
    s.bytes = 4096;
    sink.record(s);
    ob::Span i;
    i.track = "sched.tenant[1]";
    i.name = "dsram_bounce";
    i.category = "sched";
    i.begin = i.end = 5'000'000;
    i.instant = true;
    i.tenant = 1;
    sink.record(i);

    std::ostringstream os;
    sink.write(os);
    const std::string out = os.str();

    // Document shell and the process/track metadata.
    EXPECT_EQ(out.rfind("{\"traceEvents\":[", 0), 0u);
    EXPECT_NE(out.find("\"name\":\"process_name\""), std::string::npos);
    EXPECT_NE(out.find("{\"ph\":\"M\",\"pid\":1,\"tid\":1,"
                       "\"name\":\"thread_name\","
                       "\"args\":{\"name\":\"ssd.core[0]\"}}"),
              std::string::npos);

    // The complete event: ts in microseconds at picosecond resolution.
    EXPECT_NE(out.find("\"ts\":0.000001,\"dur\":1.999999"),
              std::string::npos);
    EXPECT_NE(out.find("\"args\":{\"trace\":7,\"bytes\":4096}"),
              std::string::npos);

    // The instant event carries the mandatory scope field.
    EXPECT_NE(out.find("{\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(out.find("\"s\":\"t\""), std::string::npos);
    EXPECT_NE(out.find("\"args\":{\"tenant\":1}"), std::string::npos);

    // Balanced document, closed list.
    EXPECT_EQ(out.substr(out.size() - 4), "\n]}\n");
}

// ------------------------------------------------------------ metrics

TEST(MetricsRegistry, AbsorbSnapshotsStatSetValues)
{
    st::Counter reads;
    st::Accumulator lat;
    double watts = 3.5;
    reads += 42;
    lat.sample(2.0);
    lat.sample(4.0);

    ob::MetricsRegistry reg;
    {
        st::StatSet set;
        set.registerCounter("reads", &reads);
        set.registerAccumulator("lat", &lat);
        set.registerScalar("watts", &watts);
        reg.absorb(set, "ssd.");
    }
    // The StatSet (and in real use the whole system) is gone; the
    // snapshot survives.
    EXPECT_EQ(reg.counter("ssd.reads"), 42u);
    EXPECT_EQ(reg.counter("ssd.lat.count"), 2u);
    EXPECT_DOUBLE_EQ(reg.scalar("ssd.lat.mean"), 3.0);
    EXPECT_DOUBLE_EQ(reg.scalar("ssd.watts"), 3.5);
    EXPECT_EQ(reg.counter("ssd.missing"), 0u);
    EXPECT_DOUBLE_EQ(reg.scalar("ssd.missing"), 0.0);
    EXPECT_EQ(reg.size(), 4u);

    // Later values overwrite (a second collection refreshes, not
    // duplicates).
    reg.setCounter("ssd.reads", 50);
    EXPECT_EQ(reg.counter("ssd.reads"), 50u);
    reg.clear();
    EXPECT_TRUE(reg.empty());
}

TEST(MetricsRegistry, ReportInterleavesKindsSorted)
{
    ob::MetricsRegistry reg;
    reg.setScalar("b.mean", 1.5);
    reg.setCounter("c", 3);
    reg.setCounter("a", 1);
    std::ostringstream os;
    reg.report(os);
    EXPECT_EQ(os.str(), "a 1\nb.mean 1.5\nc 3\n");
}

TEST(MetricsRegistry, WriteJsonNestsPathsWithSelfForInteriorLeaves)
{
    ob::MetricsRegistry reg;
    reg.setCounter("a", 1);
    reg.setCounter("a.b", 2);  // both a leaf and an interior node
    reg.setCounter("a.b.c", 3);
    reg.setScalar("d", 2.5);
    std::ostringstream os;
    reg.writeJson(os);
    EXPECT_EQ(os.str(),
              "{\n"
              "  \"a\": {\n"
              "    \"self\": 1,\n"
              "    \"b\": {\n"
              "      \"self\": 2,\n"
              "      \"c\": 3\n"
              "    }\n"
              "  },\n"
              "  \"d\": 2.5\n"
              "}\n");
}
