/**
 * @file
 * The full validation matrix: every Table-I application under every
 * execution mode must produce objects bit-identical to a direct parse
 * of its input text and the same kernel checksum — the end-to-end
 * functional guarantee behind every timing comparison in bench/.
 */

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "workloads/runner.hh"

namespace wk = morpheus::workloads;

namespace {

const char *
modeName(wk::ExecutionMode m)
{
    switch (m) {
      case wk::ExecutionMode::kBaseline:
        return "baseline";
      case wk::ExecutionMode::kMorpheus:
        return "morpheus";
      case wk::ExecutionMode::kMorpheusP2p:
        return "p2p";
    }
    return "?";
}

}  // namespace

class AppModeMatrix
    : public ::testing::TestWithParam<
          std::tuple<std::string, wk::ExecutionMode>>
{
};

TEST_P(AppModeMatrix, ValidatesAndProducesSanePhases)
{
    const auto &[name, mode] = GetParam();
    wk::RunOptions opts;
    opts.mode = mode;
    opts.scale = 0.05;
    const wk::RunMetrics m =
        wk::runWorkload(wk::findApp(name), opts);

    EXPECT_TRUE(m.validated) << name << "/" << modeName(mode);
    EXPECT_GT(m.deserTime, 0u);
    EXPECT_GT(m.kernelTime, 0u);
    EXPECT_GE(m.totalTime, m.deserTime + m.kernelTime);
    EXPECT_GT(m.rawTextBytes, 0u);
    EXPECT_GT(m.objectBytesProduced, 0u);
    EXPECT_GT(m.effectiveBandwidthMBps, 0.0);
    EXPECT_GT(m.deserPowerWatts, 100.0);   // at least idle power
    EXPECT_LT(m.deserPowerWatts, 400.0);   // and not absurd
    EXPECT_GT(m.deserEnergyJoules, 0.0);
    if (mode == wk::ExecutionMode::kBaseline) {
        EXPECT_GT(m.contextSwitchesDeser, 10u);
        EXPECT_EQ(m.p2pBytes, 0u);
    } else {
        EXPECT_LT(m.contextSwitchesDeser, 100u);
    }
}

namespace {

std::vector<std::tuple<std::string, wk::ExecutionMode>>
allCombinations()
{
    std::vector<std::tuple<std::string, wk::ExecutionMode>> out;
    for (const auto &app : wk::standardSuite()) {
        for (const auto mode :
             {wk::ExecutionMode::kBaseline, wk::ExecutionMode::kMorpheus,
              wk::ExecutionMode::kMorpheusP2p}) {
            out.emplace_back(app.name, mode);
        }
    }
    return out;
}

std::string
comboName(
    const ::testing::TestParamInfo<
        std::tuple<std::string, wk::ExecutionMode>> &info)
{
    return std::get<0>(info.param) + "_" +
           modeName(std::get<1>(info.param));
}

}  // namespace

INSTANTIATE_TEST_SUITE_P(Suite, AppModeMatrix,
                         ::testing::ValuesIn(allCombinations()),
                         comboName);

TEST(Matrix, MorpheusWinsOnDeserAcrossTheSuite)
{
    // The qualitative Fig 8 claim at test scale: Morpheus's
    // deserialization is at least no slower everywhere and strictly
    // faster for the integer-heavy apps.
    unsigned strictly_faster = 0;
    for (const auto &app : wk::standardSuite()) {
        wk::RunOptions base;
        base.mode = wk::ExecutionMode::kBaseline;
        base.scale = 0.1;
        wk::RunOptions morph = base;
        morph.mode = wk::ExecutionMode::kMorpheus;
        const auto mb = wk::runWorkload(app, base);
        const auto mm = wk::runWorkload(app, morph);
        EXPECT_LT(mm.deserTime, mb.deserTime * 11 / 10)
            << app.name;  // never meaningfully slower
        if (mm.deserTime < mb.deserTime * 9 / 10)
            ++strictly_faster;
    }
    EXPECT_GE(strictly_faster, 7u);
}
