/**
 * @file
 * Device-runtime tests: the four Morpheus NVMe commands end to end on
 * the simulated SSD (MINIT instance/core management, MREAD streaming
 * deserialization, MWRITE serialization, MDEINIT return values).
 */

#include <gtest/gtest.h>

#include "core/device_runtime.hh"
#include "core/standard_apps.hh"
#include "host/host_system.hh"
#include "workloads/generators.hh"

namespace co = morpheus::core;
namespace ho = morpheus::host;
namespace nv = morpheus::nvme;
namespace sd = morpheus::serde;
namespace wk = morpheus::workloads;

namespace {

struct Rig
{
    ho::HostSystem sys;
    co::MorpheusDeviceRuntime device;
    co::StandardImages images = co::StandardImages::make();

    Rig() : device(sys.ssd()) {}

    nv::Completion
    io(nv::Command cmd, morpheus::sim::Tick now = 0)
    {
        return sys.nvmeDriver().io(sys.ioQueue(), cmd, now);
    }

    /** Stage + MINIT an instance. @return completion. */
    nv::Completion
    minit(std::uint32_t instance, const co::StorageAppImage &image,
          co::DmaTarget target, std::uint32_t arg = 0)
    {
        co::InstanceSetup setup;
        setup.image = &image;
        setup.target = target;
        setup.arg = arg;
        device.stageInstance(instance, setup);
        nv::Command c;
        c.opcode = nv::Opcode::kMInit;
        c.instanceId = instance;
        c.prp1 = sys.allocHost(image.textBytes);
        c.cdw13 = image.textBytes;
        c.cdw14 = arg;
        return io(c);
    }
};

}  // namespace

TEST(DeviceRuntime, MInitWithoutStagingFails)
{
    Rig rig;
    nv::Command c;
    c.opcode = nv::Opcode::kMInit;
    c.instanceId = 77;
    const auto cqe = rig.io(c);
    EXPECT_EQ(cqe.status, nv::Status::kNoSuchInstance);
}

TEST(DeviceRuntime, MReadWithoutInstanceFails)
{
    Rig rig;
    nv::Command c;
    c.opcode = nv::Opcode::kMRead;
    c.instanceId = 5;
    const auto cqe = rig.io(c);
    EXPECT_EQ(cqe.status, nv::Status::kNoSuchInstance);
}

TEST(DeviceRuntime, OversizedImageRejected)
{
    Rig rig;
    const auto image = co::MorpheusCompiler::compile(
        "huge",
        [](std::uint32_t) {
            return std::make_unique<co::IntArrayApp>(0);
        },
        10 * 1024 * 1024);  // way beyond I-SRAM
    const auto cqe = rig.minit(
        1, image, co::DmaTarget{rig.sys.allocHost(1024), false});
    EXPECT_EQ(cqe.status, nv::Status::kAppLoadFailed);
}

TEST(DeviceRuntime, FullStreamDeserializesIntoHostMemory)
{
    Rig rig;
    const auto a = wk::genIntArray(31, 20000);
    sd::TextWriter w;
    a.serialize(w);
    const auto extent = rig.sys.createFile("ints", w.bytes());

    const auto target_addr = rig.sys.allocHost(a.objectBytes());
    ASSERT_TRUE(rig.minit(1, rig.images.intArray,
                          co::DmaTarget{target_addr, false})
                    .ok());

    // Stream MREADs of 16 KiB.
    const std::uint64_t chunk = 16 * 1024;
    std::uint64_t off = 0;
    morpheus::sim::Tick t = 0;
    std::uint64_t mreads = 0;
    while (off < extent.sizeBytes) {
        const std::uint64_t valid =
            std::min(chunk, extent.sizeBytes - off);
        nv::Command c;
        c.opcode = nv::Opcode::kMRead;
        c.instanceId = 1;
        c.slba = (extent.startByte + off) / nv::kBlockBytes;
        c.nlb = static_cast<std::uint16_t>(
            (valid + nv::kBlockBytes - 1) / nv::kBlockBytes - 1);
        c.cdw13 = static_cast<std::uint32_t>(valid);
        const auto cqe = rig.io(c, t);
        ASSERT_TRUE(cqe.ok());
        t = cqe.postedAt;
        off += valid;
        ++mreads;
    }
    EXPECT_GT(mreads, 5u);

    nv::Command fin;
    fin.opcode = nv::Opcode::kMDeinit;
    fin.instanceId = 1;
    const auto fin_cqe = rig.io(fin, t);
    ASSERT_TRUE(fin_cqe.ok());
    EXPECT_EQ(fin_cqe.dw0, a.values.size());

    const auto bin = rig.sys.mem().store().readVec(
        target_addr, static_cast<std::size_t>(a.objectBytes()));
    EXPECT_EQ(sd::IntArrayObject::fromBinary(bin), a);
    EXPECT_EQ(rig.device.objectBytesOut(), a.objectBytes());
    EXPECT_EQ(rig.device.liveInstances(), 0u);
}

TEST(DeviceRuntime, InstanceIdReusableAfterDeinit)
{
    Rig rig;
    const auto target = co::DmaTarget{rig.sys.allocHost(4096), false};
    ASSERT_TRUE(rig.minit(9, rig.images.intArray, target).ok());
    // Busy while live.
    co::InstanceSetup setup;
    setup.image = &rig.images.intArray;
    setup.target = target;
    rig.device.stageInstance(9, setup);
    nv::Command again;
    again.opcode = nv::Opcode::kMInit;
    again.instanceId = 9;
    again.cdw13 = rig.images.intArray.textBytes;
    again.prp1 = rig.sys.allocHost(again.cdw13);
    EXPECT_EQ(rig.io(again).status, nv::Status::kInstanceBusy);

    nv::Command fin;
    fin.opcode = nv::Opcode::kMDeinit;
    fin.instanceId = 9;
    ASSERT_TRUE(rig.io(fin).ok());
    // Re-stage and re-init succeeds now.
    ASSERT_TRUE(rig.minit(9, rig.images.intArray, target).ok());
}

TEST(DeviceRuntime, MReadTimeScalesWithFloatContent)
{
    // Same byte count, int-only vs float-heavy: soft-float makes the
    // float stream slower on the FPU-less cores.
    auto run = [](double float_fraction) {
        Rig rig;
        const auto c =
            wk::genCooMatrix(33, 64, 64, 2000, float_fraction);
        sd::TextWriter w;
        c.serialize(w);
        const auto extent = rig.sys.createFile("coo", w.bytes());
        const auto target =
            co::DmaTarget{rig.sys.allocHost(c.objectBytes()), false};
        EXPECT_TRUE(
            rig.minit(1, rig.images.cooMatrix, target).ok());
        nv::Command cmd;
        cmd.opcode = nv::Opcode::kMRead;
        cmd.instanceId = 1;
        cmd.slba = extent.startByte / nv::kBlockBytes;
        const std::uint64_t blocks =
            (extent.sizeBytes + nv::kBlockBytes - 1) / nv::kBlockBytes;
        // Cap at MDTS; one command is enough for the comparison.
        cmd.nlb = static_cast<std::uint16_t>(
            std::min<std::uint64_t>(blocks, 256) - 1);
        cmd.cdw13 = static_cast<std::uint32_t>(std::min<std::uint64_t>(
            extent.sizeBytes, cmd.dataBytes()));
        const auto t0 = rig.io(cmd, 0);
        EXPECT_TRUE(t0.ok());
        return t0.postedAt;
    };
    EXPECT_GT(run(1.0), run(0.0));
}

TEST(DeviceRuntime, MWriteSerializesToFlash)
{
    Rig rig;
    const auto a = wk::genIntArray(34, 100);
    std::vector<std::uint8_t> bin;
    for (const auto v : a.values) {
        const auto *p = reinterpret_cast<const std::uint8_t *>(&v);
        bin.insert(bin.end(), p, p + 8);
    }
    const morpheus::pcie::Addr src = rig.sys.allocHost(bin.size());
    rig.sys.mem().store().writeVec(src, bin);

    // Destination region on flash.
    const std::uint64_t dst_byte = 64ULL * 1024 * 1024;
    ASSERT_TRUE(rig.minit(2, rig.images.int64Serializer,
                          co::DmaTarget{src, false})
                    .ok());
    nv::Command wr;
    wr.opcode = nv::Opcode::kMWrite;
    wr.instanceId = 2;
    wr.prp1 = src;
    wr.slba = dst_byte / nv::kBlockBytes;
    wr.nlb = static_cast<std::uint16_t>(bin.size() / nv::kBlockBytes);
    wr.cdw13 = static_cast<std::uint32_t>(bin.size());
    ASSERT_TRUE(rig.io(wr).ok());

    // The flash now holds the ASCII text; parse it back.
    const auto text =
        rig.sys.ssd().peekBytes(dst_byte, 16 * a.values.size() + 16);
    sd::TextScanner s(text.data(), text.size());
    std::vector<std::int64_t> back;
    std::int64_t v = 0;
    while (s.nextInt64(&v) &&
           back.size() < a.values.size()) {
        back.push_back(v);
    }
    EXPECT_EQ(back, a.values);
}

TEST(DeviceRuntime, MWriteCursorContinuesAcrossCommands)
{
    // Two MWRITE chunks of binary values must serialize to one
    // contiguous text region on flash.
    Rig rig;
    const auto a = wk::genIntArray(71, 400);
    std::vector<std::uint8_t> bin;
    for (const auto v : a.values) {
        const auto *p = reinterpret_cast<const std::uint8_t *>(&v);
        bin.insert(bin.end(), p, p + 8);
    }
    const morpheus::pcie::Addr src = rig.sys.allocHost(bin.size());
    rig.sys.mem().store().writeVec(src, bin);
    const std::uint64_t dst_byte = 96ULL << 20;
    ASSERT_TRUE(rig.minit(3, rig.images.int64Serializer,
                          co::DmaTarget{src, false})
                    .ok());

    morpheus::sim::Tick t = 0;
    const std::size_t half = (bin.size() / 2 / 8) * 8;
    const std::size_t parts[2][2] = {{0, half},
                                     {half, bin.size() - half}};
    for (const auto &[off, len] : parts) {
        nv::Command wr;
        wr.opcode = nv::Opcode::kMWrite;
        wr.instanceId = 3;
        wr.prp1 = src + off;
        wr.slba = dst_byte / nv::kBlockBytes;
        wr.nlb = static_cast<std::uint16_t>(
            (len + nv::kBlockBytes - 1) / nv::kBlockBytes - 1);
        wr.cdw13 = static_cast<std::uint32_t>(len);
        const auto cqe = rig.io(wr, t);
        ASSERT_TRUE(cqe.ok());
        t = cqe.postedAt;
    }

    const auto text =
        rig.sys.ssd().peekBytes(dst_byte, a.values.size() * 12 + 32);
    sd::TextScanner s(text.data(), text.size());
    std::vector<std::int64_t> back;
    std::int64_t v = 0;
    while (back.size() < a.values.size() && s.nextInt64(&v))
        back.push_back(v);
    EXPECT_EQ(back, a.values);
}

TEST(DeviceRuntime, StatsCountMorpheusCommands)
{
    Rig rig;
    const auto a = wk::genIntArray(72, 3000);
    sd::TextWriter w;
    a.serialize(w);
    const auto extent = rig.sys.createFile("s", w.bytes());
    const auto target =
        co::DmaTarget{rig.sys.allocHost(a.objectBytes()), false};
    ASSERT_TRUE(rig.minit(4, rig.images.intArray, target).ok());
    nv::Command c;
    c.opcode = nv::Opcode::kMRead;
    c.instanceId = 4;
    c.slba = extent.startByte / nv::kBlockBytes;
    c.nlb = 15;
    c.cdw13 = 8192;
    ASSERT_TRUE(rig.io(c).ok());
    nv::Command fin;
    fin.opcode = nv::Opcode::kMDeinit;
    fin.instanceId = 4;
    ASSERT_TRUE(rig.io(fin).ok());

    morpheus::sim::stats::StatSet set;
    rig.device.registerStats(set, "morpheus");
    EXPECT_EQ(set.counterValue("morpheus.minits"), 1u);
    EXPECT_EQ(set.counterValue("morpheus.mreads"), 1u);
    EXPECT_EQ(set.counterValue("morpheus.mdeinits"), 1u);
    EXPECT_GT(set.counterValue("morpheus.objectBytesOut"), 0u);
    EXPECT_EQ(set.counterValue("morpheus.rawBytesIn"), 8192u);
}
