/**
 * @file
 * Device-runtime tests: the four Morpheus NVMe commands end to end on
 * the simulated SSD (MINIT instance/core management, MREAD streaming
 * deserialization, MWRITE serialization, MDEINIT return values).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>

#include "core/device_runtime.hh"
#include "core/standard_apps.hh"
#include "host/host_system.hh"
#include "obs/trace.hh"
#include "sim/fault.hh"
#include "workloads/generators.hh"

namespace co = morpheus::core;
namespace ho = morpheus::host;
namespace nv = morpheus::nvme;
namespace sd = morpheus::serde;
namespace wk = morpheus::workloads;

namespace {

struct Rig
{
    ho::HostSystem sys;
    co::MorpheusDeviceRuntime device;
    co::StandardImages images = co::StandardImages::make();

    Rig() : device(sys.ssd()) {}
    explicit Rig(const ho::SystemConfig &cfg)
        : sys(cfg), device(sys.ssd())
    {
    }

    nv::Completion
    io(nv::Command cmd, morpheus::sim::Tick now = 0)
    {
        return sys.nvmeDriver().io(sys.ioQueue(), cmd, now);
    }

    /** Stage + MINIT an instance. @p stream_bytes declares the raw
     *  stream length in-band (MINIT SLBA, bytes) — 0 leaves the
     *  instance uncacheable, as before. @return completion. */
    nv::Completion
    minit(std::uint32_t instance, const co::StorageAppImage &image,
          co::DmaTarget target, std::uint32_t arg = 0,
          std::uint32_t flush_threshold = 0, std::uint32_t dsram = 0,
          std::uint64_t stream_bytes = 0)
    {
        co::InstanceSetup setup;
        setup.image = &image;
        setup.target = target;
        setup.arg = arg;
        setup.flushThreshold = flush_threshold;
        setup.dsramBytes = dsram;
        device.stageInstance(instance, setup);
        nv::Command c;
        c.opcode = nv::Opcode::kMInit;
        c.instanceId = instance;
        c.prp1 = sys.allocHost(image.textBytes);
        c.prp2 = dsram;
        c.slba = stream_bytes;
        c.cdw13 = image.textBytes;
        c.cdw14 = arg;
        return io(c);
    }

    /** Stream the whole extent in @p chunk-byte MREADs, then MDEINIT.
     *  @return the MDEINIT completion (asserts every chunk's ok). */
    nv::Completion
    streamAll(std::uint32_t instance, const ho::FileExtent &extent,
              morpheus::sim::Tick t = 0,
              std::uint64_t chunk = 16 * 1024)
    {
        std::uint64_t off = 0;
        while (off < extent.sizeBytes) {
            const std::uint64_t valid =
                std::min(chunk, extent.sizeBytes - off);
            const auto cqe = mread(instance, extent, off, valid, t);
            EXPECT_TRUE(cqe.ok());
            t = cqe.postedAt;
            off += valid;
        }
        return mdeinit(instance, t);
    }

    nv::Completion
    mdeinit(std::uint32_t instance, morpheus::sim::Tick now = 0)
    {
        nv::Command fin;
        fin.opcode = nv::Opcode::kMDeinit;
        fin.instanceId = instance;
        return io(fin, now);
    }

    /** One MREAD chunk of [@p off, @p off + @p len) of @p extent. */
    nv::Completion
    mread(std::uint32_t instance, const ho::FileExtent &extent,
          std::uint64_t off, std::uint64_t len,
          morpheus::sim::Tick now = 0)
    {
        nv::Command c;
        c.opcode = nv::Opcode::kMRead;
        c.instanceId = instance;
        c.slba = (extent.startByte + off) / nv::kBlockBytes;
        c.nlb = static_cast<std::uint16_t>(
            (len + nv::kBlockBytes - 1) / nv::kBlockBytes - 1);
        c.cdw13 = static_cast<std::uint32_t>(len);
        return io(c, now);
    }
};

/** Platform with the streaming chunk pipeline on (DESIGN.md §11). */
ho::SystemConfig
pipelineConfig()
{
    ho::SystemConfig cfg;
    cfg.ssd.pipeline.enabled = true;
    return cfg;
}

}  // namespace

TEST(DeviceRuntime, MInitWithoutStagingFails)
{
    Rig rig;
    nv::Command c;
    c.opcode = nv::Opcode::kMInit;
    c.instanceId = 77;
    const auto cqe = rig.io(c);
    EXPECT_EQ(cqe.status, nv::Status::kNoSuchInstance);
}

TEST(DeviceRuntime, MReadWithoutInstanceFails)
{
    Rig rig;
    nv::Command c;
    c.opcode = nv::Opcode::kMRead;
    c.instanceId = 5;
    const auto cqe = rig.io(c);
    EXPECT_EQ(cqe.status, nv::Status::kNoSuchInstance);
}

TEST(DeviceRuntime, OversizedImageRejected)
{
    Rig rig;
    const auto image = co::MorpheusCompiler::compile(
        "huge",
        [](std::uint32_t) {
            return std::make_unique<co::IntArrayApp>(0);
        },
        10 * 1024 * 1024);  // way beyond I-SRAM
    const auto cqe = rig.minit(
        1, image, co::DmaTarget{rig.sys.allocHost(1024), false});
    EXPECT_EQ(cqe.status, nv::Status::kAppLoadFailed);
}

TEST(DeviceRuntime, FullStreamDeserializesIntoHostMemory)
{
    Rig rig;
    const auto a = wk::genIntArray(31, 20000);
    sd::TextWriter w;
    a.serialize(w);
    const auto extent = rig.sys.createFile("ints", w.bytes());

    const auto target_addr = rig.sys.allocHost(a.objectBytes());
    ASSERT_TRUE(rig.minit(1, rig.images.intArray,
                          co::DmaTarget{target_addr, false})
                    .ok());

    // Stream MREADs of 16 KiB.
    const std::uint64_t chunk = 16 * 1024;
    std::uint64_t off = 0;
    morpheus::sim::Tick t = 0;
    std::uint64_t mreads = 0;
    while (off < extent.sizeBytes) {
        const std::uint64_t valid =
            std::min(chunk, extent.sizeBytes - off);
        nv::Command c;
        c.opcode = nv::Opcode::kMRead;
        c.instanceId = 1;
        c.slba = (extent.startByte + off) / nv::kBlockBytes;
        c.nlb = static_cast<std::uint16_t>(
            (valid + nv::kBlockBytes - 1) / nv::kBlockBytes - 1);
        c.cdw13 = static_cast<std::uint32_t>(valid);
        const auto cqe = rig.io(c, t);
        ASSERT_TRUE(cqe.ok());
        t = cqe.postedAt;
        off += valid;
        ++mreads;
    }
    EXPECT_GT(mreads, 5u);

    nv::Command fin;
    fin.opcode = nv::Opcode::kMDeinit;
    fin.instanceId = 1;
    const auto fin_cqe = rig.io(fin, t);
    ASSERT_TRUE(fin_cqe.ok());
    EXPECT_EQ(fin_cqe.dw0, a.values.size());

    const auto bin = rig.sys.mem().store().readVec(
        target_addr, static_cast<std::size_t>(a.objectBytes()));
    EXPECT_EQ(sd::IntArrayObject::fromBinary(bin), a);
    EXPECT_EQ(rig.device.objectBytesOut(), a.objectBytes());
    EXPECT_EQ(rig.device.liveInstances(), 0u);
}

TEST(DeviceRuntime, InstanceIdReusableAfterDeinit)
{
    Rig rig;
    const auto target = co::DmaTarget{rig.sys.allocHost(4096), false};
    ASSERT_TRUE(rig.minit(9, rig.images.intArray, target).ok());
    // Busy while live.
    co::InstanceSetup setup;
    setup.image = &rig.images.intArray;
    setup.target = target;
    rig.device.stageInstance(9, setup);
    nv::Command again;
    again.opcode = nv::Opcode::kMInit;
    again.instanceId = 9;
    again.cdw13 = rig.images.intArray.textBytes;
    again.prp1 = rig.sys.allocHost(again.cdw13);
    EXPECT_EQ(rig.io(again).status, nv::Status::kInstanceBusy);

    nv::Command fin;
    fin.opcode = nv::Opcode::kMDeinit;
    fin.instanceId = 9;
    ASSERT_TRUE(rig.io(fin).ok());
    // Re-stage and re-init succeeds now.
    ASSERT_TRUE(rig.minit(9, rig.images.intArray, target).ok());
}

TEST(DeviceRuntime, MReadTimeScalesWithFloatContent)
{
    // Same byte count, int-only vs float-heavy: soft-float makes the
    // float stream slower on the FPU-less cores.
    auto run = [](double float_fraction) {
        Rig rig;
        const auto c =
            wk::genCooMatrix(33, 64, 64, 2000, float_fraction);
        sd::TextWriter w;
        c.serialize(w);
        const auto extent = rig.sys.createFile("coo", w.bytes());
        const auto target =
            co::DmaTarget{rig.sys.allocHost(c.objectBytes()), false};
        EXPECT_TRUE(
            rig.minit(1, rig.images.cooMatrix, target).ok());
        nv::Command cmd;
        cmd.opcode = nv::Opcode::kMRead;
        cmd.instanceId = 1;
        cmd.slba = extent.startByte / nv::kBlockBytes;
        const std::uint64_t blocks =
            (extent.sizeBytes + nv::kBlockBytes - 1) / nv::kBlockBytes;
        // Cap at MDTS; one command is enough for the comparison.
        cmd.nlb = static_cast<std::uint16_t>(
            std::min<std::uint64_t>(blocks, 256) - 1);
        cmd.cdw13 = static_cast<std::uint32_t>(std::min<std::uint64_t>(
            extent.sizeBytes, cmd.dataBytes()));
        const auto t0 = rig.io(cmd, 0);
        EXPECT_TRUE(t0.ok());
        return t0.postedAt;
    };
    EXPECT_GT(run(1.0), run(0.0));
}

TEST(DeviceRuntime, MWriteSerializesToFlash)
{
    Rig rig;
    const auto a = wk::genIntArray(34, 100);
    std::vector<std::uint8_t> bin;
    for (const auto v : a.values) {
        const auto *p = reinterpret_cast<const std::uint8_t *>(&v);
        bin.insert(bin.end(), p, p + 8);
    }
    const morpheus::pcie::Addr src = rig.sys.allocHost(bin.size());
    rig.sys.mem().store().writeVec(src, bin);

    // Destination region on flash.
    const std::uint64_t dst_byte = 64ULL * 1024 * 1024;
    ASSERT_TRUE(rig.minit(2, rig.images.int64Serializer,
                          co::DmaTarget{src, false})
                    .ok());
    nv::Command wr;
    wr.opcode = nv::Opcode::kMWrite;
    wr.instanceId = 2;
    wr.prp1 = src;
    wr.slba = dst_byte / nv::kBlockBytes;
    wr.nlb = static_cast<std::uint16_t>(bin.size() / nv::kBlockBytes);
    wr.cdw13 = static_cast<std::uint32_t>(bin.size());
    ASSERT_TRUE(rig.io(wr).ok());

    // The flash now holds the ASCII text; parse it back.
    const auto text =
        rig.sys.ssd().peekBytes(dst_byte, 16 * a.values.size() + 16);
    sd::TextScanner s(text.data(), text.size());
    std::vector<std::int64_t> back;
    std::int64_t v = 0;
    while (s.nextInt64(&v) &&
           back.size() < a.values.size()) {
        back.push_back(v);
    }
    EXPECT_EQ(back, a.values);
}

TEST(DeviceRuntime, MWriteCursorContinuesAcrossCommands)
{
    // Two MWRITE chunks of binary values must serialize to one
    // contiguous text region on flash.
    Rig rig;
    const auto a = wk::genIntArray(71, 400);
    std::vector<std::uint8_t> bin;
    for (const auto v : a.values) {
        const auto *p = reinterpret_cast<const std::uint8_t *>(&v);
        bin.insert(bin.end(), p, p + 8);
    }
    const morpheus::pcie::Addr src = rig.sys.allocHost(bin.size());
    rig.sys.mem().store().writeVec(src, bin);
    const std::uint64_t dst_byte = 96ULL << 20;
    ASSERT_TRUE(rig.minit(3, rig.images.int64Serializer,
                          co::DmaTarget{src, false})
                    .ok());

    morpheus::sim::Tick t = 0;
    const std::size_t half = (bin.size() / 2 / 8) * 8;
    const std::size_t parts[2][2] = {{0, half},
                                     {half, bin.size() - half}};
    for (const auto &[off, len] : parts) {
        nv::Command wr;
        wr.opcode = nv::Opcode::kMWrite;
        wr.instanceId = 3;
        wr.prp1 = src + off;
        wr.slba = dst_byte / nv::kBlockBytes;
        wr.nlb = static_cast<std::uint16_t>(
            (len + nv::kBlockBytes - 1) / nv::kBlockBytes - 1);
        wr.cdw13 = static_cast<std::uint32_t>(len);
        const auto cqe = rig.io(wr, t);
        ASSERT_TRUE(cqe.ok());
        t = cqe.postedAt;
    }

    const auto text =
        rig.sys.ssd().peekBytes(dst_byte, a.values.size() * 12 + 32);
    sd::TextScanner s(text.data(), text.size());
    std::vector<std::int64_t> back;
    std::int64_t v = 0;
    while (back.size() < a.values.size() && s.nextInt64(&v))
        back.push_back(v);
    EXPECT_EQ(back, a.values);
}

namespace {

/**
 * Test app exercising both command paths: MREAD chunks are echoed
 * byte-for-byte to the DMA target (so the read cursor really moves),
 * and MWRITE chunks serialize int64 values to text. A value of -1 in
 * the write stream makes the app refuse the command after partially
 * staging output (the engine's abort path).
 */
struct EchoApp : co::StorageApp
{
    void
    processChunk(co::MsChunkContext &ctx) override
    {
        std::uint8_t b = 0;
        while (ctx.msReadValue(&b))
            ctx.msEmitValue(b);
    }

    bool
    processWriteChunk(co::MsChunkContext &ctx) override
    {
        std::int64_t v = 0;
        while (ctx.msReadValue(&v)) {
            if (v == -1)
                return false;
            char buf[32];
            const int n =
                std::snprintf(buf, sizeof(buf), "%lld ",
                              static_cast<long long>(v));
            ctx.msEmit(buf, static_cast<std::size_t>(n));
        }
        return true;
    }
};

co::StorageAppImage
echoImage()
{
    return co::MorpheusCompiler::compile(
        "echo",
        [](std::uint32_t) { return std::make_unique<EchoApp>(); });
}

}  // namespace

TEST(DeviceRuntime, DsramGrantsPartitionCoreScratchpad)
{
    ho::SystemConfig cfg;
    cfg.ssd.sched.dsramPartitioning = true;
    cfg.ssd.sched.maxInstancesPerCore = 2;
    Rig rig(cfg);
    const auto target = co::DmaTarget{rig.sys.allocHost(4096), false};
    const std::uint32_t dsram = cfg.ssd.core.dsramBytes;

    // Static placement: instance IDs 1, 5, 9 all map to core 1. The
    // first two take the default half-scratchpad grant each.
    ASSERT_TRUE(rig.minit(1, rig.images.intArray, target).ok());
    ASSERT_TRUE(rig.minit(5, rig.images.intArray, target).ok());
    auto &core1 = rig.sys.ssd().core(1);
    EXPECT_EQ(core1.dsramUsed(), dsram);
    EXPECT_LE(core1.dsramUsed(), dsram);

    // A third co-resident has no budget left and bounces.
    EXPECT_EQ(rig.minit(9, rig.images.intArray, target).status,
              nv::Status::kDsramExhausted);
    EXPECT_EQ(rig.device.liveInstances(), 2u);

    // MDEINIT releases the grant; the bounced instance now fits.
    ASSERT_TRUE(rig.mdeinit(1).ok());
    EXPECT_EQ(core1.dsramUsed(), dsram / 2);
    ASSERT_TRUE(rig.minit(9, rig.images.intArray, target).ok());
    EXPECT_EQ(core1.dsramUsed(), dsram);
}

TEST(DeviceRuntime, ExplicitDsramRequestIsHonored)
{
    ho::SystemConfig cfg;
    cfg.ssd.sched.dsramPartitioning = true;
    Rig rig(cfg);
    const auto target = co::DmaTarget{rig.sys.allocHost(4096), false};
    const std::uint32_t dsram = cfg.ssd.core.dsramBytes;

    // One instance asks for three quarters of the scratchpad; a peer
    // asking for the remaining quarter fits, a third does not.
    ASSERT_TRUE(rig.minit(1, rig.images.intArray, target, 0, 0,
                          dsram / 4 * 3)
                    .ok());
    ASSERT_TRUE(
        rig.minit(5, rig.images.intArray, target, 0, 0, dsram / 4)
            .ok());
    auto &core1 = rig.sys.ssd().core(1);
    EXPECT_EQ(core1.dsramUsed(), dsram);
    EXPECT_EQ(rig.minit(9, rig.images.intArray, target, 0, 0, 512)
                  .status,
              nv::Status::kDsramExhausted);
}

TEST(DeviceRuntime, RefusedMInitReleasesSchedulerState)
{
    ho::SystemConfig cfg;
    cfg.ssd.sched.dsramPartitioning = true;
    cfg.ssd.sched.maxInstancesPerCore = 1;
    Rig rig(cfg);
    auto &sched = rig.sys.ssd().scheduler();
    const auto target = co::DmaTarget{rig.sys.allocHost(4096), false};

    // kAppLoadFailed: oversized image. Arbiter slot and dispatcher
    // placement must both be released, or the failure leaks capacity.
    const auto huge = co::MorpheusCompiler::compile(
        "huge",
        [](std::uint32_t) {
            return std::make_unique<co::IntArrayApp>(0);
        },
        10 * 1024 * 1024);
    EXPECT_EQ(rig.minit(2, huge, target).status,
              nv::Status::kAppLoadFailed);
    EXPECT_EQ(sched.arbiter().openInstances(), 0u);
    EXPECT_EQ(sched.dispatcher().residents(2), 0u);

    // kDsramExhausted: a second instance on an occupied core (static
    // placement maps IDs 1 and 5 both to core 1).
    ASSERT_TRUE(rig.minit(1, rig.images.intArray, target).ok());
    EXPECT_EQ(rig.minit(5, rig.images.intArray, target).status,
              nv::Status::kDsramExhausted);
    EXPECT_EQ(sched.arbiter().openInstances(), 1u);
    EXPECT_EQ(sched.dispatcher().residents(1), 1u);

    // Both refused IDs stay usable once capacity frees.
    ASSERT_TRUE(rig.mdeinit(1).ok());
    EXPECT_EQ(sched.arbiter().openInstances(), 0u);
    ASSERT_TRUE(rig.minit(5, rig.images.intArray, target).ok());
    EXPECT_EQ(sched.dispatcher().residents(1), 1u);
    ASSERT_TRUE(rig.mdeinit(5).ok());
    ASSERT_TRUE(rig.minit(2, rig.images.intArray, target).ok());
    EXPECT_EQ(sched.dispatcher().residents(2), 1u);
}

TEST(DeviceRuntime, MixedReadWriteStreamLandsWritesAtSlba)
{
    Rig rig;
    // Put some raw bytes on flash for the MREAD leg.
    std::vector<std::uint8_t> raw(4096);
    for (std::size_t i = 0; i < raw.size(); ++i)
        raw[i] = static_cast<std::uint8_t>(i * 7 + 1);
    const auto extent = rig.sys.createFile("raw", raw);

    const auto image = echoImage();
    const auto target_addr = rig.sys.allocHost(64 * 1024);
    // Small flush threshold so the MREAD leg really ships flushes and
    // advances the instance's DMA cursor before any MWRITE arrives.
    ASSERT_TRUE(rig.minit(7, image,
                          co::DmaTarget{target_addr, false}, 0, 512)
                    .ok());

    nv::Command rd;
    rd.opcode = nv::Opcode::kMRead;
    rd.instanceId = 7;
    rd.slba = extent.startByte / nv::kBlockBytes;
    rd.nlb = static_cast<std::uint16_t>(raw.size() / nv::kBlockBytes - 1);
    rd.cdw13 = static_cast<std::uint32_t>(raw.size());
    const auto rd_cqe = rig.io(rd);
    ASSERT_TRUE(rd_cqe.ok());
    EXPECT_EQ(rig.device.takeDeliveredBytes(7), raw.size());

    // Now serialize binary ints; the text must land exactly at the
    // command's SLBA, not skewed by the MREAD deliveries above.
    const std::vector<std::int64_t> vals{41, 542, 6643, 77444, 885};
    std::vector<std::uint8_t> bin(vals.size() * sizeof(std::int64_t));
    std::memcpy(bin.data(), vals.data(), bin.size());
    const morpheus::pcie::Addr src = rig.sys.allocHost(bin.size());
    rig.sys.mem().store().writeVec(src, bin);

    auto mwrite = [&](std::uint64_t dst_byte,
                      morpheus::sim::Tick t) {
        nv::Command wr;
        wr.opcode = nv::Opcode::kMWrite;
        wr.instanceId = 7;
        wr.prp1 = src;
        wr.slba = dst_byte / nv::kBlockBytes;
        wr.nlb = 0;
        wr.cdw13 = static_cast<std::uint32_t>(bin.size());
        return rig.io(wr, t);
    };
    auto text_at = [&](std::uint64_t dst_byte) {
        const auto text = rig.sys.ssd().peekBytes(dst_byte, 128);
        sd::TextScanner s(text.data(), text.size());
        std::vector<std::int64_t> back;
        std::int64_t v = 0;
        while (back.size() < vals.size() && s.nextInt64(&v))
            back.push_back(v);
        return back;
    };

    const std::uint64_t dst_a = 128ULL << 20;
    const auto wr_a = mwrite(dst_a, rd_cqe.postedAt);
    ASSERT_TRUE(wr_a.ok());
    EXPECT_EQ(text_at(dst_a), vals);

    // A second region: the write cursor must restart at the new SLBA.
    const std::uint64_t dst_b = 160ULL << 20;
    ASSERT_TRUE(mwrite(dst_b, wr_a.postedAt).ok());
    EXPECT_EQ(text_at(dst_b), vals);
}

TEST(DeviceRuntime, FailedMWriteDoesNotBleedIntoNext)
{
    Rig rig;
    const auto image = echoImage();
    const auto target = co::DmaTarget{rig.sys.allocHost(4096), false};
    ASSERT_TRUE(rig.minit(3, image, target).ok());

    // First command: stages "1 2 " then hits the poison value.
    const std::vector<std::int64_t> bad{1, 2, -1};
    std::vector<std::uint8_t> bad_bin(bad.size() *
                                      sizeof(std::int64_t));
    std::memcpy(bad_bin.data(), bad.data(), bad_bin.size());
    const morpheus::pcie::Addr bad_src =
        rig.sys.allocHost(bad_bin.size());
    rig.sys.mem().store().writeVec(bad_src, bad_bin);
    const std::uint64_t dst_byte = 192ULL << 20;
    nv::Command wr;
    wr.opcode = nv::Opcode::kMWrite;
    wr.instanceId = 3;
    wr.prp1 = bad_src;
    wr.slba = dst_byte / nv::kBlockBytes;
    wr.nlb = 0;
    wr.cdw13 = static_cast<std::uint32_t>(bad_bin.size());
    EXPECT_EQ(rig.io(wr).status, nv::Status::kInvalidField);
    EXPECT_EQ(rig.device.takeDeliveredBytes(3), 0u);

    // Second command must serialize only its own values: the aborted
    // command's staged "1 2 " must not prefix the region.
    const std::vector<std::int64_t> good{33, 44};
    std::vector<std::uint8_t> good_bin;
    for (const auto v : good) {
        const auto *p = reinterpret_cast<const std::uint8_t *>(&v);
        good_bin.insert(good_bin.end(), p, p + 8);
    }
    const morpheus::pcie::Addr good_src =
        rig.sys.allocHost(good_bin.size());
    rig.sys.mem().store().writeVec(good_src, good_bin);
    wr.prp1 = good_src;
    wr.cdw13 = static_cast<std::uint32_t>(good_bin.size());
    ASSERT_TRUE(rig.io(wr).ok());

    const auto text = rig.sys.ssd().peekBytes(dst_byte, 64);
    sd::TextScanner s(text.data(), text.size());
    std::vector<std::int64_t> back;
    std::int64_t v = 0;
    while (back.size() < good.size() && s.nextInt64(&v))
        back.push_back(v);
    EXPECT_EQ(back, good);
}

TEST(DeviceRuntime, StatsCountMorpheusCommands)
{
    Rig rig;
    const auto a = wk::genIntArray(72, 3000);
    sd::TextWriter w;
    a.serialize(w);
    const auto extent = rig.sys.createFile("s", w.bytes());
    const auto target =
        co::DmaTarget{rig.sys.allocHost(a.objectBytes()), false};
    ASSERT_TRUE(rig.minit(4, rig.images.intArray, target).ok());
    nv::Command c;
    c.opcode = nv::Opcode::kMRead;
    c.instanceId = 4;
    c.slba = extent.startByte / nv::kBlockBytes;
    c.nlb = 15;
    c.cdw13 = 8192;
    ASSERT_TRUE(rig.io(c).ok());
    nv::Command fin;
    fin.opcode = nv::Opcode::kMDeinit;
    fin.instanceId = 4;
    ASSERT_TRUE(rig.io(fin).ok());

    morpheus::sim::stats::StatSet set;
    rig.device.registerStats(set, "morpheus");
    EXPECT_EQ(set.counterValue("morpheus.minits"), 1u);
    EXPECT_EQ(set.counterValue("morpheus.mreads"), 1u);
    EXPECT_EQ(set.counterValue("morpheus.mdeinits"), 1u);
    EXPECT_GT(set.counterValue("morpheus.objectBytesOut"), 0u);
    EXPECT_EQ(set.counterValue("morpheus.rawBytesIn"), 8192u);
}

TEST(DeviceRuntime, MediaErrorLeavesCleanResubmission)
{
    Rig rig;
    const auto a = wk::genIntArray(77, 8000);
    sd::TextWriter w;
    a.serialize(w);
    const auto extent = rig.sys.createFile("ints", w.bytes());
    const auto target_addr = rig.sys.allocHost(a.objectBytes());
    ASSERT_TRUE(rig.minit(1, rig.images.intArray,
                          co::DmaTarget{target_addr, false})
                    .ok());

    nv::Command c;
    c.opcode = nv::Opcode::kMRead;
    c.instanceId = 1;
    c.slba = extent.startByte / nv::kBlockBytes;
    c.nlb = static_cast<std::uint16_t>(
        (extent.sizeBytes + nv::kBlockBytes - 1) / nv::kBlockBytes - 1);
    c.cdw13 = static_cast<std::uint32_t>(extent.sizeBytes);

    morpheus::sim::Tick t = 0;
    {
        // Every flash page read comes back uncorrectable.
        morpheus::sim::FaultPlan plan;
        plan.mediaRate = 1.0;
        morpheus::sim::FaultInjector fi(plan);
        morpheus::sim::ScopedFaultInjector scope(&fi);
        const auto cqe = rig.io(c, t);
        EXPECT_EQ(cqe.status, nv::Status::kMediaError);
        EXPECT_GE(fi.mediaErrors(), 1u);
        t = cqe.postedAt;
    }
    // The chunk never reached the parser: resubmitting the identical
    // command with the fault cleared completes the stream exactly.
    const auto retry = rig.io(c, t);
    ASSERT_TRUE(retry.ok());
    const auto fin = rig.mdeinit(1, retry.postedAt);
    ASSERT_TRUE(fin.ok());
    EXPECT_EQ(fin.dw0, a.values.size());
    const auto bin = rig.sys.mem().store().readVec(
        target_addr, static_cast<std::size_t>(a.objectBytes()));
    EXPECT_EQ(sd::IntArrayObject::fromBinary(bin), a);
}

TEST(DeviceRuntime, OutOfOrderChunkAfterMediaErrorBounces)
{
    Rig rig;
    const auto a = wk::genIntArray(79, 8000);
    sd::TextWriter w;
    a.serialize(w);
    const auto extent = rig.sys.createFile("ints", w.bytes());
    const auto target_addr = rig.sys.allocHost(a.objectBytes());
    ASSERT_TRUE(rig.minit(4, rig.images.intArray,
                          co::DmaTarget{target_addr, false})
                    .ok());

    // Split the stream into two chunks on a block boundary.
    const std::uint64_t first_bytes = 4096;
    ASSERT_GT(extent.sizeBytes, first_bytes);
    nv::Command c1;
    c1.opcode = nv::Opcode::kMRead;
    c1.instanceId = 4;
    c1.slba = extent.startByte / nv::kBlockBytes;
    c1.nlb =
        static_cast<std::uint16_t>(first_bytes / nv::kBlockBytes - 1);
    c1.cdw13 = static_cast<std::uint32_t>(first_bytes);
    nv::Command c2 = c1;
    c2.slba = c1.slba + first_bytes / nv::kBlockBytes;
    c2.nlb = static_cast<std::uint16_t>(
        (extent.sizeBytes - first_bytes + nv::kBlockBytes - 1) /
            nv::kBlockBytes -
        1);
    c2.cdw13 =
        static_cast<std::uint32_t>(extent.sizeBytes - first_bytes);

    morpheus::sim::Tick t = 0;
    {
        morpheus::sim::FaultPlan plan;
        plan.mediaRate = 1.0;
        morpheus::sim::FaultInjector fi(plan);
        morpheus::sim::ScopedFaultInjector scope(&fi);
        const auto cqe = rig.io(c1, t);
        EXPECT_EQ(cqe.status, nv::Status::kMediaError);
        t = cqe.postedAt;
    }
    // Chunk 2 was already in flight when chunk 1 failed: the parse is
    // a stateful stream, so the firmware must bounce the gap-jumping
    // chunk instead of feeding it out of order.
    const auto ooo = rig.io(c2, t);
    EXPECT_EQ(ooo.status, nv::Status::kSequenceError);
    EXPECT_TRUE(nv::isRetryable(ooo.status));
    t = ooo.postedAt;

    // In-order resubmission of both chunks drains the stream exactly.
    const auto r1 = rig.io(c1, t);
    ASSERT_TRUE(r1.ok());
    const auto r2 = rig.io(c2, r1.postedAt);
    ASSERT_TRUE(r2.ok());
    const auto fin = rig.mdeinit(4, r2.postedAt);
    ASSERT_TRUE(fin.ok());
    EXPECT_EQ(fin.dw0, a.values.size());
    const auto bin = rig.sys.mem().store().readVec(
        target_addr, static_cast<std::size_t>(a.objectBytes()));
    EXPECT_EQ(sd::IntArrayObject::fromBinary(bin), a);
}

TEST(DeviceRuntime, CrashChargesAbortedWorkAndPoisonsInstance)
{
    Rig rig;
    const auto a = wk::genIntArray(78, 8000);
    sd::TextWriter w;
    a.serialize(w);
    const auto extent = rig.sys.createFile("ints", w.bytes());
    const auto target_addr = rig.sys.allocHost(a.objectBytes());
    ASSERT_TRUE(rig.minit(3, rig.images.intArray,
                          co::DmaTarget{target_addr, false})
                    .ok());

    nv::Command c;
    c.opcode = nv::Opcode::kMRead;
    c.instanceId = 3;
    c.slba = extent.startByte / nv::kBlockBytes;
    c.nlb = static_cast<std::uint16_t>(
        (extent.sizeBytes + nv::kBlockBytes - 1) / nv::kBlockBytes - 1);
    c.cdw13 = static_cast<std::uint32_t>(extent.sizeBytes);

    morpheus::sim::Tick t = 0;
    {
        morpheus::sim::FaultPlan plan;
        plan.crashRate = 1.0;
        morpheus::sim::FaultInjector fi(plan);
        morpheus::sim::ScopedFaultInjector scope(&fi);
        const auto cqe = rig.io(c, t);
        EXPECT_EQ(cqe.status, nv::Status::kAppFault);
        EXPECT_EQ(fi.appCrashes(), 1u);
        t = cqe.postedAt;
    }
    // The aborted command's staged bytes were dropped, not shipped:
    // nothing reached host memory (the staged-byte-leak regression).
    EXPECT_EQ(rig.device.objectBytesOut(), 0u);

    // The instance is poisoned: data commands bounce without fault
    // injection until the host reinstalls it.
    EXPECT_EQ(rig.io(c, t).status, nv::Status::kAppFault);

    // MDEINIT tears the carcass down (skipping finish hooks) and frees
    // the scheduler slot; the same ID is then fully reusable.
    const auto fin = rig.mdeinit(3, t);
    ASSERT_TRUE(fin.ok());
    EXPECT_EQ(fin.dw0, 0u);  // no finished object to report
    EXPECT_EQ(rig.device.liveInstances(), 0u);
    EXPECT_EQ(rig.sys.ssd().scheduler().arbiter().openInstances(), 0u);
    EXPECT_EQ(rig.sys.ssd().core(3 % 4).dsramUsed(), 0u);

    ASSERT_TRUE(rig.minit(3, rig.images.intArray,
                          co::DmaTarget{target_addr, false})
                    .ok());
    const auto good = rig.io(c, t);
    ASSERT_TRUE(good.ok());
    ASSERT_TRUE(rig.mdeinit(3, good.postedAt).ok());
    const auto bin = rig.sys.mem().store().readVec(
        target_addr, static_cast<std::size_t>(a.objectBytes()));
    EXPECT_EQ(sd::IntArrayObject::fromBinary(bin), a);
}

TEST(DeviceRuntime, WatchdogKillsHungInstanceAndHostTimesOut)
{
    Rig rig;
    const auto a = wk::genIntArray(79, 4000);
    sd::TextWriter w;
    a.serialize(w);
    const auto extent = rig.sys.createFile("ints", w.bytes());
    const auto target_addr = rig.sys.allocHost(a.objectBytes());
    ASSERT_TRUE(rig.minit(2, rig.images.intArray,
                          co::DmaTarget{target_addr, false})
                    .ok());

    // The hang suppresses the CQE; only driver recovery can observe it.
    nv::DriverRecoveryConfig rec;
    rec.enabled = true;
    rig.sys.nvmeDriver().setRecovery(rec);

    nv::Command c;
    c.opcode = nv::Opcode::kMRead;
    c.instanceId = 2;
    c.slba = extent.startByte / nv::kBlockBytes;
    c.nlb = static_cast<std::uint16_t>(
        (extent.sizeBytes + nv::kBlockBytes - 1) / nv::kBlockBytes - 1);
    c.cdw13 = static_cast<std::uint32_t>(extent.sizeBytes);

    {
        morpheus::sim::FaultPlan plan;
        plan.hangRate = 1.0;
        morpheus::sim::FaultInjector fi(plan);
        morpheus::sim::ScopedFaultInjector scope(&fi);
        const auto cqe = rig.io(c, 0);
        EXPECT_EQ(cqe.status, nv::Status::kCommandTimeout);
        EXPECT_EQ(fi.appHangs(), 1u);
        EXPECT_EQ(fi.watchdogKills(), 1u);
    }
    EXPECT_EQ(rig.sys.nvmeDriver().timeoutsSynthesized(), 1u);

    // The watchdog already reclaimed everything device-side: the
    // instance is gone, its core and scheduler slot are free.
    EXPECT_EQ(rig.device.liveInstances(), 0u);
    EXPECT_EQ(rig.sys.ssd().scheduler().arbiter().openInstances(), 0u);
    EXPECT_EQ(rig.mdeinit(2).status, nv::Status::kNoSuchInstance);

    // The host can reinstall the same ID and finish the job clean.
    ASSERT_TRUE(rig.minit(2, rig.images.intArray,
                          co::DmaTarget{target_addr, false})
                    .ok());
    const auto good = rig.io(c, 0);
    ASSERT_TRUE(good.ok());
    ASSERT_TRUE(rig.mdeinit(2, good.postedAt).ok());
}

TEST(DeviceRuntime, TransientImageFetchFaultIsRetryable)
{
    Rig rig;
    const auto target = co::DmaTarget{rig.sys.allocHost(4096), false};
    {
        // Every payload-sized DMA move faults, including the MINIT
        // image fetch.
        morpheus::sim::FaultPlan plan;
        plan.dmaRate = 1.0;
        morpheus::sim::FaultInjector fi(plan);
        morpheus::sim::ScopedFaultInjector scope(&fi);
        const auto cqe = rig.minit(4, rig.images.intArray, target);
        EXPECT_EQ(cqe.status, nv::Status::kTransientTransferError);
        EXPECT_GE(fi.dmaFaults(), 1u);
    }
    // The failed MINIT released core and scheduler state, so a clean
    // resubmission (fault cleared) installs the instance.
    EXPECT_EQ(rig.device.liveInstances(), 0u);
    EXPECT_EQ(rig.sys.ssd().scheduler().arbiter().openInstances(), 0u);
    ASSERT_TRUE(rig.minit(4, rig.images.intArray, target).ok());
    ASSERT_TRUE(rig.mdeinit(4).ok());
}

// -------------------------------------------- streaming chunk pipeline

TEST(DeviceRuntime, PipelinedStreamMatchesSerialResult)
{
    // The pipeline overlaps fetch/parse/flush but must not change one
    // functional byte or the delivered object count.
    const auto a = wk::genIntArray(91, 20000);
    sd::TextWriter w;
    a.serialize(w);

    auto run = [&](const ho::SystemConfig &cfg) {
        Rig rig(cfg);
        const auto extent = rig.sys.createFile("ints", w.bytes());
        const auto target_addr = rig.sys.allocHost(a.objectBytes());
        EXPECT_TRUE(rig.minit(1, rig.images.intArray,
                              co::DmaTarget{target_addr, false})
                        .ok());
        morpheus::sim::Tick t = 0;
        std::uint64_t off = 0;
        while (off < extent.sizeBytes) {
            const std::uint64_t len =
                std::min<std::uint64_t>(16 * 1024,
                                        extent.sizeBytes - off);
            const auto cqe = rig.mread(1, extent, off, len, t);
            EXPECT_TRUE(cqe.ok());
            t = cqe.postedAt;
            off += len;
        }
        const auto fin = rig.mdeinit(1, t);
        EXPECT_TRUE(fin.ok());
        EXPECT_EQ(fin.dw0, a.values.size());
        return rig.sys.mem().store().readVec(
            target_addr, static_cast<std::size_t>(a.objectBytes()));
    };

    const auto serial = run(ho::SystemConfig{});
    const auto piped = run(pipelineConfig());
    EXPECT_EQ(serial, piped);
    EXPECT_EQ(sd::IntArrayObject::fromBinary(piped), a);
}

TEST(DeviceRuntime, PipelinedCoalesceMergesSmallFlushSegments)
{
    // At the default threshold (D-SRAM/4) a sub-buffer rarely flushes
    // twice, so coalescing has nothing to merge; a tiny threshold
    // splits each sub-buffer's output into many 512-byte segments,
    // which land back-to-back on the DMA cursor and must merge into
    // maxDescriptorBytes descriptors without changing a byte.
    const auto a = wk::genIntArray(93, 20000);
    sd::TextWriter w;
    a.serialize(w);

    auto run = [&](bool coalesce) {
        auto cfg = pipelineConfig();
        cfg.ssd.pipeline.coalesceFlush = coalesce;
        Rig rig(cfg);
        const auto extent = rig.sys.createFile("ints", w.bytes());
        const auto target_addr = rig.sys.allocHost(a.objectBytes());
        EXPECT_TRUE(rig.minit(1, rig.images.intArray,
                              co::DmaTarget{target_addr, false},
                              /*arg=*/0, /*flush_threshold=*/512)
                        .ok());
        morpheus::sim::Tick t = 0;
        std::uint64_t off = 0;
        while (off < extent.sizeBytes) {
            const std::uint64_t len = std::min<std::uint64_t>(
                16 * 1024, extent.sizeBytes - off);
            const auto cqe = rig.mread(1, extent, off, len, t);
            EXPECT_TRUE(cqe.ok());
            t = cqe.postedAt;
            off += len;
        }
        EXPECT_TRUE(rig.mdeinit(1, t).ok());
        return std::make_pair(
            rig.sys.mem().store().readVec(
                target_addr, static_cast<std::size_t>(a.objectBytes())),
            rig.device.flushSegmentsCoalesced());
    };

    const auto [merged, merged_count] = run(true);
    const auto [split, split_count] = run(false);
    EXPECT_GT(merged_count, 0u);
    EXPECT_EQ(split_count, 0u);
    EXPECT_EQ(merged, split);
    EXPECT_EQ(sd::IntArrayObject::fromBinary(merged), a);
}

TEST(DeviceRuntime, PipelinedMediaErrorOnReadaheadIsDiscarded)
{
    // A media error drawn while *prefetching* the next chunk must be
    // discarded with the buffer — never fed to the parser and never
    // surfaced to the host, which did not submit that chunk yet.
    Rig rig(pipelineConfig());
    const auto a = wk::genIntArray(92, 20000);
    sd::TextWriter w;
    a.serialize(w);
    const auto extent = rig.sys.createFile("ints", w.bytes());
    const auto target_addr = rig.sys.allocHost(a.objectBytes());
    ASSERT_TRUE(rig.minit(1, rig.images.intArray,
                          co::DmaTarget{target_addr, false})
                    .ok());

    const std::uint64_t chunk = 16 * 1024;
    ASSERT_GT(extent.sizeBytes, 3 * chunk);

    // Chunk 0 runs clean and prefetches chunk 1's pages cleanly.
    auto cqe = rig.mread(1, extent, 0, chunk, 0);
    ASSERT_TRUE(cqe.ok());
    morpheus::sim::Tick t = cqe.postedAt;
    {
        // Chunk 1 consumes the clean readahead (no fresh flash reads
        // for its own payload), so it succeeds even though every page
        // read now comes back uncorrectable — but the prefetch it
        // issues for chunk 2 draws the fault and is poisoned.
        morpheus::sim::FaultPlan plan;
        plan.mediaRate = 1.0;
        morpheus::sim::FaultInjector fi(plan);
        morpheus::sim::ScopedFaultInjector scope(&fi);
        cqe = rig.mread(1, extent, chunk, chunk, t);
        ASSERT_TRUE(cqe.ok());
        t = cqe.postedAt;
        EXPECT_GE(fi.mediaErrors(), 1u);
    }
    EXPECT_GE(rig.device.readaheadHits(), 1u);

    // Chunk 2 discards the poisoned buffer and re-fetches from flash
    // (fault cleared): the host never saw a media error.
    std::uint64_t off = 2 * chunk;
    while (off < extent.sizeBytes) {
        const std::uint64_t len =
            std::min<std::uint64_t>(chunk, extent.sizeBytes - off);
        cqe = rig.mread(1, extent, off, len, t);
        ASSERT_TRUE(cqe.ok());
        t = cqe.postedAt;
        off += len;
    }
    EXPECT_EQ(rig.device.readaheadMediaDiscards(), 1u);

    const auto fin = rig.mdeinit(1, t);
    ASSERT_TRUE(fin.ok());
    EXPECT_EQ(fin.dw0, a.values.size());
    const auto bin = rig.sys.mem().store().readVec(
        target_addr, static_cast<std::size_t>(a.objectBytes()));
    EXPECT_EQ(sd::IntArrayObject::fromBinary(bin), a);
}

TEST(DeviceRuntime, PipelinedCrashChargesAbortedWorkOnce)
{
    // The crash manifests in the first sub-buffer of the pipelined
    // parse: the aborted work is charged once, nothing is shipped, and
    // the instance is poisoned exactly as on the serial path.
    Rig rig(pipelineConfig());
    const auto a = wk::genIntArray(93, 8000);
    sd::TextWriter w;
    a.serialize(w);
    const auto extent = rig.sys.createFile("ints", w.bytes());
    const auto target_addr = rig.sys.allocHost(a.objectBytes());
    ASSERT_TRUE(rig.minit(3, rig.images.intArray,
                          co::DmaTarget{target_addr, false})
                    .ok());

    morpheus::sim::Tick t = 0;
    {
        morpheus::sim::FaultPlan plan;
        plan.crashRate = 1.0;
        morpheus::sim::FaultInjector fi(plan);
        morpheus::sim::ScopedFaultInjector scope(&fi);
        const auto cqe =
            rig.mread(3, extent, 0, extent.sizeBytes, t);
        EXPECT_EQ(cqe.status, nv::Status::kAppFault);
        EXPECT_EQ(fi.appCrashes(), 1u);
        t = cqe.postedAt;
    }
    EXPECT_EQ(rig.device.objectBytesOut(), 0u);

    // Poisoned until reinstalled; the clean rerun completes exactly.
    EXPECT_EQ(rig.mread(3, extent, 0, extent.sizeBytes, t).status,
              nv::Status::kAppFault);
    ASSERT_TRUE(rig.mdeinit(3, t).ok());
    ASSERT_TRUE(rig.minit(3, rig.images.intArray,
                          co::DmaTarget{target_addr, false})
                    .ok());
    const auto good = rig.mread(3, extent, 0, extent.sizeBytes, t);
    ASSERT_TRUE(good.ok());
    const auto fin = rig.mdeinit(3, good.postedAt);
    ASSERT_TRUE(fin.ok());
    EXPECT_EQ(fin.dw0, a.values.size());
    const auto bin = rig.sys.mem().store().readVec(
        target_addr, static_cast<std::size_t>(a.objectBytes()));
    EXPECT_EQ(sd::IntArrayObject::fromBinary(bin), a);
}

TEST(DeviceRuntime, PipelinedMigrationDropsReadaheadBuffer)
{
    // A migration moves the instance between cores while a readahead
    // buffer is live in controller DRAM: the buffer is dropped (pure
    // timing state — re-fetched on use), never carried stale.
    ho::SystemConfig cfg = pipelineConfig();
    cfg.ssd.sched.placement =
        morpheus::sched::PlacementPolicy::kLoadAware;
    cfg.ssd.sched.migration = true;
    Rig rig(cfg);
    const auto a = wk::genIntArray(94, 20000);
    sd::TextWriter w;
    a.serialize(w);
    const auto extent = rig.sys.createFile("ints", w.bytes());
    const auto target_addr = rig.sys.allocHost(a.objectBytes());
    const auto init = rig.minit(1, rig.images.intArray,
                                co::DmaTarget{target_addr, false});
    ASSERT_TRUE(init.ok());

    // Both chunks submitted at the same instant: the first leaves a
    // 64 KiB parse backlog on its core (and a live readahead buffer),
    // so the second migrates to an idle core.
    const morpheus::sim::Tick t0 = init.postedAt;
    ASSERT_TRUE(rig.mread(1, extent, 0, 64 * 1024, t0).ok());
    const auto c2 = rig.mread(1, extent, 64 * 1024, 16 * 1024, t0);
    ASSERT_TRUE(c2.ok());
    EXPECT_GE(rig.sys.ssd().scheduler().dispatcher().migrations(), 1u);
    EXPECT_GE(rig.device.readaheadDropped(), 1u);

    // The stream still completes bit-exactly after the drop.
    morpheus::sim::Tick t = c2.postedAt;
    std::uint64_t off = 80 * 1024;
    while (off < extent.sizeBytes) {
        const std::uint64_t len =
            std::min<std::uint64_t>(16 * 1024, extent.sizeBytes - off);
        const auto cqe = rig.mread(1, extent, off, len, t);
        ASSERT_TRUE(cqe.ok());
        t = cqe.postedAt;
        off += len;
    }
    const auto fin = rig.mdeinit(1, t);
    ASSERT_TRUE(fin.ok());
    EXPECT_EQ(fin.dw0, a.values.size());
    const auto bin = rig.sys.mem().store().readVec(
        target_addr, static_cast<std::size_t>(a.objectBytes()));
    EXPECT_EQ(sd::IntArrayObject::fromBinary(bin), a);
}

TEST(DeviceRuntime, PipelinedRunIsTraceInvariant)
{
    // Attaching a trace sink must not change one simulated tick of the
    // pipelined schedule (the sub-span instrumentation only observes).
    const auto a = wk::genIntArray(95, 12000);
    sd::TextWriter w;
    a.serialize(w);

    auto run = [&](morpheus::obs::TraceSink *sink) {
        Rig rig(pipelineConfig());
        const auto extent = rig.sys.createFile("ints", w.bytes());
        const auto target_addr = rig.sys.allocHost(a.objectBytes());
        auto *attach =
            sink ? new morpheus::obs::ScopedTraceSink(*sink) : nullptr;
        EXPECT_TRUE(rig.minit(1, rig.images.intArray,
                              co::DmaTarget{target_addr, false})
                        .ok());
        morpheus::sim::Tick t = 0;
        std::uint64_t off = 0;
        while (off < extent.sizeBytes) {
            const std::uint64_t len =
                std::min<std::uint64_t>(16 * 1024,
                                        extent.sizeBytes - off);
            const auto cqe = rig.mread(1, extent, off, len, t);
            EXPECT_TRUE(cqe.ok());
            t = cqe.postedAt;
            off += len;
        }
        const auto fin = rig.mdeinit(1, t);
        EXPECT_TRUE(fin.ok());
        delete attach;
        return fin.postedAt;
    };

    morpheus::obs::InMemoryTraceSink sink;
    const auto untraced = run(nullptr);
    const auto traced = run(&sink);
    EXPECT_EQ(untraced, traced);
    // The pipeline's sub-spans are present on the traced run.
    EXPECT_GE(sink.count("readahead"), 1u);
    EXPECT_GE(sink.count("parse"), 2u);
    EXPECT_GE(sink.count("fetch_readahead"), 1u);
}

// ---- deserialized-object cache (DESIGN.md §13) ----------------------

namespace {

/** Platform with the object cache on (defaults: 64 MiB LRU). */
ho::SystemConfig
cacheConfig()
{
    ho::SystemConfig cfg;
    cfg.ssd.cache.enabled = true;
    return cfg;
}

morpheus::ssd::ObjectCacheKey
unitKey(std::uint64_t begin, std::uint64_t len,
        const char *applet = "app")
{
    morpheus::ssd::ObjectCacheKey k;
    k.rawBegin = begin;
    k.rawLen = len;
    k.applet = applet;
    return k;
}

}  // namespace

TEST(ObjectCacheUnit, AdjacentRangesDoNotInvalidate)
{
    morpheus::ssd::ObjectCacheConfig cfg;
    cfg.enabled = true;
    morpheus::ssd::ObjectCache cache(cfg, 0);
    cache.insert(unitKey(4096, 4096), std::vector<std::uint8_t>(64),
                 7);
    ASSERT_EQ(cache.entries(), 1u);

    // End-exclusive, FileExtent-consistent: a write ending exactly at
    // rawBegin or starting exactly at rawBegin + rawLen only touches.
    cache.invalidateRange(1, 0, 4096);      // [..., 4096) ends at begin
    cache.invalidateRange(1, 8192, 12288);  // starts at end
    cache.invalidateRange(1, 4000, 4000);   // zero-length
    cache.invalidateRange(2, 4096, 8192);   // other namespace
    EXPECT_EQ(cache.entries(), 1u);
    EXPECT_EQ(cache.invalidations(), 0u);

    // One byte into the range from either side must drop it.
    cache.invalidateRange(1, 8191, 8192);  // last cached byte
    EXPECT_EQ(cache.entries(), 0u);
    EXPECT_EQ(cache.invalidations(), 1u);

    cache.insert(unitKey(4096, 4096), std::vector<std::uint8_t>(64),
                 7);
    cache.invalidateRange(1, 0, 4097);  // first cached byte
    EXPECT_EQ(cache.entries(), 0u);
}

TEST(ObjectCacheUnit, EvictionPolicies)
{
    using Policy = morpheus::ssd::ObjectCacheConfig::Policy;
    const std::vector<std::uint8_t> blob(100);

    // LRU: victim is the least recently *used* entry.
    {
        morpheus::ssd::ObjectCacheConfig cfg;
        cfg.enabled = true;
        cfg.budgetBytes = 250;
        cfg.policy = Policy::kLru;
        morpheus::ssd::ObjectCache c(cfg, 0);
        c.insert(unitKey(0, 10), blob, 0);
        c.insert(unitKey(100, 10), blob, 0);
        ASSERT_NE(c.lookup(unitKey(0, 10)), nullptr);  // refresh key 0
        c.insert(unitKey(200, 10), blob, 0);           // evicts key 100
        EXPECT_EQ(c.evictions(), 1u);
        EXPECT_NE(c.lookup(unitKey(0, 10)), nullptr);
        EXPECT_EQ(c.lookup(unitKey(100, 10)), nullptr);
    }
    // FIFO: victim is the oldest insert, recency is ignored.
    {
        morpheus::ssd::ObjectCacheConfig cfg;
        cfg.enabled = true;
        cfg.budgetBytes = 250;
        cfg.policy = Policy::kFifo;
        morpheus::ssd::ObjectCache c(cfg, 0);
        c.insert(unitKey(0, 10), blob, 0);
        c.insert(unitKey(100, 10), blob, 0);
        ASSERT_NE(c.lookup(unitKey(0, 10)), nullptr);  // no effect
        c.insert(unitKey(200, 10), blob, 0);           // evicts key 0
        EXPECT_EQ(c.lookup(unitKey(0, 10)), nullptr);
        EXPECT_NE(c.lookup(unitKey(100, 10)), nullptr);
    }
    // Frequency: victim is the least-hit entry.
    {
        morpheus::ssd::ObjectCacheConfig cfg;
        cfg.enabled = true;
        cfg.budgetBytes = 250;
        cfg.policy = Policy::kFrequency;
        morpheus::ssd::ObjectCache c(cfg, 0);
        c.insert(unitKey(0, 10), blob, 0);
        c.insert(unitKey(100, 10), blob, 0);
        c.lookup(unitKey(100, 10));
        c.lookup(unitKey(100, 10));
        c.lookup(unitKey(0, 10));
        c.insert(unitKey(200, 10), blob, 0);  // evicts key 0 (1 < 2)
        EXPECT_EQ(c.lookup(unitKey(0, 10)), nullptr);
        EXPECT_NE(c.lookup(unitKey(100, 10)), nullptr);
    }
}

TEST(ObjectCacheUnit, BudgetSharedWithReadaheadReservation)
{
    morpheus::ssd::ObjectCacheConfig cfg;
    cfg.enabled = true;
    cfg.budgetBytes = 1024 * 1024;

    // The readahead reservation comes off the top...
    morpheus::ssd::ObjectCache carved(cfg, 256 * 1024);
    EXPECT_EQ(carved.capacityBytes(), 768u * 1024u);
    // ...and can consume the whole budget, leaving a zero-capacity
    // cache that rejects every insert instead of double-booking DRAM.
    morpheus::ssd::ObjectCache starved(cfg, 2 * 1024 * 1024);
    EXPECT_EQ(starved.capacityBytes(), 0u);
    starved.insert(unitKey(0, 10), std::vector<std::uint8_t>(1), 0);
    EXPECT_EQ(starved.entries(), 0u);
    EXPECT_EQ(starved.rejectedTooLarge(), 1u);

    // Oversized payloads are rejected, not force-evicted through.
    morpheus::ssd::ObjectCache small(cfg, 0);
    small.insert(unitKey(0, 10),
                 std::vector<std::uint8_t>(2 * 1024 * 1024), 0);
    EXPECT_EQ(small.entries(), 0u);
    EXPECT_EQ(small.rejectedTooLarge(), 1u);
}

TEST(DeviceRuntime, ObjectCacheHitReplaysExactBytesWithoutFlash)
{
    Rig rig{cacheConfig()};
    const auto a = wk::genIntArray(51, 20000);
    sd::TextWriter w;
    a.serialize(w);
    const auto extent = rig.sys.createFile("ints", w.bytes());
    auto &cache = rig.sys.ssd().objectCache();

    // First stream: a miss that parses normally and populates.
    const auto t1 = rig.sys.allocHost(a.objectBytes());
    ASSERT_TRUE(rig.minit(1, rig.images.intArray,
                          co::DmaTarget{t1, false}, 0, 0, 0,
                          extent.sizeBytes)
                    .ok());
    const auto fin1 = rig.streamAll(1, extent);
    ASSERT_TRUE(fin1.ok());
    EXPECT_EQ(fin1.dw0, a.values.size());
    EXPECT_EQ(cache.insertions(), 1u);
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_FALSE(rig.device.takeServedFromCache(1));

    // Second stream of the same raw range: served from DRAM — the
    // flash byte counter must not move, and the delivered bytes must
    // be identical to the parsed object.
    const std::uint64_t raw_before = rig.device.rawBytesIn();
    const auto t2 = rig.sys.allocHost(a.objectBytes());
    ASSERT_TRUE(rig.minit(2, rig.images.intArray,
                          co::DmaTarget{t2, false}, 0, 0, 0,
                          extent.sizeBytes)
                    .ok());
    const auto fin2 = rig.streamAll(2, extent);
    ASSERT_TRUE(fin2.ok());
    EXPECT_EQ(fin2.dw0, a.values.size());
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(rig.device.rawBytesIn(), raw_before);
    EXPECT_TRUE(rig.device.takeServedFromCache(2));
    EXPECT_FALSE(rig.device.takeServedFromCache(2));  // consumed

    const auto bin1 = rig.sys.mem().store().readVec(
        t1, static_cast<std::size_t>(a.objectBytes()));
    const auto bin2 = rig.sys.mem().store().readVec(
        t2, static_cast<std::size_t>(a.objectBytes()));
    EXPECT_EQ(bin1, bin2);
    EXPECT_EQ(sd::IntArrayObject::fromBinary(bin2), a);
    EXPECT_EQ(rig.device.liveInstances(), 0u);
}

TEST(DeviceRuntime, ObjectCacheOverlappingWriteDropsStaleBytes)
{
    Rig rig{cacheConfig()};
    const auto a = wk::genIntArray(52, 20000);
    sd::TextWriter w;
    a.serialize(w);
    const auto extent = rig.sys.createFile("ints", w.bytes());
    auto &cache = rig.sys.ssd().objectCache();

    const auto t1 = rig.sys.allocHost(a.objectBytes());
    ASSERT_TRUE(rig.minit(1, rig.images.intArray,
                          co::DmaTarget{t1, false}, 0, 0, 0,
                          extent.sizeBytes)
                    .ok());
    ASSERT_TRUE(rig.streamAll(1, extent).ok());
    ASSERT_EQ(cache.entries(), 1u);

    // Overwrite the extent's first block with the same text, one value
    // digit flipped (past the first line, which carries the element
    // count): a standard NVMe write overlapping the cached raw range
    // (end-exclusive) must drop the entry.
    auto block = rig.sys.ssd().peekBytes(extent.startByte, 512);
    bool past_count = false;
    for (auto &b : block) {
        if (b == '\n') {
            past_count = true;
            continue;
        }
        if (past_count && b >= '0' && b <= '9') {
            b = (b == '9') ? '1' : static_cast<std::uint8_t>(b + 1);
            break;
        }
    }
    const auto src = rig.sys.allocHost(block.size());
    rig.sys.mem().store().writeVec(src, block);
    nv::Command wr;
    wr.opcode = nv::Opcode::kWrite;
    wr.prp1 = src;
    wr.slba = extent.startByte / nv::kBlockBytes;
    wr.nlb = 0;  // one block
    ASSERT_TRUE(rig.io(wr).ok());
    EXPECT_EQ(cache.entries(), 0u);
    EXPECT_EQ(cache.invalidations(), 1u);

    // Re-stream: a miss that re-parses the CURRENT flash bytes — the
    // delivered object must reflect the flipped digit, not the cached
    // pre-write object.
    const auto t2 = rig.sys.allocHost(a.objectBytes());
    ASSERT_TRUE(rig.minit(2, rig.images.intArray,
                          co::DmaTarget{t2, false}, 0, 0, 0,
                          extent.sizeBytes)
                    .ok());
    const auto fin = rig.streamAll(2, extent);
    ASSERT_TRUE(fin.ok());
    EXPECT_EQ(cache.hits(), 0u);

    const auto text = rig.sys.ssd().peekBytes(extent.startByte,
                                              extent.sizeBytes);
    sd::TextScanner s(text.data(), text.size());
    std::vector<std::int64_t> expect;
    std::int64_t v = 0;
    ASSERT_TRUE(s.nextInt64(&v));  // skip the count line
    while (expect.size() < a.values.size() && s.nextInt64(&v))
        expect.push_back(v);
    const auto bin = rig.sys.mem().store().readVec(
        t2, static_cast<std::size_t>(a.objectBytes()));
    EXPECT_EQ(sd::IntArrayObject::fromBinary(bin).values, expect);
    EXPECT_NE(expect, a.values);  // the write really changed a value
}

TEST(DeviceRuntime, ObjectCacheCrashedInstanceNeverPopulates)
{
    Rig rig{cacheConfig()};
    const auto a = wk::genIntArray(53, 20000);
    sd::TextWriter w;
    a.serialize(w);
    const auto extent = rig.sys.createFile("ints", w.bytes());
    auto &cache = rig.sys.ssd().objectCache();

    const auto t1 = rig.sys.allocHost(a.objectBytes());
    ASSERT_TRUE(rig.minit(1, rig.images.intArray,
                          co::DmaTarget{t1, false}, 0, 0, 0,
                          extent.sizeBytes)
                    .ok());
    {
        // Every processed chunk crashes the app: the first MREAD
        // poisons the instance mid-stream.
        morpheus::sim::FaultPlan plan;
        plan.crashRate = 1.0;
        morpheus::sim::FaultInjector fi(plan);
        morpheus::sim::ScopedFaultInjector scope(&fi);
        const auto cqe = rig.mread(1, extent, 0, 16 * 1024);
        EXPECT_EQ(cqe.status, nv::Status::kAppFault);
    }
    // Poisoned teardown must not insert the partial object.
    ASSERT_TRUE(rig.mdeinit(1).ok());
    EXPECT_EQ(cache.insertions(), 0u);
    EXPECT_EQ(cache.entries(), 0u);

    // A clean rerun both works and is the first insertion.
    const auto t2 = rig.sys.allocHost(a.objectBytes());
    ASSERT_TRUE(rig.minit(2, rig.images.intArray,
                          co::DmaTarget{t2, false}, 0, 0, 0,
                          extent.sizeBytes)
                    .ok());
    const auto fin = rig.streamAll(2, extent);
    ASSERT_TRUE(fin.ok());
    EXPECT_EQ(fin.dw0, a.values.size());
    EXPECT_EQ(cache.insertions(), 1u);
}

TEST(DeviceRuntime, ObjectCacheAbandonedMediaFaultNeverPopulates)
{
    Rig rig{cacheConfig()};
    const auto a = wk::genIntArray(54, 20000);
    sd::TextWriter w;
    a.serialize(w);
    const auto extent = rig.sys.createFile("ints", w.bytes());
    auto &cache = rig.sys.ssd().objectCache();

    const auto t1 = rig.sys.allocHost(a.objectBytes());
    ASSERT_TRUE(rig.minit(1, rig.images.intArray,
                          co::DmaTarget{t1, false}, 0, 0, 0,
                          extent.sizeBytes)
                    .ok());
    // First chunk parses clean; the second dies on an uncorrectable
    // flash page and the host gives up on the stream.
    const auto first = rig.mread(1, extent, 0, 16 * 1024);
    ASSERT_TRUE(first.ok());
    {
        morpheus::sim::FaultPlan plan;
        plan.mediaRate = 1.0;
        morpheus::sim::FaultInjector fi(plan);
        morpheus::sim::ScopedFaultInjector scope(&fi);
        const auto cqe =
            rig.mread(1, extent, 16 * 1024, 16 * 1024, first.postedAt);
        EXPECT_EQ(cqe.status, nv::Status::kMediaError);
    }
    // Abandoning MDEINIT sees a short stream: no insert, ever.
    ASSERT_TRUE(rig.mdeinit(1, first.postedAt + 1).ok());
    EXPECT_EQ(cache.insertions(), 0u);
    EXPECT_EQ(cache.entries(), 0u);
}

TEST(DeviceRuntime, ObjectCacheAppletReinstallInvalidates)
{
    Rig rig{cacheConfig()};
    const auto a = wk::genIntArray(55, 10000);
    sd::TextWriter w;
    a.serialize(w);
    const auto extent = rig.sys.createFile("ints", w.bytes());
    auto &cache = rig.sys.ssd().objectCache();

    const auto t1 = rig.sys.allocHost(a.objectBytes());
    ASSERT_TRUE(rig.minit(1, rig.images.intArray,
                          co::DmaTarget{t1, false}, 0, 0, 0,
                          extent.sizeBytes)
                    .ok());
    ASSERT_TRUE(rig.streamAll(1, extent).ok());
    ASSERT_EQ(cache.entries(), 1u);

    // Re-install the same applet at a new code version: retained
    // objects may embed stale semantics and must drop.
    co::StorageAppImage v2 = rig.images.intArray;
    v2.version = 2;
    const auto t2 = rig.sys.allocHost(a.objectBytes());
    ASSERT_TRUE(rig.minit(2, v2, co::DmaTarget{t2, false}, 0, 0, 0,
                          extent.sizeBytes)
                    .ok());
    EXPECT_EQ(cache.entries(), 0u);
    // And the keyed version means the new instance misses, re-parses,
    // and re-populates under its own version.
    const auto fin = rig.streamAll(2, extent);
    ASSERT_TRUE(fin.ok());
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(cache.insertions(), 2u);  // re-parse re-populated
    EXPECT_EQ(cache.entries(), 1u);
}

TEST(DeviceRuntime, ObjectCacheSharesBudgetWithPipelineReadahead)
{
    // End to end: with the streaming pipeline's readahead on, the
    // controller's cache capacity is the budget minus the readahead
    // buffer — one DRAM pool, never double-booked.
    ho::SystemConfig cfg = cacheConfig();
    cfg.ssd.pipeline.enabled = true;
    cfg.ssd.cache.budgetBytes = 1024 * 1024;
    Rig rig{cfg};
    EXPECT_EQ(rig.sys.ssd().objectCache().capacityBytes(),
              1024u * 1024u -
                  cfg.ssd.pipeline.readaheadBufferBytes);

    // Pipeline off: the cache keeps the whole budget.
    ho::SystemConfig flat = cacheConfig();
    flat.ssd.cache.budgetBytes = 1024 * 1024;
    Rig rig2{flat};
    EXPECT_EQ(rig2.sys.ssd().objectCache().capacityBytes(),
              1024u * 1024u);
}

TEST(DeviceRuntime, OverloadValveBouncesMInitPastBacklogLimit)
{
    ho::SystemConfig cfg;
    cfg.ssd.sched.overloadBacklogLimit = 64 * 1024;
    Rig rig(cfg);
    auto &sched = rig.sys.ssd().scheduler();
    const auto target = co::DmaTarget{rig.sys.allocHost(4096), false};

    // A declared stream under the limit is admitted normally.
    ASSERT_TRUE(rig.minit(1, rig.images.intArray, target, 0, 0, 0,
                          48 * 1024).ok());
    EXPECT_EQ(sched.overloadBounces(), 0u);
    EXPECT_EQ(sched.arbiter().totalDeclaredBacklog(), 48u * 1024u);

    // A second declaration that would push total backlog past the
    // limit bounces with the explicit overload status: retryable, and
    // carrying a nonzero retry-after hint in DW0.
    const auto cqe = rig.minit(2, rig.images.intArray, target, 0, 0, 0,
                               32 * 1024);
    EXPECT_EQ(cqe.status, nv::Status::kOverloaded);
    EXPECT_TRUE(nv::isRetryable(cqe.status));
    EXPECT_GT(cqe.dw0, 0u);
    EXPECT_EQ(sched.overloadBounces(), 1u);
    // The bounce must not leak arbiter or backlog state.
    EXPECT_EQ(sched.arbiter().openInstances(), 1u);
    EXPECT_EQ(sched.arbiter().totalDeclaredBacklog(), 48u * 1024u);

    // Once the first stream retires its declared backlog, the bounced
    // MINIT succeeds on resubmission — the valve is load shedding, not
    // a terminal refusal.
    ASSERT_TRUE(rig.mdeinit(1).ok());
    EXPECT_EQ(sched.arbiter().totalDeclaredBacklog(), 0u);
    ASSERT_TRUE(rig.minit(2, rig.images.intArray, target, 0, 0, 0,
                          32 * 1024).ok());
    EXPECT_EQ(sched.overloadBounces(), 1u);
    ASSERT_TRUE(rig.mdeinit(2).ok());
}
