/**
 * @file
 * Fault-injection tests: plan parsing (flag and environment forms),
 * per-class stream independence, the no-draw guarantees that keep a
 * fault-free run bit-identical, and the scoped global installation.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "sim/fault.hh"
#include "sim/stats.hh"

namespace ms = morpheus::sim;

TEST(FaultPlan, DefaultConstructedIsInactive)
{
    const ms::FaultPlan plan;
    EXPECT_FALSE(plan.active());
    EXPECT_EQ(plan.dmaMinBytes, 512u);
    EXPECT_EQ(plan.seed, 1u);
}

TEST(FaultPlan, ParsesFullSpec)
{
    const ms::FaultPlan plan = ms::FaultPlan::parse(
        "media=2e-3,dma=1e-3,crash=5e-4,hang=1e-4,drop=1e-3,"
        "dma_min=4096,watchdog_us=500,seed=7");
    EXPECT_DOUBLE_EQ(plan.mediaRate, 2e-3);
    EXPECT_DOUBLE_EQ(plan.dmaRate, 1e-3);
    EXPECT_DOUBLE_EQ(plan.crashRate, 5e-4);
    EXPECT_DOUBLE_EQ(plan.hangRate, 1e-4);
    EXPECT_DOUBLE_EQ(plan.dropRate, 1e-3);
    EXPECT_EQ(plan.dmaMinBytes, 4096u);
    EXPECT_EQ(plan.watchdogTicks, ms::Tick(500) * ms::kPsPerUs);
    EXPECT_EQ(plan.seed, 7u);
    EXPECT_TRUE(plan.active());
}

TEST(FaultPlan, ParsesPartialAndEmptySpecs)
{
    const ms::FaultPlan partial = ms::FaultPlan::parse("media=0.5");
    EXPECT_DOUBLE_EQ(partial.mediaRate, 0.5);
    EXPECT_DOUBLE_EQ(partial.dmaRate, 0.0);
    EXPECT_TRUE(partial.active());

    const ms::FaultPlan empty = ms::FaultPlan::parse("");
    EXPECT_FALSE(empty.active());

    // Stray commas are tolerated (trailing comma from shell quoting).
    const ms::FaultPlan trailing = ms::FaultPlan::parse("drop=1e-2,");
    EXPECT_DOUBLE_EQ(trailing.dropRate, 1e-2);
}

TEST(FaultPlanDeath, RejectsMalformedSpecs)
{
    EXPECT_DEATH(ms::FaultPlan::parse("bogus=1"), "unknown");
    EXPECT_DEATH(ms::FaultPlan::parse("media"), "key=value");
    EXPECT_DEATH(ms::FaultPlan::parse("media=1.5"), "out of");
    EXPECT_DEATH(ms::FaultPlan::parse("media=-0.1"), "out of");
}

TEST(FaultPlan, FromEnvReadsMorpheusFaults)
{
    ::unsetenv("MORPHEUS_FAULTS");
    EXPECT_FALSE(ms::FaultPlan::fromEnv().active());

    ::setenv("MORPHEUS_FAULTS", "media=1e-2,seed=3", 1);
    const ms::FaultPlan plan = ms::FaultPlan::fromEnv();
    EXPECT_DOUBLE_EQ(plan.mediaRate, 1e-2);
    EXPECT_EQ(plan.seed, 3u);

    ::setenv("MORPHEUS_FAULTS", "", 1);
    EXPECT_FALSE(ms::FaultPlan::fromEnv().active());
    ::unsetenv("MORPHEUS_FAULTS");
}

TEST(FaultInjector, ZeroRateNeverFires)
{
    ms::FaultPlan plan;  // all rates zero
    ms::FaultInjector fi(plan);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_FALSE(fi.mediaError());
        EXPECT_FALSE(fi.dmaFault(1 << 20));
        EXPECT_FALSE(fi.appCrash());
        EXPECT_FALSE(fi.appHang());
        EXPECT_FALSE(fi.dropCqe());
    }
    EXPECT_EQ(fi.mediaErrors(), 0u);
    EXPECT_EQ(fi.dmaFaults(), 0u);
    EXPECT_EQ(fi.appCrashes(), 0u);
    EXPECT_EQ(fi.appHangs(), 0u);
    EXPECT_EQ(fi.droppedCqes(), 0u);
}

TEST(FaultInjector, RateOneAlwaysFires)
{
    ms::FaultPlan plan;
    plan.mediaRate = 1.0;
    plan.dropRate = 1.0;
    ms::FaultInjector fi(plan);
    for (int i = 0; i < 100; ++i) {
        EXPECT_TRUE(fi.mediaError());
        EXPECT_TRUE(fi.dropCqe());
    }
    EXPECT_EQ(fi.mediaErrors(), 100u);
    EXPECT_EQ(fi.droppedCqes(), 100u);
}

TEST(FaultInjector, DeterministicInSeed)
{
    ms::FaultPlan plan;
    plan.mediaRate = 0.3;
    plan.seed = 42;
    ms::FaultInjector a(plan);
    ms::FaultInjector b(plan);
    for (int i = 0; i < 500; ++i)
        EXPECT_EQ(a.mediaError(), b.mediaError()) << "draw " << i;

    plan.seed = 43;
    ms::FaultInjector c(plan);
    ms::FaultInjector d(plan);
    bool diverged = false;
    for (int i = 0; i < 500; ++i) {
        const bool ci = c.mediaError();
        if (ci != d.mediaError())
            ADD_FAILURE() << "same-seed divergence at draw " << i;
        diverged |= ci;
    }
    EXPECT_TRUE(diverged) << "rate 0.3 never fired in 500 draws";
}

TEST(FaultInjector, ClassStreamsAreIndependent)
{
    // The media schedule at a given seed must not move when the DMA
    // class is enabled alongside it (distinct Rng streams per class).
    ms::FaultPlan media_only;
    media_only.mediaRate = 0.2;
    media_only.seed = 7;
    ms::FaultPlan both = media_only;
    both.dmaRate = 0.9;

    ms::FaultInjector a(media_only);
    ms::FaultInjector b(both);
    for (int i = 0; i < 300; ++i) {
        EXPECT_EQ(a.mediaError(), b.mediaError()) << "draw " << i;
        // Interleave DMA draws in b only: must not perturb its media
        // stream.
        (void)b.dmaFault(4096);
    }
}

TEST(FaultInjector, SmallDmaMovesAreExemptWithoutConsumingDraws)
{
    ms::FaultPlan plan;
    plan.dmaRate = 0.5;
    plan.dmaMinBytes = 512;
    plan.seed = 11;
    ms::FaultInjector a(plan);
    ms::FaultInjector b(plan);
    std::vector<bool> a_seq;
    std::vector<bool> b_seq;
    for (int i = 0; i < 200; ++i) {
        // a sees a control-path move (no draw) before every data move.
        EXPECT_FALSE(a.dmaFault(64));
        a_seq.push_back(a.dmaFault(4096));
        b_seq.push_back(b.dmaFault(4096));
    }
    EXPECT_EQ(a_seq, b_seq);
}

TEST(FaultInjector, ScopedInstallAndRestore)
{
    EXPECT_EQ(ms::faultInjector(), nullptr);
    ms::FaultPlan plan;
    plan.mediaRate = 1.0;
    ms::FaultInjector outer(plan);
    {
        ms::ScopedFaultInjector scope(&outer);
        EXPECT_EQ(ms::faultInjector(), &outer);
        ms::FaultInjector inner(plan);
        {
            ms::ScopedFaultInjector nested(&inner);
            EXPECT_EQ(ms::faultInjector(), &inner);
        }
        EXPECT_EQ(ms::faultInjector(), &outer);
    }
    EXPECT_EQ(ms::faultInjector(), nullptr);
}

TEST(FaultInjector, RegistersCountersUnderPrefix)
{
    ms::FaultPlan plan;
    plan.mediaRate = 1.0;
    ms::FaultInjector fi(plan);
    (void)fi.mediaError();
    fi.noteWatchdogKill();
    fi.noteDmaRetry();

    ms::stats::StatSet set;
    fi.registerStats(set, "faults");
    EXPECT_EQ(set.counterValue("faults.mediaErrors"), 1u);
    EXPECT_EQ(set.counterValue("faults.watchdogKills"), 1u);
    EXPECT_EQ(set.counterValue("faults.dmaRetries"), 1u);
    EXPECT_EQ(set.counterValue("faults.dmaFaults"), 0u);
    EXPECT_EQ(set.counterValue("faults.appCrashes"), 0u);
    EXPECT_EQ(set.counterValue("faults.appHangs"), 0u);
    EXPECT_EQ(set.counterValue("faults.droppedCqes"), 0u);
}
