/**
 * @file
 * Storage backend tests (the Fig 3 device comparison substrate).
 */

#include <gtest/gtest.h>

#include "host/host_system.hh"

namespace ho = morpheus::host;
namespace ms = morpheus::sim;

namespace {

std::vector<std::uint8_t>
pattern(std::size_t n)
{
    std::vector<std::uint8_t> v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i] = static_cast<std::uint8_t>(i % 251);
    return v;
}

}  // namespace

TEST(NvmeBackend, IngestThenReadDeliversBytesToHostMemory)
{
    ho::HostSystem sys;
    auto &backend = sys.ssdBackend();
    const auto data = pattern(300000);  // several MDTS chunks
    const ms::Tick ready = backend.ingest(1 << 20, data);
    EXPECT_GT(ready, 0u);

    const morpheus::pcie::Addr dst = sys.allocHost(data.size());
    const ms::Tick done =
        backend.read(1 << 20, data.size(), dst, ready);
    EXPECT_GT(done, ready);
    EXPECT_EQ(sys.mem().store().readVec(dst, data.size()), data);
}

TEST(HddBackend, SequentialReadsAvoidSeeks)
{
    ho::HostSystem sys;
    ho::HddBackend hdd(sys.mem());
    hdd.ingest(0, pattern(1 << 20));

    const morpheus::pcie::Addr dst = sys.allocHost(1 << 20);
    const ms::Tick first = hdd.read(0, 65536, dst, 0);
    // Sequential continuation: no seek, just transfer time.
    const ms::Tick second = hdd.read(65536, 65536, dst, first);
    const ms::Tick seq_cost = second - first;
    EXPECT_LT(seq_cost, hdd.seekTime);

    // Random jump: pays a seek.
    const ms::Tick third = hdd.read(0, 65536, dst, second);
    EXPECT_GE(third - second, hdd.seekTime);
}

TEST(HddBackend, ThroughputMatchesConfiguredRate)
{
    ho::HostSystem sys;
    ho::HddBackend hdd(sys.mem());
    const std::size_t mb = 1 << 20;
    hdd.ingest(0, pattern(mb));
    const morpheus::pcie::Addr dst = sys.allocHost(mb);
    const ms::Tick t0 = hdd.read(0, mb, dst, 0);
    // ~1 MiB at 158 MB/s: about 6.6 ms plus the initial seek.
    const double secs = ms::ticksToSeconds(t0);
    EXPECT_GT(secs, 0.006);
    EXPECT_LT(secs, 0.020);
}

TEST(HddBackend, DeliversCorrectData)
{
    ho::HostSystem sys;
    ho::HddBackend hdd(sys.mem());
    const auto data = pattern(100000);
    hdd.ingest(4096, data);
    const morpheus::pcie::Addr dst = sys.allocHost(data.size());
    hdd.read(4096, data.size(), dst, 0);
    EXPECT_EQ(sys.mem().store().readVec(dst, data.size()), data);
}

TEST(RamDriveBackend, IsFastAndChargesMemoryBus)
{
    ho::HostSystem sys;
    ho::RamDriveBackend ram(sys.mem());
    const std::size_t mb = 1 << 20;
    ram.ingest(0, pattern(mb));
    const auto bus_before = sys.mem().busBytesTotal();
    const morpheus::pcie::Addr dst = sys.allocHost(mb);
    const ms::Tick done = ram.read(0, mb, dst, 0);
    // 1 MiB at DDR3 speed: well under a millisecond.
    EXPECT_LT(ms::ticksToSeconds(done), 0.001);
    // The copy crossed the memory bus (read + write + landing).
    EXPECT_GE(sys.mem().busBytesTotal() - bus_before, 2 * mb);
    EXPECT_EQ(sys.mem().store().readVec(dst, mb), pattern(mb));
}

TEST(Backends, RelativeSpeedOrdering)
{
    // RAM drive < NVMe < HDD in time for a 1 MiB sequential read.
    ho::HostSystem sys;
    const std::size_t mb = 1 << 20;
    const auto data = pattern(mb);

    ho::RamDriveBackend ram(sys.mem());
    ram.ingest(0, data);
    ho::HddBackend hdd(sys.mem());
    hdd.ingest(0, data);
    auto &nvme = sys.ssdBackend();
    const ms::Tick ingest_done = nvme.ingest(0, data);

    const morpheus::pcie::Addr dst = sys.allocHost(mb);
    const ms::Tick t_ram = ram.read(0, mb, dst, 0);
    const ms::Tick t_hdd = hdd.read(0, mb, dst, 0);
    const ms::Tick t_nvme =
        nvme.read(0, mb, dst, ingest_done) - ingest_done;
    EXPECT_LT(t_ram, t_nvme);
    EXPECT_LT(t_nvme, t_hdd);
}
