/**
 * @file
 * Determinism and distribution sanity for the RNG.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/rng.hh"

namespace ms = morpheus::sim;

TEST(Rng, SameSeedSameStream)
{
    ms::Rng a(7), b(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    ms::Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowRespectsBound)
{
    ms::Rng r(3);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.nextBelow(17), 17u);
}

TEST(Rng, NextBelowCoversRange)
{
    ms::Rng r(5);
    std::vector<int> seen(8, 0);
    for (int i = 0; i < 8000; ++i)
        ++seen[r.nextBelow(8)];
    for (const int c : seen)
        EXPECT_GT(c, 700);  // each bucket near 1000
}

TEST(Rng, NextInRangeInclusive)
{
    ms::Rng r(11);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        const auto v = r.nextInRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= (v == -3);
        saw_hi |= (v == 3);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval)
{
    ms::Rng r(13);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double v = r.nextDouble();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, GaussianMoments)
{
    ms::Rng r(17);
    double sum = 0.0, sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double v = r.nextGaussian(10.0, 2.0);
        sum += v;
        sq += v * v;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 10.0, 0.1);
    EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Rng, ReseedRestartsStream)
{
    ms::Rng r(23);
    const auto first = r.next();
    r.next();
    r.reseed(23);
    EXPECT_EQ(r.next(), first);
}
