/**
 * @file
 * End-to-end integration tests of the experiment harness: all three
 * execution modes validate functionally, and the headline qualitative
 * results of the paper hold (Morpheus speeds up deserialization,
 * reduces context switches and memory-bus traffic, P2P removes the
 * GPU copy).
 */

#include <gtest/gtest.h>

#include "workloads/runner.hh"

namespace wk = morpheus::workloads;

namespace {

wk::RunOptions
opts(wk::ExecutionMode mode, double scale = 0.05)
{
    wk::RunOptions o;
    o.mode = mode;
    o.scale = scale;
    return o;
}

}  // namespace

TEST(Runner, BaselineValidatesOnSerialApp)
{
    const auto m = wk::runWorkload(
        wk::findApp("spmv"), opts(wk::ExecutionMode::kBaseline));
    EXPECT_TRUE(m.validated);
    EXPECT_GT(m.deserTime, 0u);
    EXPECT_GT(m.kernelTime, 0u);
    EXPECT_GT(m.totalTime, m.deserTime);
    EXPECT_GT(m.rawTextBytes, 0u);
    EXPECT_GT(m.objectBytesProduced, 0u);
}

TEST(Runner, MorpheusValidatesOnSerialApp)
{
    const auto m = wk::runWorkload(
        wk::findApp("spmv"), opts(wk::ExecutionMode::kMorpheus));
    EXPECT_TRUE(m.validated);
}

TEST(Runner, MorpheusValidatesOnMpiApp)
{
    const auto m = wk::runWorkload(
        wk::findApp("pagerank"), opts(wk::ExecutionMode::kMorpheus));
    EXPECT_TRUE(m.validated);
}

TEST(Runner, BaselineValidatesOnMpiApp)
{
    const auto m = wk::runWorkload(
        wk::findApp("pagerank"), opts(wk::ExecutionMode::kBaseline));
    EXPECT_TRUE(m.validated);
}

TEST(Runner, AllModesAgreeOnKernelChecksum)
{
    const auto &app = wk::findApp("bfs");
    const auto base =
        wk::runWorkload(app, opts(wk::ExecutionMode::kBaseline));
    const auto morph =
        wk::runWorkload(app, opts(wk::ExecutionMode::kMorpheus));
    const auto p2p =
        wk::runWorkload(app, opts(wk::ExecutionMode::kMorpheusP2p));
    EXPECT_TRUE(base.validated);
    EXPECT_TRUE(morph.validated);
    EXPECT_TRUE(p2p.validated);
    EXPECT_EQ(base.kernelChecksum, morph.kernelChecksum);
    EXPECT_EQ(base.kernelChecksum, p2p.kernelChecksum);
}

TEST(Runner, MorpheusSpeedsUpDeserialization)
{
    const auto &app = wk::findApp("hybridsort");
    const auto base =
        wk::runWorkload(app, opts(wk::ExecutionMode::kBaseline, 0.1));
    const auto morph =
        wk::runWorkload(app, opts(wk::ExecutionMode::kMorpheus, 0.1));
    EXPECT_LT(morph.deserTime, base.deserTime);
}

TEST(Runner, MorpheusCutsContextSwitches)
{
    const auto &app = wk::findApp("hybridsort");
    const auto base =
        wk::runWorkload(app, opts(wk::ExecutionMode::kBaseline, 0.1));
    const auto morph =
        wk::runWorkload(app, opts(wk::ExecutionMode::kMorpheus, 0.1));
    EXPECT_LT(morph.contextSwitchesDeser,
              base.contextSwitchesDeser / 10);
}

TEST(Runner, MorpheusCutsMemoryBusTraffic)
{
    const auto &app = wk::findApp("pagerank");
    const auto base =
        wk::runWorkload(app, opts(wk::ExecutionMode::kBaseline, 0.1));
    const auto morph =
        wk::runWorkload(app, opts(wk::ExecutionMode::kMorpheus, 0.1));
    EXPECT_LT(morph.membusBytesDeser, base.membusBytesDeser / 2);
}

TEST(Runner, P2pMovesBytesAndRemovesGpuCopy)
{
    const auto &app = wk::findApp("kmeans");
    const auto morph =
        wk::runWorkload(app, opts(wk::ExecutionMode::kMorpheus, 0.1));
    const auto p2p =
        wk::runWorkload(app, opts(wk::ExecutionMode::kMorpheusP2p, 0.1));
    EXPECT_GT(morph.gpuCopyTime, 0u);
    EXPECT_EQ(p2p.gpuCopyTime, 0u);
    EXPECT_GT(p2p.p2pBytes, 0u);
    EXPECT_EQ(morph.p2pBytes, 0u);
    EXPECT_LE(p2p.totalTime, morph.totalTime);
}

TEST(Runner, UnderclockedCpuSlowsBaselineDeserMore)
{
    const auto &app = wk::findApp("conncomp");
    auto fast = opts(wk::ExecutionMode::kBaseline, 0.1);
    fast.cpuFreqHz = 2.5e9;
    auto slow = opts(wk::ExecutionMode::kBaseline, 0.1);
    slow.cpuFreqHz = 1.2e9;
    const auto mf = wk::runWorkload(app, fast);
    const auto msl = wk::runWorkload(app, slow);
    // CPU-bound deserialization: slower clock, much slower phase.
    EXPECT_GT(msl.deserTime, mf.deserTime * 3 / 2);
}

TEST(Runner, HddBaselineSlowerThanNvme)
{
    const auto &app = wk::findApp("spmv");
    auto nvme = opts(wk::ExecutionMode::kBaseline, 0.1);
    auto hdd = nvme;
    hdd.backend = wk::BackendKind::kHdd;
    const auto mn = wk::runWorkload(app, nvme);
    const auto mh = wk::runWorkload(app, hdd);
    EXPECT_TRUE(mh.validated);
    EXPECT_GE(mh.deserTime, mn.deserTime);
}

TEST(Runner, RamDriveBaselineNoFasterThanNvmeByMuch)
{
    // Fig 3's claim: deserialization is CPU bound, so the RAM drive
    // barely beats the NVMe SSD.
    const auto &app = wk::findApp("nn");
    auto nvme = opts(wk::ExecutionMode::kBaseline, 0.1);
    auto ram = nvme;
    ram.backend = wk::BackendKind::kRamDrive;
    const auto mn = wk::runWorkload(app, nvme);
    const auto mr = wk::runWorkload(app, ram);
    EXPECT_TRUE(mr.validated);
    EXPECT_GT(static_cast<double>(mr.deserTime),
              0.7 * static_cast<double>(mn.deserTime));
}

TEST(Runner, DeterministicAcrossRepeatedRuns)
{
    const auto &app = wk::findApp("spmv");
    const auto a =
        wk::runWorkload(app, opts(wk::ExecutionMode::kMorpheus));
    const auto b =
        wk::runWorkload(app, opts(wk::ExecutionMode::kMorpheus));
    EXPECT_EQ(a.deserTime, b.deserTime);
    EXPECT_EQ(a.totalTime, b.totalTime);
    EXPECT_EQ(a.kernelChecksum, b.kernelChecksum);
    EXPECT_EQ(a.contextSwitchesDeser, b.contextSwitchesDeser);
}

TEST(Runner, SpeedupIsScaleInvariant)
{
    // The claim EXPERIMENTS.md rests on: ratios do not depend on the
    // generated input size.
    const auto &app = wk::findApp("hybridsort");
    auto ratio = [&](double scale) {
        auto b = opts(wk::ExecutionMode::kBaseline, scale);
        auto m = opts(wk::ExecutionMode::kMorpheus, scale);
        const double tb = static_cast<double>(
            wk::runWorkload(app, b).deserTime);
        const double tm = static_cast<double>(
            wk::runWorkload(app, m).deserTime);
        return tb / tm;
    };
    const double small = ratio(0.1);
    const double large = ratio(0.4);
    EXPECT_NEAR(small / large, 1.0, 0.15);
}

TEST(Runner, ChunkBlocksOptionControlsMreadCount)
{
    const auto &app = wk::findApp("spmv");
    auto run = [&](std::uint32_t blocks) {
        auto o = opts(wk::ExecutionMode::kMorpheus, 0.1);
        o.chunkBlocks = blocks;
        o.collectStats = true;
        return wk::runWorkload(app, o);
    };
    const auto coarse = run(256);
    const auto fine = run(32);
    EXPECT_TRUE(coarse.validated);
    EXPECT_TRUE(fine.validated);
    // 8x smaller chunks -> ~8x more MREAD commands visible in the
    // device counters.
    EXPECT_FALSE(coarse.statsReport.empty());
}

TEST(Runner, CollectStatsProducesComponentCounters)
{
    auto o = opts(wk::ExecutionMode::kMorpheus, 0.05);
    o.collectStats = true;
    const auto m = wk::runWorkload(wk::findApp("spmv"), o);
    EXPECT_NE(m.statsReport.find("ssd.morpheusCommands"),
              std::string::npos);
    EXPECT_NE(m.statsReport.find("ssd.flash.reads"),
              std::string::npos);
    EXPECT_NE(m.statsReport.find("host.os.contextSwitches"),
              std::string::npos);
}

TEST(Runner, BaselineCpuLoadHigherThanMorpheus)
{
    const auto &app = wk::findApp("nn");
    const auto b = wk::runWorkload(
        app, opts(wk::ExecutionMode::kBaseline, 0.1));
    const auto m = wk::runWorkload(
        app, opts(wk::ExecutionMode::kMorpheus, 0.1));
    EXPECT_GT(b.cpuBusyCoresDeser, 0.5);
    EXPECT_LT(m.cpuBusyCoresDeser, 0.1);
}

TEST(Runner, DifferentSeedsDifferentChecksumsSameValidation)
{
    // (hybridsort: its digest covers the sorted values, so any change
    // in the generated input changes the checksum.)
    const auto &app = wk::findApp("hybridsort");
    auto o1 = opts(wk::ExecutionMode::kMorpheus, 0.05);
    auto o2 = o1;
    o2.seed = 4242;
    const auto a = wk::runWorkload(app, o1);
    const auto b = wk::runWorkload(app, o2);
    EXPECT_TRUE(a.validated);
    EXPECT_TRUE(b.validated);
    EXPECT_NE(a.kernelChecksum, b.kernelChecksum);
}
