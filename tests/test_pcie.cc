/**
 * @file
 * PCIe fabric tests: link bandwidth, BAR routing, P2P paths, and
 * functional DMA through BusTargets.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "pcie/pcie.hh"

namespace pc = morpheus::pcie;
namespace ms = morpheus::sim;

namespace {

/** Trivial BusTarget backed by a vector. */
class VecTarget : public pc::BusTarget
{
  public:
    explicit VecTarget(std::size_t n) : _mem(n, 0) {}

    void
    busWrite(pc::Addr off, const std::uint8_t *data,
             std::size_t n) override
    {
        std::copy(data, data + n, _mem.begin() + off);
    }

    void
    busRead(pc::Addr off, std::uint8_t *out,
            std::size_t n) const override
    {
        std::copy(_mem.begin() + off, _mem.begin() + off + n, out);
    }

    std::vector<std::uint8_t> _mem;
};

struct Fabric
{
    pc::PcieSwitch sw;
    pc::PortId host, ssd, gpu;
    VecTarget host_mem{1 << 20};
    VecTarget gpu_mem{1 << 20};

    Fabric()
    {
        host = sw.addPort("host", pc::LinkConfig{3, 16});
        ssd = sw.addPort("ssd", pc::LinkConfig{3, 4});
        gpu = sw.addPort("gpu", pc::LinkConfig{3, 16});
        sw.mapWindow(0, 1 << 20, host, "host-dram", &host_mem);
        sw.mapWindow(1ULL << 32, 1 << 20, gpu, "gpu-bar", &gpu_mem);
    }
};

}  // namespace

TEST(LinkConfig, BandwidthByGeneration)
{
    const pc::LinkConfig g1{1, 4}, g2{2, 4}, g3x4{3, 4}, g3x16{3, 16},
        g4{4, 4};
    EXPECT_NEAR(g3x4.bytesPerSec(), 4 * 985e6, 1e6);
    EXPECT_NEAR(g3x16.bytesPerSec(), 16 * 985e6, 1e7);
    EXPECT_GT(g4.bytesPerSec(), g3x4.bytesPerSec());
    EXPECT_GT(g2.bytesPerSec(), g1.bytesPerSec());
}

TEST(PcieLink, TransferTimeMatchesBandwidth)
{
    pc::LinkConfig cfg{3, 4};
    pc::PcieLink link("l", cfg);
    const std::uint64_t mb = 1000000;
    const ms::Tick done = link.sendToSwitch(mb, 0);
    const ms::Tick expect =
        ms::transferTicks(mb, cfg.bytesPerSec()) + cfg.latency;
    EXPECT_EQ(done, expect);
    EXPECT_EQ(link.bytesToSwitch(), mb);
}

TEST(PcieLink, DirectionsAreIndependent)
{
    pc::PcieLink link("l", pc::LinkConfig{3, 4});
    const ms::Tick up = link.sendToSwitch(1000000, 0);
    const ms::Tick down = link.sendToDevice(1000000, 0);
    // Full duplex: both start at 0.
    EXPECT_EQ(up, down);
}

TEST(PcieSwitch, RoutesByWindow)
{
    Fabric f;
    EXPECT_EQ(f.sw.routeAddr(0x1000), f.host);
    EXPECT_EQ(f.sw.routeAddr((1ULL << 32) + 5), f.gpu);
    EXPECT_TRUE(f.sw.isMapped(0));
    EXPECT_FALSE(f.sw.isMapped(1ULL << 40));
}

TEST(PcieSwitchDeath, UnmappedAddressIsFatal)
{
    Fabric f;
    EXPECT_DEATH(f.sw.routeAddr(1ULL << 40), "no BAR window");
}

TEST(PcieSwitchDeath, OverlappingWindowsPanic)
{
    Fabric f;
    EXPECT_DEATH(
        f.sw.mapWindow(100, 64, f.gpu, "overlap", &f.gpu_mem),
        "overlap");
}

TEST(PcieSwitch, UnmapThenRemapWorks)
{
    Fabric f;
    f.sw.unmapWindow(1ULL << 32);
    EXPECT_FALSE(f.sw.isMapped(1ULL << 32));
    f.sw.mapWindow(1ULL << 32, 1 << 20, f.gpu, "gpu-bar2", &f.gpu_mem);
    EXPECT_TRUE(f.sw.isMapped(1ULL << 32));
}

TEST(PcieSwitch, DmaWriteDeliversBytes)
{
    Fabric f;
    const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
    f.sw.dmaWriteData(f.ssd, 0x100, payload.data(), payload.size(), 0);
    EXPECT_EQ(f.host_mem._mem[0x100], 1);
    EXPECT_EQ(f.host_mem._mem[0x104], 5);
    EXPECT_EQ(f.sw.fabricBytes(), payload.size());
}

TEST(PcieSwitch, P2pBypassesHostLink)
{
    Fabric f;
    const std::vector<std::uint8_t> payload(4096, 0xAB);
    f.sw.dmaWriteData(f.ssd, (1ULL << 32) + 64, payload.data(),
                      payload.size(), 0);
    // SSD -> GPU: host link untouched.
    EXPECT_EQ(f.sw.link(f.host).totalBytes(), 0u);
    EXPECT_EQ(f.sw.link(f.ssd).bytesToSwitch(), payload.size());
    EXPECT_EQ(f.sw.link(f.gpu).bytesToDevice(), payload.size());
    EXPECT_EQ(f.sw.p2pBytes(), payload.size());
    EXPECT_EQ(f.gpu_mem._mem[64], 0xAB);
}

TEST(PcieSwitch, HostBoundDmaIsNotP2p)
{
    Fabric f;
    const std::vector<std::uint8_t> payload(128, 1);
    f.sw.dmaWriteData(f.ssd, 0, payload.data(), payload.size(), 0);
    EXPECT_EQ(f.sw.p2pBytes(), 0u);
}

TEST(PcieSwitch, SlowerLinkBoundsTransferTime)
{
    Fabric f;
    const std::uint64_t bytes = 10000000;  // 10 MB
    const ms::Tick done = f.sw.dmaWrite(f.ssd, 0x0, bytes, 0);
    // Bounded by the x4 SSD link, not the x16 host link.
    const pc::LinkConfig x4{3, 4};
    const ms::Tick x4_time = ms::transferTicks(bytes, x4.bytesPerSec());
    EXPECT_GE(done, x4_time);
}

TEST(PcieSwitch, DmaReadFetchesBytes)
{
    Fabric f;
    f.host_mem._mem[0x200] = 0x5A;
    std::uint8_t out[4] = {};
    f.sw.dmaReadData(f.ssd, 0x200, out, 4, 0);
    EXPECT_EQ(out[0], 0x5A);
}

TEST(PcieSwitch, ZeroByteDmaIsFree)
{
    Fabric f;
    EXPECT_EQ(f.sw.dmaWrite(f.ssd, 0, 0, 123), 123u);
    EXPECT_EQ(f.sw.fabricBytes(), 0u);
}

TEST(PcieLink, SameDirectionTransfersSerialize)
{
    pc::LinkConfig cfg{3, 4};
    pc::PcieLink link("l", cfg);
    const std::uint64_t mb = 1000000;
    const ms::Tick first = link.sendToSwitch(mb, 0);
    const ms::Tick second = link.sendToSwitch(mb, 0);
    // Two payloads cannot share the wire: the second finishes one
    // transfer-time later.
    EXPECT_NEAR(static_cast<double>(second),
                static_cast<double>(first) +
                    static_cast<double>(
                        ms::transferTicks(mb, cfg.bytesPerSec())),
                static_cast<double>(cfg.latency));
}

TEST(PcieSwitch, ConcurrentDmasToDistinctPortsOverlap)
{
    Fabric f;
    const std::uint64_t mb = 4000000;
    // SSD -> host and host -> GPU use disjoint link directions.
    const ms::Tick a = f.sw.dmaWrite(f.ssd, 0x0, mb, 0);
    const ms::Tick b = f.sw.dmaWrite(f.host, (1ULL << 32), mb, 0);
    // b is not queued behind a (different links).
    EXPECT_LT(b, a + ms::transferTicks(mb, 1e9));
}

namespace {

/** A fleet-shaped fabric: host + four SSD endpoints, each SSD with a
 *  BAR window (the shard fabric's CMB layout). */
struct FleetFabric
{
    pc::PcieSwitch sw;
    pc::PortId host;
    std::vector<pc::PortId> ssds;
    VecTarget host_mem{1 << 20};
    std::vector<std::unique_ptr<VecTarget>> cmbs;

    static constexpr pc::Addr kBar = 1ULL << 40;
    static constexpr std::uint64_t kBarStride = 1 << 20;

    FleetFabric()
    {
        host = sw.addPort("host", pc::LinkConfig{3, 16});
        for (unsigned d = 0; d < 4; ++d) {
            ssds.push_back(sw.addPort("ssd" + std::to_string(d),
                                      pc::LinkConfig{3, 4}));
            cmbs.push_back(std::make_unique<VecTarget>(1 << 20));
        }
        sw.mapWindow(0, 1 << 20, host, "host-dram", &host_mem);
        for (unsigned d = 0; d < 4; ++d) {
            sw.mapWindow(kBar + d * kBarStride, kBarStride, ssds[d],
                         "ssd" + std::to_string(d) + "-cmb",
                         cmbs[d].get());
        }
    }
};

}  // namespace

TEST(PcieFleet, BarWindowsRouteToDistinctDevices)
{
    FleetFabric f;
    for (unsigned d = 0; d < 4; ++d) {
        EXPECT_EQ(f.sw.routeAddr(FleetFabric::kBar +
                                 d * FleetFabric::kBarStride + 0x40),
                  f.ssds[d]);
    }
    EXPECT_EQ(f.sw.routeAddr(0x100), f.host);
}

TEST(PcieFleet, ConcurrentUplinksOverlapOnWideHostLink)
{
    FleetFabric f;
    const std::uint64_t mb = 4000000;
    const ms::Tick alone = f.sw.dmaWrite(f.ssds[0], 0x0, mb, 0);

    FleetFabric g;
    const ms::Tick a = g.sw.dmaWrite(g.ssds[0], 0x0, mb, 0);
    const ms::Tick b = g.sw.dmaWrite(g.ssds[1], 0x1000, mb, 0);
    // Each SSD pushed its payload up its own x4 link; the x16 host
    // link absorbs both streams, so neither transfer is delayed by
    // the other — the overlap fleet scaling relies on.
    EXPECT_EQ(g.sw.link(g.ssds[0]).bytesToSwitch(), mb);
    EXPECT_EQ(g.sw.link(g.ssds[1]).bytesToSwitch(), mb);
    EXPECT_EQ(a, alone);
    EXPECT_EQ(b, alone);
    EXPECT_EQ(g.sw.link(g.host).bytesToDevice(), 2 * mb);
}

TEST(PcieFleet, NarrowHostLinkSerializesConcurrentUplinks)
{
    // Same two concurrent SSD -> host streams, but the host port is
    // only x4: aggregate demand exceeds the shared hop, so the second
    // transfer finishes later than it would alone.
    const std::uint64_t mb = 4000000;
    VecTarget dram{1 << 20};
    const auto build = [&dram](pc::PcieSwitch &sw,
                               std::vector<pc::PortId> &ssds) {
        const pc::PortId host =
            sw.addPort("host", pc::LinkConfig{3, 4});
        for (unsigned d = 0; d < 2; ++d)
            ssds.push_back(sw.addPort("ssd" + std::to_string(d),
                                      pc::LinkConfig{3, 4}));
        sw.mapWindow(0, 1 << 20, host, "host-dram", &dram);
        return host;
    };

    pc::PcieSwitch solo;
    std::vector<pc::PortId> solo_ssds;
    build(solo, solo_ssds);
    const ms::Tick alone = solo.dmaWrite(solo_ssds[0], 0x0, mb, 0);

    pc::PcieSwitch sw;
    std::vector<pc::PortId> ssds;
    const pc::PortId host = build(sw, ssds);
    const ms::Tick a = sw.dmaWrite(ssds[0], 0x0, mb, 0);
    const ms::Tick b = sw.dmaWrite(ssds[1], 0x1000, mb, 0);
    EXPECT_EQ(a, alone);
    EXPECT_GT(b, alone);
    EXPECT_EQ(sw.link(host).bytesToDevice(), 2 * mb);
}

TEST(PcieFleet, SsdToSsdDmaIsP2pAndSkipsHostLink)
{
    FleetFabric f;
    const std::vector<std::uint8_t> payload(8192, 0xC3);
    f.sw.dmaWriteData(f.ssds[2],
                      FleetFabric::kBar + 3 * FleetFabric::kBarStride,
                      payload.data(), payload.size(), 0);
    EXPECT_EQ(f.sw.link(f.host).totalBytes(), 0u);
    EXPECT_EQ(f.sw.p2pBytes(), payload.size());
    EXPECT_EQ(f.cmbs[3]->_mem[0], 0xC3);
    EXPECT_EQ(f.cmbs[2]->_mem[0], 0);
}

TEST(PcieFleet, FanOutContentionAccountsAllPorts)
{
    FleetFabric f;
    const std::uint64_t chunk = 1000000;
    // Host scatters one chunk to every SSD BAR: the host uplink
    // serializes the four sends; each SSD downlink sees one chunk.
    ms::Tick last = 0;
    for (unsigned d = 0; d < 4; ++d) {
        last = std::max(
            last, f.sw.dmaWrite(f.host,
                                FleetFabric::kBar +
                                    d * FleetFabric::kBarStride,
                                chunk, 0));
    }
    EXPECT_EQ(f.sw.link(f.host).bytesToSwitch(), 4 * chunk);
    for (unsigned d = 0; d < 4; ++d)
        EXPECT_EQ(f.sw.link(f.ssds[d]).bytesToDevice(), chunk);
    // The four serialized host-uplink sends bound the finish time.
    const pc::LinkConfig x16{3, 16};
    EXPECT_GE(last, 4 * ms::transferTicks(chunk, x16.bytesPerSec()));
    EXPECT_EQ(f.sw.fabricBytes(), 4 * chunk);
}
