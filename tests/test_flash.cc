/**
 * @file
 * NAND flash array tests: functional storage, NAND rules, timing.
 */

#include <gtest/gtest.h>

#include <vector>

#include "flash/flash_array.hh"

namespace fl = morpheus::flash;
namespace ms = morpheus::sim;

namespace {

fl::FlashConfig
smallConfig()
{
    fl::FlashConfig cfg;
    cfg.channels = 2;
    cfg.diesPerChannel = 2;
    cfg.planesPerDie = 1;
    cfg.blocksPerPlane = 8;
    cfg.pagesPerBlock = 4;
    cfg.pageBytes = 512;
    return cfg;
}

std::vector<std::uint8_t>
pattern(std::uint8_t seed, std::size_t n)
{
    std::vector<std::uint8_t> v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i] = static_cast<std::uint8_t>(seed + i);
    return v;
}

}  // namespace

TEST(FlashConfig, GeometryArithmetic)
{
    const auto cfg = smallConfig();
    EXPECT_EQ(cfg.dies(), 4u);
    EXPECT_EQ(cfg.planes(), 4u);
    EXPECT_EQ(cfg.blocks(), 32u);
    EXPECT_EQ(cfg.pages(), 128u);
    EXPECT_EQ(cfg.capacityBytes(), 128u * 512u);
}

TEST(FlashArray, ProgramThenReadReturnsData)
{
    ms::EventQueue eq;
    fl::FlashArray flash(eq, smallConfig());
    const fl::PagePointer p{0, 0, 0, 0, 0};
    const auto data = pattern(7, 512);
    flash.program(p, data, 0);
    ASSERT_TRUE(flash.isProgrammed(p));

    bool called = false;
    flash.read(p, 0, [&](ms::Tick when, std::vector<std::uint8_t> d) {
        called = true;
        EXPECT_GT(when, 0u);
        EXPECT_EQ(d, pattern(7, 512));
    });
    eq.run();
    EXPECT_TRUE(called);
}

TEST(FlashArray, ReadTimingIncludesTrAndChannel)
{
    ms::EventQueue eq;
    const auto cfg = smallConfig();
    fl::FlashArray flash(eq, cfg);
    const fl::PagePointer p{0, 0, 0, 0, 0};
    flash.program(p, pattern(1, 16), 0);
    const ms::Tick prog_done = flash.program({0, 0, 0, 0, 1},
                                             pattern(2, 16), 0);
    const ms::Tick done = flash.read(p, prog_done);
    const ms::Tick xfer =
        ms::transferTicks(cfg.pageBytes, cfg.channelBytesPerSec);
    EXPECT_GE(done, prog_done + cfg.readLatency + xfer);
}

TEST(FlashArrayDeath, ReadingUnprogrammedPagePanics)
{
    ms::EventQueue eq;
    fl::FlashArray flash(eq, smallConfig());
    EXPECT_DEATH(flash.read({0, 0, 0, 0, 0}, 0), "unprogrammed");
}

TEST(FlashArrayDeath, ProgramTwiceWithoutErasePanics)
{
    ms::EventQueue eq;
    fl::FlashArray flash(eq, smallConfig());
    const fl::PagePointer p{0, 0, 0, 0, 0};
    flash.program(p, pattern(1, 8), 0);
    EXPECT_DEATH(flash.program(p, pattern(2, 8), 0), "write-once");
}

TEST(FlashArrayDeath, OutOfOrderProgramPanics)
{
    ms::EventQueue eq;
    fl::FlashArray flash(eq, smallConfig());
    // Page 1 before page 0 violates in-order programming.
    EXPECT_DEATH(flash.program({0, 0, 0, 0, 1}, pattern(1, 8), 0),
                 "out-of-order");
}

TEST(FlashArray, EraseAllowsReprogramming)
{
    ms::EventQueue eq;
    fl::FlashArray flash(eq, smallConfig());
    const fl::BlockPointer blk{0, 0, 0, 0};
    flash.program(blk.pageAt(0), pattern(1, 8), 0);
    flash.program(blk.pageAt(1), pattern(2, 8), 0);
    flash.erase(blk, 0);
    EXPECT_FALSE(flash.isProgrammed(blk.pageAt(0)));
    EXPECT_EQ(flash.eraseCount(blk), 1u);
    flash.program(blk.pageAt(0), pattern(3, 8), 0);
    EXPECT_EQ(flash.peek(blk.pageAt(0))[0], 3);
}

TEST(FlashArray, DiesOperateInParallel)
{
    ms::EventQueue eq;
    const auto cfg = smallConfig();
    fl::FlashArray flash(eq, cfg);
    // Program one page on two different dies: programs overlap, so the
    // completion of the second is far less than 2x tPROG.
    const ms::Tick d0 =
        flash.program({0, 0, 0, 0, 0}, pattern(1, 16), 0);
    const ms::Tick d1 =
        flash.program({0, 1, 0, 0, 0}, pattern(2, 16), 0);
    EXPECT_LT(d1, d0 + cfg.programLatency);
}

TEST(FlashArray, SameDieOperationsSerialize)
{
    ms::EventQueue eq;
    const auto cfg = smallConfig();
    fl::FlashArray flash(eq, cfg);
    const ms::Tick d0 =
        flash.program({0, 0, 0, 0, 0}, pattern(1, 16), 0);
    const ms::Tick d1 =
        flash.program({0, 0, 0, 0, 1}, pattern(2, 16), 0);
    EXPECT_GE(d1, d0 + cfg.programLatency);
}

TEST(FlashArray, StatsCountOperations)
{
    ms::EventQueue eq;
    fl::FlashArray flash(eq, smallConfig());
    flash.program({0, 0, 0, 0, 0}, pattern(1, 16), 0);
    flash.read({0, 0, 0, 0, 0}, 0);
    flash.erase({0, 0, 0, 0}, 0);
    EXPECT_EQ(flash.programsIssued().value(), 1u);
    EXPECT_EQ(flash.readsIssued().value(), 1u);
    EXPECT_EQ(flash.erasesIssued().value(), 1u);
}

TEST(FlashArray, EstimateMatchesActualReadCompletion)
{
    ms::EventQueue eq;
    fl::FlashArray flash(eq, smallConfig());
    const fl::PagePointer p{1, 1, 0, 2, 0};
    flash.program(p, pattern(9, 32), 0);
    const ms::Tick est = flash.estimateReadDone(p, 1000000);
    const ms::Tick act = flash.read(p, 1000000);
    EXPECT_EQ(est, act);
}
