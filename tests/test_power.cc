/**
 * @file
 * Power/energy model tests.
 */

#include <gtest/gtest.h>

#include "host/power_model.hh"

namespace ho = morpheus::host;
namespace ms = morpheus::sim;

TEST(PowerModel, IdleSystemDrawsIdlePower)
{
    ho::PowerModel p(ho::PowerConfig{});
    EXPECT_DOUBLE_EQ(p.systemWatts(ho::PhaseActivity{}),
                     p.config().idleWatts);
}

TEST(PowerModel, ComponentsAddLinearly)
{
    ho::PowerConfig cfg;
    ho::PowerModel p(cfg);
    ho::PhaseActivity act;
    act.cpuCoresParsing = 2.0;
    act.ssdIoActive = 1.0;
    act.ssdCoresActive = 3.0;
    EXPECT_DOUBLE_EQ(p.systemWatts(act),
                     cfg.idleWatts + 2 * cfg.cpuCoreActiveWatts +
                         cfg.ssdIoWatts + 3 * cfg.ssdCoreActiveWatts);
}

TEST(PowerModel, MorpheusStyleActivityDrawsLessThanBaselineStyle)
{
    // The Fig 9 structure: host cores parsing vs embedded cores.
    ho::PowerModel p(ho::PowerConfig{});
    ho::PhaseActivity baseline;
    baseline.cpuCoresParsing = 1.0;
    baseline.ssdIoActive = 0.5;
    baseline.dramStreaming = 1.0;
    ho::PhaseActivity morpheus;
    morpheus.ssdIoActive = 0.8;
    morpheus.ssdCoresActive = 1.0;
    morpheus.cpuCoresParsing = 0.05;  // occasional wakeups
    EXPECT_GT(p.systemWatts(baseline), p.systemWatts(morpheus));
}

TEST(PowerModel, EnergyIntegratesPowerOverTime)
{
    ho::PowerModel p(ho::PowerConfig{});
    ho::PhaseActivity act;
    act.gpuActive = 1.0;
    const double watts = p.systemWatts(act);
    const double joules = p.energyJoules(act, ms::kPsPerSec);
    EXPECT_DOUBLE_EQ(joules, watts);
    EXPECT_DOUBLE_EQ(p.energyJoules(act, ms::kPsPerMs), watts / 1000.0);
}

TEST(PowerModel, EnergyCanDropEvenWhenPowerIsClose)
{
    // Morpheus saves more energy than power because it also finishes
    // sooner (paper: -7% power but -42% energy).
    ho::PowerModel p(ho::PowerConfig{});
    ho::PhaseActivity baseline;
    baseline.cpuCoresParsing = 1.0;
    ho::PhaseActivity morpheus;
    morpheus.ssdCoresActive = 1.0;

    const double e_base =
        p.energyJoules(baseline, 166 * ms::kPsPerMs);
    const double e_morph =
        p.energyJoules(morpheus, 100 * ms::kPsPerMs);
    const double power_ratio = p.systemWatts(morpheus) /
                               p.systemWatts(baseline);
    const double energy_ratio = e_morph / e_base;
    EXPECT_LT(energy_ratio, power_ratio);
    EXPECT_LT(energy_ratio, 0.7);
}
