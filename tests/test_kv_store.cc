/**
 * @file
 * In-storage key-value filtering tests (the paper's §III extension):
 * table round trips, bucket-range semantics, chunk-size invariance,
 * and the end-to-end traffic property (only matches cross PCIe).
 */

#include <gtest/gtest.h>

#include "core/host_runtime.hh"
#include "core/kv_store.hh"
#include "host/host_system.hh"
#include "serde/scanner.hh"
#include "serde/writer.hh"

namespace co = morpheus::core;
namespace ho = morpheus::host;
namespace sd = morpheus::serde;

namespace {

/** Feed the table text to an app in chunks; collect the pair stream. */
std::vector<std::uint8_t>
runFilter(const co::KvTable &table, std::uint32_t arg,
          std::size_t chunk_size)
{
    sd::TextWriter w;
    table.serialize(w);
    co::KvRangeEmitApp app(arg);
    co::MsChunkContext ctx(256 * 1024, 16 * 1024, arg);
    std::vector<std::uint8_t> out;
    auto drain = [&] {
        for (auto &seg : ctx.takeFlushes())
            out.insert(out.end(), seg.begin(), seg.end());
    };
    const auto &text = w.bytes();
    std::size_t pos = 0;
    while (pos < text.size()) {
        const std::size_t take =
            std::min(chunk_size, text.size() - pos);
        ctx.feedChunk(std::vector<std::uint8_t>(
            text.begin() + pos, text.begin() + pos + take));
        pos += take;
        app.processChunk(ctx);
        drain();
    }
    ctx.signalEndOfStream();
    app.processChunk(ctx);
    ctx.flushResidual();
    drain();
    return out;
}

}  // namespace

TEST(KvTable, GeneratorIsSortedAndDeterministic)
{
    const auto a = co::genKvTable(1, 10000);
    const auto b = co::genKvTable(1, 10000);
    EXPECT_EQ(a, b);
    ASSERT_EQ(a.size(), 10000u);
    for (std::size_t i = 1; i < a.size(); ++i)
        EXPECT_LT(a.keys[i - 1], a.keys[i]);
}

TEST(KvTable, TextRoundTrip)
{
    const auto t = co::genKvTable(2, 5000);
    sd::TextWriter w;
    t.serialize(w);
    sd::TextScanner s(w.bytes().data(), w.bytes().size());
    co::KvTable back;
    ASSERT_TRUE(back.parse(s));
    EXPECT_EQ(back, t);
}

TEST(KvTable, PairBinaryRoundTrip)
{
    const auto t = co::genKvTable(3, 1000);
    const auto bin = t.rangeBinary(0, ~0u);
    EXPECT_EQ(bin.size(), t.size() * co::KvTable::kPairBytes);
    EXPECT_EQ(co::KvTable::fromPairBinary(bin), t);
}

TEST(KvTable, RangeBinarySelectsInclusiveRange)
{
    co::KvTable t;
    t.keys = {10, 20, 30, 40};
    t.values = {1, 2, 3, 4};
    const auto got = co::KvTable::fromPairBinary(t.rangeBinary(20, 30));
    EXPECT_EQ(got.keys, (std::vector<std::uint32_t>{20, 30}));
    EXPECT_EQ(got.values, (std::vector<std::int64_t>{2, 3}));
}

TEST(KvRange, PackingUsesKeyBuckets)
{
    EXPECT_EQ(co::packKvRange(0, 0xFFFF), 0x0000'0000u);
    EXPECT_EQ(co::packKvRange(1 << 16, (2 << 16) | 5),
              (1u << 16) | 2u);
}

TEST(KvRangeEmitApp, FiltersBucketAlignedRangeExactly)
{
    const auto t = co::genKvTable(4, 50000);
    const std::uint32_t max_key = t.keys.back();
    const std::uint32_t lo = ((max_key / 3) >> 16) << 16;
    const std::uint32_t hi = (((2 * max_key / 3) >> 16) << 16) | 0xFFFF;
    const auto expected = t.rangeBinary(lo, hi);
    const auto got = runFilter(t, co::packKvRange(lo, hi), 4096);
    EXPECT_EQ(got, expected);
    EXPECT_FALSE(expected.empty());
    EXPECT_LT(expected.size(),
              t.size() * co::KvTable::kPairBytes);  // a real subset
}

TEST(KvRangeEmitApp, FullRangeEmitsEverything)
{
    const auto t = co::genKvTable(5, 2000);
    const auto got =
        runFilter(t, co::packKvRange(0, 0xFFFF0000u), 512);
    EXPECT_EQ(co::KvTable::fromPairBinary(got), t);
}

TEST(KvRangeEmitApp, EmptyRangeEmitsNothing)
{
    const auto t = co::genKvTable(6, 2000);
    // Buckets far above any generated key.
    const auto got = runFilter(
        t, co::packKvRange(0xFFF00000u, 0xFFFF0000u), 1024);
    EXPECT_TRUE(got.empty());
}

class KvChunkProperty : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(KvChunkProperty, OutputInvariantUnderChunking)
{
    const auto t = co::genKvTable(7, 8000);
    const std::uint32_t lo = 0, hi = t.keys[t.size() / 2];
    const std::uint32_t aligned_hi = ((hi >> 16) << 16) | 0xFFFF;
    const auto expected = t.rangeBinary(lo, aligned_hi);
    EXPECT_EQ(runFilter(t, co::packKvRange(lo, aligned_hi), GetParam()),
              expected);
}

INSTANTIATE_TEST_SUITE_P(Chunks, KvChunkProperty,
                         ::testing::Values(1, 7, 64, 999, 16384));

TEST(KvEndToEnd, DeviceFilterMatchesHostAndSavesPcieTraffic)
{
    ho::HostSystem sys;
    co::MorpheusDeviceRuntime device(sys.ssd());
    co::NvmeP2p p2p(sys);
    co::MorpheusRuntime runtime(sys, device, p2p);

    const auto t = co::genKvTable(8, 100000);
    sd::TextWriter w;
    t.serialize(w);
    const auto file = sys.createFile("kv", w.bytes());

    const std::uint32_t max_key = t.keys.back();
    const std::uint32_t lo = ((max_key / 2) >> 16) << 16;
    const std::uint32_t hi = lo + 0x3FFFF;  // ~2.5 buckets
    const std::uint32_t aligned_hi = ((hi >> 16) << 16) | 0xFFFF;
    const auto expected = t.rangeBinary(lo, aligned_hi);

    const auto pcie_before = sys.fabric().fabricBytes();
    const auto image = co::makeKvRangeEmitImage();
    const auto stream = runtime.streamCreate(file, file.readyAt);
    const auto target =
        runtime.hostTarget(expected.size() + 4096);
    co::InvokeOptions opts;
    opts.arg = co::packKvRange(lo, aligned_hi);
    const auto res =
        runtime.invoke(image, stream, target, file.readyAt, opts);

    EXPECT_EQ(res.returnValue * co::KvTable::kPairBytes,
              expected.size());
    const auto bin =
        sys.mem().store().readVec(target.addr, expected.size());
    EXPECT_EQ(bin, expected);

    // Only the filtered pairs (plus command/image overhead) crossed
    // PCIe — far less than the table text.
    const auto pcie_used = sys.fabric().fabricBytes() - pcie_before;
    EXPECT_LT(pcie_used, file.sizeBytes / 4);
}
