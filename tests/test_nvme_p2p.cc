/**
 * @file
 * NVMe-P2P module tests: BAR mapping lifecycle and P2P routing.
 */

#include <gtest/gtest.h>

#include "core/device_runtime.hh"
#include "core/host_runtime.hh"
#include "core/nvme_p2p.hh"
#include "core/standard_apps.hh"
#include "host/nic_model.hh"
#include "serde/writer.hh"
#include "workloads/generators.hh"
#include "serde/scanner.hh"

namespace co = morpheus::core;
namespace ho = morpheus::host;

TEST(NvmeP2p, MapIsIdempotentAndRoutesToGpu)
{
    ho::HostSystem sys;
    co::NvmeP2p p2p(sys);
    EXPECT_FALSE(p2p.mapped());
    const auto base = p2p.mapGpuMemory();
    EXPECT_TRUE(p2p.mapped());
    EXPECT_EQ(p2p.mapGpuMemory(), base);
    EXPECT_EQ(sys.fabric().routeAddr(base), sys.gpuPort());
    EXPECT_EQ(sys.fabric().routeAddr(base + 12345), sys.gpuPort());
}

TEST(NvmeP2p, BusAddrForOffsetsIntoTheWindow)
{
    ho::HostSystem sys;
    co::NvmeP2p p2p(sys);
    const auto a = p2p.busAddrFor(0);
    const auto b = p2p.busAddrFor(4096);
    EXPECT_EQ(b - a, 4096u);
}

TEST(NvmeP2p, UnmapRemovesTheWindow)
{
    ho::HostSystem sys;
    co::NvmeP2p p2p(sys);
    const auto base = p2p.mapGpuMemory();
    p2p.unmapGpuMemory();
    EXPECT_FALSE(p2p.mapped());
    EXPECT_FALSE(sys.fabric().isMapped(base));
    // Re-mapping works after unmap.
    EXPECT_EQ(p2p.mapGpuMemory(), base);
}

TEST(NvmeP2p, DmaThroughWindowLandsInGpuMemoryWithoutHostTraffic)
{
    ho::HostSystem sys;
    co::NvmeP2p p2p(sys);
    const auto base = p2p.mapGpuMemory();

    const auto host_before = sys.fabric().link(sys.hostPort()).totalBytes();
    const std::vector<std::uint8_t> payload(8192, 0x77);
    sys.fabric().dmaWriteData(sys.ssdPort(), base + 100,
                              payload.data(), payload.size(), 0);
    EXPECT_EQ(sys.fabric().link(sys.hostPort()).totalBytes(),
              host_before);
    EXPECT_EQ(sys.gpu().mem().readVec(100, 4),
              std::vector<std::uint8_t>(4, 0x77));
    EXPECT_EQ(p2p.p2pBytes(), payload.size());
}

TEST(NvmeP2p, DestructorCleansUpMapping)
{
    ho::HostSystem sys;
    {
        co::NvmeP2p p2p(sys);
        p2p.mapGpuMemory();
    }
    EXPECT_FALSE(sys.fabric().isMapped(sys.config().gpuBarBase));
}

TEST(NvmeP2p, GpuToSsdSerializationViaMwrite)
{
    // The reverse P2P direction: MWRITE with its data pointer inside
    // the GPU BAR window — the SSD pulls binary objects straight out
    // of GPU memory and serializes them to flash, no host bounce.
    ho::HostSystem sys;
    morpheus::core::MorpheusDeviceRuntime device(sys.ssd());
    co::NvmeP2p p2p(sys);
    const auto images = morpheus::core::StandardImages::make();

    // Binary i64 values living in GPU device memory.
    std::vector<std::int64_t> values;
    for (std::int64_t i = 0; i < 500; ++i)
        values.push_back(i * 37 - 999);
    std::vector<std::uint8_t> bin;
    for (const auto v : values) {
        const auto *pv = reinterpret_cast<const std::uint8_t *>(&v);
        bin.insert(bin.end(), pv, pv + 8);
    }
    const std::uint64_t dev = sys.gpu().alloc(bin.size());
    sys.gpu().mem().writeVec(dev, bin);
    const auto gpu_addr = p2p.busAddrFor(dev);

    morpheus::core::InstanceSetup setup;
    setup.image = &images.int64Serializer;
    setup.target = morpheus::core::DmaTarget{gpu_addr, true};
    device.stageInstance(1, setup);

    morpheus::nvme::Command minit;
    minit.opcode = morpheus::nvme::Opcode::kMInit;
    minit.instanceId = 1;
    minit.prp1 = sys.allocHost(images.int64Serializer.textBytes);
    minit.cdw13 = images.int64Serializer.textBytes;
    ASSERT_TRUE(sys.nvmeDriver().io(sys.ioQueue(), minit, 0).ok());

    const std::uint64_t dst_byte = 128ULL << 20;
    morpheus::nvme::Command wr;
    wr.opcode = morpheus::nvme::Opcode::kMWrite;
    wr.instanceId = 1;
    wr.prp1 = gpu_addr;  // P2P: source is GPU device memory
    wr.slba = dst_byte / morpheus::nvme::kBlockBytes;
    wr.nlb = static_cast<std::uint16_t>(
        bin.size() / morpheus::nvme::kBlockBytes);
    wr.cdw13 = static_cast<std::uint32_t>(bin.size());
    const auto host_bytes_before =
        sys.fabric().link(sys.hostPort()).totalBytes();
    ASSERT_TRUE(sys.nvmeDriver().io(sys.ioQueue(), wr, 0).ok());

    // The payload never crossed the host link (only tiny SQE/CQE
    // ring traffic did).
    EXPECT_LT(sys.fabric().link(sys.hostPort()).totalBytes() -
                  host_bytes_before,
              512u);
    EXPECT_GE(sys.fabric().p2pBytes(), bin.size());

    // The flash now holds the text.
    const auto text =
        sys.ssd().peekBytes(dst_byte, values.size() * 12 + 16);
    morpheus::serde::TextScanner s(text.data(), text.size());
    std::vector<std::int64_t> back;
    std::int64_t v = 0;
    while (back.size() < values.size() && s.nextInt64(&v))
        back.push_back(v);
    EXPECT_EQ(back, values);
}

TEST(NicP2p, SsdToNicObjectStreamBypassesHost)
{
    // Paper §I lists NICs as P2P endpoints alongside GPUs.
    ho::HostSystem sys;
    morpheus::core::MorpheusDeviceRuntime device(sys.ssd());
    co::NvmeP2p p2p(sys);
    morpheus::core::MorpheusRuntime runtime(sys, device, p2p);
    const auto images = morpheus::core::StandardImages::make();

    ho::Nic nic(ho::NicConfig{});
    const auto nic_port =
        sys.fabric().addPort("nic", morpheus::pcie::LinkConfig{3, 8});
    const morpheus::pcie::Addr bar = 1ULL << 44;
    sys.fabric().mapWindow(bar, nic.config().txBufferBytes, nic_port,
                           "nic-tx", &nic);

    const auto a = morpheus::workloads::genIntArray(66, 20000);
    morpheus::serde::TextWriter w;
    a.serialize(w);
    const auto file = sys.createFile("a", w.bytes());

    const auto host_before =
        sys.fabric().link(sys.hostPort()).totalBytes();
    const auto stream = runtime.streamCreate(file, file.readyAt);
    const auto res =
        runtime.invoke(images.intArray, stream,
                       morpheus::core::DmaTarget{bar, false},
                       file.readyAt);
    EXPECT_EQ(res.returnValue, a.values.size());

    // Object payload went SSD->NIC; host link carried only ring traffic.
    EXPECT_EQ(nic.bytesDmaIn(), a.objectBytes());
    EXPECT_LT(sys.fabric().link(sys.hostPort()).totalBytes() -
                  host_before,
              a.objectBytes() / 4);
    EXPECT_GE(sys.fabric().p2pBytes(), a.objectBytes());

    // Functional: the TX buffer holds the binary object; the wire
    // model frames and transmits it.
    const auto bin =
        nic.txBytes(0, static_cast<std::size_t>(a.objectBytes()));
    EXPECT_EQ(morpheus::serde::IntArrayObject::fromBinary(bin), a);
    const auto wire_done = nic.transmitQueued(res.done);
    EXPECT_GT(wire_done, res.done);
    EXPECT_GT(nic.framesSent(), a.objectBytes() / 9000);
    EXPECT_EQ(nic.queuedBytes(), 0u);
}
