/**
 * @file
 * Shard-fabric tests: router placement and range splitting, fleet
 * topology parsing, multi-SSD HostSystem construction, fleet-unique
 * trace ids and per-device span tracks, fan-out reads/invokes, and
 * SSD-to-SSD P2P rebalancing.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "core/standard_apps.hh"
#include "obs/trace.hh"
#include "serde/formats.hh"
#include "serde/writer.hh"
#include "shard/fleet_topology.hh"
#include "shard/shard_fabric.hh"
#include "sim/fault.hh"
#include "workloads/generators.hh"
#include "workloads/serving.hh"

namespace co = morpheus::core;
namespace ho = morpheus::host;
namespace ob = morpheus::obs;
namespace sd = morpheus::serde;
namespace sh = morpheus::shard;
namespace sim = morpheus::sim;
namespace wk = morpheus::workloads;

namespace {

std::vector<std::uint8_t>
patternBytes(std::size_t n)
{
    std::vector<std::uint8_t> out(n);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = static_cast<std::uint8_t>((i * 131 + 7) & 0xFF);
    return out;
}

ho::SystemConfig
fleetConfig(unsigned ssds)
{
    ho::SystemConfig cfg;
    cfg.numSsds = ssds;
    return cfg;
}

}  // namespace

// ---- router ---------------------------------------------------------

TEST(ShardRouter, HashPlacementIsDeterministicAndInRange)
{
    sh::ShardRouter r(4, sh::ShardPolicy::kHash);
    std::map<unsigned, unsigned> hist;
    for (unsigned i = 0; i < 64; ++i) {
        const std::string key = "object." + std::to_string(i);
        const unsigned d = r.shardForKey(key);
        EXPECT_LT(d, 4u);
        EXPECT_EQ(d, r.shardForKey(key));  // stable
        ++hist[d];
    }
    // FNV over 64 keys must not degenerate to a single shard.
    EXPECT_GT(hist.size(), 1u);
}

TEST(ShardRouter, RangePolicyRoundRobinsStripes)
{
    sh::ShardRouter r(3, sh::ShardPolicy::kRange, 1 << 20);
    for (std::uint64_t s = 0; s < 9; ++s)
        EXPECT_EQ(r.shardForStripe(7, s), s % 3);
}

TEST(ShardRouter, ByteAndStripeRoutingAgree)
{
    sh::ShardRouter r(4, sh::ShardPolicy::kHash, 4096);
    for (std::uint64_t b : {0ULL, 4095ULL, 4096ULL, 123456ULL})
        EXPECT_EQ(r.shardForByte(9, b), r.shardForStripe(9, b / 4096));
}

TEST(ShardRouter, SplitRangeCoversExactlyAndMergesRuns)
{
    sh::ShardRouter r(2, sh::ShardPolicy::kRange, 4096);
    const auto slices = r.splitRange(1, 1000, 20000);
    std::uint64_t covered = 0, cursor = 1000;
    for (const sh::ShardSlice &s : slices) {
        EXPECT_EQ(s.globalOffset, cursor);
        EXPECT_LT(s.device, 2u);
        covered += s.bytes;
        cursor += s.bytes;
    }
    EXPECT_EQ(covered, 20000u);
    // Round-robin over 2 devices at 4 KiB stripes: no two adjacent
    // slices share a device (they would have been merged).
    for (std::size_t i = 1; i < slices.size(); ++i)
        EXPECT_NE(slices[i].device, slices[i - 1].device);
}

TEST(ShardRouter, SingleShardDegeneratesToIdentity)
{
    sh::ShardRouter r(1, sh::ShardPolicy::kHash, 4096);
    const auto slices = r.splitRange(1, 500, 100000);
    ASSERT_EQ(slices.size(), 1u);
    EXPECT_EQ(slices[0].device, 0u);
    EXPECT_EQ(slices[0].globalOffset, 500u);
    EXPECT_EQ(slices[0].localOffset, 500u);
    EXPECT_EQ(slices[0].bytes, 100000u);
}

TEST(ShardRouter, SplitRangeZeroLengthYieldsNoSlices)
{
    sh::ShardRouter r(4, sh::ShardPolicy::kRange, 4096);
    EXPECT_TRUE(r.splitRange(1, 0, 0).empty());
    EXPECT_TRUE(r.splitRange(1, 4096, 0).empty());   // on a boundary
    EXPECT_TRUE(r.splitRange(1, 12345, 0).empty());  // mid-stripe
}

TEST(ShardRouter, SplitRangeEndingOnStripeBoundaryEmitsNoEmptySlice)
{
    // A range whose end lands exactly on a stripe boundary must not
    // spill a zero-byte slice into the next stripe (the classic
    // off-by-one from computing last_stripe = end / stripeBytes).
    sh::ShardRouter r(3, sh::ShardPolicy::kRange, 4096);
    const auto slices = r.splitRange(1, 0, 3 * 4096);
    ASSERT_EQ(slices.size(), 3u);
    std::uint64_t covered = 0;
    for (const sh::ShardSlice &s : slices) {
        EXPECT_GT(s.bytes, 0u);
        covered += s.bytes;
    }
    EXPECT_EQ(covered, 3u * 4096u);
    EXPECT_EQ(slices.back().globalOffset + slices.back().bytes,
              3u * 4096u);
}

TEST(ShardRouter, SplitRangeStartingOnStripeBoundary)
{
    sh::ShardRouter r(2, sh::ShardPolicy::kRange, 4096);
    const auto slices = r.splitRange(1, 4096, 4096);
    ASSERT_EQ(slices.size(), 1u);
    EXPECT_EQ(slices[0].device, 1u);  // round robin: stripe 1 -> dev 1
    EXPECT_EQ(slices[0].globalOffset, 4096u);
    EXPECT_EQ(slices[0].bytes, 4096u);
    // Stripe 1 is device 1's first stripe, so it starts at local 0.
    EXPECT_EQ(slices[0].localOffset, 0u);
}

TEST(ShardRouter, SplitRangeSingleByteAtStripeEnd)
{
    // The last byte of a stripe: exactly one slice, one byte, in the
    // owning stripe — not bleeding into the next one.
    sh::ShardRouter r(2, sh::ShardPolicy::kRange, 4096);
    const auto slices = r.splitRange(1, 4095, 1);
    ASSERT_EQ(slices.size(), 1u);
    EXPECT_EQ(slices[0].device, 0u);
    EXPECT_EQ(slices[0].globalOffset, 4095u);
    EXPECT_EQ(slices[0].localOffset, 4095u);
    EXPECT_EQ(slices[0].bytes, 1u);

    // And the first byte of the next stripe belongs to the next device.
    const auto next = r.splitRange(1, 4096, 1);
    ASSERT_EQ(next.size(), 1u);
    EXPECT_EQ(next[0].device, 1u);
    EXPECT_EQ(next[0].localOffset, 0u);
}

TEST(ShardRouter, Fnv1aMatchesReferenceVector)
{
    // FNV-1a 64-bit reference: fnv1a("a") = 0xaf63dc4c8601ec8c.
    EXPECT_EQ(sh::fnv1a("a", 1), 0xaf63dc4c8601ec8cULL);
    EXPECT_NE(sh::fnv1a("ab", 2), sh::fnv1a("ba", 2));
}

// ---- topology -------------------------------------------------------

TEST(FleetTopology, ParsesJsonWithOverridesAndUnknownKeys)
{
    const std::string json = R"({
        "ssds": 3, "policy": "range", "stripeKiB": 512,
        "comment": ["ignored", {"deep": 1}],
        "devices": [
            {"cores": 8, "dramMiB": 1024, "label": "rack0"},
            {}
        ]
    })";
    const sh::FleetTopology topo = sh::FleetTopology::fromJson(json);
    EXPECT_EQ(topo.numSsds, 3u);
    EXPECT_EQ(topo.policy, sh::ShardPolicy::kRange);
    EXPECT_EQ(topo.stripeBytes, 512u * 1024u);
    ASSERT_EQ(topo.devices.size(), 2u);
    EXPECT_EQ(topo.devices[0].cores, 8u);
    EXPECT_EQ(topo.devices[0].label, "rack0");

    ho::SystemConfig sys;
    topo.apply(sys);
    EXPECT_EQ(sys.numSsds, 3u);
    ASSERT_EQ(sys.ssdConfigs.size(), 3u);
    EXPECT_EQ(sys.ssdConfigs[0].numCores, 8u);
    EXPECT_EQ(sys.ssdConfigs[0].label, "rack0");
    // Unspecified devices inherit the template config.
    EXPECT_EQ(sys.ssdConfigs[1].numCores, sys.ssd.numCores);
    EXPECT_EQ(sys.ssdConfigs[2].numCores, sys.ssd.numCores);
}

TEST(FleetTopologyDeath, RejectsMalformedJson)
{
    EXPECT_DEATH(sh::FleetTopology::fromJson("{\"ssds\": 0}"),
                 "ssds = 0");
    EXPECT_DEATH(sh::FleetTopology::fromJson("{} trailing"),
                 "trailing");
}

// ---- multi-SSD HostSystem -------------------------------------------

TEST(FleetHostSystem, ConstructsPerDeviceQueuePairs)
{
    ho::HostSystem sys(fleetConfig(4));
    EXPECT_EQ(sys.numSsds(), 4u);
    for (unsigned d = 0; d < 4; ++d) {
        EXPECT_NE(sys.ssdPort(d), sys.hostPort());
        // Each device's driver answers on its own queue pair.
        EXPECT_EQ(sys.ioQueue(d, 0), sys.ioQueue(0, 0));
    }
    // Classic port numbering is preserved: host 0, ssd 1, gpu 2.
    EXPECT_EQ(sys.hostPort(), 0u);
    EXPECT_EQ(sys.ssdPort(0), 1u);
    EXPECT_EQ(sys.gpuPort(), 2u);
    EXPECT_EQ(sys.ssdPort(1), 3u);
}

TEST(FleetHostSystem, DeviceLabelsPrefixFleetTracksOnly)
{
    ho::HostSystem sys(fleetConfig(3));
    EXPECT_EQ(sys.ssd(0).trackPrefix(), "");
    EXPECT_EQ(sys.ssd(1).trackPrefix(), "dev1.");
    EXPECT_EQ(sys.ssd(2).trackPrefix(), "dev2.");
}

TEST(FleetHostSystem, FilesLandOnTheRequestedDevice)
{
    ho::HostSystem sys(fleetConfig(2));
    const auto data = patternBytes(10000);
    const auto e0 = sys.createFileOn(0, "a", data);
    const auto e1 = sys.createFileOn(1, "b", data);
    EXPECT_EQ(e0.deviceId, 0u);
    EXPECT_EQ(e1.deviceId, 1u);
    // Independent placement cursors: both start at device byte 0.
    EXPECT_EQ(e0.startByte, e1.startByte);
    EXPECT_EQ(sys.fileBytes(e0), data);
    EXPECT_EQ(sys.fileBytes(e1), data);
}

TEST(FleetHostSystem, TraceIdsAndTracksAreFleetUnique)
{
    ob::InMemoryTraceSink sink;
    {
        const ob::ScopedTraceSink attach(sink);
        ho::HostSystem sys(fleetConfig(2));
        const auto data = patternBytes(8192);
        sys.createFileOn(0, "a", data);
        sys.createFileOn(1, "b", data);
    }
    // Device 1 commands draw ids from the 1 << 24 block and render on
    // "dev1."-prefixed tracks; device 0 keeps the classic low ids and
    // unprefixed tracks — so ids never collide fleet-wide.
    bool saw_dev0_id = false, saw_dev1_track = false;
    for (const ob::Span &s : sink.spans()) {
        if (s.trace == 0)
            continue;
        if (s.track.rfind("dev1.", 0) == 0) {
            EXPECT_GE(s.trace, 1u << 24) << s.track << " " << s.name;
            saw_dev1_track = true;
        } else if (s.trace < (1u << 24)) {
            saw_dev0_id = true;
        }
    }
    EXPECT_TRUE(saw_dev0_id);
    EXPECT_TRUE(saw_dev1_track);
}

// ---- shard fabric ---------------------------------------------------

TEST(ShardFabric, IngestShardedRoundTrips)
{
    ho::HostSystem sys(fleetConfig(4));
    sh::ShardFabric fabric(sys, sh::ShardPolicy::kRange, 4096);
    const auto data = patternBytes(40000);  // ~10 stripes over 4 SSDs
    const sh::ShardedFile f = fabric.ingestSharded("obj", data);
    EXPECT_EQ(f.sizeBytes, data.size());
    // ceil(40000/4096) = 10 stripes round-robined on 4 devices: every
    // device holds bytes, devices 0 and 1 one stripe more than 2 and 3.
    ASSERT_EQ(f.extents.size(), 4u);
    for (const auto &ext : f.extents)
        EXPECT_GT(ext.sizeBytes, 0u);
    EXPECT_GT(f.extents[0].sizeBytes, f.extents[2].sizeBytes);
    EXPECT_EQ(fabric.shardedBytes(f), data);
}

TEST(ShardFabric, FleetReadDeliversBytesAndOverlapsDevices)
{
    ho::HostSystem sys(fleetConfig(4));
    sh::ShardFabric fabric(sys, sh::ShardPolicy::kRange, 4096);
    const auto data = patternBytes(65536);
    const sh::ShardedFile f = fabric.ingestSharded("obj", data);

    sim::Tick start = 0;
    for (const auto &ext : f.extents)
        start = std::max(start, ext.readyAt);
    const morpheus::pcie::Addr dst = sys.allocHost(data.size());
    const sim::Tick done = fabric.fleetRead(f, dst, start);
    EXPECT_GT(done, start);
    EXPECT_EQ(sys.mem().store().readVec(dst, data.size()), data);
}

TEST(ShardFabric, FleetInvokeMergesPerDeviceResults)
{
    ho::HostSystem sys(fleetConfig(2));
    sh::ShardFabric fabric(sys, sh::ShardPolicy::kRange, 64 * 1024);
    co::StandardImages images = co::StandardImages::make();

    const auto a = wk::genIntArray(7, 60000);  // several 64 KiB stripes
    sd::TextWriter w;
    a.serialize(w);
    const sh::ShardedFile f = fabric.ingestSharded("ints", w.bytes());

    sim::Tick ready = 0;
    for (const auto &ext : f.extents)
        ready = std::max(ready, ext.readyAt);
    const sh::FleetInvokeResult r =
        fabric.fleetInvoke(images.intArray, f, ready);
    EXPECT_TRUE(r.accepted);
    EXPECT_FALSE(r.failed);
    ASSERT_EQ(r.perDevice.size(), 2u);

    sim::Tick max_done = 0;
    std::uint64_t bytes = 0, mreads = 0;
    unsigned participants = 0;
    for (unsigned d = 0; d < 2; ++d) {
        if (f.extents[d].sizeBytes == 0)
            continue;
        ++participants;
        EXPECT_TRUE(r.perDevice[d].accepted);
        max_done = std::max(max_done, r.perDevice[d].done);
        bytes += r.perDevice[d].objectBytes;
        mreads += r.perDevice[d].mreadCommands;
    }
    EXPECT_EQ(participants, 2u);
    EXPECT_EQ(r.merged.done, max_done);
    EXPECT_EQ(r.merged.objectBytes, bytes);
    EXPECT_EQ(r.merged.mreadCommands, mreads);
    EXPECT_GT(r.merged.objectBytes, 0u);
}

TEST(ShardFabric, FleetInvokeRetriesAttributeOnce)
{
    // Reference: the same workload on a clean fleet.
    std::uint64_t clean_bytes = 0, clean_rv = 0;
    {
        ho::HostSystem sys(fleetConfig(2));
        sh::ShardFabric fabric(sys, sh::ShardPolicy::kRange, 64 * 1024);
        co::StandardImages images = co::StandardImages::make();
        const auto a = wk::genIntArray(7, 60000);
        sd::TextWriter w;
        a.serialize(w);
        const sh::ShardedFile f = fabric.ingestSharded("ints", w.bytes());
        sim::Tick ready = 0;
        for (const auto &ext : f.extents)
            ready = std::max(ready, ext.readyAt);
        const sh::FleetInvokeResult r =
            fabric.fleetInvoke(images.intArray, f, ready);
        ASSERT_TRUE(r.accepted);
        ASSERT_FALSE(r.failed);
        EXPECT_EQ(r.replays, 0u);
        clean_bytes = r.merged.objectBytes;
        clean_rv = r.merged.returnValue;
        ASSERT_GT(clean_bytes, 0u);
    }

    // Same workload under injected StorageApp crashes with driver
    // recovery on: fleet-level replays reissue whole shards, each
    // replay OVERWRITING its device's slot — merged totals must match
    // the clean run exactly, never accumulate across attempts.
    ho::HostSystem sys(fleetConfig(2));
    sh::ShardFabric fabric(sys, sh::ShardPolicy::kRange, 64 * 1024);
    morpheus::nvme::DriverRecoveryConfig rec;
    rec.enabled = true;
    fabric.setRecovery(rec);
    co::StandardImages images = co::StandardImages::make();
    const auto a = wk::genIntArray(7, 60000);
    sd::TextWriter w;
    a.serialize(w);
    const sh::ShardedFile f = fabric.ingestSharded("ints", w.bytes());
    sim::Tick ready = 0;
    for (const auto &ext : f.extents)
        ready = std::max(ready, ext.readyAt);

    sh::FleetInvokeResult r;
    {
        morpheus::sim::FaultPlan plan;
        plan.crashRate = 0.25;  // per processed chunk
        plan.seed = 11;
        morpheus::sim::FaultInjector fi(plan);
        morpheus::sim::ScopedFaultInjector scope(&fi);
        r = fabric.fleetInvoke(images.intArray, f, ready);
        EXPECT_GE(fi.appCrashes(), 1u);
    }
    ASSERT_TRUE(r.accepted);
    ASSERT_FALSE(r.failed);
    EXPECT_GT(r.replays, 0u);
    // Attribute-once: despite the retries, the merged totals are the
    // final attempts' alone.
    EXPECT_EQ(r.merged.objectBytes, clean_bytes);
    EXPECT_EQ(r.merged.returnValue, clean_rv);
    std::uint64_t bytes = 0;
    for (unsigned d = 0; d < 2; ++d)
        bytes += r.perDevice[d].objectBytes;
    EXPECT_EQ(bytes, clean_bytes);
}

TEST(ShardFabric, RebalanceMovesExtentPeerToPeer)
{
    ho::HostSystem sys(fleetConfig(2));
    sh::ShardFabric fabric(sys);
    const auto data = patternBytes(300000);
    const auto src = sys.createFileOn(0, "hot", data);

    const std::uint64_t host_before =
        sys.fabric().link(sys.hostPort()).totalBytes();
    sim::Tick done = 0;
    const auto moved =
        fabric.rebalance(src, 1, src.readyAt, &done);
    EXPECT_EQ(moved.deviceId, 1u);
    EXPECT_EQ(moved.sizeBytes, data.size());
    EXPECT_GT(done, src.readyAt);
    EXPECT_EQ(moved.readyAt, done);
    // The payload moved SSD -> SSD over the switch: P2P counted, host
    // link untouched.
    EXPECT_GE(sys.fabric().p2pBytes(), data.size());
    EXPECT_EQ(sys.fabric().link(sys.hostPort()).totalBytes(),
              host_before);
    EXPECT_EQ(sys.fileBytes(moved), data);
}

// ---- fleet serving --------------------------------------------------

TEST(FleetServing, ShardsReportAndCompleteEverything)
{
    wk::ServingOptions opts;
    opts.seed = 5;
    opts.closedLoop = true;
    opts.closedLoopConcurrency = 3;
    opts.closedLoopRequests = 12;
    opts.sys.numSsds = 2;
    opts.objectsPerClass = 4;
    opts.zipfSkew = 0.9;
    for (std::uint32_t t = 0; t < 2; ++t) {
        wk::TenantSpec spec;
        spec.id = t + 1;
        opts.tenants.push_back(spec);
    }
    const wk::ServingReport r = wk::runServing(opts);
    EXPECT_EQ(r.completed, r.submitted);
    ASSERT_EQ(r.shards.size(), 2u);
    std::uint64_t shard_requests = 0;
    for (const wk::ShardReport &s : r.shards)
        shard_requests += s.requests;
    EXPECT_EQ(shard_requests, r.submitted);
}

TEST(FleetServing, DeterministicInTheSeed)
{
    wk::ServingOptions opts;
    opts.seed = 11;
    opts.closedLoop = true;
    opts.closedLoopConcurrency = 2;
    opts.closedLoopRequests = 8;
    opts.sys.numSsds = 4;
    opts.objectsPerClass = 8;
    opts.zipfSkew = 1.1;
    wk::TenantSpec spec;
    spec.id = 1;
    opts.tenants.push_back(spec);

    const wk::ServingReport a = wk::runServing(opts);
    const wk::ServingReport b = wk::runServing(opts);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.p99Us, b.p99Us);
    ASSERT_EQ(a.shards.size(), b.shards.size());
    for (std::size_t i = 0; i < a.shards.size(); ++i) {
        EXPECT_EQ(a.shards[i].requests, b.shards[i].requests);
        EXPECT_EQ(a.shards[i].servedBytes, b.shards[i].servedBytes);
    }
}
