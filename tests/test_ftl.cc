/**
 * @file
 * FTL tests: mapping correctness, overwrite semantics, GC behaviour
 * under pressure, and the read-after-write property under random
 * workloads (parameterized).
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "ftl/ftl.hh"
#include "sim/rng.hh"

namespace fl = morpheus::flash;
namespace ft = morpheus::ftl;
namespace ms = morpheus::sim;

namespace {

fl::FlashConfig
tinyFlash()
{
    fl::FlashConfig cfg;
    cfg.channels = 2;
    cfg.diesPerChannel = 1;
    cfg.planesPerDie = 1;
    cfg.blocksPerPlane = 16;
    cfg.pagesPerBlock = 8;
    cfg.pageBytes = 256;
    return cfg;
}

std::vector<std::uint8_t>
fill(std::uint8_t seed, std::size_t n)
{
    std::vector<std::uint8_t> v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i] = static_cast<std::uint8_t>(seed ^ (i & 0xFF));
    return v;
}

struct FtlFixture
{
    ms::EventQueue eq;
    fl::FlashArray flash;
    ft::Ftl ftl;

    explicit FtlFixture(const ft::FtlConfig &cfg = {})
        : flash(eq, tinyFlash()), ftl(eq, flash, cfg)
    {}
};

}  // namespace

TEST(Ftl, LogicalCapacityReflectsOverProvisioning)
{
    FtlFixture f;
    const auto phys = tinyFlash().pages();
    EXPECT_LT(f.ftl.logicalPages(), phys);
    EXPECT_GT(f.ftl.logicalPages(), phys / 2);
}

TEST(Ftl, UnmappedReadsAsZeros)
{
    FtlFixture f;
    EXPECT_FALSE(f.ftl.isMapped(3));
    const auto page = f.ftl.peekPage(3);
    EXPECT_EQ(page.size(), 256u);
    for (const auto b : page)
        EXPECT_EQ(b, 0);
}

TEST(Ftl, WriteThenReadBack)
{
    FtlFixture f;
    const auto data = fill(0xA5, 256);
    f.ftl.writePages(5, data, 0);
    ASSERT_TRUE(f.ftl.isMapped(5));
    EXPECT_EQ(f.ftl.peekPage(5), data);

    bool called = false;
    f.ftl.readPages(5, 1, 0,
                    [&](ms::Tick, std::vector<std::uint8_t> d) {
                        called = true;
                        EXPECT_EQ(d, fill(0xA5, 256));
                    });
    f.eq.run();
    EXPECT_TRUE(called);
}

TEST(Ftl, OverwriteReplacesData)
{
    FtlFixture f;
    f.ftl.writePages(2, fill(1, 256), 0);
    f.ftl.writePages(2, fill(2, 256), 0);
    EXPECT_EQ(f.ftl.peekPage(2), fill(2, 256));
}

TEST(Ftl, MultiPageWriteSpansPages)
{
    FtlFixture f;
    const auto data = fill(7, 256 * 3 + 100);  // 4 pages, padded
    f.ftl.writePages(10, data, 0);
    for (std::uint64_t lpn = 10; lpn < 14; ++lpn)
        EXPECT_TRUE(f.ftl.isMapped(lpn));
    // Concatenated read-back equals the data (plus zero padding).
    std::vector<std::uint8_t> all;
    for (std::uint64_t lpn = 10; lpn < 14; ++lpn) {
        const auto p = f.ftl.peekPage(lpn);
        all.insert(all.end(), p.begin(), p.end());
    }
    for (std::size_t i = 0; i < data.size(); ++i)
        EXPECT_EQ(all[i], data[i]);
    for (std::size_t i = data.size(); i < all.size(); ++i)
        EXPECT_EQ(all[i], 0);
}

TEST(Ftl, WritesStripeAcrossPlanes)
{
    FtlFixture f;
    // Two single-page writes should land on different planes
    // (different channels in this geometry), so their program phases
    // overlap.
    const ms::Tick d0 = f.ftl.writePages(0, fill(1, 256), 0);
    (void)d0;
    EXPECT_GT(f.flash.dieTimeline(0, 0).busyTicks() +
                  f.flash.dieTimeline(1, 0).busyTicks(),
              0u);
    f.ftl.writePages(1, fill(2, 256), 0);
    EXPECT_GT(f.flash.dieTimeline(0, 0).busyTicks(), 0u);
    EXPECT_GT(f.flash.dieTimeline(1, 0).busyTicks(), 0u);
}

TEST(Ftl, GarbageCollectionReclaimsSpace)
{
    ft::FtlConfig cfg;
    cfg.gcLowWatermark = 4;
    cfg.gcHighWatermark = 6;
    FtlFixture f(cfg);

    // Hammer a small logical range so most physical pages become
    // invalid and GC has cheap victims.
    ms::Tick t = 0;
    for (int round = 0; round < 40; ++round) {
        for (std::uint64_t lpn = 0; lpn < 8; ++lpn)
            t = f.ftl.writePages(lpn, fill(
                static_cast<std::uint8_t>(round), 256), t);
    }
    EXPECT_GT(f.ftl.gcRuns(), 0u);
    EXPECT_GT(f.flash.erasesIssued().value(), 0u);
    // Data integrity survives GC.
    for (std::uint64_t lpn = 0; lpn < 8; ++lpn)
        EXPECT_EQ(f.ftl.peekPage(lpn), fill(39, 256));
    EXPECT_GE(f.ftl.freeBlocks(), cfg.gcLowWatermark);
}

/** Property: random writes + overwrites always read back correctly. */
class FtlRandomProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(FtlRandomProperty, ReadAfterWriteUnderChurn)
{
    ft::FtlConfig cfg;
    cfg.gcLowWatermark = 3;
    cfg.gcHighWatermark = 5;
    FtlFixture f(cfg);
    ms::Rng rng(GetParam());

    std::map<std::uint64_t, std::uint8_t> shadow;
    const std::uint64_t logical_span = 24;
    ms::Tick t = 0;
    for (int op = 0; op < 300; ++op) {
        const std::uint64_t lpn = rng.nextBelow(logical_span);
        const auto tag = static_cast<std::uint8_t>(rng.nextBelow(256));
        t = f.ftl.writePages(lpn, fill(tag, 256), t);
        shadow[lpn] = tag;
        if (op % 7 == 0) {
            // Spot check a random previously written page.
            const auto it = shadow.begin();
            EXPECT_EQ(f.ftl.peekPage(it->first),
                      fill(it->second, 256));
        }
    }
    for (const auto &[lpn, tag] : shadow)
        EXPECT_EQ(f.ftl.peekPage(lpn), fill(tag, 256));
    f.eq.run();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FtlRandomProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 11, 23, 47));

TEST(Ftl, ParallelReadsAcrossDiesOverlap)
{
    FtlFixture f;
    ms::Tick t = 0;
    for (std::uint64_t lpn = 0; lpn < 4; ++lpn)
        t = f.ftl.writePages(lpn, fill(9, 256), t);
    // A 4-page read touches pages striped over 2 channels; the total
    // time is below 4 sequential die reads.
    const ms::Tick start = t;
    const ms::Tick done = f.ftl.readPages(0, 4, start);
    const auto cfg = tinyFlash();
    EXPECT_LT(done - start, 4 * (cfg.readLatency +
                                 ms::transferTicks(
                                     cfg.pageBytes,
                                     cfg.channelBytesPerSec)));
}

TEST(FtlDeath, ReadBeyondCapacityPanics)
{
    FtlFixture f;
    EXPECT_DEATH(f.ftl.readPages(f.ftl.logicalPages(), 1, 0),
                 "beyond logical capacity");
}

TEST(Ftl, WearLevellingKeepsEraseSpreadBounded)
{
    ft::FtlConfig cfg;
    cfg.gcLowWatermark = 4;
    cfg.gcHighWatermark = 6;
    FtlFixture f(cfg);
    ms::Tick t = 0;
    // Sustained overwrite churn: GC runs constantly; the least-erased
    // tie-break keeps wear from concentrating.
    for (int round = 0; round < 120; ++round) {
        for (std::uint64_t lpn = 0; lpn < 8; ++lpn) {
            t = f.ftl.writePages(
                lpn, fill(static_cast<std::uint8_t>(round + lpn), 256),
                t);
        }
    }
    EXPECT_GT(f.ftl.gcRuns(), 10u);
    // With ~wear-aware victim selection the spread stays small
    // relative to the total erase count.
    EXPECT_LE(f.ftl.maxEraseDelta(), 12u);
}
