/**
 * @file
 * MsChunkContext + standard StorageApp tests: the device library and
 * the per-chunk state machines, exercised without the full SSD (chunks
 * fed directly), including the chunk-size invariance property.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>

#include "core/standard_apps.hh"
#include "workloads/generators.hh"
#include "sim/rng.hh"
#include "workloads/objects.hh"

namespace co = morpheus::core;
namespace sd = morpheus::serde;
namespace wk = morpheus::workloads;

namespace {

/** Feed a text buffer to an app in fixed-size chunks; return output. */
std::vector<std::uint8_t>
runApp(co::StorageApp &app, const std::vector<std::uint8_t> &text,
       std::size_t chunk_size, std::uint32_t flush_threshold = 16384)
{
    co::MsChunkContext ctx(256 * 1024, flush_threshold, 0);
    std::vector<std::uint8_t> out;
    auto drain = [&] {
        for (auto &seg : ctx.takeFlushes())
            out.insert(out.end(), seg.begin(), seg.end());
    };
    std::size_t pos = 0;
    while (pos < text.size()) {
        const std::size_t take =
            std::min(chunk_size, text.size() - pos);
        ctx.feedChunk(std::vector<std::uint8_t>(
            text.begin() + pos, text.begin() + pos + take));
        pos += take;
        app.processChunk(ctx);
        drain();
    }
    ctx.signalEndOfStream();
    app.processChunk(ctx);
    app.finish(ctx);
    ctx.flushResidual();
    drain();
    return out;
}

}  // namespace

TEST(MsChunkContext, EmitStagesAndFlushesAtThreshold)
{
    co::MsChunkContext ctx(1024, 16, 0);
    const std::uint8_t block[10] = {};
    ctx.msEmit(block, 10);
    EXPECT_TRUE(ctx.takeFlushes().empty());  // below threshold
    ctx.msEmit(block, 10);                   // crosses 16
    const auto flushes = ctx.takeFlushes();
    ASSERT_EQ(flushes.size(), 1u);
    EXPECT_EQ(flushes[0].size(), 16u);
    ctx.flushResidual();
    const auto rest = ctx.takeFlushes();
    ASSERT_EQ(rest.size(), 1u);
    EXPECT_EQ(rest[0].size(), 4u);
    EXPECT_EQ(ctx.bytesEmitted(), 20u);
}

TEST(MsChunkContext, CostDeltaResetsBetweenChunks)
{
    co::MsChunkContext ctx(1024, 512, 0);
    ctx.feedChunk({'4', '2', ' ', '7', ' '});
    std::int64_t v = 0;
    EXPECT_TRUE(ctx.msScanfInt(&v));
    EXPECT_TRUE(ctx.msScanfInt(&v));
    EXPECT_FALSE(ctx.msScanfInt(&v));
    const auto d1 = ctx.takeCostDelta();
    EXPECT_EQ(d1.intValues, 2u);
    const auto d2 = ctx.takeCostDelta();
    EXPECT_EQ(d2.intValues, 0u);
}

TEST(MsChunkContext, RawReadsForWritePath)
{
    co::MsChunkContext ctx(1024, 512, 0);
    std::vector<std::uint8_t> chunk(16);
    const std::int64_t a = 0x1122334455667788;
    const std::int64_t b = -42;
    std::memcpy(chunk.data(), &a, 8);
    std::memcpy(chunk.data() + 8, &b, 8);
    ctx.feedChunk(std::move(chunk));
    std::int64_t v = 0;
    ASSERT_TRUE(ctx.msReadValue(&v));
    EXPECT_EQ(v, a);
    ASSERT_TRUE(ctx.msReadValue(&v));
    EXPECT_EQ(v, b);
    EXPECT_FALSE(ctx.msReadValue(&v));
}

TEST(StandardApps, EdgeListAppEmitsExactBinaryLayout)
{
    const auto g = wk::genEdgeList(21, 64, 512, false);
    sd::TextWriter w;
    g.serialize(w);
    co::EdgeListApp app(0);
    const auto out = runApp(app, w.bytes(), 1000);
    EXPECT_EQ(out, g.toBinary());
    EXPECT_EQ(app.returnValue(), g.numEdges());
}

TEST(StandardApps, WeightedEdgeListApp)
{
    const auto g = wk::genEdgeList(22, 64, 512, true);
    sd::TextWriter w;
    g.serialize(w);
    co::EdgeListApp app(1);  // arg bit0 = weighted
    const auto out = runApp(app, w.bytes(), 777);
    EXPECT_EQ(out, g.toBinary());
}

TEST(StandardApps, MatrixApp)
{
    const auto m = wk::genMatrix(23, 24, 0.3);
    sd::TextWriter w;
    m.serialize(w);
    co::MatrixApp app(0);
    const auto out = runApp(app, w.bytes(), 333);
    // Compare against a host parse of the same text (float rounding is
    // identical because both run the same parse code).
    sd::TextScanner s(w.bytes().data(), w.bytes().size());
    sd::MatrixObject host;
    ASSERT_TRUE(host.parse(s));
    EXPECT_EQ(out, host.toBinary());
}

TEST(StandardApps, IntArrayApp)
{
    const auto a = wk::genIntArray(24, 3000);
    sd::TextWriter w;
    a.serialize(w);
    co::IntArrayApp app(0);
    EXPECT_EQ(runApp(app, w.bytes(), 512), a.toBinary());
}

TEST(StandardApps, PointSetApp)
{
    const auto p = wk::genPointSet(25, 200, 6, 0.4);
    sd::TextWriter w;
    p.serialize(w);
    co::PointSetApp app(0);
    sd::TextScanner s(w.bytes().data(), w.bytes().size());
    sd::PointSetObject host;
    ASSERT_TRUE(host.parse(s));
    EXPECT_EQ(runApp(app, w.bytes(), 450), host.toBinary());
}

TEST(StandardApps, CooMatrixApp)
{
    const auto c = wk::genCooMatrix(26, 50, 50, 600, 0.33);
    sd::TextWriter w;
    c.serialize(w);
    co::CooMatrixApp app(0);
    sd::TextScanner s(w.bytes().data(), w.bytes().size());
    sd::CooMatrixObject host;
    ASSERT_TRUE(host.parse(s));
    EXPECT_EQ(runApp(app, w.bytes(), 701), host.toBinary());
}

/** Property: app output is invariant under MREAD chunk size. */
class AppChunkProperty : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(AppChunkProperty, EdgeListOutputInvariant)
{
    const auto g = wk::genEdgeList(27, 32, 200, false);
    sd::TextWriter w;
    g.serialize(w);
    co::EdgeListApp app(0);
    EXPECT_EQ(runApp(app, w.bytes(), GetParam()), g.toBinary());
}

INSTANTIATE_TEST_SUITE_P(ChunkSizes, AppChunkProperty,
                         ::testing::Values(1, 3, 17, 100, 512, 4096,
                                           1 << 20));

TEST(StandardApps, Int64SerializerRoundTrips)
{
    // binary -> device text -> host parse == original values.
    const auto a = wk::genIntArray(28, 500);
    std::vector<std::uint8_t> bin;
    for (const auto v : a.values) {
        const auto *p = reinterpret_cast<const std::uint8_t *>(&v);
        bin.insert(bin.end(), p, p + 8);
    }
    co::Int64TextSerializerApp app(0);
    co::MsChunkContext ctx(256 * 1024, 64 * 1024, 0);
    ctx.feedChunk(bin);
    ASSERT_TRUE(app.processWriteChunk(ctx));
    ctx.flushResidual();
    std::vector<std::uint8_t> text;
    for (auto &seg : ctx.takeFlushes())
        text.insert(text.end(), seg.begin(), seg.end());

    sd::TextScanner s(text.data(), text.size());
    std::vector<std::int64_t> back;
    std::int64_t v = 0;
    while (s.nextInt64(&v))
        back.push_back(v);
    EXPECT_EQ(back, a.values);
}

TEST(Compiler, ImageSizesAreDeterministicAndBounded)
{
    const auto img1 = co::MorpheusCompiler::compile(
        "foo", [](std::uint32_t) {
            return std::make_unique<co::IntArrayApp>(0);
        });
    const auto img2 = co::MorpheusCompiler::compile(
        "foo", [](std::uint32_t) {
            return std::make_unique<co::IntArrayApp>(0);
        });
    EXPECT_EQ(img1.textBytes, img2.textBytes);
    EXPECT_GE(img1.textBytes, 8u * 1024);
    EXPECT_LT(img1.textBytes, 24u * 1024);
    const auto img3 = co::MorpheusCompiler::compile(
        "bar",
        [](std::uint32_t) {
            return std::make_unique<co::IntArrayApp>(0);
        },
        12345);
    EXPECT_EQ(img3.textBytes, 12345u);
}

TEST(StandardApps, EndianSwapConvertsBigEndianBinaryInput)
{
    // Paper §III: the model also applies to binary input formats.
    morpheus::sim::Rng rng(31337);
    std::vector<std::uint32_t> words(5000);
    for (auto &w : words)
        w = static_cast<std::uint32_t>(rng.next());

    // Build the big-endian input file: count then words.
    std::vector<std::uint8_t> input;
    auto put_be = [&input](std::uint32_t v) {
        input.push_back(static_cast<std::uint8_t>(v >> 24));
        input.push_back(static_cast<std::uint8_t>(v >> 16));
        input.push_back(static_cast<std::uint8_t>(v >> 8));
        input.push_back(static_cast<std::uint8_t>(v));
    };
    put_be(static_cast<std::uint32_t>(words.size()));
    for (const auto w : words)
        put_be(w);

    co::EndianSwapApp app(0);
    co::MsChunkContext ctx(256 * 1024, 16 * 1024, 0);
    std::vector<std::uint8_t> out;
    std::size_t pos = 0;
    while (pos < input.size()) {
        // 4-byte-aligned chunks (the runtime keeps binary streams
        // word aligned).
        const std::size_t take =
            std::min<std::size_t>(4096, input.size() - pos);
        ctx.feedChunk(std::vector<std::uint8_t>(
            input.begin() + pos, input.begin() + pos + take));
        pos += take;
        app.processChunk(ctx);
        for (auto &seg : ctx.takeFlushes())
            out.insert(out.end(), seg.begin(), seg.end());
    }
    ctx.flushResidual();
    for (auto &seg : ctx.takeFlushes())
        out.insert(out.end(), seg.begin(), seg.end());

    ASSERT_EQ(out.size(), 4u * (words.size() + 1));
    std::uint32_t count;
    std::memcpy(&count, out.data(), 4);
    EXPECT_EQ(count, words.size());
    for (std::size_t i = 0; i < words.size(); ++i) {
        std::uint32_t v;
        std::memcpy(&v, out.data() + 4 * (i + 1), 4);
        ASSERT_EQ(v, words[i]) << i;
    }
    EXPECT_EQ(app.returnValue(), words.size());
}
