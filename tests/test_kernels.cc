/**
 * @file
 * Functional correctness of the ten compute kernels.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "workloads/generators.hh"
#include "workloads/kernels.hh"

namespace sd = morpheus::serde;
namespace wk = morpheus::workloads;

TEST(Kernels, PageRankIsDeterministicAndSized)
{
    const auto g = wk::genEdgeList(1, 500, 5000, false);
    const auto r1 = wk::pageRank(g, 5);
    const auto r2 = wk::pageRank(g, 5);
    EXPECT_EQ(r1.checksum, r2.checksum);
    EXPECT_GT(r1.work.cpuCycles, 0.0);
    // More iterations -> different result. (Charged work is fixed at
    // the paper-scale convergence iteration count, so it is equal.)
    const auto r3 = wk::pageRank(g, 10);
    EXPECT_NE(r1.checksum, r3.checksum);
    EXPECT_DOUBLE_EQ(r3.work.cpuCycles, r1.work.cpuCycles);
}

TEST(Kernels, ConnectedComponentsCountsIslands)
{
    // Two disjoint triangles + isolated vertices = components.
    sd::EdgeListObject g;
    g.numVertices = 8;
    auto edge = [&g](std::uint32_t a, std::uint32_t b) {
        g.src.push_back(a);
        g.dst.push_back(b);
    };
    edge(0, 1);
    edge(1, 2);
    edge(2, 0);
    edge(3, 4);
    edge(4, 5);
    // Vertices 6, 7 isolated: 2 + 1 + 1 + 1 (triangle, path, 6, 7)...
    const auto r = wk::connectedComponents(g);
    // Components: {0,1,2}, {3,4,5}, {6}, {7} = 4. Checksum is a digest
    // of that count; just check determinism plus a differing graph.
    edge(6, 7);
    const auto r2 = wk::connectedComponents(g);
    EXPECT_NE(r.checksum, r2.checksum);
}

TEST(Kernels, SsspDistancesRespectEdges)
{
    sd::EdgeListObject g;
    g.numVertices = 3;
    g.weighted = true;
    g.src = {0, 1, 0};
    g.dst = {1, 2, 2};
    g.weight = {5, 5, 100};
    const auto r1 = wk::sssp(g, 0, 8);
    // Shorten the direct edge: result must change.
    g.weight[2] = 1;
    const auto r2 = wk::sssp(g, 0, 8);
    EXPECT_NE(r1.checksum, r2.checksum);
}

TEST(Kernels, BfsVisitsReachableSet)
{
    const auto g = wk::genEdgeList(2, 300, 4000, false);
    const auto r1 = wk::bfs(g, 0);
    const auto r2 = wk::bfs(g, 0);
    EXPECT_EQ(r1.checksum, r2.checksum);
    const auto r3 = wk::bfs(g, 5);
    // Different source almost surely changes levels.
    EXPECT_NE(r1.checksum, r3.checksum);
}

TEST(Kernels, GaussianEliminationProducesUpperTriangle)
{
    const auto m = wk::genMatrix(3, 30, 0.0);
    const auto r = wk::gaussianEliminate(m);
    EXPECT_GT(r.work.gpuFlop, 0.0);
    // Charged work is per element at paper scale: quadratic in n.
    const auto m2 = wk::genMatrix(3, 60, 0.0);
    const auto r2 = wk::gaussianEliminate(m2);
    EXPECT_NEAR(r2.work.cpuCycles / r.work.cpuCycles, 4.0, 0.05);
}

TEST(Kernels, HybridSortActuallySorts)
{
    auto a = wk::genIntArray(4, 5000);
    const auto r = wk::hybridSort(a);
    // Sorting the already generated array again gives the same digest
    // (pure function).
    EXPECT_EQ(wk::hybridSort(a).checksum, r.checksum);
    // A permuted copy sorts to the same digest.
    auto b = a;
    std::swap(b.values.front(), b.values.back());
    EXPECT_EQ(wk::hybridSort(b).checksum, r.checksum);
}

TEST(Kernels, KmeansConvergesDeterministically)
{
    const auto p = wk::genPointSet(5, 1000, 4, 0.0);
    const auto r1 = wk::kmeans(p, 8, 5);
    const auto r2 = wk::kmeans(p, 8, 5);
    EXPECT_EQ(r1.checksum, r2.checksum);
    const auto r3 = wk::kmeans(p, 4, 5);
    EXPECT_NE(r1.checksum, r3.checksum);
}

TEST(Kernels, LudReconstructsMatrixApproximately)
{
    // Check L*U == A on a small matrix by running the decomposition
    // manually against the kernel's digest determinism.
    const auto m = wk::genMatrix(6, 20, 0.0);
    const auto r1 = wk::ludDecompose(m);
    const auto r2 = wk::ludDecompose(m);
    EXPECT_EQ(r1.checksum, r2.checksum);
    EXPECT_GT(r1.work.gpuFlop, 0.0);
}

TEST(Kernels, NearestNeighborsFindsKPoints)
{
    const auto p = wk::genPointSet(7, 2000, 3, 0.0);
    const auto r = wk::nearestNeighbors(p, 16);
    EXPECT_EQ(wk::nearestNeighbors(p, 16).checksum, r.checksum);
    EXPECT_NE(wk::nearestNeighbors(p, 8).checksum, r.checksum);
}

TEST(Kernels, SpmvRespectsMatrixValues)
{
    auto m = wk::genCooMatrix(8, 100, 100, 1000, 0.3);
    const auto r1 = wk::spmv(m, 3);
    m.values[0] += 1000.0;
    const auto r2 = wk::spmv(m, 3);
    EXPECT_NE(r1.checksum, r2.checksum);
}

TEST(Kernels, WorkDescriptorsArePopulated)
{
    const auto g = wk::genEdgeList(9, 200, 2000, false);
    const auto r = wk::bfs(g, 0);
    EXPECT_GT(r.work.cpuCycles, 0.0);
    EXPECT_GT(r.work.gpuMemBytes, 0u);
    EXPECT_GT(r.work.hostMemBytes, 0u);
}

// ----- numerical correctness (beyond digest determinism) -----

TEST(KernelsNumeric, PageRankMassIsConserved)
{
    // Recompute ranks the same way and check they form a probability
    // distribution (the damping formulation conserves mass up to the
    // dangling-node leak, which this generator avoids having matter).
    const auto g = wk::genEdgeList(31, 400, 6000, false);
    const std::size_t v = g.numVertices;
    std::vector<double> rank(v, 1.0 / static_cast<double>(v));
    std::vector<double> next(v);
    std::vector<std::uint32_t> deg(v, 0);
    for (const auto s : g.src)
        ++deg[s];
    double dangling = 0.0;
    for (unsigned it = 0; it < 10; ++it) {
        std::fill(next.begin(), next.end(),
                  0.15 / static_cast<double>(v));
        dangling = 0.0;
        for (std::size_t i = 0; i < g.numEdges(); ++i)
            next[g.dst[i]] += 0.85 * rank[g.src[i]] / deg[g.src[i]];
        for (std::size_t i = 0; i < v; ++i) {
            if (deg[i] == 0)
                dangling += 0.85 * rank[i];
        }
        rank.swap(next);
    }
    double sum = 0.0;
    for (const double r : rank)
        sum += r;
    // Total mass = 1 minus what leaked through dangling vertices.
    EXPECT_NEAR(sum + dangling, 1.0, 1e-9);
    for (const double r : rank)
        EXPECT_GT(r, 0.0);
}

TEST(KernelsNumeric, LudFactorsReconstructTheMatrix)
{
    // Run the same in-place Doolittle the kernel uses, then verify
    // L * U == A element-wise.
    const std::uint32_t n = 24;
    const auto a = wk::genMatrix(32, n, 0.0);
    auto m = a;
    auto at = [&m, n](std::size_t r, std::size_t c) -> float & {
        return m.values[r * n + c];
    };
    for (std::size_t k = 0; k < n; ++k) {
        for (std::size_t r = k + 1; r < n; ++r) {
            at(r, k) /= at(k, k);
            for (std::size_t c = k + 1; c < n; ++c)
                at(r, c) -= at(r, k) * at(k, c);
        }
    }
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < n; ++c) {
            double lu = 0.0;
            for (std::size_t k = 0; k <= std::min(r, c); ++k) {
                const double l =
                    (k == r) ? 1.0 : (k < r ? m.values[r * n + k] : 0.0);
                const double u = (k <= c) ? m.values[k * n + c] : 0.0;
                lu += l * u;
            }
            const double orig = a.values[r * n + c];
            EXPECT_NEAR(lu, orig,
                        1e-2 * std::max(1.0, std::abs(orig)))
                << r << "," << c;
        }
    }
}

TEST(KernelsNumeric, BfsLevelsRespectEdgeRelaxation)
{
    // Every edge (u,v) with u reachable satisfies
    // level[v] <= level[u] + 1 (and reachable v are never worse).
    const auto g = wk::genEdgeList(33, 500, 6000, false);
    const std::size_t v = g.numVertices;
    std::vector<std::uint32_t> offset(v + 1, 0);
    for (const auto s : g.src)
        ++offset[s + 1];
    for (std::size_t i = 1; i <= v; ++i)
        offset[i] += offset[i - 1];
    std::vector<std::uint32_t> adj(g.numEdges());
    auto cursor = offset;
    for (std::size_t i = 0; i < g.numEdges(); ++i)
        adj[cursor[g.src[i]]++] = g.dst[i];
    std::vector<std::int32_t> level(v, -1);
    std::vector<std::uint32_t> q{0};
    level[0] = 0;
    for (std::size_t h = 0; h < q.size(); ++h) {
        const auto u = q[h];
        for (auto i = offset[u]; i < offset[u + 1]; ++i) {
            if (level[adj[i]] < 0) {
                level[adj[i]] = level[u] + 1;
                q.push_back(adj[i]);
            }
        }
    }
    for (std::size_t i = 0; i < g.numEdges(); ++i) {
        if (level[g.src[i]] >= 0) {
            ASSERT_GE(level[g.dst[i]], 0);
            EXPECT_LE(level[g.dst[i]], level[g.src[i]] + 1);
        }
    }
}

TEST(KernelsNumeric, SpmvMatchesDenseReference)
{
    // y = A*x via the COO kernel's first iteration equals a dense
    // recomputation.
    const auto m = wk::genCooMatrix(34, 40, 40, 300, 0.3);
    std::vector<double> x(m.cols, 1.0);
    std::vector<double> y(m.rows, 0.0);
    for (std::size_t i = 0; i < m.nnz(); ++i)
        y[m.rowIdx[i]] += m.values[i] * x[m.colIdx[i]];

    std::vector<double> dense(
        static_cast<std::size_t>(m.rows) * m.cols, 0.0);
    for (std::size_t i = 0; i < m.nnz(); ++i)
        dense[m.rowIdx[i] * m.cols + m.colIdx[i]] += m.values[i];
    for (std::uint32_t r = 0; r < m.rows; ++r) {
        double ref = 0.0;
        for (std::uint32_t c = 0; c < m.cols; ++c)
            ref += dense[r * m.cols + c];
        EXPECT_NEAR(y[r], ref, 1e-9);
    }
}

TEST(KernelsNumeric, CsvStatsMatchDirectComputation)
{
    const auto t = wk::genCsvTable(35, 500, 3, 0.4);
    const auto r1 = wk::csvColumnStats(t);
    // Scaling every value shifts the stats => different digest.
    auto t2 = t;
    for (auto &v : t2.values)
        v += 1.0;
    EXPECT_NE(wk::csvColumnStats(t2).checksum, r1.checksum);
    // Permuting rows leaves per-column stats unchanged.
    auto t3 = t;
    const std::size_t cols = t.columns.size();
    for (std::size_t c = 0; c < cols; ++c)
        std::swap(t3.values[0 * cols + c],
                  t3.values[7 * cols + c]);
    EXPECT_EQ(wk::csvColumnStats(t3).checksum, r1.checksum);
}

TEST(KernelsNumeric, JsonReduceInvariantToValueSignsSquared)
{
    // L2 norms ignore signs: flipping every value's sign leaves the
    // reduction unchanged.
    auto o = wk::genJsonRecords(36, 400, 0.3);
    const auto r1 = wk::jsonRecordReduce(o);
    for (auto &v : o.values)
        v = -v;
    EXPECT_EQ(wk::jsonRecordReduce(o).checksum, r1.checksum);
}

TEST(KernelsNumeric, HybridSortOutputIsSorted)
{
    // Reimplement the kernel's bucket+sort and verify the invariant
    // directly (the kernel itself asserts element conservation).
    auto a = wk::genIntArray(37, 20000);
    auto sorted = a.values;
    std::sort(sorted.begin(), sorted.end());
    // The kernel digest of the generated array equals the digest of
    // pre-sorted input (sorting is idempotent on the result).
    morpheus::serde::IntArrayObject pre;
    pre.values = sorted;
    EXPECT_EQ(wk::hybridSort(a).checksum,
              wk::hybridSort(pre).checksum);
}
