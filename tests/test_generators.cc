/**
 * @file
 * Workload-generator tests: determinism, structure, and the selection
 * criteria of §VI-B (integer-dominated inputs, configurable float
 * fraction).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "serde/writer.hh"
#include "sim/rng.hh"
#include "workloads/generators.hh"

namespace sd = morpheus::serde;
namespace wk = morpheus::workloads;

TEST(Generators, EdgeListDeterministicAndInRange)
{
    const auto a = wk::genEdgeList(1, 1000, 5000, false);
    const auto b = wk::genEdgeList(1, 1000, 5000, false);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.numEdges(), 5000u);
    EXPECT_EQ(a.numVertices, 1000u);
    for (std::size_t i = 0; i < a.numEdges(); ++i) {
        EXPECT_LT(a.src[i], 1000u);
        EXPECT_LT(a.dst[i], 1000u);
        EXPECT_NE(a.src[i], a.dst[i]);  // no self loops
    }
}

TEST(Generators, EdgeListSkewedDegrees)
{
    const auto g = wk::genEdgeList(2, 1000, 50000, false);
    // Low vertex ids should source far more edges than high ones.
    std::uint64_t low = 0, high = 0;
    for (const auto s : g.src) {
        if (s < 100)
            ++low;
        if (s >= 900)
            ++high;
    }
    EXPECT_GT(low, 4 * high);
}

TEST(Generators, WeightedEdgesHavePositiveWeights)
{
    const auto g = wk::genEdgeList(3, 100, 1000, true);
    ASSERT_EQ(g.weight.size(), 1000u);
    for (const auto w : g.weight) {
        EXPECT_GE(w, 1);
        EXPECT_LE(w, 99);
    }
}

TEST(Generators, MatrixIsDiagonallyDominant)
{
    const auto m = wk::genMatrix(4, 50, 0.2);
    for (std::uint32_t r = 0; r < 50; ++r) {
        double off = 0.0;
        for (std::uint32_t c = 0; c < 50; ++c) {
            if (c != r)
                off += std::abs(m.values[r * 50 + c]);
        }
        EXPECT_GT(m.values[r * 50 + r], off * 0.49);
    }
}

TEST(Generators, FloatFractionControlsTokenMix)
{
    // Serialize and count '.' tokens to estimate the float share.
    auto float_share = [](double frac) {
        const auto m = wk::genCooMatrix(5, 100, 100, 5000, frac);
        std::size_t floats = 0;
        for (const auto v : m.values) {
            if (v != static_cast<double>(
                         static_cast<std::int64_t>(v))) {
                ++floats;
            }
        }
        return static_cast<double>(floats) / 5000.0;
    };
    EXPECT_LT(float_share(0.0), 0.01);
    EXPECT_NEAR(float_share(0.33), 0.33, 0.05);
    EXPECT_NEAR(float_share(1.0), 1.0, 0.05);
}

TEST(Generators, PointSetShape)
{
    const auto p = wk::genPointSet(6, 500, 7, 0.0);
    EXPECT_EQ(p.numPoints(), 500u);
    EXPECT_EQ(p.dims, 7u);
    EXPECT_EQ(p.coords.size(), 3500u);
}

TEST(Generators, CooRowsSortedNondecreasing)
{
    const auto m = wk::genCooMatrix(7, 200, 100, 3000, 0.0);
    for (std::size_t i = 1; i < m.nnz(); ++i)
        EXPECT_LE(m.rowIdx[i - 1], m.rowIdx[i]);
    for (std::size_t i = 0; i < m.nnz(); ++i) {
        EXPECT_LT(m.rowIdx[i], 200u);
        EXPECT_LT(m.colIdx[i], 100u);
    }
}

TEST(Generators, IntArrayBoundedForCompactText)
{
    const auto a = wk::genIntArray(8, 10000);
    for (const auto v : a.values) {
        EXPECT_GE(v, 0);
        EXPECT_LE(v, 999999);
    }
}

TEST(Generators, TextSizesScaleWithElementCount)
{
    sd::TextWriter w1, w2;
    wk::genIntArray(9, 1000).serialize(w1);
    wk::genIntArray(9, 2000).serialize(w2);
    EXPECT_GT(w2.size(), w1.size() * 3 / 2);
}

TEST(Zipfian, CdfIsMonotoneAndEndsAtOne)
{
    const wk::ZipfianGenerator z(64, 0.99);
    EXPECT_EQ(z.size(), 64u);
    double prev = 0.0;
    for (std::uint32_t k = 0; k < z.size(); ++k) {
        EXPECT_GT(z.cdf(k), prev);
        prev = z.cdf(k);
    }
    EXPECT_DOUBLE_EQ(z.cdf(z.size() - 1), 1.0);
}

TEST(Zipfian, ZeroSkewIsUniform)
{
    const wk::ZipfianGenerator z(10, 0.0);
    for (std::uint32_t k = 0; k < 10; ++k)
        EXPECT_NEAR(z.cdf(k), (k + 1) / 10.0, 1e-12);
}

TEST(Zipfian, SkewConcentratesMassOnLowRanks)
{
    const wk::ZipfianGenerator z(100, 0.99);
    // Head-heavy: the first 10 of 100 ranks carry well over their
    // uniform 10% share.
    EXPECT_GT(z.cdf(9), 0.4);
    morpheus::sim::Rng rng(7);
    std::vector<unsigned> hist(100, 0);
    for (unsigned i = 0; i < 4000; ++i)
        ++hist[z.draw(rng)];
    EXPECT_GT(hist[0], hist[50]);
}

TEST(Zipfian, IndexForUniformClampsUpperBoundary)
{
    // Float prefix sums can leave cdf(n-1) fractionally below 1; the
    // constructor pins back() to exactly 1.0 and indexForUniform clamps
    // past-the-end hits, so no deviate in [0, 1] can index out of range.
    const wk::ZipfianGenerator z(1000, 0.99);
    EXPECT_DOUBLE_EQ(z.cdf(z.size() - 1), 1.0);
    EXPECT_EQ(z.indexForUniform(1.0), z.size() - 1);
    EXPECT_EQ(z.indexForUniform(std::nextafter(1.0, 0.0)), z.size() - 1);
    // Even a (theoretically impossible) u above 1 must clamp, not run
    // off the CDF.
    EXPECT_EQ(z.indexForUniform(std::nextafter(1.0, 2.0)), z.size() - 1);
}

TEST(Zipfian, IndexForUniformLowerBoundaryAndSingleton)
{
    const wk::ZipfianGenerator z(8, 1.2);
    EXPECT_EQ(z.indexForUniform(0.0), 0u);
    // u exactly on an interior CDF point selects that item, the next
    // representable value above it the following item.
    const double edge = z.cdf(2);
    EXPECT_EQ(z.indexForUniform(edge), 2u);
    EXPECT_EQ(z.indexForUniform(std::nextafter(edge, 2.0)), 3u);

    const wk::ZipfianGenerator one(1, 0.99);
    EXPECT_EQ(one.indexForUniform(0.0), 0u);
    EXPECT_EQ(one.indexForUniform(1.0), 0u);
}

TEST(Zipfian, DrawMatchesIndexForUniform)
{
    const wk::ZipfianGenerator z(64, 0.8);
    morpheus::sim::Rng a(3), b(3);
    for (unsigned i = 0; i < 200; ++i)
        EXPECT_EQ(z.draw(a), z.indexForUniform(b.nextDouble()));
}

TEST(Zipfian, DrawIsDeterministicAndConsumesOneUniform)
{
    const wk::ZipfianGenerator z(32, 1.1);
    morpheus::sim::Rng a(42), b(42);
    for (unsigned i = 0; i < 100; ++i)
        EXPECT_EQ(z.draw(a), z.draw(b));
    // Exactly one nextDouble() per draw: after N draws both streams
    // sit at the same point as a plain N-double burn.
    morpheus::sim::Rng c(42);
    for (unsigned i = 0; i < 100; ++i)
        c.nextDouble();
    EXPECT_EQ(a.nextDouble(), c.nextDouble());
}
