/**
 * @file
 * Unit tests for the multi-tenant scheduler (sched/) plus end-to-end
 * serving-driver properties: determinism across identical seeded runs
 * and starvation freedom under weighted deficit arbitration.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sched/core_dispatcher.hh"
#include "sched/tenant_arbiter.hh"
#include "workloads/serving.hh"

using namespace morpheus;
namespace wk = morpheus::workloads;

namespace {

constexpr sim::Tick kUs = sim::kPsPerUs;

sched::SchedConfig
loadAwareConfig()
{
    sched::SchedConfig cfg;
    cfg.placement = sched::PlacementPolicy::kLoadAware;
    return cfg;
}

}  // namespace

// ---------------------------------------------------------- dispatcher

TEST(CoreDispatcher, StaticPlacementIsModulo)
{
    sched::SchedConfig cfg;  // defaults: kStatic
    sched::CoreDispatcher d(cfg, 4, [](unsigned) { return sim::Tick{0}; });
    EXPECT_EQ(d.placeInstance(0, 0), 0u);
    EXPECT_EQ(d.placeInstance(5, 0), 1u);
    EXPECT_EQ(d.placeInstance(11, 0), 3u);
}

TEST(CoreDispatcher, PlacementIsStableForLiveInstance)
{
    sched::CoreDispatcher d(loadAwareConfig(), 4,
                            [](unsigned) { return sim::Tick{0}; });
    const unsigned core = d.placeInstance(7, 0);
    EXPECT_EQ(d.placeInstance(7, 1000), core);
    EXPECT_EQ(d.residents(core), 1u);  // not double-counted
    EXPECT_EQ(d.placements(), 1u);
}

TEST(CoreDispatcher, LoadAwareSpreadsByResidency)
{
    // All cores report an idle timeline; placement must still spread
    // instances instead of herding onto core 0.
    sched::CoreDispatcher d(loadAwareConfig(), 4,
                            [](unsigned) { return sim::Tick{0}; });
    std::vector<unsigned> residents(4, 0);
    for (std::uint32_t i = 0; i < 8; ++i)
        ++residents[d.placeInstance(i, 0)];
    for (unsigned c = 0; c < 4; ++c)
        EXPECT_EQ(residents[c], 2u) << "core " << c;
}

TEST(CoreDispatcher, LoadAwareBreaksTiesByBacklog)
{
    // Equal residency; core 2's timeline is free soonest.
    const std::vector<sim::Tick> free_at = {30 * kUs, 20 * kUs, 5 * kUs,
                                            40 * kUs};
    sched::CoreDispatcher d(loadAwareConfig(), 4,
                            [&](unsigned c) { return free_at[c]; });
    EXPECT_EQ(d.placeInstance(0, 0), 2u);
}

TEST(CoreDispatcher, ReleaseFreesTheSlot)
{
    sched::CoreDispatcher d(loadAwareConfig(), 2,
                            [](unsigned) { return sim::Tick{0}; });
    const unsigned core = d.placeInstance(1, 0);
    d.releaseInstance(1);
    EXPECT_EQ(d.residents(core), 0u);
    d.releaseInstance(99);  // unknown instance: no-op
}

TEST(CoreDispatcher, MigrationNeedsGainAboveThreshold)
{
    sched::SchedConfig cfg = loadAwareConfig();
    cfg.migration = true;
    cfg.migrationMinGain = 50 * kUs;
    sim::Tick busy = 0;
    sched::CoreDispatcher d(cfg, 2, [&](unsigned c) {
        return c == 0 ? busy : sim::Tick{0};
    });
    // All cores idle: ties break by index, so the instance lands on 0.
    ASSERT_EQ(d.placeInstance(0, 0), 0u);

    // Core 0's backlog grows past the threshold; the next chunk must
    // migrate to core 1.
    busy = 200 * kUs;
    const auto plan = d.coreForChunk(0, 0);
    EXPECT_TRUE(plan.migrated);
    EXPECT_EQ(plan.core, 1u);
    EXPECT_EQ(plan.previous, 0u);
    EXPECT_EQ(d.residents(1), 1u);
    EXPECT_EQ(d.migrations(), 1u);

    // Caller could not commit: the reversal restores the old state.
    d.cancelMigration(0, 0);
    EXPECT_EQ(d.coreOf(0), 0u);
    EXPECT_EQ(d.residents(1), 0u);
}

TEST(CoreDispatcher, NoMigrationBelowThreshold)
{
    sched::SchedConfig cfg = loadAwareConfig();
    cfg.migration = true;
    cfg.migrationMinGain = 50 * kUs;
    sim::Tick busy = 0;
    sched::CoreDispatcher d(cfg, 2, [&](unsigned c) {
        return c == 0 ? busy : sim::Tick{0};
    });
    ASSERT_EQ(d.placeInstance(0, 0), 0u);
    busy = 20 * kUs;  // gap below migrationMinGain
    const auto plan = d.coreForChunk(0, 0);
    EXPECT_FALSE(plan.migrated);
    EXPECT_EQ(plan.core, 0u);
}

TEST(CoreDispatcher, DsramPackingPrefersCoresWithRoom)
{
    // Core 0 is nearly out of D-SRAM: an instance carrying a grant
    // must land on core 1 even though index order favors core 0.
    sched::CoreDispatcher d(
        loadAwareConfig(), 2, [](unsigned) { return sim::Tick{0}; },
        [](unsigned c) { return c == 0 ? 1024u : 256u * 1024u; });
    EXPECT_EQ(d.placeInstance(0, 0, 64 * 1024), 1u);
    // Without a grant the fit signal is neutral; the emptier core
    // (fewer residents) wins as before.
    EXPECT_EQ(d.placeInstance(1, 0, 0), 0u);
}

TEST(CoreDispatcher, BacklogAwarePlacementPacksByBytes)
{
    sched::SchedConfig cfg = loadAwareConfig();
    cfg.backlogAwarePlacement = true;
    sched::CoreDispatcher d(cfg, 2,
                            [](unsigned) { return sim::Tick{0}; });
    // A declares a 1 MB stream and lands on core 0 (index tie-break);
    // B declares 1 KB and lands on core 1 (fewer residents).
    ASSERT_EQ(d.placeInstance(1, 0, 0, 1 << 20), 0u);
    ASSERT_EQ(d.placeInstance(2, 0, 0, 1 << 10), 1u);
    // Resident-count packing would tie 1-vs-1 and send C to core 0;
    // byte packing sees 1 MB vs 1 KB pending and picks core 1.
    EXPECT_EQ(d.placeInstance(3, 0, 0, 1 << 10), 1u);
    EXPECT_EQ(d.pendingBytes(0), std::uint64_t{1} << 20);
    EXPECT_EQ(d.pendingBytes(1), std::uint64_t{2} << 10);
}

TEST(CoreDispatcher, ServedBytesDrainThePackingSignal)
{
    sched::SchedConfig cfg = loadAwareConfig();
    cfg.backlogAwarePlacement = true;
    sched::CoreDispatcher d(cfg, 2,
                            [](unsigned) { return sim::Tick{0}; });
    ASSERT_EQ(d.placeInstance(1, 0, 0, 1 << 20), 0u);
    ASSERT_EQ(d.placeInstance(2, 0, 0, 512 << 10), 1u);
    // Instance 1's stream is mostly served: core 0 now has the
    // smaller pending-byte load, so the next declaration packs there.
    d.noteServedBytes(1, 900 << 10);
    EXPECT_EQ(d.pendingBytes(0), (std::uint64_t{1} << 20) - (900 << 10));
    EXPECT_EQ(d.placeInstance(3, 0, 0, 1 << 10), 0u);
    // Over-serving (host streamed more than declared) clamps at zero,
    // and release clears any residue.
    d.noteServedBytes(2, 10 << 20);
    EXPECT_EQ(d.pendingBytes(1), 0u);
    d.releaseInstance(1);
    d.releaseInstance(3);
    EXPECT_EQ(d.pendingBytes(0), 0u);
}

TEST(CoreDispatcher, BacklogAwareOffIgnoresDeclaredBytes)
{
    // Knob off: the declaration is tracked but does not steer
    // placement — resident count ties break by index as before.
    sched::CoreDispatcher d(loadAwareConfig(), 2,
                            [](unsigned) { return sim::Tick{0}; });
    ASSERT_EQ(d.placeInstance(1, 0, 0, 1 << 20), 0u);
    ASSERT_EQ(d.placeInstance(2, 0, 0, 1 << 10), 1u);
    EXPECT_EQ(d.placeInstance(3, 0, 0, 1 << 10), 0u);
}

TEST(CoreDispatcher, MigrationSkipsTargetsWithoutDsramRoom)
{
    sched::SchedConfig cfg = loadAwareConfig();
    cfg.migration = true;
    cfg.migrationMinGain = 50 * kUs;
    sim::Tick busy = 0;
    std::uint32_t free1 = 256 * 1024;
    sched::CoreDispatcher d(
        cfg, 2,
        [&](unsigned c) { return c == 0 ? busy : sim::Tick{0}; },
        [&](unsigned c) { return c == 0 ? 256u * 1024u : free1; });
    ASSERT_EQ(d.placeInstance(0, 0, 64 * 1024), 0u);

    // Core 0 backs up past the gain threshold, but core 1 cannot hold
    // the instance's grant: the dispatcher must not propose the move.
    busy = 200 * kUs;
    free1 = 1024;
    const auto stay = d.coreForChunk(0, 0);
    EXPECT_FALSE(stay.migrated);
    EXPECT_EQ(stay.core, 0u);
    EXPECT_EQ(d.migrations(), 0u);

    // Once room frees on the target the same gap migrates.
    free1 = 256 * 1024;
    const auto move = d.coreForChunk(0, 0);
    EXPECT_TRUE(move.migrated);
    EXPECT_EQ(move.core, 1u);
}

// ------------------------------------------------------------- arbiter

TEST(TenantArbiter, UnlimitedAdmissionByDefault)
{
    sched::SchedConfig cfg;  // caps at 0 = unlimited
    sched::TenantArbiter a(cfg);
    for (std::uint32_t i = 0; i < 64; ++i) {
        const auto d = a.admitInstance(/*tenant=*/1, i, /*arrival=*/i);
        EXPECT_FALSE(d.rejected);
        EXPECT_FALSE(d.retry);
        EXPECT_EQ(d.start, i);
    }
    EXPECT_EQ(a.instancesAdmitted(), 64u);
    EXPECT_EQ(a.openInstances(), 64u);
}

TEST(TenantArbiter, DeclaredBacklogDrainsWithDataCommands)
{
    sched::SchedConfig cfg;
    sched::TenantArbiter a(cfg);
    a.admitInstance(/*tenant=*/1, /*instance=*/7, /*arrival=*/0,
                    /*backlog_bytes=*/1 << 20);
    EXPECT_EQ(a.declaredBacklog(7), std::uint64_t{1} << 20);
    EXPECT_EQ(a.declaredBacklog(8), 0u);  // unknown instance
    a.admitData(7, 256 << 10, 100);
    EXPECT_EQ(a.declaredBacklog(7), std::uint64_t{768} << 10);
    a.onInstanceDone(7, 1000);
    EXPECT_EQ(a.declaredBacklog(7), 0u);
}

TEST(TenantArbiter, RejectPolicyDeniesOverQuota)
{
    sched::SchedConfig cfg;
    cfg.admission = sched::AdmissionPolicy::kReject;
    cfg.maxInflightPerTenant = 2;
    sched::TenantArbiter a(cfg);
    EXPECT_FALSE(a.admitInstance(1, 10, 100).rejected);
    EXPECT_FALSE(a.admitInstance(1, 11, 200).rejected);
    EXPECT_TRUE(a.admitInstance(1, 12, 300).rejected);
    // The quota is per tenant: another tenant still gets in.
    EXPECT_FALSE(a.admitInstance(2, 13, 400).rejected);
    EXPECT_EQ(a.instancesRejected(), 1u);
    // A completion frees the slot for the next arrival.
    a.onInstanceDone(10, 500);
    EXPECT_FALSE(a.admitInstance(1, 14, 600).rejected);
}

TEST(TenantArbiter, QueuePolicyDelaysBehindClosedInstances)
{
    sched::SchedConfig cfg;
    cfg.maxInflightPerTenant = 2;  // kQueue is the default policy
    sched::TenantArbiter a(cfg);
    ASSERT_FALSE(a.admitInstance(1, 20, 0).retry);
    ASSERT_FALSE(a.admitInstance(1, 21, 0).retry);
    a.onInstanceDone(20, 700);
    a.onInstanceDone(21, 900);

    // Both slots are held by *closed* instances whose completion ticks
    // are known: the third MINIT is queued to the earliest free tick.
    const auto d = a.admitInstance(1, 22, 100);
    EXPECT_FALSE(d.rejected);
    EXPECT_FALSE(d.retry);
    EXPECT_EQ(d.start, 700u);
    EXPECT_EQ(a.instancesQueued(), 1u);
}

TEST(TenantArbiter, QueuePolicyBouncesBehindOpenInstances)
{
    sched::SchedConfig cfg;
    cfg.maxInflightTotal = 1;
    sched::TenantArbiter a(cfg);
    ASSERT_FALSE(a.admitInstance(1, 30, 0).retry);
    // The slot is held by an open instance (completion unknown): the
    // arbiter cannot pick a start tick, so the host must retry.
    const auto d = a.admitInstance(2, 31, 50);
    EXPECT_TRUE(d.retry);
    EXPECT_FALSE(d.rejected);
    EXPECT_EQ(a.tenantOf(31), sched::TenantArbiter::kNoTenant);
    a.onInstanceDone(30, 500);
    EXPECT_FALSE(a.admitInstance(2, 31, 600).retry);
}

TEST(TenantArbiter, DuplicateLiveInstanceBounces)
{
    sched::SchedConfig cfg;
    sched::TenantArbiter a(cfg);
    ASSERT_FALSE(a.admitInstance(1, 40, 0).retry);
    EXPECT_TRUE(a.admitInstance(2, 40, 10).retry);
    EXPECT_EQ(a.tenantOf(40), 1u);  // live registration untouched
}

TEST(TenantArbiter, BacklogDrainsWithDataAndClearsOnDone)
{
    sched::SchedConfig cfg;
    sched::TenantArbiter a(cfg);
    a.admitInstance(1, 50, 0, /*backlog_bytes=*/1000);
    EXPECT_EQ(a.backlogOf(1), 1000);
    a.admitData(50, 400, 10);
    EXPECT_EQ(a.backlogOf(1), 600);
    // MDEINIT clears the residue even when the stream was cut short.
    a.onInstanceDone(50, 100);
    EXPECT_EQ(a.backlogOf(1), 0);
}

TEST(TenantArbiter, DrrPacesTheTenantRunningAhead)
{
    sched::SchedConfig cfg;
    cfg.arbitration = true;
    cfg.drrQuantumBytes = 4096;
    sched::TenantArbiter a(cfg);
    a.admitInstance(1, 60, 0, 1 << 20);
    a.admitInstance(2, 61, 0, 1 << 20);

    // Teach the rate estimator: 4 KiB per 10 us.
    a.onDataDone(4096, 0, 10 * kUs);

    // Tenant 1 streams far ahead while tenant 2 stays backlogged.
    sim::Tick now = 10 * kUs;
    bool paced = false;
    for (int i = 0; i < 16; ++i) {
        const sim::Tick start = a.admitData(60, 8192, now);
        a.onDataDone(8192, start, start + 10 * kUs);
        paced = paced || start > now;
        now = start + 10 * kUs;
    }
    EXPECT_TRUE(paced);
    EXPECT_GT(a.dataDelays(), 0u);

    // The starved tenant is never delayed.
    EXPECT_EQ(a.admitData(61, 8192, now), now);
}

TEST(TenantArbiter, DrrDelayIsClamped)
{
    sched::SchedConfig cfg;
    cfg.arbitration = true;
    cfg.drrQuantumBytes = 64;
    cfg.drrMaxDelay = 100 * kUs;
    sched::TenantArbiter a(cfg);
    a.admitInstance(1, 70, 0, 1 << 20);
    a.admitInstance(2, 71, 0, 1 << 20);
    a.onDataDone(64, 0, 1000 * kUs);  // glacial service rate

    sim::Tick now = 0;
    for (int i = 0; i < 8; ++i) {
        const sim::Tick start = a.admitData(70, 1 << 16, now);
        EXPECT_LE(start, now + cfg.drrMaxDelay);  // starvation freedom
        a.onDataDone(1 << 16, start, start + 10 * kUs);
        now = start + 10 * kUs;
    }
}

// ----------------------------------------------- end-to-end properties

namespace {

wk::ServingOptions
skewedServing(sched::PlacementPolicy placement, bool arbitration)
{
    wk::ServingOptions opts;
    opts.durationSec = 0.01;
    opts.seed = 7;
    const double rates[] = {16000.0, 2000.0, 1000.0};
    for (std::uint32_t t = 0; t < 3; ++t) {
        wk::TenantSpec spec;
        spec.id = t + 1;
        spec.weight = 1.0;
        spec.arrivalsPerSec = rates[t];
        opts.tenants.push_back(spec);
    }
    opts.sys.ssd.sched.placement = placement;
    opts.sys.ssd.sched.maxInflightTotal = 12;
    opts.sys.ssd.sched.arbitration = arbitration;
    // Partition each core's scratchpad between co-residents so the
    // end-to-end runs also exercise grants, bounces, and retries.
    opts.sys.ssd.sched.dsramPartitioning = true;
    return opts;
}

}  // namespace

TEST(Serving, IdenticalSeededRunsAreDeterministic)
{
    const auto opts = skewedServing(sched::PlacementPolicy::kLoadAware,
                                    /*arbitration=*/true);
    const wk::ServingReport a = wk::runServing(opts);
    const wk::ServingReport b = wk::runServing(opts);

    EXPECT_EQ(a.submitted, b.submitted);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.rejected, b.rejected);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.migrations, b.migrations);
    EXPECT_EQ(a.drrDelays, b.drrDelays);
    EXPECT_DOUBLE_EQ(a.p99Us, b.p99Us);
    EXPECT_DOUBLE_EQ(a.jainFairness, b.jainFairness);
    ASSERT_EQ(a.tenants.size(), b.tenants.size());
    for (std::size_t i = 0; i < a.tenants.size(); ++i) {
        EXPECT_EQ(a.tenants[i].completed, b.tenants[i].completed);
        EXPECT_EQ(a.tenants[i].servedBytes, b.tenants[i].servedBytes);
        EXPECT_DOUBLE_EQ(a.tenants[i].p99Us, b.tenants[i].p99Us);
    }
}

TEST(Serving, NoTenantStarvesUnderSkewedLoad)
{
    const wk::ServingReport r = wk::runServing(
        skewedServing(sched::PlacementPolicy::kLoadAware, true));

    ASSERT_EQ(r.tenants.size(), 3u);
    EXPECT_GT(r.completed, 0u);
    for (const auto &t : r.tenants) {
        // Every tenant finishes everything it submitted (open loop:
        // queueing shows up as latency, not loss) and makes progress.
        EXPECT_GT(t.submitted, 0u) << "tenant " << t.id;
        EXPECT_EQ(t.completed + t.rejected, t.submitted)
            << "tenant " << t.id;
        EXPECT_GT(t.completed, 0u) << "tenant " << t.id;
        EXPECT_GT(t.servedBytes, 0u) << "tenant " << t.id;
    }
    // The 16:2:1 demand skew must not collapse weight-normalized
    // service entirely: Jain stays above the single-tenant-hogging
    // floor of 1/n ~= 0.33.
    EXPECT_GT(r.jainFairness, 0.4);
}

TEST(Serving, StaticPlacementStillWorksEndToEnd)
{
    const wk::ServingReport r = wk::runServing(
        skewedServing(sched::PlacementPolicy::kStatic, false));
    EXPECT_GT(r.completed, 0u);
    EXPECT_EQ(r.completed + r.rejected, r.submitted);
}

TEST(Serving, ClosedLoopCompletesTheQuotaDeterministically)
{
    wk::ServingOptions opts =
        skewedServing(sched::PlacementPolicy::kLoadAware, true);
    opts.closedLoop = true;
    opts.closedLoopConcurrency = 3;
    opts.closedLoopRequests = 24;

    const wk::ServingReport a = wk::runServing(opts);
    // Every tenant issues exactly its quota — the closed loop ignores
    // durationSec and arrival rates — and self-throttling means no
    // request is ever lost.
    EXPECT_EQ(a.submitted, 3u * 24u);
    EXPECT_EQ(a.completed + a.rejected, a.submitted);
    EXPECT_EQ(a.lost, 0u);
    EXPECT_GT(a.throughputPerSec, 0.0);
    for (const auto &t : a.tenants)
        EXPECT_EQ(t.submitted, 24u) << "tenant " << t.id;

    const wk::ServingReport b = wk::runServing(opts);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_DOUBLE_EQ(a.p99Us, b.p99Us);
}

TEST(Serving, ClosedLoopConcurrencyTradesThroughputForLatency)
{
    // The defining closed-loop property: more in-flight requests per
    // tenant raises throughput (until saturation) and mean latency.
    wk::ServingOptions opts =
        skewedServing(sched::PlacementPolicy::kLoadAware, true);
    opts.closedLoop = true;
    opts.closedLoopRequests = 24;

    opts.closedLoopConcurrency = 1;
    const wk::ServingReport lo = wk::runServing(opts);
    opts.closedLoopConcurrency = 4;
    const wk::ServingReport hi = wk::runServing(opts);

    EXPECT_GT(hi.throughputPerSec, lo.throughputPerSec);
    EXPECT_GE(hi.meanUs, lo.meanUs);
}

// ------------------------------------------------------ circuit breaker

TEST(CircuitBreaker, OpensAfterThresholdConsecutiveFailures)
{
    sched::CircuitBreaker br(3, 8);
    EXPECT_FALSE(br.onDeviceFailure());
    EXPECT_FALSE(br.onDeviceFailure());
    EXPECT_FALSE(br.open());
    EXPECT_TRUE(br.onDeviceFailure());  // third: trips
    EXPECT_TRUE(br.open());
    // Already open: further failures never re-report the transition.
    EXPECT_FALSE(br.onDeviceFailure());
}

TEST(CircuitBreaker, SuccessResetsTheConsecutiveCount)
{
    sched::CircuitBreaker br(3, 8);
    br.onDeviceFailure();
    br.onDeviceFailure();
    EXPECT_FALSE(br.onDeviceSuccess());  // nothing to close
    br.onDeviceFailure();
    br.onDeviceFailure();
    EXPECT_FALSE(br.open());  // the streak restarted at the success
}

TEST(CircuitBreaker, ProbesEveryNthRoutedRequestWhileOpen)
{
    sched::CircuitBreaker br(1, 4);
    br.onDeviceFailure();
    ASSERT_TRUE(br.open());
    // Requests 1-3 host-route; every 4th is a half-open probe.
    for (int round = 0; round < 2; ++round) {
        EXPECT_EQ(br.route(), sched::CircuitBreaker::Route::kHost);
        EXPECT_EQ(br.route(), sched::CircuitBreaker::Route::kHost);
        EXPECT_EQ(br.route(), sched::CircuitBreaker::Route::kHost);
        EXPECT_EQ(br.route(), sched::CircuitBreaker::Route::kProbe);
    }
}

TEST(CircuitBreaker, ProbeSuccessReclosesProbeFailureDoesNot)
{
    sched::CircuitBreaker br(1, 2);
    br.onDeviceFailure();
    br.route();  // host
    ASSERT_EQ(br.route(), sched::CircuitBreaker::Route::kProbe);
    // Failed probe: stays open (no new transition), keeps probing.
    EXPECT_FALSE(br.onDeviceFailure());
    EXPECT_TRUE(br.open());
    br.route();
    ASSERT_EQ(br.route(), sched::CircuitBreaker::Route::kProbe);
    // Successful probe: closes, and routing returns to the device.
    EXPECT_TRUE(br.onDeviceSuccess());
    EXPECT_FALSE(br.open());
    EXPECT_EQ(br.route(), sched::CircuitBreaker::Route::kDevice);
}

TEST(CircuitBreaker, ZeroThresholdNeverOpens)
{
    sched::CircuitBreaker br(0, 8);
    for (int i = 0; i < 20; ++i)
        EXPECT_FALSE(br.onDeviceFailure());
    EXPECT_FALSE(br.open());
    EXPECT_EQ(br.route(), sched::CircuitBreaker::Route::kDevice);
}

// ------------------------------------------------------- hybrid policy

namespace {

sched::HybridConfig
hybridOn()
{
    sched::HybridConfig h;
    h.enabled = true;
    return h;
}

sched::HybridSignals
signals(std::uint64_t backlog, double host_us,
        std::uint64_t bytes = 64 * sim::kKiB)
{
    sched::HybridSignals sig;
    sig.backlogBytes = backlog;
    sig.hostBacklogUs = host_us;
    sig.requestBytes = bytes;
    return sig;
}

}  // namespace

TEST(HybridPolicy, DisabledIsInertAndAlwaysDevice)
{
    sched::HybridPlacementPolicy pol(sched::HybridConfig{});
    const auto d = pol.decide(signals(1u << 30, 1e9), 0);
    EXPECT_EQ(d.placement, sched::ExecPlacement::kDevice);
    EXPECT_EQ(pol.flips(), 0u);
    for (unsigned p = 0; p < sched::kNumPlacements; ++p)
        EXPECT_EQ(pol.decisions(static_cast<sched::ExecPlacement>(p)),
                  0u);
}

TEST(HybridPolicy, ForceHostRoutesEverything)
{
    sched::HybridConfig h = hybridOn();
    h.forceHost = true;
    sched::HybridPlacementPolicy pol(h);
    EXPECT_EQ(pol.decide(signals(0, 0.0), 0).placement,
              sched::ExecPlacement::kHost);
    EXPECT_EQ(pol.decisions(sched::ExecPlacement::kHost), 1u);
}

TEST(HybridPolicy, HysteresisEntersAtHighExitsAtLowWatermark)
{
    sched::HybridConfig h = hybridOn();
    h.split = false;
    sched::HybridPlacementPolicy pol(h);
    const std::uint64_t high = h.spillEnterBytes;

    // Below the high watermark: device, no spill.
    EXPECT_EQ(pol.decide(signals(high - 1, 0.0), 0).placement,
              sched::ExecPlacement::kDevice);
    EXPECT_FALSE(pol.spilling());

    // At the watermark: spill mode, host is the lighter side.
    EXPECT_EQ(pol.decide(signals(high, 0.0), 0).placement,
              sched::ExecPlacement::kHost);
    EXPECT_TRUE(pol.spilling());
    EXPECT_EQ(pol.flips(), 1u);

    // Back between the watermarks: still spilling (hysteresis).
    EXPECT_TRUE(pol.decide(signals(3 * high / 4, 0.0), 0).deviceLoad <
                1.0);
    EXPECT_TRUE(pol.spilling());
    EXPECT_EQ(pol.flips(), 1u);

    // Below the exit fraction: spill mode left.
    (void)pol.decide(signals(high / 4, 0.0), 0);
    EXPECT_FALSE(pol.spilling());
    EXPECT_EQ(pol.flips(), 2u);
}

TEST(HybridPolicy, DsramBouncePinsDeviceLoadForTheHoldWindow)
{
    sched::HybridConfig h = hybridOn();
    h.split = false;
    sched::HybridPlacementPolicy pol(h);
    sched::HybridSignals sig = signals(0, 0.0);
    sig.dsramBounces = 1;  // a fresh bounce, empty byte backlog
    EXPECT_EQ(pol.decide(sig, 0).placement,
              sched::ExecPlacement::kHost);
    EXPECT_TRUE(pol.spilling());
    // Past the hold window (and no new bounce) pressure decays.
    const auto d = pol.decide(sig, h.dsramBounceHold + 1);
    EXPECT_LT(d.deviceLoad, 1.0);
    EXPECT_FALSE(pol.spilling());
}

TEST(HybridPolicy, ShedsOnlyWhenBothSidesSaturated)
{
    sched::HybridConfig h = hybridOn();
    h.split = false;
    h.shed = true;
    h.shedFactor = 2.0;
    sched::HybridPlacementPolicy pol(h);
    const std::uint64_t saturated = 4 * h.spillEnterBytes;

    // Device saturated, host idle: spill to the host, don't shed.
    EXPECT_EQ(pol.decide(signals(saturated, 0.0), 0).placement,
              sched::ExecPlacement::kHost);
    // Both past shedFactor x watermark: bounce with retry-after.
    const auto d =
        pol.decide(signals(saturated, 4.0 * h.hostHighUs), 0);
    EXPECT_EQ(d.placement, sched::ExecPlacement::kShed);
    EXPECT_EQ(d.retryAfterUs, h.shedRetryUs);
}

TEST(HybridPolicy, SplitsWhenLoadsComparableRoutesLighterOtherwise)
{
    sched::HybridConfig h = hybridOn();
    sched::HybridPlacementPolicy pol(h);
    const std::uint64_t high = h.spillEnterBytes;

    // Comparable pressure (within splitBalance): split.
    const auto split =
        pol.decide(signals(2 * high, 2.0 * h.hostHighUs), 0);
    EXPECT_EQ(split.placement, sched::ExecPlacement::kSplit);
    EXPECT_DOUBLE_EQ(split.deviceShare, h.splitDeviceShare);

    // Lopsided toward the device: the host is the lighter side.
    EXPECT_EQ(pol.decide(signals(16 * high, 0.1), 0).placement,
              sched::ExecPlacement::kHost);

    // Tiny requests never split — lighter side instead.
    EXPECT_EQ(pol.decide(signals(2 * high, 1.0 * h.hostHighUs,
                                 h.splitMinBytes - 1), 0)
                  .placement,
              sched::ExecPlacement::kHost);
}

// ------------------------------------------------- hybrid serving runs

TEST(Serving, HybridSplitEngagesAndEveryRequestResolves)
{
    wk::ServingOptions opts =
        skewedServing(sched::PlacementPolicy::kLoadAware, true);
    opts.hybrid.enabled = true;
    // Spill immediately and split everything splittable: the point is
    // exercising the split machinery, not a realistic posture.
    opts.hybrid.spillEnterBytes = 1;
    opts.hybrid.splitBalance = 1e12;
    opts.hybrid.splitMinBytes = 1;

    const wk::ServingReport r = wk::runServing(opts);
    EXPECT_GT(r.splitRequests, 0u);
    EXPECT_EQ(r.completed + r.rejected, r.submitted);
    EXPECT_EQ(r.lost, 0u);
    EXPECT_GT(r.hybridDecisions[static_cast<std::size_t>(
                  sched::ExecPlacement::kSplit)],
              0u);
}

TEST(Serving, HybridRunsAreDeterministic)
{
    wk::ServingOptions opts =
        skewedServing(sched::PlacementPolicy::kLoadAware, true);
    opts.hybrid.enabled = true;
    opts.hybrid.shed = true;
    opts.hybrid.shedFactor = 1.0;

    const wk::ServingReport a = wk::runServing(opts);
    const wk::ServingReport b = wk::runServing(opts);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.rejected, b.rejected);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.fallbackOverload, b.fallbackOverload);
    EXPECT_EQ(a.splitRequests, b.splitRequests);
    EXPECT_EQ(a.shedBounces, b.shedBounces);
    EXPECT_EQ(a.hybridFlips, b.hybridFlips);
    EXPECT_DOUBLE_EQ(a.p99Us, b.p99Us);
}

TEST(Serving, BreakerOpenTenantIsNotDoubleRoutedByOverload)
{
    // Faults trip breakers while hybrid overload routing is active;
    // the two host-path triggers must stay disjoint: every fallback
    // carries exactly one reason, and the per-reason counters close
    // the accounting.
    wk::ServingOptions opts =
        skewedServing(sched::PlacementPolicy::kLoadAware, true);
    opts.hybrid.enabled = true;
    opts.hybrid.spillEnterBytes = 64 * sim::kKiB;
    opts.recovery.enabled = true;
    opts.breakerThreshold = 2;
    sim::FaultPlan plan;
    plan.mediaRate = 8e-3;
    plan.crashRate = 4e-3;
    plan.seed = 9;
    opts.faults = plan;

    const wk::ServingReport r = wk::runServing(opts);
    EXPECT_EQ(r.lost, 0u);
    EXPECT_EQ(r.completed + r.rejected, r.submitted);
    EXPECT_GT(r.fallbacks, 0u);
    EXPECT_EQ(r.fallbacks,
              r.fallbackBreaker + r.fallbackOverload + r.fallbackProbe);
    for (const wk::TenantReport &t : r.tenants) {
        EXPECT_EQ(t.fallbacks, t.fallbackBreaker + t.fallbackOverload +
                                   t.fallbackProbe)
            << "tenant " << t.id;
    }
}
