/**
 * @file
 * Object-format tests: text round trips, binary codecs, and the
 * text/binary equivalence invariants the Morpheus path relies on.
 */

#include <gtest/gtest.h>

#include "serde/formats.hh"
#include "workloads/generators.hh"

namespace sd = morpheus::serde;
namespace wk = morpheus::workloads;

namespace {

template <typename T, typename Parse>
T
roundTripText(const T &obj, Parse parse)
{
    sd::TextWriter w;
    obj.serialize(w);
    const auto text = w.take();
    sd::TextScanner s(text.data(), text.size());
    T out;
    EXPECT_TRUE(parse(out, s));
    return out;
}

}  // namespace

TEST(Formats, EdgeListTextRoundTrip)
{
    const auto g = wk::genEdgeList(1, 100, 500, false);
    const auto back = roundTripText(
        g, [](sd::EdgeListObject &o, sd::TextScanner &s) {
            return o.parse(s, false);
        });
    EXPECT_EQ(g, back);
}

TEST(Formats, WeightedEdgeListTextRoundTrip)
{
    const auto g = wk::genEdgeList(2, 50, 300, true);
    const auto back = roundTripText(
        g, [](sd::EdgeListObject &o, sd::TextScanner &s) {
            return o.parse(s, true);
        });
    EXPECT_EQ(g, back);
}

TEST(Formats, IntArrayTextRoundTrip)
{
    const auto a = wk::genIntArray(3, 1000);
    const auto back = roundTripText(
        a, [](sd::IntArrayObject &o, sd::TextScanner &s) {
            return o.parse(s);
        });
    EXPECT_EQ(a, back);
}

TEST(Formats, MatrixTextRoundTripIntegerValues)
{
    // Integer-valued matrices round-trip exactly.
    const auto m = wk::genMatrix(4, 20, 0.0);
    const auto back =
        roundTripText(m, [](sd::MatrixObject &o, sd::TextScanner &s) {
            return o.parse(s);
        });
    EXPECT_EQ(m.rows, back.rows);
    EXPECT_EQ(m.cols, back.cols);
    for (std::size_t i = 0; i < m.values.size(); ++i)
        EXPECT_DOUBLE_EQ(m.values[i], back.values[i]);
}

TEST(Formats, CooTextRoundTripWithFloats)
{
    const auto m = wk::genCooMatrix(5, 100, 100, 500, 0.5);
    sd::TextWriter w;
    m.serialize(w);
    const auto text = w.take();
    sd::TextScanner s(text.data(), text.size());
    sd::CooMatrixObject back;
    ASSERT_TRUE(back.parse(s));
    ASSERT_EQ(back.nnz(), m.nnz());
    EXPECT_EQ(back.rowIdx, m.rowIdx);
    EXPECT_EQ(back.colIdx, m.colIdx);
    for (std::size_t i = 0; i < m.nnz(); ++i)
        EXPECT_NEAR(back.values[i], m.values[i], 1e-9);
}

TEST(Formats, PointSetTextRoundTripCounts)
{
    const auto p = wk::genPointSet(6, 200, 5, 0.3);
    sd::TextWriter w;
    p.serialize(w);
    const auto text = w.take();
    sd::TextScanner s(text.data(), text.size());
    sd::PointSetObject back;
    ASSERT_TRUE(back.parse(s));
    EXPECT_EQ(back.numPoints(), p.numPoints());
    EXPECT_EQ(back.dims, p.dims);
}

TEST(Formats, BinaryCodecsRoundTripExactly)
{
    const auto g = wk::genEdgeList(7, 64, 256, true);
    EXPECT_EQ(sd::EdgeListObject::fromBinary(g.toBinary(), true), g);

    const auto m = wk::genMatrix(8, 16, 0.4);
    EXPECT_EQ(sd::MatrixObject::fromBinary(m.toBinary()), m);

    const auto a = wk::genIntArray(9, 128);
    EXPECT_EQ(sd::IntArrayObject::fromBinary(a.toBinary()), a);

    const auto p = wk::genPointSet(10, 64, 3, 0.7);
    EXPECT_EQ(sd::PointSetObject::fromBinary(p.toBinary()), p);

    const auto c = wk::genCooMatrix(11, 32, 32, 99, 0.5);
    EXPECT_EQ(sd::CooMatrixObject::fromBinary(c.toBinary()), c);
}

TEST(Formats, ObjectBytesMatchesBinarySize)
{
    const auto g = wk::genEdgeList(12, 64, 256, false);
    EXPECT_EQ(g.objectBytes(), g.toBinary().size());
    const auto gw = wk::genEdgeList(12, 64, 256, true);
    EXPECT_EQ(gw.objectBytes(), gw.toBinary().size());
    const auto m = wk::genMatrix(13, 10, 0.0);
    EXPECT_EQ(m.objectBytes(), m.toBinary().size());
    const auto a = wk::genIntArray(14, 77);
    EXPECT_EQ(a.objectBytes(), a.toBinary().size());
    const auto p = wk::genPointSet(15, 20, 4, 0.0);
    EXPECT_EQ(p.objectBytes(), p.toBinary().size());
    const auto c = wk::genCooMatrix(16, 10, 10, 30, 0.0);
    EXPECT_EQ(c.objectBytes(), c.toBinary().size());
}

TEST(Formats, TextIsBiggerThanBinaryForTypicalInputs)
{
    // The paper's PCIe-traffic argument: objects are denser than text
    // for typical numeric data.
    const auto a = wk::genIntArray(17, 5000);
    sd::TextWriter w;
    a.serialize(w);
    EXPECT_GT(w.size(), a.objectBytes() / 2);  // sanity floor
}

TEST(Formats, EmptyObjectsRoundTrip)
{
    sd::IntArrayObject empty;
    sd::TextWriter w;
    empty.serialize(w);
    const auto text = w.take();
    sd::TextScanner s(text.data(), text.size());
    sd::IntArrayObject back;
    ASSERT_TRUE(back.parse(s));
    EXPECT_EQ(back, empty);
    EXPECT_EQ(sd::IntArrayObject::fromBinary(empty.toBinary()), empty);
}

TEST(Formats, StreamingParseEqualsContiguousParse)
{
    // The invariant the MREAD chunking depends on.
    const auto g = wk::genEdgeList(18, 128, 1024, false);
    sd::TextWriter w;
    g.serialize(w);
    const auto text = w.take();

    std::size_t pos = 0;
    sd::StreamingScanner s(
        [&](std::uint8_t *dst, std::size_t cap) {
            const std::size_t take =
                std::min<std::size_t>({cap, 37, text.size() - pos});
            std::copy(text.begin() + pos, text.begin() + pos + take,
                      dst);
            pos += take;
            return take;
        },
        64);
    sd::EdgeListObject back;
    ASSERT_TRUE(back.parse(s, false));
    EXPECT_EQ(back, g);
}
