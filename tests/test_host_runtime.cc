/**
 * @file
 * Host-runtime tests: the full invoke() path (MINIT + chunked MREADs +
 * MDEINIT), context-switch behaviour, and chunk-size invariance.
 */

#include <gtest/gtest.h>

#include "core/host_runtime.hh"
#include "core/standard_apps.hh"
#include "workloads/generators.hh"

namespace co = morpheus::core;
namespace ho = morpheus::host;
namespace sd = morpheus::serde;
namespace wk = morpheus::workloads;

namespace {

struct Rig
{
    ho::HostSystem sys;
    co::MorpheusDeviceRuntime device;
    co::NvmeP2p p2p;
    co::MorpheusRuntime runtime;
    co::StandardImages images = co::StandardImages::make();

    Rig() : device(sys.ssd()), p2p(sys), runtime(sys, device, p2p) {}
};

}  // namespace

TEST(HostRuntime, StreamCreateChargesOsWork)
{
    Rig rig;
    const auto extent =
        rig.sys.createFile("f", std::vector<std::uint8_t>{'1', ' '});
    const auto cs = rig.sys.os().syscalls();
    const auto stream = rig.runtime.streamCreate(extent, 1000);
    EXPECT_GT(stream.readyAt, 1000u);
    EXPECT_EQ(rig.sys.os().syscalls(), cs + 2);
}

TEST(HostRuntime, InvokeDeserializesWholeFile)
{
    Rig rig;
    const auto a = wk::genIntArray(41, 20000);
    sd::TextWriter w;
    a.serialize(w);
    const auto extent = rig.sys.createFile("ints", w.bytes());

    const auto stream =
        rig.runtime.streamCreate(extent, extent.readyAt);
    const auto target = rig.runtime.hostTarget(a.objectBytes());
    const auto res = rig.runtime.invoke(rig.images.intArray, stream,
                                        target, extent.readyAt);

    EXPECT_EQ(res.returnValue, a.values.size());
    EXPECT_GT(res.done, res.start);
    EXPECT_EQ(res.objectBytes, a.objectBytes());
    EXPECT_GT(res.mreadCommands, 1u);

    const auto bin = rig.sys.mem().store().readVec(
        target.addr, static_cast<std::size_t>(a.objectBytes()));
    EXPECT_EQ(sd::IntArrayObject::fromBinary(bin), a);
}

TEST(HostRuntime, FewWakeupsRegardlessOfFileSize)
{
    // The Fig 10 mechanism: the host blocks per batch (queue depth),
    // not per chunk.
    Rig rig;
    const auto a = wk::genIntArray(42, 60000);
    sd::TextWriter w;
    a.serialize(w);
    const auto extent = rig.sys.createFile("big", w.bytes());
    const auto stream =
        rig.runtime.streamCreate(extent, extent.readyAt);
    const auto target = rig.runtime.hostTarget(a.objectBytes());

    co::InvokeOptions opts;
    opts.chunkBlocks = 16;  // 8 KiB chunks -> many MREADs
    const auto res = rig.runtime.invoke(rig.images.intArray, stream,
                                        target, extent.readyAt, opts);
    EXPECT_GT(res.mreadCommands, 50u);
    EXPECT_LT(res.hostWakeups, res.mreadCommands / 10);
}

TEST(HostRuntime, ChunkSizeDoesNotChangeTheObject)
{
    const auto g = wk::genEdgeList(43, 128, 2000, false);
    sd::TextWriter w;
    g.serialize(w);

    auto run = [&](std::uint32_t chunk_blocks) {
        Rig rig;
        const auto extent = rig.sys.createFile("g", w.bytes());
        const auto stream =
            rig.runtime.streamCreate(extent, extent.readyAt);
        const auto target = rig.runtime.hostTarget(g.objectBytes());
        co::InvokeOptions opts;
        opts.chunkBlocks = chunk_blocks;
        opts.arg = 0;
        rig.runtime.invoke(rig.images.edgeList, stream, target,
                           extent.readyAt, opts);
        return rig.sys.mem().store().readVec(
            target.addr, static_cast<std::size_t>(g.objectBytes()));
    };
    const auto a = run(8);
    const auto b = run(64);
    const auto c = run(0);  // MDTS
    EXPECT_EQ(a, g.toBinary());
    EXPECT_EQ(b, a);
    EXPECT_EQ(c, a);
}

TEST(HostRuntime, DistinctInstancesMapToDistinctCores)
{
    Rig rig;
    const auto a = wk::genIntArray(44, 2000);
    sd::TextWriter w;
    a.serialize(w);
    const auto e1 = rig.sys.createFile("p0", w.bytes());
    const auto e2 = rig.sys.createFile("p1", w.bytes());

    const auto s1 = rig.runtime.streamCreate(e1, e2.readyAt);
    const auto s2 = rig.runtime.streamCreate(e2, e2.readyAt);
    const auto t1 = rig.runtime.hostTarget(a.objectBytes());
    const auto t2 = rig.runtime.hostTarget(a.objectBytes());
    rig.runtime.invoke(rig.images.intArray, s1, t1, e2.readyAt);
    rig.runtime.invoke(rig.images.intArray, s2, t2, e2.readyAt);

    // Instances 1 and 2 land on cores 1 and 2 (static modulo map).
    EXPECT_GT(rig.sys.ssd().core(1).cyclesExecuted(), 0u);
    EXPECT_GT(rig.sys.ssd().core(2).cyclesExecuted(), 0u);
}

TEST(HostRuntime, GpuTargetDeliversObjectsToGpuMemory)
{
    Rig rig;
    const auto a = wk::genIntArray(45, 5000);
    sd::TextWriter w;
    a.serialize(w);
    const auto extent = rig.sys.createFile("ints", w.bytes());
    const auto stream =
        rig.runtime.streamCreate(extent, extent.readyAt);

    std::uint64_t dev_addr = 0;
    const auto target =
        rig.runtime.gpuTarget(a.objectBytes(), &dev_addr);
    EXPECT_TRUE(target.isGpu);
    const auto res = rig.runtime.invoke(rig.images.intArray, stream,
                                        target, extent.readyAt);
    EXPECT_EQ(res.returnValue, a.values.size());

    const auto bin = rig.sys.gpu().mem().readVec(
        dev_addr, static_cast<std::size_t>(a.objectBytes()));
    EXPECT_EQ(sd::IntArrayObject::fromBinary(bin), a);
    // The transfer went peer-to-peer: the host link saw none of it.
    EXPECT_GE(rig.p2p.p2pBytes(), a.objectBytes());
}

TEST(HostRuntimeDeath, OversizedImagePanicsAtInvoke)
{
    Rig rig;
    const auto extent =
        rig.sys.createFile("f", std::vector<std::uint8_t>{'1', ' '});
    const auto huge = co::MorpheusCompiler::compile(
        "huge",
        [](std::uint32_t) {
            return std::make_unique<co::IntArrayApp>(0);
        },
        64 * 1024 * 1024);
    const auto stream =
        rig.runtime.streamCreate(extent, extent.readyAt);
    const auto target = rig.runtime.hostTarget(64);
    EXPECT_DEATH(rig.runtime.invoke(huge, stream, target,
                                    extent.readyAt),
                 "MINIT failed");
}

TEST(HostRuntime, FlushThresholdOverrideIsHonoured)
{
    // A tiny staging threshold forces many small DMA flushes; the
    // object must still be byte-identical.
    Rig rig;
    const auto a = wk::genIntArray(55, 5000);
    sd::TextWriter w;
    a.serialize(w);
    const auto extent = rig.sys.createFile("ints", w.bytes());
    const auto stream =
        rig.runtime.streamCreate(extent, extent.readyAt);
    const auto target = rig.runtime.hostTarget(a.objectBytes());
    co::InvokeOptions o;
    o.flushThreshold = 256;
    const auto res = rig.runtime.invoke(rig.images.intArray, stream,
                                        target, extent.readyAt, o);
    EXPECT_EQ(res.returnValue, a.values.size());
    const auto bin = rig.sys.mem().store().readVec(
        target.addr, static_cast<std::size_t>(a.objectBytes()));
    EXPECT_EQ(sd::IntArrayObject::fromBinary(bin), a);
}

TEST(HostRuntime, RanksUseDistinctQueuePairs)
{
    Rig rig;
    EXPECT_GT(rig.sys.numIoQueues(), 1u);
    EXPECT_NE(rig.sys.ioQueue(0), rig.sys.ioQueue(1));
    EXPECT_EQ(rig.sys.ioQueue(0),
              rig.sys.ioQueue(rig.sys.numIoQueues()));
}
