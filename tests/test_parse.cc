/**
 * @file
 * Unit tests for low-level ASCII number parsing and cost accounting.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "serde/parse.hh"

namespace sd = morpheus::serde;

namespace {

const std::uint8_t *
bytes(const std::string &s)
{
    return reinterpret_cast<const std::uint8_t *>(s.data());
}

}  // namespace

TEST(Parse, SeparatorClassification)
{
    EXPECT_TRUE(sd::isSeparator(' '));
    EXPECT_TRUE(sd::isSeparator('\t'));
    EXPECT_TRUE(sd::isSeparator('\n'));
    EXPECT_TRUE(sd::isSeparator('\r'));
    EXPECT_TRUE(sd::isSeparator(','));
    EXPECT_TRUE(sd::isSeparator('\0'));  // NVMe block padding
    EXPECT_FALSE(sd::isSeparator('0'));
    EXPECT_FALSE(sd::isSeparator('-'));
    EXPECT_FALSE(sd::isSeparator('.'));
}

TEST(Parse, SkipSeparatorsCountsBytes)
{
    const std::string s = "  \t\n,42";
    sd::ParseCost cost;
    const auto *p = sd::skipSeparators(bytes(s), bytes(s) + s.size(),
                                       cost);
    EXPECT_EQ(*p, '4');
    EXPECT_EQ(cost.bytes, 5u);
}

TEST(Parse, Int64Basic)
{
    const std::string s = "12345 ";
    sd::ParseCost cost;
    std::int64_t v = 0;
    const auto *p =
        sd::parseInt64(bytes(s), bytes(s) + s.size(), &v, cost);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(v, 12345);
    EXPECT_EQ(cost.intValues, 1u);
    EXPECT_EQ(cost.bytes, 5u);
    EXPECT_EQ(*p, ' ');
}

TEST(Parse, Int64Signs)
{
    sd::ParseCost cost;
    std::int64_t v = 0;
    const std::string neg = "-987";
    ASSERT_NE(sd::parseInt64(bytes(neg), bytes(neg) + neg.size(), &v,
                             cost),
              nullptr);
    EXPECT_EQ(v, -987);
    const std::string pos = "+55";
    ASSERT_NE(sd::parseInt64(bytes(pos), bytes(pos) + pos.size(), &v,
                             cost),
              nullptr);
    EXPECT_EQ(v, 55);
}

TEST(Parse, Int64RejectsNonNumbers)
{
    sd::ParseCost cost;
    std::int64_t v = 0;
    const std::string junk = "abc";
    EXPECT_EQ(sd::parseInt64(bytes(junk), bytes(junk) + junk.size(), &v,
                             cost),
              nullptr);
    const std::string lone = "-";
    EXPECT_EQ(sd::parseInt64(bytes(lone), bytes(lone) + lone.size(), &v,
                             cost),
              nullptr);
    const std::string empty;
    EXPECT_EQ(sd::parseInt64(bytes(empty), bytes(empty), &v, cost),
              nullptr);
}

TEST(Parse, DoubleForms)
{
    sd::ParseCost cost;
    double v = 0.0;
    const std::string cases[] = {"3.5", "-0.25", "10", "2.5e2",
                                 "1e-3", "+.5"};
    const double expected[] = {3.5, -0.25, 10.0, 250.0, 0.001, 0.5};
    for (std::size_t i = 0; i < std::size(cases); ++i) {
        const auto &s = cases[i];
        ASSERT_NE(sd::parseDouble(bytes(s), bytes(s) + s.size(), &v,
                                  cost),
                  nullptr)
            << s;
        EXPECT_NEAR(v, expected[i], 1e-12) << s;
    }
    EXPECT_EQ(cost.floatValues, std::size(cases));
}

TEST(Parse, DoubleTrailingExponentLetterNotConsumed)
{
    // "2e" is the number 2 followed by a stray 'e'.
    sd::ParseCost cost;
    double v = 0.0;
    const std::string s = "2e x";
    const auto *p =
        sd::parseDouble(bytes(s), bytes(s) + s.size(), &v, cost);
    ASSERT_NE(p, nullptr);
    EXPECT_DOUBLE_EQ(v, 2.0);
    EXPECT_EQ(*p, 'e');
}

TEST(Parse, FloatOpsCountedOnlyForDoubles)
{
    sd::ParseCost cost;
    std::int64_t i = 0;
    const std::string si = "123456";
    sd::parseInt64(bytes(si), bytes(si) + si.size(), &i, cost);
    EXPECT_EQ(cost.floatOps, 0u);

    double d = 0.0;
    const std::string sf = "123.456";
    sd::parseDouble(bytes(sf), bytes(sf) + sf.size(), &d, cost);
    EXPECT_GT(cost.floatOps, 0u);
}

TEST(Parse, TokenLooksFloat)
{
    const std::string f1 = "3.5 ", f2 = "1e5 ", i1 = "42 ", i2 = "-7\n";
    EXPECT_TRUE(sd::tokenLooksFloat(bytes(f1), bytes(f1) + f1.size()));
    EXPECT_TRUE(sd::tokenLooksFloat(bytes(f2), bytes(f2) + f2.size()));
    EXPECT_FALSE(sd::tokenLooksFloat(bytes(i1), bytes(i1) + i1.size()));
    EXPECT_FALSE(sd::tokenLooksFloat(bytes(i2), bytes(i2) + i2.size()));
}

TEST(Parse, CostAdds)
{
    sd::ParseCost a, b;
    a.bytes = 10;
    a.intValues = 2;
    b.bytes = 5;
    b.floatValues = 1;
    b.floatOps = 7;
    a += b;
    EXPECT_EQ(a.bytes, 15u);
    EXPECT_EQ(a.intValues, 2u);
    EXPECT_EQ(a.floatValues, 1u);
    EXPECT_EQ(a.floatOps, 7u);
}
