/**
 * @file
 * PCIe fabric model: point-to-point links, a switch with BAR-window
 * address routing, and DMA transfers — including peer-to-peer paths
 * that never touch the host port (the mechanism NVMe-P2P relies on).
 *
 * Addresses form a single flat bus address space. The host's DRAM
 * occupies a window at 0; devices that expose device memory (the GPU,
 * via DirectGMA/GPUDirect-style mapping) register BAR windows at high
 * addresses. A DMA is routed by destination (or source) address: if
 * both endpoints are downstream ports, the packet path is
 * device -> switch -> device and the host uplink carries nothing.
 */

#ifndef MORPHEUS_PCIE_PCIE_HH
#define MORPHEUS_PCIE_PCIE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/stats.hh"
#include "sim/timeline.hh"
#include "sim/types.hh"

namespace morpheus::pcie {

/** Bus address (flat across host DRAM and device BARs). */
using Addr = std::uint64_t;

/**
 * Functional memory behind a BAR window. Devices implement this so DMA
 * moves real bytes end-to-end (application objects can be compared
 * bit-for-bit across execution paths).
 */
class BusTarget
{
  public:
    virtual ~BusTarget() = default;
    /** Store @p n bytes at window-relative offset @p offset. */
    virtual void busWrite(Addr offset, const std::uint8_t *data,
                          std::size_t n) = 0;
    /** Load @p n bytes from window-relative offset @p offset. */
    virtual void busRead(Addr offset, std::uint8_t *out,
                         std::size_t n) const = 0;
};

/** Per-port link parameters. */
struct LinkConfig
{
    unsigned gen = 3;
    unsigned lanes = 4;
    /** Per-transaction latency (posted write / completion). */
    sim::Tick latency = 500 * sim::kPsPerNs;

    /**
     * Effective per-lane bandwidth in bytes/sec after encoding and
     * protocol overhead (gen1 ~250 MB/s ... gen3 ~985 MB/s).
     */
    double bytesPerSecPerLane() const;

    double
    bytesPerSec() const
    {
        return bytesPerSecPerLane() * lanes;
    }
};

/** A full-duplex link between one port and the switch. */
class PcieLink
{
  public:
    PcieLink(std::string name, const LinkConfig &config);

    const LinkConfig &config() const { return _config; }
    const std::string &name() const { return _name; }

    /** Reserve the device->switch direction. @return completion tick. */
    sim::Tick sendToSwitch(std::uint64_t bytes, sim::Tick earliest);
    /** Reserve the switch->device direction. @return completion tick. */
    sim::Tick sendToDevice(std::uint64_t bytes, sim::Tick earliest);

    std::uint64_t bytesToSwitch() const { return _bytesUp.value(); }
    std::uint64_t bytesToDevice() const { return _bytesDown.value(); }
    std::uint64_t totalBytes() const
    {
        return _bytesUp.value() + _bytesDown.value();
    }

    const sim::Timeline &upTimeline() const { return _up; }
    const sim::Timeline &downTimeline() const { return _down; }

    void registerStats(sim::stats::StatSet &set,
                       const std::string &prefix) const;

  private:
    std::string _name;
    LinkConfig _config;
    sim::Timeline _up;
    sim::Timeline _down;
    sim::stats::Counter _bytesUp;
    sim::stats::Counter _bytesDown;
};

/** Identifier of a switch port. */
using PortId = unsigned;

/**
 * PCIe switch: owns the per-port links, the bus address map, and the
 * DMA routing logic.
 */
class PcieSwitch
{
  public:
    PcieSwitch() = default;

    /** Attach a device; @return its port id. Port 0 should be the host
     *  root complex by convention. */
    PortId addPort(const std::string &name, const LinkConfig &config);

    /**
     * Map [base, base+size) to @p port (a BAR window or the host DRAM
     * window). Windows must not overlap.
     */
    void mapWindow(Addr base, std::uint64_t size, PortId port,
                   const std::string &name, BusTarget *target = nullptr);

    /** Remove a previously mapped window starting at @p base. */
    void unmapWindow(Addr base);

    /** Port owning @p addr; fatal if unmapped. */
    PortId routeAddr(Addr addr) const;

    /** True if some window covers @p addr. */
    bool isMapped(Addr addr) const;

    /**
     * DMA @p bytes from @p src_port into the window containing
     * @p dst_addr.
     *
     * The data crosses src's upstream direction and the destination
     * port's downstream direction concurrently; if src and dst are the
     * same port the transfer is internal (no fabric time). @return
     * completion tick.
     */
    sim::Tick dmaWrite(PortId src_port, Addr dst_addr,
                       std::uint64_t bytes, sim::Tick earliest);

    /** DMA @p bytes from the window containing @p src_addr to
     *  @p dst_port (a read request issued by dst). */
    sim::Tick dmaRead(PortId dst_port, Addr src_addr,
                      std::uint64_t bytes, sim::Tick earliest);

    /**
     * Timed + functional DMA: deliver @p data into the window holding
     * @p dst_addr (which must have a BusTarget) while reserving fabric
     * time as dmaWrite() does. @return completion tick.
     */
    sim::Tick dmaWriteData(PortId src_port, Addr dst_addr,
                           const std::uint8_t *data, std::size_t n,
                           sim::Tick earliest);

    /**
     * Timed + functional DMA read: fetch @p n bytes from the window
     * holding @p src_addr into @p out. @return completion tick.
     */
    sim::Tick dmaReadData(PortId dst_port, Addr src_addr,
                          std::uint8_t *out, std::size_t n,
                          sim::Tick earliest);

    /** Zero-time functional store into the window holding @p addr. */
    void poke(Addr addr, const std::uint8_t *data, std::size_t n);

    /** Zero-time functional load from the window holding @p addr. */
    void peek(Addr addr, std::uint8_t *out, std::size_t n) const;

    PcieLink &link(PortId port) { return *_links.at(port); }
    const PcieLink &link(PortId port) const { return *_links.at(port); }
    unsigned numPorts() const
    {
        return static_cast<unsigned>(_links.size());
    }

    /**
     * Fault injection: check-and-clear the transient-fault flag set by
     * the last DMA move. The fabric charges full transfer time for a
     * faulted move (the TLPs crossed the wire; the completion was
     * poisoned), so callers observe the fault after the fact, decide
     * how to recover (retry, fail the command), and the flag never
     * leaks into an unrelated later transfer.
     */
    bool
    consumeDmaFault()
    {
        const bool f = _dmaFaultPending;
        _dmaFaultPending = false;
        return f;
    }

    /** Total bytes moved across the fabric (each payload counted once). */
    std::uint64_t fabricBytes() const { return _fabricBytes.value(); }

    /** Bytes that moved device-to-device without touching the host. */
    std::uint64_t p2pBytes() const { return _p2pBytes.value(); }

    void registerStats(sim::stats::StatSet &set,
                       const std::string &prefix) const;

  private:
    struct Window
    {
        Addr base;
        std::uint64_t size;
        PortId port;
        std::string name;
        BusTarget *target = nullptr;
    };

    const Window &windowAt(Addr addr) const;

    sim::Tick move(PortId src, PortId dst, std::uint64_t bytes,
                   sim::Tick earliest);

    std::vector<std::unique_ptr<PcieLink>> _links;
    std::vector<Window> _windows;
    sim::stats::Counter _fabricBytes;
    sim::stats::Counter _p2pBytes;
    bool _dmaFaultPending = false;
};

}  // namespace morpheus::pcie

#endif  // MORPHEUS_PCIE_PCIE_HH
