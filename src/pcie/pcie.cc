#include "pcie/pcie.hh"

#include <algorithm>

#include "obs/trace.hh"
#include "sim/fault.hh"
#include "sim/logging.hh"

namespace morpheus::pcie {

double
LinkConfig::bytesPerSecPerLane() const
{
    // Effective per-lane payload bandwidth after 8b/10b (gen1/2) or
    // 128b/130b (gen3+) encoding and ~1.5% protocol overhead.
    switch (gen) {
      case 1:
        return 250.0 * sim::kMBps * 0.985;
      case 2:
        return 500.0 * sim::kMBps * 0.985;
      case 3:
        return 985.0 * sim::kMBps;
      case 4:
        return 1969.0 * sim::kMBps;
      default:
        MORPHEUS_FATAL("unsupported PCIe generation: ", gen);
    }
}

PcieLink::PcieLink(std::string name, const LinkConfig &config)
    : _name(std::move(name)), _config(config),
      _up(_name + ".up"), _down(_name + ".down")
{
    MORPHEUS_ASSERT(config.lanes > 0, "PCIe link with zero lanes");
}

sim::Tick
PcieLink::sendToSwitch(std::uint64_t bytes, sim::Tick earliest)
{
    _bytesUp += bytes;
    const sim::Tick dur =
        sim::transferTicks(bytes, _config.bytesPerSec());
    return _up.acquireUntil(earliest, dur) + _config.latency;
}

sim::Tick
PcieLink::sendToDevice(std::uint64_t bytes, sim::Tick earliest)
{
    _bytesDown += bytes;
    const sim::Tick dur =
        sim::transferTicks(bytes, _config.bytesPerSec());
    return _down.acquireUntil(earliest, dur) + _config.latency;
}

void
PcieLink::registerStats(sim::stats::StatSet &set,
                        const std::string &prefix) const
{
    set.registerCounter(prefix + ".bytesToSwitch", &_bytesUp);
    set.registerCounter(prefix + ".bytesToDevice", &_bytesDown);
}

PortId
PcieSwitch::addPort(const std::string &name, const LinkConfig &config)
{
    _links.push_back(std::make_unique<PcieLink>(name, config));
    return static_cast<PortId>(_links.size() - 1);
}

void
PcieSwitch::mapWindow(Addr base, std::uint64_t size, PortId port,
                      const std::string &name, BusTarget *target)
{
    MORPHEUS_ASSERT(port < _links.size(), "window for unknown port");
    MORPHEUS_ASSERT(size > 0, "empty BAR window: ", name);
    for (const auto &w : _windows) {
        const bool overlap = base < w.base + w.size && w.base < base + size;
        MORPHEUS_ASSERT(!overlap, "BAR windows overlap: ", name, " vs ",
                        w.name);
    }
    _windows.push_back(Window{base, size, port, name, target});
}

void
PcieSwitch::unmapWindow(Addr base)
{
    const auto it = std::find_if(
        _windows.begin(), _windows.end(),
        [base](const Window &w) { return w.base == base; });
    MORPHEUS_ASSERT(it != _windows.end(),
                    "unmapping a window that is not mapped");
    _windows.erase(it);
}

const PcieSwitch::Window &
PcieSwitch::windowAt(Addr addr) const
{
    for (const auto &w : _windows) {
        if (addr >= w.base && addr < w.base + w.size)
            return w;
    }
    MORPHEUS_FATAL("bus address ", addr, " hits no BAR window");
}

PortId
PcieSwitch::routeAddr(Addr addr) const
{
    return windowAt(addr).port;
}

bool
PcieSwitch::isMapped(Addr addr) const
{
    for (const auto &w : _windows) {
        if (addr >= w.base && addr < w.base + w.size)
            return true;
    }
    return false;
}

sim::Tick
PcieSwitch::move(PortId src, PortId dst, std::uint64_t bytes,
                 sim::Tick earliest)
{
    MORPHEUS_ASSERT(src < _links.size() && dst < _links.size(),
                    "DMA through unknown port");
    if (bytes == 0)
        return earliest;
    _fabricBytes += bytes;
    if (src == dst)
        return earliest;  // internal to the device; no fabric time
    if (src != 0 && dst != 0)
        _p2pBytes += bytes;
    // The payload streams through both links concurrently; completion
    // is bounded by the slower reservation.
    const sim::Tick up_done = _links[src]->sendToSwitch(bytes, earliest);
    const sim::Tick down_done =
        _links[dst]->sendToDevice(bytes, earliest);
    const sim::Tick done = std::max(up_done, down_done);
    // Transient-fault draw, one per payload move. Small control-plane
    // transfers (doorbells, SQEs, CQEs) sit below the plan's size
    // threshold and never consume a draw.
    if (auto *fi = sim::faultInjector()) {
        if (fi->dmaFault(bytes)) {
            _dmaFaultPending = true;
            if (auto *sink = obs::traceSink()) {
                obs::Span f;
                f.track = "pcie." + _links[src]->name() + "->" +
                          _links[dst]->name();
                f.name = "dma_fault";
                f.category = "pcie";
                f.begin = done;
                f.end = done;
                f.instant = true;
                f.bytes = bytes;
                sink->record(f);
            }
        }
    }
    if (auto *sink = obs::traceSink()) {
        obs::Span s;
        s.track = "pcie." + _links[src]->name() + "->" +
                  _links[dst]->name();
        // Port 0 is the root complex (host DRAM); everything else is
        // device-to-device traffic that never crosses the host.
        s.name = (src != 0 && dst != 0) ? "p2p_dma" : "dma";
        s.category = "pcie";
        s.begin = earliest;
        s.end = done;
        s.bytes = bytes;
        sink->record(s);
    }
    return done;
}

sim::Tick
PcieSwitch::dmaWrite(PortId src_port, Addr dst_addr, std::uint64_t bytes,
                     sim::Tick earliest)
{
    return move(src_port, routeAddr(dst_addr), bytes, earliest);
}

sim::Tick
PcieSwitch::dmaRead(PortId dst_port, Addr src_addr, std::uint64_t bytes,
                    sim::Tick earliest)
{
    return move(routeAddr(src_addr), dst_port, bytes, earliest);
}

sim::Tick
PcieSwitch::dmaWriteData(PortId src_port, Addr dst_addr,
                         const std::uint8_t *data, std::size_t n,
                         sim::Tick earliest)
{
    poke(dst_addr, data, n);
    return dmaWrite(src_port, dst_addr, n, earliest);
}

sim::Tick
PcieSwitch::dmaReadData(PortId dst_port, Addr src_addr, std::uint8_t *out,
                        std::size_t n, sim::Tick earliest)
{
    peek(src_addr, out, n);
    return dmaRead(dst_port, src_addr, n, earliest);
}

void
PcieSwitch::poke(Addr addr, const std::uint8_t *data, std::size_t n)
{
    const Window &w = windowAt(addr);
    MORPHEUS_ASSERT(w.target, "window ", w.name, " has no BusTarget");
    MORPHEUS_ASSERT(addr + n <= w.base + w.size,
                    "DMA crosses out of window ", w.name);
    w.target->busWrite(addr - w.base, data, n);
}

void
PcieSwitch::peek(Addr addr, std::uint8_t *out, std::size_t n) const
{
    const Window &w = windowAt(addr);
    MORPHEUS_ASSERT(w.target, "window ", w.name, " has no BusTarget");
    MORPHEUS_ASSERT(addr + n <= w.base + w.size,
                    "DMA crosses out of window ", w.name);
    w.target->busRead(addr - w.base, out, n);
}

void
PcieSwitch::registerStats(sim::stats::StatSet &set,
                          const std::string &prefix) const
{
    set.registerCounter(prefix + ".fabricBytes", &_fabricBytes);
    set.registerCounter(prefix + ".p2pBytes", &_p2pBytes);
    for (const auto &l : _links)
        l->registerStats(set, prefix + "." + l->name());
}

}  // namespace morpheus::pcie
