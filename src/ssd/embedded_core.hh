/**
 * @file
 * The SSD's embedded processors (Tensilica LX class).
 *
 * Each core is an in-order processor with private I-SRAM (code) and
 * D-SRAM (data), no FPU (floating-point work is charged at a software
 * emulation rate), and a cost model that converts serde::ParseCost
 * operation counts into cycles. Firmware (FTL upkeep) and StorageApps
 * share these cores; the paper maps every packet of one instance ID to
 * one fixed core.
 */

#ifndef MORPHEUS_SSD_EMBEDDED_CORE_HH
#define MORPHEUS_SSD_EMBEDDED_CORE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.hh"
#include "serde/parse.hh"
#include "sim/stats.hh"
#include "sim/timeline.hh"
#include "sim/types.hh"

namespace morpheus::ssd {

/** Embedded-core microarchitecture parameters. */
struct EmbeddedCoreConfig
{
    double clockHz = 500e6;     ///< 500 MHz in-order core.
    std::uint32_t isramBytes = 128 * 1024;
    std::uint32_t dsramBytes = 256 * 1024;

    /** Whether the core has a hardware FPU (ablation knob). */
    bool hasFpu = false;

    /**
     * Cycles to scan one input byte (compare/branch/advance). The
     * device library's parse loop runs from I-SRAM with word-wide
     * loads and no cache misses, so it sustains under a cycle per
     * byte on the Tensilica-class core (this is what lets the 500 MHz
     * cores beat a 2.5 GHz Xeon that spends ~85% of its time in OS
     * overhead, paper Fig 8).
     */
    double cyclesPerByteScan = 0.55;
    /** Fixed cycles per integer value conversion (accumulate+store). */
    double cyclesPerIntValue = 4.4;
    /** Cycles per float op with a hardware FPU. */
    double cyclesPerFloatOpHw = 1.5;
    /** Cycles per float op under software emulation (no FPU). */
    double cyclesPerFloatOpSoft = 12.0;
    /** Fixed cycles of firmware work to process one MREAD chunk. */
    double cyclesPerCommand = 2000.0;
    /** Cycles to program one ms_memcpy DMA descriptor (per flush). */
    double cyclesPerFlush = 600.0;

    double
    cyclesPerFloatOp() const
    {
        return hasFpu ? cyclesPerFloatOpHw : cyclesPerFloatOpSoft;
    }

    /** Cycles to deserialize the counted operations. */
    double
    parseCycles(const serde::ParseCost &cost) const
    {
        return static_cast<double>(cost.bytes) * cyclesPerByteScan +
               static_cast<double>(cost.intValues) * cyclesPerIntValue +
               static_cast<double>(cost.floatOps) * cyclesPerFloatOp();
    }

    /** Wall time to deserialize the counted operations. */
    sim::Tick
    parseTicks(const serde::ParseCost &cost) const
    {
        return sim::cyclesToTicks(parseCycles(cost), clockHz);
    }

    sim::Tick
    commandTicks() const
    {
        return sim::cyclesToTicks(cyclesPerCommand, clockHz);
    }
};

/**
 * One embedded core: occupancy timeline + loaded-image bookkeeping +
 * per-instance D-SRAM budget accounting (the data-side mirror of the
 * I-SRAM image bookkeeping).
 */
class EmbeddedCore
{
  public:
    /** @p track_prefix prefixes this core's occupancy track
     *  ("dev1.ssd.core[0]") in fleet runs; empty keeps the classic
     *  single-device name. */
    EmbeddedCore(unsigned id, const EmbeddedCoreConfig &config,
                 const std::string &track_prefix = {})
        : _id(id), _config(config),
          _timeline(track_prefix + "ssd.core[" + std::to_string(id) +
                    "]")
    {}

    unsigned id() const { return _id; }
    const EmbeddedCoreConfig &config() const { return _config; }

    /**
     * Occupy the core for @p cycles of work starting no earlier than
     * @p earliest. @return completion tick.
     */
    sim::Tick
    execute(double cycles, sim::Tick earliest)
    {
        const sim::Tick dur = sim::cyclesToTicks(cycles, _config.clockHz);
        _cyclesExecuted += static_cast<std::uint64_t>(cycles);
        return _timeline.acquireUntil(earliest, dur);
    }

    /**
     * execute(), plus a trace span named @p span_name on this core's
     * track when a sink is attached (acquireUntil returns start + dur,
     * so the occupancy interval is exact).
     */
    sim::Tick
    execute(double cycles, sim::Tick earliest, const char *span_name,
            const obs::SpanCtx &ctx)
    {
        const sim::Tick done = execute(cycles, earliest);
        if (auto *sink = obs::traceSink()) {
            obs::Span s;
            s.track = _timeline.name();
            s.name = span_name;
            s.category = "ssd";
            s.begin = done - sim::cyclesToTicks(cycles, _config.clockHz);
            s.end = done;
            s.trace = ctx.trace;
            s.tenant = ctx.tenant;
            s.instance = ctx.instance;
            s.core = _id;
            s.bytes = ctx.bytes;
            sink->record(s);
        }
        return done;
    }

    /**
     * Occupy the core for a fixed simulated duration regardless of the
     * cycle cost model — a hung StorageApp spinning until the
     * controller watchdog's deadline (fault injection). @return the
     * tick the core frees up.
     */
    sim::Tick
    seize(sim::Tick earliest, sim::Tick dur)
    {
        return _timeline.acquireUntil(earliest, dur);
    }

    /**
     * Load a code image into I-SRAM. @return false if it does not fit
     * next to the images already resident.
     */
    bool loadImage(std::uint32_t image_bytes);

    /** Release a previously loaded image. */
    void unloadImage(std::uint32_t image_bytes);

    /**
     * Reserve a per-instance D-SRAM budget. @return false when the
     * grant does not fit next to the budgets already reserved — the
     * co-resident grants may never overcommit the scratchpad.
     */
    bool reserveDsram(std::uint32_t bytes);

    /** Release a previously reserved D-SRAM budget. */
    void releaseDsram(std::uint32_t bytes);

    std::uint32_t isramUsed() const { return _isramUsed; }
    std::uint32_t dsramUsed() const { return _dsramUsed; }
    std::uint32_t
    dsramFree() const
    {
        return _config.dsramBytes - _dsramUsed;
    }
    std::uint64_t cyclesExecuted() const { return _cyclesExecuted; }
    const sim::Timeline &timeline() const { return _timeline; }

  private:
    unsigned _id;
    EmbeddedCoreConfig _config;
    sim::Timeline _timeline;
    std::uint32_t _isramUsed = 0;
    std::uint32_t _dsramUsed = 0;
    std::uint64_t _cyclesExecuted = 0;
};

}  // namespace morpheus::ssd

#endif  // MORPHEUS_SSD_EMBEDDED_CORE_HH
