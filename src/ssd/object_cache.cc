#include "ssd/object_cache.hh"

#include <algorithm>
#include <utility>

#include "sim/logging.hh"

namespace morpheus::ssd {

bool
cachePolicyFromName(const std::string &name,
                    ObjectCacheConfig::Policy *out)
{
    if (name == "lru")
        *out = ObjectCacheConfig::Policy::kLru;
    else if (name == "fifo")
        *out = ObjectCacheConfig::Policy::kFifo;
    else if (name == "frequency")
        *out = ObjectCacheConfig::Policy::kFrequency;
    else
        return false;
    return true;
}

const char *
cachePolicyName(ObjectCacheConfig::Policy policy)
{
    switch (policy) {
      case ObjectCacheConfig::Policy::kLru:
        return "lru";
      case ObjectCacheConfig::Policy::kFifo:
        return "fifo";
      case ObjectCacheConfig::Policy::kFrequency:
        return "frequency";
    }
    return "?";
}

ObjectCache::ObjectCache(const ObjectCacheConfig &config,
                         std::uint64_t reserved_bytes)
    : _config(config),
      _capacityBytes(config.budgetBytes > reserved_bytes
                         ? config.budgetBytes - reserved_bytes
                         : 0)
{
}

const ObjectCache::Entry *
ObjectCache::lookup(const ObjectCacheKey &key)
{
    for (Entry &e : _entries) {
        if (e.key == key) {
            ++e.hits;
            e.useSeq = ++_seq;
            ++_hits;
            _hitBytes += e.payload.size();
            return &e;
        }
    }
    ++_misses;
    return nullptr;
}

std::size_t
ObjectCache::victimIndex() const
{
    MORPHEUS_ASSERT(!_entries.empty(), "evicting from an empty cache");
    std::size_t victim = 0;
    for (std::size_t i = 1; i < _entries.size(); ++i) {
        const Entry &a = _entries[i];
        const Entry &b = _entries[victim];
        bool worse = false;
        switch (_config.policy) {
          case ObjectCacheConfig::Policy::kLru:
            worse = a.useSeq < b.useSeq;
            break;
          case ObjectCacheConfig::Policy::kFifo:
            worse = a.insertSeq < b.insertSeq;
            break;
          case ObjectCacheConfig::Policy::kFrequency:
            // Least frequently hit; FIFO age breaks ties so the scan
            // is deterministic.
            worse = a.hits != b.hits ? a.hits < b.hits
                                     : a.insertSeq < b.insertSeq;
            break;
        }
        if (worse)
            victim = i;
    }
    return victim;
}

void
ObjectCache::eraseEntry(std::size_t idx)
{
    _usedBytes -= _entries[idx].payload.size();
    _entries.erase(_entries.begin() +
                   static_cast<std::ptrdiff_t>(idx));
}

void
ObjectCache::insert(const ObjectCacheKey &key,
                    std::vector<std::uint8_t> payload,
                    std::uint32_t return_value)
{
    if (!_config.enabled || payload.size() > _capacityBytes) {
        if (_config.enabled)
            ++_rejectedTooLarge;
        return;
    }
    for (std::size_t i = 0; i < _entries.size(); ++i) {
        if (_entries[i].key == key) {
            // Re-parse of the same range: replace in place (the
            // payload is bit-identical by construction, but a replace
            // keeps the invariant trivially true).
            _usedBytes -= _entries[i].payload.size();
            _usedBytes += payload.size();
            _entries[i].payload = std::move(payload);
            _entries[i].returnValue = return_value;
            return;
        }
    }
    while (_usedBytes + payload.size() > _capacityBytes) {
        eraseEntry(victimIndex());
        ++_evictions;
    }
    Entry e;
    e.key = key;
    e.returnValue = return_value;
    e.insertSeq = ++_seq;
    e.useSeq = e.insertSeq;
    _usedBytes += payload.size();
    e.payload = std::move(payload);
    _entries.push_back(std::move(e));
    ++_insertions;
}

void
ObjectCache::invalidateRange(std::uint32_t nsid, std::uint64_t begin,
                             std::uint64_t end)
{
    if (begin >= end || _entries.empty())
        return;
    for (std::size_t i = _entries.size(); i-- > 0;) {
        const ObjectCacheKey &k = _entries[i].key;
        // End-exclusive overlap test (host::FileExtent convention):
        // [begin, end) and [rawBegin, rawBegin + rawLen) intersect iff
        // each starts before the other ends. Touching ranges do not.
        if (k.nsid == nsid && begin < k.rawBegin + k.rawLen &&
            k.rawBegin < end) {
            eraseEntry(i);
            ++_invalidations;
        }
    }
}

void
ObjectCache::invalidateApplet(const std::string &applet)
{
    for (std::size_t i = _entries.size(); i-- > 0;) {
        if (_entries[i].key.applet == applet) {
            eraseEntry(i);
            ++_invalidations;
        }
    }
}

void
ObjectCache::clear()
{
    _entries.clear();
    _usedBytes = 0;
}

void
ObjectCache::registerStats(sim::stats::StatSet &set,
                           const std::string &prefix) const
{
    set.registerCounter(prefix + ".hits", &_hits);
    set.registerCounter(prefix + ".misses", &_misses);
    set.registerCounter(prefix + ".insertions", &_insertions);
    set.registerCounter(prefix + ".evictions", &_evictions);
    set.registerCounter(prefix + ".invalidations", &_invalidations);
    set.registerCounter(prefix + ".hitBytes", &_hitBytes);
    set.registerCounter(prefix + ".rejectedTooLarge",
                        &_rejectedTooLarge);
}

}  // namespace morpheus::ssd
