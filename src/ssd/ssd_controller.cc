#include "ssd/ssd_controller.hh"

#include <algorithm>
#include <cstring>

#include "obs/trace.hh"
#include "sim/fault.hh"
#include "sim/logging.hh"

namespace morpheus::ssd {

SsdController::SsdController(sim::EventQueue &eq,
                             pcie::PcieSwitch &fabric, pcie::PortId port,
                             const SsdConfig &config)
    : _eq(eq), _fabric(fabric), _port(port), _config(config),
      _trackPrefix(config.label.empty() ? std::string()
                                        : config.label + "."),
      _flash(std::make_unique<flash::FlashArray>(eq, config.flash)),
      _ftl(std::make_unique<ftl::Ftl>(eq, *_flash, config.ftl)),
      _nvme(fabric, port, config.nvme),
      _dram(_trackPrefix + "ssd.dram")
{
    MORPHEUS_ASSERT(config.numCores > 0, "SSD with no embedded cores");
    _nvme.setTrackPrefix(_trackPrefix);
    for (unsigned i = 0; i < config.numCores; ++i) {
        _cores.push_back(
            std::make_unique<EmbeddedCore>(i, config.core, _trackPrefix));
    }
    _sched = std::make_unique<sched::SsdScheduler>(
        config.sched, config.numCores,
        [this](unsigned c) { return _cores[c]->timeline().freeAt(); },
        [this](unsigned c) { return _cores[c]->dsramFree(); },
        _trackPrefix);
    // The object cache and the pipeline's readahead buffer share one
    // controller-DRAM budget: whatever the readahead reserves comes
    // out of the cache's capacity, so the two never double-book.
    const std::uint64_t reserved =
        config.pipeline.enabled && config.pipeline.readahead
            ? config.pipeline.readaheadBufferBytes
            : 0;
    _cache = std::make_unique<ObjectCache>(config.cache, reserved);
    _nvme.setHandler([this](const nvme::Command &cmd, sim::Tick start) {
        return handleCommand(cmd, start);
    });
}

EmbeddedCore &
SsdController::coreFor(std::uint32_t instance_id, sim::Tick now,
                       std::uint32_t dsram_needed)
{
    // Paper §IV-B statically sends all packets with one instance ID to
    // core `id % numCores`; the dispatcher generalizes that to the
    // configured placement policy. The stream length the MINIT
    // declared in-band (SLBA) rides along as the byte-packing signal.
    return *_cores[_sched->dispatcher().placeInstance(
        instance_id, now, dsram_needed,
        _sched->arbiter().declaredBacklog(instance_id))];
}

std::uint64_t
SsdController::capacityBlocks() const
{
    return _ftl->logicalPages() *
           (_ftl->pageBytes() / nvme::kBlockBytes);
}

std::vector<std::uint8_t>
SsdController::peekBytes(std::uint64_t byte_offset,
                         std::uint64_t len) const
{
    const std::uint32_t page_bytes = _ftl->pageBytes();
    std::vector<std::uint8_t> out;
    out.reserve(len);
    std::uint64_t off = byte_offset;
    std::uint64_t remaining = len;
    while (remaining > 0) {
        const std::uint64_t lpn = off / page_bytes;
        const std::uint64_t in_page = off % page_bytes;
        const std::uint64_t take =
            std::min<std::uint64_t>(remaining, page_bytes - in_page);
        const auto page = _ftl->peekPage(lpn);
        out.insert(out.end(), page.begin() + in_page,
                   page.begin() + in_page + take);
        off += take;
        remaining -= take;
    }
    return out;
}

sim::Tick
SsdController::fetchToDram(std::uint64_t byte_offset, std::uint64_t len,
                           sim::Tick earliest, bool *media_error)
{
    if (len == 0)
        return earliest;
    const std::uint32_t page_bytes = _ftl->pageBytes();
    const std::uint64_t first = byte_offset / page_bytes;
    const std::uint64_t last = (byte_offset + len - 1) / page_bytes;
    const auto count = static_cast<std::uint32_t>(last - first + 1);
    const sim::Tick flash_done =
        _ftl->readPages(first, count, earliest, nullptr, media_error);
    // Buffer the payload through controller DRAM.
    return dramTransfer(len, flash_done);
}

PagedFetch
SsdController::fetchToDramPaged(std::uint64_t byte_offset,
                                std::uint64_t len, sim::Tick earliest)
{
    PagedFetch fetch;
    fetch.firstReady = earliest;
    fetch.allReady = earliest;
    if (len == 0)
        return fetch;
    const std::uint32_t page_bytes = _ftl->pageBytes();
    const std::uint64_t first = byte_offset / page_bytes;
    const std::uint64_t last = (byte_offset + len - 1) / page_bytes;
    const auto count = static_cast<std::uint32_t>(last - first + 1);
    fetch.firstPage = first;

    std::vector<sim::Tick> flash_ticks;
    bool media = false;
    _ftl->readPages(first, count, earliest, nullptr, &media,
                    &flash_ticks);
    fetch.mediaError = media;

    // Buffer each page through controller DRAM in logical order (the
    // parse consumes a sequential byte stream): page i's transfer
    // starts once its flash read lands and the DRAM port has drained
    // page i-1. Charge each page's in-range bytes so the total DRAM
    // occupancy matches the unpaged path.
    fetch.pageReady.reserve(count);
    sim::Tick buffered = earliest;
    for (std::uint32_t i = 0; i < count; ++i) {
        const std::uint64_t page_begin = (first + i) * page_bytes;
        const std::uint64_t lo =
            std::max<std::uint64_t>(page_begin, byte_offset);
        const std::uint64_t hi = std::min<std::uint64_t>(
            page_begin + page_bytes, byte_offset + len);
        buffered = dramTransfer(hi - lo,
                                std::max(flash_ticks[i], buffered));
        fetch.pageReady.push_back(buffered);
    }
    fetch.firstReady = fetch.pageReady.front();
    fetch.allReady = fetch.pageReady.back();
    return fetch;
}

sim::Tick
SsdController::retryOutboundDma(pcie::Addr dst, std::uint64_t bytes,
                                sim::Tick done, bool *failed)
{
    constexpr unsigned kMaxDeviceDmaRetries = 3;
    unsigned tries = 0;
    while (_fabric.consumeDmaFault()) {
        if (++tries > kMaxDeviceDmaRetries) {
            *failed = true;
            return done;
        }
        if (auto *fi = sim::faultInjector())
            fi->noteDmaRetry();
        // Re-send the payload; each resend can itself draw a fault.
        done = _fabric.dmaWrite(_port, dst, bytes, done);
    }
    return done;
}

sim::Tick
SsdController::storeFromDram(std::uint64_t byte_offset,
                             const std::vector<std::uint8_t> &data,
                             sim::Tick earliest)
{
    if (data.empty())
        return earliest;
    const std::uint32_t page_bytes = _ftl->pageBytes();
    const std::uint64_t first = byte_offset / page_bytes;
    const std::uint64_t last =
        (byte_offset + data.size() - 1) / page_bytes;

    // Read-modify-write the covered pages.
    std::vector<std::uint8_t> pages;
    pages.reserve((last - first + 1) * page_bytes);
    for (std::uint64_t lpn = first; lpn <= last; ++lpn) {
        const auto page = _ftl->peekPage(lpn);
        pages.insert(pages.end(), page.begin(), page.end());
    }
    const std::uint64_t start_off = byte_offset - first * page_bytes;
    std::copy(data.begin(), data.end(), pages.begin() + start_off);

    const sim::Tick buffered = dramTransfer(data.size(), earliest);
    return _ftl->writePages(first, pages, buffered);
}

sim::Tick
SsdController::dramTransfer(std::uint64_t bytes, sim::Tick earliest)
{
    const sim::Tick dur =
        sim::transferTicks(bytes, _config.dramBytesPerSec);
    return _dram.acquireUntil(earliest, dur);
}

nvme::CommandResult
SsdController::handleCommand(const nvme::Command &cmd, sim::Tick start)
{
    using nvme::Opcode;
    switch (cmd.opcode) {
      case Opcode::kRead:
        return doRead(cmd, start);
      case Opcode::kWrite:
        return doWrite(cmd, start);
      case Opcode::kFlush:
        // All writes are durable at completion in this model.
        return nvme::CommandResult{start + 10 * sim::kPsPerUs,
                                   nvme::Status::kSuccess, 0};
      case Opcode::kDsm:
        return doDsm(cmd, start);
      case Opcode::kMInit:
      case Opcode::kMRead:
      case Opcode::kMWrite:
      case Opcode::kMDeinit: {
        ++_morpheusCommands;
        if (!_engine) {
            return nvme::CommandResult{start,
                                       nvme::Status::kInvalidOpcode, 0};
        }
        // Scheduler front end: admission, pacing, placement release.
        const sched::FrontEndDecision fe =
            _sched->admitCommand(cmd, start);
        if (fe.status != nvme::Status::kSuccess)
            return nvme::CommandResult{start, fe.status, fe.dw0};
        nvme::CommandResult result = _engine->execute(cmd, fe.start);
        _sched->onCommandDone(cmd, fe.start, result);
        if (result.status == nvme::Status::kDsramExhausted &&
            result.dw0 == 0) {
            // Engine-level bounce: stamp the same NVMe-style
            // retry-after hint the admission path uses.
            result.dw0 = _sched->arbiter().retryAfterHintUs();
        }
        return result;
      }
    }
    return nvme::CommandResult{start, nvme::Status::kInvalidOpcode, 0};
}

nvme::CommandResult
SsdController::doRead(const nvme::Command &cmd, sim::Tick start)
{
    const std::uint64_t off = cmd.slba * nvme::kBlockBytes;
    const std::uint64_t len = cmd.dataBytes();
    if ((off + len) / _ftl->pageBytes() >= _ftl->logicalPages())
        return {start, nvme::Status::kLbaOutOfRange, 0};

    ++_readCommands;
    _bytesToHost += len;

    // Flash -> controller DRAM, then DMA out to the PRP target.
    bool media = false;
    const sim::Tick buffered = fetchToDram(off, len, start, &media);
    if (media) {
        // Uncorrectable page: the access time was charged, but no data
        // leaves the device. The host retries (read-retry recoverable).
        if (auto *sink = obs::traceSink()) {
            obs::Span s;
            s.track = _trackPrefix + "ssd.firmware";
            s.name = "media_error";
            s.category = "ssd";
            s.begin = buffered;
            s.end = buffered;
            s.instant = true;
            s.trace = cmd.traceId;
            s.status =
                static_cast<std::uint32_t>(nvme::Status::kMediaError);
            sink->record(s);
        }
        return {buffered, nvme::Status::kMediaError, 0};
    }
    const auto data = peekBytes(off, len);
    sim::Tick done =
        _fabric.dmaWriteData(_port, cmd.prp1, data.data(), data.size(),
                             buffered);
    bool dma_failed = false;
    done = retryOutboundDma(cmd.prp1, data.size(), done, &dma_failed);
    if (dma_failed)
        return {done, nvme::Status::kTransientTransferError, 0};
    return {done, nvme::Status::kSuccess, 0};
}

nvme::CommandResult
SsdController::doWrite(const nvme::Command &cmd, sim::Tick start)
{
    const std::uint64_t off = cmd.slba * nvme::kBlockBytes;
    const std::uint64_t len = cmd.dataBytes();
    if ((off + len) / _ftl->pageBytes() >= _ftl->logicalPages())
        return {start, nvme::Status::kLbaOutOfRange, 0};

    ++_writeCommands;
    _bytesFromHost += len;

    // DMA in from the PRP target, buffer in DRAM, program flash.
    std::vector<std::uint8_t> data(len);
    const sim::Tick fetched =
        _fabric.dmaReadData(_port, cmd.prp1, data.data(), len, start);
    if (_fabric.consumeDmaFault()) {
        // The inbound payload was corrupted in flight; fail before any
        // flash side effect so the host's resubmission is exact.
        return {fetched, nvme::Status::kTransientTransferError, 0};
    }
    const sim::Tick done = storeFromDram(off, data, fetched);
    // A standard write lands new raw bytes: any cached object parsed
    // from an overlapping range is stale now.
    if (_cache->enabled())
        _cache->invalidateRange(cmd.nsid, off, off + len);
    return {done, nvme::Status::kSuccess, 0};
}

nvme::IdentifyData
SsdController::identify() const
{
    nvme::IdentifyData id;
    id.capacityBlocks = capacityBlocks();
    id.maxTransferBlocks = _config.nvme.maxTransferBlocks;
    id.numQueues = 64;
    id.morpheusCapable = _engine != nullptr;
    return id;
}

nvme::CommandResult
SsdController::doDsm(const nvme::Command &cmd, sim::Tick start)
{
    // Deallocate: drop the mapping of every logical page fully covered
    // by the LBA range (partial pages keep their data).
    const std::uint64_t off = cmd.slba * nvme::kBlockBytes;
    const std::uint64_t len = cmd.dataBytes();
    const std::uint32_t page = _ftl->pageBytes();
    if ((off + len) / page >= _ftl->logicalPages())
        return {start, nvme::Status::kLbaOutOfRange, 0};
    const std::uint64_t first = (off + page - 1) / page;
    const std::uint64_t last_exclusive = (off + len) / page;
    sim::Tick done = start + 1 * sim::kPsPerUs;
    if (last_exclusive > first) {
        done = _ftl->trimPages(
            first, static_cast<std::uint32_t>(last_exclusive - first),
            start);
    }
    // TRIM deallocates the backing range: cached objects over it are
    // invalidated along with the mapping.
    if (_cache->enabled())
        _cache->invalidateRange(cmd.nsid, off, off + len);
    return {done, nvme::Status::kSuccess, 0};
}

void
SsdController::registerStats(sim::stats::StatSet &set,
                             const std::string &prefix) const
{
    set.registerCounter(prefix + ".readCommands", &_readCommands);
    set.registerCounter(prefix + ".writeCommands", &_writeCommands);
    set.registerCounter(prefix + ".morpheusCommands",
                        &_morpheusCommands);
    set.registerCounter(prefix + ".bytesToHost", &_bytesToHost);
    set.registerCounter(prefix + ".bytesFromHost", &_bytesFromHost);
    _flash->registerStats(set, prefix + ".flash");
    _ftl->registerStats(set, prefix + ".ftl");
    _nvme.registerStats(set, prefix + ".nvme");
    _sched->registerStats(set, prefix + ".sched");
}

}  // namespace morpheus::ssd
