#include "ssd/embedded_core.hh"

#include "sim/logging.hh"

namespace morpheus::ssd {

bool
EmbeddedCore::loadImage(std::uint32_t image_bytes)
{
    if (_isramUsed + image_bytes > _config.isramBytes)
        return false;
    _isramUsed += image_bytes;
    return true;
}

void
EmbeddedCore::unloadImage(std::uint32_t image_bytes)
{
    MORPHEUS_ASSERT(image_bytes <= _isramUsed,
                    "unloading more I-SRAM than loaded");
    _isramUsed -= image_bytes;
}

bool
EmbeddedCore::reserveDsram(std::uint32_t bytes)
{
    if (bytes > _config.dsramBytes - _dsramUsed)
        return false;
    _dsramUsed += bytes;
    MORPHEUS_ASSERT(_dsramUsed <= _config.dsramBytes,
                    "co-resident D-SRAM grants overcommit the core");
    return true;
}

void
EmbeddedCore::releaseDsram(std::uint32_t bytes)
{
    MORPHEUS_ASSERT(bytes <= _dsramUsed,
                    "releasing more D-SRAM than reserved");
    _dsramUsed -= bytes;
}

}  // namespace morpheus::ssd
