#include "ssd/embedded_core.hh"

#include "sim/logging.hh"

namespace morpheus::ssd {

bool
EmbeddedCore::loadImage(std::uint32_t image_bytes)
{
    if (_isramUsed + image_bytes > _config.isramBytes)
        return false;
    _isramUsed += image_bytes;
    return true;
}

void
EmbeddedCore::unloadImage(std::uint32_t image_bytes)
{
    MORPHEUS_ASSERT(image_bytes <= _isramUsed,
                    "unloading more I-SRAM than loaded");
    _isramUsed -= image_bytes;
}

}  // namespace morpheus::ssd
