/**
 * @file
 * Deserialized-object cache in controller DRAM (DESIGN.md §13).
 *
 * Morpheus already moves deserialization off the host; this cache
 * removes it from the device too for the hot set: a completed MREAD
 * stream's parsed object (the exact bytes that were DMAed to the
 * host) is retained in controller DRAM keyed on the raw flash range
 * and the applet that parsed it, so the next identical invocation is
 * served straight from DRAM — no flash fetch, no ParseCost, no
 * embedded-core occupancy. Capacity comes out of the same controller
 * DRAM the streaming pipeline's readahead buffer lives in: the two
 * share one budget (the readahead reservation is subtracted from the
 * cache's), never double-booked.
 *
 * Eviction is pluggable (LRU / FIFO / least-frequency, the CXLMemSim
 * policy menu) and invalidation is end-exclusive byte-range based,
 * consistent with host::FileExtent: any standard write, MWRITE or
 * TRIM overlapping [rawBegin, rawBegin + rawLen) drops the entry, as
 * does re-installing the keyed applet at a different version.
 */

#ifndef MORPHEUS_SSD_OBJECT_CACHE_HH
#define MORPHEUS_SSD_OBJECT_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace morpheus::ssd {

/** Object-cache knobs. Off by default: every existing figure and
 *  serving run reproduces bit-identically with the cache disabled. */
struct ObjectCacheConfig
{
    bool enabled = false;

    /**
     * Controller-DRAM budget for cached objects. The streaming
     * pipeline's readahead buffer (PipelineConfig::readaheadBufferBytes)
     * is carved out of the same budget when readahead is on — the
     * effective cache capacity is the remainder, so the two features
     * can never double-book the controller DRAM they share.
     */
    std::uint64_t budgetBytes = 64 * sim::kMiB;

    /** Eviction policy (à la CXLMemSim's policy menu). */
    enum class Policy { kLru, kFifo, kFrequency };
    Policy policy = Policy::kLru;
};

/** "lru" / "fifo" / "frequency" -> policy; @return false on junk. */
bool cachePolicyFromName(const std::string &name,
                         ObjectCacheConfig::Policy *out);
const char *cachePolicyName(ObjectCacheConfig::Policy policy);

/**
 * Cache key: the identity of a deserialized object. Two invocations
 * produce bit-identical objects iff they parse the same raw bytes
 * (namespace + flash byte range) with the same applet at the same
 * version under the same pushdown program — all six fields
 * participate in equality.
 */
struct ObjectCacheKey
{
    std::uint32_t nsid = 1;
    /** Flash byte offset the MREAD stream started at. */
    std::uint64_t rawBegin = 0;
    /** Declared stream length in bytes (MINIT SLBA). The cached range
     *  is end-exclusive: [rawBegin, rawBegin + rawLen). */
    std::uint64_t rawLen = 0;
    std::string applet;
    std::uint32_t appletVersion = 0;
    /** Digest of the MINIT pushdown descriptor (projection mask +
     *  predicate program), 0 when the invocation carried none. A
     *  differently-predicated scan of the same raw range emits
     *  different bytes, so it must never replay another scan's
     *  entry. */
    std::uint32_t pushdownDigest = 0;

    bool
    operator==(const ObjectCacheKey &o) const
    {
        return nsid == o.nsid && rawBegin == o.rawBegin &&
               rawLen == o.rawLen && appletVersion == o.appletVersion &&
               pushdownDigest == o.pushdownDigest && applet == o.applet;
    }
};

/** The cache proper. Functional payloads + counters; all timing
 *  (DRAM pass, outbound DMA) is charged by the caller. */
class ObjectCache
{
  public:
    /**
     * @p reserved_bytes is the controller-DRAM already spoken for by
     * the readahead buffer; the effective capacity is
     * budgetBytes - reserved_bytes, clamped at zero.
     */
    ObjectCache(const ObjectCacheConfig &config,
                std::uint64_t reserved_bytes);

    bool enabled() const { return _config.enabled; }
    const ObjectCacheConfig &config() const { return _config; }
    std::uint64_t capacityBytes() const { return _capacityBytes; }
    std::uint64_t usedBytes() const { return _usedBytes; }
    std::size_t entries() const { return _entries.size(); }

    struct Entry
    {
        ObjectCacheKey key;
        /** The parsed object — the exact bytes the original stream
         *  DMAed out, replayable to any later instance's target. */
        std::vector<std::uint8_t> payload;
        /** The applet's MDEINIT return value for the stream. */
        std::uint32_t returnValue = 0;
        std::uint64_t hits = 0;
        std::uint64_t insertSeq = 0;  ///< FIFO age.
        std::uint64_t useSeq = 0;     ///< LRU recency.
    };

    /**
     * Find the entry for @p key; bumps the hit counters and the
     * policy metadata on success, the miss counter otherwise.
     * The pointer is valid until the next mutating call.
     */
    const Entry *lookup(const ObjectCacheKey &key);

    /**
     * Insert a complete object. Entries larger than the effective
     * capacity are rejected (counted); otherwise victims are evicted
     * per the configured policy until the payload fits. A re-insert
     * under an existing key replaces the payload in place.
     */
    void insert(const ObjectCacheKey &key,
                std::vector<std::uint8_t> payload,
                std::uint32_t return_value);

    /**
     * Drop every entry of @p nsid whose raw range overlaps the
     * end-exclusive byte range [@p begin, @p end). Adjacent (touching)
     * ranges do not overlap: a write ending exactly at rawBegin, or
     * starting exactly at rawBegin + rawLen, leaves the entry alone —
     * the same convention as host::FileExtent byte ranges.
     */
    void invalidateRange(std::uint32_t nsid, std::uint64_t begin,
                         std::uint64_t end);

    /** Drop every entry keyed on @p applet (re-install at a new
     *  version: any retained object may embed stale semantics). */
    void invalidateApplet(const std::string &applet);

    void clear();

    // Counters (tests + morpheus.cache.* federation).
    std::uint64_t hits() const { return _hits.value(); }
    std::uint64_t misses() const { return _misses.value(); }
    std::uint64_t insertions() const { return _insertions.value(); }
    std::uint64_t evictions() const { return _evictions.value(); }
    std::uint64_t invalidations() const
    {
        return _invalidations.value();
    }
    std::uint64_t hitBytes() const { return _hitBytes.value(); }
    std::uint64_t rejectedTooLarge() const
    {
        return _rejectedTooLarge.value();
    }

    void registerStats(sim::stats::StatSet &set,
                       const std::string &prefix) const;

  private:
    /** Index of the configured policy's eviction victim. */
    std::size_t victimIndex() const;
    void eraseEntry(std::size_t idx);

    ObjectCacheConfig _config;
    std::uint64_t _capacityBytes = 0;
    std::uint64_t _usedBytes = 0;
    std::uint64_t _seq = 0;
    std::vector<Entry> _entries;

    sim::stats::Counter _hits;
    sim::stats::Counter _misses;
    sim::stats::Counter _insertions;
    sim::stats::Counter _evictions;
    sim::stats::Counter _invalidations;
    sim::stats::Counter _hitBytes;
    sim::stats::Counter _rejectedTooLarge;
};

}  // namespace morpheus::ssd

#endif  // MORPHEUS_SSD_OBJECT_CACHE_HH
