/**
 * @file
 * Morpheus-SSD device: flash + FTL + DRAM + embedded cores behind an
 * NVMe front-end (paper Fig 6).
 *
 * SsdController implements the firmware: it is the CommandHandler the
 * NvmeController dispatches to. Standard reads/writes run entirely
 * here. The four Morpheus opcodes are forwarded to a MorpheusEngine —
 * implemented by core::MorpheusDeviceRuntime — so the base SSD stays
 * ignorant of StorageApp semantics, mirroring the paper's claim that
 * the FTL and the conventional command paths are untouched.
 */

#ifndef MORPHEUS_SSD_SSD_CONTROLLER_HH
#define MORPHEUS_SSD_SSD_CONTROLLER_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "ftl/ftl.hh"
#include "nvme/controller.hh"
#include "pcie/pcie.hh"
#include "sched/ssd_scheduler.hh"
#include "ssd/embedded_core.hh"
#include "ssd/object_cache.hh"

namespace morpheus::ssd {

/**
 * Streaming chunk pipeline knobs (DESIGN.md §11). All stages are off
 * by default so every existing figure reproduces unchanged; with
 * `enabled` set, the firmware overlaps flash readahead, sub-buffer
 * parsing, and outbound flush DMA on the MREAD path. The pipeline is a
 * pure schedule change: functional results and the ParseCost cycle
 * totals are identical either way.
 */
struct PipelineConfig
{
    /** Master switch for the pipelined MREAD/MWRITE data path. */
    bool enabled = false;
    /** Prefetch the next chunk's flash pages while this one parses. */
    bool readahead = true;
    /** Bound on controller-DRAM bytes a prefetch may occupy. */
    std::uint64_t readaheadBufferBytes = 256 * 1024;
    /** Interleave parse(sub_i) with fetch(sub_{i+1}) within a chunk. */
    bool doubleBuffer = true;
    /** Merge address-contiguous flush segments into one descriptor. */
    bool coalesceFlush = true;
    /** Largest coalesced outbound DMA descriptor. */
    std::uint64_t maxDescriptorBytes = 128 * 1024;
};

/** Device-level parameters beyond the flash/FTL configs. */
struct SsdConfig
{
    flash::FlashConfig flash;
    ftl::FtlConfig ftl;
    nvme::ControllerConfig nvme;
    EmbeddedCoreConfig core;
    unsigned numCores = 4;
    sched::SchedConfig sched;
    PipelineConfig pipeline;
    /** Deserialized-object cache in controller DRAM (DESIGN.md §13).
     *  Shares one DRAM budget with the pipeline's readahead buffer:
     *  the effective cache capacity is budgetBytes minus the readahead
     *  reservation, never both in full. */
    ObjectCacheConfig cache;

    /** Controller DRAM (buffers + FTL tables). */
    std::uint64_t dramBytes = 2ULL * sim::kGiB;
    double dramBytesPerSec = 6.4 * sim::kGBps;  // DDR3-800 x64

    /** Device label for a fleet ("dev1"): prefixes every span track
     *  this device emits so two devices never share a trace track.
     *  Empty (the default, and always device 0) keeps the classic
     *  single-SSD track names bit-identical. */
    std::string label;
};

/**
 * Timing of a paged (pipelined) flash fetch: per-page DRAM-buffered
 * completion ticks, so a consumer can start on the first page's
 * arrival instead of the last's. Pages are buffered in logical order
 * (the parse is a sequential stream), so pageReady is non-decreasing.
 */
struct PagedFetch
{
    /** Tick each covered page is buffered in controller DRAM. */
    std::vector<sim::Tick> pageReady;
    /** First covered logical page (byte_offset / pageBytes). */
    std::uint64_t firstPage = 0;
    sim::Tick firstReady = 0;  ///< pageReady.front() (or earliest).
    sim::Tick allReady = 0;    ///< pageReady.back() (or earliest).
    bool mediaError = false;
};

/** Extension hook for the Morpheus opcodes (implemented in core/). */
class MorpheusEngine
{
  public:
    virtual ~MorpheusEngine() = default;
    /** Execute one of the four M* commands starting at @p start. */
    virtual nvme::CommandResult execute(const nvme::Command &cmd,
                                        sim::Tick start) = 0;
};

/** The SSD device model. */
class SsdController
{
  public:
    SsdController(sim::EventQueue &eq, pcie::PcieSwitch &fabric,
                  pcie::PortId port, const SsdConfig &config);

    const SsdConfig &config() const { return _config; }
    pcie::PortId port() const { return _port; }

    /** Span-track prefix derived from SsdConfig::label ("dev1.", or ""
     *  for the unlabeled / device-0 case). */
    const std::string &trackPrefix() const { return _trackPrefix; }

    nvme::NvmeController &nvme() { return _nvme; }
    ftl::Ftl &ftl() { return *_ftl; }
    flash::FlashArray &flash() { return *_flash; }
    pcie::PcieSwitch &fabric() { return _fabric; }

    /**
     * Embedded core serving a new @p instance_id: the configured
     * placement policy applied at @p now (static modulo by default).
     * @p dsram_needed is the instance's scratchpad grant (0 when
     * partitioning is off), a packing signal for load-aware placement.
     */
    EmbeddedCore &coreFor(std::uint32_t instance_id, sim::Tick now = 0,
                          std::uint32_t dsram_needed = 0);
    EmbeddedCore &core(unsigned idx) { return *_cores.at(idx); }

    /** The multi-tenant command scheduler (admission + placement). */
    sched::SsdScheduler &scheduler() { return *_sched; }

    /** The deserialized-object cache (controller DRAM). Present even
     *  when disabled, so callers can query counters uniformly. */
    ObjectCache &objectCache() { return *_cache; }
    const ObjectCache &objectCache() const { return *_cache; }
    unsigned numCores() const
    {
        return static_cast<unsigned>(_cores.size());
    }

    /** Install the Morpheus command engine. */
    void setMorpheusEngine(MorpheusEngine *engine) { _engine = engine; }

    /** Logical capacity in 512-byte blocks. */
    std::uint64_t capacityBlocks() const;

    /** Admin Identify data (model string, capacity, MDTS, vendor
     *  Morpheus-capability flag). */
    nvme::IdentifyData identify() const;

    /**
     * Functional byte-level read of the logical address space
     * (zero simulated time). Used by StorageApps' stream layer and by
     * tests; the timed flash access is charged separately.
     */
    std::vector<std::uint8_t> peekBytes(std::uint64_t byte_offset,
                                        std::uint64_t len) const;

    /**
     * Timed flash fetch of the logical byte range into controller
     * DRAM. @return tick when the data is buffered on-device.
     * @p media_error (optional) is set true when fault injection made
     * any underlying flash page read uncorrectable.
     */
    sim::Tick fetchToDram(std::uint64_t byte_offset, std::uint64_t len,
                          sim::Tick earliest,
                          bool *media_error = nullptr);

    /**
     * Timed flash fetch like fetchToDram(), but returns per-page
     * DRAM-buffered completion ticks so the caller can overlap
     * consumption with the tail of the fetch (the streaming pipeline's
     * readahead and double-buffered parse stages). Total DRAM
     * occupancy matches fetchToDram() up to per-page rounding.
     */
    PagedFetch fetchToDramPaged(std::uint64_t byte_offset,
                                std::uint64_t len, sim::Tick earliest);

    /**
     * Device-side recovery for an outbound (device -> host/GPU) DMA:
     * consume the fabric's transient-fault flag and, while set, re-send
     * the payload (re-charging fabric time), up to a bound. The data
     * was delivered functionally on the first pass; retries model the
     * link-level replays. @return new completion tick; sets @p failed
     * when the retry bound is exhausted with the fault still firing.
     */
    sim::Tick retryOutboundDma(pcie::Addr dst, std::uint64_t bytes,
                               sim::Tick done, bool *failed);

    /**
     * Timed write of @p data at a logical byte offset (read-modify-
     * write for partial pages). @return completion tick.
     */
    sim::Tick storeFromDram(std::uint64_t byte_offset,
                            const std::vector<std::uint8_t> &data,
                            sim::Tick earliest);

    /** Charge a pass through controller DRAM. @return completion. */
    sim::Tick dramTransfer(std::uint64_t bytes, sim::Tick earliest);

    void registerStats(sim::stats::StatSet &set,
                       const std::string &prefix) const;

  private:
    /** Firmware dispatch (CommandHandler for the NVMe front-end). */
    nvme::CommandResult handleCommand(const nvme::Command &cmd,
                                      sim::Tick start);

    nvme::CommandResult doRead(const nvme::Command &cmd, sim::Tick start);
    nvme::CommandResult doWrite(const nvme::Command &cmd,
                                sim::Tick start);
    nvme::CommandResult doDsm(const nvme::Command &cmd, sim::Tick start);

    sim::EventQueue &_eq;
    pcie::PcieSwitch &_fabric;
    pcie::PortId _port;
    SsdConfig _config;
    /** Span-track prefix ("" for device 0, "dev1." etc. in a fleet). */
    std::string _trackPrefix;

    std::unique_ptr<flash::FlashArray> _flash;
    std::unique_ptr<ftl::Ftl> _ftl;
    nvme::NvmeController _nvme;
    std::vector<std::unique_ptr<EmbeddedCore>> _cores;
    sim::Timeline _dram;
    std::unique_ptr<sched::SsdScheduler> _sched;
    std::unique_ptr<ObjectCache> _cache;
    MorpheusEngine *_engine = nullptr;

    sim::stats::Counter _readCommands;
    sim::stats::Counter _writeCommands;
    sim::stats::Counter _morpheusCommands;
    sim::stats::Counter _bytesToHost;
    sim::stats::Counter _bytesFromHost;
};

}  // namespace morpheus::ssd

#endif  // MORPHEUS_SSD_SSD_CONTROLLER_HH
