#include "sched/tenant_arbiter.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace morpheus::sched {

TenantArbiter::TenantArbiter(const SchedConfig &config) : _config(config)
{
}

TenantArbiter::Tenant &
TenantArbiter::tenant(std::uint32_t id)
{
    return _tenants[id];
}

void
TenantArbiter::setTenantWeight(std::uint32_t id, double weight)
{
    tenant(id).weight = std::max(weight, 1e-6);
}

void
TenantArbiter::prune(std::multiset<sim::Tick> &done, sim::Tick arrival)
{
    done.erase(done.begin(), done.upper_bound(arrival));
}

AdmitDecision
TenantArbiter::admitInstance(std::uint32_t tenant_id,
                             std::uint32_t instance, sim::Tick arrival,
                             std::uint64_t backlog_bytes)
{
    // A MINIT reusing a live instance ID would fail in the runtime
    // anyway; bouncing it here keeps the live instance's admission
    // state intact.
    if (_instanceTenant.count(instance))
        return AdmitDecision{arrival, false, true};

    Tenant &t = tenant(tenant_id);
    prune(t.closedDone, arrival);
    prune(_closedDoneAll, arrival);

    const unsigned cap_t = _config.maxInflightPerTenant;
    const unsigned cap_all = _config.maxInflightTotal;
    const auto inflight_t =
        t.open + static_cast<unsigned>(t.closedDone.size());
    const auto inflight_all =
        _openTotal + static_cast<unsigned>(_closedDoneAll.size());

    sim::Tick start = arrival;
    const bool over_t = cap_t != 0 && inflight_t >= cap_t;
    const bool over_all = cap_all != 0 && inflight_all >= cap_all;
    if (over_t || over_all) {
        if (_config.admission == AdmissionPolicy::kReject) {
            ++_rejected;
            return AdmitDecision{arrival, true, false};
        }
        // Queue: the MINIT starts when enough remembered completions
        // free the slot. Open instances have unknown completion ticks,
        // so a slot held only by them means the host must retry.
        if ((over_t && t.open >= cap_t) ||
            (over_all && _openTotal >= cap_all)) {
            return AdmitDecision{arrival, false, true};
        }
        if (over_t) {
            // The (inflight_t - cap_t + 1)-th remembered completion
            // brings the count below the cap.
            const unsigned need = inflight_t - cap_t + 1;
            auto it = t.closedDone.begin();
            std::advance(it, need - 1);
            start = std::max(start, *it);
        }
        if (over_all) {
            const unsigned need = inflight_all - cap_all + 1;
            auto it = _closedDoneAll.begin();
            std::advance(it, need - 1);
            start = std::max(start, *it);
        }
        ++_queued;
        _queuedDelayTicks += start - arrival;
    }

    _instanceTenant[instance] = tenant_id;
    _instanceBacklog[instance] = backlog_bytes;
    t.backlogBytes += static_cast<std::int64_t>(backlog_bytes);
    ++t.open;
    ++_openTotal;
    ++_admitted;
    return AdmitDecision{start, false, false};
}

void
TenantArbiter::releaseInstance(std::uint32_t instance)
{
    // Clear any declared backlog the stream never submitted.
    const auto bl = _instanceBacklog.find(instance);
    if (bl != _instanceBacklog.end()) {
        const auto owner = _instanceTenant.find(instance);
        if (owner != _instanceTenant.end()) {
            Tenant &t = tenant(owner->second);
            t.backlogBytes = std::max<std::int64_t>(
                0, t.backlogBytes -
                       static_cast<std::int64_t>(bl->second));
        }
        _instanceBacklog.erase(bl);
    }
    _instanceTenant.erase(instance);
}

void
TenantArbiter::onInstanceDone(std::uint32_t instance, sim::Tick done)
{
    const auto it = _instanceTenant.find(instance);
    if (it == _instanceTenant.end())
        return;
    Tenant &t = tenant(it->second);
    MORPHEUS_ASSERT(t.open > 0 && _openTotal > 0,
                    "instance completion without an open instance");
    --t.open;
    --_openTotal;
    t.closedDone.insert(done);
    _closedDoneAll.insert(done);
    releaseInstance(instance);
}

void
TenantArbiter::dropInstance(std::uint32_t instance)
{
    const auto it = _instanceTenant.find(instance);
    if (it == _instanceTenant.end())
        return;
    Tenant &t = tenant(it->second);
    if (t.open > 0)
        --t.open;
    if (_openTotal > 0)
        --_openTotal;
    releaseInstance(instance);
}

std::uint32_t
TenantArbiter::tenantOf(std::uint32_t instance) const
{
    const auto it = _instanceTenant.find(instance);
    return it == _instanceTenant.end() ? kNoTenant : it->second;
}

std::int64_t
TenantArbiter::backlogOf(std::uint32_t tenant_id) const
{
    const auto it = _tenants.find(tenant_id);
    return it == _tenants.end() ? 0 : it->second.backlogBytes;
}

std::uint64_t
TenantArbiter::declaredBacklog(std::uint32_t instance) const
{
    const auto it = _instanceBacklog.find(instance);
    return it == _instanceBacklog.end() ? 0 : it->second;
}

std::uint64_t
TenantArbiter::totalDeclaredBacklog() const
{
    std::uint64_t backlog = 0;
    for (const auto &[inst, bytes] : _instanceBacklog)
        backlog += bytes;
    return backlog;
}

std::uint32_t
TenantArbiter::retryAfterHintUs() const
{
    const std::uint64_t backlog = totalDeclaredBacklog();
    const unsigned open = std::max(1u, _openTotal);
    double ticks;
    if (_ewmaBytesPerTick > 0.0 && backlog > 0) {
        ticks = static_cast<double>(backlog) / _ewmaBytesPerTick /
                static_cast<double>(open);
    } else {
        // No service-rate observation (or nothing declared) yet: a
        // fixed small hint beats both an immediate bounce storm and an
        // arbitrarily long stall.
        ticks = 50.0 * static_cast<double>(sim::kPsPerUs);
    }
    const double us = ticks / static_cast<double>(sim::kPsPerUs);
    return static_cast<std::uint32_t>(std::clamp(us, 1.0, 65535.0));
}

sim::Tick
TenantArbiter::admitData(std::uint32_t instance, std::uint64_t bytes,
                         sim::Tick arrival)
{
    const std::uint32_t tid = tenantOf(instance);
    if (tid == kNoTenant)
        return arrival;
    Tenant &t = tenant(tid);
    // Drain this stream's declared backlog as its data shows up.
    const auto bl = _instanceBacklog.find(instance);
    if (bl != _instanceBacklog.end()) {
        const std::uint64_t served = std::min(bl->second, bytes);
        bl->second -= served;
        t.backlogBytes = std::max<std::int64_t>(
            0, t.backlogBytes - static_cast<std::int64_t>(served));
    }
    if (!_config.arbitration)
        return arrival;

    // The backlogged set: every tenant with queued work, plus the
    // requester (whose declared backlog may already be drained).
    std::vector<std::uint32_t> backlogged;
    double sum_w = 0.0;
    for (const auto &[id, state] : _tenants) {
        if (state.backlogBytes > 0 || id == tid) {
            backlogged.push_back(id);
            sum_w += state.weight;
        }
    }
    if (backlogged != _backloggedSet) {
        // New contention epoch: forget served history so a tenant is
        // judged only against the tenants it currently competes with.
        _backloggedSet = backlogged;
        _totalServedBytes = 0;
        for (auto &[id, state] : _tenants)
            state.servedBytes = 0;
    }

    sim::Tick start = arrival;
    if (backlogged.size() > 1 && sum_w > 0.0) {
        const double share = t.weight / sum_w;
        const double fair =
            share * static_cast<double>(_totalServedBytes);
        const double slack =
            static_cast<double>(_config.drrQuantumBytes) * t.weight;
        const double excess =
            static_cast<double>(t.servedBytes) - fair - slack;
        if (excess > 0.0 && _ewmaBytesPerTick > 0.0) {
            const auto delay = static_cast<sim::Tick>(
                std::min(excess / _ewmaBytesPerTick,
                         static_cast<double>(_config.drrMaxDelay)));
            if (delay > 0) {
                start += delay;
                ++_drrDelays;
                _drrDelayTicks += delay;
            }
        }
    }
    t.servedBytes += bytes;
    _totalServedBytes += bytes;
    return start;
}

void
TenantArbiter::onDataDone(std::uint64_t bytes, sim::Tick start,
                          sim::Tick done)
{
    if (done <= start || bytes == 0)
        return;
    const double rate = static_cast<double>(bytes) /
                        static_cast<double>(done - start);
    _ewmaBytesPerTick = _ewmaBytesPerTick == 0.0
                            ? rate
                            : 0.9 * _ewmaBytesPerTick + 0.1 * rate;
}

void
TenantArbiter::registerStats(sim::stats::StatSet &set,
                             const std::string &prefix) const
{
    set.registerCounter(prefix + ".instancesAdmitted", &_admitted);
    set.registerCounter(prefix + ".instancesRejected", &_rejected);
    set.registerCounter(prefix + ".instancesQueued", &_queued);
    set.registerCounter(prefix + ".queuedDelayTicks",
                        &_queuedDelayTicks);
    set.registerCounter(prefix + ".drrDelays", &_drrDelays);
    set.registerCounter(prefix + ".drrDelayTicks", &_drrDelayTicks);
}

}  // namespace morpheus::sched
