/**
 * @file
 * Configuration of the multi-tenant StorageApp scheduler.
 *
 * The paper runs one invocation at a time and statically maps each
 * instance to core `instance_id % numCores` (§IV-B). Under concurrent
 * multi-tenant traffic that mapping lets one hot tenant monopolize a
 * core while others idle, so the scheduler adds three independent,
 * individually switchable mechanisms:
 *
 *  - placement: static modulo (the paper's policy, the default) or
 *    load-aware shortest-queue placement, optionally with instance
 *    migration between MREAD chunks;
 *  - admission: a bound on in-flight MINIT instances per tenant and
 *    device-wide, with a queue-or-reject policy;
 *  - arbitration: weighted deficit pacing of MREAD/MWRITE streams so
 *    backlogged tenants share embedded-core bandwidth by weight.
 *
 * Every knob defaults to the paper's behaviour so the Fig 8-12
 * reproductions are untouched.
 */

#ifndef MORPHEUS_SCHED_SCHED_CONFIG_HH
#define MORPHEUS_SCHED_SCHED_CONFIG_HH

#include <cstdint>

#include "sim/types.hh"

namespace morpheus::sched {

/** How MINIT picks the embedded core serving an instance. */
enum class PlacementPolicy {
    kStatic,    ///< Paper §IV-B: instance_id % numCores.
    kLoadAware  ///< Shortest-queue (earliest-free core) placement.
};

/** What happens to a MINIT beyond the in-flight instance bound. */
enum class AdmissionPolicy {
    kQueue,   ///< Delay the MINIT until an instance slot frees.
    kReject   ///< Complete it with kAdmissionDenied.
};

/** Scheduler knobs (part of ssd::SsdConfig). */
struct SchedConfig
{
    PlacementPolicy placement = PlacementPolicy::kStatic;

    /** Allow moving an instance to a less-loaded core between MREADs
     *  (load-aware placement only). */
    bool migration = false;
    /** Fixed embedded-core cycles to move an instance's D-SRAM state
     *  (the I-SRAM reload is charged separately from the code size). */
    double migrationCycles = 25000.0;

    /**
     * Place new instances by declared stream bytes instead of resident
     * count (load-aware placement only). MINIT carries the stream's
     * byte length in its otherwise unused SLBA field; the dispatcher
     * tracks those declared-but-unserved bytes per core and packs a new
     * instance onto the core with the fewest pending bytes, so one
     * huge stream no longer counts the same as a tiny one. Instances
     * that declare nothing (SLBA = 0) fall back to resident-count
     * packing among themselves.
     */
    bool backlogAwarePlacement = false;
    /** Minimum backlog gap (current core minus best core) that
     *  justifies a migration. */
    sim::Tick migrationMinGain = 50 * sim::kPsPerUs;

    /**
     * Partition each core's D-SRAM between co-resident instances: a
     * MINIT's requested budget (PRP2 low dword, default
     * dsramBytes / maxInstancesPerCore) is reserved on its core, its
     * staging context is built over the granted budget (flush
     * threshold clamped to it), and a MINIT whose grant does not fit
     * next to the budgets already reserved completes with
     * kDsramExhausted. Off = the paper's behaviour: every instance
     * sizes its context to the full scratchpad, so co-resident
     * instances silently overcommit it.
     */
    bool dsramPartitioning = false;
    /** Co-resident instances a core's D-SRAM is provisioned for: the
     *  default grant of a MINIT that requests no explicit budget is
     *  dsramBytes / maxInstancesPerCore. */
    unsigned maxInstancesPerCore = 4;

    /**
     * Admission-level overload valve: a MINIT whose declared stream
     * would push the device-wide declared-but-unserved backlog past
     * this many bytes completes with kOverloaded plus a retry-after
     * hint, instead of queueing work the device cannot start for a
     * long time. 0 (the default) disables the valve. This is the
     * explicit backpressure signal the hybrid serving layer converts
     * into host-path spill.
     */
    std::uint64_t overloadBacklogLimit = 0;

    AdmissionPolicy admission = AdmissionPolicy::kQueue;
    /** In-flight MINIT instances allowed per tenant (0 = unlimited). */
    unsigned maxInflightPerTenant = 0;
    /** In-flight MINIT instances allowed device-wide (0 = unlimited). */
    unsigned maxInflightTotal = 0;

    /** Enable weighted deficit arbitration of the data path. */
    bool arbitration = false;
    /** Deficit a tenant may run ahead of its weighted share before its
     *  commands are paced, in bytes (scaled by the tenant's weight). */
    std::uint64_t drrQuantumBytes = 64 * sim::kKiB;
    /** Hard bound on the pacing delay of any single command; this is
     *  what makes the arbiter starvation-free. */
    sim::Tick drrMaxDelay = 2 * sim::kPsPerMs;
};

}  // namespace morpheus::sched

#endif  // MORPHEUS_SCHED_SCHED_CONFIG_HH
