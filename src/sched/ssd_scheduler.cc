#include "sched/ssd_scheduler.hh"

#include "obs/trace.hh"

namespace morpheus::sched {

namespace {

/** Per-tenant scheduling track ("sched.tenant[N]", device-prefixed). */
std::string
tenantTrack(const std::string &prefix, std::uint32_t tenant)
{
    return prefix + "sched.tenant[" + std::to_string(tenant) + "]";
}

void
recordSchedInstant(obs::TraceSink &sink, const std::string &prefix,
                   const nvme::Command &cmd, std::uint32_t tenant,
                   const char *name, sim::Tick at)
{
    obs::Span s;
    s.track = tenantTrack(prefix, tenant);
    s.name = name;
    s.category = "sched";
    s.begin = at;
    s.end = at;
    s.instant = true;
    s.trace = cmd.traceId;
    s.tenant = tenant;
    s.instance = cmd.instanceId;
    sink.record(s);
}

void
recordSchedWait(obs::TraceSink &sink, const std::string &prefix,
                const nvme::Command &cmd, std::uint32_t tenant,
                const char *name, sim::Tick arrival, sim::Tick start)
{
    obs::Span s;
    s.track = tenantTrack(prefix, tenant);
    s.name = name;
    s.category = "sched";
    s.begin = arrival;
    s.end = start;
    s.trace = cmd.traceId;
    s.tenant = tenant;
    s.instance = cmd.instanceId;
    sink.record(s);
}

}  // namespace

SsdScheduler::SsdScheduler(const SchedConfig &config, unsigned num_cores,
                           CoreDispatcher::LoadProbe probe,
                           CoreDispatcher::DsramProbe dsram_probe,
                           std::string track_prefix)
    : _config(config), _trackPrefix(std::move(track_prefix)),
      _arbiter(config),
      _dispatcher(config, num_cores, std::move(probe),
                  std::move(dsram_probe), _trackPrefix)
{
}

FrontEndDecision
SsdScheduler::admitCommand(const nvme::Command &cmd, sim::Tick arrival)
{
    switch (cmd.opcode) {
      case nvme::Opcode::kMInit: {
        // Overload valve: refuse work the device could not start for a
        // long time anyway, with a retry-after hint sized to the drain
        // rate, so the host can spill or back off instead of queueing.
        if (_config.overloadBacklogLimit > 0 &&
            _arbiter.totalDeclaredBacklog() + cmd.slba >
                _config.overloadBacklogLimit) {
            ++_overloadBounces;
            if (auto *sink = obs::traceSink()) {
                recordSchedInstant(*sink, _trackPrefix, cmd, cmd.cdw15,
                                   "overload_bounce", arrival);
            }
            return {arrival, nvme::Status::kOverloaded,
                    _arbiter.retryAfterHintUs()};
        }
        // MINIT repurposes its unused SLBA field to declare the byte
        // length of the upcoming stream (the host knows the extent).
        const AdmitDecision d = _arbiter.admitInstance(
            cmd.cdw15, cmd.instanceId, arrival, cmd.slba);
        if (auto *sink = obs::traceSink()) {
            if (d.rejected) {
                recordSchedInstant(*sink, _trackPrefix, cmd, cmd.cdw15,
                                   "admission_reject", arrival);
            } else if (d.retry) {
                recordSchedInstant(*sink, _trackPrefix, cmd, cmd.cdw15,
                                   "admission_bounce", arrival);
            } else if (d.start > arrival) {
                recordSchedWait(*sink, _trackPrefix, cmd, cmd.cdw15,
                                "admission_wait", arrival, d.start);
            }
        }
        if (d.rejected)
            return {arrival, nvme::Status::kAdmissionDenied};
        if (d.retry) {
            return {arrival, nvme::Status::kInstanceBusy,
                    _arbiter.retryAfterHintUs()};
        }
        return {d.start, nvme::Status::kSuccess};
      }
      case nvme::Opcode::kMRead:
      case nvme::Opcode::kMWrite: {
        const std::uint64_t bytes =
            cmd.cdw13 ? cmd.cdw13 : cmd.dataBytes();
        const sim::Tick start =
            _arbiter.admitData(cmd.instanceId, bytes, arrival);
        if (auto *sink = obs::traceSink()) {
            if (start > arrival) {
                recordSchedWait(*sink, _trackPrefix, cmd,
                                _arbiter.tenantOf(cmd.instanceId),
                                "drr_wait", arrival, start);
            }
        }
        return {start, nvme::Status::kSuccess};
      }
      default:
        return {arrival, nvme::Status::kSuccess};
    }
}

void
SsdScheduler::onCommandDone(const nvme::Command &cmd, sim::Tick start,
                            const nvme::CommandResult &result)
{
    switch (cmd.opcode) {
      case nvme::Opcode::kMInit:
        if (result.status != nvme::Status::kSuccess) {
            if (result.status == nvme::Status::kDsramExhausted) {
                ++_dsramBounces;
                if (auto *sink = obs::traceSink()) {
                    recordSchedInstant(*sink, _trackPrefix, cmd,
                                       cmd.cdw15, "dsram_bounce",
                                       result.done);
                }
            }
            // The runtime refused the instance after admission (bad
            // image, duplicate ID): free its slot and placement.
            _arbiter.dropInstance(cmd.instanceId);
            _dispatcher.releaseInstance(cmd.instanceId);
        }
        break;
      case nvme::Opcode::kMRead:
      case nvme::Opcode::kMWrite:
        if (result.status == nvme::Status::kSuccess) {
            const std::uint64_t bytes =
                cmd.cdw13 ? cmd.cdw13 : cmd.dataBytes();
            _arbiter.onDataDone(bytes, start, result.done);
            // Drain the dispatcher's per-core pending-bytes packing
            // signal in step with the arbiter's declared backlog.
            _dispatcher.noteServedBytes(cmd.instanceId, bytes);
        }
        break;
      case nvme::Opcode::kMDeinit:
        if (result.status == nvme::Status::kSuccess) {
            _arbiter.onInstanceDone(cmd.instanceId, result.done);
            _dispatcher.releaseInstance(cmd.instanceId);
        }
        break;
      default:
        break;
    }
}

void
SsdScheduler::registerStats(sim::stats::StatSet &set,
                            const std::string &prefix) const
{
    _arbiter.registerStats(set, prefix + ".arbiter");
    _dispatcher.registerStats(set, prefix + ".dispatcher");
    set.registerCounter(prefix + ".dsramBounces", &_dsramBounces);
    set.registerCounter(prefix + ".overloadBounces", &_overloadBounces);
}

}  // namespace morpheus::sched
