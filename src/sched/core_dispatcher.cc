#include "sched/core_dispatcher.hh"

#include <algorithm>
#include <limits>
#include <tuple>

#include "obs/trace.hh"
#include "sim/logging.hh"

namespace morpheus::sched {

CoreDispatcher::CoreDispatcher(const SchedConfig &config,
                               unsigned num_cores, LoadProbe probe,
                               DsramProbe dsram_probe,
                               std::string track_prefix)
    : _config(config), _numCores(num_cores), _probe(std::move(probe)),
      _dsramProbe(std::move(dsram_probe)),
      _trackPrefix(std::move(track_prefix)), _residents(num_cores, 0),
      _pendingBytes(num_cores, 0)
{
    MORPHEUS_ASSERT(num_cores > 0, "dispatcher needs at least one core");
}

namespace {

/** Dispatcher decisions are point events on one shared track. */
void
recordDispatch(const std::string &prefix, const char *name, sim::Tick at,
               std::uint32_t instance, unsigned core)
{
    if (auto *sink = obs::traceSink()) {
        obs::Span s;
        s.track = prefix + "sched.dispatcher";
        s.name = name;
        s.category = "sched";
        s.begin = at;
        s.end = at;
        s.instant = true;
        s.instance = instance;
        s.core = core;
        sink->record(s);
    }
}

}  // namespace

sim::Tick
CoreDispatcher::backlog(unsigned core, sim::Tick now) const
{
    const sim::Tick free_at = _probe(core);
    return free_at > now ? free_at - now : 0;
}

bool
CoreDispatcher::fitsDsram(unsigned core, std::uint32_t dsram_needed) const
{
    return dsram_needed == 0 || !_dsramProbe ||
           _dsramProbe(core) >= dsram_needed;
}

unsigned
CoreDispatcher::leastLoadedCore(sim::Tick now,
                                std::uint32_t dsram_needed) const
{
    // A core without room for the instance's D-SRAM grant would bounce
    // the MINIT, so fit leads. With backlog-aware placement the
    // declared-but-unserved stream bytes come next: residency counts a
    // 4 GB stream and a 4 KB one as equal load, pending bytes do not.
    // Resident-instance count follows (and leads when the knob is off
    // or nothing was declared): a host session only keeps about one
    // MREAD batch reserved on its core's timeline at a time, so
    // between batches a core hosting a huge in-flight stream reports a
    // near-zero backlog. The instantaneous timeline backlog only
    // breaks ties.
    unsigned best = 0;
    auto best_key = std::make_tuple(
        true, std::numeric_limits<std::uint64_t>::max(),
        std::numeric_limits<unsigned>::max(),
        std::numeric_limits<sim::Tick>::max(), 0u);
    for (unsigned c = 0; c < _numCores; ++c) {
        const std::uint64_t pending =
            _config.backlogAwarePlacement ? _pendingBytes[c] : 0;
        const auto key = std::make_tuple(!fitsDsram(c, dsram_needed),
                                         pending, _residents[c],
                                         backlog(c, now), c);
        if (key < best_key) {
            best_key = key;
            best = c;
        }
    }
    return best;
}

unsigned
CoreDispatcher::placeInstance(std::uint32_t instance, sim::Tick now,
                              std::uint32_t dsram_needed,
                              std::uint64_t declared_bytes)
{
    // A live instance keeps its placement (all packets with one
    // instance ID go to one core until it migrates or deinits).
    const auto it = _coreOf.find(instance);
    if (it != _coreOf.end())
        return it->second;
    const unsigned core = _config.placement == PlacementPolicy::kStatic
                              ? instance % _numCores
                              : leastLoadedCore(now, dsram_needed);
    _coreOf[instance] = core;
    _dsramOf[instance] = dsram_needed;
    _bytesOf[instance] = declared_bytes;
    ++_residents[core];
    _pendingBytes[core] += declared_bytes;
    ++_placements;
    recordDispatch(_trackPrefix, "place", now, instance, core);
    return core;
}

void
CoreDispatcher::noteServedBytes(std::uint32_t instance,
                                std::uint64_t bytes)
{
    const auto it = _bytesOf.find(instance);
    if (it == _bytesOf.end() || it->second == 0)
        return;
    // Hosts may stream more than they declared; never underflow.
    const std::uint64_t served = std::min(it->second, bytes);
    it->second -= served;
    _pendingBytes[coreOf(instance)] -= served;
}

CoreDispatcher::ChunkPlacement
CoreDispatcher::coreForChunk(std::uint32_t instance, sim::Tick now)
{
    const unsigned current = coreOf(instance);
    ChunkPlacement placement{current, false, current};
    if (_config.placement != PlacementPolicy::kLoadAware ||
        !_config.migration) {
        return placement;
    }

    const auto need_it = _dsramOf.find(instance);
    const std::uint32_t need =
        need_it != _dsramOf.end() ? need_it->second : 0;
    const unsigned best = leastLoadedCore(now, need);
    if (best == current)
        return placement;
    // A target without room for the instance's grant would only waste
    // a cancelled migration (its own reservation stays on `current`,
    // so the free-bytes probe is accurate for every other core).
    if (!fitsDsram(best, need))
        return placement;
    const sim::Tick here = backlog(current, now);
    const sim::Tick there = backlog(best, now);
    if (here <= there || here - there < _config.migrationMinGain)
        return placement;

    --_residents[current];
    ++_residents[best];
    const std::uint64_t pending = _bytesOf[instance];
    _pendingBytes[current] -= pending;
    _pendingBytes[best] += pending;
    _coreOf[instance] = best;
    ++_migrations;
    recordDispatch(_trackPrefix, "migrate", now, instance, best);
    return ChunkPlacement{best, true, current};
}

void
CoreDispatcher::cancelMigration(std::uint32_t instance, unsigned previous,
                                sim::Tick now)
{
    const unsigned current = coreOf(instance);
    MORPHEUS_ASSERT(current != previous,
                    "cancelMigration without a pending migration");
    --_residents[current];
    ++_residents[previous];
    const std::uint64_t pending = _bytesOf[instance];
    _pendingBytes[current] -= pending;
    _pendingBytes[previous] += pending;
    _coreOf[instance] = previous;
    ++_migrationsCancelled;
    recordDispatch(_trackPrefix, "migrate_cancel", now, instance, previous);
}

void
CoreDispatcher::releaseInstance(std::uint32_t instance)
{
    const auto it = _coreOf.find(instance);
    if (it == _coreOf.end())
        return;
    MORPHEUS_ASSERT(_residents[it->second] > 0,
                    "resident count underflow");
    --_residents[it->second];
    const auto bytes_it = _bytesOf.find(instance);
    if (bytes_it != _bytesOf.end()) {
        // A stream may end before serving its full declaration (errors,
        // early MDEINIT): clear the residue from the packing signal.
        _pendingBytes[it->second] -= bytes_it->second;
        _bytesOf.erase(bytes_it);
    }
    _coreOf.erase(it);
    _dsramOf.erase(instance);
}

unsigned
CoreDispatcher::coreOf(std::uint32_t instance) const
{
    const auto it = _coreOf.find(instance);
    MORPHEUS_ASSERT(it != _coreOf.end(),
                    "coreOf() on an unplaced instance");
    return it->second;
}

void
CoreDispatcher::registerStats(sim::stats::StatSet &set,
                              const std::string &prefix) const
{
    set.registerCounter(prefix + ".placements", &_placements);
    set.registerCounter(prefix + ".migrations", &_migrations);
    set.registerCounter(prefix + ".migrationsCancelled",
                        &_migrationsCancelled);
}

}  // namespace morpheus::sched
