#include "sched/hybrid_policy.hh"

#include <algorithm>

namespace morpheus::sched {

const char *
placementName(ExecPlacement p)
{
    switch (p) {
      case ExecPlacement::kDevice:
        return "device";
      case ExecPlacement::kHost:
        return "host";
      case ExecPlacement::kSplit:
        return "split";
      case ExecPlacement::kShed:
        return "shed";
    }
    return "?";
}

HybridPlacementPolicy::HybridPlacementPolicy(const HybridConfig &config)
    : _config(config)
{
}

PlacementDecision
HybridPlacementPolicy::decide(const HybridSignals &sig, sim::Tick now)
{
    PlacementDecision d;
    if (!_config.enabled) {
        // Disabled: no state is touched, so a disabled policy never
        // perturbs anything a caller might compare bit-for-bit.
        return d;
    }
    if (_config.forceHost) {
        d.placement = ExecPlacement::kHost;
        ++_decisions[static_cast<std::size_t>(d.placement)];
        return d;
    }

    // Device pressure: declared backlog plus a per-resident equivalent
    // (so undeclared streams still count), normalized so 1.0 is the
    // spill watermark. A fresh D-SRAM bounce pins the score at the
    // watermark for a hold window — scratchpad exhaustion is
    // saturation regardless of how the byte backlog looks.
    const double denom = static_cast<double>(
        std::max<std::uint64_t>(1, _config.spillEnterBytes));
    double device_load =
        (static_cast<double>(sig.backlogBytes) +
         static_cast<double>(sig.queueDepth) *
             static_cast<double>(_config.residentBytes)) /
        denom;
    if (sig.dsramBounces > _lastDsramBounces) {
        _lastDsramBounces = sig.dsramBounces;
        _bounceHotUntil = now + _config.dsramBounceHold;
    }
    if (now < _bounceHotUntil)
        device_load = std::max(device_load, 1.0);

    const double host_load =
        sig.hostBacklogUs / std::max(1e-9, _config.hostHighUs);
    d.deviceLoad = device_load;
    d.hostLoad = host_load;

    // Two-watermark hysteresis: spill entered at 1.0, left below the
    // exit fraction, so placement does not flap around the threshold.
    if (!_spill && device_load >= 1.0) {
        _spill = true;
        ++_flips;
    } else if (_spill &&
               device_load < _config.spillExitFraction) {
        _spill = false;
        ++_flips;
    }

    if (!_spill) {
        d.placement = ExecPlacement::kDevice;
    } else if (_config.shed && device_load >= _config.shedFactor &&
               host_load >= _config.shedFactor) {
        // Both sides saturated: bounce with an explicit retry-after
        // instead of queueing on either.
        d.placement = ExecPlacement::kShed;
        d.retryAfterUs = _config.shedRetryUs;
    } else if (_config.split &&
               sig.requestBytes >= _config.splitMinBytes &&
               std::max(device_load, host_load) <=
                   _config.splitBalance *
                       std::max(1e-9,
                                std::min(device_load, host_load))) {
        // Comparable pressure on both sides: run them concurrently on
        // one request instead of picking the (barely) lighter one.
        d.placement = ExecPlacement::kSplit;
        d.deviceShare = _config.splitDeviceShare;
    } else {
        d.placement = host_load < device_load ? ExecPlacement::kHost
                                              : ExecPlacement::kDevice;
    }
    ++_decisions[static_cast<std::size_t>(d.placement)];
    return d;
}

}  // namespace morpheus::sched
