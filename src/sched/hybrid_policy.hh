/**
 * @file
 * Overload-aware host/device hybrid placement.
 *
 * Past embedded-core saturation the device path stops being the right
 * answer for every request: MINITs queue behind declared backlog, the
 * D-SRAM partitioner starts bouncing, and tail latency collapses. In
 * the spirit of Conduit's programmer-transparent multi-resource NDP
 * and OffloadFS's dynamic storage/host offloading decisions, the
 * HybridPlacementPolicy makes per-request placement a cost decision
 * across three executors:
 *
 *  - the embedded core (the paper's path — always preferred while the
 *    device has headroom),
 *  - the host CPU (the baseline read()+convert path, with its modeled
 *    load and queueing), and
 *  - a split of the two (the device streams+parses a prefix while the
 *    host converts the remainder concurrently).
 *
 * The decision is driven by the dispatcher's live signals — declared
 * backlog bytes, per-core queue depth, the kDsramExhausted bounce
 * rate — against the modeled host CPU backlog. A two-watermark
 * hysteresis (spill entered at the high watermark, left at the low
 * one) keeps placement from flapping, and when *both* resources are
 * saturated a shed valve bounces the request with an explicit
 * retry-after instead of building an unbounded queue.
 *
 * The CircuitBreaker below is the per-tenant availability state
 * machine the serving driver used to keep inline: consecutive
 * device-path failures open it, every Nth routed request while open is
 * a half-open probe, and a probe success closes it. It is consulted
 * *before* the placement policy — a breaker-open tenant is already
 * host-routed for availability, never double-routed by overload.
 *
 * Everything here is deterministic and allocation-free per decision;
 * with HybridConfig::enabled false, decide() degenerates to kDevice
 * and touches no state, keeping disabled runs bit-identical.
 */

#ifndef MORPHEUS_SCHED_HYBRID_POLICY_HH
#define MORPHEUS_SCHED_HYBRID_POLICY_HH

#include <array>
#include <cstddef>
#include <cstdint>

#include "sim/types.hh"

namespace morpheus::sched {

/** Where one request executes. */
enum class ExecPlacement : std::uint8_t {
    kDevice = 0,  ///< Embedded core (the paper's path).
    kHost,        ///< Host CPU baseline read()+convert.
    kSplit,       ///< Device parses a prefix, host the remainder.
    kShed,        ///< Bounced with retry-after: both sides saturated.
};

/** Number of ExecPlacement values (array extent). */
constexpr std::size_t kNumPlacements = 4;

/** Short stable name ("device", "host", "split", "shed"). */
const char *placementName(ExecPlacement p);

/** Knobs of the hybrid layer (all off by default). */
struct HybridConfig
{
    /** Master switch; false keeps every request on the device path. */
    bool enabled = false;

    /** Route every request to the host path (the host-only comparator
     *  of an offered-load sweep; only meaningful with enabled). */
    bool forceHost = false;

    /**
     * Device-pressure high watermark: the device load score reaches
     * 1.0 when declared-but-unserved backlog (plus the queue-depth
     * equivalent) reaches this many bytes, which enters spill mode.
     */
    std::uint64_t spillEnterBytes = 256 * sim::kKiB;

    /** Low watermark as a fraction of the high one: spill mode is left
     *  when the device load score falls below this (hysteresis). */
    double spillExitFraction = 0.5;

    /** Bytes one resident instance counts for in the device load
     *  score, so queue depth matters even for undeclared streams. */
    std::uint64_t residentBytes = 16 * sim::kKiB;

    /** How long a fresh kDsramExhausted bounce pins the device load
     *  score at (at least) the high watermark: scratchpad pressure is
     *  saturation even when the byte backlog looks shallow. */
    sim::Tick dsramBounceHold = 200 * sim::kPsPerUs;

    /** Host backlog (µs of queued work on the least-loaded core) at
     *  which the host load score reaches 1.0. */
    double hostHighUs = 1000.0;

    /** Allow the split placement. */
    bool split = true;

    /** Split only when the busier side's load is within this factor of
     *  the other's — splitting a request across a 10x-lopsided pair
     *  just straggles on the loaded half. */
    double splitBalance = 4.0;

    /** Smallest stream worth splitting. */
    std::uint64_t splitMinBytes = 16 * sim::kKiB;

    /** Fraction of the stream the device parses in a split. */
    double splitDeviceShare = 0.5;

    /** Multiplier on the host path's modeled conversion cycles (> 1
     *  models a slower host; the serving driver passes it through to
     *  the host-execution engine). */
    double hostCostScale = 1.0;

    /** Enable the shed valve. */
    bool shed = false;

    /** Both load scores at or above this factor = overloaded: bounce
     *  the request instead of queueing it on either side. (Device
     *  load is admission-bounded in practice, so factors much above
     *  ~2 make the valve unreachable.) */
    double shedFactor = 2.0;

    /** Base retry-after of a shed bounce (the serving driver scales it
     *  linearly with the request's bounce count). */
    std::uint32_t shedRetryUs = 200;

    /** Shed bounces one request absorbs before it is terminally
     *  rejected (kOverloaded semantics: deterministic shedding instead
     *  of an unbounded retry loop). */
    unsigned shedMaxBounces = 8;
};

/** Live load signals one decision reads. */
struct HybridSignals
{
    /** Declared-but-unserved bytes across the target device's cores
     *  (CoreDispatcher::pendingBytes summed). */
    std::uint64_t backlogBytes = 0;
    /** Resident instances across the target device's cores. */
    unsigned queueDepth = 0;
    /** Cumulative kDsramExhausted bounce count on the device (the
     *  policy reacts to increments). */
    std::uint64_t dsramBounces = 0;
    /** Queued work on the least-loaded host core, in microseconds. */
    double hostBacklogUs = 0.0;
    /** This request's stream length. */
    std::uint64_t requestBytes = 0;
};

/** One placement verdict. */
struct PlacementDecision
{
    ExecPlacement placement = ExecPlacement::kDevice;
    /** Device share of a kSplit (config's splitDeviceShare). */
    double deviceShare = 1.0;
    /** Retry-after hint of a kShed bounce, microseconds. */
    std::uint32_t retryAfterUs = 0;
    /** The load scores behind the verdict (1.0 = watermark). */
    double deviceLoad = 0.0;
    double hostLoad = 0.0;
};

/**
 * Per-device placement policy. Stateful (hysteresis + bounce-rate
 * tracking), so fleet drivers keep one per SSD.
 */
class HybridPlacementPolicy
{
  public:
    explicit HybridPlacementPolicy(const HybridConfig &config);

    /** Place one request given the signals at @p now. */
    PlacementDecision decide(const HybridSignals &sig, sim::Tick now);

    /** Currently past the high watermark (spill mode). */
    bool spilling() const { return _spill; }

    /** Spill-mode transitions (both directions). */
    std::uint64_t flips() const { return _flips; }

    /** Decisions handed out per placement. */
    std::uint64_t
    decisions(ExecPlacement p) const
    {
        return _decisions[static_cast<std::size_t>(p)];
    }

    const HybridConfig &config() const { return _config; }

  private:
    const HybridConfig _config;
    bool _spill = false;
    std::uint64_t _flips = 0;
    std::uint64_t _lastDsramBounces = 0;
    sim::Tick _bounceHotUntil = 0;
    std::array<std::uint64_t, kNumPlacements> _decisions{};
};

/**
 * Per-tenant circuit breaker over the device path: route() answers
 * where the tenant's next request goes, onDeviceSuccess()/
 * onDeviceFailure() feed terminal device-path outcomes back.
 */
class CircuitBreaker
{
  public:
    CircuitBreaker() = default;
    /** @p threshold consecutive failures open the breaker (0 disables
     *  opening); while open every @p probe_every -th routed request is
     *  a half-open probe (0 = never probe). */
    CircuitBreaker(unsigned threshold, unsigned probe_every)
        : _threshold(threshold), _probeEvery(probe_every)
    {
    }

    enum class Route : std::uint8_t {
        kDevice,  ///< Closed: the device path.
        kHost,    ///< Open: the host path.
        kProbe,   ///< Open, but this request tests the device.
    };

    /** Route the tenant's next request (counts it while open). */
    Route
    route()
    {
        if (!_open)
            return Route::kDevice;
        ++_sinceOpen;
        const bool probe =
            _probeEvery > 0 && _sinceOpen % _probeEvery == 0;
        return probe ? Route::kProbe : Route::kHost;
    }

    /** A device-path request (probe or not) completed successfully.
     *  @return true when this success closed an open breaker. */
    bool
    onDeviceSuccess()
    {
        const bool closed = _open;
        _open = false;
        _consecutive = 0;
        return closed;
    }

    /** A device-path request failed terminally. @return true when this
     *  failure tripped the breaker open (a failed probe leaves it
     *  open without re-transitioning). */
    bool
    onDeviceFailure()
    {
        ++_consecutive;
        if (_threshold > 0 && !_open &&
            _consecutive >= _threshold) {
            _open = true;
            _sinceOpen = 0;
            return true;
        }
        return false;
    }

    bool open() const { return _open; }
    unsigned consecutiveFailures() const { return _consecutive; }
    /** Requests routed since the breaker last opened. */
    std::uint64_t sinceOpen() const { return _sinceOpen; }

  private:
    unsigned _threshold = 3;
    unsigned _probeEvery = 8;
    unsigned _consecutive = 0;
    bool _open = false;
    std::uint64_t _sinceOpen = 0;
};

}  // namespace morpheus::sched

#endif  // MORPHEUS_SCHED_HYBRID_POLICY_HH
