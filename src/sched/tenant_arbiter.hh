/**
 * @file
 * Per-tenant command-queue front end: admission control over MINIT
 * instances plus weighted deficit arbitration of the data path.
 *
 * Admission tracks in-flight instances per tenant and device-wide.
 * Completed instances are remembered with their completion ticks, so a
 * queued MINIT can be started exactly when a slot frees; an instance
 * that is still open (its MDEINIT has not executed yet) has an unknown
 * completion, in which case a queued MINIT is bounced back to the host
 * with a retry indication (NVMe-style backpressure).
 *
 * Arbitration approximates weighted deficit round robin under the
 * simulator's walk order: each tenant accrues served bytes, and a
 * tenant that runs more than one (weight-scaled) quantum ahead of its
 * fair share of the backlogged set is paced by delaying its next
 * command, with the delay derived from the observed device service
 * rate and clamped to SchedConfig::drrMaxDelay (starvation freedom).
 * Backlog is declared in-band: MINIT carries the stream's byte length
 * (in its otherwise unused SLBA field), the arbiter drains it as data
 * commands arrive, and clears any residue when the instance ends —
 * state a real controller front end sees on its submission queues.
 */

#ifndef MORPHEUS_SCHED_TENANT_ARBITER_HH
#define MORPHEUS_SCHED_TENANT_ARBITER_HH

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "sched/sched_config.hh"
#include "sim/stats.hh"

namespace morpheus::sched {

/** Outcome of an instance admission request. */
struct AdmitDecision
{
    sim::Tick start = 0;    ///< Earliest tick the MINIT may start.
    bool rejected = false;  ///< Terminal refusal (kReject policy).
    bool retry = false;     ///< Slot held by an open instance: retry.
};

/** The multi-tenant front end of the Morpheus command path. */
class TenantArbiter
{
  public:
    explicit TenantArbiter(const SchedConfig &config);

    /** Relative service weight of @p tenant (default 1.0). */
    void setTenantWeight(std::uint32_t tenant, double weight);

    // ------------------------------------------------ instance path

    /**
     * Admit one MINIT for @p tenant arriving at @p arrival, declaring
     * @p backlog_bytes of upcoming stream data. Admission registers
     * the instance->tenant mapping used by the data path. Arrivals
     * must be non-decreasing in time.
     */
    AdmitDecision admitInstance(std::uint32_t tenant,
                                std::uint32_t instance,
                                sim::Tick arrival,
                                std::uint64_t backlog_bytes = 0);

    /** The instance's MDEINIT completed at @p done. */
    void onInstanceDone(std::uint32_t instance, sim::Tick done);

    /** The instance's MINIT failed after admission: free its slot. */
    void dropInstance(std::uint32_t instance);

    /** Tenant owning @p instance (kNoTenant when unknown). */
    std::uint32_t tenantOf(std::uint32_t instance) const;

    static constexpr std::uint32_t kNoTenant = 0xFFFFFFFFu;

    // ------------------------------------------------ data path

    /**
     * Admit one MREAD/MWRITE of @p bytes for @p instance arriving at
     * @p arrival. @return the tick the command may start (>= arrival).
     */
    sim::Tick admitData(std::uint32_t instance, std::uint64_t bytes,
                        sim::Tick arrival);

    /** Service feedback: a data command of @p bytes ran [start, done).
     */
    void onDataDone(std::uint64_t bytes, sim::Tick start,
                    sim::Tick done);

    /** Declared-but-unserved bytes of @p tenant (for tests). */
    std::int64_t backlogOf(std::uint32_t tenant) const;

    /** Declared-but-unserved bytes of one instance (0 when unknown) —
     *  the in-band MINIT SLBA declaration minus the data commands seen
     *  since, the placement signal behind backlogAwarePlacement. */
    std::uint64_t declaredBacklog(std::uint32_t instance) const;

    /** Device-wide declared-but-unserved bytes over every open
     *  instance — the overload valve's saturation signal. */
    std::uint64_t totalDeclaredBacklog() const;

    /**
     * NVMe-style retry-after hint, in microseconds, for a bounced
     * command (kInstanceBusy / kDsramExhausted). Estimates when device
     * pressure will ease: the total declared-but-unserved backlog at
     * the observed data-path service rate, amortized over the open
     * instances draining it. Falls back to a fixed 50 us before any
     * service-rate observation exists. Clamped to [1, 65535] so it
     * always fits a CQE DW0 and a zero hint still means "no hint".
     */
    std::uint32_t retryAfterHintUs() const;

    // ------------------------------------------------ observability

    std::uint64_t instancesAdmitted() const { return _admitted.value(); }
    std::uint64_t instancesRejected() const { return _rejected.value(); }
    std::uint64_t instancesQueued() const { return _queued.value(); }
    std::uint64_t dataDelays() const { return _drrDelays.value(); }
    unsigned openInstances() const { return _openTotal; }

    void registerStats(sim::stats::StatSet &set,
                       const std::string &prefix) const;

  private:
    struct Tenant
    {
        double weight = 1.0;
        std::uint64_t servedBytes = 0;  ///< Current arbitration epoch.
        std::int64_t backlogBytes = 0;
        unsigned open = 0;  ///< Admitted, completion tick unknown.
        /** Completion ticks of finished instances not yet pruned. */
        std::multiset<sim::Tick> closedDone;
    };

    Tenant &tenant(std::uint32_t id);
    /** Drop remembered completions at or before @p arrival. */
    static void prune(std::multiset<sim::Tick> &done, sim::Tick arrival);
    /** Forget the instance; return its declared backlog residue. */
    void releaseInstance(std::uint32_t instance);

    const SchedConfig _config;
    std::map<std::uint32_t, Tenant> _tenants;
    std::unordered_map<std::uint32_t, std::uint32_t> _instanceTenant;
    /** Declared stream bytes not yet seen as data commands. */
    std::unordered_map<std::uint32_t, std::uint64_t> _instanceBacklog;
    unsigned _openTotal = 0;
    std::multiset<sim::Tick> _closedDoneAll;

    /** Arbitration epoch: reset whenever the backlogged set changes. */
    std::vector<std::uint32_t> _backloggedSet;
    std::uint64_t _totalServedBytes = 0;
    double _ewmaBytesPerTick = 0.0;

    sim::stats::Counter _admitted;
    sim::stats::Counter _rejected;
    sim::stats::Counter _queued;
    sim::stats::Counter _queuedDelayTicks;
    sim::stats::Counter _drrDelays;
    sim::stats::Counter _drrDelayTicks;
};

}  // namespace morpheus::sched

#endif  // MORPHEUS_SCHED_TENANT_ARBITER_HH
