/**
 * @file
 * Load-aware embedded-core dispatch for StorageApp instances.
 *
 * Replaces the paper's static `instance_id % numCores` mapping with
 * shortest-queue placement: MINIT assigns the instance to the core
 * hosting the fewest live instances (ties broken by the tick the
 * core's occupancy timeline frees, then core index). Resident count
 * leads because a host session keeps only about one MREAD batch
 * reserved at a time, so timeline backlog alone under-reports the
 * remaining work of long streams. With migration enabled, the
 * dispatcher may move an instance to a less-loaded core between MREAD
 * chunks when the backlog gap exceeds SchedConfig::migrationMinGain;
 * the device runtime charges the I-SRAM reload and D-SRAM state move.
 *
 * With D-SRAM partitioning, each instance carries a scratchpad grant:
 * placement prefers cores with room for it (a packing signal alongside
 * resident count and backlog), and migration never proposes a target
 * that cannot hold the instance's grant.
 *
 * The dispatcher reads core load through probe callbacks (the SSD
 * controller passes each core's Timeline::freeAt and free D-SRAM
 * bytes), so this library needs no dependency on the ssd layer.
 */

#ifndef MORPHEUS_SCHED_CORE_DISPATCHER_HH
#define MORPHEUS_SCHED_CORE_DISPATCHER_HH

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sched/sched_config.hh"
#include "sim/stats.hh"

namespace morpheus::sched {

/** Chooses and tracks the embedded core serving each instance. */
class CoreDispatcher
{
  public:
    /** Returns the tick core @p idx becomes free. */
    using LoadProbe = std::function<sim::Tick(unsigned)>;
    /** Returns core @p idx's unreserved D-SRAM bytes. */
    using DsramProbe = std::function<std::uint32_t(unsigned)>;

    /** @p track_prefix prefixes the "sched.dispatcher" trace track
     *  ("dev1.sched.dispatcher") so fleet runs keep one track per
     *  device; empty (the default) keeps the classic name. */
    CoreDispatcher(const SchedConfig &config, unsigned num_cores,
                   LoadProbe probe, DsramProbe dsram_probe = {},
                   std::string track_prefix = {});

    /**
     * Pick the core for a new instance (MINIT). @p dsram_needed is the
     * instance's scratchpad grant (0 = unpartitioned): cores that can
     * hold it are preferred over cores that would bounce the MINIT.
     * @p declared_bytes is the stream length the MINIT declared
     * in-band (SLBA); with SchedConfig::backlogAwarePlacement it packs
     * instances by pending bytes instead of resident count.
     */
    unsigned placeInstance(std::uint32_t instance, sim::Tick now,
                           std::uint32_t dsram_needed = 0,
                           std::uint64_t declared_bytes = 0);

    /** A data command served @p bytes of @p instance's declared
     *  stream: drain the per-core pending-bytes packing signal. */
    void noteServedBytes(std::uint32_t instance, std::uint64_t bytes);

    /** Core serving the next chunk; may carry a migration decision. */
    struct ChunkPlacement
    {
        unsigned core = 0;
        bool migrated = false;
        unsigned previous = 0;  ///< Valid when migrated.
    };

    /**
     * Core for the instance's next MREAD chunk at @p now. With
     * migration enabled this may move the instance; the caller either
     * commits (reloading the image on the new core) or calls
     * cancelMigration() if the new core cannot take it.
     */
    ChunkPlacement coreForChunk(std::uint32_t instance, sim::Tick now);

    /** Undo a migration the caller could not commit. */
    void cancelMigration(std::uint32_t instance, unsigned previous,
                         sim::Tick now = 0);

    /** The instance finished (MDEINIT or failed MINIT). */
    void releaseInstance(std::uint32_t instance);

    /** Current core of a live instance. */
    unsigned coreOf(std::uint32_t instance) const;

    /** Live instances currently assigned to @p core. */
    unsigned residents(unsigned core) const { return _residents.at(core); }

    /** Declared-but-unserved bytes pending on @p core. */
    std::uint64_t pendingBytes(unsigned core) const
    {
        return _pendingBytes.at(core);
    }

    std::uint64_t placements() const { return _placements.value(); }
    std::uint64_t migrations() const { return _migrations.value(); }

    void registerStats(sim::stats::StatSet &set,
                       const std::string &prefix) const;

  private:
    /** Backlog of @p core at @p now (0 when idle). */
    sim::Tick backlog(unsigned core, sim::Tick now) const;
    /** True when @p core can hold a @p dsram_needed -byte grant. */
    bool fitsDsram(unsigned core, std::uint32_t dsram_needed) const;
    unsigned leastLoadedCore(sim::Tick now,
                             std::uint32_t dsram_needed) const;

    const SchedConfig _config;
    const unsigned _numCores;
    LoadProbe _probe;
    DsramProbe _dsramProbe;
    const std::string _trackPrefix;

    std::unordered_map<std::uint32_t, unsigned> _coreOf;
    /** Scratchpad grant each instance was placed with (packing + the
     *  migration fit check). */
    std::unordered_map<std::uint32_t, std::uint32_t> _dsramOf;
    /** Declared stream bytes not yet served, per instance; follows the
     *  instance across migrations and drains via noteServedBytes(). */
    std::unordered_map<std::uint32_t, std::uint64_t> _bytesOf;
    std::vector<unsigned> _residents;
    /** Sum of _bytesOf over each core's residents. */
    std::vector<std::uint64_t> _pendingBytes;

    sim::stats::Counter _placements;
    sim::stats::Counter _migrations;
    sim::stats::Counter _migrationsCancelled;
};

}  // namespace morpheus::sched

#endif  // MORPHEUS_SCHED_CORE_DISPATCHER_HH
