/**
 * @file
 * Load-aware embedded-core dispatch for StorageApp instances.
 *
 * Replaces the paper's static `instance_id % numCores` mapping with
 * shortest-queue placement: MINIT assigns the instance to the core
 * hosting the fewest live instances (ties broken by the tick the
 * core's occupancy timeline frees, then core index). Resident count
 * leads because a host session keeps only about one MREAD batch
 * reserved at a time, so timeline backlog alone under-reports the
 * remaining work of long streams. With migration enabled, the
 * dispatcher may move an instance to a less-loaded core between MREAD
 * chunks when the backlog gap exceeds SchedConfig::migrationMinGain;
 * the device runtime charges the I-SRAM reload and D-SRAM state move.
 *
 * The dispatcher reads core load through a probe callback (the SSD
 * controller passes each core's Timeline::freeAt), so this library
 * needs no dependency on the ssd layer.
 */

#ifndef MORPHEUS_SCHED_CORE_DISPATCHER_HH
#define MORPHEUS_SCHED_CORE_DISPATCHER_HH

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sched/sched_config.hh"
#include "sim/stats.hh"

namespace morpheus::sched {

/** Chooses and tracks the embedded core serving each instance. */
class CoreDispatcher
{
  public:
    /** Returns the tick core @p idx becomes free. */
    using LoadProbe = std::function<sim::Tick(unsigned)>;

    CoreDispatcher(const SchedConfig &config, unsigned num_cores,
                   LoadProbe probe);

    /** Pick the core for a new instance (MINIT). */
    unsigned placeInstance(std::uint32_t instance, sim::Tick now);

    /** Core serving the next chunk; may carry a migration decision. */
    struct ChunkPlacement
    {
        unsigned core = 0;
        bool migrated = false;
        unsigned previous = 0;  ///< Valid when migrated.
    };

    /**
     * Core for the instance's next MREAD chunk at @p now. With
     * migration enabled this may move the instance; the caller either
     * commits (reloading the image on the new core) or calls
     * cancelMigration() if the new core cannot take it.
     */
    ChunkPlacement coreForChunk(std::uint32_t instance, sim::Tick now);

    /** Undo a migration the caller could not commit. */
    void cancelMigration(std::uint32_t instance, unsigned previous);

    /** The instance finished (MDEINIT or failed MINIT). */
    void releaseInstance(std::uint32_t instance);

    /** Current core of a live instance. */
    unsigned coreOf(std::uint32_t instance) const;

    /** Live instances currently assigned to @p core. */
    unsigned residents(unsigned core) const { return _residents.at(core); }

    std::uint64_t placements() const { return _placements.value(); }
    std::uint64_t migrations() const { return _migrations.value(); }

    void registerStats(sim::stats::StatSet &set,
                       const std::string &prefix) const;

  private:
    /** Backlog of @p core at @p now (0 when idle). */
    sim::Tick backlog(unsigned core, sim::Tick now) const;
    unsigned leastLoadedCore(sim::Tick now) const;

    const SchedConfig _config;
    const unsigned _numCores;
    LoadProbe _probe;

    std::unordered_map<std::uint32_t, unsigned> _coreOf;
    std::vector<unsigned> _residents;

    sim::stats::Counter _placements;
    sim::stats::Counter _migrations;
    sim::stats::Counter _migrationsCancelled;
};

}  // namespace morpheus::sched

#endif  // MORPHEUS_SCHED_CORE_DISPATCHER_HH
