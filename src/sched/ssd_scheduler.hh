/**
 * @file
 * The scheduler front end the SSD firmware consults before executing a
 * Morpheus command.
 *
 * SsdScheduler composes the two mechanisms of the subsystem: the
 * TenantArbiter (admission of MINIT instances, weighted pacing of the
 * data path) and the CoreDispatcher (instance placement on embedded
 * cores). The SSD controller calls admitCommand() before handing an M*
 * command to the device runtime and onCommandDone() with the result,
 * so the runtime itself only needs the dispatcher for placement.
 */

#ifndef MORPHEUS_SCHED_SSD_SCHEDULER_HH
#define MORPHEUS_SCHED_SSD_SCHEDULER_HH

#include <string>

#include "nvme/controller.hh"
#include "sched/core_dispatcher.hh"
#include "sched/sched_config.hh"
#include "sched/tenant_arbiter.hh"

namespace morpheus::sched {

/** Front-end verdict on one Morpheus command. */
struct FrontEndDecision
{
    /** Tick the command may start executing (>= its arrival). */
    sim::Tick start = 0;
    /** kSuccess to proceed; any other status completes the command
     *  immediately (kAdmissionDenied, or kInstanceBusy for retry). */
    nvme::Status status = nvme::Status::kSuccess;
    /** Completion DW0 payload for refusals: the retry-after hint in
     *  microseconds on kInstanceBusy (0 = no hint). */
    std::uint32_t dw0 = 0;
};

/** Admission + arbitration + placement for the Morpheus command path. */
class SsdScheduler
{
  public:
    /** @p track_prefix prefixes the scheduler's trace tracks
     *  ("dev1.sched.tenant[N]", "dev1.sched.dispatcher") so fleet runs
     *  keep one track per device; empty keeps the classic names. */
    SsdScheduler(const SchedConfig &config, unsigned num_cores,
                 CoreDispatcher::LoadProbe probe,
                 CoreDispatcher::DsramProbe dsram_probe = {},
                 std::string track_prefix = {});

    const SchedConfig &config() const { return _config; }
    TenantArbiter &arbiter() { return _arbiter; }
    CoreDispatcher &dispatcher() { return _dispatcher; }

    /**
     * Gate one M* command arriving at @p arrival. MINIT goes through
     * admission (the tenant ID rides in cdw15); MREAD/MWRITE through
     * the weighted-deficit pacer; MDEINIT always passes.
     */
    FrontEndDecision admitCommand(const nvme::Command &cmd,
                                  sim::Tick arrival);

    /**
     * Report the execution result of a command previously admitted at
     * @p start. Feeds completion ticks back into admission and the
     * pacer's service-rate estimate, and releases placement and
     * admission state for finished or failed instances.
     */
    void onCommandDone(const nvme::Command &cmd, sim::Tick start,
                       const nvme::CommandResult &result);

    void registerStats(sim::stats::StatSet &set,
                       const std::string &prefix) const;

    /** MINITs bounced for lack of D-SRAM budget so far (the hybrid
     *  layer's scratchpad-pressure signal). */
    std::uint64_t dsramBounces() const { return _dsramBounces.value(); }

    /** MINITs bounced by the overload valve so far. */
    std::uint64_t overloadBounces() const
    {
        return _overloadBounces.value();
    }

  private:
    const SchedConfig _config;
    /** Span-track prefix ("" for device 0, "dev1." etc. in a fleet). */
    const std::string _trackPrefix;
    TenantArbiter _arbiter;
    CoreDispatcher _dispatcher;
    /** MINITs the runtime bounced for lack of D-SRAM budget. */
    sim::stats::Counter _dsramBounces;
    /** MINITs the overload valve refused with kOverloaded. */
    sim::stats::Counter _overloadBounces;
};

}  // namespace morpheus::sched

#endif  // MORPHEUS_SCHED_SSD_SCHEDULER_HH
