#include "sim/stats.hh"

#include <cmath>

#include "sim/logging.hh"

namespace morpheus::sim::stats {

Histogram::Histogram(double lo, double hi, unsigned buckets)
    : _lo(lo), _width((hi - lo) / buckets), _counts(buckets, 0)
{
    MORPHEUS_ASSERT(hi > lo, "histogram range is empty");
    MORPHEUS_ASSERT(buckets > 0, "histogram needs at least one bucket");
}

void
Histogram::sample(double v)
{
    _acc.sample(v);
    if (v < _lo) {
        ++_underflow;
        return;
    }
    const auto idx = static_cast<std::size_t>((v - _lo) / _width);
    if (idx >= _counts.size()) {
        ++_overflow;
        return;
    }
    ++_counts[idx];
}

double
Histogram::quantile(double q) const
{
    MORPHEUS_ASSERT(q >= 0.0 && q <= 1.0, "quantile out of range");
    const std::uint64_t total = samples();
    if (total == 0)
        return 0.0;
    if (q == 0.0)
        return _acc.min();
    const auto target = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               std::ceil(q * static_cast<double>(total))));
    std::uint64_t seen = _underflow;
    if (seen >= target) {
        // The quantile falls among the samples below _lo; the exact
        // smallest sample bounds them all.
        return _acc.min();
    }
    for (std::size_t i = 0; i < _counts.size(); ++i) {
        const std::uint64_t in_bucket = _counts[i];
        if (seen + in_bucket >= target) {
            // Rank interpolation inside the landing bucket: the k-th of
            // its n samples sits k/n of the way through the bucket
            // (k = target - seen in [1, n]), instead of every rank
            // collapsing onto the midpoint. The exact observed extremes
            // clamp the estimate so a quantile can never leave the
            // sampled range.
            const double frac =
                static_cast<double>(target - seen) /
                static_cast<double>(in_bucket);
            const double v =
                _lo + (static_cast<double>(i) + frac) * _width;
            return std::min(std::max(v, _acc.min()), _acc.max());
        }
        seen += in_bucket;
    }
    // The quantile falls among the overflow samples above the last
    // bucket; the exact largest sample bounds them all.
    return _acc.max();
}

void
Histogram::reset()
{
    std::fill(_counts.begin(), _counts.end(), 0);
    _underflow = 0;
    _overflow = 0;
    _acc.reset();
}

void
StatSet::registerCounter(const std::string &name, const Counter *c)
{
    MORPHEUS_ASSERT(c != nullptr, "null counter: ", name);
    const bool inserted = _counters.emplace(name, c).second;
    MORPHEUS_ASSERT(inserted, "duplicate counter name: ", name);
}

void
StatSet::registerAccumulator(const std::string &name, const Accumulator *a)
{
    MORPHEUS_ASSERT(a != nullptr, "null accumulator: ", name);
    const bool inserted = _accumulators.emplace(name, a).second;
    MORPHEUS_ASSERT(inserted, "duplicate accumulator name: ", name);
}

void
StatSet::registerScalar(const std::string &name, const double *v)
{
    MORPHEUS_ASSERT(v != nullptr, "null scalar: ", name);
    const bool inserted = _scalars.emplace(name, v).second;
    MORPHEUS_ASSERT(inserted, "duplicate scalar name: ", name);
}

std::uint64_t
StatSet::counterValue(const std::string &name) const
{
    const auto it = _counters.find(name);
    return it == _counters.end() ? 0 : it->second->value();
}

void
StatSet::report(std::ostream &os) const
{
    for (const auto &[name, c] : _counters)
        os << name << " " << c->value() << "\n";
    for (const auto &[name, a] : _accumulators) {
        os << name << ".mean " << a->mean() << "\n";
        os << name << ".count " << a->count() << "\n";
    }
    for (const auto &[name, v] : _scalars)
        os << name << " " << *v << "\n";
}

void
StatSet::visit(
    const std::function<void(const std::string &, std::uint64_t)>
        &counter_fn,
    const std::function<void(const std::string &, double)> &scalar_fn) const
{
    for (const auto &[name, c] : _counters)
        counter_fn(name, c->value());
    for (const auto &[name, a] : _accumulators) {
        scalar_fn(name + ".mean", a->mean());
        counter_fn(name + ".count", a->count());
    }
    for (const auto &[name, v] : _scalars)
        scalar_fn(name, *v);
}

}  // namespace morpheus::sim::stats
