/**
 * @file
 * Deterministic pseudo-random number generation (splitmix64 +
 * xoshiro256**). Every workload generator takes an explicit seed so
 * whole experiments are reproducible bit-for-bit across runs and
 * platforms (no dependence on std::random distributions, whose output
 * is implementation-defined).
 */

#ifndef MORPHEUS_SIM_RNG_HH
#define MORPHEUS_SIM_RNG_HH

#include <cstdint>

namespace morpheus::sim {

/** xoshiro256** seeded via splitmix64; portable and deterministic. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed) { reseed(seed); }

    /** Re-initialize state from @p seed. */
    void reseed(std::uint64_t seed);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound); bound must be > 0. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t nextInRange(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw with probability @p p. */
    bool nextBool(double p) { return nextDouble() < p; }

    /** Approximately normal via sum of uniforms (Irwin–Hall, n=12). */
    double nextGaussian(double mean, double stddev);

  private:
    std::uint64_t _s[4];
};

}  // namespace morpheus::sim

#endif  // MORPHEUS_SIM_RNG_HH
