/**
 * @file
 * Serialized-resource occupancy tracking.
 *
 * A Timeline models a resource that can serve one operation at a time
 * (a flash die, a DMA engine, a PCIe link direction, a CPU core). A
 * client asks for a slot of a given duration no earlier than some
 * tick; the timeline places the reservation in the earliest gap that
 * fits and records utilization.
 *
 * Reservations may arrive in any time order: the simulator walks
 * logically-concurrent activities (host threads, StorageApp instances)
 * one after another in program order, so a later-walked activity must
 * be able to claim an idle gap that an earlier-walked activity left
 * behind. Interval bookkeeping (an ordered map of busy spans, merged
 * on insert) makes that exact rather than approximate.
 */

#ifndef MORPHEUS_SIM_TIMELINE_HH
#define MORPHEUS_SIM_TIMELINE_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace morpheus::sim {

/** Occupancy tracker for a one-op-at-a-time resource. */
class Timeline
{
  public:
    explicit Timeline(std::string name = "timeline")
        : _name(std::move(name))
    {}

    /**
     * Reserve the resource for @p duration ticks, starting no earlier
     * than @p earliest, in the earliest gap that fits.
     *
     * @return The tick at which the reservation begins.
     */
    Tick acquire(Tick earliest, Tick duration);

    /** acquire() and return the completion tick instead of the start. */
    Tick
    acquireUntil(Tick earliest, Tick duration)
    {
        return acquire(earliest, duration) + duration;
    }

    /** End of the last reservation (0 when never used). */
    Tick freeAt() const
    {
        return _busy.empty() ? 0 : _busy.rbegin()->second;
    }

    /** Total busy time accumulated. */
    Tick busyTicks() const { return _busyTicks; }

    /** Number of reservations made. */
    std::uint64_t ops() const { return _ops; }

    /** Number of distinct busy intervals currently tracked. */
    std::size_t intervals() const { return _busy.size(); }

    /** Fraction of [0, window) spent busy (clamped to [0, 1]). */
    double
    utilization(Tick window) const
    {
        if (window == 0)
            return 0.0;
        const double u = static_cast<double>(_busyTicks) /
                         static_cast<double>(window);
        return u > 1.0 ? 1.0 : u;
    }

    const std::string &name() const { return _name; }

    /** Drop all accumulated state (for test reuse). */
    void
    reset()
    {
        _busy.clear();
        _busyTicks = 0;
        _ops = 0;
    }

  private:
    std::string _name;
    /** Busy spans: start -> end, non-overlapping, non-adjacent. */
    std::map<Tick, Tick> _busy;
    Tick _busyTicks = 0;
    std::uint64_t _ops = 0;
};

/**
 * A bank of identical serialized resources with earliest-free dispatch
 * (e.g., a pool of embedded cores or DMA channels when the requester
 * does not care which unit serves it).
 */
class TimelineBank
{
  public:
    TimelineBank(std::string name, unsigned count);

    /** Reserve whichever unit frees up first. @return start tick. */
    Tick acquire(Tick earliest, Tick duration, unsigned *unit = nullptr);

    /** Reserve a specific unit. */
    Tick
    acquireUnit(unsigned unit, Tick earliest, Tick duration)
    {
        return _units.at(unit).acquire(earliest, duration);
    }

    unsigned size() const { return static_cast<unsigned>(_units.size()); }
    const Timeline &unit(unsigned i) const { return _units.at(i); }
    Timeline &unit(unsigned i) { return _units.at(i); }

    /** Sum of busy ticks across units. */
    Tick totalBusyTicks() const;

  private:
    std::string _name;
    std::vector<Timeline> _units;
};

}  // namespace morpheus::sim

#endif  // MORPHEUS_SIM_TIMELINE_HH
