/**
 * @file
 * Error and status reporting, following the gem5 panic/fatal split.
 *
 * - panic(): an internal simulator invariant was violated (a bug in this
 *   code base). Aborts.
 * - fatal(): the simulation cannot continue because of a user error
 *   (bad configuration, impossible parameters). Exits with code 1.
 * - warn()/inform(): status messages; never stop the simulation.
 */

#ifndef MORPHEUS_SIM_LOGGING_HH
#define MORPHEUS_SIM_LOGGING_HH

#include <cstdlib>
#include <sstream>
#include <string>

namespace morpheus::sim {

/** Verbosity threshold for inform(); warn() always prints. */
enum class LogLevel { kQuiet, kNormal, kVerbose };

/**
 * Process-wide log level. Initialized from the MORPHEUS_LOG_LEVEL
 * environment variable ("quiet"/"0", "normal"/"1", "verbose"/"2");
 * defaults to kNormal.
 */
LogLevel logLevel();

/** Set the process-wide log level. */
void setLogLevel(LogLevel level);

namespace detail {

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Fold a list of streamable values into one string. */
template <typename... Args>
std::string
format(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

}  // namespace detail

}  // namespace morpheus::sim

/** Abort on an internal invariant violation (simulator bug). */
#define MORPHEUS_PANIC(...)                                             \
    ::morpheus::sim::detail::panicImpl(                                 \
        __FILE__, __LINE__, ::morpheus::sim::detail::format(__VA_ARGS__))

/** Exit on an unrecoverable user/configuration error. */
#define MORPHEUS_FATAL(...)                                             \
    ::morpheus::sim::detail::fatalImpl(                                 \
        __FILE__, __LINE__, ::morpheus::sim::detail::format(__VA_ARGS__))

/** Print a warning; simulation continues. */
#define MORPHEUS_WARN(...)                                              \
    ::morpheus::sim::detail::warnImpl(                                  \
        ::morpheus::sim::detail::format(__VA_ARGS__))

/** Print an informational message (suppressed at kQuiet). */
#define MORPHEUS_INFORM(...)                                            \
    ::morpheus::sim::detail::informImpl(                                \
        ::morpheus::sim::detail::format(__VA_ARGS__))

/** Panic unless @p cond holds. */
#define MORPHEUS_ASSERT(cond, ...)                                      \
    do {                                                                \
        if (!(cond)) {                                                  \
            MORPHEUS_PANIC("assertion failed: " #cond " ",              \
                           ::morpheus::sim::detail::format(__VA_ARGS__)); \
        }                                                               \
    } while (0)

#endif  // MORPHEUS_SIM_LOGGING_HH
