/**
 * @file
 * Seeded, deterministic fault injection.
 *
 * A FaultPlan names per-event-class Bernoulli rates (uncorrectable
 * flash page reads, transient DMA transfer faults, StorageApp crashes
 * and hangs, dropped CQEs); a FaultInjector draws from one independent
 * Rng stream per class so changing one rate never perturbs another
 * class's schedule. Components consult the process-global injector
 * through sim::faultInjector() with a single null check — when no
 * injector is installed (the default) zero RNG draws happen and the
 * simulation is bit-identical to a build without this file.
 */

#ifndef MORPHEUS_SIM_FAULT_HH
#define MORPHEUS_SIM_FAULT_HH

#include <cstdint>
#include <string>

#include "sim/rng.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace morpheus::sim {

/**
 * The fault schedule's parameters. All rates default to zero, so a
 * default-constructed plan is inactive; the plan is fully determined
 * by (rates, seed), making every injected fault schedule reproducible.
 */
struct FaultPlan
{
    double mediaRate = 0.0;  ///< P(uncorrectable read) per flash page.
    double dmaRate = 0.0;    ///< P(transient fault) per data DMA move.
    double crashRate = 0.0;  ///< P(StorageApp crash) per processed chunk.
    double hangRate = 0.0;   ///< P(StorageApp hang) per processed chunk.
    double dropRate = 0.0;   ///< P(CQE dropped) per completion post.

    /** DMA moves below this size never fault: doorbells, SQEs and CQEs
     *  ride control paths whose loss the protocol layer models
     *  separately (dropped CQEs). 512 B exempts all of them while
     *  exposing every payload transfer. */
    std::uint64_t dmaMinBytes = 512;

    /** Simulated time a hung StorageApp seizes its core before the
     *  controller watchdog kills the instance (also the watchdog
     *  deadline). Default 200 us. */
    Tick watchdogTicks = 200'000'000;

    std::uint64_t seed = 1;  ///< Base seed for the per-class streams.

    /** True when any fault class can fire. */
    bool
    active() const
    {
        return mediaRate > 0.0 || dmaRate > 0.0 || crashRate > 0.0 ||
               hangRate > 0.0 || dropRate > 0.0;
    }

    /**
     * Parse a "key=value,key=value" spec, e.g.
     * "media=2e-3,dma=1e-3,crash=5e-4,hang=1e-4,drop=1e-3,seed=7".
     * Keys: media, dma, crash, hang, drop (rates in [0,1]);
     * dma_min (bytes), watchdog_us, seed. Unknown keys panic.
     */
    static FaultPlan parse(const std::string &spec);

    /** Plan from the MORPHEUS_FAULTS environment variable (parse()
     *  syntax); an inactive default plan when the variable is unset. */
    static FaultPlan fromEnv();
};

/**
 * Draws fault decisions per the plan and counts what it injected.
 * Each fault class consumes its own Rng stream (seeded seed ^ salt),
 * so the media-error schedule at a given seed is invariant under
 * turning DMA faults on or off, and vice versa.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(const FaultPlan &plan);

    const FaultPlan &plan() const { return _plan; }

    /** Draw: does this flash page read come back uncorrectable? */
    bool mediaError();

    /** Draw: does this @p bytes-sized DMA move fault in flight?
     *  Always false below plan().dmaMinBytes (no draw consumed). */
    bool dmaFault(std::uint64_t bytes);

    /** Draw: does the StorageApp crash processing this chunk? */
    bool appCrash();

    /** Draw: does the StorageApp hang processing this chunk? */
    bool appHang();

    /** Draw: is this completion entry dropped before reaching the CQ? */
    bool dropCqe();

    /** Record a recovery event (not a draw): a device-side retry of a
     *  faulted outbound DMA segment. */
    void noteDmaRetry() { ++_dmaRetries; }

    /** Record a watchdog kill of a hung instance (not a draw). */
    void noteWatchdogKill() { ++_watchdogKills; }

    std::uint64_t mediaErrors() const { return _mediaErrors.value(); }
    std::uint64_t dmaFaults() const { return _dmaFaults.value(); }
    std::uint64_t appCrashes() const { return _appCrashes.value(); }
    std::uint64_t appHangs() const { return _appHangs.value(); }
    std::uint64_t droppedCqes() const { return _droppedCqes.value(); }
    std::uint64_t watchdogKills() const { return _watchdogKills.value(); }

    /** Register the injected/recovered counters under @p prefix. */
    void registerStats(stats::StatSet &set, const std::string &prefix) const;

  private:
    FaultPlan _plan;
    Rng _mediaRng;
    Rng _dmaRng;
    Rng _crashRng;
    Rng _hangRng;
    Rng _dropRng;
    stats::Counter _mediaErrors;
    stats::Counter _dmaFaults;
    stats::Counter _dmaRetries;
    stats::Counter _appCrashes;
    stats::Counter _appHangs;
    stats::Counter _droppedCqes;
    stats::Counter _watchdogKills;
};

/** The process-global injector, or nullptr when faults are disabled. */
FaultInjector *faultInjector();

/** Install @p fi as the global injector (nullptr disables). Returns
 *  the previously installed injector. */
FaultInjector *setFaultInjector(FaultInjector *fi);

/** RAII: install an injector for a scope, restore the previous one. */
class ScopedFaultInjector
{
  public:
    explicit ScopedFaultInjector(FaultInjector *fi)
        : _prev(setFaultInjector(fi))
    {
    }
    ~ScopedFaultInjector() { setFaultInjector(_prev); }

    ScopedFaultInjector(const ScopedFaultInjector &) = delete;
    ScopedFaultInjector &operator=(const ScopedFaultInjector &) = delete;

  private:
    FaultInjector *_prev;
};

}  // namespace morpheus::sim

#endif  // MORPHEUS_SIM_FAULT_HH
