#include "sim/rng.hh"

#include "sim/logging.hh"

namespace morpheus::sim {

namespace {

std::uint64_t
splitmix64(std::uint64_t &state)
{
    state += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

}  // namespace

void
Rng::reseed(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &s : _s)
        s = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(_s[1] * 5, 7) * 9;
    const std::uint64_t t = _s[1] << 17;
    _s[2] ^= _s[0];
    _s[3] ^= _s[1];
    _s[1] ^= _s[2];
    _s[0] ^= _s[3];
    _s[2] ^= t;
    _s[3] = rotl(_s[3], 45);
    return result;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    MORPHEUS_ASSERT(bound > 0, "nextBelow(0)");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (~bound + 1) % bound;
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::int64_t
Rng::nextInRange(std::int64_t lo, std::int64_t hi)
{
    MORPHEUS_ASSERT(lo <= hi, "nextInRange with lo > hi");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    // span == 0 means the full 64-bit range.
    const std::uint64_t r = span == 0 ? next() : nextBelow(span);
    return lo + static_cast<std::int64_t>(r);
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::nextGaussian(double mean, double stddev)
{
    double sum = 0.0;
    for (int i = 0; i < 12; ++i)
        sum += nextDouble();
    return mean + stddev * (sum - 6.0);
}

}  // namespace morpheus::sim
