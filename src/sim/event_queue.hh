/**
 * @file
 * Discrete-event simulation backbone.
 *
 * All simulated components share one EventQueue. Components schedule
 * closures at absolute ticks; the queue executes them in time order,
 * breaking ties by insertion order so the simulation is deterministic.
 */

#ifndef MORPHEUS_SIM_EVENT_QUEUE_HH
#define MORPHEUS_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace morpheus::sim {

/**
 * A time-ordered queue of scheduled closures.
 *
 * Determinism: events at equal ticks run in the order they were
 * scheduled (FIFO), enforced by a monotonically increasing sequence
 * number. Events scheduled while the queue is draining are picked up in
 * the same drain.
 */
class EventQueue
{
  public:
    using Action = std::function<void()>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return _now; }

    /**
     * Schedule @p action at absolute tick @p when.
     *
     * @param when   Absolute tick; must be >= now().
     * @param action Closure to run.
     * @param label  Optional debug label (kept for tracing).
     */
    void schedule(Tick when, Action action, std::string label = {});

    /** Schedule @p action @p delay ticks from now. */
    void
    scheduleIn(Tick delay, Action action, std::string label = {})
    {
        schedule(_now + delay, std::move(action), std::move(label));
    }

    /** Execute the single earliest event. @return false if empty. */
    bool runOne();

    /** Drain every event (including newly scheduled ones). */
    void run();

    /**
     * Drain events with time <= @p limit; afterwards now() == max of
     * the last executed event time and @p limit.
     */
    void runUntil(Tick limit);

    /** Number of events not yet executed. */
    std::size_t pending() const { return _heap.size(); }

    /** Total events executed since construction. */
    std::uint64_t executed() const { return _executed; }

    /**
     * Advance the clock with no event execution. Only valid when it
     * moves time forward; used by sequential host-thread models that
     * compute their own completion times.
     */
    void advanceTo(Tick when);

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        Action action;
        std::string label;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> _heap;
    Tick _now = 0;
    std::uint64_t _nextSeq = 0;
    std::uint64_t _executed = 0;
};

}  // namespace morpheus::sim

#endif  // MORPHEUS_SIM_EVENT_QUEUE_HH
