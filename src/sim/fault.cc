#include "sim/fault.hh"

#include <cstdlib>
#include <string>

#include "sim/logging.hh"

namespace morpheus::sim {

namespace {

// Distinct salts keep the per-class streams independent: enabling or
// re-rating one fault class never shifts another class's schedule.
constexpr std::uint64_t kMediaSalt = 0x6d65646961ull;  // "media"
constexpr std::uint64_t kDmaSalt = 0x646d61ull;        // "dma"
constexpr std::uint64_t kCrashSalt = 0x6372617368ull;  // "crash"
constexpr std::uint64_t kHangSalt = 0x68616e67ull;     // "hang"
constexpr std::uint64_t kDropSalt = 0x64726f70ull;     // "drop"

FaultInjector *g_injector = nullptr;

double
parseRate(const std::string &key, const std::string &value)
{
    const double v = std::stod(value);
    if (v < 0.0 || v > 1.0)
        MORPHEUS_FATAL("fault rate '", key, "' out of [0,1]: ", value);
    return v;
}

}  // namespace

FaultPlan
FaultPlan::parse(const std::string &spec)
{
    FaultPlan plan;
    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t end = spec.find(',', pos);
        if (end == std::string::npos)
            end = spec.size();
        const std::string item = spec.substr(pos, end - pos);
        pos = end + 1;
        if (item.empty())
            continue;
        const std::size_t eq = item.find('=');
        if (eq == std::string::npos)
            MORPHEUS_FATAL("fault plan item '", item, "' is not key=value");
        const std::string key = item.substr(0, eq);
        const std::string value = item.substr(eq + 1);
        if (key == "media") {
            plan.mediaRate = parseRate(key, value);
        } else if (key == "dma") {
            plan.dmaRate = parseRate(key, value);
        } else if (key == "crash") {
            plan.crashRate = parseRate(key, value);
        } else if (key == "hang") {
            plan.hangRate = parseRate(key, value);
        } else if (key == "drop") {
            plan.dropRate = parseRate(key, value);
        } else if (key == "dma_min") {
            plan.dmaMinBytes = std::stoull(value);
        } else if (key == "watchdog_us") {
            plan.watchdogTicks = Tick(std::stoull(value)) * 1'000'000;
        } else if (key == "seed") {
            plan.seed = std::stoull(value);
        } else {
            MORPHEUS_FATAL("unknown fault plan key '", key, "'");
        }
    }
    return plan;
}

FaultPlan
FaultPlan::fromEnv()
{
    const char *env = std::getenv("MORPHEUS_FAULTS");
    if (env == nullptr || *env == '\0')
        return FaultPlan{};
    return parse(env);
}

FaultInjector::FaultInjector(const FaultPlan &plan)
    : _plan(plan),
      _mediaRng(plan.seed ^ kMediaSalt),
      _dmaRng(plan.seed ^ kDmaSalt),
      _crashRng(plan.seed ^ kCrashSalt),
      _hangRng(plan.seed ^ kHangSalt),
      _dropRng(plan.seed ^ kDropSalt)
{
}

bool
FaultInjector::mediaError()
{
    if (_plan.mediaRate <= 0.0)
        return false;
    if (!_mediaRng.nextBool(_plan.mediaRate))
        return false;
    ++_mediaErrors;
    return true;
}

bool
FaultInjector::dmaFault(std::uint64_t bytes)
{
    if (_plan.dmaRate <= 0.0 || bytes < _plan.dmaMinBytes)
        return false;
    if (!_dmaRng.nextBool(_plan.dmaRate))
        return false;
    ++_dmaFaults;
    return true;
}

bool
FaultInjector::appCrash()
{
    if (_plan.crashRate <= 0.0)
        return false;
    if (!_crashRng.nextBool(_plan.crashRate))
        return false;
    ++_appCrashes;
    return true;
}

bool
FaultInjector::appHang()
{
    if (_plan.hangRate <= 0.0)
        return false;
    if (!_hangRng.nextBool(_plan.hangRate))
        return false;
    ++_appHangs;
    return true;
}

bool
FaultInjector::dropCqe()
{
    if (_plan.dropRate <= 0.0)
        return false;
    if (!_dropRng.nextBool(_plan.dropRate))
        return false;
    ++_droppedCqes;
    return true;
}

void
FaultInjector::registerStats(stats::StatSet &set,
                             const std::string &prefix) const
{
    set.registerCounter(prefix + ".mediaErrors", &_mediaErrors);
    set.registerCounter(prefix + ".dmaFaults", &_dmaFaults);
    set.registerCounter(prefix + ".dmaRetries", &_dmaRetries);
    set.registerCounter(prefix + ".appCrashes", &_appCrashes);
    set.registerCounter(prefix + ".appHangs", &_appHangs);
    set.registerCounter(prefix + ".droppedCqes", &_droppedCqes);
    set.registerCounter(prefix + ".watchdogKills", &_watchdogKills);
}

FaultInjector *
faultInjector()
{
    return g_injector;
}

FaultInjector *
setFaultInjector(FaultInjector *fi)
{
    FaultInjector *prev = g_injector;
    g_injector = fi;
    return prev;
}

}  // namespace morpheus::sim
