#include "sim/timeline.hh"

#include "sim/logging.hh"

namespace morpheus::sim {

Tick
Timeline::acquire(Tick earliest, Tick duration)
{
    ++_ops;
    if (duration == 0)
        return earliest;
    _busyTicks += duration;

    // Candidate start: after any interval covering `earliest`.
    Tick t = earliest;
    auto it = _busy.upper_bound(t);
    if (it != _busy.begin()) {
        const auto prev = std::prev(it);
        if (prev->second > t)
            t = prev->second;
    }
    // Slide over intervals until a gap of `duration` opens.
    while (it != _busy.end() && it->first < t + duration) {
        t = it->second;
        ++it;
    }

    // Insert [t, t + duration), merging with adjacent spans.
    Tick start = t;
    Tick end = t + duration;
    if (!_busy.empty() && it != _busy.begin()) {
        const auto prev = std::prev(it);
        if (prev->second == start) {
            start = prev->first;
            it = _busy.erase(prev);
        }
    }
    if (it != _busy.end() && it->first == end) {
        end = it->second;
        it = _busy.erase(it);
    }
    _busy.emplace(start, end);
    return t;
}

TimelineBank::TimelineBank(std::string name, unsigned count)
    : _name(std::move(name))
{
    MORPHEUS_ASSERT(count > 0, "TimelineBank needs at least one unit: ",
                    _name);
    _units.reserve(count);
    for (unsigned i = 0; i < count; ++i)
        _units.emplace_back(_name + "[" + std::to_string(i) + "]");
}

Tick
TimelineBank::acquire(Tick earliest, Tick duration, unsigned *unit)
{
    unsigned best = 0;
    Tick best_free = _units[0].freeAt();
    for (unsigned i = 1; i < _units.size(); ++i) {
        if (_units[i].freeAt() < best_free) {
            best_free = _units[i].freeAt();
            best = i;
        }
    }
    if (unit)
        *unit = best;
    return _units[best].acquire(earliest, duration);
}

Tick
TimelineBank::totalBusyTicks() const
{
    Tick total = 0;
    for (const auto &u : _units)
        total += u.busyTicks();
    return total;
}

}  // namespace morpheus::sim
