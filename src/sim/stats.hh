/**
 * @file
 * Lightweight statistics package (gem5-flavoured).
 *
 * Components own Counter / Accumulator / Histogram members and register
 * them with a StatSet; StatSet::report() produces a deterministic,
 * alphabetically ordered dump for tests and benches.
 */

#ifndef MORPHEUS_SIM_STATS_HH
#define MORPHEUS_SIM_STATS_HH

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace morpheus::sim::stats {

/** A monotonically increasing event/byte counter. */
class Counter
{
  public:
    Counter &operator+=(std::uint64_t v) { _value += v; return *this; }
    Counter &operator++() { ++_value; return *this; }
    std::uint64_t value() const { return _value; }
    void reset() { _value = 0; }

  private:
    std::uint64_t _value = 0;
};

/** Tracks sum / count / min / max of a sampled quantity. */
class Accumulator
{
  public:
    void
    sample(double v)
    {
        _sum += v;
        ++_count;
        _min = std::min(_min, v);
        _max = std::max(_max, v);
    }

    double sum() const { return _sum; }
    std::uint64_t count() const { return _count; }
    double mean() const { return _count ? _sum / _count : 0.0; }
    double min() const { return _count ? _min : 0.0; }
    double max() const { return _count ? _max : 0.0; }

    void
    reset()
    {
        _sum = 0.0;
        _count = 0;
        _min = std::numeric_limits<double>::infinity();
        _max = -std::numeric_limits<double>::infinity();
    }

  private:
    double _sum = 0.0;
    std::uint64_t _count = 0;
    double _min = std::numeric_limits<double>::infinity();
    double _max = -std::numeric_limits<double>::infinity();
};

/** Fixed-width-bucket histogram with under/overflow buckets. */
class Histogram
{
  public:
    /**
     * @param lo       Lower bound of the first bucket.
     * @param hi       Upper bound of the last bucket.
     * @param buckets  Number of equal-width buckets in [lo, hi).
     */
    Histogram(double lo, double hi, unsigned buckets);

    void sample(double v);

    std::uint64_t bucketCount(unsigned i) const { return _counts.at(i); }
    std::uint64_t underflow() const { return _underflow; }
    std::uint64_t overflow() const { return _overflow; }
    std::uint64_t samples() const { return _acc.count(); }
    double mean() const { return _acc.mean(); }
    double min() const { return _acc.min(); }
    double max() const { return _acc.max(); }
    unsigned buckets() const { return static_cast<unsigned>(_counts.size()); }

    /** Approximate quantile: rank interpolation within the landing
     *  bucket, clamped to the exact observed min/max (so the deep tail
     *  reports the true extreme, never a bucket edge). */
    double quantile(double q) const;

    void reset();

  private:
    double _lo;
    double _width;
    std::vector<std::uint64_t> _counts;
    std::uint64_t _underflow = 0;
    std::uint64_t _overflow = 0;
    Accumulator _acc;
};

/**
 * A named registry of stats for one simulated system. Components
 * register pointers; the StatSet does not own them and they must
 * outlive it.
 */
class StatSet
{
  public:
    void registerCounter(const std::string &name, const Counter *c);
    void registerAccumulator(const std::string &name, const Accumulator *a);
    void registerScalar(const std::string &name, const double *v);

    /** Look up a counter value by name (0 if absent). */
    std::uint64_t counterValue(const std::string &name) const;

    /** Deterministic (sorted by name) dump, one "name value" per line. */
    void report(std::ostream &os) const;

    /**
     * Walk every registered stat by value, in report() order: counters
     * to @p counter_fn, accumulators as "<name>.mean" (scalar) plus
     * "<name>.count" (counter), scalars to @p scalar_fn. Lets callers
     * (e.g. obs::MetricsRegistry) snapshot the values before the
     * registered components die.
     */
    void visit(
        const std::function<void(const std::string &, std::uint64_t)>
            &counter_fn,
        const std::function<void(const std::string &, double)> &scalar_fn)
        const;

  private:
    std::map<std::string, const Counter *> _counters;
    std::map<std::string, const Accumulator *> _accumulators;
    std::map<std::string, const double *> _scalars;
};

}  // namespace morpheus::sim::stats

#endif  // MORPHEUS_SIM_STATS_HH
