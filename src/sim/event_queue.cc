#include "sim/event_queue.hh"

#include <utility>

#include "sim/logging.hh"

namespace morpheus::sim {

void
EventQueue::schedule(Tick when, Action action, std::string label)
{
    MORPHEUS_ASSERT(when >= _now,
                    "scheduling into the past: when=", when,
                    " now=", _now, " label=", label);
    MORPHEUS_ASSERT(action, "scheduling an empty action: ", label);
    _heap.push(Entry{when, _nextSeq++, std::move(action),
                     std::move(label)});
}

bool
EventQueue::runOne()
{
    if (_heap.empty())
        return false;
    // priority_queue::top() returns a const ref; the entry must be
    // copied out before pop() so the action survives execution.
    Entry e = _heap.top();
    _heap.pop();
    _now = e.when;
    ++_executed;
    e.action();
    return true;
}

void
EventQueue::run()
{
    while (runOne()) {
    }
}

void
EventQueue::runUntil(Tick limit)
{
    while (!_heap.empty() && _heap.top().when <= limit)
        runOne();
    if (_now < limit)
        _now = limit;
}

void
EventQueue::advanceTo(Tick when)
{
    MORPHEUS_ASSERT(when >= _now, "advanceTo moves time backwards");
    MORPHEUS_ASSERT(_heap.empty() || _heap.top().when >= when,
                    "advanceTo would skip pending events");
    _now = when;
}

}  // namespace morpheus::sim
