#include "sim/logging.hh"

#include <cstdio>
#include <cstring>
#include <mutex>

namespace morpheus::sim {

namespace {

/**
 * Initial level comes from MORPHEUS_LOG_LEVEL ("quiet"/"0",
 * "normal"/"1", "verbose"/"2"); unset or unrecognized means kNormal.
 * Lets CI silence benches without plumbing a flag through every tool.
 */
LogLevel
levelFromEnv()
{
    const char *env = std::getenv("MORPHEUS_LOG_LEVEL");
    if (env == nullptr)
        return LogLevel::kNormal;
    if (std::strcmp(env, "quiet") == 0 || std::strcmp(env, "0") == 0)
        return LogLevel::kQuiet;
    if (std::strcmp(env, "verbose") == 0 || std::strcmp(env, "2") == 0)
        return LogLevel::kVerbose;
    return LogLevel::kNormal;
}

LogLevel g_level = levelFromEnv();

std::mutex g_mutex;

/**
 * The one formatting path: build the whole line first, then emit it
 * with a single locked fwrite so messages from concurrent contexts
 * (e.g. parallel bench drivers) never interleave mid-line.
 */
void
emit(const char *tag, const std::string &msg, const char *file, int line)
{
    std::string out;
    out.reserve(msg.size() + 64);
    out += tag;
    out += ": ";
    out += msg;
    if (file != nullptr) {
        out += " (";
        out += file;
        out += ":";
        out += std::to_string(line);
        out += ")";
    }
    out += "\n";
    const std::lock_guard<std::mutex> lock(g_mutex);
    std::fwrite(out.data(), 1, out.size(), stderr);
    std::fflush(stderr);
}

}  // namespace

LogLevel
logLevel()
{
    return g_level;
}

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    emit("panic", msg, file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    emit("fatal", msg, file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    emit("warn", msg, nullptr, 0);
}

void
informImpl(const std::string &msg)
{
    if (g_level != LogLevel::kQuiet)
        emit("info", msg, nullptr, 0);
}

}  // namespace detail

}  // namespace morpheus::sim
