#include "sim/logging.hh"

#include <cstdio>

namespace morpheus::sim {

namespace {
LogLevel g_level = LogLevel::kNormal;
}  // namespace

LogLevel
logLevel()
{
    return g_level;
}

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (g_level != LogLevel::kQuiet)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

}  // namespace detail

}  // namespace morpheus::sim
