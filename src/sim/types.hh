/**
 * @file
 * Fundamental simulation types and time-unit helpers.
 *
 * The simulator counts time in integer picoseconds. A 64-bit tick
 * counter overflows after ~213 days of simulated time, far beyond any
 * experiment in this repository.
 */

#ifndef MORPHEUS_SIM_TYPES_HH
#define MORPHEUS_SIM_TYPES_HH

#include <cstdint>

namespace morpheus::sim {

/** Simulated time in picoseconds. */
using Tick = std::uint64_t;

/** Ticks per common time unit. */
constexpr Tick kPsPerNs = 1000ULL;
constexpr Tick kPsPerUs = 1000ULL * kPsPerNs;
constexpr Tick kPsPerMs = 1000ULL * kPsPerUs;
constexpr Tick kPsPerSec = 1000ULL * kPsPerMs;

/** Largest representable tick; used as an "idle forever" sentinel. */
constexpr Tick kTickMax = ~Tick(0);

/** Convert a floating-point quantity of seconds to ticks (rounds down). */
constexpr Tick
secondsToTicks(double seconds)
{
    return static_cast<Tick>(seconds * static_cast<double>(kPsPerSec));
}

/** Convert ticks to floating-point seconds. */
constexpr double
ticksToSeconds(Tick ticks)
{
    return static_cast<double>(ticks) / static_cast<double>(kPsPerSec);
}

/** Convert ticks to floating-point milliseconds. */
constexpr double
ticksToMs(Tick ticks)
{
    return static_cast<double>(ticks) / static_cast<double>(kPsPerMs);
}

/** Convert ticks to floating-point microseconds. */
constexpr double
ticksToUs(Tick ticks)
{
    return static_cast<double>(ticks) / static_cast<double>(kPsPerUs);
}

/**
 * Time to move @p bytes at @p bytes_per_sec, in ticks (rounds up so a
 * nonzero transfer never takes zero time).
 *
 * @param bytes          Payload size in bytes.
 * @param bytes_per_sec  Sustained bandwidth of the resource.
 * @return Transfer duration in ticks; 0 for an empty transfer.
 */
constexpr Tick
transferTicks(std::uint64_t bytes, double bytes_per_sec)
{
    if (bytes == 0 || bytes_per_sec <= 0.0)
        return 0;
    const double seconds =
        static_cast<double>(bytes) / bytes_per_sec;
    const Tick t = secondsToTicks(seconds);
    return t == 0 ? 1 : t;
}

/**
 * Time to execute @p cycles on a clock of @p hz, in ticks (rounds up so
 * nonzero work never takes zero time).
 */
constexpr Tick
cyclesToTicks(double cycles, double hz)
{
    if (cycles <= 0.0 || hz <= 0.0)
        return 0;
    const Tick t = secondsToTicks(cycles / hz);
    return t == 0 ? 1 : t;
}

/** Kibi/mebi/gibi byte helpers. */
constexpr std::uint64_t kKiB = 1024ULL;
constexpr std::uint64_t kMiB = 1024ULL * kKiB;
constexpr std::uint64_t kGiB = 1024ULL * kMiB;

/** Decimal bandwidth helpers (storage vendors use powers of ten). */
constexpr double kKBps = 1e3;
constexpr double kMBps = 1e6;
constexpr double kGBps = 1e9;

}  // namespace morpheus::sim

#endif  // MORPHEUS_SIM_TYPES_HH
