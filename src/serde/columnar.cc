#include "serde/columnar.hh"

#include <algorithm>
#include <cstring>
#include <utility>

namespace morpheus::serde {

namespace {

constexpr std::uint32_t kFlashMagic = 0x31464D43;  // 'CMF1'
constexpr std::uint32_t kScanMagic = 0x32464D43;   // 'CMF2'
constexpr std::uint32_t kDescMagic = 0x5043;       // 'PC' (pushdown)
constexpr std::uint32_t kDescVersion = 1;
constexpr std::size_t kFooterBytes = 28;

template <typename T>
void
putLe(std::vector<std::uint8_t> &out, T v)
{
    // resize+memcpy rather than a range-insert: GCC 12's
    // -Wstringop-overflow misfires on vector::insert of tiny
    // stack-array ranges.
    const std::size_t pos = out.size();
    out.resize(pos + sizeof(T));
    std::memcpy(out.data() + pos, &v, sizeof(T));
}

template <typename T>
bool
getLe(const std::uint8_t *data, std::size_t size, std::size_t *pos, T *out)
{
    if (size - *pos < sizeof(T))
        return false;
    std::memcpy(out, data + *pos, sizeof(T));
    *pos += sizeof(T);
    return true;
}

struct FlashHeader
{
    std::vector<ColumnDesc> schema;
    std::uint64_t rows = 0;
    std::uint32_t rowGroupRows = 0;
    std::uint32_t dictCount = 0;
    std::size_t headerBytes = 0;
};

/** @return 1 parsed, 0 need more bytes, -1 malformed. */
int
parseFlashHeader(const std::uint8_t *data, std::size_t size, FlashHeader *h)
{
    std::size_t pos = 0;
    std::uint32_t magic = 0, ncols = 0;
    if (!getLe(data, size, &pos, &magic))
        return 0;
    if (magic != kFlashMagic)
        return -1;
    if (!getLe(data, size, &pos, &ncols) ||
        !getLe(data, size, &pos, &h->rows) ||
        !getLe(data, size, &pos, &h->rowGroupRows) ||
        !getLe(data, size, &pos, &h->dictCount))
        return 0;
    if (ncols == 0 || ncols > 32 || h->rowGroupRows == 0)
        return -1;
    h->schema.clear();
    for (std::uint32_t c = 0; c < ncols; ++c) {
        std::uint8_t type = 0, len = 0;
        if (!getLe(data, size, &pos, &type) ||
            !getLe(data, size, &pos, &len))
            return 0;
        if (type > 2)
            return -1;
        if (size - pos < len)
            return 0;
        ColumnDesc d;
        d.type = static_cast<ColumnType>(type);
        d.name.assign(reinterpret_cast<const char *>(data + pos), len);
        pos += len;
        h->schema.push_back(std::move(d));
    }
    h->headerBytes = pos;
    return 1;
}

std::uint64_t
groupRowBytes(const std::vector<ColumnDesc> &schema)
{
    std::uint64_t w = 0;
    for (const auto &c : schema)
        w += columnCellBytes(c.type);
    return w;
}

bool
predHolds(PredOp op, ColumnType type, std::uint64_t cell,
          std::uint64_t literal)
{
    if (type == ColumnType::kFloat64) {
        double a = 0, b = 0;
        std::memcpy(&a, &cell, 8);
        std::memcpy(&b, &literal, 8);
        switch (op) {
          case PredOp::kEq: return a == b;
          case PredOp::kNe: return a != b;
          case PredOp::kLt: return a < b;
          case PredOp::kLe: return a <= b;
          case PredOp::kGt: return a > b;
          case PredOp::kGe: return a >= b;
        }
        return false;
    }
    if (type == ColumnType::kDictString) {
        // Dictionary codes only support identity comparison.
        switch (op) {
          case PredOp::kEq: return cell == literal;
          case PredOp::kNe: return cell != literal;
          default: return false;
        }
    }
    const auto a = static_cast<std::int64_t>(cell);
    const auto b = static_cast<std::int64_t>(literal);
    switch (op) {
      case PredOp::kEq: return a == b;
      case PredOp::kNe: return a != b;
      case PredOp::kLt: return a < b;
      case PredOp::kLe: return a <= b;
      case PredOp::kGt: return a > b;
      case PredOp::kGe: return a >= b;
    }
    return false;
}

std::uint64_t
rngNext(std::uint64_t *s)
{
    std::uint64_t x = *s;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *s = x;
    return x;
}

}  // namespace

std::vector<std::uint32_t>
ScanSpec::encode() const
{
    std::vector<std::uint32_t> dw;
    dw.push_back((kDescMagic << 16) | (kDescVersion << 12) |
                 ((flags & 0xFu) << 8) |
                 (static_cast<std::uint32_t>(preds.size()) & 0xFFu));
    dw.push_back(projectionMask);
    for (const auto &p : preds) {
        dw.push_back((p.column & 0xFFFFu) |
                     (static_cast<std::uint32_t>(p.op) << 16));
        dw.push_back(static_cast<std::uint32_t>(p.literalBits));
        dw.push_back(static_cast<std::uint32_t>(p.literalBits >> 32));
    }
    return dw;
}

bool
ScanSpec::decode(const std::vector<std::uint32_t> &dwords, ScanSpec *out)
{
    if (dwords.size() < 2)
        return false;
    const std::uint32_t head = dwords[0];
    if ((head >> 16) != kDescMagic || ((head >> 12) & 0xFu) != kDescVersion)
        return false;
    const std::uint32_t npreds = head & 0xFFu;
    if (dwords.size() != 2 + std::size_t(npreds) * 3)
        return false;
    out->flags = (head >> 8) & 0xFu;
    out->projectionMask = dwords[1];
    out->preds.clear();
    for (std::uint32_t i = 0; i < npreds; ++i) {
        const std::uint32_t term = dwords[2 + i * 3];
        if (((term >> 16) & 0xFFu) > 5)
            return false;
        Predicate p;
        p.column = term & 0xFFFFu;
        p.op = static_cast<PredOp>((term >> 16) & 0xFFu);
        p.literalBits = std::uint64_t(dwords[2 + i * 3 + 1]) |
                        (std::uint64_t(dwords[2 + i * 3 + 2]) << 32);
        out->preds.push_back(p);
    }
    return true;
}

std::uint32_t
pushdownDigest(const std::vector<std::uint32_t> &dwords)
{
    std::uint32_t h = 2166136261u;
    for (const std::uint32_t dw : dwords) {
        for (int i = 0; i < 4; ++i) {
            h ^= (dw >> (i * 8)) & 0xFFu;
            h *= 16777619u;
        }
    }
    return h == 0 ? 1u : h;
}

std::uint32_t
ScanSpec::digest() const
{
    return pushdownDigest(encode());
}

std::uint64_t
ColumnarTableObject::objectBytes() const
{
    std::uint64_t n = 0;
    for (const auto &c : cells)
        n += c.size() * 8;
    for (const auto &d : schema)
        n += d.name.size() + 2;
    for (const auto &s : dict)
        n += s.size() + 2;
    return n;
}

std::vector<std::uint8_t>
ColumnarTableObject::toFlash() const
{
    std::vector<std::uint8_t> out;
    putLe<std::uint32_t>(out, kFlashMagic);
    putLe<std::uint32_t>(out, static_cast<std::uint32_t>(schema.size()));
    putLe<std::uint64_t>(out, rows());
    putLe<std::uint32_t>(out, rowGroupRows);
    putLe<std::uint32_t>(out, static_cast<std::uint32_t>(dict.size()));
    for (const auto &d : schema) {
        putLe<std::uint8_t>(out, static_cast<std::uint8_t>(d.type));
        putLe<std::uint8_t>(out, static_cast<std::uint8_t>(d.name.size()));
        out.insert(out.end(), d.name.begin(), d.name.end());
    }
    const std::uint64_t header_bytes = out.size();
    const std::uint64_t nrows = rows();
    for (std::uint64_t r0 = 0; r0 < nrows; r0 += rowGroupRows) {
        const std::uint64_t rn = std::min<std::uint64_t>(
            nrows - r0, rowGroupRows);
        for (std::size_t c = 0; c < schema.size(); ++c) {
            for (std::uint64_t r = r0; r < r0 + rn; ++r) {
                if (schema[c].type == ColumnType::kDictString)
                    putLe<std::uint32_t>(
                        out, static_cast<std::uint32_t>(cells[c][r]));
                else
                    putLe<std::uint64_t>(out, cells[c][r]);
            }
        }
    }
    const std::uint64_t dict_off = out.size();
    for (const auto &s : dict) {
        putLe<std::uint16_t>(out, static_cast<std::uint16_t>(s.size()));
        out.insert(out.end(), s.begin(), s.end());
    }
    putLe<std::uint64_t>(out, header_bytes);
    putLe<std::uint64_t>(out, dict_off);
    putLe<std::uint64_t>(out, nrows);
    putLe<std::uint32_t>(out, kFlashMagic);
    return out;
}

bool
ColumnarTableObject::fromFlash(const std::vector<std::uint8_t> &bytes,
                               ColumnarTableObject *out)
{
    FlashHeader h;
    if (parseFlashHeader(bytes.data(), bytes.size(), &h) != 1)
        return false;
    if (bytes.size() < kFooterBytes)
        return false;
    std::size_t fpos = bytes.size() - kFooterBytes;
    std::uint64_t f_header = 0, f_dict = 0, f_rows = 0;
    std::uint32_t f_magic = 0;
    getLe(bytes.data(), bytes.size(), &fpos, &f_header);
    getLe(bytes.data(), bytes.size(), &fpos, &f_dict);
    getLe(bytes.data(), bytes.size(), &fpos, &f_rows);
    getLe(bytes.data(), bytes.size(), &fpos, &f_magic);
    if (f_magic != kFlashMagic || f_header != h.headerBytes ||
        f_rows != h.rows)
        return false;
    out->schema = h.schema;
    out->rowGroupRows = h.rowGroupRows;
    out->cells.assign(h.schema.size(), {});
    for (auto &c : out->cells)
        c.reserve(h.rows);
    std::size_t pos = h.headerBytes;
    for (std::uint64_t r0 = 0; r0 < h.rows; r0 += h.rowGroupRows) {
        const std::uint64_t rn =
            std::min<std::uint64_t>(h.rows - r0, h.rowGroupRows);
        for (std::size_t c = 0; c < h.schema.size(); ++c) {
            for (std::uint64_t r = 0; r < rn; ++r) {
                std::uint64_t v = 0;
                if (h.schema[c].type == ColumnType::kDictString) {
                    std::uint32_t code = 0;
                    if (!getLe(bytes.data(), bytes.size(), &pos, &code))
                        return false;
                    v = code;
                } else if (!getLe(bytes.data(), bytes.size(), &pos, &v)) {
                    return false;
                }
                out->cells[c].push_back(v);
            }
        }
    }
    if (pos != f_dict)
        return false;
    out->dict.clear();
    for (std::uint32_t i = 0; i < h.dictCount; ++i) {
        std::uint16_t len = 0;
        if (!getLe(bytes.data(), bytes.size(), &pos, &len) ||
            bytes.size() - pos < len)
            return false;
        out->dict.emplace_back(
            reinterpret_cast<const char *>(bytes.data() + pos), len);
        pos += len;
    }
    return pos == bytes.size() - kFooterBytes;
}

void
ColumnarScanner::emitBytes(const void *p, std::size_t n)
{
    const auto *b = static_cast<const std::uint8_t *>(p);
    _emitted.insert(_emitted.end(), b, b + n);
}

void
ColumnarScanner::parseHeader()
{
    FlashHeader h;
    const int rc = parseFlashHeader(_buf.data() + _bufPos,
                                    _buf.size() - _bufPos, &h);
    if (rc == 0)
        return;
    if (rc < 0) {
        _error = true;
        return;
    }
    _bufPos += h.headerBytes;
    _haveHeader = true;
    _schema = std::move(h.schema);
    _rowsTotal = h.rows;
    _rowGroupRows = h.rowGroupRows;
    _dictCount = h.dictCount;
    _groupBytes = groupRowBytes(_schema) * _rowGroupRows;
    _cost.bytes += h.headerBytes;
    // Validate the program against the schema up front.
    for (const auto &p : _spec.preds) {
        if (p.column >= _schema.size()) {
            _error = true;
            return;
        }
        if (_schema[p.column].type == ColumnType::kDictString &&
            p.op != PredOp::kEq && p.op != PredOp::kNe) {
            _error = true;
            return;
        }
    }
    if (!(_spec.flags & kScanNoHeader)) {
        std::vector<std::uint8_t> hdr;
        std::uint32_t nproj = 0;
        for (std::size_t c = 0; c < _schema.size(); ++c)
            if (_spec.projectionMask & (1u << c))
                ++nproj;
        putLe<std::uint32_t>(hdr, kScanMagic);
        putLe<std::uint32_t>(hdr, nproj);
        for (std::size_t c = 0; c < _schema.size(); ++c) {
            if (!(_spec.projectionMask & (1u << c)))
                continue;
            putLe<std::uint8_t>(
                hdr, static_cast<std::uint8_t>(_schema[c].type));
            putLe<std::uint8_t>(
                hdr, static_cast<std::uint8_t>(_schema[c].name.size()));
            hdr.insert(hdr.end(), _schema[c].name.begin(),
                       _schema[c].name.end());
        }
        emitBytes(hdr.data(), hdr.size());
    }
}

void
ColumnarScanner::evalGroup(const std::uint8_t *group,
                           std::uint64_t group_rows)
{
    // Column-at-a-time: each predicate sweeps its own column chunk,
    // narrowing one selection vector; only then are surviving rows
    // gathered from the projected chunks.
    std::vector<std::size_t> col_off(_schema.size(), 0);
    std::size_t off = 0;
    for (std::size_t c = 0; c < _schema.size(); ++c) {
        col_off[c] = off;
        off += columnCellBytes(_schema[c].type) * group_rows;
    }
    std::vector<std::uint8_t> sel(group_rows, 1);
    for (const auto &p : _spec.preds) {
        const ColumnType t = _schema[p.column].type;
        const std::uint32_t w = columnCellBytes(t);
        const std::uint8_t *chunk = group + col_off[p.column];
        _cost.bytes += w * group_rows;
        for (std::uint64_t r = 0; r < group_rows; ++r) {
            if (!sel[r])
                continue;
            std::uint64_t cell = 0;
            if (w == 4) {
                std::uint32_t code = 0;
                std::memcpy(&code, chunk + r * 4, 4);
                if (code >= _dictCount) {
                    _error = true;  // dictionary miss
                    return;
                }
                cell = code;
            } else {
                std::memcpy(&cell, chunk + r * 8, 8);
            }
            if (t == ColumnType::kFloat64)
                _cost.floatOps += 1;
            else
                _cost.intValues += 1;
            if (!predHolds(p.op, t, cell, p.literalBits))
                sel[r] = 0;
        }
    }
    std::vector<std::uint8_t> row_out;
    for (std::uint64_t r = 0; r < group_rows; ++r) {
        if (!sel[r])
            continue;
        ++_surviving;
        for (std::size_t c = 0; c < _schema.size(); ++c) {
            if (!(_spec.projectionMask & (1u << c)))
                continue;
            const std::uint32_t w = columnCellBytes(_schema[c].type);
            const std::uint8_t *cell = group + col_off[c] + r * w;
            if (w == 4) {
                std::uint32_t code = 0;
                std::memcpy(&code, cell, 4);
                if (code >= _dictCount) {
                    _error = true;  // dictionary miss
                    return;
                }
                _cost.intValues += 1;
            } else if (_schema[c].type == ColumnType::kFloat64) {
                _cost.floatOps += 1;
            } else {
                _cost.intValues += 1;
            }
            row_out.insert(row_out.end(), cell, cell + w);
        }
    }
    _cost.bytes += row_out.size();
    emitBytes(row_out.data(), row_out.size());
}

void
ColumnarScanner::feed(const std::uint8_t *data, std::size_t n)
{
    if (_error || _finished)
        return;
    _buf.insert(_buf.end(), data, data + n);
    if (!_haveHeader) {
        parseHeader();
        if (!_haveHeader || _error)
            return;
    }
    while (_rowsSeen < _rowsTotal) {
        const std::uint64_t rn =
            std::min<std::uint64_t>(_rowsTotal - _rowsSeen, _rowGroupRows);
        const std::uint64_t need = groupRowBytes(_schema) * rn;
        if (_buf.size() - _bufPos < need)
            break;
        evalGroup(_buf.data() + _bufPos, rn);
        _bufPos += need;
        _rowsSeen += rn;
        if (_error)
            return;
        // Keep the carry buffer near one row group, not the file.
        if (_bufPos >= _groupBytes) {
            _buf.erase(_buf.begin(),
                       _buf.begin() + static_cast<std::ptrdiff_t>(_bufPos));
            _bufPos = 0;
        }
    }
    if (_rowsSeen == _rowsTotal && _haveHeader) {
        // Everything after the last row group (dict blob + footer)
        // accumulates for the trailer.
        _dictBlob.insert(_dictBlob.end(),
                         _buf.begin() +
                             static_cast<std::ptrdiff_t>(_bufPos),
                         _buf.end());
        _buf.clear();
        _bufPos = 0;
    }
}

void
ColumnarScanner::finish(std::uint64_t base_surviving)
{
    if (_error || _finished)
        return;
    _finished = true;
    if (!_haveHeader) {
        // A split prefix can be cut before the header completes; with
        // the trailer suppressed that is a legal empty scan.
        if (!(_spec.flags & kScanNoTrailer))
            _error = true;
        return;
    }
    if (_spec.flags & kScanNoTrailer)
        return;
    bool dict_projected = false;
    for (std::size_t c = 0; c < _schema.size(); ++c)
        if ((_spec.projectionMask & (1u << c)) &&
            _schema[c].type == ColumnType::kDictString)
            dict_projected = true;
    std::vector<std::uint8_t> trailer;
    if (dict_projected && _dictCount > 0) {
        // Parse the dict blob (it ends kFooterBytes before the stream
        // end, but parse by entry count so truncation is detected).
        std::size_t pos = 0;
        std::vector<std::pair<std::size_t, std::uint16_t>> entries;
        for (std::uint32_t i = 0; i < _dictCount; ++i) {
            std::uint16_t len = 0;
            if (!getLe(_dictBlob.data(), _dictBlob.size(), &pos, &len) ||
                _dictBlob.size() - pos < len) {
                _error = true;
                return;
            }
            entries.emplace_back(pos, len);
            pos += len;
        }
        putLe<std::uint32_t>(trailer, _dictCount);
        for (const auto &[epos, len] : entries) {
            putLe<std::uint16_t>(trailer, len);
            trailer.insert(trailer.end(), _dictBlob.begin() +
                               static_cast<std::ptrdiff_t>(epos),
                           _dictBlob.begin() +
                               static_cast<std::ptrdiff_t>(epos + len));
        }
        _cost.bytes += pos;
    } else {
        putLe<std::uint32_t>(trailer, 0);
    }
    putLe<std::uint64_t>(trailer, base_surviving + _surviving);
    emitBytes(trailer.data(), trailer.size());
}

ScanResult
scanTable(const std::uint8_t *data, std::size_t size, const ScanSpec &spec,
          std::uint64_t first_group, std::uint64_t base_surviving)
{
    ScanResult res;
    ColumnarScanner scanner(spec);
    if (first_group == 0) {
        scanner.feed(data, size);
    } else {
        FlashHeader h;
        if (parseFlashHeader(data, size, &h) != 1)
            return res;
        const std::uint64_t skip_rows =
            std::min<std::uint64_t>(first_group * h.rowGroupRows, h.rows);
        const std::uint64_t skip_bytes =
            groupRowBytes(h.schema) * skip_rows;
        if (h.headerBytes + skip_bytes > size)
            return res;
        // Feed the header, then resume at the requested row group.
        scanner.feed(data, h.headerBytes);
        scanner.skipRows(skip_rows);
        scanner.feed(data + h.headerBytes + skip_bytes,
                     size - h.headerBytes - skip_bytes);
    }
    scanner.finish(base_surviving);
    res.ok = !scanner.error();
    res.survivingRows = scanner.survivingRows();
    res.out = scanner.takeEmitted();
    res.cost = scanner.takeCost();
    return res;
}

bool
columnarFromScanBytes(const std::vector<std::uint8_t> &bytes,
                      ColumnarTableObject *out)
{
    std::size_t pos = 0;
    std::uint32_t magic = 0, nproj = 0;
    if (!getLe(bytes.data(), bytes.size(), &pos, &magic) ||
        magic != kScanMagic ||
        !getLe(bytes.data(), bytes.size(), &pos, &nproj) || nproj > 32)
        return false;
    out->schema.clear();
    for (std::uint32_t c = 0; c < nproj; ++c) {
        std::uint8_t type = 0, len = 0;
        if (!getLe(bytes.data(), bytes.size(), &pos, &type) ||
            !getLe(bytes.data(), bytes.size(), &pos, &len) || type > 2 ||
            bytes.size() - pos < len)
            return false;
        ColumnDesc d;
        d.type = static_cast<ColumnType>(type);
        d.name.assign(reinterpret_cast<const char *>(bytes.data() + pos),
                      len);
        pos += len;
        out->schema.push_back(std::move(d));
    }
    if (bytes.size() < pos + 12)
        return false;
    std::size_t tail = bytes.size() - 8;
    std::uint64_t surviving = 0;
    getLe(bytes.data(), bytes.size(), &tail, &surviving);
    const std::uint64_t row_w = groupRowBytes(out->schema);
    if (pos + surviving * row_w + 4 + 8 > bytes.size())
        return false;
    out->cells.assign(nproj, {});
    for (std::uint64_t r = 0; r < surviving; ++r) {
        for (std::uint32_t c = 0; c < nproj; ++c) {
            std::uint64_t v = 0;
            if (out->schema[c].type == ColumnType::kDictString) {
                std::uint32_t code = 0;
                getLe(bytes.data(), bytes.size(), &pos, &code);
                v = code;
            } else {
                getLe(bytes.data(), bytes.size(), &pos, &v);
            }
            out->cells[c].push_back(v);
        }
    }
    std::uint32_t dict_count = 0;
    if (!getLe(bytes.data(), bytes.size(), &pos, &dict_count))
        return false;
    out->dict.clear();
    for (std::uint32_t i = 0; i < dict_count; ++i) {
        std::uint16_t len = 0;
        if (!getLe(bytes.data(), bytes.size(), &pos, &len) ||
            bytes.size() - pos < len)
            return false;
        out->dict.emplace_back(
            reinterpret_cast<const char *>(bytes.data() + pos), len);
        pos += len;
    }
    out->rowGroupRows = 256;
    return pos == bytes.size() - 8;
}

ColumnarTableObject
genColumnarTable(std::uint64_t seed, std::uint64_t rows,
                 std::uint32_t cols, std::uint32_t row_group_rows)
{
    ColumnarTableObject t;
    t.rowGroupRows = row_group_rows;
    t.dict = {"ok", "slow", "error", "retry"};
    std::uint64_t s = seed * 0x9E3779B97F4A7C15ull + 0xD1B54A32D192ED03ull;
    if (s == 0)
        s = 1;
    for (std::uint32_t c = 0; c < cols; ++c) {
        ColumnDesc d;
        if (c == 0) {
            d.name = "key";
            d.type = ColumnType::kInt64;
        } else if (c + 1 == cols && cols >= 2) {
            d.name = "status";
            d.type = ColumnType::kDictString;
        } else if (c % 2 == 1) {
            d.name = "metric_" + std::to_string(c);
            d.type = ColumnType::kFloat64;
        } else {
            d.name = "count_" + std::to_string(c);
            d.type = ColumnType::kInt64;
        }
        t.schema.push_back(d);
    }
    t.cells.assign(cols, {});
    for (std::uint64_t r = 0; r < rows; ++r) {
        for (std::uint32_t c = 0; c < cols; ++c) {
            const std::uint64_t x = rngNext(&s);
            std::uint64_t v = 0;
            switch (t.schema[c].type) {
              case ColumnType::kInt64:
                v = x % 1000000;
                break;
              case ColumnType::kFloat64: {
                const double dv =
                    static_cast<double>(x % 1000000) / 1000.0;
                std::memcpy(&v, &dv, 8);
                break;
              }
              case ColumnType::kDictString:
                v = x % t.dict.size();
                break;
            }
            t.cells[c].push_back(v);
        }
    }
    return t;
}

ScanSpec
makeSelectivitySpec(double selectivity, std::uint32_t project_cols,
                    std::uint32_t total_cols)
{
    ScanSpec spec;
    if (project_cols > 0 && project_cols < total_cols && total_cols < 32)
        spec.projectionMask = (1u << project_cols) - 1;
    if (selectivity < 1.0) {
        Predicate p;
        p.column = 0;
        p.op = PredOp::kLt;
        p.literalBits = static_cast<std::uint64_t>(
            static_cast<std::int64_t>(selectivity * 1000000.0));
        spec.preds.push_back(p);
    }
    return spec;
}

}  // namespace morpheus::serde
