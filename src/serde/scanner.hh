/**
 * @file
 * Token scanners over contiguous and chunked byte sources.
 *
 * TextScanner walks one contiguous buffer. StreamingScanner pulls data
 * through a refill callback and carries partial tokens across chunk
 * boundaries — exactly what a StorageApp sees when the Morpheus runtime
 * feeds it MDTS-sized MREAD chunks.
 */

#ifndef MORPHEUS_SERDE_SCANNER_HH
#define MORPHEUS_SERDE_SCANNER_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "serde/parse.hh"

namespace morpheus::serde {

/** Sequential token scanner over a contiguous byte range. */
class TextScanner
{
  public:
    TextScanner(const std::uint8_t *data, std::size_t size)
        : _p(data), _end(data + size)
    {}

    /** Parse the next integer token. @return false at end of input. */
    bool nextInt64(std::int64_t *out);

    /** Parse the next floating-point token. */
    bool nextDouble(double *out);

    /**
     * Parse the next token as whichever type it looks like; ints are
     * stored exactly, floats converted. @p is_float reports which.
     */
    bool nextNumber(double *out, bool *is_float);

    /** True when only separators remain. */
    bool atEnd();

    /** Operation accounting so far. */
    const ParseCost &cost() const { return _cost; }

  private:
    const std::uint8_t *_p;
    const std::uint8_t *_end;
    ParseCost _cost;
};

/**
 * Token scanner over a chunked source.
 *
 * The refill callback copies up to @c capacity bytes into @c dst and
 * returns the count (0 at end of stream). Tokens split across refills
 * are handled by carrying the unconsumed tail into the next buffer, so
 * parse results are identical to a contiguous scan of the whole stream.
 */
class StreamingScanner
{
  public:
    using Refill =
        std::function<std::size_t(std::uint8_t *dst, std::size_t capacity)>;

    /**
     * @param refill      Source callback.
     * @param chunk_bytes Working buffer size; tokens longer than this
     *                    are a caller error (numbers never are).
     * @param incremental When true, a refill returning 0 means "no more
     *                    data *yet*": next*() returns false but the
     *                    scanner resumes (carrying any partial token)
     *                    once more data is available; the stream only
     *                    truly ends after setEndOfStream(). This is the
     *                    mode a StorageApp uses across MREAD chunks.
     */
    StreamingScanner(Refill refill, std::size_t chunk_bytes,
                     bool incremental = false);

    /** Incremental mode: declare that no further data will arrive. */
    void setEndOfStream() { _finalized = true; }

    bool nextInt64(std::int64_t *out);
    bool nextDouble(double *out);
    bool nextNumber(double *out, bool *is_float);
    bool atEnd();

    const ParseCost &cost() const { return _cost; }

    /** Number of refill calls made (one per chunk pulled). */
    std::uint64_t refills() const { return _refills; }

  private:
    /**
     * Ensure the buffer holds a complete leading token (or the final
     * bytes of the stream). @return false when the stream is exhausted
     * and the buffer is empty.
     */
    bool ensureToken();

    /** Pull one chunk, appending after the carried tail. */
    bool pull();

    Refill _refill;
    std::vector<std::uint8_t> _buf;
    std::size_t _chunkBytes;
    std::size_t _pos = 0;     // consumed prefix of _buf
    bool _incremental = false;
    bool _finalized = true;   // non-incremental streams end at refill==0
    bool _exhausted = false;  // no data remains, ever
    std::uint64_t _refills = 0;
    ParseCost _cost;
};

}  // namespace morpheus::serde

#endif  // MORPHEUS_SERDE_SCANNER_HH
