/**
 * @file
 * CSV tables with a header row — another of §II's interchange formats
 * ("XML, CSV, JSON, TXT, YAML").
 *
 * The supported dialect is the one numeric datasets actually use: a
 * first line of comma-separated column names (optionally
 * double-quoted), then rows of numeric fields. CsvRowParser is
 * incremental (chunk-feedable) like JsonRowParser, so the same code
 * drives the host parse and the on-device CsvTableApp.
 */

#ifndef MORPHEUS_SERDE_CSV_HH
#define MORPHEUS_SERDE_CSV_HH

#include <cstdint>
#include <string>
#include <vector>

#include "serde/parse.hh"
#include "serde/writer.hh"

namespace morpheus::serde {

/** A numeric table with named columns. */
struct CsvTableObject
{
    std::vector<std::string> columns;
    std::vector<double> values;  ///< Row major, rows*cols cells.

    std::size_t
    numRows() const
    {
        return columns.empty() ? 0 : values.size() / columns.size();
    }

    double
    cell(std::size_t row, std::size_t col) const
    {
        return values[row * columns.size() + col];
    }

    /**
     * Binary layout (streamable): u32 ncols, then per column u8 name
     * length + name bytes, then the cells as f64 row major. The row
     * count is implied by the payload length.
     */
    std::uint64_t objectBytes() const;
    std::vector<std::uint8_t> toBinary() const;
    static CsvTableObject fromBinary(
        const std::vector<std::uint8_t> &bytes);

    /** Serialize to CSV text (quoted header names). */
    void serialize(TextWriter &w, int precision = 6) const;

    bool operator==(const CsvTableObject &) const = default;
};

/** Incremental CSV parser: feed chunks, poll events. */
class CsvRowParser
{
  public:
    enum class Event {
        kColumnName,    ///< name() holds the header field.
        kHeaderDone,    ///< Header row complete.
        kNumber,        ///< value() holds a cell.
        kEndRow,        ///< A data row completed.
        kEndDocument,
        kNeedMoreData,
        kError,
    };

    void feed(const std::uint8_t *data, std::size_t n);
    void finish() { _finished = true; }
    Event next();

    const std::string &name() const { return _name; }
    double value() const { return _value; }
    const std::string &message() const { return _error; }
    const ParseCost &cost() const { return _cost; }

  private:
    enum class State {
        kHeaderField,   // accumulating a header name
        kRowField,      // accumulating a numeric cell
        kDone,
        kFailed,
    };

    Event fail(const std::string &why);

    /** Finish the carried header field; emits kColumnName. */
    Event emitName(bool end_of_header);

    /** Finish the carried cell token; emits kNumber (or kEndRow). */
    Event emitCell();

    std::vector<std::uint8_t> _buf;
    std::size_t _pos = 0;
    bool _finished = false;
    State _state = State::kHeaderField;
    bool _inQuotes = false;
    bool _fieldStarted = false;
    bool _rowHasCells = false;
    bool _pendingEndRow = false;
    bool _pendingHeaderDone = false;
    std::string _token;
    std::string _name;
    double _value = 0.0;
    std::string _error;
    ParseCost _cost;
};

/** Whole-buffer parse (host path). */
bool parseCsvTable(const std::uint8_t *data, std::size_t size,
                   CsvTableObject *out, ParseCost *cost);

}  // namespace morpheus::serde

#endif  // MORPHEUS_SERDE_CSV_HH
