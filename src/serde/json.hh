/**
 * @file
 * JSON record arrays — the interchange-format generality of §II.
 *
 * The paper motivates Morpheus with "text-based data interchange
 * formats (e.g. XML, CSV, JSON, TXT, YAML)". Beyond the
 * whitespace-separated formats in formats.hh, this module handles a
 * JSON subset that covers numeric datasets: an array of records, each
 * record an array of numbers, e.g.
 *
 *     [[1, 2.5, 3], [4, 5], [6]]
 *
 * JsonRecordsObject is the deserialized form (flattened values plus a
 * CSR-style record index). JsonRowParser is an *incremental* parser —
 * bytes can be fed in arbitrary chunks (MREAD-sized on the device,
 * whole-buffer on the host) and it emits the identical event stream,
 * the same property StreamingScanner provides for token formats.
 */

#ifndef MORPHEUS_SERDE_JSON_HH
#define MORPHEUS_SERDE_JSON_HH

#include <cstdint>
#include <string>
#include <vector>

#include "serde/parse.hh"
#include "serde/writer.hh"

namespace morpheus::serde {

/** An array-of-records numeric dataset. */
struct JsonRecordsObject
{
    /** Flattened numeric values, record major. */
    std::vector<double> values;
    /** Record boundaries: record r spans
     *  [recordOffsets[r], recordOffsets[r+1]). */
    std::vector<std::uint32_t> recordOffsets{0};

    std::size_t numRecords() const { return recordOffsets.size() - 1; }

    /** Binary layout: u32 records, u32 values, u32 offsets[records+1],
     *  f64 values[]. */
    std::uint64_t objectBytes() const;
    std::vector<std::uint8_t> toBinary() const;
    static JsonRecordsObject fromBinary(
        const std::vector<std::uint8_t> &bytes);

    /** Serialize to JSON text. */
    void serialize(TextWriter &w, int precision = 6) const;

    bool operator==(const JsonRecordsObject &) const = default;
};

/**
 * Incremental event parser for the record-array subset.
 *
 * Feed bytes with feed(); consume events with next(). Events arrive in
 * document order; kNeedMoreData means the current chunk is exhausted
 * (a number split across the boundary is carried internally). Call
 * finish() after the last chunk so a trailing number terminates.
 */
class JsonRowParser
{
  public:
    enum class Event {
        kBeginRecord,
        kNumber,        ///< value() holds the number.
        kEndRecord,
        kEndDocument,   ///< Outer array closed.
        kNeedMoreData,  ///< Feed more bytes (or finish()).
        kError,         ///< Malformed input; message() explains.
    };

    /** Append a chunk of input. */
    void feed(const std::uint8_t *data, std::size_t n);

    /** Declare end of input. */
    void finish() { _finished = true; }

    /** Pull the next event. */
    Event next();

    /** The number delivered by the last kNumber event. */
    double value() const { return _value; }

    /** Description of the last kError. */
    const std::string &message() const { return _error; }

    /** Operation accounting (bytes scanned, values converted). */
    const ParseCost &cost() const { return _cost; }

  private:
    enum class State {
        kExpectOuterOpen,
        kExpectRecordOrEnd,     // after '[' or ',' at outer level
        kExpectValueOrEnd,      // inside a record
        kAfterValue,            // inside a record, after a number
        kAfterRecord,           // outer level, after ']'
        kDone,
        kFailed,
    };

    /** Parse the carried number token; emits kNumber or kError. */
    Event emitNumber();

    Event fail(const std::string &why);

    std::vector<std::uint8_t> _buf;
    std::size_t _pos = 0;
    bool _finished = false;
    State _state = State::kExpectOuterOpen;
    bool _commaPending = false;  // a ',' awaits its element
    std::string _numberToken;  // partial number carried across chunks
    double _value = 0.0;
    std::string _error;
    ParseCost _cost;
};

/**
 * Parse a whole buffer (host path). @return false on malformed input.
 */
bool parseJsonRecords(const std::uint8_t *data, std::size_t size,
                      JsonRecordsObject *out, ParseCost *cost);

}  // namespace morpheus::serde

#endif  // MORPHEUS_SERDE_JSON_HH
