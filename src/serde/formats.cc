#include "serde/formats.hh"

#include <cstring>

#include "sim/logging.hh"

namespace {

/** Append the little-endian bytes of @p v. */
template <typename T>
void
putLe(std::vector<std::uint8_t> &out, T v)
{
    const std::size_t at = out.size();
    out.resize(at + sizeof(T));
    std::memcpy(out.data() + at, &v, sizeof(T));
}

/** Read a little-endian value at @p off, advancing it. */
template <typename T>
T
getLe(const std::vector<std::uint8_t> &in, std::size_t &off)
{
    MORPHEUS_ASSERT(off + sizeof(T) <= in.size(),
                    "binary object truncated");
    T v;
    std::memcpy(&v, in.data() + off, sizeof(T));
    off += sizeof(T);
    return v;
}

}  // namespace

namespace morpheus::serde {

std::uint64_t
EdgeListObject::objectBytes() const
{
    // Header (V, E as u32) + per-edge u32 pair (+ i32 weight).
    std::uint64_t per_edge = 2 * sizeof(std::uint32_t);
    if (weighted)
        per_edge += sizeof(std::int32_t);
    return 2 * sizeof(std::uint32_t) + per_edge * numEdges();
}

void
EdgeListObject::serialize(TextWriter &w) const
{
    w.appendInt64(numVertices);
    w.space();
    w.appendInt64(static_cast<std::int64_t>(numEdges()));
    w.newline();
    for (std::size_t i = 0; i < numEdges(); ++i) {
        w.appendInt64(src[i]);
        w.space();
        w.appendInt64(dst[i]);
        if (weighted) {
            w.space();
            w.appendInt64(weight[i]);
        }
        w.newline();
    }
}

std::uint64_t
MatrixObject::objectBytes() const
{
    return 2 * sizeof(std::uint32_t) + sizeof(float) * values.size();
}

void
MatrixObject::serialize(TextWriter &w, int precision) const
{
    w.appendInt64(rows);
    w.space();
    w.appendInt64(cols);
    w.newline();
    for (std::uint32_t r = 0; r < rows; ++r) {
        for (std::uint32_t c = 0; c < cols; ++c) {
            if (c > 0)
                w.space();
            const double v =
                values[static_cast<std::size_t>(r) * cols + c];
            // Integer-valued entries serialize as integers; the paper's
            // benchmark inputs "mainly consist of integers".
            if (v == static_cast<double>(static_cast<std::int64_t>(v))) {
                w.appendInt64(static_cast<std::int64_t>(v));
            } else {
                w.appendDouble(v, precision);
            }
        }
        w.newline();
    }
}

std::uint64_t
IntArrayObject::objectBytes() const
{
    return sizeof(std::uint32_t) + sizeof(std::int64_t) * values.size();
}

void
IntArrayObject::serialize(TextWriter &w) const
{
    w.appendInt64(static_cast<std::int64_t>(values.size()));
    w.newline();
    for (std::size_t i = 0; i < values.size(); ++i) {
        w.appendInt64(values[i]);
        w.appendChar((i + 1) % 16 == 0 ? '\n' : ' ');
    }
    w.newline();
}

std::uint64_t
PointSetObject::objectBytes() const
{
    return 2 * sizeof(std::uint32_t) + sizeof(float) * coords.size();
}

void
PointSetObject::serialize(TextWriter &w, int precision) const
{
    w.appendInt64(static_cast<std::int64_t>(numPoints()));
    w.space();
    w.appendInt64(dims);
    w.newline();
    for (std::size_t p = 0; p < numPoints(); ++p) {
        for (std::uint32_t d = 0; d < dims; ++d) {
            if (d > 0)
                w.space();
            const double v = coords[p * dims + d];
            if (v == static_cast<double>(static_cast<std::int64_t>(v))) {
                w.appendInt64(static_cast<std::int64_t>(v));
            } else {
                w.appendDouble(v, precision);
            }
        }
        w.newline();
    }
}

std::uint64_t
CooMatrixObject::objectBytes() const
{
    return 3 * sizeof(std::uint32_t) +
           (2 * sizeof(std::uint32_t) + sizeof(float)) * nnz();
}

void
CooMatrixObject::serialize(TextWriter &w, int precision) const
{
    w.appendInt64(rows);
    w.space();
    w.appendInt64(cols);
    w.space();
    w.appendInt64(static_cast<std::int64_t>(nnz()));
    w.newline();
    for (std::size_t i = 0; i < nnz(); ++i) {
        w.appendInt64(rowIdx[i]);
        w.space();
        w.appendInt64(colIdx[i]);
        w.space();
        const double v = values[i];
        if (v == static_cast<double>(static_cast<std::int64_t>(v))) {
            w.appendInt64(static_cast<std::int64_t>(v));
        } else {
            w.appendDouble(v, precision);
        }
        w.newline();
    }
}

std::vector<std::uint8_t>
EdgeListObject::toBinary() const
{
    std::vector<std::uint8_t> out;
    out.reserve(objectBytes());
    putLe(out, numVertices);
    putLe(out, static_cast<std::uint32_t>(numEdges()));
    for (std::size_t i = 0; i < numEdges(); ++i) {
        putLe(out, src[i]);
        putLe(out, dst[i]);
        if (weighted)
            putLe(out, weight[i]);
    }
    return out;
}

EdgeListObject
EdgeListObject::fromBinary(const std::vector<std::uint8_t> &bytes,
                           bool with_weights)
{
    EdgeListObject o;
    std::size_t off = 0;
    o.numVertices = getLe<std::uint32_t>(bytes, off);
    const auto edges = getLe<std::uint32_t>(bytes, off);
    o.weighted = with_weights;
    o.src.reserve(edges);
    o.dst.reserve(edges);
    if (with_weights)
        o.weight.reserve(edges);
    for (std::uint32_t i = 0; i < edges; ++i) {
        o.src.push_back(getLe<std::uint32_t>(bytes, off));
        o.dst.push_back(getLe<std::uint32_t>(bytes, off));
        if (with_weights)
            o.weight.push_back(getLe<std::int32_t>(bytes, off));
    }
    return o;
}

std::vector<std::uint8_t>
MatrixObject::toBinary() const
{
    std::vector<std::uint8_t> out;
    out.reserve(objectBytes());
    putLe(out, rows);
    putLe(out, cols);
    for (const float v : values)
        putLe(out, v);
    return out;
}

MatrixObject
MatrixObject::fromBinary(const std::vector<std::uint8_t> &bytes)
{
    MatrixObject o;
    std::size_t off = 0;
    o.rows = getLe<std::uint32_t>(bytes, off);
    o.cols = getLe<std::uint32_t>(bytes, off);
    const std::size_t n =
        static_cast<std::size_t>(o.rows) * o.cols;
    o.values.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        o.values.push_back(getLe<float>(bytes, off));
    return o;
}

std::vector<std::uint8_t>
IntArrayObject::toBinary() const
{
    std::vector<std::uint8_t> out;
    out.reserve(objectBytes());
    putLe(out, static_cast<std::uint32_t>(values.size()));
    for (const std::int64_t v : values)
        putLe(out, v);
    return out;
}

IntArrayObject
IntArrayObject::fromBinary(const std::vector<std::uint8_t> &bytes)
{
    IntArrayObject o;
    std::size_t off = 0;
    const auto n = getLe<std::uint32_t>(bytes, off);
    o.values.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i)
        o.values.push_back(getLe<std::int64_t>(bytes, off));
    return o;
}

std::vector<std::uint8_t>
PointSetObject::toBinary() const
{
    std::vector<std::uint8_t> out;
    out.reserve(objectBytes());
    putLe(out, static_cast<std::uint32_t>(numPoints()));
    putLe(out, dims);
    for (const float v : coords)
        putLe(out, v);
    return out;
}

PointSetObject
PointSetObject::fromBinary(const std::vector<std::uint8_t> &bytes)
{
    PointSetObject o;
    std::size_t off = 0;
    const auto points = getLe<std::uint32_t>(bytes, off);
    o.dims = getLe<std::uint32_t>(bytes, off);
    const std::size_t n = static_cast<std::size_t>(points) * o.dims;
    o.coords.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        o.coords.push_back(getLe<float>(bytes, off));
    return o;
}

std::vector<std::uint8_t>
CooMatrixObject::toBinary() const
{
    std::vector<std::uint8_t> out;
    out.reserve(objectBytes());
    putLe(out, rows);
    putLe(out, cols);
    putLe(out, static_cast<std::uint32_t>(nnz()));
    for (std::size_t i = 0; i < nnz(); ++i) {
        putLe(out, rowIdx[i]);
        putLe(out, colIdx[i]);
        putLe(out, static_cast<float>(values[i]));
    }
    return out;
}

CooMatrixObject
CooMatrixObject::fromBinary(const std::vector<std::uint8_t> &bytes)
{
    CooMatrixObject o;
    std::size_t off = 0;
    o.rows = getLe<std::uint32_t>(bytes, off);
    o.cols = getLe<std::uint32_t>(bytes, off);
    const auto n = getLe<std::uint32_t>(bytes, off);
    o.rowIdx.reserve(n);
    o.colIdx.reserve(n);
    o.values.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        o.rowIdx.push_back(getLe<std::uint32_t>(bytes, off));
        o.colIdx.push_back(getLe<std::uint32_t>(bytes, off));
        o.values.push_back(getLe<float>(bytes, off));
    }
    return o;
}

}  // namespace morpheus::serde
