#include "serde/scanner.hh"

#include "sim/logging.hh"

namespace morpheus::serde {

namespace {

/** Advance past one run of non-separator bytes (a malformed token). */
const std::uint8_t *
skipToken(const std::uint8_t *p, const std::uint8_t *end, ParseCost &cost)
{
    const std::uint8_t *start = p;
    while (p < end && !isSeparator(*p))
        ++p;
    cost.bytes += static_cast<std::uint64_t>(p - start);
    return p;
}

}  // namespace

bool
TextScanner::nextInt64(std::int64_t *out)
{
    for (;;) {
        _p = skipSeparators(_p, _end, _cost);
        if (_p >= _end)
            return false;
        const std::uint8_t *next = parseInt64(_p, _end, out, _cost);
        if (next) {
            _p = next;
            return true;
        }
        _p = skipToken(_p, _end, _cost);  // malformed token: skip it
    }
}

bool
TextScanner::nextDouble(double *out)
{
    for (;;) {
        _p = skipSeparators(_p, _end, _cost);
        if (_p >= _end)
            return false;
        const std::uint8_t *next = parseDouble(_p, _end, out, _cost);
        if (next) {
            _p = next;
            return true;
        }
        _p = skipToken(_p, _end, _cost);
    }
}

bool
TextScanner::nextNumber(double *out, bool *is_float)
{
    for (;;) {
        _p = skipSeparators(_p, _end, _cost);
        if (_p >= _end)
            return false;
        const bool looks_float = tokenLooksFloat(_p, _end);
        const std::uint8_t *next;
        if (looks_float) {
            next = parseDouble(_p, _end, out, _cost);
        } else {
            std::int64_t v = 0;
            next = parseInt64(_p, _end, &v, _cost);
            if (next)
                *out = static_cast<double>(v);
        }
        if (next) {
            if (is_float)
                *is_float = looks_float;
            _p = next;
            return true;
        }
        _p = skipToken(_p, _end, _cost);
    }
}

bool
TextScanner::atEnd()
{
    _p = skipSeparators(_p, _end, _cost);
    return _p >= _end;
}

StreamingScanner::StreamingScanner(Refill refill, std::size_t chunk_bytes,
                                   bool incremental)
    : _refill(std::move(refill)), _chunkBytes(chunk_bytes),
      _incremental(incremental), _finalized(!incremental)
{
    MORPHEUS_ASSERT(_refill, "StreamingScanner needs a refill callback");
    MORPHEUS_ASSERT(_chunkBytes > 0, "StreamingScanner chunk must be > 0");
}

bool
StreamingScanner::pull()
{
    if (_exhausted)
        return false;
    // Compact the consumed prefix before appending.
    if (_pos > 0) {
        _buf.erase(_buf.begin(),
                   _buf.begin() + static_cast<std::ptrdiff_t>(_pos));
        _pos = 0;
    }
    const std::size_t old = _buf.size();
    _buf.resize(old + _chunkBytes);
    const std::size_t got = _refill(_buf.data() + old, _chunkBytes);
    MORPHEUS_ASSERT(got <= _chunkBytes, "refill overran its capacity");
    _buf.resize(old + got);
    ++_refills;
    if (got == 0) {
        if (_finalized)
            _exhausted = true;
        return false;
    }
    return true;
}

bool
StreamingScanner::ensureToken()
{
    for (;;) {
        // Consume leading separators.
        while (_pos < _buf.size() && isSeparator(_buf[_pos])) {
            ++_pos;
            ++_cost.bytes;
        }
        if (_pos < _buf.size()) {
            // A token starts here; make sure it ends inside the buffer
            // (or the stream is exhausted, so it ends at buffer end).
            std::size_t i = _pos;
            while (i < _buf.size() && !isSeparator(_buf[i]))
                ++i;
            if (i < _buf.size() || _exhausted)
                return true;
            if (!pull()) {
                // Stream truly ended: the trailing token is complete.
                // Incremental and still open: the token may continue in
                // a later chunk; leave it buffered and report no token.
                return _exhausted;
            }
            continue;
        }
        if (!pull())
            return false;  // nothing available (now or ever)
    }
}

bool
StreamingScanner::nextInt64(std::int64_t *out)
{
    for (;;) {
        if (!ensureToken())
            return false;
        const std::uint8_t *start = _buf.data() + _pos;
        const std::uint8_t *end = _buf.data() + _buf.size();
        const std::uint8_t *next = parseInt64(start, end, out, _cost);
        if (next) {
            _pos += static_cast<std::size_t>(next - start);
            return true;
        }
        const std::uint8_t *skipped = skipToken(start, end, _cost);
        _pos += static_cast<std::size_t>(skipped - start);
    }
}

bool
StreamingScanner::nextDouble(double *out)
{
    for (;;) {
        if (!ensureToken())
            return false;
        const std::uint8_t *start = _buf.data() + _pos;
        const std::uint8_t *end = _buf.data() + _buf.size();
        const std::uint8_t *next = parseDouble(start, end, out, _cost);
        if (next) {
            _pos += static_cast<std::size_t>(next - start);
            return true;
        }
        const std::uint8_t *skipped = skipToken(start, end, _cost);
        _pos += static_cast<std::size_t>(skipped - start);
    }
}

bool
StreamingScanner::nextNumber(double *out, bool *is_float)
{
    for (;;) {
        if (!ensureToken())
            return false;
        const std::uint8_t *start = _buf.data() + _pos;
        const std::uint8_t *end = _buf.data() + _buf.size();
        const bool looks_float = tokenLooksFloat(start, end);
        const std::uint8_t *next;
        if (looks_float) {
            next = parseDouble(start, end, out, _cost);
        } else {
            std::int64_t v = 0;
            next = parseInt64(start, end, &v, _cost);
            if (next)
                *out = static_cast<double>(v);
        }
        if (next) {
            if (is_float)
                *is_float = looks_float;
            _pos += static_cast<std::size_t>(next - start);
            return true;
        }
        const std::uint8_t *skipped = skipToken(start, end, _cost);
        _pos += static_cast<std::size_t>(skipped - start);
    }
}

bool
StreamingScanner::atEnd()
{
    return !ensureToken();
}

}  // namespace morpheus::serde
