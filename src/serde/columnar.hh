/**
 * @file
 * Columnar table format with on-device projection / predicate pushdown.
 *
 * The flash layout is schema-described and column-chunked, in the
 * spirit of Arrow/Parquet scaled down to what an embedded core can
 * stream (PAPERS.md: "Towards an Arrow-native Storage System"):
 *
 *   header     magic 'CMF1', column count, row count, row-group rows,
 *              dictionary entry count, then one (type, name) pair per
 *              column. The header leads the file so the device applet
 *              can parse it from the first in-order MREAD chunk.
 *   row groups ceil(rows / rowGroupRows) groups; inside a group each
 *              column's values are laid out contiguously (the column
 *              chunk): int64/float64 cells are 8 bytes little endian,
 *              dictionary-string cells are 4-byte codes.
 *   dict blob  the shared string dictionary (u16 length + bytes each).
 *   footer     redundant {header bytes, dict offset, rows, magic} so
 *              integrity checkers and seek-capable readers can locate
 *              sections without re-scanning; the streaming scan applet
 *              never needs it.
 *
 * A scan is described by a ScanSpec: a projection bitmask plus an
 * AND-chain of (column, op, literal) predicates. The spec has a
 * canonical dword encoding (the pushdown descriptor carried by MINIT)
 * and an FNV-1a digest that extends the object-cache key, so a cached
 * scan result is only ever replayed for the exact same program.
 *
 * scanTable() / ColumnarScanner are the single scan kernel shared by
 * the firmware applet, the host fallback, and the split-execution
 * suffix — all three produce byte-identical output by construction.
 */

#ifndef MORPHEUS_SERDE_COLUMNAR_HH
#define MORPHEUS_SERDE_COLUMNAR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "serde/scanner.hh"

namespace morpheus::serde {

/** Cell type of one column. */
enum class ColumnType : std::uint8_t {
    kInt64 = 0,      ///< 8-byte signed integer cells.
    kFloat64 = 1,    ///< 8-byte IEEE-754 cells.
    kDictString = 2, ///< 4-byte codes into the shared dictionary.
};

/** Bytes one cell of @p t occupies in a column chunk. */
inline std::uint32_t
columnCellBytes(ColumnType t)
{
    return t == ColumnType::kDictString ? 4u : 8u;
}

/** Comparison operator of one predicate term. */
enum class PredOp : std::uint8_t {
    kEq = 0,
    kNe = 1,
    kLt = 2,
    kLe = 3,
    kGt = 4,
    kGe = 5,
};

/** One predicate term: column <op> literal. */
struct Predicate
{
    std::uint32_t column = 0;
    PredOp op = PredOp::kEq;
    /** Literal bit pattern: int64 for kInt64, IEEE-754 bits for
     *  kFloat64, a dictionary code for kDictString (Eq/Ne only). */
    std::uint64_t literalBits = 0;

    bool operator==(const Predicate &o) const
    {
        return column == o.column && op == o.op &&
               literalBits == o.literalBits;
    }
};

/** Flags modifying what a scan emits (split execution support). */
enum ScanFlags : std::uint32_t {
    /** Omit the result trailer (dict blob + surviving-row count); the
     *  prefix half of a split scan uses this so the suffix half can
     *  complete the byte stream. */
    kScanNoTrailer = 1u << 0,
    /** Omit the result header (schema frame); the suffix half of a
     *  split scan uses this. */
    kScanNoHeader = 1u << 1,
};

/**
 * A pushdown program: projection mask + AND-chain of predicates.
 * Default-constructed == project everything, keep every row.
 */
struct ScanSpec
{
    /** Bit i set => column i is projected. ~0 projects all columns. */
    std::uint32_t projectionMask = ~0u;
    std::vector<Predicate> preds;
    std::uint32_t flags = 0;  ///< ScanFlags bits.

    bool operator==(const ScanSpec &o) const
    {
        return projectionMask == o.projectionMask && preds == o.preds &&
               flags == o.flags;
    }

    /**
     * Canonical dword encoding — the pushdown descriptor MINIT
     * carries: [magic|version|flags|npreds][mask] then three dwords
     * per term ([column|op], literal lo, literal hi).
     */
    std::vector<std::uint32_t> encode() const;

    /** @return false on bad magic/version or truncated program. */
    static bool decode(const std::vector<std::uint32_t> &dwords,
                       ScanSpec *out);

    /**
     * FNV-1a over the canonical dwords; never 0, so 0 stays the
     * object-cache's "no pushdown" sentinel.
     */
    std::uint32_t digest() const;
};

/**
 * Digest of a raw descriptor dword sequence (what MINIT carries in
 * PRP2's high dword); firmware validates it without decoding first.
 * Never 0.
 */
std::uint32_t pushdownDigest(const std::vector<std::uint32_t> &dwords);

/** Schema of one column. */
struct ColumnDesc
{
    std::string name;
    ColumnType type = ColumnType::kInt64;

    bool operator==(const ColumnDesc &o) const
    {
        return name == o.name && type == o.type;
    }
};

/**
 * An in-memory columnar table plus its flash codec. Cells are stored
 * column-major as 64-bit words (dictionary columns store codes).
 */
struct ColumnarTableObject
{
    std::vector<ColumnDesc> schema;
    /** cells[c][r]: int64 value, double bit pattern, or dict code. */
    std::vector<std::vector<std::uint64_t>> cells;
    std::vector<std::string> dict;
    std::uint32_t rowGroupRows = 256;

    std::uint64_t rows() const
    {
        return cells.empty() ? 0 : cells.front().size();
    }
    std::uint64_t objectBytes() const;  ///< In-memory object footprint.

    /** Serialize to the flash byte layout described above. */
    std::vector<std::uint8_t> toFlash() const;
    /** @return false on bad magic, truncation, or footer mismatch. */
    static bool fromFlash(const std::vector<std::uint8_t> &bytes,
                          ColumnarTableObject *out);

    bool operator==(const ColumnarTableObject &o) const
    {
        return schema == o.schema && cells == o.cells && dict == o.dict &&
               rowGroupRows == o.rowGroupRows;
    }
};

/** Outcome of a (possibly partial) scan. */
struct ScanResult
{
    bool ok = false;            ///< False on malformed input/dict miss.
    std::uint64_t survivingRows = 0;
    std::vector<std::uint8_t> out;  ///< Emitted result bytes.
    ParseCost cost;             ///< Column-at-a-time evaluation work.
};

/**
 * Streaming scan kernel: feed flash-format bytes in arbitrary-sized
 * pieces (MREAD chunks on the device, one shot on the host); emitted
 * result bytes and cost accrue incrementally so the firmware applet
 * can flush and charge per chunk. The result byte stream is
 *
 *   header   magic 'CMF2', projected column count, then (type, name)
 *            per projected column                      [unless kScanNoHeader]
 *   rows     surviving rows, row-major over the projected columns
 *            (8-byte cells; dict columns emit 4-byte codes)
 *   trailer  dictionary entry count + entries (u16 len + bytes; count
 *            is 0 when no dictionary column is projected), then the
 *            u64 surviving-row count                   [unless kScanNoTrailer]
 */
class ColumnarScanner
{
  public:
    explicit ColumnarScanner(const ScanSpec &spec) : _spec(spec) {}

    /** Stream in the next flash bytes; evaluates finished row groups. */
    void feed(const std::uint8_t *data, std::size_t n);

    /**
     * End of stream: a partial trailing row group is dropped (split
     * execution truncates mid-file); emits the result trailer unless
     * suppressed. @p baseSurviving is added to the trailer count so a
     * split suffix can report the whole scan's total.
     */
    void finish(std::uint64_t baseSurviving = 0);

    bool error() const { return _error; }
    std::uint64_t survivingRows() const { return _surviving; }
    bool headerParsed() const { return _haveHeader; }

    /** Split-suffix support: mark @p rows as already scanned by the
     *  prefix half. Call right after the header bytes are fed. */
    void skipRows(std::uint64_t rows) { _rowsSeen += rows; }

    /** Move out result bytes emitted since the last take. */
    std::vector<std::uint8_t> takeEmitted()
    {
        std::vector<std::uint8_t> out;
        out.swap(_emitted);
        return out;
    }

    /** Move out evaluation cost accrued since the last take. */
    ParseCost takeCost()
    {
        ParseCost c = _cost;
        _cost = ParseCost{};
        return c;
    }

  private:
    void parseHeader();
    void evalGroup(const std::uint8_t *group, std::uint64_t group_rows);
    void emitBytes(const void *p, std::size_t n);

    ScanSpec _spec;
    std::vector<std::uint8_t> _buf;   ///< Carry across feed boundaries.
    std::size_t _bufPos = 0;

    bool _haveHeader = false;
    bool _error = false;
    bool _finished = false;
    std::vector<ColumnDesc> _schema;
    std::uint64_t _rowsTotal = 0;
    std::uint32_t _rowGroupRows = 0;
    std::uint32_t _dictCount = 0;
    std::uint64_t _rowsSeen = 0;
    std::uint64_t _surviving = 0;
    std::uint64_t _groupBytes = 0;    ///< Full-group byte size.
    std::vector<std::uint8_t> _dictBlob;  ///< Captured after last group.
    std::uint64_t _dictBlobWant = 0;

    std::vector<std::uint8_t> _emitted;
    ParseCost _cost;
};

/**
 * One-shot scan over a complete flash image. Set @p first_group to
 * scan only row groups [first_group, ...) — the host half of a split
 * execution; combined with kScanNoHeader and a prefix half run with
 * kScanNoTrailer, concatenating the two outputs reproduces the full
 * scan byte-for-byte.
 */
ScanResult scanTable(const std::uint8_t *data, std::size_t size,
                     const ScanSpec &spec, std::uint64_t first_group = 0,
                     std::uint64_t base_surviving = 0);

/** Parse the result byte stream back into a table (projected view). */
bool columnarFromScanBytes(const std::vector<std::uint8_t> &bytes,
                           ColumnarTableObject *out);

/**
 * Deterministic test/bench table: column 0 "key" uniform int64 in
 * [0, 1e6) (the predicate target), alternating float64 metric and
 * int64 counter columns, and a trailing dictionary "status" column.
 */
ColumnarTableObject genColumnarTable(std::uint64_t seed,
                                     std::uint64_t rows,
                                     std::uint32_t cols,
                                     std::uint32_t row_group_rows = 256);

/**
 * The standard pushdown program for a generated table: project the
 * first @p project_cols columns (0 = all) and keep rows whose key
 * column is < selectivity * 1e6.
 */
ScanSpec makeSelectivitySpec(double selectivity,
                             std::uint32_t project_cols,
                             std::uint32_t total_cols);

}  // namespace morpheus::serde

#endif  // MORPHEUS_SERDE_COLUMNAR_HH
