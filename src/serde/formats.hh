/**
 * @file
 * Application object types and their text formats.
 *
 * These are the "application objects" of the paper: the binary
 * in-memory structures the compute kernels consume. Each type knows how
 * to parse itself from its text interchange format and how to serialize
 * itself back; parsing is the expensive deserialization step the paper
 * offloads.
 *
 * Formats (whitespace/comma separated ASCII):
 *  - EdgeListObject: "V E\n" then E lines "src dst [weight]".
 *  - MatrixObject:   "R C\n" then R*C values, row major.
 *  - IntArrayObject: "N\n" then N integers.
 *  - PointSetObject: "N D\n" then N lines of D values.
 *  - CooMatrixObject:"R C NNZ\n" then NNZ lines "row col value".
 */

#ifndef MORPHEUS_SERDE_FORMATS_HH
#define MORPHEUS_SERDE_FORMATS_HH

#include <cstdint>
#include <vector>

#include "serde/scanner.hh"
#include "serde/writer.hh"

namespace morpheus::serde {

/**
 * Directed edge list with optional integer weights (graph apps:
 * PageRank, BFS, Connected Components, SSSP).
 */
struct EdgeListObject
{
    std::uint32_t numVertices = 0;
    bool weighted = false;
    std::vector<std::uint32_t> src;
    std::vector<std::uint32_t> dst;
    std::vector<std::int32_t> weight;  // empty unless weighted

    std::size_t numEdges() const { return src.size(); }

    /** Size of the binary object, as transported over DMA. */
    std::uint64_t objectBytes() const;

    void serialize(TextWriter &w) const;

    /**
     * Binary (in-memory) layout: u32 V, u32 E, then per edge
     * u32 src, u32 dst [, i32 weight]. Little endian. This is the byte
     * stream StorageApps emit over DMA.
     */
    std::vector<std::uint8_t> toBinary() const;
    static EdgeListObject fromBinary(
        const std::vector<std::uint8_t> &bytes, bool with_weights);

    /**
     * Parse from a scanner (TextScanner or StreamingScanner).
     * @param with_weights  Whether each edge line carries a weight.
     * @return false on truncated input.
     */
    template <typename Scanner>
    bool parse(Scanner &s, bool with_weights);

    bool operator==(const EdgeListObject &) const = default;
};

/**
 * Dense row-major matrix of single-precision floats (Gaussian, LUD —
 * the Rodinia CUDA kernels compute in float).
 */
struct MatrixObject
{
    std::uint32_t rows = 0;
    std::uint32_t cols = 0;
    std::vector<float> values;

    std::uint64_t objectBytes() const;
    void serialize(TextWriter &w, int precision = 4) const;

    /** Binary layout: u32 rows, u32 cols, then f32 values row-major. */
    std::vector<std::uint8_t> toBinary() const;
    static MatrixObject fromBinary(const std::vector<std::uint8_t> &bytes);

    template <typename Scanner>
    bool parse(Scanner &s);

    bool operator==(const MatrixObject &) const = default;
};

/** Flat array of 64-bit integers (Hybrid Sort, WordCount-style). */
struct IntArrayObject
{
    std::vector<std::int64_t> values;

    std::uint64_t objectBytes() const;
    void serialize(TextWriter &w) const;

    /** Binary layout: u32 count, then i64 values. */
    std::vector<std::uint8_t> toBinary() const;
    static IntArrayObject fromBinary(
        const std::vector<std::uint8_t> &bytes);

    template <typename Scanner>
    bool parse(Scanner &s);

    bool operator==(const IntArrayObject &) const = default;
};

/** N points of D single-precision coordinates (Kmeans, NN). */
struct PointSetObject
{
    std::uint32_t dims = 0;
    std::vector<float> coords;  // N*D, point major

    std::size_t numPoints() const
    {
        return dims == 0 ? 0 : coords.size() / dims;
    }

    std::uint64_t objectBytes() const;
    void serialize(TextWriter &w, int precision = 2) const;

    /** Binary layout: u32 points, u32 dims, then f32 coords. */
    std::vector<std::uint8_t> toBinary() const;
    static PointSetObject fromBinary(
        const std::vector<std::uint8_t> &bytes);

    template <typename Scanner>
    bool parse(Scanner &s);

    bool operator==(const PointSetObject &) const = default;
};

/** Sparse matrix in coordinate form (SpMV). */
struct CooMatrixObject
{
    std::uint32_t rows = 0;
    std::uint32_t cols = 0;
    std::vector<std::uint32_t> rowIdx;
    std::vector<std::uint32_t> colIdx;
    std::vector<float> values;

    std::size_t nnz() const { return values.size(); }

    std::uint64_t objectBytes() const;
    void serialize(TextWriter &w, int precision = 3) const;

    /** Binary layout: u32 rows, u32 cols, u32 nnz, then per entry
     *  u32 row, u32 col, f32 value. */
    std::vector<std::uint8_t> toBinary() const;
    static CooMatrixObject fromBinary(
        const std::vector<std::uint8_t> &bytes);

    template <typename Scanner>
    bool parse(Scanner &s);

    bool operator==(const CooMatrixObject &) const = default;
};

// ---------------------------------------------------------------------
// Template definitions (work with TextScanner and StreamingScanner).
// ---------------------------------------------------------------------

template <typename Scanner>
bool
EdgeListObject::parse(Scanner &s, bool with_weights)
{
    std::int64_t v = 0, e = 0;
    if (!s.nextInt64(&v) || !s.nextInt64(&e))
        return false;
    numVertices = static_cast<std::uint32_t>(v);
    weighted = with_weights;
    src.clear();
    dst.clear();
    weight.clear();
    src.reserve(static_cast<std::size_t>(e));
    dst.reserve(static_cast<std::size_t>(e));
    if (with_weights)
        weight.reserve(static_cast<std::size_t>(e));
    for (std::int64_t i = 0; i < e; ++i) {
        std::int64_t a = 0, b = 0;
        if (!s.nextInt64(&a) || !s.nextInt64(&b))
            return false;
        src.push_back(static_cast<std::uint32_t>(a));
        dst.push_back(static_cast<std::uint32_t>(b));
        if (with_weights) {
            std::int64_t w = 0;
            if (!s.nextInt64(&w))
                return false;
            weight.push_back(static_cast<std::int32_t>(w));
        }
    }
    return true;
}

template <typename Scanner>
bool
MatrixObject::parse(Scanner &s)
{
    std::int64_t r = 0, c = 0;
    if (!s.nextInt64(&r) || !s.nextInt64(&c))
        return false;
    rows = static_cast<std::uint32_t>(r);
    cols = static_cast<std::uint32_t>(c);
    values.clear();
    values.reserve(static_cast<std::size_t>(r) *
                   static_cast<std::size_t>(c));
    for (std::int64_t i = 0; i < r * c; ++i) {
        double v = 0.0;
        if (!s.nextNumber(&v, nullptr))
            return false;
        values.push_back(static_cast<float>(v));
    }
    return true;
}

template <typename Scanner>
bool
IntArrayObject::parse(Scanner &s)
{
    std::int64_t n = 0;
    if (!s.nextInt64(&n))
        return false;
    values.clear();
    values.reserve(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) {
        std::int64_t v = 0;
        if (!s.nextInt64(&v))
            return false;
        values.push_back(v);
    }
    return true;
}

template <typename Scanner>
bool
PointSetObject::parse(Scanner &s)
{
    std::int64_t n = 0, d = 0;
    if (!s.nextInt64(&n) || !s.nextInt64(&d))
        return false;
    dims = static_cast<std::uint32_t>(d);
    coords.clear();
    coords.reserve(static_cast<std::size_t>(n) *
                   static_cast<std::size_t>(d));
    for (std::int64_t i = 0; i < n * d; ++i) {
        double v = 0.0;
        if (!s.nextNumber(&v, nullptr))
            return false;
        coords.push_back(static_cast<float>(v));
    }
    return true;
}

template <typename Scanner>
bool
CooMatrixObject::parse(Scanner &s)
{
    std::int64_t r = 0, c = 0, n = 0;
    if (!s.nextInt64(&r) || !s.nextInt64(&c) || !s.nextInt64(&n))
        return false;
    rows = static_cast<std::uint32_t>(r);
    cols = static_cast<std::uint32_t>(c);
    rowIdx.clear();
    colIdx.clear();
    values.clear();
    rowIdx.reserve(static_cast<std::size_t>(n));
    colIdx.reserve(static_cast<std::size_t>(n));
    values.reserve(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) {
        std::int64_t a = 0, b = 0;
        double v = 0.0;
        if (!s.nextInt64(&a) || !s.nextInt64(&b) ||
            !s.nextNumber(&v, nullptr)) {
            return false;
        }
        rowIdx.push_back(static_cast<std::uint32_t>(a));
        colIdx.push_back(static_cast<std::uint32_t>(b));
        values.push_back(static_cast<float>(v));
    }
    return true;
}

}  // namespace morpheus::serde

#endif  // MORPHEUS_SERDE_FORMATS_HH
