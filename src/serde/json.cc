#include "serde/json.hh"

#include <cstring>

#include "sim/logging.hh"

namespace morpheus::serde {

namespace {

constexpr bool
isJsonWs(std::uint8_t c)
{
    return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

constexpr bool
isNumberChar(std::uint8_t c)
{
    return isDigit(c) || c == '-' || c == '+' || c == '.' || c == 'e' ||
           c == 'E';
}

template <typename T>
void
putLe(std::vector<std::uint8_t> &out, T v)
{
    const auto *p = reinterpret_cast<const std::uint8_t *>(&v);
    out.insert(out.end(), p, p + sizeof(T));
}

template <typename T>
T
getLe(const std::vector<std::uint8_t> &in, std::size_t &off)
{
    MORPHEUS_ASSERT(off + sizeof(T) <= in.size(),
                    "JSON binary object truncated");
    T v;
    std::memcpy(&v, in.data() + off, sizeof(T));
    off += sizeof(T);
    return v;
}

/** End-of-stream marker in the record-framed binary layout. */
constexpr std::uint32_t kEndMarker = 0xFFFFFFFFu;

}  // namespace

std::uint64_t
JsonRecordsObject::objectBytes() const
{
    // Record-framed stream: per record a u32 count + f64 values, then
    // one u32 end marker (streamable: no global header needed).
    return 4ULL * (numRecords() + 1) + 8ULL * values.size();
}

std::vector<std::uint8_t>
JsonRecordsObject::toBinary() const
{
    std::vector<std::uint8_t> out;
    out.reserve(objectBytes());
    for (std::size_t r = 0; r < numRecords(); ++r) {
        const std::uint32_t begin = recordOffsets[r];
        const std::uint32_t end = recordOffsets[r + 1];
        putLe(out, end - begin);
        for (std::uint32_t i = begin; i < end; ++i)
            putLe(out, values[i]);
    }
    putLe(out, kEndMarker);
    return out;
}

JsonRecordsObject
JsonRecordsObject::fromBinary(const std::vector<std::uint8_t> &bytes)
{
    JsonRecordsObject o;
    std::size_t off = 0;
    for (;;) {
        const auto count = getLe<std::uint32_t>(bytes, off);
        if (count == kEndMarker)
            break;
        for (std::uint32_t i = 0; i < count; ++i)
            o.values.push_back(getLe<double>(bytes, off));
        o.recordOffsets.push_back(
            static_cast<std::uint32_t>(o.values.size()));
    }
    return o;
}

void
JsonRecordsObject::serialize(TextWriter &w, int precision) const
{
    w.appendChar('[');
    for (std::size_t r = 0; r < numRecords(); ++r) {
        if (r > 0)
            w.appendLiteral(", ");
        w.appendChar('[');
        for (std::uint32_t i = recordOffsets[r];
             i < recordOffsets[r + 1]; ++i) {
            if (i > recordOffsets[r])
                w.appendLiteral(", ");
            const double v = values[i];
            if (v == static_cast<double>(static_cast<std::int64_t>(v))) {
                w.appendInt64(static_cast<std::int64_t>(v));
            } else {
                w.appendDouble(v, precision);
            }
        }
        w.appendChar(']');
    }
    w.appendChar(']');
    w.newline();
}

void
JsonRowParser::feed(const std::uint8_t *data, std::size_t n)
{
    MORPHEUS_ASSERT(!_finished, "feed after finish");
    _buf.insert(_buf.end(), data, data + n);
}

JsonRowParser::Event
JsonRowParser::fail(const std::string &why)
{
    _state = State::kFailed;
    _error = why;
    return Event::kError;
}

JsonRowParser::Event
JsonRowParser::emitNumber()
{
    const auto *start =
        reinterpret_cast<const std::uint8_t *>(_numberToken.data());
    const auto *end = start + _numberToken.size();
    // Bytes were already counted while accumulating the token; only
    // the conversion-op accounting from parseDouble is merged.
    ParseCost convert;
    const std::uint8_t *next = parseDouble(start, end, &_value, convert);
    if (next != end)
        return fail("malformed number: " + _numberToken);
    _cost.floatValues += convert.floatValues;
    _cost.floatOps += convert.floatOps;
    _numberToken.clear();
    _commaPending = false;
    _state = State::kAfterValue;
    return Event::kNumber;
}

JsonRowParser::Event
JsonRowParser::next()
{
    for (;;) {
        if (_state == State::kDone)
            return Event::kEndDocument;
        if (_state == State::kFailed)
            return Event::kError;

        // A (possibly partial) number token is being accumulated.
        if (!_numberToken.empty() ||
            (_state == State::kExpectValueOrEnd && _pos < _buf.size() &&
             isNumberChar(_buf[_pos]))) {
            while (_pos < _buf.size() && isNumberChar(_buf[_pos])) {
                _numberToken.push_back(
                    static_cast<char>(_buf[_pos++]));
                ++_cost.bytes;
            }
            if (_pos >= _buf.size() && !_finished) {
                // The number may continue in the next chunk.
                _buf.clear();
                _pos = 0;
                return Event::kNeedMoreData;
            }
            return emitNumber();
        }

        while (_pos < _buf.size() && isJsonWs(_buf[_pos])) {
            ++_pos;
            ++_cost.bytes;
        }
        if (_pos >= _buf.size()) {
            _buf.clear();
            _pos = 0;
            if (!_finished)
                return Event::kNeedMoreData;
            return fail("truncated document");
        }

        const std::uint8_t c = _buf[_pos];
        auto consume = [this] {
            ++_pos;
            ++_cost.bytes;
        };
        switch (_state) {
          case State::kExpectOuterOpen:
            if (c != '[')
                return fail("expected '['");
            consume();
            _state = State::kExpectRecordOrEnd;
            break;
          case State::kExpectRecordOrEnd:
            if (c == '[') {
                consume();
                _commaPending = false;
                _state = State::kExpectValueOrEnd;
                return Event::kBeginRecord;
            }
            if (c == ']') {
                if (_commaPending)
                    return fail("trailing ',' before ']'");
                consume();
                _state = State::kDone;
                return Event::kEndDocument;
            }
            return fail("expected '[' or ']' at record level");
          case State::kExpectValueOrEnd:
            if (c == ']') {
                if (_commaPending)
                    return fail("trailing ',' before ']'");
                consume();
                _state = State::kAfterRecord;
                return Event::kEndRecord;
            }
            if (isNumberChar(c))
                break;  // re-enter the number branch at the loop head
            return fail("expected number or ']' in record");
          case State::kAfterValue:
            if (c == ',') {
                consume();
                _commaPending = true;
                _state = State::kExpectValueOrEnd;
                break;
            }
            if (c == ']') {
                consume();
                _state = State::kAfterRecord;
                return Event::kEndRecord;
            }
            return fail("expected ',' or ']' after value");
          case State::kAfterRecord:
            if (c == ',') {
                consume();
                _commaPending = true;
                _state = State::kExpectRecordOrEnd;
                break;
            }
            if (c == ']') {
                consume();
                _state = State::kDone;
                return Event::kEndDocument;
            }
            return fail("expected ',' or ']' after record");
          case State::kDone:
          case State::kFailed:
            break;  // handled at loop head
        }
    }
}

bool
parseJsonRecords(const std::uint8_t *data, std::size_t size,
                 JsonRecordsObject *out, ParseCost *cost)
{
    JsonRowParser parser;
    parser.feed(data, size);
    parser.finish();
    JsonRecordsObject obj;
    for (;;) {
        switch (parser.next()) {
          case JsonRowParser::Event::kBeginRecord:
            break;
          case JsonRowParser::Event::kNumber:
            obj.values.push_back(parser.value());
            break;
          case JsonRowParser::Event::kEndRecord:
            obj.recordOffsets.push_back(
                static_cast<std::uint32_t>(obj.values.size()));
            break;
          case JsonRowParser::Event::kEndDocument:
            if (cost)
                *cost += parser.cost();
            *out = std::move(obj);
            return true;
          case JsonRowParser::Event::kNeedMoreData:
          case JsonRowParser::Event::kError:
            return false;
        }
    }
}

}  // namespace morpheus::serde
