/**
 * @file
 * Text serialization into a growable byte buffer.
 *
 * TextWriter is the serialization half of the library: workload
 * generators use it to produce the text input files stored on the
 * simulated flash, and the Morpheus MWRITE path uses it for on-device
 * object serialization (ms_printf).
 */

#ifndef MORPHEUS_SERDE_WRITER_HH
#define MORPHEUS_SERDE_WRITER_HH

#include <cstdint>
#include <string_view>
#include <vector>

namespace morpheus::serde {

/** Appends ASCII-encoded values to an in-memory byte buffer. */
class TextWriter
{
  public:
    TextWriter() = default;

    /** Append a signed decimal integer. */
    void appendInt64(std::int64_t v);

    /**
     * Append a decimal floating-point number with @p precision digits
     * after the point (fixed notation; matches what our parser reads
     * back exactly for the precisions the workloads use).
     */
    void appendDouble(double v, int precision = 6);

    /** Append a literal byte. */
    void appendChar(char c) { _buf.push_back(static_cast<std::uint8_t>(c)); }

    /** Append literal bytes. */
    void appendLiteral(std::string_view s);

    /** Append a single space. */
    void space() { appendChar(' '); }

    /** Append a newline. */
    void newline() { appendChar('\n'); }

    /** Bytes written so far. */
    std::size_t size() const { return _buf.size(); }

    /** Read-only view of the buffer. */
    const std::vector<std::uint8_t> &bytes() const { return _buf; }

    /** Move the buffer out (writer becomes empty). */
    std::vector<std::uint8_t> take() { return std::move(_buf); }

    /** Reserve capacity up front for large generations. */
    void reserve(std::size_t n) { _buf.reserve(n); }

  private:
    std::vector<std::uint8_t> _buf;
};

}  // namespace morpheus::serde

#endif  // MORPHEUS_SERDE_WRITER_HH
