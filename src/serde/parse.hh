/**
 * @file
 * Low-level ASCII number scanning with operation accounting.
 *
 * These routines do the real work of deserialization in this repository:
 * they convert byte ranges into binary values, and they count every
 * operation class the timing models need (bytes scanned, integer and
 * floating-point conversions). The same functions execute on behalf of
 * the host-CPU model (baseline) and the SSD embedded-core model
 * (Morpheus); only the attached cost model differs.
 */

#ifndef MORPHEUS_SERDE_PARSE_HH
#define MORPHEUS_SERDE_PARSE_HH

#include <cstddef>
#include <cstdint>

namespace morpheus::serde {

/**
 * Operation counts accumulated while parsing; consumed by
 * host::CpuCostModel and ssd::EmbeddedCoreCostModel.
 */
struct ParseCost
{
    /** Bytes examined (including separators). */
    std::uint64_t bytes = 0;
    /** Integer values converted. */
    std::uint64_t intValues = 0;
    /** Floating-point values converted. */
    std::uint64_t floatValues = 0;
    /** Floating-point arithmetic ops performed during conversion. */
    std::uint64_t floatOps = 0;

    ParseCost &
    operator+=(const ParseCost &o)
    {
        bytes += o.bytes;
        intValues += o.intValues;
        floatValues += o.floatValues;
        floatOps += o.floatOps;
        return *this;
    }
};

/**
 * True for the token separators used by the text formats here. NUL is
 * a separator so block-granular transfers (NVMe pads files to 512-byte
 * blocks) parse identically to the exact byte stream.
 */
constexpr bool
isSeparator(std::uint8_t c)
{
    return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == ',' ||
           c == '\0';
}

/** True for ASCII decimal digits. */
constexpr bool
isDigit(std::uint8_t c)
{
    return c >= '0' && c <= '9';
}

/**
 * Advance past leading separators.
 *
 * @param p     Start of the range.
 * @param end   One past the end of the range.
 * @param cost  Accounting sink (bytes consumed are added).
 * @return Pointer to the first non-separator byte (or @p end).
 */
const std::uint8_t *skipSeparators(const std::uint8_t *p,
                                   const std::uint8_t *end,
                                   ParseCost &cost);

/**
 * Parse one signed decimal integer at @p p.
 *
 * @param p     First byte of the token (no leading separators).
 * @param end   One past the end of the range.
 * @param out   Receives the parsed value on success.
 * @param cost  Accounting sink.
 * @return Pointer just past the consumed token, or nullptr if no valid
 *         integer starts at @p p.
 */
const std::uint8_t *parseInt64(const std::uint8_t *p,
                               const std::uint8_t *end, std::int64_t *out,
                               ParseCost &cost);

/**
 * Parse one decimal floating-point number (optional sign, fraction and
 * e/E exponent) at @p p. Same contract as parseInt64().
 */
const std::uint8_t *parseDouble(const std::uint8_t *p,
                                const std::uint8_t *end, double *out,
                                ParseCost &cost);

/**
 * True when the token starting at @p p (which must not be a separator)
 * contains a '.', 'e', or 'E' before the next separator — i.e., it
 * needs floating-point conversion.
 */
bool tokenLooksFloat(const std::uint8_t *p, const std::uint8_t *end);

}  // namespace morpheus::serde

#endif  // MORPHEUS_SERDE_PARSE_HH
