#include "serde/csv.hh"

#include <cstring>
#include <utility>

#include "sim/logging.hh"

namespace morpheus::serde {

namespace {

template <typename T>
void
putLe(std::vector<std::uint8_t> &out, T v)
{
    // Byte-wise append (vector::insert over a raw pointer range trips
    // a GCC 12 -Wstringop-overflow false positive here).
    std::uint8_t raw[sizeof(T)];
    std::memcpy(raw, &v, sizeof(T));
    for (std::size_t i = 0; i < sizeof(T); ++i)
        out.push_back(raw[i]);
}

template <typename T>
T
getLe(const std::vector<std::uint8_t> &in, std::size_t &off)
{
    MORPHEUS_ASSERT(off + sizeof(T) <= in.size(),
                    "CSV binary object truncated");
    T v;
    std::memcpy(&v, in.data() + off, sizeof(T));
    off += sizeof(T);
    return v;
}

}  // namespace

std::uint64_t
CsvTableObject::objectBytes() const
{
    std::uint64_t header = 4;
    for (const auto &c : columns)
        header += 1 + c.size();
    return header + 8ULL * values.size();
}

std::vector<std::uint8_t>
CsvTableObject::toBinary() const
{
    std::vector<std::uint8_t> out;
    out.reserve(objectBytes());
    putLe(out, static_cast<std::uint32_t>(columns.size()));
    for (const auto &c : columns) {
        MORPHEUS_ASSERT(c.size() <= 255, "column name too long");
        out.push_back(static_cast<std::uint8_t>(c.size()));
        out.insert(out.end(), c.begin(), c.end());
    }
    for (const double v : values)
        putLe(out, v);
    return out;
}

CsvTableObject
CsvTableObject::fromBinary(const std::vector<std::uint8_t> &bytes)
{
    CsvTableObject o;
    std::size_t off = 0;
    const auto ncols = getLe<std::uint32_t>(bytes, off);
    for (std::uint32_t c = 0; c < ncols; ++c) {
        const auto len = getLe<std::uint8_t>(bytes, off);
        MORPHEUS_ASSERT(off + len <= bytes.size(),
                        "CSV binary header truncated");
        o.columns.emplace_back(
            reinterpret_cast<const char *>(bytes.data() + off), len);
        off += len;
    }
    MORPHEUS_ASSERT((bytes.size() - off) % 8 == 0,
                    "CSV binary payload is not whole doubles");
    const std::size_t cells = (bytes.size() - off) / 8;
    MORPHEUS_ASSERT(ncols == 0 ? cells == 0 : cells % ncols == 0,
                    "CSV binary payload is not whole rows");
    o.values.reserve(cells);
    for (std::size_t i = 0; i < cells; ++i)
        o.values.push_back(getLe<double>(bytes, off));
    return o;
}

void
CsvTableObject::serialize(TextWriter &w, int precision) const
{
    for (std::size_t c = 0; c < columns.size(); ++c) {
        if (c > 0)
            w.appendChar(',');
        w.appendChar('"');
        w.appendLiteral(columns[c]);
        w.appendChar('"');
    }
    w.newline();
    for (std::size_t r = 0; r < numRows(); ++r) {
        for (std::size_t c = 0; c < columns.size(); ++c) {
            if (c > 0)
                w.appendChar(',');
            const double v = cell(r, c);
            if (v == static_cast<double>(static_cast<std::int64_t>(v))) {
                w.appendInt64(static_cast<std::int64_t>(v));
            } else {
                w.appendDouble(v, precision);
            }
        }
        w.newline();
    }
}

void
CsvRowParser::feed(const std::uint8_t *data, std::size_t n)
{
    MORPHEUS_ASSERT(!_finished, "feed after finish");
    _buf.insert(_buf.end(), data, data + n);
}

CsvRowParser::Event
CsvRowParser::fail(const std::string &why)
{
    _state = State::kFailed;
    _error = why;
    return Event::kError;
}

CsvRowParser::Event
CsvRowParser::emitName(bool end_of_header)
{
    if (_token.empty() && !_fieldStarted)
        return fail("empty column name");
    _name = std::exchange(_token, {});
    _fieldStarted = false;
    if (end_of_header)
        _pendingHeaderDone = true;
    return Event::kColumnName;
}

CsvRowParser::Event
CsvRowParser::emitCell()
{
    if (_token.empty())
        return fail("empty cell");
    const auto *start =
        reinterpret_cast<const std::uint8_t *>(_token.data());
    const auto *end = start + _token.size();
    ParseCost convert;
    const std::uint8_t *next =
        parseDouble(start, end, &_value, convert);
    if (next != end)
        return fail("malformed cell: " + _token);
    _cost.floatValues += convert.floatValues;
    _cost.floatOps += convert.floatOps;
    _token.clear();
    _rowHasCells = true;
    return Event::kNumber;
}

CsvRowParser::Event
CsvRowParser::next()
{
    for (;;) {
        if (_state == State::kDone)
            return Event::kEndDocument;
        if (_state == State::kFailed)
            return Event::kError;
        if (_pendingHeaderDone) {
            _pendingHeaderDone = false;
            _state = State::kRowField;
            return Event::kHeaderDone;
        }
        if (_pendingEndRow) {
            _pendingEndRow = false;
            _rowHasCells = false;
            return Event::kEndRow;
        }

        if (_pos >= _buf.size()) {
            _buf.clear();
            _pos = 0;
            if (!_finished)
                return Event::kNeedMoreData;
            // End of input.
            if (_state == State::kHeaderField) {
                if (_fieldStarted || !_token.empty()) {
                    // Header-only document without trailing newline.
                    return emitName(/*end_of_header=*/true);
                }
                return fail("missing header row");
            }
            if (!_token.empty()) {
                _pendingEndRow = true;
                return emitCell();
            }
            if (_rowHasCells) {
                _rowHasCells = false;
                return Event::kEndRow;
            }
            _state = State::kDone;
            return Event::kEndDocument;
        }

        const std::uint8_t c = _buf[_pos];
        ++_pos;
        ++_cost.bytes;

        if (_state == State::kHeaderField) {
            if (_inQuotes) {
                if (c == '"') {
                    _inQuotes = false;
                } else {
                    _token.push_back(static_cast<char>(c));
                }
                continue;
            }
            if (c == '"' && !_fieldStarted) {
                _inQuotes = true;
                _fieldStarted = true;
                continue;
            }
            if (c == ',')
                return emitName(false);
            if (c == '\r')
                continue;
            if (c == '\n')
                return emitName(true);
            _fieldStarted = true;
            _token.push_back(static_cast<char>(c));
            continue;
        }

        // kRowField: numeric cells.
        if (c == ',') {
            return emitCell();
        }
        if (c == '\r')
            continue;
        if (c == '\n') {
            if (_token.empty() && !_rowHasCells)
                continue;  // blank line between rows
            _pendingEndRow = true;
            return emitCell();
        }
        if (c == ' ' || c == '\t')
            continue;  // padding around cells
        _token.push_back(static_cast<char>(c));
    }
}

bool
parseCsvTable(const std::uint8_t *data, std::size_t size,
              CsvTableObject *out, ParseCost *cost)
{
    CsvRowParser parser;
    parser.feed(data, size);
    parser.finish();
    CsvTableObject table;
    std::size_t row_cells = 0;
    for (;;) {
        switch (parser.next()) {
          case CsvRowParser::Event::kColumnName:
            table.columns.push_back(parser.name());
            break;
          case CsvRowParser::Event::kHeaderDone:
            break;
          case CsvRowParser::Event::kNumber:
            table.values.push_back(parser.value());
            ++row_cells;
            break;
          case CsvRowParser::Event::kEndRow:
            if (row_cells != table.columns.size())
                return false;  // ragged row
            row_cells = 0;
            break;
          case CsvRowParser::Event::kEndDocument:
            if (cost)
                *cost += parser.cost();
            *out = std::move(table);
            return true;
          case CsvRowParser::Event::kNeedMoreData:
          case CsvRowParser::Event::kError:
            return false;
        }
    }
}

}  // namespace morpheus::serde
