#include "serde/parse.hh"

#include <cmath>

namespace morpheus::serde {

const std::uint8_t *
skipSeparators(const std::uint8_t *p, const std::uint8_t *end,
               ParseCost &cost)
{
    const std::uint8_t *start = p;
    while (p < end && isSeparator(*p))
        ++p;
    cost.bytes += static_cast<std::uint64_t>(p - start);
    return p;
}

const std::uint8_t *
parseInt64(const std::uint8_t *p, const std::uint8_t *end,
           std::int64_t *out, ParseCost &cost)
{
    const std::uint8_t *start = p;
    bool negative = false;
    if (p < end && (*p == '-' || *p == '+')) {
        negative = (*p == '-');
        ++p;
    }
    if (p >= end || !isDigit(*p))
        return nullptr;
    std::int64_t value = 0;
    while (p < end && isDigit(*p)) {
        value = value * 10 + (*p - '0');
        ++p;
    }
    *out = negative ? -value : value;
    cost.bytes += static_cast<std::uint64_t>(p - start);
    ++cost.intValues;
    return p;
}

const std::uint8_t *
parseDouble(const std::uint8_t *p, const std::uint8_t *end, double *out,
            ParseCost &cost)
{
    const std::uint8_t *start = p;
    bool negative = false;
    if (p < end && (*p == '-' || *p == '+')) {
        negative = (*p == '-');
        ++p;
    }
    if (p >= end || (!isDigit(*p) && *p != '.'))
        return nullptr;

    // Accumulate the mantissa in integer arithmetic (how real
    // strtod-style parsers work), converting to floating point once:
    // the float-op count is therefore per value, not per digit.
    double value = 0.0;
    std::uint64_t fops = 0;
    while (p < end && isDigit(*p)) {
        value = value * 10.0 + static_cast<double>(*p - '0');
        ++p;
    }
    fops += 2;  // int->double convert + sign select
    if (p < end && *p == '.') {
        ++p;
        double scale = 0.1;
        while (p < end && isDigit(*p)) {
            value += scale * static_cast<double>(*p - '0');
            scale *= 0.1;
            ++p;
        }
        fops += 3;  // fraction convert + scale + add
    }
    if (p < end && (*p == 'e' || *p == 'E')) {
        const std::uint8_t *exp_start = p;
        ++p;
        bool exp_negative = false;
        if (p < end && (*p == '-' || *p == '+')) {
            exp_negative = (*p == '-');
            ++p;
        }
        if (p < end && isDigit(*p)) {
            int exponent = 0;
            while (p < end && isDigit(*p)) {
                exponent = exponent * 10 + (*p - '0');
                ++p;
            }
            value *= std::pow(10.0, exp_negative ? -exponent : exponent);
            fops += 6;  // exponent scale (table lookup + multiplies)
        } else {
            // Trailing 'e' with no digits is not part of the number.
            p = exp_start;
        }
    }

    *out = negative ? -value : value;
    cost.bytes += static_cast<std::uint64_t>(p - start);
    ++cost.floatValues;
    cost.floatOps += fops;
    return p;
}

bool
tokenLooksFloat(const std::uint8_t *p, const std::uint8_t *end)
{
    while (p < end && !isSeparator(*p)) {
        if (*p == '.' || *p == 'e' || *p == 'E')
            return true;
        ++p;
    }
    return false;
}

}  // namespace morpheus::serde
