#include "serde/writer.hh"

#include <array>
#include <cmath>
#include <cstdio>

#include "sim/logging.hh"

namespace morpheus::serde {

void
TextWriter::appendInt64(std::int64_t v)
{
    std::array<char, 24> tmp;
    char *p = tmp.data() + tmp.size();
    const bool negative = v < 0;
    // Build digits from the least significant end; handle INT64_MIN by
    // working in unsigned space.
    std::uint64_t u = negative
        ? ~static_cast<std::uint64_t>(v) + 1
        : static_cast<std::uint64_t>(v);
    do {
        *--p = static_cast<char>('0' + (u % 10));
        u /= 10;
    } while (u != 0);
    if (negative)
        *--p = '-';
    appendLiteral(std::string_view(p, static_cast<std::size_t>(
                                          tmp.data() + tmp.size() - p)));
}

void
TextWriter::appendDouble(double v, int precision)
{
    MORPHEUS_ASSERT(precision >= 0 && precision <= 17,
                    "unsupported precision");
    std::array<char, 64> tmp;
    const int n = std::snprintf(tmp.data(), tmp.size(), "%.*f",
                                precision, v);
    MORPHEUS_ASSERT(n > 0 && static_cast<std::size_t>(n) < tmp.size(),
                    "double formatting overflow");
    appendLiteral(std::string_view(tmp.data(), static_cast<std::size_t>(n)));
}

void
TextWriter::appendLiteral(std::string_view s)
{
    _buf.insert(_buf.end(), s.begin(), s.end());
}

}  // namespace morpheus::serde
