#include "flash/flash_array.hh"

#include <algorithm>
#include <utility>

#include "sim/fault.hh"
#include "sim/logging.hh"

namespace morpheus::flash {

FlashArray::FlashArray(sim::EventQueue &eq, const FlashConfig &config)
    : _eq(eq), _config(config)
{
    MORPHEUS_ASSERT(_config.channels > 0 && _config.diesPerChannel > 0,
                    "flash geometry is empty");
    _dieTimelines.reserve(_config.dies());
    for (unsigned c = 0; c < _config.channels; ++c) {
        for (unsigned d = 0; d < _config.diesPerChannel; ++d) {
            _dieTimelines.emplace_back(
                "flash.die[" + std::to_string(c) + "." +
                std::to_string(d) + "]");
        }
    }
    _channelTimelines.reserve(_config.channels);
    for (unsigned c = 0; c < _config.channels; ++c)
        _channelTimelines.emplace_back("flash.ch[" + std::to_string(c) +
                                       "]");
}

std::uint64_t
FlashArray::flatPage(const PagePointer &addr) const
{
    checkPageAddr(addr);
    std::uint64_t idx = addr.channel;
    idx = idx * _config.diesPerChannel + addr.die;
    idx = idx * _config.planesPerDie + addr.plane;
    idx = idx * _config.blocksPerPlane + addr.block;
    idx = idx * _config.pagesPerBlock + addr.page;
    return idx;
}

std::uint64_t
FlashArray::flatBlock(const BlockPointer &addr) const
{
    std::uint64_t idx = addr.channel;
    idx = idx * _config.diesPerChannel + addr.die;
    idx = idx * _config.planesPerDie + addr.plane;
    idx = idx * _config.blocksPerPlane + addr.block;
    return idx;
}

void
FlashArray::checkPageAddr(const PagePointer &addr) const
{
    MORPHEUS_ASSERT(addr.channel < _config.channels &&
                        addr.die < _config.diesPerChannel &&
                        addr.plane < _config.planesPerDie &&
                        addr.block < _config.blocksPerPlane &&
                        addr.page < _config.pagesPerBlock,
                    "flash address out of range");
}

sim::Timeline &
FlashArray::die(unsigned channel, unsigned die_idx)
{
    return _dieTimelines[channel * _config.diesPerChannel + die_idx];
}

const sim::Timeline &
FlashArray::die(unsigned channel, unsigned die_idx) const
{
    return _dieTimelines[channel * _config.diesPerChannel + die_idx];
}

const sim::Timeline &
FlashArray::dieTimeline(unsigned channel, unsigned die_idx) const
{
    return die(channel, die_idx);
}

sim::Tick
FlashArray::read(const PagePointer &addr, sim::Tick earliest,
                 ReadCallback cb, bool *uncorrectable)
{
    const std::uint64_t idx = flatPage(addr);
    const auto it = _pages.find(idx);
    MORPHEUS_ASSERT(it != _pages.end(), "reading an unprogrammed page");

    // The die performs the cell read (tR), then the channel bus streams
    // the page out.
    const sim::Tick read_done =
        die(addr.channel, addr.die)
            .acquireUntil(earliest, _config.readLatency);
    const sim::Tick xfer = sim::transferTicks(_config.pageBytes,
                                              _config.channelBytesPerSec);
    const sim::Tick done =
        _channelTimelines[addr.channel].acquireUntil(read_done, xfer);

    ++_reads;
    _bytesRead += _config.pageBytes;

    // One uncorrectable-read draw per page access, consumed whether or
    // not the caller cares, so the fault schedule depends only on the
    // sequence of page reads.
    if (auto *fi = sim::faultInjector()) {
        if (fi->mediaError() && uncorrectable)
            *uncorrectable = true;
    }

    if (cb) {
        std::vector<std::uint8_t> data = it->second;
        _eq.schedule(done,
                     [cb = std::move(cb), done,
                      data = std::move(data)]() mutable {
                         cb(done, std::move(data));
                     },
                     "flash.read.done");
    }
    return done;
}

sim::Tick
FlashArray::program(const PagePointer &addr,
                    std::vector<std::uint8_t> data, sim::Tick earliest,
                    DoneCallback cb)
{
    MORPHEUS_ASSERT(data.size() <= _config.pageBytes,
                    "programming more than a page: ", data.size());
    const std::uint64_t idx = flatPage(addr);
    MORPHEUS_ASSERT(_pages.find(idx) == _pages.end(),
                    "program to a non-erased page (write-once violated)");

    const std::uint64_t blk =
        flatBlock({addr.channel, addr.die, addr.plane, addr.block});
    unsigned &next = _nextProgramPage[blk];
    MORPHEUS_ASSERT(addr.page == next,
                    "out-of-order program within block: page=", addr.page,
                    " expected=", next);
    ++next;

    // Channel bus streams the data in, then the die programs (tPROG).
    const sim::Tick xfer = sim::transferTicks(_config.pageBytes,
                                              _config.channelBytesPerSec);
    const sim::Tick in_done =
        _channelTimelines[addr.channel].acquireUntil(earliest, xfer);
    const sim::Tick done =
        die(addr.channel, addr.die)
            .acquireUntil(in_done, _config.programLatency);

    data.resize(_config.pageBytes, 0);
    _pages.emplace(idx, std::move(data));

    ++_programs;
    _bytesProgrammed += _config.pageBytes;

    if (cb) {
        _eq.schedule(done, [cb = std::move(cb), done]() { cb(done); },
                     "flash.program.done");
    }
    return done;
}

sim::Tick
FlashArray::erase(const BlockPointer &addr, sim::Tick earliest,
                  DoneCallback cb)
{
    const std::uint64_t blk = flatBlock(addr);
    for (unsigned p = 0; p < _config.pagesPerBlock; ++p)
        _pages.erase(flatPage(addr.pageAt(p)));
    _nextProgramPage[blk] = 0;
    ++_eraseCounts[blk];

    const sim::Tick done =
        die(addr.channel, addr.die)
            .acquireUntil(earliest, _config.eraseLatency);
    ++_erases;
    if (cb) {
        _eq.schedule(done, [cb = std::move(cb), done]() { cb(done); },
                     "flash.erase.done");
    }
    return done;
}

sim::Tick
FlashArray::estimateReadDone(const PagePointer &addr,
                             sim::Tick earliest) const
{
    const sim::Timeline &d = die(addr.channel, addr.die);
    const sim::Tick start = std::max(earliest, d.freeAt());
    const sim::Tick read_done = start + _config.readLatency;
    const sim::Tick ch_start =
        std::max(read_done, _channelTimelines[addr.channel].freeAt());
    return ch_start + sim::transferTicks(_config.pageBytes,
                                         _config.channelBytesPerSec);
}

bool
FlashArray::isProgrammed(const PagePointer &addr) const
{
    return _pages.find(flatPage(addr)) != _pages.end();
}

const std::vector<std::uint8_t> &
FlashArray::peek(const PagePointer &addr) const
{
    const auto it = _pages.find(flatPage(addr));
    MORPHEUS_ASSERT(it != _pages.end(), "peek at an unprogrammed page");
    return it->second;
}

std::uint64_t
FlashArray::eraseCount(const BlockPointer &addr) const
{
    const auto it = _eraseCounts.find(flatBlock(addr));
    return it == _eraseCounts.end() ? 0 : it->second;
}

void
FlashArray::registerStats(sim::stats::StatSet &set,
                          const std::string &prefix) const
{
    set.registerCounter(prefix + ".reads", &_reads);
    set.registerCounter(prefix + ".programs", &_programs);
    set.registerCounter(prefix + ".erases", &_erases);
    set.registerCounter(prefix + ".bytesRead", &_bytesRead);
    set.registerCounter(prefix + ".bytesProgrammed", &_bytesProgrammed);
}

}  // namespace morpheus::flash
