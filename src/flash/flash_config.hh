/**
 * @file
 * Geometry and timing parameters of the simulated NAND flash array.
 */

#ifndef MORPHEUS_FLASH_FLASH_CONFIG_HH
#define MORPHEUS_FLASH_FLASH_CONFIG_HH

#include <cstdint>

#include "sim/types.hh"

namespace morpheus::flash {

/**
 * NAND array geometry + timing. Defaults model a 512 GiB MLC drive of
 * the paper's era: 8 channels of 4 dies, 16 KiB pages, ~60 us tR,
 * ~600 us tPROG, ~3 ms tBERS, 400 MB/s per channel bus (ONFI 3.x).
 */
struct FlashConfig
{
    unsigned channels = 8;
    unsigned diesPerChannel = 4;
    unsigned planesPerDie = 2;
    unsigned blocksPerPlane = 2048;
    unsigned pagesPerBlock = 256;
    std::uint32_t pageBytes = 16 * 1024;

    sim::Tick readLatency = 60 * sim::kPsPerUs;
    sim::Tick programLatency = 600 * sim::kPsPerUs;
    sim::Tick eraseLatency = 3 * sim::kPsPerMs;

    /** Per-channel bus bandwidth (data transfer to/from dies). */
    double channelBytesPerSec = 400.0 * sim::kMBps;

    unsigned dies() const { return channels * diesPerChannel; }
    unsigned planes() const { return dies() * planesPerDie; }

    std::uint64_t
    blocks() const
    {
        return static_cast<std::uint64_t>(planes()) * blocksPerPlane;
    }

    std::uint64_t
    pages() const
    {
        return blocks() * pagesPerBlock;
    }

    std::uint64_t
    capacityBytes() const
    {
        return pages() * pageBytes;
    }
};

/** Physical address of one flash page. */
struct PagePointer
{
    unsigned channel = 0;
    unsigned die = 0;
    unsigned plane = 0;
    unsigned block = 0;
    unsigned page = 0;

    bool operator==(const PagePointer &) const = default;
};

/** Physical address of one flash block (erase unit). */
struct BlockPointer
{
    unsigned channel = 0;
    unsigned die = 0;
    unsigned plane = 0;
    unsigned block = 0;

    bool operator==(const BlockPointer &) const = default;

    PagePointer
    pageAt(unsigned page) const
    {
        return PagePointer{channel, die, plane, block, page};
    }
};

}  // namespace morpheus::flash

#endif  // MORPHEUS_FLASH_FLASH_CONFIG_HH
