/**
 * @file
 * Functional + timed NAND flash array.
 *
 * The array stores real page contents (lazily allocated) and enforces
 * NAND programming rules: a page must be erased before it is
 * programmed, pages within a block are programmed in order, and erase
 * operates on whole blocks. Timing is modeled with one Timeline per die
 * (tR / tPROG / tBERS occupancy) and one per channel (data transfer
 * occupancy), so multi-channel and multi-die parallelism emerge
 * naturally.
 */

#ifndef MORPHEUS_FLASH_FLASH_ARRAY_HH
#define MORPHEUS_FLASH_FLASH_ARRAY_HH

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "flash/flash_config.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/timeline.hh"

namespace morpheus::flash {

/** NAND flash array: geometry, timing, and page contents. */
class FlashArray
{
  public:
    /** Completion callback for reads: (completion tick, page data). */
    using ReadCallback =
        std::function<void(sim::Tick, std::vector<std::uint8_t>)>;
    /** Completion callback for programs and erases. */
    using DoneCallback = std::function<void(sim::Tick)>;

    FlashArray(sim::EventQueue &eq, const FlashConfig &config);

    const FlashConfig &config() const { return _config; }

    /**
     * Read one page.
     *
     * @param addr     Page to read; must be programmed.
     * @param earliest First tick at which the die may start.
     * @param cb       Optional; invoked (via the event queue) at
     *                 completion with a copy of the page contents.
     * @param uncorrectable  Optional fault-injection out-param: set to
     *                 true when the installed sim::FaultInjector makes
     *                 this read come back uncorrectable (the full
     *                 tR + transfer time is still charged — read retry
     *                 consumes the access either way). Never written
     *                 when no injector is installed.
     * @return Completion tick (known eagerly: timelines reserve at
     *         issue time). This per-page tick is the contract the
     *         streaming pipeline builds on: the FTL forwards it per
     *         page (Ftl::readPages page_ticks), so a chunk's consumer
     *         can start at the first page's arrival, not the last's.
     */
    sim::Tick read(const PagePointer &addr, sim::Tick earliest,
                   ReadCallback cb = nullptr,
                   bool *uncorrectable = nullptr);

    /**
     * Program one page. Enforces erase-before-program and in-order
     * programming within the block.
     */
    sim::Tick program(const PagePointer &addr,
                      std::vector<std::uint8_t> data, sim::Tick earliest,
                      DoneCallback cb = nullptr);

    /** Erase one block, releasing all of its pages. */
    sim::Tick erase(const BlockPointer &addr, sim::Tick earliest,
                    DoneCallback cb = nullptr);

    /**
     * Earliest completion tick if a read of @p addr started no earlier
     * than @p earliest — without reserving anything. Used by schedulers.
     */
    sim::Tick estimateReadDone(const PagePointer &addr,
                               sim::Tick earliest) const;

    /** Whether the page currently holds programmed data. */
    bool isProgrammed(const PagePointer &addr) const;

    /** Direct (zero-time) read for test validation; page must exist. */
    const std::vector<std::uint8_t> &peek(const PagePointer &addr) const;

    /** Erase count of a block (wear). */
    std::uint64_t eraseCount(const BlockPointer &addr) const;

    /** Busy-time of a die timeline (for utilization reporting). */
    const sim::Timeline &dieTimeline(unsigned channel, unsigned die) const;

    void registerStats(sim::stats::StatSet &set,
                       const std::string &prefix) const;

    const sim::stats::Counter &readsIssued() const { return _reads; }
    const sim::stats::Counter &programsIssued() const { return _programs; }
    const sim::stats::Counter &erasesIssued() const { return _erases; }

  private:
    std::uint64_t flatPage(const PagePointer &addr) const;
    std::uint64_t flatBlock(const BlockPointer &addr) const;
    void checkPageAddr(const PagePointer &addr) const;

    sim::Timeline &die(unsigned channel, unsigned die_idx);
    const sim::Timeline &die(unsigned channel, unsigned die_idx) const;

    sim::EventQueue &_eq;
    FlashConfig _config;

    /** One occupancy timeline per die and per channel bus. */
    std::vector<sim::Timeline> _dieTimelines;
    std::vector<sim::Timeline> _channelTimelines;

    /** Programmed page contents, keyed by flat page index. */
    std::unordered_map<std::uint64_t, std::vector<std::uint8_t>> _pages;
    /** Next in-order programmable page per block (absent => 0). */
    std::unordered_map<std::uint64_t, unsigned> _nextProgramPage;
    /** Erase counts per block (absent => 0). */
    std::unordered_map<std::uint64_t, std::uint64_t> _eraseCounts;

    sim::stats::Counter _reads;
    sim::stats::Counter _programs;
    sim::stats::Counter _erases;
    sim::stats::Counter _bytesRead;
    sim::stats::Counter _bytesProgrammed;
};

}  // namespace morpheus::flash

#endif  // MORPHEUS_FLASH_FLASH_ARRAY_HH
