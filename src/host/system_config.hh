/**
 * @file
 * Master configuration of the simulated platform (paper §VI-A).
 *
 * One struct gathers every calibration knob. Defaults reproduce the
 * paper's testbed: quad-core Ivy Bridge EP Xeon at 1.2-2.5 GHz,
 * 16 GiB DDR3, NVIDIA K20 over PCIe 3.0 x16, and a 512 GB NVMe SSD
 * over PCIe 3.0 x4 whose Microsemi controller carries four FPU-less
 * embedded cores and 2 GiB of DRAM.
 */

#ifndef MORPHEUS_HOST_SYSTEM_CONFIG_HH
#define MORPHEUS_HOST_SYSTEM_CONFIG_HH

#include <vector>

#include "host/cpu_model.hh"
#include "host/gpu_model.hh"
#include "host/host_memory.hh"
#include "host/os_model.hh"
#include "host/power_model.hh"
#include "pcie/pcie.hh"
#include "ssd/ssd_controller.hh"

namespace morpheus::host {

/** Everything needed to build a HostSystem. */
struct SystemConfig
{
    CpuConfig cpu;
    OsConfig os;
    HostMemoryConfig mem;
    GpuConfig gpu;
    PowerConfig power;
    ssd::SsdConfig ssd;

    /** Host root-complex uplink (wide; never the bottleneck). */
    pcie::LinkConfig hostLink{3, 16, 300 * sim::kPsPerNs};
    /** SSD link: PCIe 3.0 x4 (paper §VI-A). */
    pcie::LinkConfig ssdLink{3, 4, 500 * sim::kPsPerNs};
    /** GPU link: PCIe 3.0 x16. */
    pcie::LinkConfig gpuLink{3, 16, 500 * sim::kPsPerNs};

    /** I/O queue depth per NVMe queue pair. */
    std::uint16_t queueEntries = 256;
    /** Number of I/O queue pairs per device (one per core). */
    unsigned ioQueues = 4;

    /**
     * Number of SSDs behind the switch — the shard fleet size. The
     * default single device is bit-identical to the pre-fleet
     * platform: same port numbering, queue rings, trace tracks, and
     * trace ids. Devices beyond the first get ports after the GPU's,
     * labels "dev1", "dev2", ... and their own NVMe driver + queue
     * pairs + trace-id block.
     */
    unsigned numSsds = 1;

    /** Per-device geometry overrides (FleetTopology fills this from
     *  JSON). Device d uses ssdConfigs[d] when present, else the
     *  template `ssd` above. */
    std::vector<ssd::SsdConfig> ssdConfigs;

    /** Link overrides for extra SSD ports: device d >= 1 uses
     *  ssdLinks[d-1] when present, else `ssdLink`. */
    std::vector<pcie::LinkConfig> ssdLinks;

    /** Bus address where the GPU BAR window is mapped by NVMe-P2P. */
    pcie::Addr gpuBarBase = 1ULL << 40;
};

}  // namespace morpheus::host

#endif  // MORPHEUS_HOST_SYSTEM_CONFIG_HH
