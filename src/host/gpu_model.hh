/**
 * @file
 * Discrete GPU model (NVIDIA K20 class: 2496 CUDA cores, 5 GB GDDR5,
 * PCIe 3.0 x16).
 *
 * Device memory is a functional store and a pcie::BusTarget, so the
 * SSD can DMA application objects straight into it once NVMe-P2P maps
 * it into a BAR window (paper §IV-C). Kernels are timed with a
 * roofline model (compute vs. memory bound); their numerical results
 * are produced functionally by the workload code so every execution
 * path can be validated.
 */

#ifndef MORPHEUS_HOST_GPU_MODEL_HH
#define MORPHEUS_HOST_GPU_MODEL_HH

#include <algorithm>
#include <cstdint>

#include "host/sparse_memory.hh"
#include "pcie/pcie.hh"
#include "sim/stats.hh"
#include "sim/timeline.hh"

namespace morpheus::host {

/** GPU parameters (defaults: NVIDIA Tesla K20). */
struct GpuConfig
{
    unsigned cudaCores = 2496;
    double clockHz = 706e6;
    std::uint64_t memBytes = 5ULL * sim::kGiB;
    double memBytesPerSec = 208.0 * sim::kGBps;  // GDDR5
    /** Sustained fraction of peak FLOPs real kernels reach. */
    double efficiency = 0.35;
    /**
     * Effective cudaMemcpy H2D bandwidth for pageable host memory
     * (staged through a pinned bounce buffer; well below the x16 link
     * rate on K20-era systems).
     */
    double h2dBytesPerSec = 3.3 * sim::kGBps;
    /** FLOPs per core per clock (FMA). */
    double flopsPerCoreCycle = 2.0;

    double
    peakFlops() const
    {
        return cudaCores * clockHz * flopsPerCoreCycle;
    }

    double
    sustainedFlops() const
    {
        return peakFlops() * efficiency;
    }
};

/** The discrete GPU device. */
class Gpu : public pcie::BusTarget
{
  public:
    Gpu(pcie::PcieSwitch &fabric, pcie::PortId port,
        const GpuConfig &config)
        : _fabric(fabric), _port(port), _config(config),
          _mem(config.memBytes)
    {}

    const GpuConfig &config() const { return _config; }
    pcie::PortId port() const { return _port; }
    SparseMemory &mem() { return _mem; }

    // BusTarget: device-memory window (offsets are device addresses).
    void
    busWrite(pcie::Addr offset, const std::uint8_t *data,
             std::size_t n) override
    {
        _mem.write(offset, data, n);
        _bytesDmaIn += n;
    }

    void
    busRead(pcie::Addr offset, std::uint8_t *out,
            std::size_t n) const override
    {
        _mem.read(offset, out, n);
    }

    /** Bump allocator for device buffers. @return device address. */
    std::uint64_t
    alloc(std::uint64_t bytes)
    {
        const std::uint64_t addr = _allocTop;
        _allocTop += (bytes + 255) & ~std::uint64_t(255);
        return addr;
    }

    /** Release everything allocated (between benchmark runs). */
    void resetAllocator() { _allocTop = 0; }

    /**
     * Time one kernel launch with @p flop floating-point work touching
     * @p mem_bytes of device memory (roofline: the slower of the
     * compute and bandwidth bounds), plus launch overhead.
     */
    sim::Tick
    kernel(double flop, std::uint64_t mem_bytes, sim::Tick earliest)
    {
        ++_kernels;
        const double t_compute = flop / _config.sustainedFlops();
        const double t_mem = static_cast<double>(mem_bytes) /
                             _config.memBytesPerSec;
        const sim::Tick dur =
            sim::secondsToTicks(t_compute > t_mem ? t_compute : t_mem) +
            kLaunchOverhead;
        return _sm.acquireUntil(earliest, dur);
    }

    /**
     * cudaMemcpy host->device: the GPU's copy engine reads host memory
     * across PCIe and lands the bytes in device memory.
     */
    sim::Tick
    copyFromHost(pcie::Addr host_addr, std::uint64_t dev_addr,
                 const std::uint8_t *data, std::size_t n,
                 sim::Tick earliest)
    {
        _mem.write(dev_addr, data, n);
        _bytesDmaIn += n;
        sim::Tick link_done =
            _fabric.dmaRead(_port, host_addr, n, earliest);
        // Injected transient faults on the copy are replayed by the
        // copy engine (bounded so a rate of 1.0 cannot spin forever).
        for (unsigned tries = 0; _fabric.consumeDmaFault() && tries < 8;
             ++tries) {
            link_done = _fabric.dmaRead(_port, host_addr, n, link_done);
        }
        // Pageable-memory staging bounds the effective rate.
        const sim::Tick staged =
            earliest + sim::transferTicks(n, _config.h2dBytesPerSec);
        return std::max(link_done, staged);
    }

    std::uint64_t kernelsLaunched() const { return _kernels.value(); }
    std::uint64_t bytesDmaIn() const { return _bytesDmaIn.value(); }
    const sim::Timeline &smTimeline() const { return _sm; }

    void
    registerStats(sim::stats::StatSet &set,
                  const std::string &prefix) const
    {
        set.registerCounter(prefix + ".kernels", &_kernels);
        set.registerCounter(prefix + ".bytesDmaIn", &_bytesDmaIn);
    }

  private:
    static constexpr sim::Tick kLaunchOverhead = 8 * sim::kPsPerUs;

    pcie::PcieSwitch &_fabric;
    pcie::PortId _port;
    GpuConfig _config;
    SparseMemory _mem;
    sim::Timeline _sm{"gpu.sm"};
    std::uint64_t _allocTop = 0;
    sim::stats::Counter _kernels;
    sim::stats::Counter _bytesDmaIn;
};

}  // namespace morpheus::host

#endif  // MORPHEUS_HOST_GPU_MODEL_HH
