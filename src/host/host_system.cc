#include "host/host_system.hh"

#include "sim/fault.hh"
#include "sim/logging.hh"

namespace morpheus::host {

namespace {

/** Queue rings live in a small reserved region of host DRAM. */
constexpr pcie::Addr kQueueRingBase = 1 * sim::kMiB;
/** General allocations start above the ingest scratch area. */
constexpr pcie::Addr kAllocBase = 9ULL * sim::kGiB;

}  // namespace

HostSystem::HostSystem(const SystemConfig &config)
    : _config(config),
      _hostPort(_fabric.addPort("host", config.hostLink)),
      _ssdPort(_fabric.addPort("ssd", config.ssdLink)),
      _gpuPort(_fabric.addPort("gpu", config.gpuLink)),
      _mem(config.mem),
      _cpu(config.cpu),
      _os(config.os, _cpu),
      _power(config.power),
      _ssd(std::make_unique<ssd::SsdController>(_eq, _fabric, _ssdPort,
                                                config.ssd)),
      _gpu(std::make_unique<Gpu>(_fabric, _gpuPort, config.gpu)),
      _driver(_ssd->nvme()),
      _hostAllocTop(kAllocBase),
      _hostAllocBase(kAllocBase),
      _nextFileByte(0)
{
    MORPHEUS_ASSERT(_hostPort == 0,
                    "host root complex must be port 0 by convention");
    // Host DRAM window at bus address 0.
    _fabric.mapWindow(0, _mem.config().size, _hostPort, "host-dram",
                      &_mem);
    const unsigned queues =
        config.ioQueues == 0 ? 1 : config.ioQueues;
    for (unsigned q = 0; q < queues; ++q) {
        _ioQueues.push_back(_driver.openQueue(
            config.queueEntries,
            kQueueRingBase + q * 64 * sim::kKiB,
            kQueueRingBase + 512 * sim::kKiB + q * 64 * sim::kKiB));
    }
    _ssdBackend = std::make_unique<NvmeBackend>(
        _driver, _ioQueues.front(), _mem);
}

pcie::Addr
HostSystem::allocHost(std::uint64_t bytes)
{
    const pcie::Addr addr = _hostAllocTop;
    _hostAllocTop += (bytes + 4095) & ~std::uint64_t(4095);
    MORPHEUS_ASSERT(_hostAllocTop <= _mem.config().size,
                    "host memory allocator exhausted");
    return addr;
}

void
HostSystem::resetHostAllocator()
{
    _hostAllocTop = _hostAllocBase;
}

FileExtent
HostSystem::createFile(const std::string &name,
                       const std::vector<std::uint8_t> &data)
{
    MORPHEUS_ASSERT(_files.find(name) == _files.end(),
                    "file already exists: ", name);
    const std::uint32_t page = _ssd->ftl().pageBytes();

    FileExtent extent;
    extent.name = name;
    extent.startByte = _nextFileByte;
    extent.sizeBytes = data.size();
    _nextFileByte +=
        ((data.size() + page - 1) / page) * std::uint64_t(page);

    extent.readyAt = _ssdBackend->ingest(extent.startByte, data);
    _files.emplace(name, extent);
    return extent;
}

const FileExtent &
HostSystem::file(const std::string &name) const
{
    const auto it = _files.find(name);
    MORPHEUS_ASSERT(it != _files.end(), "no such file: ", name);
    return it->second;
}

std::vector<std::uint8_t>
HostSystem::fileBytes(const FileExtent &extent) const
{
    return _ssd->peekBytes(extent.startByte, extent.sizeBytes);
}

void
HostSystem::registerStats(sim::stats::StatSet &set)
{
    _ssd->registerStats(set, "ssd");
    _mem.registerStats(set, "host.mem");
    _os.registerStats(set, "host.os");
    _cpu.registerStats(set, "host.cpu");
    _gpu->registerStats(set, "gpu");
    _fabric.registerStats(set, "pcie");
    if (auto *fi = sim::faultInjector()) {
        // Federates into the run-wide registry as sys.faults.*.
        fi->registerStats(set, "faults");
    }
}

}  // namespace morpheus::host
