#include "host/host_system.hh"

#include "sim/fault.hh"
#include "sim/logging.hh"

namespace morpheus::host {

namespace {

/** Queue rings live in a small reserved region of host DRAM; each
 *  device's rings occupy a disjoint 1 MiB stripe. */
constexpr pcie::Addr kQueueRingBase = 1 * sim::kMiB;
constexpr pcie::Addr kQueueRingStride = 1 * sim::kMiB;
/** General allocations start above the ingest scratch area. */
constexpr pcie::Addr kAllocBase = 9ULL * sim::kGiB;
/** Fleet-only controller-memory-buffer BAR windows (P2P rebalance). */
constexpr pcie::Addr kCmbBase = 1ULL << 44;
constexpr std::uint64_t kCmbStride = 16 * sim::kMiB;

}  // namespace

ssd::SsdConfig
HostSystem::deviceConfig(unsigned d) const
{
    ssd::SsdConfig cfg = d < _config.ssdConfigs.size()
                             ? _config.ssdConfigs[d]
                             : _config.ssd;
    // Device 0 keeps its (normally empty) label so the single-SSD
    // trace tracks stay bit-identical; fleet devices get one.
    if (d > 0 && cfg.label.empty())
        cfg.label = "dev" + std::to_string(d);
    return cfg;
}

HostSystem::HostSystem(const SystemConfig &config)
    : _config(config),
      _hostPort(_fabric.addPort("host", config.hostLink)),
      _ssdPorts{_fabric.addPort("ssd", config.ssdLink)},
      _gpuPort(_fabric.addPort("gpu", config.gpuLink)),
      _mem(config.mem),
      _cpu(config.cpu),
      _os(config.os, _cpu),
      _power(config.power),
      _gpu(std::make_unique<Gpu>(_fabric, _gpuPort, config.gpu)),
      _hostAllocTop(kAllocBase),
      _hostAllocBase(kAllocBase)
{
    MORPHEUS_ASSERT(_hostPort == 0,
                    "host root complex must be port 0 by convention");
    const unsigned num_ssds = config.numSsds == 0 ? 1 : config.numSsds;
    // Host DRAM window at bus address 0.
    _fabric.mapWindow(0, _mem.config().size, _hostPort, "host-dram",
                      &_mem);

    // Extra fleet SSDs take ports after the GPU's so the classic
    // host/ssd/gpu numbering (and every single-SSD trace) is
    // untouched.
    for (unsigned d = 1; d < num_ssds; ++d) {
        const pcie::LinkConfig link = d - 1 < config.ssdLinks.size()
                                          ? config.ssdLinks[d - 1]
                                          : config.ssdLink;
        _ssdPorts.push_back(
            _fabric.addPort("ssd" + std::to_string(d), link));
    }

    const unsigned queues = config.ioQueues == 0 ? 1 : config.ioQueues;
    MORPHEUS_ASSERT(queues <= 8,
                    "queue rings overflow their per-device stripe");
    MORPHEUS_ASSERT(kQueueRingBase + num_ssds * kQueueRingStride <
                        8ULL * sim::kGiB,
                    "queue rings collide with the ingest scratch area");
    for (unsigned d = 0; d < num_ssds; ++d) {
        _ssds.push_back(std::make_unique<ssd::SsdController>(
            _eq, _fabric, _ssdPorts[d], deviceConfig(d)));
        auto driver = std::make_unique<nvme::NvmeDriver>(
            _ssds[d]->nvme());
        if (d > 0) {
            // Device d's host-side tracks and trace-id block; device 0
            // keeps base 0 / no prefix, bit-identical to pre-fleet.
            driver->setTrackPrefix(_ssds[d]->trackPrefix());
            driver->setTraceIdBase(static_cast<obs::TraceId>(d) << 24);
        }
        _drivers.push_back(std::move(driver));

        const pcie::Addr ring_base =
            kQueueRingBase + d * kQueueRingStride;
        std::vector<std::uint16_t> dev_queues;
        for (unsigned q = 0; q < queues; ++q) {
            dev_queues.push_back(_drivers[d]->openQueue(
                config.queueEntries,
                ring_base + q * 64 * sim::kKiB,
                ring_base + 512 * sim::kKiB + q * 64 * sim::kKiB));
        }
        _ioQueues.push_back(std::move(dev_queues));
        _ssdBackends.push_back(std::make_unique<NvmeBackend>(
            *_drivers[d], _ioQueues[d].front(), _mem));
        _nextFileByte.push_back(0);
    }

    if (num_ssds > 1) {
        // Controller-memory-buffer windows: a timed DMA target on each
        // device for SSD-to-SSD shard rebalancing over the switch.
        // Mapped only for fleets so the single-SSD address map (and
        // every routing decision) is unchanged.
        for (unsigned d = 0; d < num_ssds; ++d) {
            _fabric.mapWindow(cmbBase(d), kCmbStride, _ssdPorts[d],
                              "ssd" + std::to_string(d) + "-cmb");
        }
    }
}

pcie::Addr
HostSystem::cmbBase(unsigned device) const
{
    return kCmbBase + device * kCmbStride;
}

pcie::Addr
HostSystem::allocHost(std::uint64_t bytes)
{
    const pcie::Addr addr = _hostAllocTop;
    _hostAllocTop += (bytes + 4095) & ~std::uint64_t(4095);
    MORPHEUS_ASSERT(_hostAllocTop <= _mem.config().size,
                    "host memory allocator exhausted");
    return addr;
}

void
HostSystem::resetHostAllocator()
{
    _hostAllocTop = _hostAllocBase;
}

FileExtent
HostSystem::createFile(const std::string &name,
                       const std::vector<std::uint8_t> &data)
{
    return createFileOn(0, name, data);
}

FileExtent
HostSystem::createFileOn(unsigned device, const std::string &name,
                         const std::vector<std::uint8_t> &data)
{
    FileExtent extent = reserveExtent(device, name, data.size());
    extent.readyAt = _ssdBackends[device]->ingest(extent.startByte, data);
    _files[name] = extent;
    return extent;
}

FileExtent
HostSystem::reserveExtent(unsigned device, const std::string &name,
                          std::uint64_t size_bytes)
{
    MORPHEUS_ASSERT(_files.find(name) == _files.end(),
                    "file already exists: ", name);
    MORPHEUS_ASSERT(device < numSsds(), "no such device: ", device);
    const std::uint32_t page = _ssds[device]->ftl().pageBytes();

    FileExtent extent;
    extent.name = name;
    extent.deviceId = device;
    extent.startByte = _nextFileByte[device];
    extent.sizeBytes = size_bytes;
    _nextFileByte[device] +=
        ((size_bytes + page - 1) / page) * std::uint64_t(page);
    _files.emplace(name, extent);
    return extent;
}

const FileExtent &
HostSystem::file(const std::string &name) const
{
    const auto it = _files.find(name);
    MORPHEUS_ASSERT(it != _files.end(), "no such file: ", name);
    return it->second;
}

std::vector<std::uint8_t>
HostSystem::fileBytes(const FileExtent &extent) const
{
    return _ssds.at(extent.deviceId)
        ->peekBytes(extent.startByte, extent.sizeBytes);
}

void
HostSystem::registerStats(sim::stats::StatSet &set)
{
    // Device 0 keeps the classic "ssd" prefix; fleet devices federate
    // under "ssd1", "ssd2", ... matching their port names.
    for (unsigned d = 0; d < numSsds(); ++d) {
        _ssds[d]->registerStats(
            set, d == 0 ? "ssd" : "ssd" + std::to_string(d));
    }
    _mem.registerStats(set, "host.mem");
    _os.registerStats(set, "host.os");
    _cpu.registerStats(set, "host.cpu");
    _gpu->registerStats(set, "gpu");
    _fabric.registerStats(set, "pcie");
    if (auto *fi = sim::faultInjector()) {
        // Federates into the run-wide registry as sys.faults.*.
        fi->registerStats(set, "faults");
    }
}

}  // namespace morpheus::host
