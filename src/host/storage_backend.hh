/**
 * @file
 * Storage backends for the Fig 3 device comparison.
 *
 * The conventional deserialization path is measured against three
 * devices: the NVMe SSD (the full simulated device), a SATA magnetic
 * disk (158 MB/s sustained, seek-limited on non-sequential access),
 * and a RAM drive carved out of host DRAM. Each backend delivers real
 * bytes into host memory and returns the tick at which the data is
 * available.
 */

#ifndef MORPHEUS_HOST_STORAGE_BACKEND_HH
#define MORPHEUS_HOST_STORAGE_BACKEND_HH

#include <cstdint>
#include <string>
#include <vector>

#include "host/host_memory.hh"
#include "nvme/driver.hh"
#include "sim/timeline.hh"

namespace morpheus::host {

/** A device files can be read from. */
class StorageBackend
{
  public:
    virtual ~StorageBackend() = default;

    virtual std::string name() const = 0;

    /** Store file bytes at @p offset in the device's address space
     *  (setup step; timing is not part of any measured phase).
     *  @return tick at which the device is quiescent again. */
    virtual sim::Tick ingest(std::uint64_t offset,
                             const std::vector<std::uint8_t> &data) = 0;

    /**
     * Read @p len bytes at @p offset into host memory at @p dst.
     * @return tick at which the data is resident in host memory.
     */
    virtual sim::Tick read(std::uint64_t offset, std::uint64_t len,
                           pcie::Addr dst, sim::Tick earliest) = 0;
};

/** The simulated NVMe SSD behind the NVMe driver. */
class NvmeBackend : public StorageBackend
{
  public:
    NvmeBackend(nvme::NvmeDriver &driver, std::uint16_t qid,
                HostMemory &host_mem);

    std::string name() const override { return "nvme-ssd"; }
    sim::Tick ingest(std::uint64_t offset,
                     const std::vector<std::uint8_t> &data) override;
    sim::Tick read(std::uint64_t offset, std::uint64_t len,
                   pcie::Addr dst, sim::Tick earliest) override;

  private:
    nvme::NvmeDriver &_driver;
    std::uint16_t _qid;
    HostMemory &_hostMem;
};

/** SATA magnetic disk: 158 MB/s sustained, milliseconds per seek. */
class HddBackend : public StorageBackend
{
  public:
    explicit HddBackend(HostMemory &host_mem);

    std::string name() const override { return "hdd"; }
    sim::Tick ingest(std::uint64_t offset,
                     const std::vector<std::uint8_t> &data) override;
    sim::Tick read(std::uint64_t offset, std::uint64_t len,
                   pcie::Addr dst, sim::Tick earliest) override;

    /** Tuning (defaults: 7200 rpm data-center disk of the era; the
     *  average seek counts settling + rotational latency). */
    double bytesPerSec = 158.0 * sim::kMBps;
    sim::Tick seekTime = 4 * sim::kPsPerMs;

  private:
    HostMemory &_hostMem;
    SparseMemory _platter{1ULL << 40};
    sim::Timeline _arm{"hdd.arm"};
    std::uint64_t _headPos = ~std::uint64_t(0);
};

/** RAM drive in host DRAM: reads are kernel memcpys. */
class RamDriveBackend : public StorageBackend
{
  public:
    explicit RamDriveBackend(HostMemory &host_mem);

    std::string name() const override { return "ramdrive"; }
    sim::Tick ingest(std::uint64_t offset,
                     const std::vector<std::uint8_t> &data) override;
    sim::Tick read(std::uint64_t offset, std::uint64_t len,
                   pcie::Addr dst, sim::Tick earliest) override;

  private:
    HostMemory &_hostMem;
    SparseMemory _image{16ULL * sim::kGiB};
};

}  // namespace morpheus::host

#endif  // MORPHEUS_HOST_STORAGE_BACKEND_HH
