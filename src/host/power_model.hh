/**
 * @file
 * Whole-system power and energy model.
 *
 * Matches the paper's measurement method (a wall-power meter on the
 * whole box): system power is idle power plus per-component active
 * increments, integrated over phase durations. The absolute idle power
 * (the paper's text reads "15 watts", almost certainly an OCR-truncated
 * "150") only scales the normalized results; the deltas are what drive
 * Fig 9.
 */

#ifndef MORPHEUS_HOST_POWER_MODEL_HH
#define MORPHEUS_HOST_POWER_MODEL_HH

#include "sim/types.hh"

namespace morpheus::host {

/** Active-power increments over idle, in watts. */
struct PowerConfig
{
    double idleWatts = 150.0;
    /** One host core running deserialization-style code. */
    double cpuCoreActiveWatts = 8.0;
    /** One host core running the compute kernel (higher IPC). */
    double cpuCoreKernelWatts = 14.0;
    /** SSD actively reading flash / moving data. */
    double ssdIoWatts = 4.5;
    /** One embedded core executing a StorageApp. */
    double ssdCoreActiveWatts = 0.9;
    /** GPU running a kernel (K20 under load, relative to its idle
     *  which is folded into idleWatts). */
    double gpuActiveWatts = 95.0;
    /** HDD spun up and transferring. */
    double hddActiveWatts = 6.0;
    /** Extra DRAM activity during heavy streaming. */
    double dramActiveWatts = 2.5;
};

/** What is switched on during a phase. */
struct PhaseActivity
{
    double cpuCoresParsing = 0.0;   ///< Cores busy with deser/OS work.
    double cpuCoresKernel = 0.0;    ///< Cores busy with compute kernels.
    double ssdIoActive = 0.0;       ///< Fraction of phase SSD moves data.
    double ssdCoresActive = 0.0;    ///< Embedded cores running apps.
    double gpuActive = 0.0;         ///< Fraction of phase GPU computes.
    double hddActive = 0.0;
    double dramStreaming = 0.0;
};

/** Computes watts and joules from activity descriptors. */
class PowerModel
{
  public:
    explicit PowerModel(const PowerConfig &config) : _config(config) {}

    const PowerConfig &config() const { return _config; }

    /** Total system power during a phase with @p activity. */
    double
    systemWatts(const PhaseActivity &activity) const
    {
        return _config.idleWatts +
               activity.cpuCoresParsing * _config.cpuCoreActiveWatts +
               activity.cpuCoresKernel * _config.cpuCoreKernelWatts +
               activity.ssdIoActive * _config.ssdIoWatts +
               activity.ssdCoresActive * _config.ssdCoreActiveWatts +
               activity.gpuActive * _config.gpuActiveWatts +
               activity.hddActive * _config.hddActiveWatts +
               activity.dramStreaming * _config.dramActiveWatts;
    }

    /** Joules consumed over @p duration at @p activity. */
    double
    energyJoules(const PhaseActivity &activity,
                 sim::Tick duration) const
    {
        return systemWatts(activity) * sim::ticksToSeconds(duration);
    }

  private:
    PowerConfig _config;
};

}  // namespace morpheus::host

#endif  // MORPHEUS_HOST_POWER_MODEL_HH
