/**
 * @file
 * Host CPU model: a quad-core Xeon (Ivy Bridge EP class) with DVFS
 * between 1.2 and 2.5 GHz and a deserialization cost model.
 *
 * The paper's §II microbenchmarks anchor the model: string-to-integer
 * conversion achieves IPC ~1.2 (poor ILP), and conversion proper is
 * only ~15% of the baseline's deserialization time — the rest is file
 * system / syscall work charged by OsModel. All costs are expressed in
 * cycles so every component scales with frequency (this is what makes
 * deserialization CPU-bound in Fig 3).
 */

#ifndef MORPHEUS_HOST_CPU_MODEL_HH
#define MORPHEUS_HOST_CPU_MODEL_HH

#include <cstdint>

#include "serde/parse.hh"
#include "sim/stats.hh"
#include "sim/timeline.hh"
#include "sim/types.hh"

namespace morpheus::host {

/** Host processor parameters. */
struct CpuConfig
{
    unsigned cores = 4;
    double maxFreqHz = 2.5e9;
    double minFreqHz = 1.2e9;

    /** Cycles to scan one input byte during parsing (IPC ~1.2). */
    double cyclesPerByteParse = 1.2;
    /** Fixed cycles per integer conversion. */
    double cyclesPerIntValue = 6.0;
    /** Cycles per floating-point op during conversion (has FPU). */
    double cyclesPerFloatOp = 1.5;
};

/** The host CPU: per-core occupancy + DVFS + parse cost model. */
class HostCpu
{
  public:
    explicit HostCpu(const CpuConfig &config)
        : _config(config), _freqHz(config.maxFreqHz),
          _cores("host.cpu", config.cores)
    {}

    const CpuConfig &config() const { return _config; }

    /** Current clock (DVFS). */
    double freqHz() const { return _freqHz; }

    /** Set the clock; clamped to the DVFS range. */
    void
    setFreqHz(double hz)
    {
        _freqHz = hz < _config.minFreqHz   ? _config.minFreqHz
                  : hz > _config.maxFreqHz ? _config.maxFreqHz
                                           : hz;
    }

    /** Cycles to convert the counted parse operations (compute only). */
    double
    convertCycles(const serde::ParseCost &cost) const
    {
        return static_cast<double>(cost.bytes) *
                   _config.cyclesPerByteParse +
               static_cast<double>(cost.intValues) *
                   _config.cyclesPerIntValue +
               static_cast<double>(cost.floatOps) *
                   _config.cyclesPerFloatOp;
    }

    /**
     * Occupy core @p core for @p cycles of work at the current clock.
     * @return the completion tick.
     */
    sim::Tick
    execute(unsigned core, double cycles, sim::Tick earliest)
    {
        _cyclesExecuted += static_cast<std::uint64_t>(cycles);
        const sim::Tick dur = sim::cyclesToTicks(cycles, _freqHz);
        return _cores.acquireUnit(core % _config.cores, earliest, dur) +
               dur;
    }

    /** Duration (no occupancy) of @p cycles at the current clock. */
    sim::Tick
    cyclesToTime(double cycles) const
    {
        return sim::cyclesToTicks(cycles, _freqHz);
    }

    const sim::Timeline &coreTimeline(unsigned core) const
    {
        return _cores.unit(core);
    }

    std::uint64_t cyclesExecuted() const
    {
        return _cyclesExecuted.value();
    }

    void
    registerStats(sim::stats::StatSet &set,
                  const std::string &prefix) const
    {
        set.registerCounter(prefix + ".cycles", &_cyclesExecuted);
    }

  private:
    CpuConfig _config;
    double _freqHz;
    sim::TimelineBank _cores;
    sim::stats::Counter _cyclesExecuted;
};

}  // namespace morpheus::host

#endif  // MORPHEUS_HOST_CPU_MODEL_HH
