#include "host/storage_backend.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace morpheus::host {

// ---------------------------------------------------------------- NVMe

NvmeBackend::NvmeBackend(nvme::NvmeDriver &driver, std::uint16_t qid,
                         HostMemory &host_mem)
    : _driver(driver), _qid(qid), _hostMem(host_mem)
{
}

sim::Tick
NvmeBackend::ingest(std::uint64_t offset,
                    const std::vector<std::uint8_t> &data)
{
    MORPHEUS_ASSERT(offset % nvme::kBlockBytes == 0,
                    "ingest offset must be block aligned");
    // Setup-time write through the normal write path, chunked by MDTS.
    const std::uint64_t mdts_bytes =
        std::uint64_t(_driver.maxTransferBlocks()) * nvme::kBlockBytes;
    std::uint64_t off = 0;
    sim::Tick t = 0;
    while (off < data.size()) {
        const std::uint64_t len =
            std::min<std::uint64_t>(mdts_bytes, data.size() - off);
        const std::uint64_t blocks =
            (len + nvme::kBlockBytes - 1) / nvme::kBlockBytes;
        std::vector<std::uint8_t> chunk(
            data.begin() + off,
            data.begin() + off + static_cast<std::ptrdiff_t>(len));
        chunk.resize(blocks * nvme::kBlockBytes, 0);

        // Stage the chunk at a scratch host address the device reads.
        // Ingest bypasses measured phases, so we use a fixed scratch
        // buffer high in host memory.
        const pcie::Addr scratch = 8ULL * sim::kGiB;
        nvme::Command cmd;
        cmd.opcode = nvme::Opcode::kWrite;
        cmd.prp1 = scratch;
        cmd.slba = (offset + off) / nvme::kBlockBytes;
        cmd.nlb = static_cast<std::uint16_t>(blocks - 1);
        // The functional payload must be visible at the scratch
        // address before the device DMA-reads it (store() directly so
        // setup does not perturb the measured bus counters).
        _hostMem.store().writeVec(scratch, chunk);
        // ioRetry so setup survives injected transient faults; with
        // recovery disabled it is exactly io().
        const nvme::Completion cqe = _driver.ioRetry(_qid, cmd, t);
        MORPHEUS_ASSERT(cqe.ok(), "ingest write failed: status=",
                        nvme::statusName(cqe.status));
        t = cqe.postedAt;
        off += len;
    }
    return t;
}

sim::Tick
NvmeBackend::read(std::uint64_t offset, std::uint64_t len,
                  pcie::Addr dst, sim::Tick earliest)
{
    MORPHEUS_ASSERT(offset % nvme::kBlockBytes == 0,
                    "read offset must be block aligned");
    const std::uint64_t mdts_bytes =
        std::uint64_t(_driver.maxTransferBlocks()) * nvme::kBlockBytes;
    std::uint64_t off = 0;
    sim::Tick done = earliest;
    while (off < len) {
        const std::uint64_t take =
            std::min<std::uint64_t>(mdts_bytes, len - off);
        const std::uint64_t blocks =
            (take + nvme::kBlockBytes - 1) / nvme::kBlockBytes;
        nvme::Command cmd;
        cmd.opcode = nvme::Opcode::kRead;
        cmd.prp1 = dst + off;
        cmd.slba = (offset + off) / nvme::kBlockBytes;
        cmd.nlb = static_cast<std::uint16_t>(blocks - 1);
        // The fallback serving path reads through here while faults
        // are firing: retryable failures (media, transient DMA) are
        // absorbed by the driver's bounded retry budget.
        const nvme::Completion cqe =
            _driver.ioRetry(_qid, cmd, earliest);
        MORPHEUS_ASSERT(cqe.ok(), "read command failed: status=",
                        nvme::statusName(cqe.status));
        done = std::max(done, cqe.postedAt);
        off += take;
    }
    return done;
}

// -----------------------------------------------------------------HDD

HddBackend::HddBackend(HostMemory &host_mem) : _hostMem(host_mem) {}

sim::Tick
HddBackend::ingest(std::uint64_t offset,
                   const std::vector<std::uint8_t> &data)
{
    _platter.writeVec(offset, data);
    return 0;
}

sim::Tick
HddBackend::read(std::uint64_t offset, std::uint64_t len, pcie::Addr dst,
                 sim::Tick earliest)
{
    // Seek when the head is not already positioned at the request.
    sim::Tick dur = sim::transferTicks(len, bytesPerSec);
    if (offset != _headPos)
        dur += seekTime;
    _headPos = offset + len;
    const sim::Tick done = _arm.acquireUntil(earliest, dur);

    const auto data = _platter.readVec(offset, len);
    _hostMem.busWrite(dst, data.data(), data.size());
    return done;
}

// ----------------------------------------------------------- RAM drive

RamDriveBackend::RamDriveBackend(HostMemory &host_mem)
    : _hostMem(host_mem)
{
}

sim::Tick
RamDriveBackend::ingest(std::uint64_t offset,
                        const std::vector<std::uint8_t> &data)
{
    _image.writeVec(offset, data);
    return 0;
}

sim::Tick
RamDriveBackend::read(std::uint64_t offset, std::uint64_t len,
                      pcie::Addr dst, sim::Tick earliest)
{
    // A RAM-drive read is a kernel memcpy: the source and destination
    // both live in DRAM, so the payload crosses the memory bus twice.
    const auto data = _image.readVec(offset, len);
    _hostMem.busWrite(dst, data.data(), data.size());
    return _hostMem.cpuAccess(len, len, earliest);
}

}  // namespace morpheus::host
