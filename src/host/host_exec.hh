/**
 * @file
 * The host-execution engine: the paper's baseline object-creation path
 * (Fig 1 — blocking read() of the raw text plus CPU conversion) as a
 * reusable executor with modeled host-CPU load and queueing.
 *
 * Two serving mechanisms run on it:
 *  - availability: the circuit breaker's fallback, rescuing requests
 *    while the device path is faulting, and
 *  - capacity: the hybrid placement policy's overload spill, including
 *    the host half of a split request (the device streams+parses a
 *    prefix while this engine converts the remainder).
 *
 * Host CPU queueing is modeled by HostCpu's per-core timelines (every
 * execute() acquires the core's unit, so concurrent host-path work
 * serializes per core exactly like any other host CPU charge), and the
 * engine exposes that backlog as the load signal the placement policy
 * compares against device pressure. Per-reason counters make the
 * triggers distinguishable in the serving report and federated
 * metrics.
 *
 * The model-call sequence of execute() is byte-for-byte the one the
 * serving driver's inline fallback used to make, so promoting it here
 * changes no simulated timing.
 */

#ifndef MORPHEUS_HOST_HOST_EXEC_HH
#define MORPHEUS_HOST_HOST_EXEC_HH

#include <array>
#include <cstddef>
#include <cstdint>

#include "host/host_system.hh"
#include "obs/trace.hh"
#include "serde/columnar.hh"
#include "serde/parse.hh"

namespace morpheus::host {

/** Why a request runs on the host path. */
enum class HostExecReason : std::uint8_t {
    kBreaker = 0,  ///< Circuit breaker open (or post-failure rescue).
    kProbe,        ///< A failed half-open probe's rescue.
    kOverload,     ///< Hybrid placement spilled past device pressure.
    kSplit,        ///< The host half of a split request.
};

/** Number of HostExecReason values (array extent). */
constexpr std::size_t kNumHostExecReasons = 4;

/** Short stable name ("breaker", "probe", "overload", "split"). */
const char *hostExecReasonName(HostExecReason r);

/** One host-path execution request. */
struct HostExecRequest
{
    /** Byte range to read and convert — the whole file, or the suffix
     *  the device is not covering in a split. */
    FileExtent extent;
    /** Whole-file length; the conversion charge and delivered object
     *  bytes are prorated by extent.sizeBytes / fileBytes. */
    std::uint64_t fileBytes = 0;
    /** Whole-object size (prorated like the conversion). */
    std::uint64_t objectBytes = 0;
    /** Reference parse cost of the whole file. */
    serde::ParseCost cost;
    /** SSD holding the file (0 outside fleet runs). */
    unsigned device = 0;
    /** Tenant the execution belongs to (span annotation). */
    std::uint32_t tenant = 0;
    HostExecReason reason = HostExecReason::kBreaker;
    /** Trace id the host_exec span is recorded under (0 = none). */
    obs::TraceId trace = 0;
};

/** Executes requests on the modeled host CPU/OS/backend path. */
class HostExecEngine
{
  public:
    /** Read-chunk size of the host path (matches the baseline
     *  runner's default staging buffer). */
    static constexpr std::uint64_t kChunkBytes = 256 * 1024;

    /** @p cost_scale multiplies the conversion cycles (models a
     *  relatively slower host; 1.0 = the reference model). */
    explicit HostExecEngine(HostSystem &sys, double cost_scale = 1.0);

    /**
     * Run @p req's range on host @p core starting at @p when: open()
     * syscall, object-buffer page faults, then a chunked loop of
     * backend read -> blocking-read overhead -> prorated conversion
     * cycles -> memory traffic. @return the completion tick. Records a
     * "host_exec" span under req.trace while a trace sink is attached.
     */
    sim::Tick execute(const HostExecRequest &req, unsigned core,
                      sim::Tick when);

    /**
     * Functional host-side columnar scan: the same shared kernel the
     * firmware applet runs (serde::ColumnarScanner over the raw CMF1
     * bytes), so a breaker fallback, a hybrid spill, or the host half
     * of a split returns byte-identical output to the device pushdown
     * path. @p first_group > 0 selects split-suffix mode (scan row
     * groups from there on, no result header, trailer counts
     * @p base_surviving prefix rows). Timing is charged by execute()
     * with the scan's ParseCost like any other host conversion.
     */
    static serde::ScanResult
    scanColumnar(const std::uint8_t *data, std::size_t size,
                 const serde::ScanSpec &spec,
                 std::uint64_t first_group = 0,
                 std::uint64_t base_surviving = 0)
    {
        return serde::scanTable(data, size, spec, first_group,
                                base_surviving);
    }

    /** Queued host-CPU work on @p core at @p now, in microseconds. */
    double coreBacklogUs(unsigned core, sim::Tick now) const;

    /** The least-loaded core at @p now (earliest free; ties to the
     *  lowest index — deterministic). */
    unsigned leastLoadedCore(sim::Tick now) const;

    /** Backlog of the least-loaded core at @p now, in microseconds —
     *  the host-side load signal of the placement policy. */
    double minBacklogUs(sim::Tick now) const;

    std::uint64_t executions(HostExecReason r) const
    {
        return _execs[static_cast<std::size_t>(r)];
    }
    std::uint64_t totalExecutions() const;
    /** Object bytes delivered by the host path so far. */
    std::uint64_t deliveredBytes() const { return _deliveredBytes; }
    double costScale() const { return _costScale; }

  private:
    HostSystem &_sys;
    const double _costScale;
    std::array<std::uint64_t, kNumHostExecReasons> _execs{};
    std::uint64_t _deliveredBytes = 0;
};

}  // namespace morpheus::host

#endif  // MORPHEUS_HOST_HOST_EXEC_HH
