/**
 * @file
 * Sparse functional byte store.
 *
 * Backs every "memory" in the simulation (host DRAM, GPU device
 * memory, HDD platters, RAM drive) so data really flows end-to-end.
 * Pages are allocated lazily; untouched space reads as zeros.
 */

#ifndef MORPHEUS_HOST_SPARSE_MEMORY_HH
#define MORPHEUS_HOST_SPARSE_MEMORY_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace morpheus::host {

/** Lazily allocated flat byte space. */
class SparseMemory
{
  public:
    explicit SparseMemory(std::uint64_t size) : _size(size) {}

    std::uint64_t size() const { return _size; }

    /** Store @p n bytes at @p addr. */
    void write(std::uint64_t addr, const std::uint8_t *data,
               std::size_t n);

    /** Load @p n bytes from @p addr (zeros where never written). */
    void read(std::uint64_t addr, std::uint8_t *out, std::size_t n) const;

    /** Convenience: load a range into a fresh vector. */
    std::vector<std::uint8_t> readVec(std::uint64_t addr,
                                      std::size_t n) const;

    /** Convenience: store a vector. */
    void
    writeVec(std::uint64_t addr, const std::vector<std::uint8_t> &data)
    {
        write(addr, data.data(), data.size());
    }

    /** Bytes of backing store actually allocated. */
    std::uint64_t residentBytes() const
    {
        return _chunks.size() * kChunkBytes;
    }

  private:
    static constexpr std::uint64_t kChunkBytes = 64 * 1024;

    std::uint64_t _size;
    std::unordered_map<std::uint64_t, std::vector<std::uint8_t>> _chunks;
};

}  // namespace morpheus::host

#endif  // MORPHEUS_HOST_SPARSE_MEMORY_HH
