/**
 * @file
 * The assembled platform: host CPU/OS/DRAM, PCIe fabric, Morpheus-SSD,
 * GPU, NVMe driver, and power model — plus a minimal extent-based
 * "file system" for placing workload inputs on the SSD.
 *
 * This is the top-level object examples, tests, and benches construct.
 */

#ifndef MORPHEUS_HOST_HOST_SYSTEM_HH
#define MORPHEUS_HOST_HOST_SYSTEM_HH

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "host/cpu_model.hh"
#include "host/gpu_model.hh"
#include "host/host_memory.hh"
#include "host/os_model.hh"
#include "host/power_model.hh"
#include "host/storage_backend.hh"
#include "host/system_config.hh"
#include "nvme/driver.hh"
#include "sim/event_queue.hh"
#include "ssd/ssd_controller.hh"

namespace morpheus::host {

/** A contiguous file on the SSD (or alternative backend). */
struct FileExtent
{
    std::string name;
    std::uint64_t startByte = 0;  ///< Device byte offset (page aligned).
    std::uint64_t sizeBytes = 0;  ///< Logical file length.
    sim::Tick readyAt = 0;        ///< Tick the ingest write finished.
    unsigned deviceId = 0;        ///< SSD holding the extent (fleet).
};

/** The whole simulated machine. */
class HostSystem
{
  public:
    explicit HostSystem(const SystemConfig &config = {});

    const SystemConfig &config() const { return _config; }

    sim::EventQueue &eventQueue() { return _eq; }
    pcie::PcieSwitch &fabric() { return _fabric; }
    HostMemory &mem() { return _mem; }
    HostCpu &cpu() { return _cpu; }
    OsModel &os() { return _os; }
    Gpu &gpu() { return *_gpu; }
    PowerModel &power() { return _power; }

    /** SSD @p device (0 = the classic single device). */
    ssd::SsdController &ssd(unsigned device = 0)
    {
        return *_ssds.at(device);
    }
    /** The NVMe driver bound to SSD @p device. */
    nvme::NvmeDriver &nvmeDriver(unsigned device = 0)
    {
        return *_drivers.at(device);
    }
    /** Number of SSDs behind the switch. */
    unsigned numSsds() const
    {
        return static_cast<unsigned>(_ssds.size());
    }

    pcie::PortId hostPort() const { return _hostPort; }
    pcie::PortId ssdPort(unsigned device = 0) const
    {
        return _ssdPorts.at(device);
    }
    pcie::PortId gpuPort() const { return _gpuPort; }

    /** The default I/O queue pair (device 0). */
    std::uint16_t ioQueue() const { return _ioQueues.front().front(); }

    /** Per-core I/O queue pair on device 0 (wraps modulo). */
    std::uint16_t
    ioQueue(unsigned core) const
    {
        return ioQueue(0, core);
    }

    /** Per-core I/O queue pair on SSD @p device (wraps modulo). */
    std::uint16_t
    ioQueue(unsigned device, unsigned core) const
    {
        const auto &queues = _ioQueues.at(device);
        return queues[core % queues.size()];
    }

    /** Number of I/O queue pairs created per device. */
    unsigned numIoQueues() const
    {
        return static_cast<unsigned>(_ioQueues.front().size());
    }

    /**
     * Bus address of SSD @p device's controller memory buffer window
     * (mapped only in fleet configurations): the DMA target another
     * SSD writes for device-to-device shard rebalancing.
     */
    pcie::Addr cmbBase(unsigned device) const;

    /** Bump-allocate @p bytes of host DRAM. @return bus address. */
    pcie::Addr allocHost(std::uint64_t bytes);

    /** Reset the host allocator (between benchmark runs). */
    void resetHostAllocator();

    /**
     * Create a file of @p data bytes on SSD 0 via the normal write
     * path (setup step). @return the extent descriptor.
     */
    FileExtent createFile(const std::string &name,
                          const std::vector<std::uint8_t> &data);

    /** createFile() on a specific SSD (shard placement). */
    FileExtent createFileOn(unsigned device, const std::string &name,
                            const std::vector<std::uint8_t> &data);

    /**
     * Reserve an extent on @p device without ingesting any bytes —
     * the caller delivers them device-side (P2P shard rebalance
     * writes through the destination controller, not the host path).
     */
    FileExtent reserveExtent(unsigned device, const std::string &name,
                             std::uint64_t size_bytes);

    /** Look up a previously created file. */
    const FileExtent &file(const std::string &name) const;

    /** Functional read-back of a file's bytes (validation). */
    std::vector<std::uint8_t> fileBytes(const FileExtent &extent) const;

    /** SSD @p device exposed through the StorageBackend interface. */
    StorageBackend &ssdBackend(unsigned device = 0)
    {
        return *_ssdBackends.at(device);
    }

    /**
     * Register every component's statistics under conventional
     * prefixes ("ssd.", "host.", "gpu.", "pcie."); the set's report()
     * then dumps the whole machine deterministically.
     */
    void registerStats(sim::stats::StatSet &set);

  private:
    /** Effective SsdConfig for device @p d (override or template),
     *  with the fleet label stamped for devices >= 1. */
    ssd::SsdConfig deviceConfig(unsigned d) const;

    SystemConfig _config;
    sim::EventQueue _eq;
    pcie::PcieSwitch _fabric;

    /** Port order is fixed for reproducibility: host(0), ssd(1),
     *  gpu(2), then extra fleet SSDs ssd1, ssd2, ... */
    pcie::PortId _hostPort;
    std::vector<pcie::PortId> _ssdPorts;
    pcie::PortId _gpuPort;

    HostMemory _mem;
    HostCpu _cpu;
    OsModel _os;
    PowerModel _power;
    std::vector<std::unique_ptr<ssd::SsdController>> _ssds;
    std::unique_ptr<Gpu> _gpu;
    std::vector<std::unique_ptr<nvme::NvmeDriver>> _drivers;
    /** [device][core] -> queue id. */
    std::vector<std::vector<std::uint16_t>> _ioQueues;
    std::vector<std::unique_ptr<NvmeBackend>> _ssdBackends;

    pcie::Addr _hostAllocTop;
    pcie::Addr _hostAllocBase;
    /** Per-device file-placement cursor (page aligned). */
    std::vector<std::uint64_t> _nextFileByte;
    std::unordered_map<std::string, FileExtent> _files;
};

}  // namespace morpheus::host

#endif  // MORPHEUS_HOST_HOST_SYSTEM_HH
