/**
 * @file
 * The assembled platform: host CPU/OS/DRAM, PCIe fabric, Morpheus-SSD,
 * GPU, NVMe driver, and power model — plus a minimal extent-based
 * "file system" for placing workload inputs on the SSD.
 *
 * This is the top-level object examples, tests, and benches construct.
 */

#ifndef MORPHEUS_HOST_HOST_SYSTEM_HH
#define MORPHEUS_HOST_HOST_SYSTEM_HH

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "host/cpu_model.hh"
#include "host/gpu_model.hh"
#include "host/host_memory.hh"
#include "host/os_model.hh"
#include "host/power_model.hh"
#include "host/storage_backend.hh"
#include "host/system_config.hh"
#include "nvme/driver.hh"
#include "sim/event_queue.hh"
#include "ssd/ssd_controller.hh"

namespace morpheus::host {

/** A contiguous file on the SSD (or alternative backend). */
struct FileExtent
{
    std::string name;
    std::uint64_t startByte = 0;  ///< Device byte offset (page aligned).
    std::uint64_t sizeBytes = 0;  ///< Logical file length.
    sim::Tick readyAt = 0;        ///< Tick the ingest write finished.
};

/** The whole simulated machine. */
class HostSystem
{
  public:
    explicit HostSystem(const SystemConfig &config = {});

    const SystemConfig &config() const { return _config; }

    sim::EventQueue &eventQueue() { return _eq; }
    pcie::PcieSwitch &fabric() { return _fabric; }
    HostMemory &mem() { return _mem; }
    HostCpu &cpu() { return _cpu; }
    OsModel &os() { return _os; }
    Gpu &gpu() { return *_gpu; }
    ssd::SsdController &ssd() { return *_ssd; }
    nvme::NvmeDriver &nvmeDriver() { return _driver; }
    PowerModel &power() { return _power; }

    pcie::PortId hostPort() const { return _hostPort; }
    pcie::PortId ssdPort() const { return _ssdPort; }
    pcie::PortId gpuPort() const { return _gpuPort; }

    /** The default I/O queue pair. */
    std::uint16_t ioQueue() const { return _ioQueues.front(); }

    /** Per-core I/O queue pair (NVMe convention; wraps modulo). */
    std::uint16_t
    ioQueue(unsigned core) const
    {
        return _ioQueues[core % _ioQueues.size()];
    }

    /** Number of I/O queue pairs created. */
    unsigned numIoQueues() const
    {
        return static_cast<unsigned>(_ioQueues.size());
    }

    /** Bump-allocate @p bytes of host DRAM. @return bus address. */
    pcie::Addr allocHost(std::uint64_t bytes);

    /** Reset the host allocator (between benchmark runs). */
    void resetHostAllocator();

    /**
     * Create a file of @p data bytes on the SSD via the normal write
     * path (setup step). @return the extent descriptor.
     */
    FileExtent createFile(const std::string &name,
                          const std::vector<std::uint8_t> &data);

    /** Look up a previously created file. */
    const FileExtent &file(const std::string &name) const;

    /** Functional read-back of a file's bytes (validation). */
    std::vector<std::uint8_t> fileBytes(const FileExtent &extent) const;

    /** The SSD exposed through the StorageBackend interface. */
    StorageBackend &ssdBackend() { return *_ssdBackend; }

    /**
     * Register every component's statistics under conventional
     * prefixes ("ssd.", "host.", "gpu.", "pcie."); the set's report()
     * then dumps the whole machine deterministically.
     */
    void registerStats(sim::stats::StatSet &set);

  private:
    SystemConfig _config;
    sim::EventQueue _eq;
    pcie::PcieSwitch _fabric;

    pcie::PortId _hostPort;
    pcie::PortId _ssdPort;
    pcie::PortId _gpuPort;

    HostMemory _mem;
    HostCpu _cpu;
    OsModel _os;
    PowerModel _power;
    std::unique_ptr<ssd::SsdController> _ssd;
    std::unique_ptr<Gpu> _gpu;
    nvme::NvmeDriver _driver;
    std::vector<std::uint16_t> _ioQueues;
    std::unique_ptr<NvmeBackend> _ssdBackend;

    pcie::Addr _hostAllocTop;
    pcie::Addr _hostAllocBase;
    std::uint64_t _nextFileByte;
    std::unordered_map<std::string, FileExtent> _files;
};

}  // namespace morpheus::host

#endif  // MORPHEUS_HOST_HOST_SYSTEM_HH
