/**
 * @file
 * A simple NIC model (10 GbE class).
 *
 * The paper's introduction lists NICs next to GPUs as peer-to-peer
 * targets: "the SSD can directly send application objects to other
 * peripherals (e.g. NICs, FPGAs and GPUs)". The NIC exposes its TX
 * buffer as a pcie::BusTarget, so once its BAR window is mapped, a
 * StorageApp's DMA target can be the network card itself — objects
 * flow flash → embedded cores → wire without touching host DRAM.
 *
 * Transmission is modeled as a wire occupancy timeline at line rate
 * with per-frame overhead (preamble + IFG + headers).
 */

#ifndef MORPHEUS_HOST_NIC_MODEL_HH
#define MORPHEUS_HOST_NIC_MODEL_HH

#include <cstdint>
#include <vector>

#include "pcie/pcie.hh"
#include "sim/stats.hh"
#include "sim/timeline.hh"

namespace morpheus::host {

/** NIC parameters (defaults: dual-port 10 GbE of the paper's era). */
struct NicConfig
{
    /** Line rate in payload bytes/sec (10 Gb/s ≈ 1.25 GB/s raw). */
    double lineRateBytesPerSec = 1.25e9;
    /** Maximum payload per frame. */
    std::uint32_t mtuBytes = 9000;  // jumbo frames
    /** Per-frame wire overhead (preamble, headers, CRC, IFG). */
    std::uint32_t frameOverheadBytes = 42;
    /** TX buffer (BAR window) size. */
    std::uint64_t txBufferBytes = 16ULL * 1024 * 1024;
};

/** The network card: a DMA-able TX buffer plus a wire model. */
class Nic : public pcie::BusTarget
{
  public:
    explicit Nic(const NicConfig &config)
        : _config(config), _txBuffer(config.txBufferBytes, 0)
    {}

    const NicConfig &config() const { return _config; }

    // BusTarget: DMA writes land in the TX buffer and are queued for
    // transmission in arrival order.
    void
    busWrite(pcie::Addr offset, const std::uint8_t *data,
             std::size_t n) override
    {
        std::copy(data, data + n, _txBuffer.begin() +
                                      static_cast<std::ptrdiff_t>(offset));
        _queuedBytes += n;
        _bytesDmaIn += n;
    }

    void
    busRead(pcie::Addr offset, std::uint8_t *out,
            std::size_t n) const override
    {
        std::copy(_txBuffer.begin() + static_cast<std::ptrdiff_t>(offset),
                  _txBuffer.begin() +
                      static_cast<std::ptrdiff_t>(offset + n),
                  out);
    }

    /**
     * Transmit everything queued since the last call, starting no
     * earlier than @p earliest. @return tick the last frame leaves the
     * wire.
     */
    sim::Tick
    transmitQueued(sim::Tick earliest)
    {
        sim::Tick done = earliest;
        while (_queuedBytes > 0) {
            const std::uint64_t payload =
                std::min<std::uint64_t>(_queuedBytes, _config.mtuBytes);
            const std::uint64_t wire_bytes =
                payload + _config.frameOverheadBytes;
            done = _wire.acquireUntil(
                done,
                sim::transferTicks(wire_bytes,
                                   _config.lineRateBytesPerSec));
            _queuedBytes -= payload;
            ++_frames;
            _bytesOnWire += wire_bytes;
        }
        return done;
    }

    /** Peek at the TX buffer contents (validation). */
    std::vector<std::uint8_t>
    txBytes(std::uint64_t offset, std::size_t n) const
    {
        std::vector<std::uint8_t> out(n);
        busRead(offset, out.data(), n);
        return out;
    }

    std::uint64_t framesSent() const { return _frames.value(); }
    std::uint64_t bytesDmaIn() const { return _bytesDmaIn.value(); }
    std::uint64_t bytesOnWire() const { return _bytesOnWire.value(); }
    std::uint64_t queuedBytes() const { return _queuedBytes; }

    void
    registerStats(sim::stats::StatSet &set,
                  const std::string &prefix) const
    {
        set.registerCounter(prefix + ".frames", &_frames);
        set.registerCounter(prefix + ".bytesDmaIn", &_bytesDmaIn);
        set.registerCounter(prefix + ".bytesOnWire", &_bytesOnWire);
    }

  private:
    NicConfig _config;
    std::vector<std::uint8_t> _txBuffer;
    sim::Timeline _wire{"nic.wire"};
    std::uint64_t _queuedBytes = 0;
    sim::stats::Counter _frames;
    sim::stats::Counter _bytesDmaIn;
    sim::stats::Counter _bytesOnWire;
};

}  // namespace morpheus::host

#endif  // MORPHEUS_HOST_NIC_MODEL_HH
