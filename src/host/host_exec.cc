#include "host/host_exec.hh"

#include <algorithm>

#include "nvme/command.hh"

namespace morpheus::host {

const char *
hostExecReasonName(HostExecReason r)
{
    switch (r) {
      case HostExecReason::kBreaker:
        return "breaker";
      case HostExecReason::kProbe:
        return "probe";
      case HostExecReason::kOverload:
        return "overload";
      case HostExecReason::kSplit:
        return "split";
    }
    return "?";
}

HostExecEngine::HostExecEngine(HostSystem &sys, double cost_scale)
    : _sys(sys), _costScale(cost_scale)
{
}

sim::Tick
HostExecEngine::execute(const HostExecRequest &req, unsigned core,
                        sim::Tick when)
{
    OsModel &os = _sys.os();
    HostCpu &cpu = _sys.cpu();

    const std::uint64_t range = req.extent.sizeBytes;
    const std::uint64_t file_bytes =
        std::max<std::uint64_t>(1, req.fileBytes ? req.fileBytes
                                                 : range);
    // Object bytes this range delivers; exact for the whole file
    // (range == fileBytes), prorated for a split's remainder.
    const std::uint64_t obj_bytes =
        range == file_bytes ? req.objectBytes
                            : req.objectBytes * range / file_bytes;

    // Raw staging buffer X and the object buffer Y.
    const pcie::Addr buf_x = _sys.allocHost(kChunkBytes);
    _sys.allocHost(obj_bytes);
    const sim::Tick opened = os.syscall(core, when);  // open()
    sim::Tick cpu_cursor = os.pageFaults(
        core, os.faultsForBytes(obj_bytes), opened);

    // The reference parse cost covers the whole file; each chunk's
    // conversion charge is its prorated share.
    const double total_convert =
        cpu.convertCycles(req.cost) * _costScale;
    std::uint64_t offset = 0;
    while (offset < range) {
        const std::uint64_t len =
            std::min<std::uint64_t>(kChunkBytes, range - offset);
        // A split's remainder can start mid-block; the device reads
        // whole blocks, so align the I/O down (a no-op — identical
        // call — for the block-aligned whole-extent path).
        const std::uint64_t start = req.extent.startByte + offset;
        const std::uint64_t skew = start % nvme::kBlockBytes;
        const sim::Tick io_done = _sys.ssdBackend(req.device).read(
            start - skew, len + skew, buf_x, when);
        const sim::Tick ready = std::max(cpu_cursor, io_done);
        const sim::Tick fs_done =
            os.blockingReadOverhead(core, len, ready);
        const double convert = total_convert *
                               static_cast<double>(len) /
                               static_cast<double>(file_bytes);
        cpu_cursor = cpu.execute(core, convert, fs_done);
        _sys.mem().cpuAccess(len, obj_bytes * len / range, fs_done);
        offset += len;
    }

    ++_execs[static_cast<std::size_t>(req.reason)];
    _deliveredBytes += obj_bytes;

    if (auto *sink = obs::traceSink()) {
        obs::Span s;
        s.track = "host.exec";
        s.name = "host_exec";
        s.category = "host";
        s.begin = when;
        s.end = cpu_cursor;
        s.tenant = req.tenant;
        s.trace = req.trace;
        sink->record(s);
    }
    return cpu_cursor;
}

double
HostExecEngine::coreBacklogUs(unsigned core, sim::Tick now) const
{
    const sim::Tick free_at =
        _sys.cpu().coreTimeline(core).freeAt();
    if (free_at <= now)
        return 0.0;
    return static_cast<double>(free_at - now) /
           static_cast<double>(sim::kPsPerUs);
}

unsigned
HostExecEngine::leastLoadedCore(sim::Tick now) const
{
    const unsigned cores = _sys.cpu().config().cores;
    unsigned best = 0;
    sim::Tick best_free = _sys.cpu().coreTimeline(0).freeAt();
    for (unsigned c = 1; c < cores; ++c) {
        const sim::Tick f = _sys.cpu().coreTimeline(c).freeAt();
        if (f < best_free) {
            best_free = f;
            best = c;
        }
    }
    (void)now;
    return best;
}

double
HostExecEngine::minBacklogUs(sim::Tick now) const
{
    return coreBacklogUs(leastLoadedCore(now), now);
}

std::uint64_t
HostExecEngine::totalExecutions() const
{
    std::uint64_t sum = 0;
    for (const std::uint64_t n : _execs)
        sum += n;
    return sum;
}

}  // namespace morpheus::host
