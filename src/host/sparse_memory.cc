#include "host/sparse_memory.hh"

#include <algorithm>
#include <cstring>

#include "sim/logging.hh"

namespace morpheus::host {

void
SparseMemory::write(std::uint64_t addr, const std::uint8_t *data,
                    std::size_t n)
{
    MORPHEUS_ASSERT(addr + n <= _size, "write past end of memory: addr=",
                    addr, " n=", n, " size=", _size);
    std::size_t done = 0;
    while (done < n) {
        const std::uint64_t a = addr + done;
        const std::uint64_t chunk = a / kChunkBytes;
        const std::uint64_t off = a % kChunkBytes;
        const std::size_t take = static_cast<std::size_t>(
            std::min<std::uint64_t>(n - done, kChunkBytes - off));
        auto &buf = _chunks[chunk];
        if (buf.empty())
            buf.assign(kChunkBytes, 0);
        std::memcpy(buf.data() + off, data + done, take);
        done += take;
    }
}

void
SparseMemory::read(std::uint64_t addr, std::uint8_t *out,
                   std::size_t n) const
{
    MORPHEUS_ASSERT(addr + n <= _size, "read past end of memory: addr=",
                    addr, " n=", n, " size=", _size);
    std::size_t done = 0;
    while (done < n) {
        const std::uint64_t a = addr + done;
        const std::uint64_t chunk = a / kChunkBytes;
        const std::uint64_t off = a % kChunkBytes;
        const std::size_t take = static_cast<std::size_t>(
            std::min<std::uint64_t>(n - done, kChunkBytes - off));
        const auto it = _chunks.find(chunk);
        if (it == _chunks.end()) {
            std::memset(out + done, 0, take);
        } else {
            std::memcpy(out + done, it->second.data() + off, take);
        }
        done += take;
    }
}

std::vector<std::uint8_t>
SparseMemory::readVec(std::uint64_t addr, std::size_t n) const
{
    std::vector<std::uint8_t> out(n);
    read(addr, out.data(), n);
    return out;
}

}  // namespace morpheus::host
