/**
 * @file
 * Host DRAM: functional store (a pcie::BusTarget so devices DMA real
 * bytes into it) + CPU-memory-bus traffic accounting and bandwidth
 * occupancy. The paper's "traffic on the CPU-memory bus" numbers come
 * from the counters here.
 */

#ifndef MORPHEUS_HOST_HOST_MEMORY_HH
#define MORPHEUS_HOST_HOST_MEMORY_HH

#include <cstdint>

#include "host/sparse_memory.hh"
#include "pcie/pcie.hh"
#include "sim/stats.hh"
#include "sim/timeline.hh"

namespace morpheus::host {

/** DRAM parameters (DDR3-1600, one channel pair). */
struct HostMemoryConfig
{
    std::uint64_t size = 16ULL * sim::kGiB;
    double bytesPerSec = 12.8 * sim::kGBps;
};

/** Host main memory. */
class HostMemory : public pcie::BusTarget
{
  public:
    explicit HostMemory(const HostMemoryConfig &config)
        : _config(config), _store(config.size)
    {}

    const HostMemoryConfig &config() const { return _config; }
    SparseMemory &store() { return _store; }
    const SparseMemory &store() const { return _store; }

    // BusTarget: DMA from devices also rides the memory bus.
    void
    busWrite(pcie::Addr offset, const std::uint8_t *data,
             std::size_t n) override
    {
        _store.write(offset, data, n);
        _busBytesWritten += n;
    }

    void
    busRead(pcie::Addr offset, std::uint8_t *out,
            std::size_t n) const override
    {
        _store.read(offset, out, n);
        _busBytesRead += n;
    }

    /**
     * Charge a CPU-side access of @p bytes on the memory bus.
     * @return completion tick of the occupancy.
     */
    sim::Tick
    cpuAccess(std::uint64_t bytes_read, std::uint64_t bytes_written,
              sim::Tick earliest)
    {
        _busBytesRead += bytes_read;
        _busBytesWritten += bytes_written;
        const sim::Tick dur = sim::transferTicks(
            bytes_read + bytes_written, _config.bytesPerSec);
        return _bus.acquireUntil(earliest, dur);
    }

    std::uint64_t busBytesRead() const { return _busBytesRead.value(); }
    std::uint64_t busBytesWritten() const
    {
        return _busBytesWritten.value();
    }
    std::uint64_t
    busBytesTotal() const
    {
        return _busBytesRead.value() + _busBytesWritten.value();
    }

    void
    registerStats(sim::stats::StatSet &set,
                  const std::string &prefix) const
    {
        set.registerCounter(prefix + ".busBytesRead", &_busBytesRead);
        set.registerCounter(prefix + ".busBytesWritten",
                            &_busBytesWritten);
    }

  private:
    HostMemoryConfig _config;
    SparseMemory _store;
    sim::Timeline _bus{"host.membus"};
    /** Mutable: busRead is const in the BusTarget interface. */
    mutable sim::stats::Counter _busBytesRead;
    sim::stats::Counter _busBytesWritten;
};

}  // namespace morpheus::host

#endif  // MORPHEUS_HOST_HOST_MEMORY_HH
