/**
 * @file
 * Operating system overhead model.
 *
 * Charges (in CPU cycles, so they scale with DVFS) the costs the paper
 * identifies around the conventional deserialization path:
 *  - read()/open() syscalls (mode switch, VFS dispatch),
 *  - per-byte file-system work (page-cache lookup, copy_to_user,
 *    locking, POSIX bookkeeping) — the ~85% of parse time the §II
 *    profile attributes to "file system operations",
 *  - context switches (blocking I/O, page faults), which Fig 10
 *    counts.
 */

#ifndef MORPHEUS_HOST_OS_MODEL_HH
#define MORPHEUS_HOST_OS_MODEL_HH

#include <cstdint>

#include "host/cpu_model.hh"
#include "sim/stats.hh"

namespace morpheus::host {

/** OS cost parameters (cycles at the current CPU clock). */
struct OsConfig
{
    /** Fixed cycles per read()/write() syscall. */
    double syscallCycles = 9000.0;
    /** Per-byte file-system path cycles (page cache + copy + locks). */
    double fsCyclesPerByte = 10.5;
    /** Cycles per context switch (save/restore, scheduler, cache). */
    double contextSwitchCycles = 7000.0;
    /** Cycles to service a soft page fault. */
    double pageFaultCycles = 4000.0;
    /** Page size for fault accounting. */
    std::uint32_t pageBytes = 4096;
};

/** Per-host OS state: overhead charging and event accounting. */
class OsModel
{
  public:
    OsModel(const OsConfig &config, HostCpu &cpu)
        : _config(config), _cpu(cpu)
    {}

    const OsConfig &config() const { return _config; }

    /**
     * Charge one blocking read() of @p bytes on @p core: syscall entry,
     * FS per-byte work, and the pair of context switches the blocking
     * wait costs. The device time itself is NOT included.
     *
     * @return tick when the CPU-side work is done.
     */
    sim::Tick
    blockingReadOverhead(unsigned core, std::uint64_t bytes,
                         sim::Tick earliest)
    {
        ++_syscalls;
        _contextSwitches += 2;  // block + wake
        const double cycles =
            _config.syscallCycles +
            _config.fsCyclesPerByte * static_cast<double>(bytes) +
            2.0 * _config.contextSwitchCycles;
        return _cpu.execute(core, cycles, earliest);
    }

    /** Charge a syscall with no data movement (open, fstat, ...). */
    sim::Tick
    syscall(unsigned core, sim::Tick earliest)
    {
        ++_syscalls;
        return _cpu.execute(core, _config.syscallCycles, earliest);
    }

    /** Charge one voluntary context-switch pair (sleep + wake). */
    sim::Tick
    blockingWait(unsigned core, sim::Tick earliest)
    {
        _contextSwitches += 2;
        return _cpu.execute(core, 2.0 * _config.contextSwitchCycles,
                            earliest);
    }

    /** Charge @p count soft page faults (first-touch of new buffers). */
    sim::Tick
    pageFaults(unsigned core, std::uint64_t count, sim::Tick earliest)
    {
        _pageFaults += count;
        _contextSwitches += count;  // fault entry/exit counted once
        return _cpu.execute(
            core, _config.pageFaultCycles * static_cast<double>(count),
            earliest);
    }

    /** Faults for first-touch of a buffer of @p bytes. */
    std::uint64_t
    faultsForBytes(std::uint64_t bytes) const
    {
        return (bytes + _config.pageBytes - 1) / _config.pageBytes;
    }

    std::uint64_t contextSwitches() const
    {
        return _contextSwitches.value();
    }
    std::uint64_t syscalls() const { return _syscalls.value(); }
    std::uint64_t pageFaultCount() const { return _pageFaults.value(); }

    void
    registerStats(sim::stats::StatSet &set,
                  const std::string &prefix) const
    {
        set.registerCounter(prefix + ".contextSwitches",
                            &_contextSwitches);
        set.registerCounter(prefix + ".syscalls", &_syscalls);
        set.registerCounter(prefix + ".pageFaults", &_pageFaults);
    }

  private:
    OsConfig _config;
    HostCpu &_cpu;
    sim::stats::Counter _contextSwitches;
    sim::stats::Counter _syscalls;
    sim::stats::Counter _pageFaults;
};

}  // namespace morpheus::host

#endif  // MORPHEUS_HOST_OS_MODEL_HH
