#include "ftl/ftl.hh"

#include <algorithm>
#include <limits>
#include <utility>

#include "sim/logging.hh"

namespace morpheus::ftl {

namespace {

/** Plane index within the whole array. */
unsigned
planeIndex(const flash::FlashConfig &cfg, const flash::BlockPointer &b)
{
    return (b.channel * cfg.diesPerChannel + b.die) * cfg.planesPerDie +
           b.plane;
}

}  // namespace

Ftl::Ftl(sim::EventQueue &eq, flash::FlashArray &array,
         const FtlConfig &config)
    : _eq(eq), _array(array), _config(config)
{
    const auto &fc = _array.config();
    MORPHEUS_ASSERT(_config.overProvisioning > 0.0 &&
                        _config.overProvisioning < 0.5,
                    "unreasonable over-provisioning ratio");
    MORPHEUS_ASSERT(_config.gcHighWatermark >= _config.gcLowWatermark,
                    "GC watermarks inverted");
    const double usable = 1.0 - _config.overProvisioning;
    _logicalPages = static_cast<std::uint64_t>(
        static_cast<double>(fc.pages()) * usable);

    // Populate the free pool: every block, ordered so that popping from
    // the back yields block 0 of each plane first.
    _freeBlocks.reserve(fc.blocks());
    for (unsigned blk = fc.blocksPerPlane; blk-- > 0;) {
        for (unsigned c = fc.channels; c-- > 0;) {
            for (unsigned d = fc.diesPerChannel; d-- > 0;) {
                for (unsigned p = fc.planesPerDie; p-- > 0;) {
                    _freeBlocks.push_back(
                        flash::BlockPointer{c, d, p, blk});
                }
            }
        }
    }
    _activeBlocks.assign(fc.planes(), kUnmapped);
}

std::uint64_t
Ftl::flatBlock(const flash::BlockPointer &b) const
{
    const auto &fc = _array.config();
    std::uint64_t idx = b.channel;
    idx = idx * fc.diesPerChannel + b.die;
    idx = idx * fc.planesPerDie + b.plane;
    idx = idx * fc.blocksPerPlane + b.block;
    return idx;
}

sim::Tick
Ftl::trimPages(std::uint64_t lpn, std::uint32_t count,
               sim::Tick earliest)
{
    MORPHEUS_ASSERT(count > 0, "zero-length TRIM");
    MORPHEUS_ASSERT(lpn + count <= _logicalPages,
                    "TRIM beyond logical capacity");
    for (std::uint32_t i = 0; i < count; ++i)
        invalidate(lpn + i);
    ++_trims;
    // Mapping-table update only: ~2 us of firmware work per command.
    return earliest + 2 * sim::kPsPerUs;
}

bool
Ftl::isMapped(std::uint64_t lpn) const
{
    return _map.find(lpn) != _map.end();
}

std::vector<std::uint8_t>
Ftl::peekPage(std::uint64_t lpn) const
{
    const auto it = _map.find(lpn);
    if (it == _map.end())
        return std::vector<std::uint8_t>(pageBytes(), 0);
    const auto &fc = _array.config();
    const std::uint64_t ppn = it->second;
    flash::PagePointer addr;
    std::uint64_t rest = ppn;
    addr.page = static_cast<unsigned>(rest % fc.pagesPerBlock);
    rest /= fc.pagesPerBlock;
    addr.block = static_cast<unsigned>(rest % fc.blocksPerPlane);
    rest /= fc.blocksPerPlane;
    addr.plane = static_cast<unsigned>(rest % fc.planesPerDie);
    rest /= fc.planesPerDie;
    addr.die = static_cast<unsigned>(rest % fc.diesPerChannel);
    rest /= fc.diesPerChannel;
    addr.channel = static_cast<unsigned>(rest);
    return _array.peek(addr);
}

sim::Tick
Ftl::readPages(std::uint64_t lpn, std::uint32_t count, sim::Tick earliest,
               ReadCallback cb, bool *media_error,
               std::vector<sim::Tick> *page_ticks)
{
    MORPHEUS_ASSERT(count > 0, "zero-length FTL read");
    MORPHEUS_ASSERT(lpn + count <= _logicalPages,
                    "FTL read beyond logical capacity: lpn=", lpn,
                    " count=", count);
    const auto &fc = _array.config();

    if (page_ticks) {
        page_ticks->clear();
        page_ticks->reserve(count);
    }
    std::vector<std::uint8_t> out;
    out.reserve(static_cast<std::size_t>(count) * fc.pageBytes);
    sim::Tick done = earliest;
    for (std::uint32_t i = 0; i < count; ++i) {
        const auto data = peekPage(lpn + i);
        sim::Tick page_done = earliest;
        if (isMapped(lpn + i)) {
            // Charge the flash read; data content was fetched above.
            const auto it = _map.find(lpn + i);
            const std::uint64_t ppn = it->second;
            flash::PagePointer addr;
            std::uint64_t rest = ppn;
            addr.page = static_cast<unsigned>(rest % fc.pagesPerBlock);
            rest /= fc.pagesPerBlock;
            addr.block = static_cast<unsigned>(rest % fc.blocksPerPlane);
            rest /= fc.blocksPerPlane;
            addr.plane = static_cast<unsigned>(rest % fc.planesPerDie);
            rest /= fc.planesPerDie;
            addr.die = static_cast<unsigned>(rest % fc.diesPerChannel);
            rest /= fc.diesPerChannel;
            addr.channel = static_cast<unsigned>(rest);
            page_done =
                _array.read(addr, earliest, nullptr, media_error);
            done = std::max(done, page_done);
        }
        if (page_ticks)
            page_ticks->push_back(page_done);
        out.insert(out.end(), data.begin(), data.end());
        ++_hostReads;
    }

    if (cb) {
        _eq.schedule(done,
                     [cb = std::move(cb), done,
                      out = std::move(out)]() mutable {
                         cb(done, std::move(out));
                     },
                     "ftl.read.done");
    }
    return done;
}

void
Ftl::invalidate(std::uint64_t lpn)
{
    const auto it = _map.find(lpn);
    if (it == _map.end())
        return;
    const auto &fc = _array.config();
    const std::uint64_t blk = it->second / fc.pagesPerBlock;
    const auto slot =
        static_cast<unsigned>(it->second % fc.pagesPerBlock);
    auto bit = _blocks.find(blk);
    MORPHEUS_ASSERT(bit != _blocks.end(), "mapped page in unknown block");
    MORPHEUS_ASSERT(bit->second.pageLpn[slot] == lpn,
                    "reverse map inconsistent");
    bit->second.pageLpn[slot] = kUnmapped;
    MORPHEUS_ASSERT(bit->second.validPages > 0, "valid count underflow");
    --bit->second.validPages;
    _map.erase(it);
}

flash::PagePointer
Ftl::allocatePage(std::uint64_t lpn, sim::Tick now, sim::Tick *gc_done)
{
    const auto &fc = _array.config();
    const unsigned planes = fc.planes();

    // Trigger GC before picking a block (never recursively from GC's
    // own relocation writes).
    if (!_inGc && _freeBlocks.size() < _config.gcLowWatermark) {
        const sim::Tick t = collectGarbage(now);
        if (gc_done)
            *gc_done = std::max(*gc_done, t);
    }

    for (unsigned attempt = 0; attempt < planes; ++attempt) {
        const unsigned plane =
            static_cast<unsigned>(_nextPlane++ % planes);
        std::uint64_t &active = _activeBlocks[plane];

        if (active != kUnmapped) {
            BlockState &bs = _blocks.at(active);
            if (bs.writtenPages < fc.pagesPerBlock) {
                const unsigned slot = bs.writtenPages++;
                bs.pageLpn[slot] = lpn;
                ++bs.validPages;
                _map[lpn] =
                    flatBlock(bs.addr) * fc.pagesPerBlock + slot;
                return bs.addr.pageAt(slot);
            }
            active = kUnmapped;  // block full; retire from stripe
        }

        // Open a fresh block for this plane if the pool has one.
        const auto fit = std::find_if(
            _freeBlocks.rbegin(), _freeBlocks.rend(),
            [&](const flash::BlockPointer &b) {
                return planeIndex(fc, b) == plane;
            });
        if (fit == _freeBlocks.rend())
            continue;  // no free block in this plane; try the next
        const flash::BlockPointer addr = *fit;
        _freeBlocks.erase(std::next(fit).base());

        const std::uint64_t blk = flatBlock(addr);
        BlockState bs;
        bs.addr = addr;
        bs.pageLpn.assign(fc.pagesPerBlock, kUnmapped);
        const auto [bit, inserted] = _blocks.emplace(blk, std::move(bs));
        MORPHEUS_ASSERT(inserted, "block opened twice");
        active = blk;

        BlockState &nb = bit->second;
        const unsigned slot = nb.writtenPages++;
        nb.pageLpn[slot] = lpn;
        ++nb.validPages;
        _map[lpn] = blk * fc.pagesPerBlock + slot;
        return nb.addr.pageAt(slot);
    }
    MORPHEUS_PANIC("FTL out of free blocks (over-provisioning exhausted)");
}

sim::Tick
Ftl::collectGarbage(sim::Tick now)
{
    const auto &fc = _array.config();
    _inGc = true;
    ++_gcRuns;
    sim::Tick done = now;

    while (_freeBlocks.size() < _config.gcHighWatermark) {
        // Greedy victim: fewest valid pages among full, non-active
        // blocks; ties go to the least-erased block (static wear
        // levelling — cycling cold blocks back into service).
        std::uint64_t victim = kUnmapped;
        unsigned best_valid = std::numeric_limits<unsigned>::max();
        std::uint64_t best_wear =
            std::numeric_limits<std::uint64_t>::max();
        for (const auto &[blk, bs] : _blocks) {
            if (bs.writtenPages < fc.pagesPerBlock)
                continue;  // still open for writes
            if (std::find(_activeBlocks.begin(), _activeBlocks.end(),
                          blk) != _activeBlocks.end()) {
                continue;
            }
            const std::uint64_t wear = _array.eraseCount(bs.addr);
            if (bs.validPages < best_valid ||
                (bs.validPages == best_valid && wear < best_wear)) {
                best_valid = bs.validPages;
                best_wear = wear;
                victim = blk;
            }
        }
        if (victim == kUnmapped)
            break;  // nothing reclaimable

        BlockState victim_state = _blocks.at(victim);

        // Relocate every valid page, then erase the victim.
        sim::Tick reads_done = now;
        for (unsigned slot = 0; slot < fc.pagesPerBlock; ++slot) {
            const std::uint64_t lpn = victim_state.pageLpn[slot];
            if (lpn == kUnmapped)
                continue;
            const auto addr = victim_state.addr.pageAt(slot);
            std::vector<std::uint8_t> data = _array.peek(addr);
            const sim::Tick rd = _array.read(addr, now);
            reads_done = std::max(reads_done, rd);

            invalidate(lpn);
            sim::Tick unused = 0;
            const auto dst = allocatePage(lpn, rd, &unused);
            const sim::Tick wr = _array.program(dst, std::move(data), rd);
            done = std::max(done, wr);
            ++_gcRelocated;
        }

        _blocks.erase(victim);
        const sim::Tick er =
            _array.erase(victim_state.addr, reads_done);
        done = std::max(done, er);
        _freeBlocks.push_back(victim_state.addr);
    }

    _inGc = false;
    return done;
}

sim::Tick
Ftl::writePages(std::uint64_t lpn, const std::vector<std::uint8_t> &data,
                sim::Tick earliest, DoneCallback cb)
{
    MORPHEUS_ASSERT(!data.empty(), "zero-length FTL write");
    const auto &fc = _array.config();
    const std::uint32_t count = static_cast<std::uint32_t>(
        (data.size() + fc.pageBytes - 1) / fc.pageBytes);
    MORPHEUS_ASSERT(lpn + count <= _logicalPages,
                    "FTL write beyond logical capacity");

    sim::Tick done = earliest;
    for (std::uint32_t i = 0; i < count; ++i) {
        invalidate(lpn + i);
        sim::Tick gc_done = earliest;
        const auto dst = allocatePage(lpn + i, earliest, &gc_done);

        const std::size_t off =
            static_cast<std::size_t>(i) * fc.pageBytes;
        const std::size_t len =
            std::min<std::size_t>(fc.pageBytes, data.size() - off);
        std::vector<std::uint8_t> page(data.begin() + off,
                                       data.begin() + off + len);
        const sim::Tick wr =
            _array.program(dst, std::move(page), gc_done);
        done = std::max(done, wr);
        ++_hostWrites;
    }

    if (cb) {
        _eq.schedule(done, [cb = std::move(cb), done]() { cb(done); },
                     "ftl.write.done");
    }
    return done;
}

std::uint64_t
Ftl::maxEraseDelta() const
{
    std::uint64_t lo = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t hi = 0;
    for (const auto &[blk, bs] : _blocks) {
        const std::uint64_t w = _array.eraseCount(bs.addr);
        lo = std::min(lo, w);
        hi = std::max(hi, w);
    }
    return _blocks.empty() ? 0 : hi - lo;
}

void
Ftl::registerStats(sim::stats::StatSet &set,
                   const std::string &prefix) const
{
    set.registerCounter(prefix + ".hostReads", &_hostReads);
    set.registerCounter(prefix + ".hostWrites", &_hostWrites);
    set.registerCounter(prefix + ".trims", &_trims);
    set.registerCounter(prefix + ".gcRuns", &_gcRuns);
    set.registerCounter(prefix + ".gcRelocated", &_gcRelocated);
}

}  // namespace morpheus::ftl
