/**
 * @file
 * Flash translation layer: page-level mapping, striped write
 * allocation, and greedy garbage collection.
 *
 * The mapping unit is one flash page. Logical pages (LPNs) map to
 * physical pages anywhere in the array; writes go to a round-robin
 * stripe of active blocks (one per plane) so sequential I/O spreads
 * across every channel and die. When the free-block pool drops below a
 * threshold, greedy GC relocates the valid pages of the
 * fewest-valid-pages victim block and erases it.
 *
 * Morpheus-SSD deliberately leaves the FTL untouched (paper §IV-B:
 * "Morpheus-SSD performs no changes to the FTL of the baseline SSD") —
 * both the conventional and the Morpheus command paths call the same
 * read/write entry points here.
 */

#ifndef MORPHEUS_FTL_FTL_HH
#define MORPHEUS_FTL_FTL_HH

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "flash/flash_array.hh"
#include "sim/stats.hh"

namespace morpheus::ftl {

/** FTL tuning parameters. */
struct FtlConfig
{
    /** Fraction of physical blocks reserved as over-provisioning. */
    double overProvisioning = 0.07;
    /** Start GC when the free pool falls to this many blocks. */
    unsigned gcLowWatermark = 8;
    /** Stop GC when the free pool recovers to this many blocks. */
    unsigned gcHighWatermark = 16;
};

/** Page-mapped FTL over a FlashArray. */
class Ftl
{
  public:
    /** Read completion: (tick, concatenated page data). */
    using ReadCallback =
        std::function<void(sim::Tick, std::vector<std::uint8_t>)>;
    using DoneCallback = std::function<void(sim::Tick)>;

    Ftl(sim::EventQueue &eq, flash::FlashArray &array,
        const FtlConfig &config);

    /** Bytes per logical page (== flash page size). */
    std::uint32_t pageBytes() const { return _array.config().pageBytes; }

    /** Number of logical pages exposed (physical minus OP). */
    std::uint64_t logicalPages() const { return _logicalPages; }

    /**
     * Read @p count logical pages starting at @p lpn.
     *
     * Unmapped pages read as zeros (like a trimmed LBA). Pages are
     * fetched in parallel across dies; completion is the latest page.
     *
     * @param media_error  Optional fault-injection out-param: set true
     *         when any constituent flash page read comes back
     *         uncorrectable (time for every page is still charged).
     * @param page_ticks   Optional out-param: per-page flash completion
     *         ticks, in LPN order (unmapped pages complete at
     *         @p earliest). Lets the streaming pipeline start consuming
     *         at the first page's arrival instead of the last's.
     * @return Completion tick; @p cb (optional) fires then with the
     *         concatenated data.
     */
    sim::Tick readPages(std::uint64_t lpn, std::uint32_t count,
                        sim::Tick earliest, ReadCallback cb = nullptr,
                        bool *media_error = nullptr,
                        std::vector<sim::Tick> *page_ticks = nullptr);

    /**
     * Write logical pages starting at @p lpn. @p data is padded to a
     * whole number of pages. Overwrites invalidate prior mappings; GC
     * runs inline when the free pool is low and its time is charged to
     * this write.
     */
    sim::Tick writePages(std::uint64_t lpn,
                         const std::vector<std::uint8_t> &data,
                         sim::Tick earliest, DoneCallback cb = nullptr);

    /**
     * TRIM: drop the mappings of @p count logical pages starting at
     * @p lpn. Trimmed pages read back as zeros and their flash pages
     * become GC-reclaimable immediately. @return completion tick
     * (metadata-only: a few microseconds of firmware work).
     */
    sim::Tick trimPages(std::uint64_t lpn, std::uint32_t count,
                        sim::Tick earliest);

    /** Whether @p lpn currently maps to flash. */
    bool isMapped(std::uint64_t lpn) const;

    /** Zero-time functional read (unmapped => zeros). Test/DMA helper. */
    std::vector<std::uint8_t> peekPage(std::uint64_t lpn) const;

    /** Free blocks remaining in the allocation pool. */
    std::size_t freeBlocks() const { return _freeBlocks.size(); }

    /** Spread between the most- and least-erased written blocks. */
    std::uint64_t maxEraseDelta() const;

    std::uint64_t gcRuns() const { return _gcRuns.value(); }
    std::uint64_t gcPagesRelocated() const { return _gcRelocated.value(); }

    void registerStats(sim::stats::StatSet &set,
                       const std::string &prefix) const;

  private:
    static constexpr std::uint64_t kUnmapped = ~std::uint64_t(0);

    struct BlockState
    {
        flash::BlockPointer addr;
        /** Per-page owning LPN; kUnmapped for invalid/unwritten. */
        std::vector<std::uint64_t> pageLpn;
        unsigned validPages = 0;
        unsigned writtenPages = 0;
    };

    /** Pick the next page of the write stripe, opening blocks as needed. */
    flash::PagePointer allocatePage(std::uint64_t lpn, sim::Tick now,
                                    sim::Tick *gc_done);

    /** Run greedy GC until the high watermark; returns finish tick. */
    sim::Tick collectGarbage(sim::Tick now);

    /** Invalidate the physical page currently backing @p lpn, if any. */
    void invalidate(std::uint64_t lpn);

    std::uint64_t flatBlock(const flash::BlockPointer &b) const;

    sim::EventQueue &_eq;
    flash::FlashArray &_array;
    FtlConfig _config;
    std::uint64_t _logicalPages;

    /** LPN -> flat physical page index. */
    std::unordered_map<std::uint64_t, std::uint64_t> _map;
    /** Flat physical page index -> block state + page slot. */
    std::unordered_map<std::uint64_t, BlockState> _blocks;

    /** Blocks never written or erased and returned to the pool. */
    std::vector<flash::BlockPointer> _freeBlocks;
    /** Active write blocks, one per plane, used round-robin. */
    std::vector<std::uint64_t> _activeBlocks;
    std::size_t _nextPlane = 0;
    bool _inGc = false;

    sim::stats::Counter _hostReads;
    sim::stats::Counter _hostWrites;
    sim::stats::Counter _trims;
    sim::stats::Counter _gcRuns;
    sim::stats::Counter _gcRelocated;
};

}  // namespace morpheus::ftl

#endif  // MORPHEUS_FTL_FTL_HH
