/**
 * @file
 * The shard fabric: N Morpheus-SSDs behind one PCIe switch, driven as
 * a single logical device.
 *
 * HostSystem owns the devices, drivers, and queue pairs; ShardFabric
 * layers the fleet semantics on top — one MorpheusDeviceRuntime +
 * MorpheusRuntime pair per device, a ShardRouter for placement,
 * fleet-wide replication of MINIT applet installs, MREAD fan-out with
 * completion merging, and SSD-to-SSD P2P rebalancing of a hot shard
 * over the switch (reusing the migration machinery's cost model and
 * the nvme_p2p-style BAR windows, here each device's CMB).
 */

#ifndef MORPHEUS_SHARD_SHARD_FABRIC_HH
#define MORPHEUS_SHARD_SHARD_FABRIC_HH

#include <memory>
#include <string>
#include <vector>

#include "core/host_runtime.hh"
#include "core/nvme_p2p.hh"
#include "shard/shard_router.hh"

namespace morpheus::shard {

/** A namespace striped across the fleet. */
struct ShardedFile
{
    std::string name;
    std::uint64_t sizeBytes = 0;
    /** Stripe-granular layout in global order (device + offsets). */
    std::vector<ShardSlice> layout;
    /** One extent per device that holds bytes, indexed by device id;
     *  devices without bytes hold an empty (sizeBytes = 0) extent. */
    std::vector<host::FileExtent> extents;
};

/** Outcome of a fleet-wide fanned-out invocation. */
struct FleetInvokeResult
{
    /** Per-device results, indexed by device (skipped devices keep a
     *  default-constructed entry with accepted = false). */
    std::vector<core::InvokeResult> perDevice;
    /** Merged view: start = min, done = max (the fleet completion is
     *  the straggler's), bytes/commands/wakeups summed. */
    core::InvokeResult merged;
    /** Every participating device accepted its MINIT. */
    bool accepted = true;
    /** Some participating device failed mid-stream. */
    bool failed = false;
    /** Whole-shard replays issued by fleet-level recovery. Each replay
     *  overwrites its device's entry in perDevice, so merged totals
     *  count every shard exactly once no matter how many attempts it
     *  took. */
    std::uint64_t replays = 0;
};

/** Drives the SSD fleet inside a HostSystem. */
class ShardFabric
{
  public:
    explicit ShardFabric(
        host::HostSystem &sys,
        ShardPolicy policy = ShardPolicy::kHash,
        std::uint64_t stripe_bytes = ShardRouter::kDefaultStripeBytes);

    host::HostSystem &sys() { return _sys; }
    ShardRouter &router() { return _router; }
    unsigned numDevices() const { return _sys.numSsds(); }

    core::MorpheusRuntime &runtime(unsigned device)
    {
        return *_runtimes.at(device);
    }
    core::MorpheusDeviceRuntime &deviceRuntime(unsigned device)
    {
        return *_deviceRuntimes.at(device);
    }
    core::NvmeP2p &p2p() { return _p2p; }

    /** Enable driver recovery on every device's driver. */
    void setRecovery(const nvme::DriverRecoveryConfig &cfg);

    /** Set a tenant's DRR weight on every device's arbiter. */
    void setTenantWeight(std::uint32_t tenant, double weight);

    // --- live per-device load signals (hybrid placement) -------------

    /** Declared-but-unserved bytes across @p device's cores. */
    std::uint64_t deviceBacklogBytes(unsigned device);

    /** Resident StorageApp instances across @p device's cores. */
    unsigned deviceQueueDepth(unsigned device);

    /** Cumulative kDsramExhausted MINIT bounces on @p device. */
    std::uint64_t deviceDsramBounces(unsigned device);

    /**
     * Stripe @p data across the fleet (router policy) and ingest each
     * device's shard through its normal write path. Per-device extents
     * are named "<name>.shard<d>".
     */
    ShardedFile ingestSharded(const std::string &name,
                              const std::vector<std::uint8_t> &data);

    /** Functional reassembly of a sharded file (validation). */
    std::vector<std::uint8_t> shardedBytes(const ShardedFile &f) const;

    /**
     * Fan a raw read of the whole sharded file out across the fleet
     * (per-slice kRead commands on each owning device's queues,
     * concurrent in simulated time) and deliver the reassembled bytes
     * at host address @p dst. @return the straggler's completion tick.
     */
    sim::Tick fleetRead(const ShardedFile &f, pcie::Addr dst,
                        sim::Tick now);

    /**
     * Invoke @p image over every shard of @p f: the MINIT applet
     * install is replicated to each device holding bytes, MREAD
     * streams fan out per shard (overlapping in simulated time), and
     * completions merge into FleetInvokeResult. Objects land in
     * per-device host buffers.
     */
    FleetInvokeResult fleetInvoke(const core::StorageAppImage &image,
                                  const ShardedFile &f, sim::Tick now,
                                  const core::InvokeOptions &opts = {});

    /**
     * SSD-to-SSD P2P rebalance: move @p extent to @p dst_device over
     * the switch — source flash -> source DRAM -> P2P DMA into the
     * destination's CMB window -> destination flash — without the
     * payload crossing the host port. @return the new extent (named
     * "<old>@dev<dst>"); @p done receives the completion tick.
     */
    host::FileExtent rebalance(const host::FileExtent &extent,
                               unsigned dst_device, sim::Tick now,
                               sim::Tick *done = nullptr);

  private:
    host::HostSystem &_sys;
    ShardRouter _router;
    core::NvmeP2p _p2p;
    std::vector<std::unique_ptr<core::MorpheusDeviceRuntime>>
        _deviceRuntimes;
    std::vector<std::unique_ptr<core::MorpheusRuntime>> _runtimes;
};

}  // namespace morpheus::shard

#endif  // MORPHEUS_SHARD_SHARD_FABRIC_HH
