/**
 * @file
 * Fleet topology: how many SSDs sit behind the switch, how requests
 * shard across them, and (optionally) per-device geometry — loadable
 * from a small JSON file so device count and fan-out are runtime
 * configuration rather than a hardcode.
 *
 * JSON shape (every key optional):
 *
 *   {
 *     "ssds": 4,
 *     "policy": "hash",            // or "range"
 *     "stripeKiB": 1024,
 *     "devices": [                 // per-device overrides, in order
 *       {"cores": 4, "channels": 8, "diesPerChannel": 4,
 *        "dramMiB": 2048, "label": "rack0"},
 *       {}                         // empty = inherit the template SSD
 *     ]
 *   }
 *
 * Unknown keys are ignored (forward compatibility); malformed JSON is
 * a fatal configuration error.
 */

#ifndef MORPHEUS_SHARD_FLEET_TOPOLOGY_HH
#define MORPHEUS_SHARD_FLEET_TOPOLOGY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "host/system_config.hh"
#include "shard/shard_router.hh"

namespace morpheus::shard {

/** Geometry overrides for one fleet device (0 = inherit template). */
struct DeviceSpec
{
    unsigned cores = 0;
    unsigned channels = 0;
    unsigned diesPerChannel = 0;
    std::uint64_t dramBytes = 0;
    std::string label;
};

/** The fleet-level configuration. */
struct FleetTopology
{
    unsigned numSsds = 1;
    ShardPolicy policy = ShardPolicy::kHash;
    std::uint64_t stripeBytes = ShardRouter::kDefaultStripeBytes;
    /** Per-device overrides; devices beyond the list inherit the
     *  SystemConfig's template SSD. */
    std::vector<DeviceSpec> devices;

    /** Stamp the topology into @p sys: numSsds plus one SsdConfig per
     *  overridden device (template-derived, overrides applied). */
    void apply(host::SystemConfig &sys) const;

    /** A router configured with this topology's policy and stripe. */
    ShardRouter makeRouter() const
    {
        return ShardRouter(numSsds, policy, stripeBytes);
    }

    /** Parse the JSON text above (fatal on malformed input). */
    static FleetTopology fromJson(const std::string &text);

    /** fromJson() over the contents of @p path. */
    static FleetTopology fromFile(const std::string &path);
};

}  // namespace morpheus::shard

#endif  // MORPHEUS_SHARD_FLEET_TOPOLOGY_HH
