#include "shard/shard_fabric.hh"

#include <algorithm>

#include "obs/trace.hh"
#include "sim/logging.hh"

namespace morpheus::shard {

namespace {

/** Rebalance DMA chunk: half the CMB window, so a chunk always fits. */
constexpr std::uint64_t kRebalanceChunkBytes = 8 * sim::kMiB;

}  // namespace

ShardFabric::ShardFabric(host::HostSystem &sys, ShardPolicy policy,
                         std::uint64_t stripe_bytes)
    : _sys(sys), _router(sys.numSsds(), policy, stripe_bytes),
      _p2p(sys)
{
    for (unsigned d = 0; d < _sys.numSsds(); ++d) {
        _deviceRuntimes.push_back(
            std::make_unique<core::MorpheusDeviceRuntime>(_sys.ssd(d)));
        _runtimes.push_back(std::make_unique<core::MorpheusRuntime>(
            _sys, *_deviceRuntimes[d], _p2p, d));
    }
}

void
ShardFabric::setRecovery(const nvme::DriverRecoveryConfig &cfg)
{
    for (unsigned d = 0; d < numDevices(); ++d)
        _sys.nvmeDriver(d).setRecovery(cfg);
}

void
ShardFabric::setTenantWeight(std::uint32_t tenant, double weight)
{
    for (unsigned d = 0; d < numDevices(); ++d)
        _sys.ssd(d).scheduler().arbiter().setTenantWeight(tenant,
                                                          weight);
}

std::uint64_t
ShardFabric::deviceBacklogBytes(unsigned device)
{
    auto &ssd = _sys.ssd(device);
    std::uint64_t bytes = 0;
    for (unsigned c = 0; c < ssd.numCores(); ++c)
        bytes += ssd.scheduler().dispatcher().pendingBytes(c);
    return bytes;
}

unsigned
ShardFabric::deviceQueueDepth(unsigned device)
{
    auto &ssd = _sys.ssd(device);
    unsigned depth = 0;
    for (unsigned c = 0; c < ssd.numCores(); ++c)
        depth += ssd.scheduler().dispatcher().residents(c);
    return depth;
}

std::uint64_t
ShardFabric::deviceDsramBounces(unsigned device)
{
    return _sys.ssd(device).scheduler().dsramBounces();
}

ShardedFile
ShardFabric::ingestSharded(const std::string &name,
                           const std::vector<std::uint8_t> &data)
{
    ShardedFile f;
    f.name = name;
    f.sizeBytes = data.size();
    const std::uint64_t nsid = fnv1a(name.data(), name.size());
    f.layout = _router.splitRange(nsid, 0, data.size());

    // Assemble each device's shard in local-offset order. Placement
    // from byte 0 leaves no interior gaps: every earlier stripe on a
    // device is full, only the namespace's final stripe is partial.
    std::vector<std::vector<std::uint8_t>> blobs(numDevices());
    for (const ShardSlice &s : f.layout) {
        auto &blob = blobs[s.device];
        if (blob.size() < s.localOffset + s.bytes)
            blob.resize(s.localOffset + s.bytes, 0);
        std::copy_n(data.begin() +
                        static_cast<std::ptrdiff_t>(s.globalOffset),
                    s.bytes,
                    blob.begin() +
                        static_cast<std::ptrdiff_t>(s.localOffset));
    }
    f.extents.resize(numDevices());
    for (unsigned d = 0; d < numDevices(); ++d) {
        f.extents[d].deviceId = d;
        if (blobs[d].empty())
            continue;
        f.extents[d] = _sys.createFileOn(
            d, name + ".shard" + std::to_string(d), blobs[d]);
    }
    return f;
}

std::vector<std::uint8_t>
ShardFabric::shardedBytes(const ShardedFile &f) const
{
    std::vector<std::uint8_t> out(f.sizeBytes, 0);
    for (const ShardSlice &s : f.layout) {
        const host::FileExtent &ext = f.extents[s.device];
        const auto piece = _sys.ssd(s.device).peekBytes(
            ext.startByte + s.localOffset, s.bytes);
        std::copy(piece.begin(), piece.end(),
                  out.begin() +
                      static_cast<std::ptrdiff_t>(s.globalOffset));
    }
    return out;
}

sim::Tick
ShardFabric::fleetRead(const ShardedFile &f, pcie::Addr dst,
                       sim::Tick now)
{
    sim::Tick done = now;
    // Slices fan out per device; each device's queue/flash/link
    // timelines serialize its own slices while devices overlap.
    for (const ShardSlice &s : f.layout) {
        const host::FileExtent &ext = f.extents[s.device];
        const sim::Tick t = _sys.ssdBackend(s.device).read(
            ext.startByte + s.localOffset, s.bytes,
            dst + s.globalOffset, now);
        done = std::max(done, t);
    }
    return done;
}

FleetInvokeResult
ShardFabric::fleetInvoke(const core::StorageAppImage &image,
                         const ShardedFile &f, sim::Tick now,
                         const core::InvokeOptions &opts)
{
    FleetInvokeResult fleet;
    fleet.perDevice.resize(numDevices());
    std::vector<bool> participated(numDevices(), false);
    const unsigned cores = _sys.cpu().config().cores;
    for (unsigned d = 0; d < numDevices(); ++d) {
        const host::FileExtent &ext = f.extents[d];
        if (ext.sizeBytes == 0) {
            fleet.perDevice[d].accepted = false;
            continue;
        }
        participated[d] = true;
        // The MINIT applet install is replicated per device (each
        // shard gets its own instance); streams then fan out and
        // overlap — the devices' flash, cores, and links are disjoint,
        // and each host thread spreads onto its own CPU core.
        core::InvokeOptions dev_opts = opts;
        dev_opts.hostCore = (opts.hostCore + d) % cores;
        core::MorpheusRuntime &rt = runtime(d);
        const core::MsStream stream =
            rt.streamCreate(ext, now, dev_opts.hostCore);
        // Object-size upper bound: int-heavy text parses to at most a
        // few binary bytes per text char; 4x + a page is conservative.
        const core::DmaTarget target =
            rt.hostTarget(4 * ext.sizeBytes + 4096);
        fleet.perDevice[d] =
            rt.invoke(image, stream, target, now, dev_opts);
        // Fleet-level recovery mirrors runner.cc: a shard invocation
        // that died on an injected fault (or bounced at admission) is
        // replayed whole — a fresh MINIT instance restreams the shard
        // from byte 0 and OVERWRITES the device's slot. Only the final
        // attempt's bytes/commands/wakeups survive into the merge, so
        // retries never double-count fleet totals. Bounded so a
        // rate-1.0 fault plan can't loop forever.
        for (unsigned replay = 0;
             (fleet.perDevice[d].failed ||
              !fleet.perDevice[d].accepted) &&
             _sys.nvmeDriver(d).recovery().enabled && replay < 8;
             ++replay) {
            const sim::Tick at = fleet.perDevice[d].done;
            const core::MsStream again =
                rt.streamCreate(ext, at, dev_opts.hostCore);
            fleet.perDevice[d] =
                rt.invoke(image, again, target, at, dev_opts);
            ++fleet.replays;
        }
    }
    // Merge once, from each participating device's final attempt only.
    bool first = true;
    for (unsigned d = 0; d < numDevices(); ++d) {
        if (!participated[d])
            continue;
        const core::InvokeResult &r = fleet.perDevice[d];
        fleet.accepted = fleet.accepted && r.accepted;
        fleet.failed = fleet.failed || r.failed;
        if (first) {
            fleet.merged = r;
            first = false;
        } else {
            fleet.merged.start = std::min(fleet.merged.start, r.start);
            fleet.merged.done = std::max(fleet.merged.done, r.done);
            fleet.merged.returnValue += r.returnValue;
            fleet.merged.objectBytes += r.objectBytes;
            fleet.merged.mreadCommands += r.mreadCommands;
            fleet.merged.hostWakeups += r.hostWakeups;
        }
    }
    fleet.merged.accepted = fleet.accepted;
    fleet.merged.failed = fleet.failed;
    return fleet;
}

host::FileExtent
ShardFabric::rebalance(const host::FileExtent &extent,
                       unsigned dst_device, sim::Tick now,
                       sim::Tick *done)
{
    MORPHEUS_ASSERT(numDevices() > 1,
                    "rebalance needs a fleet (CMB windows are only "
                    "mapped with numSsds > 1)");
    MORPHEUS_ASSERT(dst_device < numDevices(),
                    "rebalance: no such device");
    MORPHEUS_ASSERT(dst_device != extent.deviceId,
                    "rebalance onto the owning device");

    ssd::SsdController &src = _sys.ssd(extent.deviceId);
    ssd::SsdController &dst = _sys.ssd(dst_device);
    const auto data = src.peekBytes(extent.startByte, extent.sizeBytes);

    host::FileExtent moved = _sys.reserveExtent(
        dst_device, extent.name + "@dev" + std::to_string(dst_device),
        extent.sizeBytes);

    // Source flash -> source DRAM -> P2P DMA into the destination's
    // CMB -> destination flash, chunked to the CMB window. The
    // payload crosses the switch between the two SSD ports and never
    // touches the host port.
    sim::Tick t = now;
    std::uint64_t off = 0;
    while (off < extent.sizeBytes) {
        const std::uint64_t len = std::min<std::uint64_t>(
            kRebalanceChunkBytes, extent.sizeBytes - off);
        const sim::Tick fetched =
            src.fetchToDram(extent.startByte + off, len, t);
        const sim::Tick landed = _sys.fabric().dmaWrite(
            _sys.ssdPort(extent.deviceId), _sys.cmbBase(dst_device),
            len, fetched);
        std::vector<std::uint8_t> chunk(
            data.begin() + static_cast<std::ptrdiff_t>(off),
            data.begin() + static_cast<std::ptrdiff_t>(off + len));
        t = dst.storeFromDram(moved.startByte + off, chunk, landed);
        off += len;
    }
    moved.readyAt = t;

    if (auto *sink = obs::traceSink()) {
        obs::Span s;
        s.track = "shard.fabric";
        s.name = "rebalance";
        s.category = "shard";
        s.begin = now;
        s.end = t;
        sink->record(s);
    }
    if (done)
        *done = t;
    return moved;
}

}  // namespace morpheus::shard
