/**
 * @file
 * Host-side shard routing for the multi-SSD fleet.
 *
 * The router answers one question: which device owns a given piece of
 * the sharded namespace? Two pluggable policies:
 *  - kHash: FNV-1a over (namespace, stripe index) — pseudo-random
 *    stripe placement, robust to skewed access patterns;
 *  - kRange: round-robin striping by stripe index — deterministic
 *    contiguous layout per device, cheap local-offset arithmetic.
 *
 * Whole objects are placed with shardForKey(); byte ranges are split
 * into per-device slices with splitRange(), which also computes each
 * slice's local (on-device) offset so callers can reassemble.
 */

#ifndef MORPHEUS_SHARD_SHARD_ROUTER_HH
#define MORPHEUS_SHARD_SHARD_ROUTER_HH

#include <cstdint>
#include <string>
#include <vector>

namespace morpheus::shard {

/** How the router maps the namespace onto devices. */
enum class ShardPolicy
{
    kHash,   ///< FNV-1a stripe placement.
    kRange,  ///< Round-robin (striped) ranges.
};

const char *shardPolicyName(ShardPolicy policy);

/** Parse "hash" / "range" (fatal on anything else). */
ShardPolicy shardPolicyFromString(const std::string &name);

/** FNV-1a 64-bit over @p data (the router's hash primitive). */
std::uint64_t fnv1a(const void *data, std::size_t len,
                    std::uint64_t seed = 0xcbf29ce484222325ull);

/** One device's piece of a fanned-out byte range. */
struct ShardSlice
{
    unsigned device = 0;
    /** Byte offset of the slice in the sharded (global) namespace. */
    std::uint64_t globalOffset = 0;
    /** Byte offset on the owning device, relative to the start of the
     *  sharded object's per-device extent. */
    std::uint64_t localOffset = 0;
    std::uint64_t bytes = 0;
};

/** Maps (namespace, LBA/byte range) -> device. */
class ShardRouter
{
  public:
    static constexpr std::uint64_t kDefaultStripeBytes = 1 << 20;

    ShardRouter(unsigned num_shards,
                ShardPolicy policy = ShardPolicy::kHash,
                std::uint64_t stripe_bytes = kDefaultStripeBytes);

    unsigned numShards() const { return _numShards; }
    ShardPolicy policy() const { return _policy; }
    std::uint64_t stripeBytes() const { return _stripeBytes; }

    /** Owning device for a whole keyed object (FNV-1a, both
     *  policies — object placement has no range structure). */
    unsigned shardForKey(const std::string &key) const;

    /** Owning device of stripe @p stripe of namespace @p nsid. */
    unsigned shardForStripe(std::uint64_t nsid,
                            std::uint64_t stripe) const;

    /** Owning device of byte @p global_byte of namespace @p nsid. */
    unsigned shardForByte(std::uint64_t nsid,
                          std::uint64_t global_byte) const;

    /**
     * Split [offset, offset+len) of namespace @p nsid into per-device
     * slices in global order, stripe-granular, with local offsets
     * consistent with a sequential stripe-by-stripe placement of the
     * namespace from byte 0 (what ShardFabric::ingestSharded does).
     * Adjacent slices on the same device with contiguous local bytes
     * are merged.
     */
    std::vector<ShardSlice> splitRange(std::uint64_t nsid,
                                       std::uint64_t offset,
                                       std::uint64_t len) const;

  private:
    unsigned _numShards;
    ShardPolicy _policy;
    std::uint64_t _stripeBytes;
};

}  // namespace morpheus::shard

#endif  // MORPHEUS_SHARD_SHARD_ROUTER_HH
