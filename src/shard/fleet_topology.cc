#include "shard/fleet_topology.hh"

#include <cctype>
#include <fstream>
#include <sstream>

#include "sim/logging.hh"

namespace morpheus::shard {

namespace {

/**
 * Minimal recursive-descent parser for the topology's JSON subset:
 * objects, arrays, strings (no escapes beyond \" and \\), and
 * non-negative integers. The workload-side serde JSON parser is a
 * streaming numeric-records scanner (it *is* the benchmark payload),
 * so configuration parsing stays separate and dependency-free.
 */
class TinyJson
{
  public:
    explicit TinyJson(const std::string &text) : _s(text) {}

    void
    skipWs()
    {
        while (_pos < _s.size() &&
               std::isspace(static_cast<unsigned char>(_s[_pos])))
            ++_pos;
    }

    char
    peek()
    {
        skipWs();
        MORPHEUS_ASSERT(_pos < _s.size(),
                        "fleet topology: truncated JSON");
        return _s[_pos];
    }

    void
    expect(char c)
    {
        MORPHEUS_ASSERT(peek() == c, "fleet topology: expected '", c,
                        "' at offset ", _pos);
        ++_pos;
    }

    bool
    consume(char c)
    {
        if (peek() == c) {
            ++_pos;
            return true;
        }
        return false;
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            MORPHEUS_ASSERT(_pos < _s.size(),
                            "fleet topology: unterminated string");
            const char c = _s[_pos++];
            if (c == '"')
                break;
            if (c == '\\') {
                MORPHEUS_ASSERT(_pos < _s.size(),
                                "fleet topology: bad escape");
                out.push_back(_s[_pos++]);
            } else {
                out.push_back(c);
            }
        }
        return out;
    }

    std::uint64_t
    parseUint()
    {
        skipWs();
        MORPHEUS_ASSERT(_pos < _s.size() &&
                            std::isdigit(static_cast<unsigned char>(
                                _s[_pos])),
                        "fleet topology: expected number at offset ",
                        _pos);
        std::uint64_t v = 0;
        while (_pos < _s.size() &&
               std::isdigit(static_cast<unsigned char>(_s[_pos])))
            v = v * 10 + static_cast<std::uint64_t>(_s[_pos++] - '0');
        return v;
    }

    /** Skip any value (for unknown keys). */
    void
    skipValue()
    {
        const char c = peek();
        if (c == '"') {
            parseString();
        } else if (c == '{') {
            ++_pos;
            skipContainer('}');
        } else if (c == '[') {
            ++_pos;
            skipContainer(']');
        } else {
            // number / true / false / null
            while (_pos < _s.size() && _s[_pos] != ',' &&
                   _s[_pos] != '}' && _s[_pos] != ']' &&
                   !std::isspace(static_cast<unsigned char>(_s[_pos])))
                ++_pos;
        }
    }

    bool
    atEnd()
    {
        while (_pos < _s.size() &&
               std::isspace(static_cast<unsigned char>(_s[_pos])))
            ++_pos;
        return _pos >= _s.size();
    }

  private:
    void
    skipContainer(char close)
    {
        if (consume(close))
            return;
        while (true) {
            if (close == '}') {
                parseString();
                expect(':');
            }
            skipValue();
            if (!consume(','))
                break;
        }
        expect(close);
    }

    const std::string &_s;
    std::size_t _pos = 0;
};

DeviceSpec
parseDevice(TinyJson &j)
{
    DeviceSpec dev;
    j.expect('{');
    if (j.consume('}'))
        return dev;
    while (true) {
        const std::string key = j.parseString();
        j.expect(':');
        if (key == "cores") {
            dev.cores = static_cast<unsigned>(j.parseUint());
        } else if (key == "channels") {
            dev.channels = static_cast<unsigned>(j.parseUint());
        } else if (key == "diesPerChannel") {
            dev.diesPerChannel = static_cast<unsigned>(j.parseUint());
        } else if (key == "dramMiB") {
            dev.dramBytes = j.parseUint() * (1ull << 20);
        } else if (key == "label") {
            dev.label = j.parseString();
        } else {
            j.skipValue();
        }
        if (!j.consume(','))
            break;
    }
    j.expect('}');
    return dev;
}

}  // namespace

FleetTopology
FleetTopology::fromJson(const std::string &text)
{
    FleetTopology topo;
    TinyJson j(text);
    j.expect('{');
    if (!j.consume('}')) {
        while (true) {
            const std::string key = j.parseString();
            j.expect(':');
            if (key == "ssds") {
                topo.numSsds = static_cast<unsigned>(j.parseUint());
            } else if (key == "policy") {
                topo.policy = shardPolicyFromString(j.parseString());
            } else if (key == "stripeKiB") {
                topo.stripeBytes = j.parseUint() * 1024;
            } else if (key == "devices") {
                j.expect('[');
                if (!j.consume(']')) {
                    while (true) {
                        topo.devices.push_back(parseDevice(j));
                        if (!j.consume(','))
                            break;
                    }
                    j.expect(']');
                }
            } else {
                j.skipValue();
            }
            if (!j.consume(','))
                break;
        }
        j.expect('}');
    }
    MORPHEUS_ASSERT(j.atEnd(),
                    "fleet topology: trailing JSON content");
    MORPHEUS_ASSERT(topo.numSsds > 0, "fleet topology: ssds = 0");
    MORPHEUS_ASSERT(topo.stripeBytes > 0,
                    "fleet topology: zero stripe");
    return topo;
}

FleetTopology
FleetTopology::fromFile(const std::string &path)
{
    std::ifstream in(path);
    MORPHEUS_ASSERT(in.good(), "cannot open fleet topology: ", path);
    std::ostringstream buf;
    buf << in.rdbuf();
    return fromJson(buf.str());
}

void
FleetTopology::apply(host::SystemConfig &sys) const
{
    sys.numSsds = numSsds;
    if (devices.empty())
        return;
    sys.ssdConfigs.clear();
    for (unsigned d = 0; d < numSsds; ++d) {
        ssd::SsdConfig cfg = sys.ssd;  // template
        if (d < devices.size()) {
            const DeviceSpec &dev = devices[d];
            if (dev.cores)
                cfg.numCores = dev.cores;
            if (dev.channels)
                cfg.flash.channels = dev.channels;
            if (dev.diesPerChannel)
                cfg.flash.diesPerChannel = dev.diesPerChannel;
            if (dev.dramBytes)
                cfg.dramBytes = dev.dramBytes;
            if (!dev.label.empty())
                cfg.label = dev.label;
        }
        sys.ssdConfigs.push_back(cfg);
    }
}

}  // namespace morpheus::shard
