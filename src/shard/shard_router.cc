#include "shard/shard_router.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace morpheus::shard {

const char *
shardPolicyName(ShardPolicy policy)
{
    switch (policy) {
      case ShardPolicy::kHash:
        return "hash";
      case ShardPolicy::kRange:
        return "range";
    }
    return "?";
}

ShardPolicy
shardPolicyFromString(const std::string &name)
{
    if (name == "hash")
        return ShardPolicy::kHash;
    if (name == "range")
        return ShardPolicy::kRange;
    MORPHEUS_FATAL("unknown shard policy: ", name,
                   " (expected hash|range)");
}

std::uint64_t
fnv1a(const void *data, std::size_t len, std::uint64_t seed)
{
    const auto *p = static_cast<const unsigned char *>(data);
    std::uint64_t h = seed;
    for (std::size_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

ShardRouter::ShardRouter(unsigned num_shards, ShardPolicy policy,
                         std::uint64_t stripe_bytes)
    : _numShards(num_shards), _policy(policy),
      _stripeBytes(stripe_bytes)
{
    MORPHEUS_ASSERT(num_shards > 0, "router with no shards");
    MORPHEUS_ASSERT(stripe_bytes > 0, "zero stripe size");
}

unsigned
ShardRouter::shardForKey(const std::string &key) const
{
    return static_cast<unsigned>(fnv1a(key.data(), key.size()) %
                                 _numShards);
}

unsigned
ShardRouter::shardForStripe(std::uint64_t nsid,
                            std::uint64_t stripe) const
{
    if (_policy == ShardPolicy::kRange)
        return static_cast<unsigned>(stripe % _numShards);
    const std::uint64_t words[2] = {nsid, stripe};
    return static_cast<unsigned>(fnv1a(words, sizeof(words)) %
                                 _numShards);
}

unsigned
ShardRouter::shardForByte(std::uint64_t nsid,
                          std::uint64_t global_byte) const
{
    return shardForStripe(nsid, global_byte / _stripeBytes);
}

std::vector<ShardSlice>
ShardRouter::splitRange(std::uint64_t nsid, std::uint64_t offset,
                        std::uint64_t len) const
{
    std::vector<ShardSlice> out;
    if (len == 0)
        return out;
    const std::uint64_t last_stripe = (offset + len - 1) / _stripeBytes;

    // Local offsets mirror a sequential stripe-by-stripe placement of
    // the namespace from byte 0: stripe s lands on its device after
    // every earlier stripe routed there. O(stripes) — fine at
    // simulation scale and valid for both policies.
    std::vector<std::uint64_t> local_cursor(_numShards, 0);
    for (std::uint64_t s = 0; s <= last_stripe; ++s) {
        const unsigned dev = shardForStripe(nsid, s);
        const std::uint64_t stripe_begin = s * _stripeBytes;
        const std::uint64_t stripe_end = stripe_begin + _stripeBytes;
        const std::uint64_t begin = std::max(stripe_begin, offset);
        const std::uint64_t end = std::min(stripe_end, offset + len);
        if (begin < end) {
            ShardSlice slice;
            slice.device = dev;
            slice.globalOffset = begin;
            slice.localOffset =
                local_cursor[dev] + (begin - stripe_begin);
            slice.bytes = end - begin;
            if (!out.empty()) {
                ShardSlice &prev = out.back();
                if (prev.device == dev &&
                    prev.globalOffset + prev.bytes ==
                        slice.globalOffset &&
                    prev.localOffset + prev.bytes ==
                        slice.localOffset) {
                    prev.bytes += slice.bytes;
                    slice.bytes = 0;
                }
            }
            if (slice.bytes > 0)
                out.push_back(slice);
        }
        local_cursor[dev] += _stripeBytes;
    }
    return out;
}

}  // namespace morpheus::shard
