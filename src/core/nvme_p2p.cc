#include "core/nvme_p2p.hh"

namespace morpheus::core {

NvmeP2p::~NvmeP2p()
{
    if (_mapped)
        unmapGpuMemory();
}

pcie::Addr
NvmeP2p::mapGpuMemory()
{
    const pcie::Addr base = _sys.config().gpuBarBase;
    if (!_mapped) {
        _sys.fabric().mapWindow(base, _sys.gpu().config().memBytes,
                                _sys.gpuPort(), "gpu-bar",
                                &_sys.gpu());
        _mapped = true;
    }
    return base;
}

void
NvmeP2p::unmapGpuMemory()
{
    if (_mapped) {
        _sys.fabric().unmapWindow(_sys.config().gpuBarBase);
        _mapped = false;
    }
}

}  // namespace morpheus::core
