/**
 * @file
 * Device-side Morpheus runtime: the firmware that executes the four
 * extension commands on the SSD (paper §IV-B).
 *
 * Implements ssd::MorpheusEngine. Keeps a per-instance table (the
 * instance ID distinguishes host threads), maps each instance to one
 * embedded core, charges parse work to that core's timeline using the
 * embedded cost model, and DMAs staged objects to the instance's
 * target (host memory, or GPU memory through NVMe-P2P).
 */

#ifndef MORPHEUS_CORE_DEVICE_RUNTIME_HH
#define MORPHEUS_CORE_DEVICE_RUNTIME_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/storage_app.hh"
#include "obs/trace.hh"
#include "sim/stats.hh"
#include "ssd/ssd_controller.hh"

namespace morpheus::core {

/** Runtime options for one StorageApp instance. */
struct InstanceSetup
{
    const StorageAppImage *image = nullptr;
    DmaTarget target;
    std::uint32_t arg = 0;
    /** Staging flush threshold (0 = default: granted D-SRAM / 4). */
    std::uint32_t flushThreshold = 0;
    /**
     * Requested per-instance D-SRAM budget in bytes; also carried
     * in-band by MINIT (PRP2 low dword). Meaningful only with
     * SchedConfig::dsramPartitioning; 0 = the core's default share
     * (dsramBytes / maxInstancesPerCore).
     */
    std::uint32_t dsramBytes = 0;
};

/** The Morpheus command engine inside the SSD. */
class MorpheusDeviceRuntime : public ssd::MorpheusEngine
{
  public:
    explicit MorpheusDeviceRuntime(ssd::SsdController &ssd);

    /**
     * Functional side channel standing in for the code image the MINIT
     * command DMAs in: the host runtime stages the factory + target
     * here immediately before issuing MINIT with the same instance ID.
     */
    void stageInstance(std::uint32_t instance_id,
                       const InstanceSetup &setup);

    /** Drop a staged setup whose MINIT was refused by the scheduler
     *  front end (the engine never saw the command). */
    void unstageInstance(std::uint32_t instance_id);

    // ssd::MorpheusEngine
    nvme::CommandResult execute(const nvme::Command &cmd,
                                sim::Tick start) override;

    /** Bytes of application objects DMAed out so far. */
    std::uint64_t objectBytesOut() const { return _objectBytes.value(); }

    /**
     * Object bytes delivered on behalf of @p instance_id, consumed:
     * the counter resets to zero. Survives the instance's MDEINIT so
     * the host runtime can collect it after teardown; correct under
     * interleaved multi-tenant streams where the global counter's
     * delta is not.
     */
    std::uint64_t takeDeliveredBytes(std::uint32_t instance_id);

    /** Number of live instances (for tests). */
    std::size_t liveInstances() const { return _instances.size(); }

    void registerStats(sim::stats::StatSet &set,
                       const std::string &prefix) const;

  private:
    struct Instance
    {
        std::uint32_t id = 0;
        std::uint32_t tenant = 0;  ///< Submitting tenant (MINIT cdw15).
        InstanceSetup setup;
        std::unique_ptr<StorageApp> app;
        std::unique_ptr<MsChunkContext> ctx;
        unsigned coreId = 0;
        std::uint32_t codeBytes = 0;  ///< I-SRAM bytes actually loaded.
        /** D-SRAM bytes reserved on coreId (0 = unpartitioned). */
        std::uint32_t dsramGranted = 0;
        pcie::Addr dmaCursor = 0;
        /** MWRITE region cursor: base SLBA of the region being
         *  serialized and the bytes landed there so far. Independent
         *  of dmaCursor, which tracks the MREAD DMA target. */
        std::uint64_t writeSlba = 0;
        std::uint64_t writeCursor = 0;
        bool writeRegionOpen = false;
        std::uint64_t chunksProcessed = 0;
        /** Flash byte offset the next MREAD chunk must start at: the
         *  parse is a stateful stream, so chunks have to be fed in
         *  order. ~0 until the first chunk pins the stream origin. A
         *  failed chunk leaves this pointing at itself, so only its
         *  exact resubmission is accepted and any later chunk already
         *  in flight bounces with kSequenceError instead of corrupting
         *  the parse. */
        std::uint64_t expectedByteOff = ~std::uint64_t{0};
        /** The app crashed mid-command (injected fault): every further
         *  data command bounces with kAppFault; MDEINIT tears the
         *  instance down without running the app's finish hooks. */
        bool poisoned = false;
    };

    nvme::CommandResult doMInit(const nvme::Command &cmd,
                                sim::Tick start);
    nvme::CommandResult doMRead(const nvme::Command &cmd,
                                sim::Tick start);
    nvme::CommandResult doMWrite(const nvme::Command &cmd,
                                 sim::Tick start);
    nvme::CommandResult doMDeinit(const nvme::Command &cmd,
                                  sim::Tick start);

    /** DMA the staged flush segments; @return last completion tick.
     *  @p trace attributes the transfer spans to the command that
     *  triggered the flushes. */
    sim::Tick drainFlushes(Instance &inst,
                           std::vector<std::vector<std::uint8_t>> segments,
                           sim::Tick earliest, obs::TraceId trace);

    /** Ask the dispatcher whether the instance should move to a less
     *  loaded core before its next chunk, and commit the move. @p trace
     *  is the chunk command paying for the move. */
    void maybeMigrate(Instance &inst, sim::Tick now, obs::TraceId trace);

    /**
     * Watchdog force-kill of a hung instance: release its I-SRAM and
     * D-SRAM, free its scheduler slot and placement, and erase it from
     * the instance table (the host's MDEINIT-and-reinstall sees
     * kNoSuchInstance and starts fresh). The hung command's CQE is
     * suppressed by the caller.
     */
    void watchdogKill(std::uint32_t instance_id);

    ssd::SsdController &_ssd;
    std::unordered_map<std::uint32_t, InstanceSetup> _staged;
    std::unordered_map<std::uint32_t, Instance> _instances;
    /** Per-instance delivered bytes (outlives the instance entry). */
    std::unordered_map<std::uint32_t, std::uint64_t> _delivered;

    sim::stats::Counter _minits;
    sim::stats::Counter _mreads;
    sim::stats::Counter _mwrites;
    sim::stats::Counter _mdeinits;
    sim::stats::Counter _objectBytes;
    sim::stats::Counter _rawBytesIn;
};

}  // namespace morpheus::core

#endif  // MORPHEUS_CORE_DEVICE_RUNTIME_HH
