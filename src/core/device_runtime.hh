/**
 * @file
 * Device-side Morpheus runtime: the firmware that executes the four
 * extension commands on the SSD (paper §IV-B).
 *
 * Implements ssd::MorpheusEngine. Keeps a per-instance table (the
 * instance ID distinguishes host threads), maps each instance to one
 * embedded core, charges parse work to that core's timeline using the
 * embedded cost model, and DMAs staged objects to the instance's
 * target (host memory, or GPU memory through NVMe-P2P).
 */

#ifndef MORPHEUS_CORE_DEVICE_RUNTIME_HH
#define MORPHEUS_CORE_DEVICE_RUNTIME_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/storage_app.hh"
#include "obs/trace.hh"
#include "sim/stats.hh"
#include "ssd/ssd_controller.hh"

namespace morpheus::core {

/** Runtime options for one StorageApp instance. */
struct InstanceSetup
{
    const StorageAppImage *image = nullptr;
    DmaTarget target;
    std::uint32_t arg = 0;
    /** Staging flush threshold (0 = default: granted D-SRAM / 4). */
    std::uint32_t flushThreshold = 0;
    /**
     * Requested per-instance D-SRAM budget in bytes; also carried
     * in-band by MINIT (PRP2 low dword). Meaningful only with
     * SchedConfig::dsramPartitioning; 0 = the core's default share
     * (dsramBytes / maxInstancesPerCore).
     */
    std::uint32_t dsramBytes = 0;
    /**
     * Pushdown descriptor dwords (DESIGN.md §16): the projection mask
     * + predicate program a scan applet executes. Functionally staged
     * like the code image; MINIT carries the dword count (NLB) and the
     * descriptor digest (PRP2 high dword) in-band, and the descriptor
     * bytes ride the PRP1 image fetch. Empty = no pushdown.
     */
    std::vector<std::uint32_t> pushdown;
};

/** The Morpheus command engine inside the SSD. */
class MorpheusDeviceRuntime : public ssd::MorpheusEngine
{
  public:
    explicit MorpheusDeviceRuntime(ssd::SsdController &ssd);

    /**
     * Functional side channel standing in for the code image the MINIT
     * command DMAs in: the host runtime stages the factory + target
     * here immediately before issuing MINIT with the same instance ID.
     */
    void stageInstance(std::uint32_t instance_id,
                       const InstanceSetup &setup);

    /** Drop a staged setup whose MINIT was refused by the scheduler
     *  front end (the engine never saw the command). */
    void unstageInstance(std::uint32_t instance_id);

    // ssd::MorpheusEngine
    nvme::CommandResult execute(const nvme::Command &cmd,
                                sim::Tick start) override;

    /** Bytes of application objects DMAed out so far. */
    std::uint64_t objectBytesOut() const { return _objectBytes.value(); }

    /** Raw stream bytes fetched from flash so far (cache hits are
     *  served from DRAM and do not move this). */
    std::uint64_t rawBytesIn() const { return _rawBytesIn.value(); }

    /**
     * Object bytes delivered on behalf of @p instance_id, consumed:
     * the counter resets to zero. Survives the instance's MDEINIT so
     * the host runtime can collect it after teardown; correct under
     * interleaved multi-tenant streams where the global counter's
     * delta is not.
     */
    std::uint64_t takeDeliveredBytes(std::uint32_t instance_id);

    /** Whether @p instance_id's stream was served from the object
     *  cache, consumed (same lifetime contract as
     *  takeDeliveredBytes): the host runtime collects it after
     *  MDEINIT to surface per-request hit flags. */
    bool takeServedFromCache(std::uint32_t instance_id);

    /** Number of live instances (for tests). */
    std::size_t liveInstances() const { return _instances.size(); }

    // Streaming-pipeline observability (tests + tools).
    std::uint64_t readaheadIssued() const
    {
        return _readaheadIssued.value();
    }
    std::uint64_t readaheadHits() const
    {
        return _readaheadHits.value();
    }
    std::uint64_t readaheadMediaDiscards() const
    {
        return _readaheadMediaDiscards.value();
    }
    std::uint64_t readaheadDropped() const
    {
        return _readaheadDropped.value();
    }
    std::uint64_t subBuffersParsed() const
    {
        return _subBuffersParsed.value();
    }
    std::uint64_t flushSegmentsCoalesced() const
    {
        return _flushSegmentsCoalesced.value();
    }

    void registerStats(sim::stats::StatSet &set,
                       const std::string &prefix) const;

  private:
    struct Instance
    {
        std::uint32_t id = 0;
        std::uint32_t tenant = 0;  ///< Submitting tenant (MINIT cdw15).
        InstanceSetup setup;
        std::unique_ptr<StorageApp> app;
        std::unique_ptr<MsChunkContext> ctx;
        unsigned coreId = 0;
        std::uint32_t codeBytes = 0;  ///< I-SRAM bytes actually loaded.
        /** D-SRAM bytes reserved on coreId (0 = unpartitioned). */
        std::uint32_t dsramGranted = 0;
        pcie::Addr dmaCursor = 0;
        /** MWRITE region cursor: base SLBA of the region being
         *  serialized and the bytes landed there so far. Independent
         *  of dmaCursor, which tracks the MREAD DMA target. */
        std::uint64_t writeSlba = 0;
        std::uint64_t writeCursor = 0;
        bool writeRegionOpen = false;
        std::uint64_t chunksProcessed = 0;
        /** Flash byte offset the next MREAD chunk must start at: the
         *  parse is a stateful stream, so chunks have to be fed in
         *  order. ~0 until the first chunk pins the stream origin. A
         *  failed chunk leaves this pointing at itself, so only its
         *  exact resubmission is accepted and any later chunk already
         *  in flight bounces with kSequenceError instead of corrupting
         *  the parse. */
        std::uint64_t expectedByteOff = ~std::uint64_t{0};
        /** The app crashed mid-command (injected fault): every further
         *  data command bounces with kAppFault; MDEINIT tears the
         *  instance down without running the app's finish hooks. */
        bool poisoned = false;
        /**
         * Object-cache state (DESIGN.md §13), all inert unless
         * SsdConfig::cache.enabled. The declared stream length (MINIT
         * SLBA) plus the first MREAD's origin identify the raw range;
         * a first-chunk cache hit flips cacheServed and the whole
         * parsed object is DMAed at once (later chunks of the stream
         * complete trivially, MDEINIT returns the cached value without
         * running the app). On a miss the outbound flush segments
         * accumulate in cachePayload; a clean MDEINIT that covered the
         * full declared range inserts them. MWRITE makes the instance
         * uncacheable (its stream is not a pure parse), and a crash /
         * watchdog kill drops the pending payload with the instance.
         */
        std::uint64_t declaredStreamBytes = 0;
        std::uint64_t streamOrigin = ~std::uint64_t{0};
        std::uint32_t streamNsid = 1;
        /** Digest of the MINIT pushdown descriptor (0 = none). Part of
         *  the cache key: a differently-predicated scan of the same
         *  raw range is a different object. */
        std::uint32_t pushdownDigest = 0;
        bool cacheServed = false;
        std::uint32_t cachedReturnValue = 0;
        bool cacheable = true;
        std::vector<std::uint8_t> cachePayload;
        /**
         * Streaming-pipeline readahead (DESIGN.md §11): timing of the
         * next chunk's prefetched flash pages. Pure schedule state —
         * functional bytes always come from peekBytes at MREAD time,
         * so discarding the buffer only costs a re-fetch. A prefetch
         * that drew an uncorrectable page is marked `media` and is
         * discarded on use, never fed to the parser.
         */
        struct Readahead
        {
            bool valid = false;
            bool media = false;
            std::uint64_t byteOff = 0;
            std::uint64_t len = 0;
            ssd::PagedFetch fetch;
        };
        Readahead readahead;
    };

    nvme::CommandResult doMInit(const nvme::Command &cmd,
                                sim::Tick start);
    nvme::CommandResult doMRead(const nvme::Command &cmd,
                                sim::Tick start);

    /**
     * Pipelined MREAD data path (SsdConfig::pipeline.enabled): chunk
     * timing comes from the instance's readahead buffer when the
     * prefetch covered this range cleanly, the chunk is parsed in
     * D-SRAM-sized sub-buffers so parse(sub_i) overlaps fetch and
     * flush DMA of its neighbours, and contiguous flush segments are
     * coalesced into bounded DMA descriptors. Functional results and
     * ParseCost cycle totals match the serial path; only the schedule
     * differs. Called by doMRead after the common admission checks
     * (instance lookup, poison, migration, sequence guard).
     */
    nvme::CommandResult mreadPipelined(Instance &inst,
                                       const nvme::Command &cmd,
                                       std::uint64_t byte_off,
                                       std::uint64_t valid,
                                       sim::Tick start);

    /**
     * Issue the next chunk's flash page reads into the bounded
     * controller-DRAM readahead buffer, starting no earlier than
     * @p earliest (the tick the current chunk's fetch drained, so the
     * prefetch runs under the current chunk's parse). Clamped to
     * device capacity and PipelineConfig::readaheadBufferBytes.
     */
    void issueReadahead(Instance &inst, std::uint64_t byte_off,
                        std::uint64_t len, sim::Tick earliest,
                        obs::TraceId trace);

    /**
     * Merge address-contiguous flush segments (they are contiguous by
     * construction: the DMA cursor advances segment by segment) into
     * descriptors of at most @p max_bytes. One cyclesPerFlush and one
     * outbound DMA are charged per merged descriptor.
     */
    static std::vector<std::vector<std::uint8_t>>
    coalesceSegments(std::vector<std::vector<std::uint8_t>> segments,
                     std::uint64_t max_bytes);
    nvme::CommandResult doMWrite(const nvme::Command &cmd,
                                 sim::Tick start);
    nvme::CommandResult doMDeinit(const nvme::Command &cmd,
                                  sim::Tick start);

    /** DMA the staged flush segments; @return last completion tick.
     *  @p trace attributes the transfer spans to the command that
     *  triggered the flushes. */
    sim::Tick drainFlushes(Instance &inst,
                           std::vector<std::vector<std::uint8_t>> segments,
                           sim::Tick earliest, obs::TraceId trace);

    /** Ask the dispatcher whether the instance should move to a less
     *  loaded core before its next chunk, and commit the move. @p trace
     *  is the chunk command paying for the move. */
    void maybeMigrate(Instance &inst, sim::Tick now, obs::TraceId trace);

    /**
     * Watchdog force-kill of a hung instance: release its I-SRAM and
     * D-SRAM, free its scheduler slot and placement, and erase it from
     * the instance table (the host's MDEINIT-and-reinstall sees
     * kNoSuchInstance and starts fresh). The hung command's CQE is
     * suppressed by the caller.
     */
    void watchdogKill(std::uint32_t instance_id);

    /** Cache key for @p inst's pinned stream (cache enabled only). */
    ssd::ObjectCacheKey cacheKeyFor(const Instance &inst) const;

    ssd::SsdController &_ssd;
    std::unordered_map<std::uint32_t, InstanceSetup> _staged;
    std::unordered_map<std::uint32_t, Instance> _instances;
    /** Per-instance delivered bytes (outlives the instance entry). */
    std::unordered_map<std::uint32_t, std::uint64_t> _delivered;
    /** Instances whose stream was cache-served (outlives the entry;
     *  consumed by takeServedFromCache). */
    std::unordered_map<std::uint32_t, bool> _cacheServed;
    /** Last installed code version per applet name: a re-install at a
     *  different version invalidates the applet's cached objects. */
    std::unordered_map<std::string, std::uint32_t> _appletVersions;

    sim::stats::Counter _minits;
    sim::stats::Counter _mreads;
    sim::stats::Counter _mwrites;
    sim::stats::Counter _mdeinits;
    sim::stats::Counter _objectBytes;
    sim::stats::Counter _rawBytesIn;

    // Streaming-pipeline counters (DESIGN.md §11).
    sim::stats::Counter _readaheadIssued;
    sim::stats::Counter _readaheadHits;
    /** Prefetches discarded because a page came back uncorrectable. */
    sim::stats::Counter _readaheadMediaDiscards;
    /** Prefetches dropped (migration, or a mismatched next chunk). */
    sim::stats::Counter _readaheadDropped;
    sim::stats::Counter _subBuffersParsed;
    /** Flush segments absorbed into a preceding DMA descriptor. */
    sim::stats::Counter _flushSegmentsCoalesced;
};

}  // namespace morpheus::core

#endif  // MORPHEUS_CORE_DEVICE_RUNTIME_HH
