/**
 * @file
 * The standard StorageApps: device-side deserializers for each of the
 * text formats in serde/formats.hh, plus an on-device serializer for
 * the MWRITE path.
 *
 * Each app is a small state machine that consumes tokens as MREAD
 * chunks deliver them and emits the *exact* binary layout of the
 * corresponding object's toBinary() — so a host (or GPU) buffer filled
 * by Morpheus is bit-identical to one produced by the conventional
 * CPU path, and tests verify that.
 */

#ifndef MORPHEUS_CORE_STANDARD_APPS_HH
#define MORPHEUS_CORE_STANDARD_APPS_HH

#include <memory>

#include "core/compiler.hh"
#include "core/storage_app.hh"
#include "serde/columnar.hh"
#include "serde/csv.hh"
#include "serde/json.hh"

namespace morpheus::core {

/** Edge lists (PageRank/BFS/CC/SSSP). arg bit0 = weighted edges. */
class EdgeListApp : public StorageApp
{
  public:
    explicit EdgeListApp(std::uint32_t arg)
        : _weighted((arg & 1u) != 0)
    {}

    void processChunk(MsChunkContext &ctx) override;
    std::uint32_t returnValue() const override { return _edgesDone; }

  private:
    enum class State { kVertices, kEdges, kSrc, kDst, kWeight };

    bool _weighted;
    State _state = State::kVertices;
    std::uint32_t _edgesExpected = 0;
    std::uint32_t _edgesDone = 0;
};

/** Dense matrices (Gaussian, LUD). */
class MatrixApp : public StorageApp
{
  public:
    explicit MatrixApp(std::uint32_t) {}

    void processChunk(MsChunkContext &ctx) override;
    std::uint32_t returnValue() const override { return _valuesDone; }

  private:
    enum class State { kRows, kCols, kValues };

    State _state = State::kRows;
    std::uint64_t _valuesExpected = 0;
    std::uint32_t _rows = 0;
    std::uint32_t _valuesDone = 0;
};

/** Flat integer arrays (Hybrid Sort). */
class IntArrayApp : public StorageApp
{
  public:
    explicit IntArrayApp(std::uint32_t) {}

    void processChunk(MsChunkContext &ctx) override;
    std::uint32_t returnValue() const override { return _valuesDone; }

  private:
    bool _haveCount = false;
    std::uint32_t _count = 0;
    std::uint32_t _valuesDone = 0;
};

/** Point sets (Kmeans, NN). */
class PointSetApp : public StorageApp
{
  public:
    explicit PointSetApp(std::uint32_t) {}

    void processChunk(MsChunkContext &ctx) override;
    std::uint32_t returnValue() const override { return _valuesDone; }

  private:
    enum class State { kPoints, kDims, kCoords };

    State _state = State::kPoints;
    std::uint32_t _points = 0;
    std::uint64_t _valuesExpected = 0;
    std::uint32_t _valuesDone = 0;
};

/** Sparse COO matrices (SpMV). */
class CooMatrixApp : public StorageApp
{
  public:
    explicit CooMatrixApp(std::uint32_t) {}

    void processChunk(MsChunkContext &ctx) override;
    std::uint32_t returnValue() const override { return _entriesDone; }

  private:
    enum class State { kRows, kCols, kNnz, kRow, kCol, kValue };

    State _state = State::kRows;
    std::uint32_t _nnz = 0;
    std::uint32_t _entriesDone = 0;
};

/**
 * MWRITE-path serializer (the paper's serialization direction,
 * §III/§VII-"our benchmarks spend almost no time serializing"): turns
 * binary i64 values from the host into ASCII text on flash.
 */
class Int64TextSerializerApp : public StorageApp
{
  public:
    explicit Int64TextSerializerApp(std::uint32_t) {}

    void
    processChunk(MsChunkContext &ctx) override
    {
        (void)ctx;  // read path unused
    }

    bool processWriteChunk(MsChunkContext &ctx) override;
    std::uint32_t returnValue() const override { return _valuesDone; }

  private:
    std::uint32_t _valuesDone = 0;
};

/**
 * Binary-input deserializer (the paper's §III "other input formats
 * (e.g. binary inputs)"): the file holds big-endian u32 words (the
 * cross-architecture interchange layout §II motivates); the device
 * byte-swaps them into native little-endian objects as it streams
 * them out. Header: one big-endian u32 count.
 */
class EndianSwapApp : public StorageApp
{
  public:
    explicit EndianSwapApp(std::uint32_t) {}

    void processChunk(MsChunkContext &ctx) override;
    std::uint32_t returnValue() const override { return _wordsDone; }

  private:
    bool _haveCount = false;
    std::uint32_t _count = 0;
    std::uint32_t _wordsDone = 0;
};

/**
 * Format-agnostic view: emits every number in the file as an f64
 * stream. Together with the typed applets this demonstrates §III's
 * "the storage device ... can transform the same file into different
 * kinds of data structures according to the demand of applications".
 */
class FlatNumbersApp : public StorageApp
{
  public:
    explicit FlatNumbersApp(std::uint32_t) {}

    void
    processChunk(MsChunkContext &ctx) override
    {
        double v = 0.0;
        while (ctx.msScanfNumber(&v, nullptr)) {
            ctx.msEmitValue<double>(v);
            ++_count;
        }
    }

    std::uint32_t returnValue() const override { return _count; }

  private:
    std::uint32_t _count = 0;
};

/**
 * CSV table deserializer (§II lists CSV among the motivating
 * interchange formats): parses a header row of column names and
 * numeric rows, emitting the binary layout of serde::CsvTableObject.
 */
class CsvTableApp : public StorageApp
{
  public:
    explicit CsvTableApp(std::uint32_t) {}

    void processChunk(MsChunkContext &ctx) override;
    void finish(MsChunkContext &ctx) override;
    std::uint32_t returnValue() const override { return _rows; }

  private:
    void pump(MsChunkContext &ctx);

    serde::CsvRowParser _parser;
    std::vector<std::string> _columns;
    bool _headerEmitted = false;
    std::uint32_t _rows = 0;
};

/**
 * JSON record-array deserializer (§II lists JSON among the motivating
 * interchange formats). Streams the document through an incremental
 * JsonRowParser and emits the record-framed binary layout of
 * serde::JsonRecordsObject.
 */
class JsonRecordsApp : public StorageApp
{
  public:
    explicit JsonRecordsApp(std::uint32_t) {}

    void processChunk(MsChunkContext &ctx) override;
    void finish(MsChunkContext &ctx) override;
    std::uint32_t returnValue() const override { return _records; }

  private:
    /** Drain parser events into emitted record frames. */
    void pump(MsChunkContext &ctx);

    serde::JsonRowParser _parser;
    std::vector<double> _record;  // current record's values
    std::uint32_t _records = 0;
    bool _ended = false;

    static constexpr std::uint32_t kEndMarker = 0xFFFFFFFFu;
};

/**
 * Columnar scan applet with projection / predicate pushdown (the
 * Arrow-native direction from PAPERS.md): streams a CMF1 flash table,
 * evaluates the AND-chain predicate program column-at-a-time per row
 * group in D-SRAM, and emits only surviving rows x projected columns —
 * outbound DMA scales with selectivity, not file size. The program
 * arrives as the MINIT pushdown descriptor (ctx.pushdown()); no
 * descriptor means a full scan. Errors (malformed file, bad program,
 * dictionary miss) stop emission and report kScanError in MDEINIT DW0.
 */
class ColumnarScanApp : public StorageApp
{
  public:
    static constexpr std::uint32_t kScanError = 0xFFFFFFFFu;

    explicit ColumnarScanApp(std::uint32_t) {}

    void processChunk(MsChunkContext &ctx) override;
    void finish(MsChunkContext &ctx) override;
    std::uint32_t returnValue() const override;

  private:
    void drain(MsChunkContext &ctx);

    std::unique_ptr<serde::ColumnarScanner> _scanner;
    bool _badSpec = false;
};

/** Compiled images for all standard apps (compiler-packaged once). */
struct StandardImages
{
    StorageAppImage edgeList;
    StorageAppImage matrix;
    StorageAppImage intArray;
    StorageAppImage pointSet;
    StorageAppImage cooMatrix;
    StorageAppImage int64Serializer;
    StorageAppImage endianSwap;
    StorageAppImage jsonRecords;
    StorageAppImage flatNumbers;
    StorageAppImage csvTable;
    StorageAppImage columnarScan;

    /** Build the full set. */
    static StandardImages make();
};

}  // namespace morpheus::core

#endif  // MORPHEUS_CORE_STANDARD_APPS_HH
