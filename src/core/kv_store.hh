/**
 * @file
 * Flash-resident key-value store + in-storage range filtering — the
 * extension the paper sketches in §III ("other kinds of interactions
 * between memory objects and file data (e.g. ... emitting key-value
 * pairs from flash-based key-value store)").
 *
 * A KvTable is a key-sorted text table ("key value\n" per line) stored
 * like any other file. KvRangeEmitApp is a StorageApp that scans the
 * table on the SSD's embedded cores and DMAs out *only* the pairs
 * whose key falls in the requested range — the host (or GPU) receives
 * the query result, not the table. This is the strongest form of the
 * paper's bandwidth argument: the device "delivers only those objects
 * that are useful to host applications".
 */

#ifndef MORPHEUS_CORE_KV_STORE_HH
#define MORPHEUS_CORE_KV_STORE_HH

#include <cstdint>
#include <vector>

#include "core/compiler.hh"
#include "core/storage_app.hh"
#include "serde/scanner.hh"
#include "serde/writer.hh"

namespace morpheus::core {

/** A key-sorted table of (u32 key, i64 value) pairs. */
struct KvTable
{
    std::vector<std::uint32_t> keys;   ///< Ascending.
    std::vector<std::int64_t> values;

    std::size_t size() const { return keys.size(); }

    /** Text format: "N\n" then N sorted "key value" lines. */
    void serialize(serde::TextWriter &w) const;

    template <typename Scanner>
    bool
    parse(Scanner &s)
    {
        std::int64_t n = 0;
        if (!s.nextInt64(&n))
            return false;
        keys.clear();
        values.clear();
        keys.reserve(static_cast<std::size_t>(n));
        values.reserve(static_cast<std::size_t>(n));
        for (std::int64_t i = 0; i < n; ++i) {
            std::int64_t k = 0, v = 0;
            if (!s.nextInt64(&k) || !s.nextInt64(&v))
                return false;
            keys.push_back(static_cast<std::uint32_t>(k));
            values.push_back(v);
        }
        return true;
    }

    /** Binary layout of one emitted pair: u32 key, i64 value. */
    static constexpr std::size_t kPairBytes =
        sizeof(std::uint32_t) + sizeof(std::int64_t);

    /** Binary encoding of the pairs in [lo, hi] (host-side oracle). */
    std::vector<std::uint8_t> rangeBinary(std::uint32_t lo,
                                          std::uint32_t hi) const;

    /** Decode a binary pair stream. */
    static KvTable fromPairBinary(const std::vector<std::uint8_t> &bytes);

    bool operator==(const KvTable &) const = default;
};

/** Deterministic generator: @p n sorted pairs. */
KvTable genKvTable(std::uint64_t seed, std::uint32_t n);

/**
 * Pack a key range into the 32-bit MINIT argument word (16-bit key
 * buckets: bucket = key >> 16). The range is inclusive in buckets.
 */
std::uint32_t packKvRange(std::uint32_t lo_key, std::uint32_t hi_key);

/**
 * The in-storage filter. Streams the table text and emits only the
 * (key, value) pairs whose key bucket lies in the packed range; the
 * return value is the number of pairs emitted.
 */
class KvRangeEmitApp : public StorageApp
{
  public:
    explicit KvRangeEmitApp(std::uint32_t arg)
        : _loBucket(arg >> 16), _hiBucket(arg & 0xFFFF)
    {}

    void processChunk(MsChunkContext &ctx) override;
    std::uint32_t returnValue() const override { return _emitted; }

  private:
    enum class State { kCount, kKey, kValue };

    std::uint32_t _loBucket;
    std::uint32_t _hiBucket;
    State _state = State::kCount;
    std::uint32_t _remaining = 0;
    std::uint32_t _key = 0;
    bool _keyInRange = false;
    std::uint32_t _emitted = 0;
};

/** Compiled image for the KV filter. */
StorageAppImage makeKvRangeEmitImage();

}  // namespace morpheus::core

#endif  // MORPHEUS_CORE_KV_STORE_HH
