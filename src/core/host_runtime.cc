#include "core/host_runtime.hh"

#include <algorithm>
#include <vector>

#include "sim/logging.hh"

namespace morpheus::core {

MorpheusRuntime::MorpheusRuntime(host::HostSystem &sys,
                                 MorpheusDeviceRuntime &device,
                                 NvmeP2p &p2p)
    : _sys(sys), _device(device), _p2p(p2p)
{
}

MsStream
MorpheusRuntime::streamCreate(const host::FileExtent &extent,
                              sim::Tick now, unsigned host_core)
{
    // Permission check + extent/block-map lookup: two syscalls' worth
    // of host OS work (open + fiemap-style query).
    sim::Tick t = _sys.os().syscall(host_core, now);
    t = _sys.os().syscall(host_core, t);
    return MsStream{extent, t};
}

DmaTarget
MorpheusRuntime::hostTarget(std::uint64_t bytes)
{
    return DmaTarget{_sys.allocHost(bytes), false};
}

DmaTarget
MorpheusRuntime::gpuTarget(std::uint64_t bytes, std::uint64_t *dev_addr)
{
    const std::uint64_t dev = _sys.gpu().alloc(bytes);
    if (dev_addr)
        *dev_addr = dev;
    return DmaTarget{_p2p.busAddrFor(dev), true};
}

InvokeResult
MorpheusRuntime::invoke(const StorageAppImage &image,
                        const MsStream &stream, const DmaTarget &target,
                        sim::Tick now, const InvokeOptions &opts)
{
    nvme::NvmeDriver &driver = _sys.nvmeDriver();
    const unsigned core = opts.hostCore;
    // NVMe convention: each host core drives its own queue pair, so
    // concurrent StorageApp instances never serialize on one SQ.
    const std::uint16_t qid = _sys.ioQueue(core);

    InvokeResult result;
    result.start = std::max(now, stream.readyAt);
    const std::uint64_t object_bytes_before = _device.objectBytesOut();
    sim::Tick t = result.start;

    // --- MINIT -------------------------------------------------------
    const std::uint32_t instance = _nextInstance++;
    InstanceSetup setup;
    setup.image = &image;
    setup.target = target;
    setup.arg = opts.arg;
    setup.flushThreshold = opts.flushThreshold;
    _device.stageInstance(instance, setup);

    // Stage the code image bytes in host memory for the device to
    // fetch (content is a placeholder; the size is what matters).
    const pcie::Addr image_addr = _sys.allocHost(image.textBytes);
    const std::vector<std::uint8_t> image_bytes(image.textBytes, 0x90);
    _sys.mem().store().writeVec(image_addr, image_bytes);

    t = _sys.os().syscall(core, t);  // ioctl into the Morpheus driver
    nvme::Command minit;
    minit.opcode = nvme::Opcode::kMInit;
    minit.instanceId = instance;
    minit.prp1 = image_addr;
    minit.cdw13 = image.textBytes;
    minit.cdw14 = opts.arg;
    const nvme::Completion minit_cqe = driver.io(qid, minit, t);
    MORPHEUS_ASSERT(minit_cqe.ok(), "MINIT failed: status=",
                    static_cast<unsigned>(minit_cqe.status));
    t = std::max(t, minit_cqe.postedAt);

    // --- MREAD stream -------------------------------------------------
    const std::uint32_t mdts = driver.maxTransferBlocks();
    std::uint32_t chunk_blocks =
        opts.chunkBlocks == 0 ? mdts : std::min(opts.chunkBlocks, mdts);
    const std::uint64_t chunk_bytes =
        std::uint64_t(chunk_blocks) * nvme::kBlockBytes;
    const std::uint64_t file_start_block =
        stream.extent.startByte / nvme::kBlockBytes;

    // Batch submissions up to the queue depth, ring once per batch,
    // and sleep until the whole batch completes.
    const std::uint16_t depth =
        _sys.config().queueEntries > 1
            ? static_cast<std::uint16_t>(_sys.config().queueEntries - 1)
            : 1;
    std::uint64_t offset = 0;
    while (offset < stream.extent.sizeBytes) {
        std::vector<nvme::Submitted> batch;
        while (offset < stream.extent.sizeBytes &&
               batch.size() < depth) {
            const std::uint64_t valid = std::min<std::uint64_t>(
                chunk_bytes, stream.extent.sizeBytes - offset);
            const std::uint64_t blocks =
                (valid + nvme::kBlockBytes - 1) / nvme::kBlockBytes;
            nvme::Command mread;
            mread.opcode = nvme::Opcode::kMRead;
            mread.instanceId = instance;
            mread.slba = file_start_block + offset / nvme::kBlockBytes;
            mread.nlb = static_cast<std::uint16_t>(blocks - 1);
            mread.cdw13 = static_cast<std::uint32_t>(valid);
            mread.prp1 = target.addr;  // informational; cursor advances
            batch.push_back(driver.submit(qid, mread));
            offset += valid;
            ++result.mreadCommands;
        }
        driver.ring(qid, t);
        // The host thread blocks once per batch (Fig 10: the Morpheus
        // path context-switches per *stream*, not per chunk).
        sim::Tick batch_done = t;
        for (const auto &token : batch) {
            const nvme::Completion cqe = driver.wait(token);
            MORPHEUS_ASSERT(cqe.ok(), "MREAD failed");
            batch_done = std::max(batch_done, cqe.postedAt);
        }
        t = _sys.os().blockingWait(core, batch_done);
        ++result.hostWakeups;
    }

    // --- MDEINIT ------------------------------------------------------
    nvme::Command mdeinit;
    mdeinit.opcode = nvme::Opcode::kMDeinit;
    mdeinit.instanceId = instance;
    const nvme::Completion fin = driver.io(qid, mdeinit, t);
    MORPHEUS_ASSERT(fin.ok(), "MDEINIT failed");
    result.returnValue = fin.dw0;
    t = std::max(t, fin.postedAt);

    // Make the DMA buffer visible to the application (driver unmap +
    // cache maintenance): one syscall, no per-page copying.
    t = _sys.os().syscall(core, t);

    result.done = t;
    result.objectBytes =
        _device.objectBytesOut() - object_bytes_before;
    return result;
}

}  // namespace morpheus::core
