#include "core/host_runtime.hh"

#include <algorithm>
#include <utility>
#include <vector>

#include "serde/columnar.hh"
#include "sim/logging.hh"

namespace morpheus::core {

namespace {

/**
 * Collects the trace ids a session's driver interactions consume: the
 * sim is single-threaded, so every id in [nextTraceId() at entry,
 * nextTraceId() at exit) was stamped on this session's commands —
 * including driver-internal retries. The destructor runs at every
 * return point. No-op (and container-free) without a sink, preserving
 * the zero-cost-when-disabled guarantee.
 */
class TraceIdScope
{
  public:
    TraceIdScope(const nvme::NvmeDriver &driver, InvokeSession &session)
        : _driver(driver), _session(session),
          _enabled(obs::traceSink() != nullptr),
          _first(_enabled ? driver.nextTraceId() : 0)
    {
    }

    ~TraceIdScope()
    {
        if (!_enabled)
            return;
        for (obs::TraceId id = _first; id != _driver.nextTraceId(); ++id)
            _session.traceIds.push_back(id);
    }

    TraceIdScope(const TraceIdScope &) = delete;
    TraceIdScope &operator=(const TraceIdScope &) = delete;

  private:
    const nvme::NvmeDriver &_driver;
    InvokeSession &_session;
    bool _enabled;
    obs::TraceId _first;
};

}  // namespace

MorpheusRuntime::MorpheusRuntime(host::HostSystem &sys,
                                 MorpheusDeviceRuntime &device,
                                 NvmeP2p &p2p, unsigned ssd_device)
    : _sys(sys), _device(device), _p2p(p2p), _ssdDevice(ssd_device)
{
}

MsStream
MorpheusRuntime::streamCreate(const host::FileExtent &extent,
                              sim::Tick now, unsigned host_core)
{
    // Permission check + extent/block-map lookup: two syscalls' worth
    // of host OS work (open + fiemap-style query).
    sim::Tick t = _sys.os().syscall(host_core, now);
    t = _sys.os().syscall(host_core, t);
    return MsStream{extent, t};
}

DmaTarget
MorpheusRuntime::hostTarget(std::uint64_t bytes)
{
    return DmaTarget{_sys.allocHost(bytes), false};
}

DmaTarget
MorpheusRuntime::gpuTarget(std::uint64_t bytes, std::uint64_t *dev_addr)
{
    const std::uint64_t dev = _sys.gpu().alloc(bytes);
    if (dev_addr)
        *dev_addr = dev;
    return DmaTarget{_p2p.busAddrFor(dev), true};
}

InvokeSession
MorpheusRuntime::beginInvoke(const StorageAppImage &image,
                             const MsStream &stream,
                             const DmaTarget &target, sim::Tick now,
                             const InvokeOptions &opts)
{
    // Bracket the impl with the driver's trace-id counter: RAII on the
    // local session would race NRVO (the ids could land in a moved-from
    // object), so the wrapper collects explicitly on the returned one.
    const nvme::NvmeDriver &driver = _sys.nvmeDriver(_ssdDevice);
    const bool traced = obs::traceSink() != nullptr;
    const obs::TraceId first = traced ? driver.nextTraceId() : 0;
    InvokeSession s = beginInvokeImpl(image, stream, target, now, opts);
    if (traced) {
        for (obs::TraceId id = first; id != driver.nextTraceId(); ++id)
            s.traceIds.push_back(id);
    }
    return s;
}

InvokeSession
MorpheusRuntime::beginInvokeImpl(const StorageAppImage &image,
                                 const MsStream &stream,
                                 const DmaTarget &target, sim::Tick now,
                                 const InvokeOptions &opts)
{
    nvme::NvmeDriver &driver = _sys.nvmeDriver(_ssdDevice);
    const unsigned core = opts.hostCore;

    InvokeSession s;
    s.image = &image;
    s.stream = stream;
    s.target = target;
    s.opts = opts;
    // NVMe convention: each host core drives its own queue pair, so
    // concurrent StorageApp instances never serialize on one SQ.
    s.qid = _sys.ioQueue(_ssdDevice, core);
    s.result.start = std::max(now, stream.readyAt);
    s.now = s.result.start;

    // --- MINIT -------------------------------------------------------
    s.instance = _nextInstance++;
    InstanceSetup setup;
    setup.image = &image;
    setup.target = target;
    setup.arg = opts.arg;
    setup.flushThreshold = opts.flushThreshold;
    setup.dsramBytes = opts.dsramBytes;
    setup.pushdown = opts.pushdown;
    _device.stageInstance(s.instance, setup);

    // Stage the code image bytes in host memory for the device to
    // fetch (content is a placeholder; the size is what matters). A
    // pushdown descriptor rides behind the image in the same buffer.
    const std::uint32_t desc_bytes =
        static_cast<std::uint32_t>(opts.pushdown.size() * 4);
    const pcie::Addr image_addr =
        _sys.allocHost(image.textBytes + desc_bytes);
    std::vector<std::uint8_t> image_bytes(image.textBytes, 0x90);
    for (const std::uint32_t dw : opts.pushdown) {
        const auto *p = reinterpret_cast<const std::uint8_t *>(&dw);
        image_bytes.insert(image_bytes.end(), p, p + 4);
    }
    _sys.mem().store().writeVec(image_addr, image_bytes);

    s.now = _sys.os().syscall(core, s.now);  // ioctl into the driver
    nvme::Command minit;
    minit.opcode = nvme::Opcode::kMInit;
    minit.instanceId = s.instance;
    minit.prp1 = image_addr;
    // Declare the stream length so the device front end sees the
    // tenant's queued work (SLBA is unused by MINIT proper).
    minit.slba = stream.extent.sizeBytes;
    minit.cdw13 = image.textBytes;
    minit.cdw14 = opts.arg;
    minit.cdw15 = opts.tenantId;
    // Requested per-instance D-SRAM budget rides in PRP2's low dword
    // (MINIT has no second data pointer). A pushdown descriptor adds
    // its dword count in NLB and its digest in PRP2's high dword.
    minit.prp2 = opts.dsramBytes;
    if (!opts.pushdown.empty()) {
        minit.nlb =
            static_cast<std::uint16_t>(opts.pushdown.size());
        minit.prp2 |=
            std::uint64_t(serde::pushdownDigest(opts.pushdown)) << 32;
    }
    nvme::Completion minit_cqe = driver.io(s.qid, minit, s.now);
    if (driver.recovery().enabled) {
        // Transient image-fetch corruption is retryable, but the
        // device consumed the staged setup on the failed attempt:
        // re-stage before each bounded resubmission.
        for (unsigned attempt = 0;
             minit_cqe.status ==
                 nvme::Status::kTransientTransferError &&
             attempt < driver.recovery().maxRetries;
             ++attempt) {
            _device.stageInstance(s.instance, setup);
            driver.noteRetry();
            const sim::Tick at =
                minit_cqe.postedAt + driver.backoffDelay(attempt);
            minit_cqe = driver.io(s.qid, minit, at);
        }
    }
    s.minitStatus = minit_cqe.status;
    if (s.minitStatus == nvme::Status::kAdmissionDenied ||
        s.minitStatus == nvme::Status::kInstanceBusy ||
        s.minitStatus == nvme::Status::kDsramExhausted ||
        s.minitStatus == nvme::Status::kOverloaded) {
        // Refused before the instance came up: admission quota (front
        // end), no D-SRAM budget on the core (engine), or the overload
        // valve's backlog limit. Either way discard the staged setup
        // and report back to the caller. D-SRAM exhaustion and
        // overload, like a busy slot, clear as resident instances
        // finish, so they are retryable.
        _device.unstageInstance(s.instance);
        s.retry = s.minitStatus != nvme::Status::kAdmissionDenied;
        s.retryAfterUs = s.retry ? minit_cqe.dw0 : 0;
        s.result.accepted = false;
        s.result.done = std::max(s.now, minit_cqe.postedAt);
        return s;
    }
    if (!minit_cqe.ok()) {
        MORPHEUS_ASSERT(driver.recovery().enabled,
                        "MINIT failed: status=",
                        nvme::statusName(minit_cqe.status));
        // Retry budget exhausted, or the MINIT's CQE was lost. The
        // device may or may not have installed the instance; a
        // best-effort MDEINIT reclaims it either way (kNoSuchInstance
        // when it never came up) before reporting the refusal.
        _device.unstageInstance(s.instance);
        nvme::Command mdeinit;
        mdeinit.opcode = nvme::Opcode::kMDeinit;
        mdeinit.instanceId = s.instance;
        const nvme::Completion cleanup = driver.io(
            s.qid, mdeinit, std::max(s.now, minit_cqe.postedAt));
        s.retry = true;  // transient by nature: try again later
        s.failed = true;
        s.failStatus = s.minitStatus;
        s.result.accepted = false;
        s.result.failed = true;
        s.result.done = std::max(s.now, cleanup.postedAt);
        return s;
    }
    s.accepted = true;
    s.now = std::max(s.now, minit_cqe.postedAt);

    // --- MREAD stream setup ------------------------------------------
    const std::uint32_t mdts = driver.maxTransferBlocks();
    const std::uint32_t chunk_blocks =
        opts.chunkBlocks == 0 ? mdts : std::min(opts.chunkBlocks, mdts);
    s.chunkBytes = std::uint64_t(chunk_blocks) * nvme::kBlockBytes;
    s.fileStartBlock = stream.extent.startByte / nvme::kBlockBytes;
    // Batch submissions up to the queue depth, ring once per batch,
    // and sleep until the whole batch completes.
    s.depth =
        _sys.config().queueEntries > 1
            ? static_cast<std::uint16_t>(_sys.config().queueEntries - 1)
            : 1;
    return s;
}

sim::Tick
MorpheusRuntime::stepInvoke(InvokeSession &s)
{
    MORPHEUS_ASSERT(s.accepted, "stepInvoke on a refused session");
    MORPHEUS_ASSERT(!s.failed, "stepInvoke on a failed session");
    MORPHEUS_ASSERT(!s.streamDone(), "stepInvoke past the stream end");
    nvme::NvmeDriver &driver = _sys.nvmeDriver(_ssdDevice);
    const TraceIdScope trace_scope(driver, s);
    const bool recover = driver.recovery().enabled;

    std::vector<std::pair<nvme::Command, nvme::Submitted>> batch;
    while (!s.streamDone() && batch.size() < s.depth) {
        const std::uint64_t valid = std::min<std::uint64_t>(
            s.chunkBytes, s.stream.extent.sizeBytes - s.offset);
        const std::uint64_t blocks =
            (valid + nvme::kBlockBytes - 1) / nvme::kBlockBytes;
        nvme::Command cmd;
        if (s.opts.serialize) {
            // MWRITE: binary values flow host -> device; successive
            // chunks append behind the region's base SLBA device-side.
            cmd.opcode = nvme::Opcode::kMWrite;
            cmd.instanceId = s.instance;
            cmd.slba = s.opts.writeDstByte / nvme::kBlockBytes;
            cmd.nlb = static_cast<std::uint16_t>(blocks - 1);
            cmd.cdw13 = static_cast<std::uint32_t>(valid);
            cmd.prp1 = s.opts.writeSrc + s.offset;
        } else {
            cmd.opcode = nvme::Opcode::kMRead;
            cmd.instanceId = s.instance;
            cmd.slba = s.fileStartBlock + s.offset / nvme::kBlockBytes;
            cmd.nlb = static_cast<std::uint16_t>(blocks - 1);
            cmd.cdw13 = static_cast<std::uint32_t>(valid);
            cmd.prp1 = s.target.addr;  // informational; cursor advances
        }
        batch.emplace_back(cmd, driver.submit(s.qid, cmd));
        s.offset += valid;
        ++s.result.mreadCommands;
    }
    driver.ring(s.qid, s.now);
    // The host thread blocks once per batch (Fig 10: the Morpheus
    // path context-switches per *stream*, not per chunk).
    sim::Tick batch_done = s.now;
    for (const auto &[cmd, token] : batch) {
        nvme::Completion cqe = driver.wait(token);
        if (!cqe.ok() && recover && nvme::isRetryable(cqe.status)) {
            // Retryable chunk failure (media error, transient DMA,
            // busy bounce): the device saw none of its effects, so a
            // resubmission is exact. ioRetry applies the retry-after
            // hint or jittered backoff per attempt.
            driver.noteRetry();
            cqe = driver.ioRetry(s.qid, cmd,
                                 std::max(s.now, cqe.postedAt));
        }
        if (!cqe.ok()) {
            MORPHEUS_ASSERT(recover, "MREAD failed: status=",
                            nvme::statusName(cqe.status));
            // Fatal (app fault, timeout) or retry budget exhausted:
            // mark the session dead but keep draining the batch so
            // the queue is clean for abortInvoke's MDEINIT.
            s.failed = true;
            s.failStatus = cqe.status;
        }
        batch_done = std::max(batch_done, cqe.postedAt);
    }
    s.now = _sys.os().blockingWait(s.opts.hostCore, batch_done);
    ++s.result.hostWakeups;
    return s.now;
}

InvokeResult
MorpheusRuntime::finishInvoke(InvokeSession &s)
{
    MORPHEUS_ASSERT(s.accepted, "finishInvoke on a refused session");
    nvme::NvmeDriver &driver = _sys.nvmeDriver(_ssdDevice);
    const TraceIdScope trace_scope(driver, s);

    nvme::Command mdeinit;
    mdeinit.opcode = nvme::Opcode::kMDeinit;
    mdeinit.instanceId = s.instance;
    const nvme::Completion fin = driver.io(s.qid, mdeinit, s.now);
    if (!fin.ok()) {
        // With recovery, a lost MDEINIT CQE (the teardown itself ran
        // device-side) degrades the invocation: the return value is
        // unrecoverable even though the object bytes landed.
        MORPHEUS_ASSERT(driver.recovery().enabled,
                        "MDEINIT failed: status=",
                        nvme::statusName(fin.status));
        s.failed = true;
        s.failStatus = fin.status;
        s.result.failed = true;
    }
    s.result.returnValue = fin.ok() ? fin.dw0 : 0;
    s.now = std::max(s.now, fin.postedAt);

    // Make the DMA buffer visible to the application (driver unmap +
    // cache maintenance): one syscall, no per-page copying.
    s.now = _sys.os().syscall(s.opts.hostCore, s.now);

    s.result.done = s.now;
    s.result.objectBytes = _device.takeDeliveredBytes(s.instance);
    s.result.servedFromCache = _device.takeServedFromCache(s.instance);
    return s.result;
}

InvokeResult
MorpheusRuntime::abortInvoke(InvokeSession &s)
{
    nvme::NvmeDriver &driver = _sys.nvmeDriver(_ssdDevice);
    const TraceIdScope trace_scope(driver, s);
    // Best-effort reclaim: a watchdog-killed instance answers
    // kNoSuchInstance (already freed device-side), a poisoned one runs
    // the hook-skipping teardown; either way the slot comes back.
    nvme::Command mdeinit;
    mdeinit.opcode = nvme::Opcode::kMDeinit;
    mdeinit.instanceId = s.instance;
    const nvme::Completion fin = driver.io(s.qid, mdeinit, s.now);
    s.now = std::max(s.now, fin.postedAt);
    s.result.failed = true;
    s.result.done = s.now;
    s.result.objectBytes = _device.takeDeliveredBytes(s.instance);
    s.result.servedFromCache = _device.takeServedFromCache(s.instance);
    return s.result;
}

InvokeResult
MorpheusRuntime::invoke(const StorageAppImage &image,
                        const MsStream &stream, const DmaTarget &target,
                        sim::Tick now, const InvokeOptions &opts)
{
    InvokeSession s = beginInvoke(image, stream, target, now, opts);
    if (!s.accepted)
        return s.result;
    while (!s.streamDone() && !s.failed)
        stepInvoke(s);
    if (s.failed)
        return abortInvoke(s);
    return finishInvoke(s);
}

}  // namespace morpheus::core
