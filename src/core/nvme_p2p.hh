/**
 * @file
 * NVMe-P2P (paper §IV-C): peer-to-peer DMA between the Morpheus-SSD
 * and the GPU.
 *
 * NVMe SSDs are block devices with a doorbell model — they expose no
 * device memory of their own, so the conventional both-sides-map-BARs
 * P2P recipe does not apply. Following Donard/NVMMU, NVMe-P2P instead
 * maps the *GPU's* device memory into a PCIe BAR window
 * (DirectGMA/GPUDirect) and lets the SSD's DMA engine target those bus
 * addresses with ordinary MREAD/MWRITE data pointers. The host
 * software stack still issues every command; the SSD actively pushes
 * or pulls the data, so no new file-system integrity issues arise.
 */

#ifndef MORPHEUS_CORE_NVME_P2P_HH
#define MORPHEUS_CORE_NVME_P2P_HH

#include "host/host_system.hh"
#include "sim/stats.hh"

namespace morpheus::core {

/** Driver module that manages the GPU BAR window. */
class NvmeP2p
{
  public:
    explicit NvmeP2p(host::HostSystem &sys) : _sys(sys) {}

    ~NvmeP2p();

    /**
     * Program the GPU's device memory into the PCIe BAR (DirectGMA /
     * GPUDirect). Idempotent. @return the bus address of GPU device
     * address 0.
     */
    pcie::Addr mapGpuMemory();

    /** Tear the window down. */
    void unmapGpuMemory();

    bool mapped() const { return _mapped; }

    /** Bus address of GPU device address @p dev_addr; maps if needed. */
    pcie::Addr
    busAddrFor(std::uint64_t dev_addr)
    {
        return mapGpuMemory() + dev_addr;
    }

    /** Bytes that moved SSD->GPU without touching the host. */
    std::uint64_t p2pBytes() const { return _sys.fabric().p2pBytes(); }

  private:
    host::HostSystem &_sys;
    bool _mapped = false;
};

}  // namespace morpheus::core

#endif  // MORPHEUS_CORE_NVME_P2P_HH
