#include "core/kv_store.hh"

#include <algorithm>
#include <cstring>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace morpheus::core {

void
KvTable::serialize(serde::TextWriter &w) const
{
    MORPHEUS_ASSERT(keys.size() == values.size(),
                    "ragged KV table");
    w.appendInt64(static_cast<std::int64_t>(keys.size()));
    w.newline();
    for (std::size_t i = 0; i < keys.size(); ++i) {
        w.appendInt64(keys[i]);
        w.space();
        w.appendInt64(values[i]);
        w.newline();
    }
}

std::vector<std::uint8_t>
KvTable::rangeBinary(std::uint32_t lo, std::uint32_t hi) const
{
    std::vector<std::uint8_t> out;
    for (std::size_t i = 0; i < keys.size(); ++i) {
        if (keys[i] < lo || keys[i] > hi)
            continue;
        const std::uint32_t k = keys[i];
        const std::int64_t v = values[i];
        const auto *pk = reinterpret_cast<const std::uint8_t *>(&k);
        const auto *pv = reinterpret_cast<const std::uint8_t *>(&v);
        out.insert(out.end(), pk, pk + sizeof(k));
        out.insert(out.end(), pv, pv + sizeof(v));
    }
    return out;
}

KvTable
KvTable::fromPairBinary(const std::vector<std::uint8_t> &bytes)
{
    MORPHEUS_ASSERT(bytes.size() % kPairBytes == 0,
                    "ragged KV pair stream");
    KvTable t;
    const std::size_t n = bytes.size() / kPairBytes;
    t.keys.reserve(n);
    t.values.reserve(n);
    std::size_t off = 0;
    for (std::size_t i = 0; i < n; ++i) {
        std::uint32_t k;
        std::int64_t v;
        std::memcpy(&k, bytes.data() + off, sizeof(k));
        off += sizeof(k);
        std::memcpy(&v, bytes.data() + off, sizeof(v));
        off += sizeof(v);
        t.keys.push_back(k);
        t.values.push_back(v);
    }
    return t;
}

KvTable
genKvTable(std::uint64_t seed, std::uint32_t n)
{
    sim::Rng rng(seed);
    KvTable t;
    t.keys.reserve(n);
    t.values.reserve(n);
    // Strictly increasing keys with random gaps: a realistic sorted
    // SSTable-style layout.
    std::uint32_t key = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
        key += 1 + static_cast<std::uint32_t>(rng.nextBelow(40));
        t.keys.push_back(key);
        t.values.push_back(rng.nextInRange(-999999, 999999));
    }
    return t;
}

std::uint32_t
packKvRange(std::uint32_t lo_key, std::uint32_t hi_key)
{
    const std::uint32_t lo_bucket = lo_key >> 16;
    const std::uint32_t hi_bucket = hi_key >> 16;
    MORPHEUS_ASSERT(lo_bucket <= 0xFFFF && hi_bucket <= 0xFFFF,
                    "key bucket out of range");
    return (lo_bucket << 16) | hi_bucket;
}

void
KvRangeEmitApp::processChunk(MsChunkContext &ctx)
{
    std::int64_t v = 0;
    for (;;) {
        switch (_state) {
          case State::kCount:
            if (!ctx.msScanfInt(&v))
                return;
            _remaining = static_cast<std::uint32_t>(v);
            _state = State::kKey;
            break;
          case State::kKey:
            if (_remaining == 0)
                return;  // table exhausted
            if (!ctx.msScanfInt(&v))
                return;
            _key = static_cast<std::uint32_t>(v);
            {
                const std::uint32_t bucket = _key >> 16;
                _keyInRange =
                    bucket >= _loBucket && bucket <= _hiBucket;
            }
            _state = State::kValue;
            break;
          case State::kValue:
            if (!ctx.msScanfInt(&v))
                return;
            if (_keyInRange) {
                ctx.msEmitValue<std::uint32_t>(_key);
                ctx.msEmitValue<std::int64_t>(v);
                ++_emitted;
            }
            --_remaining;
            _state = State::kKey;
            break;
        }
    }
}

StorageAppImage
makeKvRangeEmitImage()
{
    return MorpheusCompiler::compile(
        "kv-range-emit-applet", [](std::uint32_t arg) {
            return std::make_unique<KvRangeEmitApp>(arg);
        });
}

}  // namespace morpheus::core
