#include "core/standard_apps.hh"

namespace morpheus::core {

void
EdgeListApp::processChunk(MsChunkContext &ctx)
{
    std::int64_t v = 0;
    for (;;) {
        switch (_state) {
          case State::kVertices:
            if (!ctx.msScanfInt(&v))
                return;
            ctx.msEmitValue<std::uint32_t>(
                static_cast<std::uint32_t>(v));
            _state = State::kEdges;
            break;
          case State::kEdges:
            if (!ctx.msScanfInt(&v))
                return;
            _edgesExpected = static_cast<std::uint32_t>(v);
            ctx.msEmitValue<std::uint32_t>(_edgesExpected);
            _state = State::kSrc;
            break;
          case State::kSrc:
            if (_edgesDone >= _edgesExpected)
                return;  // trailing junk is ignored
            if (!ctx.msScanfInt(&v))
                return;
            ctx.msEmitValue<std::uint32_t>(
                static_cast<std::uint32_t>(v));
            _state = State::kDst;
            break;
          case State::kDst:
            if (!ctx.msScanfInt(&v))
                return;
            ctx.msEmitValue<std::uint32_t>(
                static_cast<std::uint32_t>(v));
            if (_weighted) {
                _state = State::kWeight;
            } else {
                ++_edgesDone;
                _state = State::kSrc;
            }
            break;
          case State::kWeight:
            if (!ctx.msScanfInt(&v))
                return;
            ctx.msEmitValue<std::int32_t>(
                static_cast<std::int32_t>(v));
            ++_edgesDone;
            _state = State::kSrc;
            break;
        }
    }
}

void
MatrixApp::processChunk(MsChunkContext &ctx)
{
    for (;;) {
        switch (_state) {
          case State::kRows: {
            std::int64_t v = 0;
            if (!ctx.msScanfInt(&v))
                return;
            _rows = static_cast<std::uint32_t>(v);
            ctx.msEmitValue<std::uint32_t>(_rows);
            _state = State::kCols;
            break;
          }
          case State::kCols: {
            std::int64_t v = 0;
            if (!ctx.msScanfInt(&v))
                return;
            _valuesExpected =
                std::uint64_t(_rows) * static_cast<std::uint32_t>(v);
            ctx.msEmitValue<std::uint32_t>(
                static_cast<std::uint32_t>(v));
            _state = State::kValues;
            break;
          }
          case State::kValues: {
            if (_valuesDone >= _valuesExpected)
                return;
            double d = 0.0;
            if (!ctx.msScanfNumber(&d, nullptr))
                return;
            ctx.msEmitValue<float>(static_cast<float>(d));
            ++_valuesDone;
            break;
          }
        }
    }
}

void
IntArrayApp::processChunk(MsChunkContext &ctx)
{
    std::int64_t v = 0;
    for (;;) {
        if (!_haveCount) {
            if (!ctx.msScanfInt(&v))
                return;
            _count = static_cast<std::uint32_t>(v);
            ctx.msEmitValue<std::uint32_t>(_count);
            _haveCount = true;
            continue;
        }
        if (_valuesDone >= _count)
            return;
        if (!ctx.msScanfInt(&v))
            return;
        ctx.msEmitValue<std::int64_t>(v);
        ++_valuesDone;
    }
}

void
PointSetApp::processChunk(MsChunkContext &ctx)
{
    for (;;) {
        switch (_state) {
          case State::kPoints: {
            std::int64_t v = 0;
            if (!ctx.msScanfInt(&v))
                return;
            _points = static_cast<std::uint32_t>(v);
            ctx.msEmitValue<std::uint32_t>(_points);
            _state = State::kDims;
            break;
          }
          case State::kDims: {
            std::int64_t v = 0;
            if (!ctx.msScanfInt(&v))
                return;
            _valuesExpected =
                std::uint64_t(_points) * static_cast<std::uint32_t>(v);
            ctx.msEmitValue<std::uint32_t>(
                static_cast<std::uint32_t>(v));
            _state = State::kCoords;
            break;
          }
          case State::kCoords: {
            if (_valuesDone >= _valuesExpected)
                return;
            double d = 0.0;
            if (!ctx.msScanfNumber(&d, nullptr))
                return;
            ctx.msEmitValue<float>(static_cast<float>(d));
            ++_valuesDone;
            break;
          }
        }
    }
}

void
CooMatrixApp::processChunk(MsChunkContext &ctx)
{
    std::int64_t v = 0;
    double d = 0.0;
    for (;;) {
        switch (_state) {
          case State::kRows:
            if (!ctx.msScanfInt(&v))
                return;
            ctx.msEmitValue<std::uint32_t>(
                static_cast<std::uint32_t>(v));
            _state = State::kCols;
            break;
          case State::kCols:
            if (!ctx.msScanfInt(&v))
                return;
            ctx.msEmitValue<std::uint32_t>(
                static_cast<std::uint32_t>(v));
            _state = State::kNnz;
            break;
          case State::kNnz:
            if (!ctx.msScanfInt(&v))
                return;
            _nnz = static_cast<std::uint32_t>(v);
            ctx.msEmitValue<std::uint32_t>(_nnz);
            _state = State::kRow;
            break;
          case State::kRow:
            if (_entriesDone >= _nnz)
                return;
            if (!ctx.msScanfInt(&v))
                return;
            ctx.msEmitValue<std::uint32_t>(
                static_cast<std::uint32_t>(v));
            _state = State::kCol;
            break;
          case State::kCol:
            if (!ctx.msScanfInt(&v))
                return;
            ctx.msEmitValue<std::uint32_t>(
                static_cast<std::uint32_t>(v));
            _state = State::kValue;
            break;
          case State::kValue:
            if (!ctx.msScanfNumber(&d, nullptr))
                return;
            ctx.msEmitValue<float>(static_cast<float>(d));
            ++_entriesDone;
            _state = State::kRow;
            break;
        }
    }
}

bool
Int64TextSerializerApp::processWriteChunk(MsChunkContext &ctx)
{
    // ms_printf: binary i64 values in, ASCII text out.
    std::int64_t v = 0;
    char buf[24];
    while (ctx.msReadValue(&v)) {
        int n = 0;
        // Minimal integer formatter (the device library's ms_printf).
        char tmp[24];
        int len = 0;
        std::uint64_t u =
            v < 0 ? ~static_cast<std::uint64_t>(v) + 1
                  : static_cast<std::uint64_t>(v);
        do {
            tmp[len++] = static_cast<char>('0' + (u % 10));
            u /= 10;
        } while (u != 0);
        if (v < 0)
            buf[n++] = '-';
        while (len > 0)
            buf[n++] = tmp[--len];
        buf[n++] = (_valuesDone + 1) % 16 == 0 ? '\n' : ' ';
        ctx.msEmit(buf, static_cast<std::size_t>(n));
        ++_valuesDone;
    }
    return true;
}

void
EndianSwapApp::processChunk(MsChunkContext &ctx)
{
    // Binary path: consume 4-byte big-endian words straight from the
    // chunk (no text scanning) and emit them little endian.
    std::uint8_t be[4];
    for (;;) {
        if (!_haveCount) {
            if (!ctx.msReadRaw(be, 4))
                return;
            _count = (std::uint32_t(be[0]) << 24) |
                     (std::uint32_t(be[1]) << 16) |
                     (std::uint32_t(be[2]) << 8) | be[3];
            ctx.msEmitValue<std::uint32_t>(_count);
            _haveCount = true;
            continue;
        }
        if (_wordsDone >= _count)
            return;
        if (!ctx.msReadRaw(be, 4))
            return;
        const std::uint32_t v = (std::uint32_t(be[0]) << 24) |
                                (std::uint32_t(be[1]) << 16) |
                                (std::uint32_t(be[2]) << 8) | be[3];
        ctx.msEmitValue<std::uint32_t>(v);
        ++_wordsDone;
    }
}

void
CsvTableApp::pump(MsChunkContext &ctx)
{
    for (;;) {
        switch (_parser.next()) {
          case serde::CsvRowParser::Event::kColumnName:
            _columns.push_back(_parser.name());
            break;
          case serde::CsvRowParser::Event::kHeaderDone:
            // Emit the binary header frame once.
            ctx.msEmitValue<std::uint32_t>(
                static_cast<std::uint32_t>(_columns.size()));
            for (const auto &name : _columns) {
                ctx.msEmitValue<std::uint8_t>(
                    static_cast<std::uint8_t>(name.size()));
                ctx.msEmit(name.data(), name.size());
            }
            _headerEmitted = true;
            break;
          case serde::CsvRowParser::Event::kNumber:
            ctx.msEmitValue<double>(_parser.value());
            break;
          case serde::CsvRowParser::Event::kEndRow:
            ++_rows;
            break;
          case serde::CsvRowParser::Event::kEndDocument:
          case serde::CsvRowParser::Event::kNeedMoreData:
          case serde::CsvRowParser::Event::kError:
            return;
        }
    }
}

void
CsvTableApp::processChunk(MsChunkContext &ctx)
{
    std::vector<std::uint8_t> raw(ctx.msRawAvailable());
    if (!raw.empty()) {
        ctx.msReadRaw(raw.data(), raw.size());
        _parser.feed(raw.data(), raw.size());
    }
    const serde::ParseCost before = _parser.cost();
    pump(ctx);
    serde::ParseCost delta = _parser.cost();
    delta.bytes -= before.bytes;
    delta.intValues -= before.intValues;
    delta.floatValues -= before.floatValues;
    delta.floatOps -= before.floatOps;
    ctx.msChargeCost(delta);
}

void
CsvTableApp::finish(MsChunkContext &ctx)
{
    _parser.finish();
    pump(ctx);
}

void
JsonRecordsApp::pump(MsChunkContext &ctx)
{
    for (;;) {
        switch (_parser.next()) {
          case serde::JsonRowParser::Event::kBeginRecord:
            _record.clear();
            break;
          case serde::JsonRowParser::Event::kNumber:
            _record.push_back(_parser.value());
            break;
          case serde::JsonRowParser::Event::kEndRecord:
            ctx.msEmitValue<std::uint32_t>(
                static_cast<std::uint32_t>(_record.size()));
            for (const double v : _record)
                ctx.msEmitValue<double>(v);
            ++_records;
            break;
          case serde::JsonRowParser::Event::kEndDocument:
            if (!_ended) {
                ctx.msEmitValue<std::uint32_t>(kEndMarker);
                _ended = true;
            }
            return;
          case serde::JsonRowParser::Event::kNeedMoreData:
            return;
          case serde::JsonRowParser::Event::kError:
            // Malformed document: stop consuming; the emitted prefix
            // ends without a marker, which fromBinary rejects loudly.
            return;
        }
    }
}

void
JsonRecordsApp::processChunk(MsChunkContext &ctx)
{
    // Byte-stream app: pull the raw chunk and run the incremental
    // JSON parser; charge its accounting to the core.
    std::vector<std::uint8_t> raw(ctx.msRawAvailable());
    if (!raw.empty()) {
        ctx.msReadRaw(raw.data(), raw.size());
        _parser.feed(raw.data(), raw.size());
    }
    const serde::ParseCost before = _parser.cost();
    pump(ctx);
    serde::ParseCost delta = _parser.cost();
    delta.bytes -= before.bytes;
    delta.intValues -= before.intValues;
    delta.floatValues -= before.floatValues;
    delta.floatOps -= before.floatOps;
    ctx.msChargeCost(delta);
}

void
JsonRecordsApp::finish(MsChunkContext &ctx)
{
    _parser.finish();
    pump(ctx);
}

void
ColumnarScanApp::drain(MsChunkContext &ctx)
{
    const std::vector<std::uint8_t> out = _scanner->takeEmitted();
    if (!out.empty())
        ctx.msEmit(out.data(), out.size());
    ctx.msChargeCost(_scanner->takeCost());
}

void
ColumnarScanApp::processChunk(MsChunkContext &ctx)
{
    if (_badSpec)
        return;
    if (!_scanner) {
        serde::ScanSpec spec;  // no descriptor == full scan
        if (!ctx.pushdown().empty() &&
            !serde::ScanSpec::decode(ctx.pushdown(), &spec)) {
            _badSpec = true;
            return;
        }
        _scanner = std::make_unique<serde::ColumnarScanner>(spec);
    }
    std::vector<std::uint8_t> raw(ctx.msRawAvailable());
    if (!raw.empty()) {
        ctx.msReadRaw(raw.data(), raw.size());
        _scanner->feed(raw.data(), raw.size());
    }
    drain(ctx);
}

void
ColumnarScanApp::finish(MsChunkContext &ctx)
{
    if (_badSpec || !_scanner)
        return;
    _scanner->finish();
    drain(ctx);
}

std::uint32_t
ColumnarScanApp::returnValue() const
{
    if (_badSpec || !_scanner || _scanner->error())
        return kScanError;
    return static_cast<std::uint32_t>(_scanner->survivingRows());
}

StandardImages
StandardImages::make()
{
    StandardImages imgs;
    imgs.edgeList = MorpheusCompiler::compile(
        "edge-list-applet",
        [](std::uint32_t arg) { return std::make_unique<EdgeListApp>(arg); });
    imgs.matrix = MorpheusCompiler::compile(
        "matrix-applet",
        [](std::uint32_t arg) { return std::make_unique<MatrixApp>(arg); });
    imgs.intArray = MorpheusCompiler::compile(
        "int-array-applet",
        [](std::uint32_t arg) { return std::make_unique<IntArrayApp>(arg); });
    imgs.pointSet = MorpheusCompiler::compile(
        "point-set-applet",
        [](std::uint32_t arg) { return std::make_unique<PointSetApp>(arg); });
    imgs.cooMatrix = MorpheusCompiler::compile(
        "coo-matrix-applet",
        [](std::uint32_t arg) { return std::make_unique<CooMatrixApp>(arg); });
    imgs.int64Serializer = MorpheusCompiler::compile(
        "int64-serializer-applet", [](std::uint32_t arg) {
            return std::make_unique<Int64TextSerializerApp>(arg);
        });
    imgs.endianSwap = MorpheusCompiler::compile(
        "endian-swap-applet", [](std::uint32_t arg) {
            return std::make_unique<EndianSwapApp>(arg);
        });
    imgs.jsonRecords = MorpheusCompiler::compile(
        "json-records-applet", [](std::uint32_t arg) {
            return std::make_unique<JsonRecordsApp>(arg);
        });
    imgs.flatNumbers = MorpheusCompiler::compile(
        "flat-numbers-applet", [](std::uint32_t arg) {
            return std::make_unique<FlatNumbersApp>(arg);
        });
    imgs.csvTable = MorpheusCompiler::compile(
        "csv-table-applet", [](std::uint32_t arg) {
            return std::make_unique<CsvTableApp>(arg);
        });
    imgs.columnarScan = MorpheusCompiler::compile(
        "columnar-scan-applet", [](std::uint32_t arg) {
            return std::make_unique<ColumnarScanApp>(arg);
        });
    return imgs;
}

}  // namespace morpheus::core
