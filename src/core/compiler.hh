/**
 * @file
 * The Morpheus "compiler" (paper §V-B).
 *
 * The real toolchain compiles a StorageApp-annotated C function twice:
 * once for the host ISA (replaced by a runtime stub that drives
 * MINIT/MREAD/MDEINIT) and once for the embedded-core ISA (Tensilica).
 * In this reproduction the host side is native C++, so "compiling"
 * means packaging a StorageAppImage: estimating the embedded text-
 * segment size (checked against I-SRAM at MINIT) and binding the
 * factory the device runtime instantiates.
 */

#ifndef MORPHEUS_CORE_COMPILER_HH
#define MORPHEUS_CORE_COMPILER_HH

#include <string>

#include "core/storage_app.hh"

namespace morpheus::core {

/** Packages StorageApps into device images. */
class MorpheusCompiler
{
  public:
    /**
     * Build an image for @p factory.
     *
     * @param name        Diagnostic name.
     * @param factory     Instantiates the app at MINIT.
     * @param text_bytes  Embedded text size; 0 selects a deterministic
     *                    estimate (8-24 KiB depending on the name) —
     *                    real deserializer kernels are a few KiB of
     *                    Tensilica code plus the device library.
     */
    static StorageAppImage compile(const std::string &name,
                                   StorageAppFactory factory,
                                   std::uint32_t text_bytes = 0);
};

}  // namespace morpheus::core

#endif  // MORPHEUS_CORE_COMPILER_HH
