#include "core/device_runtime.hh"

#include <algorithm>
#include <utility>

#include "sim/fault.hh"
#include "sim/logging.hh"

namespace morpheus::core {

MorpheusDeviceRuntime::MorpheusDeviceRuntime(ssd::SsdController &ssd)
    : _ssd(ssd)
{
    _ssd.setMorpheusEngine(this);
}

void
MorpheusDeviceRuntime::stageInstance(std::uint32_t instance_id,
                                     const InstanceSetup &setup)
{
    MORPHEUS_ASSERT(setup.image != nullptr, "staging without an image");
    MORPHEUS_ASSERT(setup.image->factory, "image has no factory");
    _staged[instance_id] = setup;
}

void
MorpheusDeviceRuntime::unstageInstance(std::uint32_t instance_id)
{
    _staged.erase(instance_id);
}

std::uint64_t
MorpheusDeviceRuntime::takeDeliveredBytes(std::uint32_t instance_id)
{
    const auto it = _delivered.find(instance_id);
    if (it == _delivered.end())
        return 0;
    const std::uint64_t bytes = it->second;
    _delivered.erase(it);
    return bytes;
}

nvme::CommandResult
MorpheusDeviceRuntime::execute(const nvme::Command &cmd, sim::Tick start)
{
    switch (cmd.opcode) {
      case nvme::Opcode::kMInit:
        return doMInit(cmd, start);
      case nvme::Opcode::kMRead:
        return doMRead(cmd, start);
      case nvme::Opcode::kMWrite:
        return doMWrite(cmd, start);
      case nvme::Opcode::kMDeinit:
        return doMDeinit(cmd, start);
      default:
        return {start, nvme::Status::kInvalidOpcode, 0};
    }
}

nvme::CommandResult
MorpheusDeviceRuntime::doMInit(const nvme::Command &cmd, sim::Tick start)
{
    ++_minits;
    const auto staged = _staged.find(cmd.instanceId);
    if (staged == _staged.end())
        return {start, nvme::Status::kNoSuchInstance, 0};
    if (_instances.count(cmd.instanceId))
        return {start, nvme::Status::kInstanceBusy, 0};

    const InstanceSetup setup = staged->second;
    _staged.erase(staged);

    // With partitioning, the MINIT's requested budget (in-band in
    // PRP2's low dword, staged setup as fallback) becomes a grant the
    // core must be able to reserve; the default is an equal share of
    // the scratchpad across maxInstancesPerCore co-residents. The
    // grant is also a placement signal: the dispatcher prefers cores
    // with room for it.
    const sched::SchedConfig &sc = _ssd.config().sched;
    std::uint32_t granted = 0;
    if (sc.dsramPartitioning) {
        const auto requested = static_cast<std::uint32_t>(
            cmd.prp2 ? cmd.prp2 : setup.dsramBytes);
        granted = requested
                      ? requested
                      : _ssd.config().core.dsramBytes /
                            std::max(1u, sc.maxInstancesPerCore);
    }

    ssd::EmbeddedCore &core = _ssd.coreFor(cmd.instanceId, start, granted);
    const std::uint32_t code_bytes =
        cmd.cdw13 ? cmd.cdw13 : setup.image->textBytes;
    if (!core.loadImage(code_bytes))
        return {start, nvme::Status::kAppLoadFailed, 0};
    if (granted && !core.reserveDsram(granted)) {
        // No data budget next to the co-resident grants: release the
        // I-SRAM image too (the scheduler front end frees the arbiter
        // slot and the placement when it sees the failure status).
        core.unloadImage(code_bytes);
        return {start, nvme::Status::kDsramExhausted, 0};
    }

    // Fetch the code image from host memory (prp1), then spend a few
    // core cycles installing it into I-SRAM.
    const sim::Tick fetched = _ssd.fabric().dmaRead(
        _ssd.port(), cmd.prp1, code_bytes, start);
    if (_ssd.fabric().consumeDmaFault()) {
        // The image arrived corrupted: refuse the install and undo the
        // SRAM reservations. The scheduler front end frees the slot and
        // placement when it sees the failure status, so the host can
        // simply resubmit MINIT.
        core.unloadImage(code_bytes);
        if (granted)
            core.releaseDsram(granted);
        return {fetched, nvme::Status::kTransientTransferError, 0};
    }
    const sim::Tick installed =
        core.execute(static_cast<double>(code_bytes) * 0.5 + 5000.0,
                     fetched, "install",
                     {cmd.traceId, cmd.cdw15, cmd.instanceId, code_bytes});

    Instance inst;
    inst.id = cmd.instanceId;
    inst.tenant = cmd.cdw15;
    inst.setup = setup;
    inst.app = setup.image->factory(cmd.cdw14);
    const std::uint32_t dsram =
        granted ? granted : core.config().dsramBytes;
    const std::uint32_t threshold = std::max<std::uint32_t>(
        1, setup.flushThreshold
               ? std::min(setup.flushThreshold, dsram)
               : dsram / 4);
    inst.ctx = std::make_unique<MsChunkContext>(dsram, threshold,
                                                cmd.cdw14);
    inst.coreId = core.id();
    inst.codeBytes = code_bytes;
    inst.dsramGranted = granted;
    inst.dmaCursor = setup.target.addr;
    _instances.emplace(cmd.instanceId, std::move(inst));

    return {installed, nvme::Status::kSuccess, 0};
}

sim::Tick
MorpheusDeviceRuntime::drainFlushes(
    Instance &inst, std::vector<std::vector<std::uint8_t>> segments,
    sim::Tick earliest, obs::TraceId trace)
{
    sim::Tick done = earliest;
    for (auto &seg : segments) {
        // Staged objects pass through controller DRAM and out over
        // PCIe to the instance's DMA target.
        const sim::Tick buffered =
            _ssd.dramTransfer(seg.size(), earliest);
        sim::Tick dma = _ssd.fabric().dmaWriteData(
            _ssd.port(), inst.dmaCursor, seg.data(), seg.size(),
            buffered);
        // Transient outbound faults are replayed by the device (the
        // data was already delivered functionally, so an exhausted
        // retry bound only costs time — never a double delivery).
        bool dma_failed = false;
        dma = _ssd.retryOutboundDma(inst.dmaCursor, seg.size(), dma,
                                    &dma_failed);
        if (auto *sink = obs::traceSink()) {
            obs::Span s;
            s.track = "ssd.dma";
            s.name = "flush_dma";
            s.category = "ssd";
            s.begin = buffered;
            s.end = dma;
            s.trace = trace;
            s.tenant = inst.tenant;
            s.instance = inst.id;
            s.core = inst.coreId;
            s.bytes = seg.size();
            sink->record(s);
        }
        inst.dmaCursor += seg.size();
        _objectBytes += seg.size();
        _delivered[inst.id] += seg.size();
        done = std::max(done, dma);
    }
    return done;
}

void
MorpheusDeviceRuntime::maybeMigrate(Instance &inst, sim::Tick now,
                                    obs::TraceId trace)
{
    auto &dispatcher = _ssd.scheduler().dispatcher();
    const auto plan = dispatcher.coreForChunk(inst.id, now);
    if (!plan.migrated)
        return;
    ssd::EmbeddedCore &to = _ssd.core(plan.core);
    if (!to.loadImage(inst.codeBytes)) {
        // No I-SRAM room next to the apps already resident there.
        dispatcher.cancelMigration(inst.id, plan.previous, now);
        return;
    }
    if (inst.dsramGranted && !to.reserveDsram(inst.dsramGranted)) {
        // The target can't honor the instance's D-SRAM grant next to
        // its co-residents; undo the image load and stay put.
        to.unloadImage(inst.codeBytes);
        dispatcher.cancelMigration(inst.id, plan.previous, now);
        return;
    }
    ssd::EmbeddedCore &from = _ssd.core(plan.previous);
    from.unloadImage(inst.codeBytes);
    if (inst.dsramGranted)
        from.releaseDsram(inst.dsramGranted);
    // Reinstall the code image and move the live staging state — the
    // bytes actually parked in D-SRAM, not the whole scratchpad —
    // between the two cores through controller DRAM.
    const std::uint64_t state_bytes = inst.ctx->dsramUse();
    const sim::Tick state_moved = _ssd.dramTransfer(state_bytes, now);
    if (auto *sink = obs::traceSink()) {
        obs::Span s;
        s.track = "ssd.dram";
        s.name = "dsram_move";
        s.category = "ssd";
        s.begin = now;
        s.end = state_moved;
        s.trace = trace;
        s.tenant = inst.tenant;
        s.instance = inst.id;
        s.core = to.id();
        s.bytes = state_bytes;
        sink->record(s);
    }
    to.execute(static_cast<double>(inst.codeBytes) * 0.5 +
                   _ssd.config().sched.migrationCycles,
               state_moved, "isram_reload",
               {trace, inst.tenant, inst.id, inst.codeBytes});
    inst.coreId = to.id();
}

nvme::CommandResult
MorpheusDeviceRuntime::doMRead(const nvme::Command &cmd, sim::Tick start)
{
    ++_mreads;
    const auto it = _instances.find(cmd.instanceId);
    if (it == _instances.end())
        return {start, nvme::Status::kNoSuchInstance, 0};
    Instance &inst = it->second;
    if (inst.poisoned)
        return {start, nvme::Status::kAppFault, 0};
    maybeMigrate(inst, start, cmd.traceId);

    const std::uint64_t byte_off = cmd.slba * nvme::kBlockBytes;
    const std::uint64_t valid =
        cmd.cdw13 ? cmd.cdw13 : cmd.dataBytes();
    MORPHEUS_ASSERT(valid <= cmd.dataBytes(),
                    "valid byte count exceeds the LBA range");

    // Stream-order guard: after a failed chunk the host may still have
    // later chunks of the same batch in flight. Feeding them would run
    // the stateful parser across a gap, so bounce them (retryable)
    // until the missing chunk is resubmitted. The first chunk of a
    // stream pins its origin.
    constexpr std::uint64_t kUnpinned = ~std::uint64_t{0};
    if (inst.expectedByteOff != kUnpinned &&
        byte_off != inst.expectedByteOff)
        return {start, nvme::Status::kSequenceError, 0};
    _rawBytesIn += valid;

    // Flash -> controller DRAM (timed), then the embedded core parses
    // the chunk out of D-SRAM.
    bool media = false;
    const sim::Tick fetched =
        _ssd.fetchToDram(byte_off, valid, start, &media);
    if (media) {
        // Uncorrectable flash page: the access time was charged but the
        // chunk never reaches the parser, so a host resubmission of the
        // same command is exact (read-retry recoverable). Pin the
        // stream cursor to this chunk so nothing can slip past it.
        inst.expectedByteOff = byte_off;
        if (auto *sink = obs::traceSink()) {
            obs::Span s;
            s.track = "ssd.firmware";
            s.name = "media_error";
            s.category = "ssd";
            s.begin = fetched;
            s.end = fetched;
            s.instant = true;
            s.trace = cmd.traceId;
            s.tenant = inst.tenant;
            s.instance = inst.id;
            s.core = inst.coreId;
            s.status =
                static_cast<std::uint32_t>(nvme::Status::kMediaError);
            sink->record(s);
        }
        return {fetched, nvme::Status::kMediaError, 0};
    }
    std::vector<std::uint8_t> chunk = _ssd.peekBytes(byte_off, valid);

    // App-fault injection: both streams are drawn every chunk so each
    // schedule depends only on its own event sequence, regardless of
    // which (if either) fires. A hang outranks a crash.
    bool app_hang = false;
    bool app_crash = false;
    if (auto *fi = sim::faultInjector()) {
        app_hang = fi->appHang();
        app_crash = fi->appCrash();
    }
    ssd::EmbeddedCore *core_ptr = &_ssd.core(inst.coreId);
    if (app_hang) {
        // The app spins forever; the controller watchdog reclaims the
        // core at its deadline and force-kills the instance. No CQE is
        // posted (the host's command timeout covers discovery).
        auto *fi = sim::faultInjector();
        const sim::Tick deadline =
            core_ptr->seize(fetched, fi->plan().watchdogTicks);
        if (auto *sink = obs::traceSink()) {
            obs::Span s;
            s.track = core_ptr->timeline().name();
            s.name = "hang";
            s.category = "ssd";
            s.begin = fetched;
            s.end = deadline;
            s.trace = cmd.traceId;
            s.tenant = inst.tenant;
            s.instance = inst.id;
            s.core = inst.coreId;
            sink->record(s);
            obs::Span k;
            k.track = "ssd.firmware";
            k.name = "watchdog_kill";
            k.category = "ssd";
            k.begin = deadline;
            k.end = deadline;
            k.instant = true;
            k.trace = cmd.traceId;
            k.tenant = inst.tenant;
            k.instance = inst.id;
            sink->record(k);
        }
        fi->noteWatchdogKill();
        watchdogKill(cmd.instanceId);
        return {deadline, nvme::Status::kAppFault, 0,
                /*dropped=*/true};
    }
    inst.expectedByteOff = byte_off + valid;
    inst.ctx->feedChunk(std::move(chunk));
    if (app_crash) {
        // The app dies mid-parse: drop the partial staging and charge
        // the aborted work to this command (same symmetry as the
        // MWRITE refusal path), then poison the instance so every
        // later data command bounces until the host reinstalls it.
        inst.app->processChunk(*inst.ctx);
        const serde::ParseCost aborted = inst.ctx->abortCommand();
        const sim::Tick done = core_ptr->execute(
            core_ptr->config().parseCycles(aborted) +
                core_ptr->config().cyclesPerCommand,
            fetched, "crash",
            {cmd.traceId, inst.tenant, inst.id, valid});
        inst.poisoned = true;
        return {done, nvme::Status::kAppFault, 0};
    }
    inst.app->processChunk(*inst.ctx);
    ++inst.chunksProcessed;

    ssd::EmbeddedCore &core = *core_ptr;
    const serde::ParseCost delta = inst.ctx->takeCostDelta();
    auto flushes = inst.ctx->takeFlushes();
    const double cycles =
        core.config().parseCycles(delta) +
        core.config().cyclesPerCommand +
        core.config().cyclesPerFlush *
            static_cast<double>(flushes.size());
    const sim::Tick parsed =
        core.execute(cycles, fetched, "parse",
                     {cmd.traceId, inst.tenant, inst.id, valid});

    // Ship whatever ms_memcpy flushed during this chunk.
    const sim::Tick done =
        drainFlushes(inst, std::move(flushes), parsed, cmd.traceId);
    return {done, nvme::Status::kSuccess, 0};
}

nvme::CommandResult
MorpheusDeviceRuntime::doMWrite(const nvme::Command &cmd, sim::Tick start)
{
    ++_mwrites;
    const auto it = _instances.find(cmd.instanceId);
    if (it == _instances.end())
        return {start, nvme::Status::kNoSuchInstance, 0};
    Instance &inst = it->second;
    if (inst.poisoned)
        return {start, nvme::Status::kAppFault, 0};

    const std::uint64_t valid =
        cmd.cdw13 ? cmd.cdw13 : cmd.dataBytes();

    // Binary objects arrive from the host (prp1); the app serializes
    // them to text, which lands on flash at slba.
    std::vector<std::uint8_t> data(valid);
    const sim::Tick fetched = _ssd.fabric().dmaReadData(
        _ssd.port(), cmd.prp1, data.data(), valid, start);
    if (_ssd.fabric().consumeDmaFault()) {
        // The inbound payload was corrupted in flight: fail before the
        // app sees any byte so the host's resubmission is exact.
        return {fetched, nvme::Status::kTransientTransferError, 0};
    }

    ssd::EmbeddedCore &core = _ssd.core(inst.coreId);
    const std::uint64_t emitted_before = inst.ctx->bytesEmitted();
    inst.ctx->feedChunk(std::move(data));
    if (!inst.app->processWriteChunk(*inst.ctx)) {
        // The app refused the payload. Drop the partial output and
        // charge the aborted parse work to THIS command, so neither
        // the stale staging nor the cost bleeds into the next one.
        const serde::ParseCost aborted = inst.ctx->abortCommand();
        const sim::Tick done = core.execute(
            core.config().parseCycles(aborted) +
                core.config().cyclesPerCommand,
            fetched);
        return {done, nvme::Status::kInvalidField, 0};
    }

    const serde::ParseCost delta = inst.ctx->takeCostDelta();
    // Serialization cost: symmetric model — emitting text costs what
    // scanning it would, plus per-value conversion. Charge only the
    // bytes this command emitted, not the cumulative stream total.
    const std::uint64_t emitted =
        inst.ctx->bytesEmitted() - emitted_before;
    const double cycles =
        core.config().parseCycles(delta) +
        static_cast<double>(emitted) *
            core.config().cyclesPerByteScan * 0.5 +
        core.config().cyclesPerCommand;
    const sim::Tick serialized =
        core.execute(cycles, fetched, "serialize",
                     {cmd.traceId, inst.tenant, inst.id, valid});

    // Serialized text lands on flash at the command's SLBA; successive
    // MWRITEs to the same region append behind it. The cursor is keyed
    // to the region's base SLBA (a new SLBA starts a new region) —
    // never to the MREAD DMA cursor, which tracks host-memory deliveries
    // and would skew the flash destination after any mixed stream.
    if (!inst.writeRegionOpen || inst.writeSlba != cmd.slba) {
        inst.writeRegionOpen = true;
        inst.writeSlba = cmd.slba;
        inst.writeCursor = 0;
    }
    inst.ctx->flushResidual();
    sim::Tick done = serialized;
    for (auto &seg : inst.ctx->takeFlushes()) {
        const std::uint64_t dst =
            inst.writeSlba * nvme::kBlockBytes + inst.writeCursor;
        done = _ssd.storeFromDram(dst, seg, done);
        inst.writeCursor += seg.size();
        _objectBytes += seg.size();
        _delivered[inst.id] += seg.size();
    }
    return {done, nvme::Status::kSuccess, 0};
}

nvme::CommandResult
MorpheusDeviceRuntime::doMDeinit(const nvme::Command &cmd,
                                 sim::Tick start)
{
    ++_mdeinits;
    const auto it = _instances.find(cmd.instanceId);
    if (it == _instances.end())
        return {start, nvme::Status::kNoSuchInstance, 0};
    Instance &inst = it->second;

    if (inst.poisoned) {
        // The app crashed earlier: skip its finish hooks (they would
        // run over corrupt state) and just tear the instance down so
        // the scheduler frees the slot and the host can reinstall.
        ssd::EmbeddedCore &core = _ssd.core(inst.coreId);
        const sim::Tick done = core.execute(
            core.config().cyclesPerCommand, start, "teardown",
            {cmd.traceId, inst.tenant, inst.id, 0});
        core.unloadImage(inst.codeBytes);
        if (inst.dsramGranted)
            core.releaseDsram(inst.dsramGranted);
        _instances.erase(it);
        return {done, nvme::Status::kSuccess, 0};
    }

    // The stream is over: let the app consume any carried final token,
    // then run its finish hook and flush the residual staging.
    inst.ctx->signalEndOfStream();
    inst.app->processChunk(*inst.ctx);
    inst.app->finish(*inst.ctx);
    inst.ctx->flushResidual();

    ssd::EmbeddedCore &core = _ssd.core(inst.coreId);
    const serde::ParseCost delta = inst.ctx->takeCostDelta();
    auto flushes = inst.ctx->takeFlushes();
    const sim::Tick parsed = core.execute(
        core.config().parseCycles(delta) +
            core.config().cyclesPerCommand +
            core.config().cyclesPerFlush *
                static_cast<double>(flushes.size()),
        start, "final_parse",
        {cmd.traceId, inst.tenant, inst.id, 0});
    const sim::Tick done =
        drainFlushes(inst, std::move(flushes), parsed, cmd.traceId);

    const std::uint32_t rv = inst.app->returnValue();
    core.unloadImage(inst.codeBytes);
    if (inst.dsramGranted)
        core.releaseDsram(inst.dsramGranted);
    _instances.erase(it);
    return {done, nvme::Status::kSuccess, rv};
}

void
MorpheusDeviceRuntime::watchdogKill(std::uint32_t instance_id)
{
    const auto it = _instances.find(instance_id);
    if (it == _instances.end())
        return;
    Instance &inst = it->second;
    ssd::EmbeddedCore &core = _ssd.core(inst.coreId);
    core.unloadImage(inst.codeBytes);
    if (inst.dsramGranted)
        core.releaseDsram(inst.dsramGranted);
    _instances.erase(it);
    // The instance never reaches MDEINIT, so reclaim its scheduler
    // slot and placement here; the host's reinstall starts clean.
    _ssd.scheduler().arbiter().dropInstance(instance_id);
    _ssd.scheduler().dispatcher().releaseInstance(instance_id);
}

void
MorpheusDeviceRuntime::registerStats(sim::stats::StatSet &set,
                                     const std::string &prefix) const
{
    set.registerCounter(prefix + ".minits", &_minits);
    set.registerCounter(prefix + ".mreads", &_mreads);
    set.registerCounter(prefix + ".mwrites", &_mwrites);
    set.registerCounter(prefix + ".mdeinits", &_mdeinits);
    set.registerCounter(prefix + ".objectBytesOut", &_objectBytes);
    set.registerCounter(prefix + ".rawBytesIn", &_rawBytesIn);
}

}  // namespace morpheus::core
