#include "core/device_runtime.hh"

#include <algorithm>
#include <utility>

#include "serde/columnar.hh"
#include "sim/fault.hh"
#include "sim/logging.hh"

namespace morpheus::core {

MorpheusDeviceRuntime::MorpheusDeviceRuntime(ssd::SsdController &ssd)
    : _ssd(ssd)
{
    _ssd.setMorpheusEngine(this);
}

void
MorpheusDeviceRuntime::stageInstance(std::uint32_t instance_id,
                                     const InstanceSetup &setup)
{
    MORPHEUS_ASSERT(setup.image != nullptr, "staging without an image");
    MORPHEUS_ASSERT(setup.image->factory, "image has no factory");
    _staged[instance_id] = setup;
}

void
MorpheusDeviceRuntime::unstageInstance(std::uint32_t instance_id)
{
    _staged.erase(instance_id);
}

std::uint64_t
MorpheusDeviceRuntime::takeDeliveredBytes(std::uint32_t instance_id)
{
    const auto it = _delivered.find(instance_id);
    if (it == _delivered.end())
        return 0;
    const std::uint64_t bytes = it->second;
    _delivered.erase(it);
    return bytes;
}

bool
MorpheusDeviceRuntime::takeServedFromCache(std::uint32_t instance_id)
{
    const auto it = _cacheServed.find(instance_id);
    if (it == _cacheServed.end())
        return false;
    const bool served = it->second;
    _cacheServed.erase(it);
    return served;
}

ssd::ObjectCacheKey
MorpheusDeviceRuntime::cacheKeyFor(const Instance &inst) const
{
    ssd::ObjectCacheKey key;
    key.nsid = inst.streamNsid;
    key.rawBegin = inst.streamOrigin;
    key.rawLen = inst.declaredStreamBytes;
    key.applet = inst.setup.image->name;
    key.appletVersion = inst.setup.image->version;
    key.pushdownDigest = inst.pushdownDigest;
    return key;
}

nvme::CommandResult
MorpheusDeviceRuntime::execute(const nvme::Command &cmd, sim::Tick start)
{
    switch (cmd.opcode) {
      case nvme::Opcode::kMInit:
        return doMInit(cmd, start);
      case nvme::Opcode::kMRead:
        return doMRead(cmd, start);
      case nvme::Opcode::kMWrite:
        return doMWrite(cmd, start);
      case nvme::Opcode::kMDeinit:
        return doMDeinit(cmd, start);
      default:
        return {start, nvme::Status::kInvalidOpcode, 0};
    }
}

nvme::CommandResult
MorpheusDeviceRuntime::doMInit(const nvme::Command &cmd, sim::Tick start)
{
    ++_minits;
    const auto staged = _staged.find(cmd.instanceId);
    if (staged == _staged.end())
        return {start, nvme::Status::kNoSuchInstance, 0};
    if (_instances.count(cmd.instanceId))
        return {start, nvme::Status::kInstanceBusy, 0};

    const InstanceSetup setup = staged->second;
    _staged.erase(staged);

    // With partitioning, the MINIT's requested budget (in-band in
    // PRP2's low dword, staged setup as fallback) becomes a grant the
    // core must be able to reserve; the default is an equal share of
    // the scratchpad across maxInstancesPerCore co-residents. The
    // grant is also a placement signal: the dispatcher prefers cores
    // with room for it.
    // PRP2's low dword is the D-SRAM request; the high dword carries
    // the pushdown descriptor digest when MINIT ships one (NLB holds
    // the descriptor's dword count).
    const sched::SchedConfig &sc = _ssd.config().sched;
    std::uint32_t granted = 0;
    if (sc.dsramPartitioning) {
        const auto prp2_low =
            static_cast<std::uint32_t>(cmd.prp2 & 0xFFFFFFFFull);
        const std::uint32_t requested =
            prp2_low ? prp2_low : setup.dsramBytes;
        granted = requested
                      ? requested
                      : _ssd.config().core.dsramBytes /
                            std::max(1u, sc.maxInstancesPerCore);
    }

    // Pushdown descriptor integrity: the staged dwords must match the
    // in-band count and digest, exactly as the staged factory stands
    // in for the PRP1 code bytes. A mismatched program must never run
    // (its cache entries would replay under the wrong key).
    const std::uint32_t desc_dwords = cmd.nlb;
    std::uint32_t desc_digest = 0;
    if (desc_dwords > 0) {
        if (setup.pushdown.size() != desc_dwords)
            return {start, nvme::Status::kInvalidField, 0};
        desc_digest = serde::pushdownDigest(setup.pushdown);
        if (desc_digest != static_cast<std::uint32_t>(cmd.prp2 >> 32))
            return {start, nvme::Status::kInvalidField, 0};
    }
    const std::uint32_t desc_bytes = desc_dwords * 4;

    ssd::EmbeddedCore &core = _ssd.coreFor(cmd.instanceId, start, granted);
    const std::uint32_t code_bytes =
        cmd.cdw13 ? cmd.cdw13 : setup.image->textBytes;
    if (!core.loadImage(code_bytes))
        return {start, nvme::Status::kAppLoadFailed, 0};
    if (granted && !core.reserveDsram(granted)) {
        // No data budget next to the co-resident grants: release the
        // I-SRAM image too (the scheduler front end frees the arbiter
        // slot and the placement when it sees the failure status).
        core.unloadImage(code_bytes);
        return {start, nvme::Status::kDsramExhausted, 0};
    }

    // Fetch the code image (plus any pushdown descriptor riding behind
    // it) from host memory (prp1), then spend a few core cycles
    // installing it into I-SRAM.
    const sim::Tick fetched = _ssd.fabric().dmaRead(
        _ssd.port(), cmd.prp1, code_bytes + desc_bytes, start);
    if (_ssd.fabric().consumeDmaFault()) {
        // The image arrived corrupted: refuse the install and undo the
        // SRAM reservations. The scheduler front end frees the slot and
        // placement when it sees the failure status, so the host can
        // simply resubmit MINIT.
        core.unloadImage(code_bytes);
        if (granted)
            core.releaseDsram(granted);
        return {fetched, nvme::Status::kTransientTransferError, 0};
    }
    const sim::Tick installed =
        core.execute(static_cast<double>(code_bytes) * 0.5 + 5000.0,
                     fetched, "install",
                     {cmd.traceId, cmd.cdw15, cmd.instanceId, code_bytes});

    ssd::ObjectCache &cache = _ssd.objectCache();
    if (cache.enabled()) {
        // Applet re-install at a different code version: any object it
        // parsed under the old version may embed stale semantics.
        const auto ver = _appletVersions.find(setup.image->name);
        if (ver != _appletVersions.end() &&
            ver->second != setup.image->version)
            cache.invalidateApplet(setup.image->name);
        _appletVersions[setup.image->name] = setup.image->version;
    }

    Instance inst;
    inst.id = cmd.instanceId;
    inst.tenant = cmd.cdw15;
    inst.setup = setup;
    inst.app = setup.image->factory(cmd.cdw14);
    // MINIT declares the stream length in-band (SLBA carries bytes,
    // not blocks): with the first MREAD's origin it identifies the raw
    // range a cached object was parsed from. 0 = unknown, uncacheable.
    inst.declaredStreamBytes = cmd.slba;
    inst.streamNsid = cmd.nsid;
    const std::uint32_t dsram =
        granted ? granted : core.config().dsramBytes;
    const std::uint32_t threshold = std::max<std::uint32_t>(
        1, setup.flushThreshold
               ? std::min(setup.flushThreshold, dsram)
               : dsram / 4);
    inst.ctx = std::make_unique<MsChunkContext>(dsram, threshold,
                                                cmd.cdw14);
    if (desc_dwords > 0) {
        inst.pushdownDigest = desc_digest;
        inst.ctx->setPushdown(setup.pushdown);
    }
    inst.coreId = core.id();
    inst.codeBytes = code_bytes;
    inst.dsramGranted = granted;
    inst.dmaCursor = setup.target.addr;
    _instances.emplace(cmd.instanceId, std::move(inst));

    return {installed, nvme::Status::kSuccess, 0};
}

sim::Tick
MorpheusDeviceRuntime::drainFlushes(
    Instance &inst, std::vector<std::vector<std::uint8_t>> segments,
    sim::Tick earliest, obs::TraceId trace)
{
    sim::Tick done = earliest;
    for (auto &seg : segments) {
        // Staged objects pass through controller DRAM and out over
        // PCIe to the instance's DMA target.
        const sim::Tick buffered =
            _ssd.dramTransfer(seg.size(), earliest);
        sim::Tick dma = _ssd.fabric().dmaWriteData(
            _ssd.port(), inst.dmaCursor, seg.data(), seg.size(),
            buffered);
        // Transient outbound faults are replayed by the device (the
        // data was already delivered functionally, so an exhausted
        // retry bound only costs time — never a double delivery).
        bool dma_failed = false;
        dma = _ssd.retryOutboundDma(inst.dmaCursor, seg.size(), dma,
                                    &dma_failed);
        if (auto *sink = obs::traceSink()) {
            obs::Span s;
            s.track = _ssd.trackPrefix() + "ssd.dma";
            s.name = "flush_dma";
            s.category = "ssd";
            s.begin = buffered;
            s.end = dma;
            s.trace = trace;
            s.tenant = inst.tenant;
            s.instance = inst.id;
            s.core = inst.coreId;
            s.bytes = seg.size();
            sink->record(s);
        }
        inst.dmaCursor += seg.size();
        _objectBytes += seg.size();
        _delivered[inst.id] += seg.size();
        // Candidate for the object cache: the payload is accumulated
        // in DMA order, so on a clean full-stream MDEINIT it is the
        // exact byte sequence a later hit must replay.
        if (_ssd.objectCache().enabled() && inst.cacheable &&
            !inst.cacheServed) {
            inst.cachePayload.insert(inst.cachePayload.end(),
                                     seg.begin(), seg.end());
        }
        done = std::max(done, dma);
    }
    return done;
}

void
MorpheusDeviceRuntime::maybeMigrate(Instance &inst, sim::Tick now,
                                    obs::TraceId trace)
{
    auto &dispatcher = _ssd.scheduler().dispatcher();
    const auto plan = dispatcher.coreForChunk(inst.id, now);
    if (!plan.migrated)
        return;
    ssd::EmbeddedCore &to = _ssd.core(plan.core);
    if (!to.loadImage(inst.codeBytes)) {
        // No I-SRAM room next to the apps already resident there.
        dispatcher.cancelMigration(inst.id, plan.previous, now);
        return;
    }
    if (inst.dsramGranted && !to.reserveDsram(inst.dsramGranted)) {
        // The target can't honor the instance's D-SRAM grant next to
        // its co-residents; undo the image load and stay put.
        to.unloadImage(inst.codeBytes);
        dispatcher.cancelMigration(inst.id, plan.previous, now);
        return;
    }
    ssd::EmbeddedCore &from = _ssd.core(plan.previous);
    from.unloadImage(inst.codeBytes);
    if (inst.dsramGranted)
        from.releaseDsram(inst.dsramGranted);
    // Reinstall the code image and move the live staging state — the
    // bytes actually parked in D-SRAM, not the whole scratchpad —
    // between the two cores through controller DRAM.
    const std::uint64_t state_bytes = inst.ctx->dsramUse();
    const sim::Tick state_moved = _ssd.dramTransfer(state_bytes, now);
    if (auto *sink = obs::traceSink()) {
        obs::Span s;
        s.track = _ssd.trackPrefix() + "ssd.dram";
        s.name = "dsram_move";
        s.category = "ssd";
        s.begin = now;
        s.end = state_moved;
        s.trace = trace;
        s.tenant = inst.tenant;
        s.instance = inst.id;
        s.core = to.id();
        s.bytes = state_bytes;
        sink->record(s);
    }
    to.execute(static_cast<double>(inst.codeBytes) * 0.5 +
                   _ssd.config().sched.migrationCycles,
               state_moved, "isram_reload",
               {trace, inst.tenant, inst.id, inst.codeBytes});
    inst.coreId = to.id();
    if (inst.readahead.valid) {
        // The readahead buffer is owned by the firmware context that
        // just moved: drop it rather than carry per-core prefetch
        // state across the migration. It holds only schedule state, so
        // the next chunk simply pays a fresh (fully charged) fetch.
        inst.readahead = Instance::Readahead{};
        ++_readaheadDropped;
    }
}

nvme::CommandResult
MorpheusDeviceRuntime::doMRead(const nvme::Command &cmd, sim::Tick start)
{
    ++_mreads;
    const auto it = _instances.find(cmd.instanceId);
    if (it == _instances.end())
        return {start, nvme::Status::kNoSuchInstance, 0};
    Instance &inst = it->second;
    if (inst.poisoned)
        return {start, nvme::Status::kAppFault, 0};
    maybeMigrate(inst, start, cmd.traceId);

    const std::uint64_t byte_off = cmd.slba * nvme::kBlockBytes;
    const std::uint64_t valid =
        cmd.cdw13 ? cmd.cdw13 : cmd.dataBytes();
    MORPHEUS_ASSERT(valid <= cmd.dataBytes(),
                    "valid byte count exceeds the LBA range");

    // Stream-order guard: after a failed chunk the host may still have
    // later chunks of the same batch in flight. Feeding them would run
    // the stateful parser across a gap, so bounce them (retryable)
    // until the missing chunk is resubmitted. The first chunk of a
    // stream pins its origin.
    constexpr std::uint64_t kUnpinned = ~std::uint64_t{0};
    if (inst.expectedByteOff != kUnpinned &&
        byte_off != inst.expectedByteOff)
        return {start, nvme::Status::kSequenceError, 0};

    if (inst.cacheServed) {
        // The whole object already left the device on the stream's
        // first chunk; the remaining MREADs of the host's fixed chunk
        // schedule complete immediately, touching neither flash nor an
        // embedded core.
        inst.expectedByteOff = byte_off + valid;
        return {start, nvme::Status::kSuccess, 0};
    }
    ssd::ObjectCache &cache = _ssd.objectCache();
    if (cache.enabled() && inst.expectedByteOff == kUnpinned) {
        // First chunk pins the stream origin — now the raw range is
        // known and the cache can answer.
        inst.streamOrigin = byte_off;
        if (inst.declaredStreamBytes > 0) {
            const ssd::ObjectCache::Entry *hit =
                cache.lookup(cacheKeyFor(inst));
            if (hit != nullptr) {
                // Serve the parsed object straight from controller
                // DRAM: one pass through the DRAM port and out over
                // PCIe. No flash fetch, no ParseCost, no core slot.
                const sim::Tick buffered =
                    _ssd.dramTransfer(hit->payload.size(), start);
                sim::Tick dma = _ssd.fabric().dmaWriteData(
                    _ssd.port(), inst.dmaCursor, hit->payload.data(),
                    hit->payload.size(), buffered);
                bool dma_failed = false;
                dma = _ssd.retryOutboundDma(inst.dmaCursor,
                                            hit->payload.size(), dma,
                                            &dma_failed);
                if (auto *sink = obs::traceSink()) {
                    obs::Span s;
                    s.track = _ssd.trackPrefix() + "ssd.dma";
                    s.name = "cache_hit";
                    s.category = "ssd";
                    s.begin = start;
                    s.end = dma;
                    s.trace = cmd.traceId;
                    s.tenant = inst.tenant;
                    s.instance = inst.id;
                    s.core = inst.coreId;
                    s.bytes = hit->payload.size();
                    sink->record(s);
                }
                inst.dmaCursor += hit->payload.size();
                _objectBytes += hit->payload.size();
                _delivered[inst.id] += hit->payload.size();
                inst.cacheServed = true;
                inst.cachedReturnValue = hit->returnValue;
                _cacheServed[inst.id] = true;
                inst.expectedByteOff = byte_off + valid;
                return {dma, nvme::Status::kSuccess, 0};
            }
        }
    }
    _rawBytesIn += valid;

    if (_ssd.config().pipeline.enabled)
        return mreadPipelined(inst, cmd, byte_off, valid, start);

    // Flash -> controller DRAM (timed), then the embedded core parses
    // the chunk out of D-SRAM.
    bool media = false;
    const sim::Tick fetched =
        _ssd.fetchToDram(byte_off, valid, start, &media);
    if (media) {
        // Uncorrectable flash page: the access time was charged but the
        // chunk never reaches the parser, so a host resubmission of the
        // same command is exact (read-retry recoverable). Pin the
        // stream cursor to this chunk so nothing can slip past it.
        inst.expectedByteOff = byte_off;
        if (auto *sink = obs::traceSink()) {
            obs::Span s;
            s.track = _ssd.trackPrefix() + "ssd.firmware";
            s.name = "media_error";
            s.category = "ssd";
            s.begin = fetched;
            s.end = fetched;
            s.instant = true;
            s.trace = cmd.traceId;
            s.tenant = inst.tenant;
            s.instance = inst.id;
            s.core = inst.coreId;
            s.status =
                static_cast<std::uint32_t>(nvme::Status::kMediaError);
            sink->record(s);
        }
        return {fetched, nvme::Status::kMediaError, 0};
    }
    std::vector<std::uint8_t> chunk = _ssd.peekBytes(byte_off, valid);

    // App-fault injection: both streams are drawn every chunk so each
    // schedule depends only on its own event sequence, regardless of
    // which (if either) fires. A hang outranks a crash.
    bool app_hang = false;
    bool app_crash = false;
    if (auto *fi = sim::faultInjector()) {
        app_hang = fi->appHang();
        app_crash = fi->appCrash();
    }
    ssd::EmbeddedCore *core_ptr = &_ssd.core(inst.coreId);
    if (app_hang) {
        // The app spins forever; the controller watchdog reclaims the
        // core at its deadline and force-kills the instance. No CQE is
        // posted (the host's command timeout covers discovery).
        auto *fi = sim::faultInjector();
        const sim::Tick deadline =
            core_ptr->seize(fetched, fi->plan().watchdogTicks);
        if (auto *sink = obs::traceSink()) {
            obs::Span s;
            s.track = core_ptr->timeline().name();
            s.name = "hang";
            s.category = "ssd";
            s.begin = fetched;
            s.end = deadline;
            s.trace = cmd.traceId;
            s.tenant = inst.tenant;
            s.instance = inst.id;
            s.core = inst.coreId;
            sink->record(s);
            obs::Span k;
            k.track = _ssd.trackPrefix() + "ssd.firmware";
            k.name = "watchdog_kill";
            k.category = "ssd";
            k.begin = deadline;
            k.end = deadline;
            k.instant = true;
            k.trace = cmd.traceId;
            k.tenant = inst.tenant;
            k.instance = inst.id;
            sink->record(k);
        }
        fi->noteWatchdogKill();
        watchdogKill(cmd.instanceId);
        return {deadline, nvme::Status::kAppFault, 0,
                /*dropped=*/true};
    }
    inst.expectedByteOff = byte_off + valid;
    inst.ctx->feedChunk(std::move(chunk));
    if (app_crash) {
        // The app dies mid-parse: drop the partial staging and charge
        // the aborted work to this command (same symmetry as the
        // MWRITE refusal path), then poison the instance so every
        // later data command bounces until the host reinstalls it.
        inst.app->processChunk(*inst.ctx);
        const serde::ParseCost aborted = inst.ctx->abortCommand();
        const sim::Tick done = core_ptr->execute(
            core_ptr->config().parseCycles(aborted) +
                core_ptr->config().cyclesPerCommand,
            fetched, "crash",
            {cmd.traceId, inst.tenant, inst.id, valid});
        inst.poisoned = true;
        return {done, nvme::Status::kAppFault, 0};
    }
    inst.app->processChunk(*inst.ctx);
    ++inst.chunksProcessed;

    ssd::EmbeddedCore &core = *core_ptr;
    const serde::ParseCost delta = inst.ctx->takeCostDelta();
    auto flushes = inst.ctx->takeFlushes();
    const double cycles =
        core.config().parseCycles(delta) +
        core.config().cyclesPerCommand +
        core.config().cyclesPerFlush *
            static_cast<double>(flushes.size());
    // A pushdown instance's core work is predicate/projection
    // evaluation, not a parse — name it so stage breakdowns separate
    // scan (core) from emit (flush_dma).
    const sim::Tick parsed = core.execute(
        cycles, fetched, inst.pushdownDigest ? "scan" : "parse",
        {cmd.traceId, inst.tenant, inst.id, valid});

    // Ship whatever ms_memcpy flushed during this chunk.
    const sim::Tick done =
        drainFlushes(inst, std::move(flushes), parsed, cmd.traceId);
    return {done, nvme::Status::kSuccess, 0};
}

std::vector<std::vector<std::uint8_t>>
MorpheusDeviceRuntime::coalesceSegments(
    std::vector<std::vector<std::uint8_t>> segments,
    std::uint64_t max_bytes)
{
    std::vector<std::vector<std::uint8_t>> merged;
    merged.reserve(segments.size());
    for (auto &seg : segments) {
        if (!merged.empty() &&
            merged.back().size() + seg.size() <= max_bytes) {
            merged.back().insert(merged.back().end(), seg.begin(),
                                 seg.end());
        } else {
            merged.push_back(std::move(seg));
        }
    }
    return merged;
}

void
MorpheusDeviceRuntime::issueReadahead(Instance &inst,
                                      std::uint64_t byte_off,
                                      std::uint64_t len,
                                      sim::Tick earliest,
                                      obs::TraceId trace)
{
    const ssd::PipelineConfig &pl = _ssd.config().pipeline;
    const std::uint64_t capacity =
        _ssd.ftl().logicalPages() *
        static_cast<std::uint64_t>(_ssd.ftl().pageBytes());
    if (byte_off >= capacity)
        return;
    len = std::min(len, pl.readaheadBufferBytes);
    len = std::min(len, capacity - byte_off);
    if (len == 0)
        return;
    Instance::Readahead ra;
    ra.fetch = _ssd.fetchToDramPaged(byte_off, len, earliest);
    ra.media = ra.fetch.mediaError;
    ra.byteOff = byte_off;
    ra.len = len;
    ra.valid = true;
    if (auto *sink = obs::traceSink()) {
        obs::Span s;
        s.track = _ssd.trackPrefix() + "ssd.dram";
        s.name = "readahead";
        s.category = "ssd";
        s.begin = earliest;
        s.end = ra.fetch.allReady;
        s.trace = trace;
        s.tenant = inst.tenant;
        s.instance = inst.id;
        s.core = inst.coreId;
        s.bytes = len;
        sink->record(s);
    }
    inst.readahead = std::move(ra);
    ++_readaheadIssued;
}

nvme::CommandResult
MorpheusDeviceRuntime::mreadPipelined(Instance &inst,
                                      const nvme::Command &cmd,
                                      std::uint64_t byte_off,
                                      std::uint64_t valid,
                                      sim::Tick start)
{
    const ssd::PipelineConfig &pl = _ssd.config().pipeline;
    const std::uint32_t page_bytes = _ssd.ftl().pageBytes();

    // Stage 1 — fetch. The readahead buffer satisfies the chunk when
    // the prefetch covered this exact origin cleanly; it is consumed
    // either way, and a poisoned or mismatched prefetch is discarded
    // (never fed to the parser) in favor of a fresh, fully charged
    // fetch — which keeps a host resubmission after any failure exact.
    Instance::Readahead ra = std::move(inst.readahead);
    inst.readahead = Instance::Readahead{};
    ssd::PagedFetch fetch;
    bool readahead_hit = false;
    if (pl.readahead && ra.valid && !ra.media &&
        ra.byteOff == byte_off && ra.len >= valid) {
        fetch = std::move(ra.fetch);
        readahead_hit = true;
        ++_readaheadHits;
    } else {
        if (ra.valid) {
            if (ra.media)
                ++_readaheadMediaDiscards;
            else
                ++_readaheadDropped;
        }
        fetch = _ssd.fetchToDramPaged(byte_off, valid, start);
    }
    const sim::Tick all_ready = std::max(start, fetch.allReady);
    if (fetch.mediaError) {
        // Same contract as the serial path: time was charged, nothing
        // reaches the parser, and the stream cursor pins this chunk so
        // only its exact resubmission is accepted.
        inst.expectedByteOff = byte_off;
        if (auto *sink = obs::traceSink()) {
            obs::Span s;
            s.track = _ssd.trackPrefix() + "ssd.firmware";
            s.name = "media_error";
            s.category = "ssd";
            s.begin = all_ready;
            s.end = all_ready;
            s.instant = true;
            s.trace = cmd.traceId;
            s.tenant = inst.tenant;
            s.instance = inst.id;
            s.core = inst.coreId;
            s.status =
                static_cast<std::uint32_t>(nvme::Status::kMediaError);
            sink->record(s);
        }
        return {all_ready, nvme::Status::kMediaError, 0};
    }
    if (auto *sink = obs::traceSink()) {
        obs::Span s;
        s.track = _ssd.trackPrefix() + "ssd.dram";
        s.name = readahead_hit ? "fetch_readahead" : "fetch";
        s.category = "ssd";
        s.begin = start;
        s.end = all_ready;
        s.trace = cmd.traceId;
        s.tenant = inst.tenant;
        s.instance = inst.id;
        s.core = inst.coreId;
        s.bytes = valid;
        sink->record(s);
    }
    std::vector<std::uint8_t> chunk = _ssd.peekBytes(byte_off, valid);

    // Tick the sub-buffer ending at chunk-relative byte @p end_rel is
    // buffered in controller DRAM (pageReady is non-decreasing, so the
    // last covered page dominates). Readahead ticks may lie before the
    // command's arrival — the pages are simply already resident.
    const auto ready_at = [&](std::uint64_t end_rel) {
        const std::uint64_t page =
            (byte_off + end_rel - 1) / page_bytes - fetch.firstPage;
        return std::max(start, fetch.pageReady[page]);
    };

    // App-fault injection: same draws as the serial path, so each
    // schedule depends only on its own event sequence.
    bool app_hang = false;
    bool app_crash = false;
    if (auto *fi = sim::faultInjector()) {
        app_hang = fi->appHang();
        app_crash = fi->appCrash();
    }
    ssd::EmbeddedCore *core_ptr = &_ssd.core(inst.coreId);
    if (app_hang) {
        // The app is dispatched at the first sub-buffer's arrival and
        // spins; the controller watchdog reclaims the core.
        auto *fi = sim::faultInjector();
        const sim::Tick dispatched = std::max(start, fetch.firstReady);
        const sim::Tick deadline =
            core_ptr->seize(dispatched, fi->plan().watchdogTicks);
        if (auto *sink = obs::traceSink()) {
            obs::Span s;
            s.track = core_ptr->timeline().name();
            s.name = "hang";
            s.category = "ssd";
            s.begin = dispatched;
            s.end = deadline;
            s.trace = cmd.traceId;
            s.tenant = inst.tenant;
            s.instance = inst.id;
            s.core = inst.coreId;
            sink->record(s);
            obs::Span k;
            k.track = _ssd.trackPrefix() + "ssd.firmware";
            k.name = "watchdog_kill";
            k.category = "ssd";
            k.begin = deadline;
            k.end = deadline;
            k.instant = true;
            k.trace = cmd.traceId;
            k.tenant = inst.tenant;
            k.instance = inst.id;
            sink->record(k);
        }
        fi->noteWatchdogKill();
        watchdogKill(cmd.instanceId);
        return {deadline, nvme::Status::kAppFault, 0,
                /*dropped=*/true};
    }
    inst.expectedByteOff = byte_off + valid;

    // Stage 2 — double-buffered parse. Sub-buffers are sized from the
    // instance's partitioned grant (two in-flight sub-buffers plus the
    // staging/carry share it, hence the quarter), so parse(sub_i)
    // starts at sub_i's last page arrival instead of the chunk's.
    // ParseCost is linear, so the per-sub-buffer deltas sum to the
    // serial path's total and cost accounting is unchanged.
    const std::uint32_t dsram = inst.dsramGranted
                                    ? inst.dsramGranted
                                    : core_ptr->config().dsramBytes;
    std::uint64_t sub_bytes = valid;
    if (pl.doubleBuffer)
        sub_bytes = std::max<std::uint64_t>(page_bytes, dsram / 4);

    sim::Tick parsed = start;
    sim::Tick dma_done = start;
    std::uint64_t pos = 0;
    bool first = true;
    while (pos < valid) {
        const std::uint64_t take = std::min(sub_bytes, valid - pos);
        std::vector<std::uint8_t> sub(
            chunk.begin() + static_cast<std::ptrdiff_t>(pos),
            chunk.begin() + static_cast<std::ptrdiff_t>(pos + take));
        const sim::Tick ready = ready_at(pos + take);
        inst.ctx->feedChunk(std::move(sub));
        if (app_crash) {
            // The app dies in its first sub-buffer: drop the partial
            // staging, charge the aborted work to this command once,
            // and poison the instance (serial-path semantics).
            inst.app->processChunk(*inst.ctx);
            const serde::ParseCost aborted = inst.ctx->abortCommand();
            const sim::Tick done = core_ptr->execute(
                core_ptr->config().parseCycles(aborted) +
                    core_ptr->config().cyclesPerCommand,
                std::max(ready, parsed), "crash",
                {cmd.traceId, inst.tenant, inst.id, take});
            inst.poisoned = true;
            return {done, nvme::Status::kAppFault, 0};
        }
        inst.app->processChunk(*inst.ctx);
        const serde::ParseCost delta = inst.ctx->takeCostDelta();
        auto flushes = inst.ctx->takeFlushes();
        if (pl.coalesceFlush) {
            const std::size_t raw = flushes.size();
            flushes = coalesceSegments(std::move(flushes),
                                       pl.maxDescriptorBytes);
            _flushSegmentsCoalesced += raw - flushes.size();
        }
        const double cycles =
            core_ptr->config().parseCycles(delta) +
            (first ? core_ptr->config().cyclesPerCommand : 0.0) +
            core_ptr->config().cyclesPerFlush *
                static_cast<double>(flushes.size());
        // max(ready, parsed): the parse is a sequential stream, so
        // sub_i may not start before sub_{i-1} finished even when its
        // data landed earlier.
        parsed = core_ptr->execute(
            cycles, std::max(ready, parsed),
            inst.pushdownDigest ? "scan" : "parse",
            {cmd.traceId, inst.tenant, inst.id, take});
        // Stage 3 — sub_i's flush DMA proceeds while sub_{i+1}
        // parses; only the command completion waits for the last DMA.
        dma_done = std::max(dma_done,
                            drainFlushes(inst, std::move(flushes),
                                         parsed, cmd.traceId));
        ++_subBuffersParsed;
        pos += take;
        first = false;
    }
    ++inst.chunksProcessed;

    // Prefetch the next chunk's pages. Issued at this command's start:
    // the die/channel timelines queue the prefetch behind this chunk's
    // own reads wherever they contend, so it streams in under the
    // parse that is still running and never delays data a deeper queue
    // would have fetched on its own.
    if (pl.readahead)
        issueReadahead(inst, byte_off + valid, valid, start,
                       cmd.traceId);
    return {std::max(parsed, dma_done), nvme::Status::kSuccess, 0};
}

nvme::CommandResult
MorpheusDeviceRuntime::doMWrite(const nvme::Command &cmd, sim::Tick start)
{
    ++_mwrites;
    const auto it = _instances.find(cmd.instanceId);
    if (it == _instances.end())
        return {start, nvme::Status::kNoSuchInstance, 0};
    Instance &inst = it->second;
    if (inst.poisoned)
        return {start, nvme::Status::kAppFault, 0};

    const std::uint64_t valid =
        cmd.cdw13 ? cmd.cdw13 : cmd.dataBytes();

    // A serializing stream is not a pure parse of a flash range: its
    // MDEINIT return value and delivered bytes don't describe a
    // replayable object, so the instance drops out of cache candidacy.
    inst.cacheable = false;
    inst.cachePayload.clear();

    // Binary objects arrive from the host (prp1); the app serializes
    // them to text, which lands on flash at slba.
    std::vector<std::uint8_t> data(valid);
    const sim::Tick fetched = _ssd.fabric().dmaReadData(
        _ssd.port(), cmd.prp1, data.data(), valid, start);
    if (_ssd.fabric().consumeDmaFault()) {
        // The inbound payload was corrupted in flight: fail before the
        // app sees any byte so the host's resubmission is exact.
        return {fetched, nvme::Status::kTransientTransferError, 0};
    }

    ssd::EmbeddedCore &core = _ssd.core(inst.coreId);
    const std::uint64_t emitted_before = inst.ctx->bytesEmitted();
    inst.ctx->feedChunk(std::move(data));
    if (!inst.app->processWriteChunk(*inst.ctx)) {
        // The app refused the payload. Drop the partial output and
        // charge the aborted parse work to THIS command, so neither
        // the stale staging nor the cost bleeds into the next one.
        const serde::ParseCost aborted = inst.ctx->abortCommand();
        const sim::Tick done = core.execute(
            core.config().parseCycles(aborted) +
                core.config().cyclesPerCommand,
            fetched);
        return {done, nvme::Status::kInvalidField, 0};
    }

    const serde::ParseCost delta = inst.ctx->takeCostDelta();
    // Serialization cost: symmetric model — emitting text costs what
    // scanning it would, plus per-value conversion. Charge only the
    // bytes this command emitted, not the cumulative stream total.
    const std::uint64_t emitted =
        inst.ctx->bytesEmitted() - emitted_before;
    const double cycles =
        core.config().parseCycles(delta) +
        static_cast<double>(emitted) *
            core.config().cyclesPerByteScan * 0.5 +
        core.config().cyclesPerCommand;
    const sim::Tick serialized =
        core.execute(cycles, fetched, "serialize",
                     {cmd.traceId, inst.tenant, inst.id, valid});

    // Serialized text lands on flash at the command's SLBA; successive
    // MWRITEs to the same region append behind it. The cursor is keyed
    // to the region's base SLBA (a new SLBA starts a new region) —
    // never to the MREAD DMA cursor, which tracks host-memory deliveries
    // and would skew the flash destination after any mixed stream.
    if (!inst.writeRegionOpen || inst.writeSlba != cmd.slba) {
        inst.writeRegionOpen = true;
        inst.writeSlba = cmd.slba;
        inst.writeCursor = 0;
    }
    inst.ctx->flushResidual();
    sim::Tick done = serialized;
    auto segments = inst.ctx->takeFlushes();
    const ssd::PipelineConfig &pl = _ssd.config().pipeline;
    if (pl.enabled && pl.coalesceFlush) {
        // Stage 3 for the write path: successive segments land behind
        // each other on flash (the region cursor advances segment by
        // segment), so merging them saves the page read-modify-write
        // at every seam.
        const std::size_t raw = segments.size();
        segments =
            coalesceSegments(std::move(segments), pl.maxDescriptorBytes);
        _flushSegmentsCoalesced += raw - segments.size();
    }
    const std::uint64_t landed_begin =
        inst.writeSlba * nvme::kBlockBytes + inst.writeCursor;
    for (auto &seg : segments) {
        const std::uint64_t dst =
            inst.writeSlba * nvme::kBlockBytes + inst.writeCursor;
        done = _ssd.storeFromDram(dst, seg, done);
        inst.writeCursor += seg.size();
        _objectBytes += seg.size();
        _delivered[inst.id] += seg.size();
    }
    // The serialized text overwrote raw bytes: cached objects parsed
    // from any overlapping range are stale. End-exclusive — an MWRITE
    // that merely touches a cached range leaves it alone.
    if (_ssd.objectCache().enabled()) {
        const std::uint64_t landed_end =
            inst.writeSlba * nvme::kBlockBytes + inst.writeCursor;
        _ssd.objectCache().invalidateRange(cmd.nsid, landed_begin,
                                           landed_end);
    }
    return {done, nvme::Status::kSuccess, 0};
}

nvme::CommandResult
MorpheusDeviceRuntime::doMDeinit(const nvme::Command &cmd,
                                 sim::Tick start)
{
    ++_mdeinits;
    const auto it = _instances.find(cmd.instanceId);
    if (it == _instances.end())
        return {start, nvme::Status::kNoSuchInstance, 0};
    Instance &inst = it->second;

    if (inst.poisoned) {
        // The app crashed earlier: skip its finish hooks (they would
        // run over corrupt state) and just tear the instance down so
        // the scheduler frees the slot and the host can reinstall.
        ssd::EmbeddedCore &core = _ssd.core(inst.coreId);
        const sim::Tick done = core.execute(
            core.config().cyclesPerCommand, start, "teardown",
            {cmd.traceId, inst.tenant, inst.id, 0});
        core.unloadImage(inst.codeBytes);
        if (inst.dsramGranted)
            core.releaseDsram(inst.dsramGranted);
        _instances.erase(it);
        return {done, nvme::Status::kSuccess, 0};
    }

    if (inst.cacheServed) {
        // The object was replayed from the cache: the app never saw a
        // byte, so its finish hooks have nothing to run over. Teardown
        // is pure firmware work — no embedded-core occupancy — and the
        // completion carries the return value cached with the object.
        const sim::Tick done = start + 1 * sim::kPsPerUs;
        ssd::EmbeddedCore &core = _ssd.core(inst.coreId);
        core.unloadImage(inst.codeBytes);
        if (inst.dsramGranted)
            core.releaseDsram(inst.dsramGranted);
        const std::uint32_t rv = inst.cachedReturnValue;
        _instances.erase(it);
        return {done, nvme::Status::kSuccess, rv};
    }

    // The stream is over: let the app consume any carried final token,
    // then run its finish hook and flush the residual staging.
    inst.ctx->signalEndOfStream();
    inst.app->processChunk(*inst.ctx);
    inst.app->finish(*inst.ctx);
    inst.ctx->flushResidual();

    ssd::EmbeddedCore &core = _ssd.core(inst.coreId);
    const serde::ParseCost delta = inst.ctx->takeCostDelta();
    auto flushes = inst.ctx->takeFlushes();
    const ssd::PipelineConfig &pl = _ssd.config().pipeline;
    if (pl.enabled && pl.coalesceFlush) {
        const std::size_t raw = flushes.size();
        flushes =
            coalesceSegments(std::move(flushes), pl.maxDescriptorBytes);
        _flushSegmentsCoalesced += raw - flushes.size();
    }
    const sim::Tick parsed = core.execute(
        core.config().parseCycles(delta) +
            core.config().cyclesPerCommand +
            core.config().cyclesPerFlush *
                static_cast<double>(flushes.size()),
        start, "final_parse",
        {cmd.traceId, inst.tenant, inst.id, 0});
    const sim::Tick done =
        drainFlushes(inst, std::move(flushes), parsed, cmd.traceId);

    const std::uint32_t rv = inst.app->returnValue();

    // Populate the cache: only a clean stream that covered the whole
    // declared range, exactly once, end to end. Crashed (poisoned),
    // watchdog-killed, serializing (MWRITE), or short streams never
    // insert — a partial object must not be replayable.
    ssd::ObjectCache &cache = _ssd.objectCache();
    constexpr std::uint64_t kUnpinned = ~std::uint64_t{0};
    if (cache.enabled() && inst.cacheable &&
        inst.streamOrigin != kUnpinned && inst.declaredStreamBytes > 0 &&
        inst.expectedByteOff ==
            inst.streamOrigin + inst.declaredStreamBytes) {
        cache.insert(cacheKeyFor(inst), std::move(inst.cachePayload),
                     rv);
    }

    core.unloadImage(inst.codeBytes);
    if (inst.dsramGranted)
        core.releaseDsram(inst.dsramGranted);
    _instances.erase(it);
    return {done, nvme::Status::kSuccess, rv};
}

void
MorpheusDeviceRuntime::watchdogKill(std::uint32_t instance_id)
{
    const auto it = _instances.find(instance_id);
    if (it == _instances.end())
        return;
    Instance &inst = it->second;
    ssd::EmbeddedCore &core = _ssd.core(inst.coreId);
    core.unloadImage(inst.codeBytes);
    if (inst.dsramGranted)
        core.releaseDsram(inst.dsramGranted);
    _instances.erase(it);
    // The instance never reaches MDEINIT, so reclaim its scheduler
    // slot and placement here; the host's reinstall starts clean.
    _ssd.scheduler().arbiter().dropInstance(instance_id);
    _ssd.scheduler().dispatcher().releaseInstance(instance_id);
}

void
MorpheusDeviceRuntime::registerStats(sim::stats::StatSet &set,
                                     const std::string &prefix) const
{
    set.registerCounter(prefix + ".minits", &_minits);
    set.registerCounter(prefix + ".mreads", &_mreads);
    set.registerCounter(prefix + ".mwrites", &_mwrites);
    set.registerCounter(prefix + ".mdeinits", &_mdeinits);
    set.registerCounter(prefix + ".objectBytesOut", &_objectBytes);
    set.registerCounter(prefix + ".rawBytesIn", &_rawBytesIn);
    set.registerCounter(prefix + ".pipeline.readaheadIssued",
                        &_readaheadIssued);
    set.registerCounter(prefix + ".pipeline.readaheadHits",
                        &_readaheadHits);
    set.registerCounter(prefix + ".pipeline.readaheadMediaDiscards",
                        &_readaheadMediaDiscards);
    set.registerCounter(prefix + ".pipeline.readaheadDropped",
                        &_readaheadDropped);
    set.registerCounter(prefix + ".pipeline.subBuffersParsed",
                        &_subBuffersParsed);
    set.registerCounter(prefix + ".pipeline.flushSegmentsCoalesced",
                        &_flushSegmentsCoalesced);
    _ssd.objectCache().registerStats(set, prefix + ".cache");
}

}  // namespace morpheus::core
