/**
 * @file
 * Host-side Morpheus runtime (paper §V).
 *
 * What the compiler-inserted stubs + runtime system do at a StorageApp
 * call site:
 *  1. ms_stream_create: file permission check and block-list lookup in
 *     the host OS (the device never runs file-system code);
 *  2. MINIT with a fresh instance ID and the app's code image;
 *  3. a stream of MREAD commands chunked to the NVMe transfer limit,
 *     batched to the queue depth so the host thread sleeps instead of
 *     baby-sitting each command (this is where the context-switch
 *     savings of Fig 10 come from);
 *  4. MDEINIT, whose completion carries the StorageApp return value;
 *  5. making the DMAed object buffer visible to the application.
 *
 * When the target is GPU memory the runtime asks NvmeP2p for the BAR
 * mapping and the same MREADs deliver objects peer-to-peer.
 */

#ifndef MORPHEUS_CORE_HOST_RUNTIME_HH
#define MORPHEUS_CORE_HOST_RUNTIME_HH

#include <cstdint>
#include <vector>

#include "core/device_runtime.hh"
#include "core/nvme_p2p.hh"
#include "core/storage_app.hh"
#include "host/host_system.hh"
#include "obs/trace.hh"

namespace morpheus::core {

/** Host-side view of an open Morpheus stream (ms_stream). */
struct MsStream
{
    host::FileExtent extent;
    /** Tick when ms_stream_create's OS work finished. */
    sim::Tick readyAt = 0;
};

/** Knobs for one invocation. */
struct InvokeOptions
{
    /** MREAD chunk size in 512 B blocks; 0 = the controller's MDTS. */
    std::uint32_t chunkBlocks = 0;
    /** Host core that owns the calling thread. */
    unsigned hostCore = 0;
    /** Argument word passed to the StorageApp. */
    std::uint32_t arg = 0;
    /** Staging flush threshold override (0 = D-SRAM / 4). */
    std::uint32_t flushThreshold = 0;
    /** Tenant the invocation bills to (MINIT cdw15). */
    std::uint32_t tenantId = 0;
    /**
     * Requested per-instance D-SRAM budget (MINIT PRP2 low dword).
     * Only meaningful with SchedConfig::dsramPartitioning; 0 = the
     * core's default equal share.
     */
    std::uint32_t dsramBytes = 0;
    /**
     * Pushdown descriptor dwords (serde::ScanSpec::encode()). When
     * non-empty, MINIT carries the dword count in NLB, the descriptor
     * digest in PRP2's high dword, and the descriptor bytes behind the
     * code image in the PRP1 fetch. Empty = no pushdown (default, and
     * bit-identical to the pre-pushdown wire encoding).
     */
    std::vector<std::uint32_t> pushdown;
    /**
     * MWRITE (on-device serialization) session: stepInvoke streams the
     * host buffer at @p writeSrc through MWRITE commands landing at
     * flash byte @p writeDstByte, instead of MREADs. The session's
     * stream extent declares the source buffer length.
     */
    bool serialize = false;
    pcie::Addr writeSrc = 0;
    std::uint64_t writeDstByte = 0;
};

/** Measured outcome of one StorageApp invocation. */
struct InvokeResult
{
    sim::Tick start = 0;
    sim::Tick done = 0;
    std::uint32_t returnValue = 0;
    std::uint64_t objectBytes = 0;   ///< DMAed to the target.
    std::uint64_t mreadCommands = 0;
    std::uint64_t hostWakeups = 0;   ///< Blocking waits by the host.
    /** The stream was answered by the device's object cache: the
     *  parsed object was replayed from controller DRAM, no flash
     *  fetch or ParseCost was paid. */
    bool servedFromCache = false;
    /** False when the scheduler front end refused the MINIT. */
    bool accepted = true;
    /** The invocation died mid-stream on a device fault the driver's
     *  recovery budget could not absorb (only with recovery enabled;
     *  otherwise faults assert). Delivered bytes may be partial. */
    bool failed = false;

    sim::Tick elapsed() const { return done - start; }
};

/**
 * One in-flight invocation, advanced by the caller (the building block
 * invoke() and the open-loop serving driver both use). A session walks
 * MINIT -> MREAD batches -> MDEINIT; between steps the host thread is
 * free, which is what lets a serving driver interleave many tenants'
 * streams over one device.
 */
struct InvokeSession
{
    const StorageAppImage *image = nullptr;
    MsStream stream;
    DmaTarget target;
    InvokeOptions opts;

    std::uint32_t instance = 0;
    std::uint16_t qid = 0;
    /** MINIT completion status (admission refusals land here). */
    nvme::Status minitStatus = nvme::Status::kSuccess;
    /** MINIT succeeded; the stream may proceed. */
    bool accepted = false;
    /** Refused with a retry indication (slot held by open instances):
     *  begin again later. */
    bool retry = false;
    /** NVMe-style retry-after hint from the refusing completion's DW0
     *  (microseconds, derived from the arbiter's backlog); 0 = no hint,
     *  wait for a completion instead. */
    std::uint32_t retryAfterUs = 0;
    /** A data command failed fatally (retry budget exhausted, app
     *  fault, or command timeout): the stream cannot continue and
     *  abortInvoke() must reclaim the instance. */
    bool failed = false;
    /** Status that killed the stream (kSuccess while healthy). */
    nvme::Status failStatus = nvme::Status::kSuccess;

    /** Trace ids of every command this session submitted — MINIT,
     *  MREADs, MDEINIT, including retries. Populated only while a
     *  trace sink is attached (empty otherwise), for flight-recorder
     *  collection and critical-path attribution. */
    std::vector<obs::TraceId> traceIds;

    std::uint64_t offset = 0;      ///< Next stream byte to issue.
    std::uint64_t chunkBytes = 0;
    std::uint64_t fileStartBlock = 0;
    std::uint16_t depth = 1;       ///< MREADs rung per batch.
    sim::Tick now = 0;             ///< The host thread's clock.
    InvokeResult result;

    /** All MREADs issued (finishInvoke may run). */
    bool
    streamDone() const
    {
        return offset >= stream.extent.sizeBytes;
    }
};

/** The runtime the compiled host binary links against. */
class MorpheusRuntime
{
  public:
    /** @p ssd_device selects which fleet SSD this runtime drives (its
     *  driver, queue pairs, and device runtime must match); 0 is the
     *  classic single-device platform. */
    MorpheusRuntime(host::HostSystem &sys,
                    MorpheusDeviceRuntime &device, NvmeP2p &p2p,
                    unsigned ssd_device = 0);

    /**
     * ms_stream_create: permission check + block-map lookup through
     * the host OS. @return the stream; its readyAt reflects the OS
     * time charged on @p host_core.
     */
    MsStream streamCreate(const host::FileExtent &extent, sim::Tick now,
                          unsigned host_core = 0);

    /**
     * Invoke @p image over @p stream, delivering objects to
     * @p target. Synchronous from the calling host thread's view: the
     * thread sleeps while the device works.
     */
    InvokeResult invoke(const StorageAppImage &image,
                        const MsStream &stream, const DmaTarget &target,
                        sim::Tick now, const InvokeOptions &opts = {});

    /**
     * Start an invocation: stage the instance and issue MINIT. Check
     * session.accepted — a scheduler refusal (admission quota) comes
     * back with accepted=false and retry saying whether trying again
     * later can succeed. A failed image load still asserts, as with
     * invoke().
     */
    InvokeSession beginInvoke(const StorageAppImage &image,
                              const MsStream &stream,
                              const DmaTarget &target, sim::Tick now,
                              const InvokeOptions &opts = {});

    /**
     * Issue the next MREAD batch and sleep until it completes.
     * @return the host thread's wakeup tick.
     */
    sim::Tick stepInvoke(InvokeSession &session);

    /** MDEINIT + buffer handoff; @return the filled result. */
    InvokeResult finishInvoke(InvokeSession &session);

    /**
     * Best-effort teardown of a failed session: MDEINIT the instance
     * (tolerating kNoSuchInstance when the device watchdog already
     * killed it) and return the result with failed set. The caller
     * decides whether to fall back to the host path.
     */
    InvokeResult abortInvoke(InvokeSession &session);

    /** Allocate a host DMA buffer and return a host-memory target. */
    DmaTarget hostTarget(std::uint64_t bytes);

    /**
     * Allocate GPU device memory and return a P2P target (maps the GPU
     * BAR on first use).
     */
    DmaTarget gpuTarget(std::uint64_t bytes,
                        std::uint64_t *dev_addr = nullptr);

    /** Instance IDs handed out so far. */
    std::uint32_t instancesIssued() const { return _nextInstance; }

  private:
    /** beginInvoke body; the public wrapper collects trace ids. */
    InvokeSession beginInvokeImpl(const StorageAppImage &image,
                                  const MsStream &stream,
                                  const DmaTarget &target, sim::Tick now,
                                  const InvokeOptions &opts);

    host::HostSystem &_sys;
    MorpheusDeviceRuntime &_device;
    NvmeP2p &_p2p;
    /** Fleet SSD index this runtime's commands go to. */
    unsigned _ssdDevice = 0;
    std::uint32_t _nextInstance = 1;
};

}  // namespace morpheus::core

#endif  // MORPHEUS_CORE_HOST_RUNTIME_HH
