#include "core/compiler.hh"

#include "sim/logging.hh"

namespace morpheus::core {

StorageAppImage
MorpheusCompiler::compile(const std::string &name,
                          StorageAppFactory factory,
                          std::uint32_t text_bytes)
{
    MORPHEUS_ASSERT(factory, "compiling a StorageApp with no factory");
    if (text_bytes == 0) {
        // Deterministic size estimate: device library baseline plus a
        // name-hashed app body, FNV-1a so it is stable across runs.
        std::uint64_t h = 1469598103934665603ULL;
        for (const char c : name) {
            h ^= static_cast<std::uint8_t>(c);
            h *= 1099511628211ULL;
        }
        text_bytes = 8 * 1024 + static_cast<std::uint32_t>(h % 16384);
    }
    StorageAppImage image;
    image.name = name;
    image.textBytes = text_bytes;
    image.factory = std::move(factory);
    return image;
}

}  // namespace morpheus::core
