/**
 * @file
 * The StorageApp programming model (paper §V).
 *
 * A StorageApp is user code that runs on the SSD's embedded cores. In
 * the paper it is a C function marked with the `StorageApp` keyword,
 * cross-compiled for the Tensilica cores; here it is a C++ class whose
 * processChunk() is invoked once per MREAD chunk. The MsChunkContext
 * is the device library: ms_scanf-style token readers over the
 * incrementally delivered stream, and ms_memcpy-style staged output
 * that the engine DMAs to the host (or, via NVMe-P2P, to GPU device
 * memory) whenever the D-SRAM staging buffer fills.
 */

#ifndef MORPHEUS_CORE_STORAGE_APP_HH
#define MORPHEUS_CORE_STORAGE_APP_HH

#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "pcie/pcie.hh"
#include "serde/scanner.hh"

namespace morpheus::core {

/** Where a StorageApp's output objects are DMAed. */
struct DmaTarget
{
    pcie::Addr addr = 0;  ///< Bus address (host DRAM or mapped GPU BAR).
    bool isGpu = false;   ///< True when addr lies in the GPU BAR window.
};

/**
 * The device library handle a StorageApp sees while processing one
 * chunk (and at finish()). Mirrors the paper's ms_* primitives.
 */
class MsChunkContext
{
  public:
    /**
     * @param dsram_bytes     D-SRAM capacity shared by the carry buffer
     *                        and the output staging buffer.
     * @param flush_threshold Staging bytes that trigger a ms_memcpy
     *                        flush segment.
     */
    MsChunkContext(std::uint32_t dsram_bytes,
                   std::uint32_t flush_threshold, std::uint32_t arg);

    // ------------------------------------------------- device library

    /** ms_scanf("%ld"): next integer token, false at end of chunk. */
    bool msScanfInt(std::int64_t *out) { return _scanner.nextInt64(out); }

    /** ms_scanf("%lf"): next floating-point token. */
    bool msScanfDouble(double *out) { return _scanner.nextDouble(out); }

    /** ms_scanf("%g"-ish): next number, reporting which kind it was. */
    bool
    msScanfNumber(double *out, bool *is_float)
    {
        return _scanner.nextNumber(out, is_float);
    }

    /** ms_memcpy: stage @p n bytes of binary output for DMA. */
    void msEmit(const void *data, std::size_t n);

    /** Stage one binary value (little endian). */
    template <typename T>
    void
    msEmitValue(T v)
    {
        msEmit(&v, sizeof(T));
    }

    /**
     * MWRITE path: copy the next @p n raw (binary) chunk bytes into
     * @p out. @return false if fewer than @p n bytes remain in the
     * chunk. Serialization apps use this instead of the text scanner.
     */
    bool msReadRaw(void *out, std::size_t n);

    /** MWRITE path helper: read one binary value. */
    template <typename T>
    bool
    msReadValue(T *out)
    {
        return msReadRaw(out, sizeof(T));
    }

    /** Raw bytes left in the current chunk (byte-stream apps). */
    std::size_t
    msRawAvailable() const
    {
        return _chunk.size() - _chunkPos;
    }

    /**
     * Merge externally accounted parse work (apps that run their own
     * incremental parser, e.g. the JSON applet) into this chunk's cost
     * delta so the embedded-core model charges it.
     */
    void msChargeCost(const serde::ParseCost &extra);

    /** The argument word the host passed at invocation. */
    std::uint32_t arg() const { return _arg; }

    /**
     * The pushdown descriptor dwords MINIT carried alongside the code
     * image (empty for ordinary invocations). Applets that support
     * pushdown (the columnar scanner) decode their program from here.
     */
    const std::vector<std::uint32_t> &pushdown() const
    {
        return _pushdown;
    }

    /** True once the host has signalled MDEINIT (no more chunks). */
    bool endOfStream() const { return _eof; }

    // --------------------------------------------------- engine-facing

    /** Deliver the next chunk of raw file bytes. */
    void feedChunk(std::vector<std::uint8_t> chunk);

    /** Install the MINIT pushdown descriptor (engine, before chunk 0). */
    void setPushdown(std::vector<std::uint32_t> dwords)
    {
        _pushdown = std::move(dwords);
    }

    /** Signal that no further chunks will arrive. */
    void signalEndOfStream();

    /** Parse-cost delta since the last snapshot (and re-snapshot). */
    serde::ParseCost takeCostDelta();

    /**
     * Staged output segments ready for DMA (moves them out). Each
     * segment is one ms_memcpy flush.
     */
    std::vector<std::vector<std::uint8_t>> takeFlushes();

    /** Force any residual staging into a flush segment. */
    void flushResidual();

    /**
     * Engine failure path (a command the app refused): drop the
     * unconsumed chunk bytes, the partially staged output, and any
     * pending flush segments, and @return the accrued parse-cost
     * delta so the engine can charge the aborted work to the failing
     * command — never to its successor. (The text scanner's carry is
     * untouched; write-path apps read raw bytes, not tokens.)
     */
    serde::ParseCost abortCommand();

    /** Bytes currently staged in D-SRAM awaiting a flush — the live
     *  state a migration actually has to move. */
    std::uint32_t
    dsramUse() const
    {
        return static_cast<std::uint32_t>(_staging.size());
    }

    /** Total bytes emitted so far (before flushing). */
    std::uint64_t bytesEmitted() const { return _bytesEmitted; }

    /** Peak D-SRAM footprint observed (carry + staging). */
    std::uint32_t peakDsramUse() const { return _peakDsram; }

  private:
    std::size_t refill(std::uint8_t *dst, std::size_t capacity);
    void noteDsram();

    std::uint32_t _dsramBytes;
    std::uint32_t _flushThreshold;
    std::uint32_t _arg;
    std::vector<std::uint32_t> _pushdown;
    bool _eof = false;

    std::vector<std::uint8_t> _chunk;  // current MREAD payload
    std::size_t _chunkPos = 0;

    serde::StreamingScanner _scanner;
    serde::ParseCost _costSnapshot;
    serde::ParseCost _extraCost;  // app-charged work, drained per delta

    std::vector<std::uint8_t> _staging;
    std::vector<std::vector<std::uint8_t>> _flushes;
    std::uint64_t _bytesEmitted = 0;
    std::uint32_t _peakDsram = 0;
};

/** User code executed inside the Morpheus-SSD. */
class StorageApp
{
  public:
    virtual ~StorageApp() = default;

    /**
     * Consume the tokens available in the current chunk (MREAD path).
     * Called once per chunk and once more after end-of-stream is
     * signalled (when the final carried token becomes parseable).
     */
    virtual void processChunk(MsChunkContext &ctx) = 0;

    /** One-shot hook after the final processChunk. */
    virtual void finish(MsChunkContext &ctx) { (void)ctx; }

    /** Delivered to the host in the MDEINIT completion's DW0. */
    virtual std::uint32_t returnValue() const { return 0; }

    /**
     * MWRITE (on-device serialization) path: consume binary values
     * from the chunk and msEmit text. @return false if the app does
     * not support serialization.
     */
    virtual bool
    processWriteChunk(MsChunkContext &ctx)
    {
        (void)ctx;
        return false;
    }
};

/** Factory invoked at MINIT; @p arg is the MINIT argument word. */
using StorageAppFactory =
    std::function<std::unique_ptr<StorageApp>(std::uint32_t arg)>;

/**
 * The Morpheus compiler's output for one StorageApp: the device binary
 * (represented by its I-SRAM footprint) plus the factory that
 * instantiates the app on the device.
 */
struct StorageAppImage
{
    std::string name;
    std::uint32_t textBytes = 0;  ///< Code size checked against I-SRAM.
    StorageAppFactory factory;
    /** Applet code version: part of the object-cache key, and a
     *  re-install at a different version invalidates every cached
     *  object the applet produced (its semantics may have changed). */
    std::uint32_t version = 0;
};

}  // namespace morpheus::core

#endif  // MORPHEUS_CORE_STORAGE_APP_HH
