#include "core/storage_app.hh"

#include <algorithm>
#include <utility>

#include "sim/logging.hh"

namespace morpheus::core {

MsChunkContext::MsChunkContext(std::uint32_t dsram_bytes,
                               std::uint32_t flush_threshold,
                               std::uint32_t arg)
    : _dsramBytes(dsram_bytes), _flushThreshold(flush_threshold),
      _arg(arg),
      _scanner(
          [this](std::uint8_t *dst, std::size_t cap) {
              return refill(dst, cap);
          },
          4 * 1024, /*incremental=*/true)
{
    MORPHEUS_ASSERT(flush_threshold > 0 &&
                        flush_threshold <= dsram_bytes,
                    "flush threshold must fit in D-SRAM");
}

std::size_t
MsChunkContext::refill(std::uint8_t *dst, std::size_t capacity)
{
    const std::size_t avail = _chunk.size() - _chunkPos;
    const std::size_t take = std::min(avail, capacity);
    if (take > 0) {
        std::copy(_chunk.begin() +
                      static_cast<std::ptrdiff_t>(_chunkPos),
                  _chunk.begin() +
                      static_cast<std::ptrdiff_t>(_chunkPos + take),
                  dst);
        _chunkPos += take;
    }
    return take;
}

void
MsChunkContext::msEmit(const void *data, std::size_t n)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    _staging.insert(_staging.end(), p, p + n);
    _bytesEmitted += n;
    noteDsram();
    while (_staging.size() >= _flushThreshold) {
        std::vector<std::uint8_t> seg(
            _staging.begin(),
            _staging.begin() +
                static_cast<std::ptrdiff_t>(_flushThreshold));
        _staging.erase(_staging.begin(),
                       _staging.begin() +
                           static_cast<std::ptrdiff_t>(_flushThreshold));
        _flushes.push_back(std::move(seg));
    }
}

bool
MsChunkContext::msReadRaw(void *out, std::size_t n)
{
    if (_chunk.size() - _chunkPos < n)
        return false;
    std::memcpy(out, _chunk.data() + _chunkPos, n);
    _chunkPos += n;
    return true;
}

void
MsChunkContext::feedChunk(std::vector<std::uint8_t> chunk)
{
    MORPHEUS_ASSERT(!_eof, "chunk delivered after end of stream");
    // Bytes the app chose not to consume (trailing padding after it
    // has seen everything it wants) are dropped, as they would be on
    // the device.
    _chunk = std::move(chunk);
    _chunkPos = 0;
}

void
MsChunkContext::signalEndOfStream()
{
    _eof = true;
    _scanner.setEndOfStream();
}

void
MsChunkContext::msChargeCost(const serde::ParseCost &extra)
{
    _extraCost += extra;
}

serde::ParseCost
MsChunkContext::takeCostDelta()
{
    const serde::ParseCost &total = _scanner.cost();
    serde::ParseCost delta;
    delta.bytes = total.bytes - _costSnapshot.bytes;
    delta.intValues = total.intValues - _costSnapshot.intValues;
    delta.floatValues = total.floatValues - _costSnapshot.floatValues;
    delta.floatOps = total.floatOps - _costSnapshot.floatOps;
    _costSnapshot = total;
    delta += _extraCost;
    _extraCost = serde::ParseCost{};
    return delta;
}

std::vector<std::vector<std::uint8_t>>
MsChunkContext::takeFlushes()
{
    return std::exchange(_flushes, {});
}

void
MsChunkContext::flushResidual()
{
    if (!_staging.empty())
        _flushes.push_back(std::exchange(_staging, {}));
}

serde::ParseCost
MsChunkContext::abortCommand()
{
    const serde::ParseCost delta = takeCostDelta();
    _chunk.clear();
    _chunkPos = 0;
    _staging.clear();
    _flushes.clear();
    return delta;
}

void
MsChunkContext::noteDsram()
{
    const auto used = static_cast<std::uint32_t>(
        std::min<std::size_t>(_staging.size() + 8 * 1024,
                              ~std::uint32_t(0)));
    _peakDsram = std::max(_peakDsram, used);
    MORPHEUS_ASSERT(_staging.size() <= _dsramBytes,
                    "StorageApp working set exceeds D-SRAM (",
                    _dsramBytes, " bytes); lower the flush threshold");
}

}  // namespace morpheus::core
