/**
 * @file
 * NVMe submission/completion queue rings.
 *
 * Functional ring buffers with real head/tail arithmetic and the CQ
 * phase-tag protocol. The rings notionally live in host memory; the
 * fabric cost of fetching entries across PCIe is charged by the
 * controller, not here.
 */

#ifndef MORPHEUS_NVME_QUEUE_HH
#define MORPHEUS_NVME_QUEUE_HH

#include <cstdint>
#include <vector>

#include "nvme/command.hh"

namespace morpheus::nvme {

/** Circular submission queue (host produces, controller consumes). */
class SubmissionQueue
{
  public:
    explicit SubmissionQueue(std::uint16_t entries);

    std::uint16_t entries() const { return _entries; }
    std::uint16_t head() const { return _head; }
    std::uint16_t tail() const { return _tail; }

    bool full() const;
    bool empty() const { return _head == _tail; }

    /** Slots available to the host producer. */
    std::uint16_t freeSlots() const;

    /** Host side: place a command at the tail. Caller must check full(). */
    void push(const Command &cmd);

    /** Controller side: consume the entry at the head. */
    Command pop();

  private:
    std::uint16_t _entries;
    std::uint16_t _head = 0;
    std::uint16_t _tail = 0;
    std::vector<Command> _ring;
};

/** Circular completion queue with phase tags (controller produces). */
class CompletionQueue
{
  public:
    explicit CompletionQueue(std::uint16_t entries);

    std::uint16_t entries() const { return _entries; }

    /** Controller side: post an entry (sets the phase tag). */
    void post(Completion cqe);

    /** Host side: is a new entry visible at the current head? */
    bool hasNew() const;

    /** Host side: consume the entry at the head (advances head). */
    Completion take();

  private:
    std::uint16_t _entries;
    std::uint16_t _head = 0;   // host consumer position
    std::uint16_t _tail = 0;   // controller producer position
    bool _producerPhase = true;
    bool _consumerPhase = true;
    std::vector<Completion> _ring;
    std::vector<bool> _valid;  // entry ever written (debug aid)
};

}  // namespace morpheus::nvme

#endif  // MORPHEUS_NVME_QUEUE_HH
