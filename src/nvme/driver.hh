/**
 * @file
 * Host-side NVMe driver.
 *
 * Builds commands, manages CIDs, pushes SQ entries, rings doorbells,
 * and collects completions. This is the layer the paper extends for
 * Morpheus: the driver accepts the four extension commands and (with
 * the NvmeP2p module, see core/nvme_p2p.hh) DMA targets in GPU device
 * memory. OS-level costs (syscalls, context switches while blocked) are
 * charged by the host model, not here.
 */

#ifndef MORPHEUS_NVME_DRIVER_HH
#define MORPHEUS_NVME_DRIVER_HH

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "nvme/controller.hh"
#include "obs/trace.hh"
#include "sim/rng.hh"

namespace morpheus::nvme {

/** Handle for an in-flight command. */
struct Submitted
{
    std::uint16_t qid = 0;
    std::uint16_t cid = 0;
    /** Trace id the driver stamped on this command. */
    obs::TraceId traceId = 0;
};

/**
 * Driver-side fault recovery knobs. Disabled by default: wait() panics
 * on a missing completion (a dropped CQE is a simulator bug unless
 * faults are being injected) and ioRetry() degenerates to io().
 */
struct DriverRecoveryConfig
{
    bool enabled = false;

    /** Simulated time after the doorbell ring before wait() gives up
     *  on a command and synthesizes a kCommandTimeout completion. */
    sim::Tick commandTimeout = 1000 * sim::kPsPerUs;

    /** Max resubmissions of one command for retryable statuses. */
    unsigned maxRetries = 4;

    /** First backoff delay; doubles per attempt. */
    sim::Tick backoffBase = 20 * sim::kPsPerUs;

    /** Uniform jitter fraction applied to each backoff (+/-). */
    double backoffJitter = 0.25;

    /** Seed for the jitter stream (deterministic like everything). */
    std::uint64_t jitterSeed = 0x6a697474ull;  // "jitt"
};

/** Host-side driver bound to one controller. */
class NvmeDriver
{
  public:
    explicit NvmeDriver(NvmeController &controller);

    /** Create an I/O queue pair (rings at the given host addresses). */
    std::uint16_t openQueue(std::uint16_t entries, pcie::Addr sq_base,
                            pcie::Addr cq_base);

    /** Controller's MDTS in logical blocks. */
    std::uint32_t
    maxTransferBlocks() const
    {
        return _controller.config().maxTransferBlocks;
    }

    /**
     * Enqueue @p cmd (the driver assigns the CID). Does not ring the
     * doorbell; batch several submissions per doorbell if desired.
     */
    Submitted submit(std::uint16_t qid, Command cmd);

    /** Ring the SQ tail doorbell. @return controller-finished tick. */
    sim::Tick ring(std::uint16_t qid, sim::Tick now);

    /**
     * Retrieve the completion for @p token. Consumes CQ entries in
     * order, caching those for other CIDs. The returned completion's
     * postedAt is when its interrupt fired. Fatal if the command was
     * never submitted/rung.
     */
    Completion wait(const Submitted &token);

    /** submit + ring + wait for simple synchronous callers. */
    Completion io(std::uint16_t qid, Command cmd, sim::Tick now);

    /**
     * io() plus bounded recovery: retryable failures (isRetryable())
     * are resubmitted after the completion's retry-after hint (DW0, in
     * microseconds, on busy/over-budget bounces) or, absent a hint,
     * exponential backoff with seeded jitter. Returns the first
     * success, the first fatal completion, or the last retryable one
     * when the retry budget runs out. With recovery disabled this is
     * exactly io().
     */
    Completion ioRetry(std::uint16_t qid, Command cmd, sim::Tick now);

    /** Enable/configure fault recovery (timeout synthesis + retries). */
    void setRecovery(const DriverRecoveryConfig &cfg);

    const DriverRecoveryConfig &recovery() const { return _recovery; }

    /** Backoff before resubmission attempt @p attempt (0-based). */
    sim::Tick backoffDelay(unsigned attempt);

    /** Count a caller-driven resubmission of a failed command in
     *  retriesIssued(). ioRetry() counts its internal loop itself; a
     *  session that reaps a failure via wait() and resubmits through a
     *  fresh ioRetry() calls this so the retry shows up too. */
    void noteRetry() { ++_retries; }

    /**
     * Fleet runs: prefix every span track this driver emits (e.g.
     * "dev1.host.queue[0]") so two devices' host-side queue activity
     * never interleaves on one Perfetto track. Empty (device 0, the
     * default) leaves the classic track names untouched.
     */
    void setTrackPrefix(const std::string &prefix)
    {
        _trackPrefix = prefix;
    }
    const std::string &trackPrefix() const { return _trackPrefix; }

    /**
     * Partition the trace-id space per device. Trace ids ride the
     * SQE's spare CDW2 bytes, so ids from two drivers would collide in
     * a fleet trace; giving driver d base d<<24 keeps every id unique
     * device-wide (16M commands per device before wrap). Device 0's
     * ids (base 0) are bit-identical to the single-SSD ones.
     */
    void setTraceIdBase(obs::TraceId base) { _nextTraceId = base + 1; }

    /** The id the next submit() will stamp. [before, after) brackets
     *  around driver calls give sessions the exact id range a
     *  high-level operation consumed (the sim is single-threaded). */
    obs::TraceId nextTraceId() const { return _nextTraceId; }

    std::uint64_t completionsReaped() const { return _reaped.value(); }
    std::uint64_t retriesIssued() const { return _retries.value(); }
    std::uint64_t timeoutsSynthesized() const { return _timeouts.value(); }

  private:
    /** Emit the host-side span for a just-reaped completion. */
    void noteReaped(std::uint16_t qid, const Completion &cqe);

    NvmeController &_controller;
    /** Span-track prefix ("" for device 0, "dev1." etc. in a fleet). */
    std::string _trackPrefix;
    std::unordered_map<std::uint16_t, std::uint16_t> _nextCid;
    /** (qid << 16 | cid) -> completion already reaped out of order. */
    std::unordered_map<std::uint32_t, Completion> _pending;
    sim::stats::Counter _reaped;

    /** Next trace id to stamp (always assigned; 0 means untraced). */
    obs::TraceId _nextTraceId = 1;
    /** Host-side view of a traced command, kept only while a sink is
     *  attached (the no-sink path never touches these containers). */
    struct InflightTrace
    {
        obs::TraceId trace = 0;
        Opcode opcode = Opcode::kFlush;
        std::uint64_t bytes = 0;
        sim::Tick rungAt = 0;
    };
    /** (qid << 16 | cid) -> host-side trace bookkeeping. */
    std::unordered_map<std::uint32_t, InflightTrace> _inflight;
    /** Per-qid keys submitted but not yet rung (rungAt unstamped). */
    std::unordered_map<std::uint16_t, std::vector<std::uint32_t>> _unrung;

    DriverRecoveryConfig _recovery;
    /** Jitter stream; engaged by setRecovery(). */
    std::optional<sim::Rng> _jitterRng;
    /** (qid << 16 | cid) -> doorbell tick; recovery-enabled only, so
     *  wait() can place the synthesized timeout abort in time. */
    std::unordered_map<std::uint32_t, sim::Tick> _issuedAt;
    /** Per-qid keys awaiting their doorbell tick (recovery only). */
    std::unordered_map<std::uint16_t, std::vector<std::uint32_t>>
        _unrungIssued;
    sim::stats::Counter _retries;
    sim::stats::Counter _timeouts;
};

}  // namespace morpheus::nvme

#endif  // MORPHEUS_NVME_DRIVER_HH
