/**
 * @file
 * Host-side NVMe driver.
 *
 * Builds commands, manages CIDs, pushes SQ entries, rings doorbells,
 * and collects completions. This is the layer the paper extends for
 * Morpheus: the driver accepts the four extension commands and (with
 * the NvmeP2p module, see core/nvme_p2p.hh) DMA targets in GPU device
 * memory. OS-level costs (syscalls, context switches while blocked) are
 * charged by the host model, not here.
 */

#ifndef MORPHEUS_NVME_DRIVER_HH
#define MORPHEUS_NVME_DRIVER_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "nvme/controller.hh"
#include "obs/trace.hh"

namespace morpheus::nvme {

/** Handle for an in-flight command. */
struct Submitted
{
    std::uint16_t qid = 0;
    std::uint16_t cid = 0;
};

/** Host-side driver bound to one controller. */
class NvmeDriver
{
  public:
    explicit NvmeDriver(NvmeController &controller);

    /** Create an I/O queue pair (rings at the given host addresses). */
    std::uint16_t openQueue(std::uint16_t entries, pcie::Addr sq_base,
                            pcie::Addr cq_base);

    /** Controller's MDTS in logical blocks. */
    std::uint32_t
    maxTransferBlocks() const
    {
        return _controller.config().maxTransferBlocks;
    }

    /**
     * Enqueue @p cmd (the driver assigns the CID). Does not ring the
     * doorbell; batch several submissions per doorbell if desired.
     */
    Submitted submit(std::uint16_t qid, Command cmd);

    /** Ring the SQ tail doorbell. @return controller-finished tick. */
    sim::Tick ring(std::uint16_t qid, sim::Tick now);

    /**
     * Retrieve the completion for @p token. Consumes CQ entries in
     * order, caching those for other CIDs. The returned completion's
     * postedAt is when its interrupt fired. Fatal if the command was
     * never submitted/rung.
     */
    Completion wait(const Submitted &token);

    /** submit + ring + wait for simple synchronous callers. */
    Completion io(std::uint16_t qid, Command cmd, sim::Tick now);

    std::uint64_t completionsReaped() const { return _reaped.value(); }

  private:
    /** Emit the host-side span for a just-reaped completion. */
    void noteReaped(std::uint16_t qid, const Completion &cqe);

    NvmeController &_controller;
    std::unordered_map<std::uint16_t, std::uint16_t> _nextCid;
    /** (qid << 16 | cid) -> completion already reaped out of order. */
    std::unordered_map<std::uint32_t, Completion> _pending;
    sim::stats::Counter _reaped;

    /** Next trace id to stamp (always assigned; 0 means untraced). */
    obs::TraceId _nextTraceId = 1;
    /** Host-side view of a traced command, kept only while a sink is
     *  attached (the no-sink path never touches these containers). */
    struct InflightTrace
    {
        obs::TraceId trace = 0;
        Opcode opcode = Opcode::kFlush;
        std::uint64_t bytes = 0;
        sim::Tick rungAt = 0;
    };
    /** (qid << 16 | cid) -> host-side trace bookkeeping. */
    std::unordered_map<std::uint32_t, InflightTrace> _inflight;
    /** Per-qid keys submitted but not yet rung (rungAt unstamped). */
    std::unordered_map<std::uint16_t, std::vector<std::uint32_t>> _unrung;
};

}  // namespace morpheus::nvme

#endif  // MORPHEUS_NVME_DRIVER_HH
