/**
 * @file
 * Device-side NVMe queue engine.
 *
 * The controller owns the queue pairs, fetches submission entries over
 * PCIe when the host rings a doorbell, hands each decoded command to
 * the firmware handler (installed by ssd::SsdController), and posts
 * completions + MSI-X interrupts. Command execution itself — flash
 * access, StorageApps, DMA of payload data — lives in the handler.
 */

#ifndef MORPHEUS_NVME_CONTROLLER_HH
#define MORPHEUS_NVME_CONTROLLER_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "nvme/command.hh"
#include "nvme/queue.hh"
#include "pcie/pcie.hh"
#include "sim/stats.hh"
#include "sim/timeline.hh"

namespace morpheus::nvme {

/** Outcome of executing one command in the firmware handler. */
struct CommandResult
{
    sim::Tick done = 0;
    Status status = Status::kSuccess;
    std::uint32_t dw0 = 0;  ///< Returned in the completion's DW0.
    /** The firmware never posts a CQE for this command (e.g. the
     *  watchdog killed the instance that was executing it); the host
     *  driver recovers via its command timeout. */
    bool dropped = false;
};

/** Firmware entry point: execute @p cmd starting at @p start. */
using CommandHandler =
    std::function<CommandResult(const Command &cmd, sim::Tick start)>;

/** Controller-level parameters. */
struct ControllerConfig
{
    /** MDTS: maximum blocks per I/O command. */
    std::uint32_t maxTransferBlocks = 256;  // 128 KiB at 512 B blocks
    /** Front-end time to decode/dispatch one command. */
    sim::Tick commandOverhead = 1 * sim::kPsPerUs;
    /** MSI-X delivery latency after the CQ entry lands. */
    sim::Tick interruptLatency = 2 * sim::kPsPerUs;
};

/** The NVMe controller inside the SSD. */
class NvmeController
{
  public:
    NvmeController(pcie::PcieSwitch &fabric, pcie::PortId ssd_port,
                   const ControllerConfig &config);

    const ControllerConfig &config() const { return _config; }
    pcie::PortId port() const { return _port; }

    /** Install the firmware command handler. */
    void setHandler(CommandHandler handler);

    /**
     * Fleet runs: prefix the controller's span tracks
     * ("dev1.nvme.frontend") so two controllers' activity doesn't
     * interleave on one trace track. Empty = classic names (device 0).
     */
    void setTrackPrefix(const std::string &prefix)
    {
        _trackPrefix = prefix;
    }

    /**
     * Create an I/O queue pair whose rings notionally live at the host
     * bus addresses @p sq_base / @p cq_base. @return queue id (>= 1;
     * following NVMe, 0 would be the admin queue).
     */
    std::uint16_t createQueuePair(std::uint16_t entries,
                                  pcie::Addr sq_base, pcie::Addr cq_base);

    SubmissionQueue &sq(std::uint16_t qid);
    CompletionQueue &cq(std::uint16_t qid);

    /**
     * Host MMIO write to the SQ tail doorbell. Fetches and executes
     * every pending entry. @return tick when the last completion's
     * interrupt fires.
     */
    sim::Tick ringDoorbell(std::uint16_t qid, sim::Tick now);

    std::uint64_t commandsProcessed() const { return _commands.value(); }

    void registerStats(sim::stats::StatSet &set,
                       const std::string &prefix) const;

  private:
    struct QueuePair
    {
        std::uint16_t qid;
        pcie::Addr sqBase;
        pcie::Addr cqBase;
        SubmissionQueue sq;
        CompletionQueue cq;
    };

    /** Validate MDTS and similar front-end checks. */
    Status frontEndCheck(const Command &cmd) const;

    pcie::PcieSwitch &_fabric;
    pcie::PortId _port;
    ControllerConfig _config;
    /** Span-track prefix ("" for device 0, "dev1." etc. in a fleet). */
    std::string _trackPrefix;
    CommandHandler _handler;
    std::vector<std::unique_ptr<QueuePair>> _queues;

    /** Serializes front-end fetch/decode/dispatch. */
    sim::Timeline _frontEnd{"nvme.frontend"};

    sim::stats::Counter _commands;
    sim::stats::Counter _doorbells;
    sim::stats::Counter _interrupts;
    sim::stats::Counter _cqesDropped;
};

}  // namespace morpheus::nvme

#endif  // MORPHEUS_NVME_CONTROLLER_HH
